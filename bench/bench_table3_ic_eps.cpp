// Table 3 — speedup of eIM over gIM under the IC model for decreasing eps
// (k = 100).
//
// Paper shape: near-parity at eps = 0.5, rising monotonically as eps
// shrinks (theta ~ 1/eps^2 amplifies gIM's allocation and scan overheads).
#include <iostream>

#include "common.hpp"

int main() {
  using namespace eim;
  const bench::BenchEnv env = bench::load_env();
  std::cout << "Table 3: eIM speedup over gIM, IC model, k=100, eps sweep\n\n";
  bench::print_eps_sweep(env, graph::DiffusionModel::IndependentCascade,
                         {0.5, 0.45, 0.4, 0.35, 0.3, 0.25, 0.2, 0.15, 0.1, 0.05}, 100);
  return 0;
}
