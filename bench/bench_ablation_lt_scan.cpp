// §3.3 ablation — the two LT activation designs the paper explored:
// shared-sum atomicAdd (O(d) serialized) vs warp prefix scan via
// __shfl_up_sync (O(log d)). Identical RRR sets, different modeled cost;
// the gap widens with average in-degree.
#include <iostream>

#include "common.hpp"

int main() {
  using namespace eim;
  const bench::BenchEnv env = bench::load_env();

  imm::ImmParams params;
  params.k = env.clamp_k(50);
  params.epsilon = env.clamp_eps(0.2);
  std::cout << "LT activation ablation: atomic-add vs prefix-scan (k=" << params.k
            << ", eps=" << params.epsilon << ")\n\n";

  support::TextTable table(
      {"Dataset", "avg in-degree", "prefix-scan s", "atomic-add s", "scan speedup"});
  for (const auto& spec : env.datasets) {
    const graph::Graph g =
        graph::build_dataset(spec, graph::DiffusionModel::LinearThreshold);

    eim_impl::EimOptions scan;
    scan.lt_activation = eim_impl::LtActivationMethod::PrefixScan;
    eim_impl::EimOptions atomic;
    atomic.lt_activation = eim_impl::LtActivationMethod::AtomicAdd;

    const auto scan_cell = bench::run_cell(
        env, g, bench::eim_runner(graph::DiffusionModel::LinearThreshold, params, scan));
    const auto atomic_cell = bench::run_cell(
        env, g,
        bench::eim_runner(graph::DiffusionModel::LinearThreshold, params, atomic));
    if (!scan_cell.seconds || !atomic_cell.seconds) {
      table.add_row({std::string(spec.abbrev), "OOM", "-", "-", "-"});
      continue;
    }
    const auto stats = graph::compute_stats(g);
    table.add_row({std::string(spec.abbrev), support::TextTable::num(stats.avg_degree, 1),
                   support::TextTable::num(*scan_cell.seconds, 4),
                   support::TextTable::num(*atomic_cell.seconds, 4),
                   support::TextTable::num(*atomic_cell.seconds / *scan_cell.seconds,
                                           2)});
  }
  table.print(std::cout);
  return 0;
}
