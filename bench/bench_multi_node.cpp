// Multi-node cluster scaling — the tier above bench_multi_gpu.
//
// Sweeps the modeled node count on a fixed workload: seeds are bit-identical
// at every width (sampling is sharded by global sample id), kernel time
// shrinks near-linearly, and the allreduce/broadcast collectives appear as a
// growing communication term on the cluster network. The last row replays
// the 4-node cell with a scripted node kill to price elastic failover.
//
// Parallel efficiency = speedup(N) / N; docs/PERFORMANCE.md tracks the
// 8-node figure (target >= 0.8 on this envelope).
#include <iostream>

#include "common.hpp"
#include "eim/eim/multi_node.hpp"

int main() {
  using namespace eim;
  const bench::BenchEnv env = bench::load_env();

  const auto spec = *graph::find_dataset("WV");
  const graph::Graph g =
      graph::build_dataset(spec, graph::DiffusionModel::IndependentCascade);
  imm::ImmParams params;
  params.k = env.clamp_k(50);
  params.epsilon = env.clamp_eps(0.02);

  std::cout << "Multi-node cluster scaling on " << spec.name << "-like (k="
            << params.k << ", eps=" << params.epsilon << ")\n\n";

  const auto run_on = [&](std::uint32_t nodes,
                          const gpusim::ClusterFaultPlan& faults,
                          const std::string& cell_id) {
    gpusim::ClusterSpec cluster_spec;
    cluster_spec.num_nodes = nodes;
    cluster_spec.node.device = gpusim::make_benchmark_device(env.memory_mb);
    gpusim::Cluster cluster(cluster_spec);
    cluster.set_fault_plan(faults);
    support::metrics::MetricsRegistry registry;
    eim_impl::EimOptions options;
    options.metrics = &registry;
    const auto r = eim_impl::run_eim_cluster(
        cluster, g, graph::DiffusionModel::IndependentCascade, params, options);
    bench::Cell cell;
    cell.seconds = r.device_seconds;
    cell.last = r;
    bench::record_cell(cell_id, registry, cell);
    return r;
  };

  support::TextTable table({"nodes", "total s", "kernel s", "comm s", "speedup",
                            "efficiency", "seeds identical"});
  double base = 0.0;
  std::vector<graph::VertexId> reference_seeds;
  for (const std::uint32_t n : {1u, 2u, 4u, 8u}) {
    const auto r = run_on(n, {}, "cluster/WV/nodes=" + std::to_string(n));
    if (n == 1) {
      base = r.device_seconds;
      reference_seeds = r.seeds;
    }
    const double speedup = base / r.device_seconds;
    table.add_row({std::to_string(n), support::TextTable::num(r.device_seconds, 4),
                   support::TextTable::num(r.kernel_seconds, 4),
                   support::TextTable::num(r.communication_seconds, 4),
                   support::TextTable::num(speedup, 2),
                   support::TextTable::num(speedup / n, 2),
                   r.seeds == reference_seeds ? "yes" : "NO"});
  }

  // Failover pricing: node 2 of 4 dies at its fourth collective; survivors
  // reshard and regenerate its residual range. Same seeds, some overhead.
  gpusim::ClusterFaultPlan kill;
  kill.node_losses.push_back({2, 3, -1.0});
  const auto failed = run_on(4, kill, "cluster/WV/nodes=4+kill");
  table.add_row({"4 (1 killed)", support::TextTable::num(failed.device_seconds, 4),
                 support::TextTable::num(failed.kernel_seconds, 4),
                 support::TextTable::num(failed.communication_seconds, 4),
                 support::TextTable::num(base / failed.device_seconds, 2), "-",
                 failed.seeds == reference_seeds ? "yes" : "NO"});
  table.print(std::cout);
  return 0;
}
