// Figure 7 — speedups of eIM over cuRipples and gIM under the IC model
// (k = 50, eps = 0.05).
//
// The paper's headline plot: eIM beats gIM by up to ~11x and cuRipples by
// up to three orders of magnitude, with the cuRipples gap widening as the
// network grows (its host<->device shuttling scales with R).
#include <iostream>

#include "common.hpp"

int main() {
  using namespace eim;
  const bench::BenchEnv env = bench::load_env();
  constexpr auto kModel = graph::DiffusionModel::IndependentCascade;

  imm::ImmParams params;
  params.k = env.clamp_k(50);
  params.epsilon = env.clamp_eps(0.05);
  std::cout << "Figure 7: eIM speedups under IC (k=" << params.k
            << ", eps=" << params.epsilon << ")\n\n";

  support::TextTable table({"Dataset", "eIM s", "gIM s", "cuRipples s",
                            "speedup vs gIM", "speedup vs cuRipples"});
  for (const auto& spec : env.datasets) {
    const graph::Graph g = graph::build_dataset(spec, kModel);
    const auto eim_cell = bench::run_cell(env, g, bench::eim_runner(kModel, params));
    const auto gim_cell = bench::run_cell(env, g, bench::gim_runner(kModel, params));
    const auto cur_cell = bench::run_cell(env, g, bench::curipples_runner(kModel, params));

    auto seconds = [](const bench::Cell& c) {
      return c.seconds ? support::TextTable::num(*c.seconds, 4) : std::string("OOM");
    };
    table.add_row({std::string(spec.abbrev), seconds(eim_cell), seconds(gim_cell),
                   seconds(cur_cell), bench::speedup_cell(gim_cell, eim_cell),
                   bench::speedup_cell(cur_cell, eim_cell)});
  }
  table.print(std::cout);
  return 0;
}
