// Shared harness for the per-table/per-figure benchmark binaries.
//
// Environment knobs (all optional):
//   EIM_BENCH_DATASETS  comma-separated abbreviations ("WV,PG,EE") to subset
//                       the paper's 16 networks;
//   EIM_BENCH_RUNS      repetitions per cell, averaged (default 1 — every
//                       backend is deterministic per seed; the paper's 10-run
//                       averages smooth hardware noise this simulator does
//                       not have. Extra runs vary the RNG seed.);
//   EIM_BENCH_FAST      "1" trades the paper's tightest settings for speed
//                       (eps floors at 0.15, k caps at 60) so the whole
//                       suite smoke-runs in a couple of minutes;
//   EIM_BENCH_MEMORY_MB simulated device memory (default 512 — the 48 GB
//                       A6000 scaled by roughly the dataset scale factor);
//   EIM_BENCH_JSON      path to write an eim.metrics.v3 report with one
//                       metrics snapshot (plus modeled seconds / kernel /
//                       transfer timing) per benchmark cell at process exit
//                       — the input format of tools/bench_diff and
//                       tools/bench_history (see docs/OBSERVABILITY.md);
//   EIM_BENCH_TRACE     path to write a Chrome trace-event file of the first
//                       benchmark cell's first run (a bounded, deterministic
//                       representative trace; open in ui.perfetto.dev);
//   EIM_BENCH_PROFILE   path to write a folded-stack sampling profile of the
//                       first benchmark cell (same first-cell claim as
//                       EIM_BENCH_TRACE; feed to tools/prof_report). Also
//                       attaches the hot-path wall timers for that cell,
//                       which land in its envelope entry under "wall".
//                       Writes a '# profiler-unsupported' marker on
//                       platforms without backtrace(). Wall-only: modeled
//                       results are bit-identical with or without it.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "eim/baselines/curipples.hpp"
#include "eim/baselines/gim.hpp"
#include "eim/eim/pipeline.hpp"
#include "eim/graph/registry.hpp"
#include "eim/support/metrics.hpp"
#include "eim/support/profiler.hpp"
#include "eim/support/stats.hpp"
#include "eim/support/table.hpp"
#include "eim/support/trace.hpp"

namespace eim::bench {

struct BenchEnv {
  std::vector<graph::DatasetSpec> datasets;
  std::uint32_t runs = 1;
  bool fast = false;
  std::uint64_t memory_mb = 512;

  [[nodiscard]] double clamp_eps(double eps) const {
    return fast ? std::max(eps, 0.15) : eps;
  }
  [[nodiscard]] std::uint32_t clamp_k(std::uint32_t k) const {
    return fast ? std::min(k, 60u) : k;
  }
};

/// Parse the environment once; prints the effective configuration.
[[nodiscard]] BenchEnv load_env();

/// One benchmark cell: modeled seconds (mean over runs), or nullopt on OOM.
/// `wall_seconds` is the measured host wall-clock mean over the same runs —
/// machine-noisy by nature, reported for trajectory tracking (bench_diff
/// treats it warn-only), never part of the modeled-cost contract.
struct Cell {
  std::optional<double> seconds;
  std::optional<double> wall_seconds;
  eim_impl::EimResult last;  ///< last successful run's full result
};

/// One run of one backend. The registry is the cell's instrumentation sink:
/// eIM wires it through EimOptions::metrics; every backend gets the device
/// pool's high-water mark and allocation events recorded into it. `trace`
/// is non-null only for the run EIM_BENCH_TRACE captures (eIM wires it
/// through EimOptions::trace; baselines ignore it); `profile` likewise for
/// EIM_BENCH_PROFILE (wired through EimOptions::profile).
using Runner = std::function<eim_impl::EimResult(
    gpusim::Device&, const graph::Graph&, support::metrics::MetricsRegistry&,
    support::trace::TraceRecorder* trace, support::profiler::WallProfile* profile,
    std::uint32_t run)>;

/// Run `runner` EIM_BENCH_RUNS times on fresh devices; averages modeled
/// time; returns nullopt seconds if any run OOMs (the paper reports OOM if
/// the configuration cannot complete). Each cell's metrics snapshot is
/// recorded under `cell_id` (auto-generated when empty) for the
/// EIM_BENCH_JSON report.
[[nodiscard]] Cell run_cell(const BenchEnv& env, const graph::Graph& g,
                            const Runner& runner, std::string cell_id = {});

/// Record an externally-built cell into the EIM_BENCH_JSON report. For
/// benches whose topology run_cell cannot host (e.g. the multi-node cluster
/// tier builds its own fleet): fill a Cell, pass the registry the run wrote
/// into, and the cell rides the same eim.metrics.v3 envelope.
void record_cell(std::string cell_id,
                 const support::metrics::MetricsRegistry& registry,
                 const Cell& cell);

/// Canonical runners for the three systems (run index perturbs the seed).
[[nodiscard]] Runner eim_runner(graph::DiffusionModel model, imm::ImmParams params,
                                eim_impl::EimOptions options = {});
[[nodiscard]] Runner gim_runner(graph::DiffusionModel model, imm::ImmParams params);
[[nodiscard]] Runner curipples_runner(graph::DiffusionModel model,
                                      imm::ImmParams params);

/// "12.34" speedup cell, or the paper's "OOM/x.xx" form (baseline OOM,
/// eIM's absolute seconds), or "OOM" if eIM itself failed.
[[nodiscard]] std::string speedup_cell(const Cell& baseline, const Cell& eim);

/// Tables 2/4: eIM-over-gIM speedup per dataset while k sweeps (eps fixed).
void print_k_sweep(const BenchEnv& env, graph::DiffusionModel model,
                   const std::vector<std::uint32_t>& ks, double eps);

/// Tables 3/5: eIM-over-gIM speedup per dataset while eps sweeps (k fixed).
void print_eps_sweep(const BenchEnv& env, graph::DiffusionModel model,
                     const std::vector<double>& epss, std::uint32_t k);

}  // namespace eim::bench
