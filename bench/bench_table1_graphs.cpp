// Table 1 — graph statistics of the 16 evaluation networks.
//
// Prints the paper's reported vertex/edge counts next to the synthetic
// stand-in actually benchmarked, plus the structural properties that drive
// the other experiments (degree skew, zero-in-degree fraction — the §3.4
// singleton sources).
#include <iostream>

#include "common.hpp"

int main() {
  using namespace eim;
  const bench::BenchEnv env = bench::load_env();

  std::cout << "Table 1: graph statistics (paper dataset vs synthetic stand-in)\n\n";
  support::TextTable table({"Dataset", "Name", "paper |V|", "paper |E|", "synth |V|",
                            "synth |E|", "avg deg", "max d-", "zero d- %"});
  for (const auto& spec : env.datasets) {
    const graph::Graph g =
        graph::build_dataset(spec, graph::DiffusionModel::IndependentCascade);
    const graph::GraphStats s = graph::compute_stats(g);
    table.add_row({std::string(spec.abbrev), std::string(spec.name),
                   support::TextTable::count(spec.paper_vertices),
                   support::TextTable::count(spec.paper_edges),
                   support::TextTable::count(s.num_vertices),
                   support::TextTable::count(s.num_edges),
                   support::TextTable::num(s.avg_degree, 2),
                   support::TextTable::count(s.max_in_degree),
                   support::TextTable::num(100.0 * s.zero_in_degree_count /
                                               std::max(1u, s.num_vertices),
                                           1)});
  }
  table.print(std::cout);
  return 0;
}
