// Table 4 — speedup of eIM over gIM under the LT model for increasing k
// (eps = 0.05). Paper shape mirrors Table 2 with LT's walk-shaped sets and
// speedups up to ~30x.
#include <iostream>

#include "common.hpp"

int main() {
  using namespace eim;
  const bench::BenchEnv env = bench::load_env();
  std::cout << "Table 4: eIM speedup over gIM, LT model, eps=0.05, k sweep\n\n";
  bench::print_k_sweep(env, graph::DiffusionModel::LinearThreshold,
                       {20, 40, 60, 80, 100}, 0.05);
  return 0;
}
