// Figure 3 — scalability of the thread-based vs warp-based seed-selection
// scan as the number of RRR sets N grows (k = 100).
//
// Reproduces the paper's crossover: warps win for small N (coalesced scans,
// N < W_n), threads win as N grows (ceil(N/W_n)*C_w > ceil(N/T_n)*C_t).
#include <iostream>

#include "common.hpp"
#include "eim/eim/rrr_collection.hpp"
#include "eim/eim/sampler.hpp"
#include "eim/eim/seed_selector.hpp"

int main() {
  using namespace eim;
  const bench::BenchEnv env = bench::load_env();

  // One representative social graph supplies the set-size distribution.
  const auto spec = *graph::find_dataset("WV");
  const graph::Graph g =
      graph::build_dataset(spec, graph::DiffusionModel::IndependentCascade);

  const std::uint32_t k = env.clamp_k(100);
  std::cout << "Figure 3: seed-selection scan time vs N (k=" << k << ", "
            << spec.name << "-like sets)\n\n";

  gpusim::Device device(gpusim::make_benchmark_device(env.memory_mb));
  imm::ImmParams params;
  params.k = k;
  eim_impl::EimOptions options;  // defaults; sampler only feeds the store
  eim_impl::DeviceRrrCollection collection(device, g.num_vertices(), true);
  eim_impl::EimSampler sampler(device, g, graph::DiffusionModel::IndependentCascade,
                               params, options);

  support::TextTable table(
      {"N (RRR sets)", "thread-based ms", "warp-based ms", "winner"});
  const std::uint64_t max_n = env.fast ? 262'144 : 2'097'152;
  for (std::uint64_t n = 1024; n <= max_n; n *= 4) {
    sampler.sample_to(collection, n);

    device.timeline().reset();
    eim_impl::GpuSeedSelector thread_sel(device, eim_impl::ScanStrategy::ThreadPerSet);
    (void)thread_sel.select(collection, k);
    const double thread_ms = device.timeline().kernel_seconds() * 1e3;

    device.timeline().reset();
    eim_impl::GpuSeedSelector warp_sel(device, eim_impl::ScanStrategy::WarpPerSet);
    (void)warp_sel.select(collection, k);
    const double warp_ms = device.timeline().kernel_seconds() * 1e3;

    table.add_row({support::TextTable::count(n), support::TextTable::num(thread_ms, 3),
                   support::TextTable::num(warp_ms, 3),
                   thread_ms < warp_ms ? "thread" : "warp"});
  }
  table.print(std::cout);
  return 0;
}
