// Figure 4 — memory saved by applying log encoding to the RRR sets and the
// network data (plus the §4.2 CSC-only numbers).
//
// The paper reports up to 54% combined savings on small networks, tapering
// to ~16% on the largest; CSC alone saves 28.8% -> 14%. The trend is a
// direct function of bit_width(n) vs 32, so the synthetic stand-ins land in
// the same bands.
#include <iostream>

#include "common.hpp"
#include "eim/encoding/packed_csc.hpp"

int main() {
  using namespace eim;
  const bench::BenchEnv env = bench::load_env();

  const double eps = env.clamp_eps(0.2);  // enough theta for stable R stats
  std::cout << "Figure 4: memory saved by log encoding (IC, k=50, eps=" << eps
            << ")\n\n";

  support::TextTable table({"Dataset", "CSC raw MB", "CSC saved %", "R raw MB",
                            "R saved %", "combined saved %"});
  for (const auto& spec : env.datasets) {
    const graph::Graph g =
        graph::build_dataset(spec, graph::DiffusionModel::IndependentCascade);

    // Network data: packed vs raw CSC (§4.2's standalone comparison).
    const encoding::PackedCsc packed(g);

    // RRR sets: run eIM with log encoding and read the stored/raw byte
    // counts of R + O + C at the end of execution, as the paper measures.
    imm::ImmParams params;
    params.k = env.clamp_k(50);
    params.epsilon = eps;
    const auto cell = bench::run_cell(
        env, g, bench::eim_runner(graph::DiffusionModel::IndependentCascade, params));
    if (!cell.seconds.has_value()) {
      table.add_row({std::string(spec.abbrev), "OOM", "-", "-", "-", "-"});
      continue;
    }
    const auto& r = cell.last;

    const double csc_saved = 100.0 * packed.saved_fraction();
    const double r_saved =
        100.0 * (1.0 - static_cast<double>(r.rrr_bytes) /
                           static_cast<double>(r.rrr_raw_bytes));
    const double combined =
        100.0 *
        (1.0 - static_cast<double>(r.rrr_bytes + r.network_bytes) /
                   static_cast<double>(r.rrr_raw_bytes + r.network_raw_bytes));

    table.add_row({std::string(spec.abbrev),
                   support::TextTable::num(static_cast<double>(packed.raw_bytes()) / 1e6, 2),
                   support::TextTable::num(csc_saved, 1),
                   support::TextTable::num(static_cast<double>(r.rrr_raw_bytes) / 1e6, 2),
                   support::TextTable::num(r_saved, 1),
                   support::TextTable::num(combined, 1)});
  }
  table.print(std::cout);
  return 0;
}
