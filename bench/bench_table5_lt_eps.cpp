// Table 5 — speedup of eIM over gIM under the LT model for decreasing eps
// (k = 100). Paper shape mirrors Table 3.
#include <iostream>

#include "common.hpp"

int main() {
  using namespace eim;
  const bench::BenchEnv env = bench::load_env();
  std::cout << "Table 5: eIM speedup over gIM, LT model, k=100, eps sweep\n\n";
  bench::print_eps_sweep(env, graph::DiffusionModel::LinearThreshold,
                         {0.5, 0.45, 0.4, 0.35, 0.3, 0.25, 0.2, 0.15, 0.1, 0.05}, 100);
  return 0;
}
