#include "common.hpp"

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string_view>

namespace eim::bench {

namespace {

/// Per-dataset heartbeat on stderr so long sweeps show liveness without
/// polluting the table output on stdout.
void table_progress(std::string_view abbrev) {
  std::fprintf(stderr, "[done %.*s]", static_cast<int>(abbrev.size()), abbrev.data());
  std::fflush(stderr);
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::istringstream in(csv);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

BenchEnv load_env() {
  BenchEnv env;

  if (const char* subset = std::getenv("EIM_BENCH_DATASETS")) {
    for (const auto& abbrev : split_csv(subset)) {
      if (const auto spec = graph::find_dataset(abbrev)) {
        env.datasets.push_back(*spec);
      } else {
        std::fprintf(stderr, "warning: unknown dataset '%s' ignored\n", abbrev.c_str());
      }
    }
  }
  if (env.datasets.empty()) {
    const auto all = graph::all_datasets();
    env.datasets.assign(all.begin(), all.end());
  }

  if (const char* runs = std::getenv("EIM_BENCH_RUNS")) {
    env.runs = static_cast<std::uint32_t>(std::max(1, std::atoi(runs)));
  }
  if (const char* fast = std::getenv("EIM_BENCH_FAST")) {
    env.fast = std::string(fast) == "1";
  }
  if (const char* mem = std::getenv("EIM_BENCH_MEMORY_MB")) {
    env.memory_mb = static_cast<std::uint64_t>(std::max(1, std::atoi(mem)));
  }

  std::printf("# datasets=%zu runs=%u fast=%d device=%llu MB (simulated)\n",
              env.datasets.size(), env.runs, env.fast ? 1 : 0,
              static_cast<unsigned long long>(env.memory_mb));
  return env;
}

Cell run_cell(const BenchEnv& env, const graph::Graph& g, const Runner& runner) {
  Cell cell;
  support::RunningStat stat;
  for (std::uint32_t run = 0; run < env.runs; ++run) {
    gpusim::Device device(gpusim::make_benchmark_device(env.memory_mb));
    try {
      cell.last = runner(device, g, run);
    } catch (const support::DeviceOutOfMemoryError&) {
      cell.seconds.reset();
      return cell;
    }
    stat.push(cell.last.device_seconds);
  }
  cell.seconds = stat.mean();
  return cell;
}

Runner eim_runner(graph::DiffusionModel model, imm::ImmParams params,
                  eim_impl::EimOptions options) {
  return [model, params, options](gpusim::Device& device, const graph::Graph& g,
                                  std::uint32_t run) {
    imm::ImmParams p = params;
    p.rng_seed += run;
    return eim_impl::run_eim(device, g, model, p, options);
  };
}

Runner gim_runner(graph::DiffusionModel model, imm::ImmParams params) {
  return [model, params](gpusim::Device& device, const graph::Graph& g,
                         std::uint32_t run) {
    imm::ImmParams p = params;
    p.rng_seed += run;
    return baselines::run_gim(device, g, model, p);
  };
}

Runner curipples_runner(graph::DiffusionModel model, imm::ImmParams params) {
  return [model, params](gpusim::Device& device, const graph::Graph& g,
                         std::uint32_t run) {
    imm::ImmParams p = params;
    p.rng_seed += run;
    return baselines::run_curipples(device, g, model, p);
  };
}

void print_k_sweep(const BenchEnv& env, graph::DiffusionModel model,
                   const std::vector<std::uint32_t>& ks, double eps) {
  std::vector<std::string> header{"Dataset"};
  for (const std::uint32_t k : ks) header.push_back("k=" + std::to_string(env.clamp_k(k)));
  support::TextTable table(header);

  for (const auto& spec : env.datasets) {
    const graph::Graph g = graph::build_dataset(spec, model);
    std::vector<std::string> row{std::string(spec.abbrev)};
    for (const std::uint32_t k : ks) {
      imm::ImmParams params;
      params.k = env.clamp_k(k);
      params.epsilon = env.clamp_eps(eps);
      const Cell eim_cell = run_cell(env, g, eim_runner(model, params));
      const Cell gim_cell = run_cell(env, g, gim_runner(model, params));
      row.push_back(speedup_cell(gim_cell, eim_cell));
    }
    table.add_row(std::move(row));
    table_progress(spec.abbrev);
  }
  table.print(std::cout);
}

void print_eps_sweep(const BenchEnv& env, graph::DiffusionModel model,
                     const std::vector<double>& epss, std::uint32_t k) {
  std::vector<std::string> header{"Dataset"};
  for (const double eps : epss) {
    header.push_back("eps=" + support::TextTable::num(env.clamp_eps(eps), 2));
  }
  support::TextTable table(header);

  for (const auto& spec : env.datasets) {
    const graph::Graph g = graph::build_dataset(spec, model);
    std::vector<std::string> row{std::string(spec.abbrev)};
    for (const double eps : epss) {
      imm::ImmParams params;
      params.k = env.clamp_k(k);
      params.epsilon = env.clamp_eps(eps);
      const Cell eim_cell = run_cell(env, g, eim_runner(model, params));
      const Cell gim_cell = run_cell(env, g, gim_runner(model, params));
      row.push_back(speedup_cell(gim_cell, eim_cell));
    }
    table.add_row(std::move(row));
    table_progress(spec.abbrev);
  }
  table.print(std::cout);
}

std::string speedup_cell(const Cell& baseline, const Cell& eim) {
  if (!eim.seconds.has_value()) return "OOM";
  if (!baseline.seconds.has_value()) {
    return "OOM/" + support::TextTable::num(*eim.seconds, 2);
  }
  return support::TextTable::num(*baseline.seconds / *eim.seconds, 2);
}

}  // namespace eim::bench
