#include "common.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string_view>

#include "eim/support/atomic_write.hpp"
#include "eim/support/json.hpp"

#if defined(__GLIBC__)
#include <errno.h>  // program_invocation_short_name
#endif

namespace eim::bench {

namespace {

/// Accumulates one eim.metrics.v3 snapshot per finished benchmark cell and
/// writes $EIM_BENCH_JSON when the process exits (destructor of the Meyer
/// singleton). Snapshots are serialized eagerly at record time so the cell's
/// registry may die with its run_cell frame. Cell-level modeled timing
/// (seconds / kernel_seconds / transfer_seconds) rides along so
/// tools/bench_diff can gate on modeled-time regressions; an OOM cell
/// carries no timing fields.
class BenchReporter {
 public:
  static BenchReporter& instance() {
    static BenchReporter reporter;
    return reporter;
  }

  void record(std::string id, const support::metrics::MetricsRegistry& registry,
              const Cell& cell,
              const support::profiler::WallProfile* wall = nullptr) {
    std::ostringstream metrics;
    support::JsonWriter w(metrics);
    registry.write_json(w);
    // The wall profile (EIM_BENCH_PROFILE, first cell only) is serialized
    // eagerly for the same lifetime reason as the registry snapshot.
    std::string wall_json;
    if (wall != nullptr) {
      std::ostringstream wall_out;
      support::JsonWriter ww(wall_out);
      wall->write_json(ww);
      wall_json = wall_out.str();
    }
    const std::lock_guard<std::mutex> lock(mu_);
    cells_.push_back(CellRecord{std::move(id), metrics.str(), std::move(wall_json),
                                cell.seconds, cell.wall_seconds,
                                cell.last.kernel_seconds,
                                cell.last.transfer_seconds});
  }

 private:
  BenchReporter() = default;
  ~BenchReporter() { flush(); }

  static const char* tool_name() {
#if defined(__GLIBC__)
    return program_invocation_short_name;
#else
    return "bench";
#endif
  }

  void flush() const {
    const char* path = std::getenv("EIM_BENCH_JSON");
    if (path == nullptr || *path == '\0' || cells_.empty()) return;
    // Atomic publication: a killed sweep leaves the previous report (or
    // nothing), never a torn JSON that tools/bench_diff would choke on.
    // Runs in a static destructor, so failures warn instead of throwing.
    try {
      support::atomic_write_text(path, [&](std::ostream& out) {
        support::JsonWriter w(out);
        w.begin_object();
        w.field("schema", "eim.metrics.v3");
        w.field("tool", tool_name());
        w.begin_array("cells");
        for (const auto& cell : cells_) {
          w.begin_object().field("id", cell.id);
          if (cell.seconds.has_value()) {
            w.field("seconds", *cell.seconds)
                .field("kernel_seconds", cell.kernel_seconds)
                .field("transfer_seconds", cell.transfer_seconds);
          }
          if (cell.wall_seconds.has_value()) {
            w.field("wall_seconds", *cell.wall_seconds);
          }
          w.key("metrics").raw_value(cell.metrics_json);
          if (!cell.wall_json.empty()) w.key("wall").raw_value(cell.wall_json);
          w.end_object();
        }
        w.end_array();
        w.end_object();
        out << '\n';
      });
    } catch (const support::Error& e) {
      std::fprintf(stderr, "warning: cannot write EIM_BENCH_JSON=%s: %s\n", path,
                   e.what());
    }
  }

  struct CellRecord {
    std::string id;
    std::string metrics_json;  ///< pre-serialized registry snapshot
    std::string wall_json;     ///< pre-serialized wall profile ("" = none)
    std::optional<double> seconds;  ///< mean modeled seconds; nullopt = OOM
    std::optional<double> wall_seconds;  ///< mean host wall clock (noisy)
    double kernel_seconds = 0.0;    ///< last successful run's kernel time
    double transfer_seconds = 0.0;
  };

  mutable std::mutex mu_;
  std::vector<CellRecord> cells_;
};

/// Per-dataset heartbeat on stderr so long sweeps show liveness without
/// polluting the table output on stdout.
void table_progress(std::string_view abbrev) {
  std::fprintf(stderr, "[done %.*s]", static_cast<int>(abbrev.size()), abbrev.data());
  std::fflush(stderr);
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::istringstream in(csv);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

BenchEnv load_env() {
  BenchEnv env;

  if (const char* subset = std::getenv("EIM_BENCH_DATASETS")) {
    for (const auto& abbrev : split_csv(subset)) {
      if (const auto spec = graph::find_dataset(abbrev)) {
        env.datasets.push_back(*spec);
      } else {
        std::fprintf(stderr, "warning: unknown dataset '%s' ignored\n", abbrev.c_str());
      }
    }
  }
  if (env.datasets.empty()) {
    const auto all = graph::all_datasets();
    env.datasets.assign(all.begin(), all.end());
  }

  if (const char* runs = std::getenv("EIM_BENCH_RUNS")) {
    env.runs = static_cast<std::uint32_t>(std::max(1, std::atoi(runs)));
  }
  if (const char* fast = std::getenv("EIM_BENCH_FAST")) {
    env.fast = std::string(fast) == "1";
  }
  if (const char* mem = std::getenv("EIM_BENCH_MEMORY_MB")) {
    env.memory_mb = static_cast<std::uint64_t>(std::max(1, std::atoi(mem)));
  }

  std::printf("# datasets=%zu runs=%u fast=%d device=%llu MB (simulated)\n",
              env.datasets.size(), env.runs, env.fast ? 1 : 0,
              static_cast<unsigned long long>(env.memory_mb));
  return env;
}

Cell run_cell(const BenchEnv& env, const graph::Graph& g, const Runner& runner,
              std::string cell_id) {
  if (cell_id.empty()) {
    static std::atomic<std::uint64_t> seq{0};
    cell_id = "cell-" + std::to_string(seq.fetch_add(1)) + "/n=" +
              std::to_string(g.num_vertices()) + "/m=" + std::to_string(g.num_edges());
  }

  // EIM_BENCH_TRACE captures the first cell's first run — one bounded,
  // deterministic representative trace per bench process (tracing every
  // cell would explode the file and collide device-address pids as cells
  // reuse the same stack slot). Written immediately after the cell.
  std::optional<support::trace::TraceRecorder> recorder;
  const char* trace_path = std::getenv("EIM_BENCH_TRACE");
  if (trace_path != nullptr && *trace_path != '\0') {
    static std::mutex trace_mu;
    static bool trace_claimed = false;
    const std::lock_guard<std::mutex> lock(trace_mu);
    if (!trace_claimed) {
      trace_claimed = true;
      recorder.emplace();
    }
  }

  // EIM_BENCH_PROFILE mirrors the trace claim: the first cell to get here
  // owns the process-wide SIGPROF profiler (one ITIMER_PROF per process)
  // and the wall-timer profile for all of its runs.
  std::optional<support::profiler::WallProfile> wall_profile;
  std::optional<support::profiler::SamplingProfiler> stack_sampler;
  const char* profile_path = std::getenv("EIM_BENCH_PROFILE");
  if (profile_path != nullptr && *profile_path != '\0') {
    static std::mutex profile_mu;
    static bool profile_claimed = false;
    const std::lock_guard<std::mutex> lock(profile_mu);
    if (!profile_claimed) {
      profile_claimed = true;
      wall_profile.emplace();
      if (support::profiler::SamplingProfiler::supported()) {
        stack_sampler.emplace(support::profiler::SamplingProfiler::Options{});
        stack_sampler->start();
      }
    }
  }

  Cell cell;
  support::metrics::MetricsRegistry registry;
  support::RunningStat stat;
  support::RunningStat wall_stat;
  bool oom = false;
  for (std::uint32_t run = 0; run < env.runs; ++run) {
    gpusim::Device device(gpusim::make_benchmark_device(env.memory_mb));
    // Every backend reports its memory high-water mark, even the ones that
    // take no EimOptions (run_eim re-attaches the same instruments).
    device.memory().attach_metrics(&registry.gauge("device.peak_bytes"),
                                   &registry.counter("device.alloc_events"));
    support::trace::TraceRecorder* trace =
        recorder.has_value() && run == 0 ? &*recorder : nullptr;
    if (trace != nullptr) trace->register_process(cell_id, &device);
    const auto wall_begin = std::chrono::steady_clock::now();
    try {
      cell.last = runner(device, g, registry, trace,
                         wall_profile.has_value() ? &*wall_profile : nullptr, run);
    } catch (const support::DeviceOutOfMemoryError& e) {
      registry.counter("bench.oom_runs").add();
      // Record how far over budget the cell was, so the EIM_BENCH_JSON
      // report can say "needed X more bytes" instead of just "OOM".
      registry.gauge("bench.oom_requested_bytes").set(e.requested_bytes());
      registry.gauge("bench.oom_available_bytes").set(e.available_bytes());
      registry.gauge("bench.oom_shortfall_bytes")
          .set(e.requested_bytes() > e.available_bytes()
                   ? e.requested_bytes() - e.available_bytes()
                   : 0);
      cell.seconds.reset();
      oom = true;
      break;
    }
    wall_stat.push(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                 wall_begin)
                       .count());
    stat.push(cell.last.device_seconds);
  }
  if (!oom) {
    cell.seconds = stat.mean();
    cell.wall_seconds = wall_stat.mean();
  }
  if (recorder.has_value()) {
    try {
      support::atomic_write_text(
          trace_path, [&](std::ostream& out) { recorder->write_chrome_trace(out); });
    } catch (const support::Error& e) {
      std::fprintf(stderr, "warning: cannot write EIM_BENCH_TRACE=%s: %s\n", trace_path,
                   e.what());
    }
  }
  if (wall_profile.has_value()) {
    if (stack_sampler.has_value()) stack_sampler->stop();
    try {
      support::atomic_write_text(profile_path, [&](std::ostream& out) {
        if (stack_sampler.has_value()) {
          stack_sampler->write_folded(out);
        } else {
          out << "# profiler-unsupported\n";
        }
      });
    } catch (const support::Error& e) {
      std::fprintf(stderr, "warning: cannot write EIM_BENCH_PROFILE=%s: %s\n",
                   profile_path, e.what());
    }
  }
  BenchReporter::instance().record(std::move(cell_id), registry, cell,
                                   wall_profile.has_value() ? &*wall_profile
                                                            : nullptr);
  return cell;
}

void record_cell(std::string cell_id,
                 const support::metrics::MetricsRegistry& registry,
                 const Cell& cell) {
  BenchReporter::instance().record(std::move(cell_id), registry, cell);
}

Runner eim_runner(graph::DiffusionModel model, imm::ImmParams params,
                  eim_impl::EimOptions options) {
  return [model, params, options](gpusim::Device& device, const graph::Graph& g,
                                  support::metrics::MetricsRegistry& registry,
                                  support::trace::TraceRecorder* trace,
                                  support::profiler::WallProfile* profile,
                                  std::uint32_t run) {
    imm::ImmParams p = params;
    p.rng_seed += run;
    eim_impl::EimOptions o = options;
    o.metrics = &registry;
    o.trace = trace;
    o.profile = profile;
    return eim_impl::run_eim(device, g, model, p, o);
  };
}

Runner gim_runner(graph::DiffusionModel model, imm::ImmParams params) {
  return [model, params](gpusim::Device& device, const graph::Graph& g,
                         support::metrics::MetricsRegistry& /*registry*/,
                         support::trace::TraceRecorder* /*trace*/,
                         support::profiler::WallProfile* /*profile*/,
                         std::uint32_t run) {
    imm::ImmParams p = params;
    p.rng_seed += run;
    return baselines::run_gim(device, g, model, p);
  };
}

Runner curipples_runner(graph::DiffusionModel model, imm::ImmParams params) {
  return [model, params](gpusim::Device& device, const graph::Graph& g,
                         support::metrics::MetricsRegistry& /*registry*/,
                         support::trace::TraceRecorder* /*trace*/,
                         support::profiler::WallProfile* /*profile*/,
                         std::uint32_t run) {
    imm::ImmParams p = params;
    p.rng_seed += run;
    return baselines::run_curipples(device, g, model, p);
  };
}

void print_k_sweep(const BenchEnv& env, graph::DiffusionModel model,
                   const std::vector<std::uint32_t>& ks, double eps) {
  std::vector<std::string> header{"Dataset"};
  for (const std::uint32_t k : ks) header.push_back("k=" + std::to_string(env.clamp_k(k)));
  support::TextTable table(header);

  for (const auto& spec : env.datasets) {
    const graph::Graph g = graph::build_dataset(spec, model);
    std::vector<std::string> row{std::string(spec.abbrev)};
    for (const std::uint32_t k : ks) {
      imm::ImmParams params;
      params.k = env.clamp_k(k);
      params.epsilon = env.clamp_eps(eps);
      const std::string id = std::string(spec.abbrev) + "/k=" +
                             std::to_string(params.k) + "/eps=" +
                             support::TextTable::num(params.epsilon, 2);
      const Cell eim_cell = run_cell(env, g, eim_runner(model, params), "eim/" + id);
      const Cell gim_cell = run_cell(env, g, gim_runner(model, params), "gim/" + id);
      row.push_back(speedup_cell(gim_cell, eim_cell));
    }
    table.add_row(std::move(row));
    table_progress(spec.abbrev);
  }
  table.print(std::cout);
}

void print_eps_sweep(const BenchEnv& env, graph::DiffusionModel model,
                     const std::vector<double>& epss, std::uint32_t k) {
  std::vector<std::string> header{"Dataset"};
  for (const double eps : epss) {
    header.push_back("eps=" + support::TextTable::num(env.clamp_eps(eps), 2));
  }
  support::TextTable table(header);

  for (const auto& spec : env.datasets) {
    const graph::Graph g = graph::build_dataset(spec, model);
    std::vector<std::string> row{std::string(spec.abbrev)};
    for (const double eps : epss) {
      imm::ImmParams params;
      params.k = env.clamp_k(k);
      params.epsilon = env.clamp_eps(eps);
      const std::string id = std::string(spec.abbrev) + "/k=" +
                             std::to_string(params.k) + "/eps=" +
                             support::TextTable::num(params.epsilon, 2);
      const Cell eim_cell = run_cell(env, g, eim_runner(model, params), "eim/" + id);
      const Cell gim_cell = run_cell(env, g, gim_runner(model, params), "gim/" + id);
      row.push_back(speedup_cell(gim_cell, eim_cell));
    }
    table.add_row(std::move(row));
    table_progress(spec.abbrev);
  }
  table.print(std::cout);
}

std::string speedup_cell(const Cell& baseline, const Cell& eim) {
  if (!eim.seconds.has_value()) return "OOM";
  if (!baseline.seconds.has_value()) {
    return "OOM/" + support::TextTable::num(*eim.seconds, 2);
  }
  return support::TextTable::num(*baseline.seconds / *eim.seconds, 2);
}

}  // namespace eim::bench
