// Memory-pressure spill tax — fig7's WV/IC cell replayed under a device
// budget a quarter of its unconstrained RRR footprint.
//
// The contract being priced: with SpillPolicy::Spill the budgeted run evicts
// cold sets device -> compressed host -> disk, finishes at full θ, and
// returns bit-identical seeds — never degraded, never truncated. The delta
// between the two rows is the modeled spill tax (PCIe transfers for
// evict/fetch plus the disk tier's bandwidth/latency envelope); spill.*
// counters in the EIM_BENCH_JSON snapshot attribute it
// (docs/PERFORMANCE.md "Spill overhead").
#include <cstdint>
#include <iostream>

#include "common.hpp"

int main() {
  using namespace eim;
  const bench::BenchEnv env = bench::load_env();
  constexpr auto kModel = graph::DiffusionModel::IndependentCascade;

  imm::ImmParams params;
  params.k = env.clamp_k(50);
  params.epsilon = env.clamp_eps(0.05);

  const auto spec = *graph::find_dataset("WV");
  const graph::Graph g = graph::build_dataset(spec, kModel);
  std::cout << "Spill tax on " << spec.name << "-like under IC (k=" << params.k
            << ", eps=" << params.epsilon << ")\n\n";

  const auto unconstrained = bench::run_cell(
      env, g, bench::eim_runner(kModel, params), "spill/WV/unconstrained");
  if (!unconstrained.seconds) {
    std::cerr << "unconstrained baseline OOMed; cannot price the spill tax\n";
    return 1;
  }

  // Budget = 1/4 of the run's own footprint: derived, not hard-coded, so the
  // cell stays meaningful if θ scheduling changes the footprint.
  eim_impl::EimOptions spill_options;
  spill_options.spill.policy = eim_impl::SpillPolicy::Spill;
  spill_options.spill.device_budget_bytes = unconstrained.last.rrr_bytes / 4;
  spill_options.spill.sets_per_block = 256;
  const auto budgeted =
      bench::run_cell(env, g, bench::eim_runner(kModel, params, spill_options),
                      "spill/WV/budget=quarter");
  if (!budgeted.seconds) {
    std::cerr << "budgeted run OOMed despite spill; the hierarchy is broken\n";
    return 1;
  }

  const bool identical = budgeted.last.seeds == unconstrained.last.seeds;
  const bool full_theta = !budgeted.last.degraded;

  support::TextTable table({"cell", "modeled s", "rrr MB", "spilled sets",
                            "compressed MB", "seeds identical"});
  const auto mb = [](std::uint64_t b) {
    return support::TextTable::num(static_cast<double>(b) / (1024.0 * 1024.0), 2);
  };
  table.add_row({"unconstrained", support::TextTable::num(*unconstrained.seconds, 4),
                 mb(unconstrained.last.rrr_bytes), "0", "0.00", "-"});
  table.add_row({"budget=rrr/4", support::TextTable::num(*budgeted.seconds, 4),
                 mb(budgeted.last.rrr_bytes),
                 std::to_string(budgeted.last.spilled_sets),
                 mb(budgeted.last.spill_bytes_compressed),
                 identical ? "yes" : "NO"});
  table.print(std::cout);
  std::cout << "\nspill tax: "
            << support::TextTable::num(
                   *budgeted.seconds / *unconstrained.seconds, 2)
            << "x modeled time for a 4x smaller device footprint\n";

  if (!identical || !full_theta) {
    std::cerr << (identical ? "" : "budgeted seeds diverged from baseline\n")
              << (full_theta ? "" : "budgeted run degraded below full theta\n");
    return 1;
  }
  return 0;
}
