// Multi-GPU scaling — the extension announced in the paper's conclusion.
//
// Sweeps the simulated device count on a fixed workload: seeds are
// bit-identical at every width (the sharding is by global sample id);
// sampling time shrinks near-linearly while the count all-reduce and
// per-pick broadcasts appear as a growing communication term.
#include <iostream>
#include <memory>

#include "common.hpp"
#include "eim/eim/multi_gpu.hpp"

int main() {
  using namespace eim;
  const bench::BenchEnv env = bench::load_env();

  const auto spec = *graph::find_dataset("WV");
  const graph::Graph g =
      graph::build_dataset(spec, graph::DiffusionModel::IndependentCascade);
  imm::ImmParams params;
  params.k = env.clamp_k(50);
  params.epsilon = env.clamp_eps(0.05);

  std::cout << "Multi-GPU scaling on " << spec.name << "-like (k=" << params.k
            << ", eps=" << params.epsilon << ")\n\n";

  support::TextTable table({"devices", "total s", "kernel s", "comm s", "speedup",
                            "seeds identical"});
  double base = 0.0;
  std::vector<graph::VertexId> reference_seeds;
  for (const std::uint32_t d : {1u, 2u, 4u, 8u}) {
    std::vector<std::unique_ptr<gpusim::Device>> owned;
    std::vector<gpusim::Device*> ptrs;
    for (std::uint32_t i = 0; i < d; ++i) {
      owned.push_back(std::make_unique<gpusim::Device>(
          gpusim::make_benchmark_device(env.memory_mb)));
      ptrs.push_back(owned.back().get());
    }
    const auto r = eim_impl::run_eim_multi(ptrs, g,
                                           graph::DiffusionModel::IndependentCascade,
                                           params);
    if (d == 1) {
      base = r.device_seconds;
      reference_seeds = r.seeds;
    }
    table.add_row({std::to_string(d), support::TextTable::num(r.device_seconds, 4),
                   support::TextTable::num(r.kernel_seconds, 4),
                   support::TextTable::num(r.communication_seconds, 4),
                   support::TextTable::num(base / r.device_seconds, 2),
                   r.seeds == reference_seeds ? "yes" : "NO"});
  }
  table.print(std::cout);
  return 0;
}
