// Micro-benchmarks (google-benchmark) for the hot primitives: Philox
// throughput, log-encoding encode/decode/concurrent store (per-element and
// word-streaming bulk), varint for comparison, reverse-reachability
// sampling rate, the forward simulator, greedy seed selection (lazy heap
// vs the linear-scan reference), and ThreadPool dispatch. These quantify
// host-side costs; the modeled GPU numbers come from the per-figure
// binaries.
//
// When EIM_BENCH_JSON is set, writes an eim.metrics.v3 envelope with one
// cell per benchmark carrying `wall_seconds` (seconds per iteration) so
// tools/bench_diff can track the host-time trajectory (warn-only).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <span>

#include "eim/diffusion/forward.hpp"
#include "eim/graph/draw_plan.hpp"
#include "eim/diffusion/reverse.hpp"
#include "eim/eim/rrr_collection.hpp"
#include "eim/eim/seed_selector.hpp"
#include "eim/encoding/bit_packed_array.hpp"
#include "eim/encoding/varint.hpp"
#include "eim/graph/generators.hpp"
#include "eim/graph/weights.hpp"
#include "eim/support/atomic_write.hpp"
#include "eim/support/error.hpp"
#include "eim/support/json.hpp"
#include "eim/support/rng.hpp"
#include "eim/support/thread_pool.hpp"

namespace {

using namespace eim;

void BM_PhiloxU32(benchmark::State& state) {
  support::RandomStream rng(1, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_u32());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PhiloxU32);

void BM_PhiloxDouble(benchmark::State& state) {
  support::RandomStream rng(1, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_double());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PhiloxDouble);

// Scalar float draws vs the lane-parallel bulk fill the samplers now use
// (fill_floats generates the identical sequence in SIMD-friendly blocks).
void BM_PhiloxFloatScalar(benchmark::State& state) {
  support::RandomStream rng(1, 3);
  std::vector<float> out(1 << 12);
  for (auto _ : state) {
    for (auto& v : out) v = rng.next_float();
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(out.size()));
}
BENCHMARK(BM_PhiloxFloatScalar);

void BM_PhiloxFillFloats(benchmark::State& state) {
  support::RandomStream rng(1, 3);
  std::vector<float> out(1 << 12);
  for (auto _ : state) {
    rng.fill_floats(out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(out.size()));
}
BENCHMARK(BM_PhiloxFillFloats);

// --- Fast-draw primitives (--draw-mode skip) -------------------------------
//
// One geometric skip-ahead draw replaces ~1/p per-edge Bernoulli draws, and
// one alias pick replaces an O(in-degree) prefix scan; these rows sit next
// to the Philox rows above so the per-draw cost of the replacement reads
// directly off the report (docs/PERFORMANCE.md "Draw efficiency").
void BM_DrawSkip(benchmark::State& state) {
  support::RandomStream rng(1, 4);
  const double p = graph::grid_success_probability(0.05f);
  const double log1m = std::log1p(-p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(support::geometric_skip(rng, log1m));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DrawSkip);

void BM_AliasPick(benchmark::State& state) {
  // A 64-in-edge star row — the alias pick is O(1), so the degree only
  // affects table build (outside the loop), not the measured pick.
  constexpr graph::VertexId kDeg = 64;
  static const graph::Graph g = [] {
    graph::EdgeList edges(kDeg + 1);
    for (graph::VertexId s = 0; s < kDeg; ++s) edges.add_edge(s, kDeg);
    edges.normalize();
    graph::Graph built = graph::Graph::from_edge_list(edges);
    graph::assign_weights(built, graph::DiffusionModel::LinearThreshold);
    return built;
  }();
  const graph::DrawPlan* plan = g.draw_plan();
  support::RandomStream rng(1, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::alias_pick_lt(*plan, g, kDeg, rng.next_float()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AliasPick);

void BM_BitPackedEncode(benchmark::State& state) {
  const auto bits = static_cast<std::uint32_t>(state.range(0));
  support::RandomStream rng(3, bits);
  std::vector<std::uint64_t> values(1 << 16);
  for (auto& v : values) v = rng.next_u64() & support::low_mask64(bits);
  for (auto _ : state) {
    encoding::BitPackedArray packed(values.size(), bits);
    for (std::size_t i = 0; i < values.size(); ++i) packed.set(i, values[i]);
    benchmark::DoNotOptimize(packed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(values.size()));
}
BENCHMARK(BM_BitPackedEncode)->Arg(12)->Arg(20)->Arg(31);

void BM_BitPackedDecode(benchmark::State& state) {
  const auto bits = static_cast<std::uint32_t>(state.range(0));
  support::RandomStream rng(3, bits);
  encoding::BitPackedArray packed(1 << 16, bits);
  for (std::size_t i = 0; i < packed.size(); ++i) {
    packed.set(i, rng.next_u64() & support::low_mask64(bits));
  }
  for (auto _ : state) {
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < packed.size(); ++i) sum += packed.get(i);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(packed.size()));
}
BENCHMARK(BM_BitPackedDecode)->Arg(12)->Arg(20)->Arg(31);

// Word-streaming bulk decode (decode_into) against the per-element get()
// loop above — same sizes and widths, so the ratio reads directly off the
// report. Arg 40 exercises the three-word (>32-bit) window.
void BM_BitPackedDecodeBulk(benchmark::State& state) {
  const auto bits = static_cast<std::uint32_t>(state.range(0));
  support::RandomStream rng(3, bits);
  encoding::BitPackedArray packed(1 << 16, bits);
  std::vector<std::uint64_t> values(packed.size());
  for (auto& v : values) v = rng.next_u64() & support::low_mask64(bits);
  packed.encode_into(0, values);
  std::vector<std::uint64_t> out(packed.size());
  for (auto _ : state) {
    packed.decode_into(0, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(packed.size()));
}
BENCHMARK(BM_BitPackedDecodeBulk)->Arg(12)->Arg(20)->Arg(31)->Arg(40);

// Streaming bulk encode (encode_into) against the set() loop of
// BM_BitPackedEncode.
void BM_BitPackedEncodeBulk(benchmark::State& state) {
  const auto bits = static_cast<std::uint32_t>(state.range(0));
  support::RandomStream rng(3, bits);
  std::vector<std::uint64_t> values(1 << 16);
  for (auto& v : values) v = rng.next_u64() & support::low_mask64(bits);
  for (auto _ : state) {
    encoding::BitPackedArray packed(values.size(), bits);
    packed.encode_into(0, values);
    benchmark::DoNotOptimize(packed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(values.size()));
}
BENCHMARK(BM_BitPackedEncodeBulk)->Arg(12)->Arg(20)->Arg(31);

void BM_BitPackedStoreRelease(benchmark::State& state) {
  encoding::BitPackedArray packed(1 << 16, 14);
  for (auto _ : state) {
    state.PauseTiming();
    packed.clear();
    state.ResumeTiming();
    for (std::size_t i = 0; i < packed.size(); ++i) {
      packed.store_release(i, i & 0x3FFFu);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(packed.size()));
}
BENCHMARK(BM_BitPackedStoreRelease);

// Bulk slice publish (the RRR commit path) vs the per-element atomic loop
// above: interior words are plain stores, only boundary words pay fetch_or.
void BM_BitPackedStoreReleaseBulk(benchmark::State& state) {
  encoding::BitPackedArray packed(1 << 16, 14);
  std::vector<std::uint32_t> values(1 << 16);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<std::uint32_t>(i) & 0x3FFFu;
  }
  for (auto _ : state) {
    state.PauseTiming();
    packed.clear();
    state.ResumeTiming();
    // Publish in 64-slot slices, like sampler warps committing sets.
    for (std::size_t first = 0; first < values.size(); first += 64) {
      packed.store_release_range(
          first, std::span<const std::uint32_t>(values.data() + first, 64));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(packed.size()));
}
BENCHMARK(BM_BitPackedStoreReleaseBulk);

// The RRR commit tail: publish each 64-slot slice into R and bump the
// per-vertex frequency counts C. Staged = publish pass + separate counts
// walk (the old try_commit); fused = counts ride the publish accumulator
// via the store_release_range callback (the current try_commit).
void BM_RrrCommitStaged(benchmark::State& state) {
  encoding::BitPackedArray packed(1 << 16, 14);
  std::vector<std::uint32_t> values(1 << 16);
  std::vector<std::uint32_t> counts(1 << 14, 0);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<std::uint32_t>(i) & 0x3FFFu;
  }
  for (auto _ : state) {
    state.PauseTiming();
    packed.clear();
    state.ResumeTiming();
    for (std::size_t first = 0; first < values.size(); first += 64) {
      const std::span<const std::uint32_t> slice(values.data() + first, 64);
      packed.store_release_range(first, slice);
      for (const std::uint32_t v : slice) {
        std::atomic_ref<std::uint32_t>(counts[v]).fetch_add(1,
                                                            std::memory_order_relaxed);
      }
    }
    benchmark::DoNotOptimize(counts.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(values.size()));
}
BENCHMARK(BM_RrrCommitStaged);

void BM_RrrCommitFused(benchmark::State& state) {
  encoding::BitPackedArray packed(1 << 16, 14);
  std::vector<std::uint32_t> values(1 << 16);
  std::vector<std::uint32_t> counts(1 << 14, 0);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<std::uint32_t>(i) & 0x3FFFu;
  }
  std::uint32_t* const cp = counts.data();
  for (auto _ : state) {
    state.PauseTiming();
    packed.clear();
    state.ResumeTiming();
    for (std::size_t first = 0; first < values.size(); first += 64) {
      packed.store_release_range(
          first, std::span<const std::uint32_t>(values.data() + first, 64),
          [cp](std::uint32_t v) {
            std::atomic_ref<std::uint32_t>(cp[v]).fetch_add(1,
                                                            std::memory_order_relaxed);
          });
    }
    benchmark::DoNotOptimize(counts.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(values.size()));
}
BENCHMARK(BM_RrrCommitFused);

void BM_VarintRoundTrip(benchmark::State& state) {
  support::RandomStream rng(5, 5);
  std::vector<std::uint64_t> values(1 << 14);
  for (auto& v : values) v = rng.next_below(1 << 20);
  for (auto _ : state) {
    const auto bytes = encoding::varint_encode(values);
    benchmark::DoNotOptimize(encoding::varint_decode(bytes));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(values.size()));
}
BENCHMARK(BM_VarintRoundTrip);

const graph::Graph& bench_graph(graph::DiffusionModel model) {
  static graph::Graph ic = [] {
    graph::Graph g = graph::Graph::from_edge_list(graph::barabasi_albert(10'000, 4, 0.3, 7));
    graph::assign_weights(g, graph::DiffusionModel::IndependentCascade);
    return g;
  }();
  static graph::Graph lt = [] {
    graph::Graph g = graph::Graph::from_edge_list(graph::barabasi_albert(10'000, 4, 0.3, 7));
    graph::assign_weights(g, graph::DiffusionModel::LinearThreshold);
    return g;
  }();
  return model == graph::DiffusionModel::IndependentCascade ? ic : lt;
}

void BM_RrrSampleIc(benchmark::State& state) {
  const auto& g = bench_graph(graph::DiffusionModel::IndependentCascade);
  diffusion::RrrSampler sampler(g, graph::DiffusionModel::IndependentCascade);
  support::RandomStream rng(9, 1);
  std::vector<graph::VertexId> out;
  for (auto _ : state) {
    sampler.sample_into(rng.next_below(g.num_vertices()), rng, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RrrSampleIc);

void BM_RrrSampleLt(benchmark::State& state) {
  const auto& g = bench_graph(graph::DiffusionModel::LinearThreshold);
  diffusion::RrrSampler sampler(g, graph::DiffusionModel::LinearThreshold);
  support::RandomStream rng(9, 2);
  std::vector<graph::VertexId> out;
  for (auto _ : state) {
    sampler.sample_into(rng.next_below(g.num_vertices()), rng, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RrrSampleLt);

void BM_ForwardCascadeIc(benchmark::State& state) {
  const auto& g = bench_graph(graph::DiffusionModel::IndependentCascade);
  const std::vector<graph::VertexId> seeds{0, 1, 2, 3, 4};
  std::uint64_t trial = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(diffusion::simulate_ic(g, seeds, 7, trial++));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ForwardCascadeIc);

// --- Seed selection: lazy heap vs linear reference -------------------------
//
// A synthetic collection sized so the per-pick arg-max dominates: n = 2^18
// candidate vertices, 10k sets of ~16 members, k = 300 picks. The linear
// reference scans all n counts per pick (k*n ≈ 79M reads); the lazy heap
// pops a handful of stale entries. Both share the identical preprocessing
// (flat decode + inverted index) and modeled charges, so the ratio isolates
// the arg-max strategy.
struct SelectFixture {
  static constexpr graph::VertexId kN = 1u << 18;
  static constexpr std::uint64_t kSets = 10'000;

  gpusim::Device device{gpusim::make_benchmark_device(256)};
  eim_impl::DeviceRrrCollection collection{device, kN, /*log_encode=*/true};

  SelectFixture() {
    support::RandomStream rng(11, 42);
    collection.reserve(kSets, kSets * 16 + 64);
    std::vector<graph::VertexId> set;
    for (std::uint64_t i = 0; i < kSets; ++i) {
      set.clear();
      for (int j = 0; j < 16; ++j) {
        set.push_back(static_cast<graph::VertexId>(rng.next_below(kN)));
      }
      std::sort(set.begin(), set.end());
      set.erase(std::unique(set.begin(), set.end()), set.end());
      const bool ok = collection.try_commit(i, set);
      EIM_CHECK_MSG(ok, "bench fixture overflowed its reservation");
    }
    collection.set_num_sets(kSets);
  }

  static SelectFixture& instance() {
    static SelectFixture fx;
    return fx;
  }
};

void run_seed_select(benchmark::State& state, eim_impl::ArgMaxMode mode) {
  auto& fx = SelectFixture::instance();
  eim_impl::GpuSeedSelector selector(fx.device, eim_impl::ScanStrategy::ThreadPerSet);
  selector.set_argmax_mode(mode);
  for (auto _ : state) {
    fx.device.timeline().reset();  // modeled segments, not host time
    benchmark::DoNotOptimize(selector.select(fx.collection, 300));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 300);
}

void BM_SeedSelectLazyHeap(benchmark::State& state) {
  run_seed_select(state, eim_impl::ArgMaxMode::kLazyHeap);
}
BENCHMARK(BM_SeedSelectLazyHeap);

void BM_SeedSelectLinearRef(benchmark::State& state) {
  run_seed_select(state, eim_impl::ArgMaxMode::kLinearReference);
}
BENCHMARK(BM_SeedSelectLinearRef);

// --- ThreadPool dispatch overhead ------------------------------------------
//
// parallel_for over a trivial body measures pure coordination cost. The
// 2-worker pool forces the queued (non-serial-fast-path) protocol even on a
// single-core host; grain 1 pays one cursor bump per item where adaptive
// grain pays a handful per call.
void run_parallel_for(benchmark::State& state, std::size_t grain) {
  static support::ThreadPool pool(2);
  const auto items = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint64_t> data(items);
  for (auto _ : state) {
    pool.parallel_for(
        0, items, [&](std::size_t i) { data[i] = i; }, grain);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(items));
}

void BM_ParallelForAdaptive(benchmark::State& state) {
  run_parallel_for(state, /*grain=*/0);
}
BENCHMARK(BM_ParallelForAdaptive)->Arg(1 << 10)->Arg(1 << 16);

void BM_ParallelForGrain1(benchmark::State& state) {
  run_parallel_for(state, /*grain=*/1);
}
BENCHMARK(BM_ParallelForGrain1)->Arg(1 << 10)->Arg(1 << 16);

// --- Envelope emission ------------------------------------------------------
//
// Mirrors bench/common.cpp's BenchReporter shape so tools/bench_diff can
// consume micro runs too. Micro cells carry only `wall_seconds` (seconds
// per iteration, real time) — there is no modeled quantity here, so the
// whole envelope is warn-only by construction.
class EnvelopeReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      if (run.iterations == 0) continue;
      cells_.emplace_back(run.benchmark_name(),
                          run.real_accumulated_time /
                              static_cast<double>(run.iterations));
    }
    ConsoleReporter::ReportRuns(reports);
  }

  void flush_envelope() const {
    const char* path = std::getenv("EIM_BENCH_JSON");
    if (path == nullptr || *path == '\0' || cells_.empty()) return;
    support::atomic_write_text(path, [&](std::ostream& out) {
      support::JsonWriter w(out);
      w.begin_object();
      w.field("schema", "eim.metrics.v3");
      w.field("tool", "bench_micro");
      w.begin_array("cells");
      for (const auto& [id, wall] : cells_) {
        w.begin_object().field("id", id).field("wall_seconds", wall).end_object();
      }
      w.end_array();
      w.end_object();
      out << '\n';
    });
  }

 private:
  std::vector<std::pair<std::string, double>> cells_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  EnvelopeReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  reporter.flush_envelope();
  benchmark::Shutdown();
  return 0;
}
