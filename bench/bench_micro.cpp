// Micro-benchmarks (google-benchmark) for the hot primitives: Philox
// throughput, log-encoding encode/decode/concurrent store, varint for
// comparison, reverse-reachability sampling rate, and the forward
// simulator. These quantify host-side costs; the modeled GPU numbers come
// from the per-figure binaries.
#include <benchmark/benchmark.h>

#include "eim/diffusion/forward.hpp"
#include "eim/diffusion/reverse.hpp"
#include "eim/encoding/bit_packed_array.hpp"
#include "eim/encoding/varint.hpp"
#include "eim/graph/generators.hpp"
#include "eim/graph/weights.hpp"
#include "eim/support/rng.hpp"

namespace {

using namespace eim;

void BM_PhiloxU32(benchmark::State& state) {
  support::RandomStream rng(1, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_u32());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PhiloxU32);

void BM_PhiloxDouble(benchmark::State& state) {
  support::RandomStream rng(1, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_double());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PhiloxDouble);

void BM_BitPackedEncode(benchmark::State& state) {
  const auto bits = static_cast<std::uint32_t>(state.range(0));
  support::RandomStream rng(3, bits);
  std::vector<std::uint64_t> values(1 << 16);
  for (auto& v : values) v = rng.next_u64() & support::low_mask64(bits);
  for (auto _ : state) {
    encoding::BitPackedArray packed(values.size(), bits);
    for (std::size_t i = 0; i < values.size(); ++i) packed.set(i, values[i]);
    benchmark::DoNotOptimize(packed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(values.size()));
}
BENCHMARK(BM_BitPackedEncode)->Arg(12)->Arg(20)->Arg(31);

void BM_BitPackedDecode(benchmark::State& state) {
  const auto bits = static_cast<std::uint32_t>(state.range(0));
  support::RandomStream rng(3, bits);
  encoding::BitPackedArray packed(1 << 16, bits);
  for (std::size_t i = 0; i < packed.size(); ++i) {
    packed.set(i, rng.next_u64() & support::low_mask64(bits));
  }
  for (auto _ : state) {
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < packed.size(); ++i) sum += packed.get(i);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(packed.size()));
}
BENCHMARK(BM_BitPackedDecode)->Arg(12)->Arg(20)->Arg(31);

void BM_BitPackedStoreRelease(benchmark::State& state) {
  encoding::BitPackedArray packed(1 << 16, 14);
  for (auto _ : state) {
    state.PauseTiming();
    packed.clear();
    state.ResumeTiming();
    for (std::size_t i = 0; i < packed.size(); ++i) {
      packed.store_release(i, i & 0x3FFFu);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(packed.size()));
}
BENCHMARK(BM_BitPackedStoreRelease);

void BM_VarintRoundTrip(benchmark::State& state) {
  support::RandomStream rng(5, 5);
  std::vector<std::uint64_t> values(1 << 14);
  for (auto& v : values) v = rng.next_below(1 << 20);
  for (auto _ : state) {
    const auto bytes = encoding::varint_encode(values);
    benchmark::DoNotOptimize(encoding::varint_decode(bytes));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(values.size()));
}
BENCHMARK(BM_VarintRoundTrip);

const graph::Graph& bench_graph(graph::DiffusionModel model) {
  static graph::Graph ic = [] {
    graph::Graph g = graph::Graph::from_edge_list(graph::barabasi_albert(10'000, 4, 0.3, 7));
    graph::assign_weights(g, graph::DiffusionModel::IndependentCascade);
    return g;
  }();
  static graph::Graph lt = [] {
    graph::Graph g = graph::Graph::from_edge_list(graph::barabasi_albert(10'000, 4, 0.3, 7));
    graph::assign_weights(g, graph::DiffusionModel::LinearThreshold);
    return g;
  }();
  return model == graph::DiffusionModel::IndependentCascade ? ic : lt;
}

void BM_RrrSampleIc(benchmark::State& state) {
  const auto& g = bench_graph(graph::DiffusionModel::IndependentCascade);
  diffusion::RrrSampler sampler(g, graph::DiffusionModel::IndependentCascade);
  support::RandomStream rng(9, 1);
  std::vector<graph::VertexId> out;
  for (auto _ : state) {
    sampler.sample_into(rng.next_below(g.num_vertices()), rng, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RrrSampleIc);

void BM_RrrSampleLt(benchmark::State& state) {
  const auto& g = bench_graph(graph::DiffusionModel::LinearThreshold);
  diffusion::RrrSampler sampler(g, graph::DiffusionModel::LinearThreshold);
  support::RandomStream rng(9, 2);
  std::vector<graph::VertexId> out;
  for (auto _ : state) {
    sampler.sample_into(rng.next_below(g.num_vertices()), rng, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RrrSampleLt);

void BM_ForwardCascadeIc(benchmark::State& state) {
  const auto& g = bench_graph(graph::DiffusionModel::IndependentCascade);
  const std::vector<graph::VertexId> seeds{0, 1, 2, 3, 4};
  std::uint64_t trial = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(diffusion::simulate_ic(g, seeds, 7, trial++));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ForwardCascadeIc);

}  // namespace

BENCHMARK_MAIN();
