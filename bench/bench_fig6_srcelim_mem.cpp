// Figure 6 — percent change in the memory holding R when source vertices
// are removed (§3.4/§4.3: average -8.65% across networks; singleton-heavy
// networks shrink most; a few networks grow because fewer-but-larger sets
// are generated).
#include <iostream>

#include "common.hpp"

int main() {
  using namespace eim;
  const bench::BenchEnv env = bench::load_env();

  const double eps = env.clamp_eps(0.2);
  std::cout << "Figure 6: %% change in |R| elements when sources are removed "
            << "(IC, k=50, eps=" << eps << ")\n\n";

  support::TextTable table(
      {"Dataset", "R elems kept", "R elems elim", "% change", "R bytes % change"});
  support::RunningStat average;
  for (const auto& spec : env.datasets) {
    const graph::Graph g =
        graph::build_dataset(spec, graph::DiffusionModel::IndependentCascade);
    imm::ImmParams params;
    params.k = env.clamp_k(50);
    params.epsilon = eps;

    eim_impl::EimOptions keep;
    keep.eliminate_sources = false;
    eim_impl::EimOptions drop;
    drop.eliminate_sources = true;

    const auto with_sources = bench::run_cell(
        env, g,
        bench::eim_runner(graph::DiffusionModel::IndependentCascade, params, keep));
    const auto eliminated = bench::run_cell(
        env, g,
        bench::eim_runner(graph::DiffusionModel::IndependentCascade, params, drop));
    if (!with_sources.seconds || !eliminated.seconds) {
      table.add_row({std::string(spec.abbrev), "OOM", "-", "-", "-"});
      continue;
    }

    const double change =
        100.0 * (static_cast<double>(eliminated.last.total_elements) /
                     static_cast<double>(with_sources.last.total_elements) -
                 1.0);
    const double bytes_change =
        100.0 * (static_cast<double>(eliminated.last.rrr_bytes) /
                     static_cast<double>(with_sources.last.rrr_bytes) -
                 1.0);
    average.push(change);
    table.add_row({std::string(spec.abbrev),
                   support::TextTable::count(with_sources.last.total_elements),
                   support::TextTable::count(eliminated.last.total_elements),
                   support::TextTable::num(change, 2),
                   support::TextTable::num(bytes_change, 2)});
  }
  table.print(std::cout);
  std::cout << "\naverage change across networks: "
            << support::TextTable::num(average.mean(), 2)
            << "% (paper: -8.65%)\n";
  return 0;
}
