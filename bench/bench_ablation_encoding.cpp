// §3.1 ablation — why log encoding and not Huffman or bitmap coding?
//
// Compresses the *same* RRR collections with all four codecs and reports
// footprint plus host decode throughput. The paper's argument reproduces:
// Huffman edges out bit-packing on size for hub-skewed collections but
// decodes bit-serially; bitmaps only pay off for near-critical dense sets;
// log encoding combines competitive size with by far the fastest random
// decode, which is what a GPU kernel needs.
#include <iostream>

#include "common.hpp"
#include "eim/encoding/bit_packed_array.hpp"
#include "eim/encoding/bitmap_set.hpp"
#include "eim/encoding/huffman.hpp"
#include "eim/encoding/varint.hpp"
#include "eim/imm/imm.hpp"
#include "eim/imm/rrr_store.hpp"
#include "eim/support/timer.hpp"

int main() {
  using namespace eim;
  const bench::BenchEnv env = bench::load_env();

  std::cout << "Encoding ablation over RRR collections (IC, 50k sets each)\n\n";
  support::TextTable table({"Dataset", "raw MB", "log-enc MB", "huffman MB",
                            "varint MB", "bitmap MB", "log decode Melem/s",
                            "huffman decode Melem/s"});

  for (const auto& spec : env.datasets) {
    // Keep the ablation affordable: representative subset unless overridden.
    if (std::getenv("EIM_BENCH_DATASETS") == nullptr &&
        spec.abbrev != "WV" && spec.abbrev != "EE" && spec.abbrev != "CA" &&
        spec.abbrev != "SPR") {
      continue;
    }
    const graph::Graph g =
        graph::build_dataset(spec, graph::DiffusionModel::IndependentCascade);
    imm::ImmParams params;
    imm::RrrStore store(g.num_vertices());
    (void)imm::sample_to_target(g, graph::DiffusionModel::IndependentCascade, params,
                                store, 50'000);

    // Flatten R.
    std::vector<std::uint32_t> flat;
    flat.reserve(store.total_elements());
    for (std::uint64_t i = 0; i < store.num_sets(); ++i) {
      const auto set = store.set(i);
      flat.insert(flat.end(), set.begin(), set.end());
    }
    const double raw_mb = static_cast<double>(flat.size()) * 4 / 1e6;

    // Log encoding.
    const auto packed = encoding::BitPackedArray::encode_u32(flat);

    // Huffman over the same stream.
    const auto huff = encoding::huffman_encode(flat);

    // Varint.
    std::vector<std::uint64_t> wide(flat.begin(), flat.end());
    const auto var_bytes = encoding::varint_encode(wide);

    // Hybrid bitmap per set.
    std::uint64_t bitmap_bytes = 0;
    for (std::uint64_t i = 0; i < store.num_sets(); ++i) {
      bitmap_bytes += encoding::bitmap_encode_set(store.set(i), g.num_vertices()).bytes();
    }

    // Decode throughput (host wall clock; relative numbers are the point).
    support::WallTimer t1;
    std::uint64_t sink = 0;
    for (std::size_t i = 0; i < packed.size(); ++i) sink += packed.get(i);
    const double log_rate =
        static_cast<double>(packed.size()) / t1.elapsed_seconds() / 1e6;

    support::WallTimer t2;
    const auto decoded = encoding::huffman_decode(huff);
    sink += decoded.size();
    const double huff_rate =
        static_cast<double>(decoded.size()) / t2.elapsed_seconds() / 1e6;
    if (sink == 0) std::cout << "";  // keep the decode loops alive

    table.add_row({std::string(spec.abbrev), support::TextTable::num(raw_mb, 2),
                   support::TextTable::num(static_cast<double>(packed.storage_bytes()) / 1e6, 2),
                   support::TextTable::num(static_cast<double>(huff.total_bytes()) / 1e6, 2),
                   support::TextTable::num(static_cast<double>(var_bytes.size()) / 1e6, 2),
                   support::TextTable::num(static_cast<double>(bitmap_bytes) / 1e6, 2),
                   support::TextTable::num(log_rate, 0),
                   support::TextTable::num(huff_rate, 0)});
  }
  table.print(std::cout);
  return 0;
}
