// Table 2 — speedup of eIM over gIM under the IC model for increasing seed
// set sizes k (eps = 0.05).
//
// Paper shape: speedup generally grows with k; gIM OOMs on com-Amazon at
// every k and on web-Google / soc-LiveJournal1 at larger k — those cells
// print "OOM/x.xx" with eIM's absolute runtime, as in the paper.
#include <iostream>

#include "common.hpp"

int main() {
  using namespace eim;
  const bench::BenchEnv env = bench::load_env();
  std::cout << "Table 2: eIM speedup over gIM, IC model, eps=0.05, k sweep\n\n";
  bench::print_k_sweep(env, graph::DiffusionModel::IndependentCascade,
                       {20, 40, 60, 80, 100}, 0.05);
  return 0;
}
