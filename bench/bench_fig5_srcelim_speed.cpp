// Figure 5 — speedup from source-vertex elimination vs the fraction of RRR
// sets that contain only their source (§3.4).
//
// Networks whose samples are dominated by source-only singletons (many
// zero-in-degree or low-in-degree vertices) converge much faster once those
// singletons are discarded, which is the paper's scatter trend.
#include <iostream>

#include "common.hpp"

int main() {
  using namespace eim;
  const bench::BenchEnv env = bench::load_env();

  const double eps = env.clamp_eps(0.2);
  std::cout << "Figure 5: source-elimination speedup vs %% source-only sets "
            << "(IC, k=50, eps=" << eps << ")\n\n";

  support::TextTable table({"Dataset", "% source-only sets", "theta kept", "theta elim",
                            "speedup"});
  for (const auto& spec : env.datasets) {
    const graph::Graph g =
        graph::build_dataset(spec, graph::DiffusionModel::IndependentCascade);
    imm::ImmParams params;
    params.k = env.clamp_k(50);
    params.epsilon = eps;

    eim_impl::EimOptions keep;
    keep.eliminate_sources = false;
    eim_impl::EimOptions drop;
    drop.eliminate_sources = true;

    const auto with_sources = bench::run_cell(
        env, g,
        bench::eim_runner(graph::DiffusionModel::IndependentCascade, params, keep));
    const auto eliminated = bench::run_cell(
        env, g,
        bench::eim_runner(graph::DiffusionModel::IndependentCascade, params, drop));
    if (!with_sources.seconds || !eliminated.seconds) {
      table.add_row({std::string(spec.abbrev), "OOM", "-", "-", "-"});
      continue;
    }

    // Singleton share measured from the elimination run's own discard
    // accounting: discarded / (discarded + kept).
    const auto& e = eliminated.last;
    const double singleton_fraction =
        static_cast<double>(e.singletons_discarded) /
        static_cast<double>(e.singletons_discarded + e.num_sets);

    table.add_row({std::string(spec.abbrev),
                   support::TextTable::num(100.0 * singleton_fraction, 1),
                   support::TextTable::count(with_sources.last.num_sets),
                   support::TextTable::count(e.num_sets),
                   support::TextTable::num(*with_sources.seconds / *eliminated.seconds,
                                           2)});
  }
  table.print(std::cout);
  return 0;
}
