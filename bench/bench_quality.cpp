// §4.1 quality claim — "quality of solutions ... provided by eIM remains
// the same as the one by cuRipples and gIM".
//
// For a sample of networks and both models, every backend's seed set is
// scored by the same forward Monte-Carlo simulator; the expected spreads
// must agree within sampling noise (and the serial IMM reference is
// included as the anchor).
//
// The second section is the --draw-mode equivalence gate (docs/
// PERFORMANCE.md "Draw efficiency"): on the fig7 (IC) and fig8 (LT)
// envelopes, eIM's Exact and Skip modes must pick seed sets whose expected
// spreads agree within kDrawModeTolerance. Exceeding it exits nonzero —
// this is the CI gate that lets the Skip mode ship without a bit-identity
// contract (it deliberately consumes the RNG differently).
#include <iostream>

#include "common.hpp"
#include "eim/diffusion/forward.hpp"
#include "eim/imm/imm.hpp"

namespace {
/// Allowed relative spread deviation between Exact and Skip seeds. Both
/// modes sample the same distribution, so the gap is pure Monte Carlo noise
/// — 5% is several sigma at 300 scoring trials on the quality networks.
constexpr double kDrawModeTolerance = 0.05;
}  // namespace

int main() {
  using namespace eim;
  const bench::BenchEnv env = bench::load_env();

  imm::ImmParams params;
  params.k = env.clamp_k(50);
  params.epsilon = env.clamp_eps(0.2);  // quality is eps-insensitive in practice
  constexpr std::uint32_t kTrials = 300;

  std::cout << "Solution quality: expected spread of each backend's seeds "
            << "(forward MC, " << kTrials << " trials)\n\n";

  for (const auto model : {graph::DiffusionModel::IndependentCascade,
                           graph::DiffusionModel::LinearThreshold}) {
    std::cout << "\n-- " << graph::to_string(model) << " model --\n";
    support::TextTable table(
        {"Dataset", "serial IMM", "eIM", "gIM", "cuRipples", "max deviation %"});
    for (const auto& spec : env.datasets) {
      // Quality needs only a handful of networks; skip the giants unless
      // explicitly requested via EIM_BENCH_DATASETS.
      if (std::getenv("EIM_BENCH_DATASETS") == nullptr &&
          spec.synth_edges > 150'000) {
        continue;
      }
      const graph::Graph g = graph::build_dataset(spec, model);

      const auto serial = imm::run_imm_serial(g, model, params);
      const auto eim_cell = bench::run_cell(env, g, bench::eim_runner(model, params));
      const auto gim_cell = bench::run_cell(env, g, bench::gim_runner(model, params));
      const auto cur_cell =
          bench::run_cell(env, g, bench::curipples_runner(model, params));
      if (!eim_cell.seconds || !gim_cell.seconds || !cur_cell.seconds) continue;

      const double s0 =
          diffusion::estimate_spread(g, model, serial.seeds, kTrials, 11).mean;
      const double s1 =
          diffusion::estimate_spread(g, model, eim_cell.last.seeds, kTrials, 11).mean;
      const double s2 =
          diffusion::estimate_spread(g, model, gim_cell.last.seeds, kTrials, 11).mean;
      const double s3 =
          diffusion::estimate_spread(g, model, cur_cell.last.seeds, kTrials, 11).mean;
      const double lo = std::min(std::min(s0, s1), std::min(s2, s3));
      const double hi = std::max(std::max(s0, s1), std::max(s2, s3));
      table.add_row({std::string(spec.abbrev), support::TextTable::num(s0, 1),
                     support::TextTable::num(s1, 1), support::TextTable::num(s2, 1),
                     support::TextTable::num(s3, 1),
                     support::TextTable::num(100.0 * (hi - lo) / hi, 2)});
    }
    table.print(std::cout);
  }

  // --- Draw-mode equivalence gate (fig7 = IC, fig8 = LT) ---
  bool drawmode_ok = true;
  std::cout << "\nDraw-mode equivalence: eIM Exact vs Skip seeds, same scorer\n";
  for (const auto model : {graph::DiffusionModel::IndependentCascade,
                           graph::DiffusionModel::LinearThreshold}) {
    const char* fig = model == graph::DiffusionModel::IndependentCascade
                          ? "fig7_ic"
                          : "fig8_lt";
    std::cout << "\n-- " << graph::to_string(model) << " model --\n";
    support::TextTable table({"Dataset", "exact", "skip", "deviation %", "gate"});
    for (const auto& spec : env.datasets) {
      if (std::getenv("EIM_BENCH_DATASETS") == nullptr &&
          spec.synth_edges > 150'000) {
        continue;
      }
      const graph::Graph g = graph::build_dataset(spec, model);

      const std::string stem =
          std::string(fig) + "_" + std::string(spec.abbrev) + "_drawmode_";
      const auto exact_cell = bench::run_cell(
          env, g, bench::eim_runner(model, params), stem + "exact");
      eim_impl::EimOptions skip_options;
      skip_options.draw_mode = eim_impl::DrawMode::Skip;
      const auto skip_cell = bench::run_cell(
          env, g, bench::eim_runner(model, params, skip_options), stem + "skip");
      if (!exact_cell.seconds || !skip_cell.seconds) continue;

      const double exact_spread =
          diffusion::estimate_spread(g, model, exact_cell.last.seeds, kTrials, 11)
              .mean;
      const double skip_spread =
          diffusion::estimate_spread(g, model, skip_cell.last.seeds, kTrials, 11)
              .mean;
      const double deviation =
          exact_spread > 0.0 ? std::abs(skip_spread - exact_spread) / exact_spread
                             : 0.0;
      const bool ok = deviation <= kDrawModeTolerance;
      drawmode_ok = drawmode_ok && ok;
      table.add_row({std::string(spec.abbrev),
                     support::TextTable::num(exact_spread, 1),
                     support::TextTable::num(skip_spread, 1),
                     support::TextTable::num(100.0 * deviation, 2),
                     ok ? "ok" : "FAIL"});
    }
    table.print(std::cout);
  }
  if (!drawmode_ok) {
    std::cerr << "error: draw-mode spread deviation above "
              << 100.0 * kDrawModeTolerance << "%\n";
    return 1;
  }
  return 0;
}
