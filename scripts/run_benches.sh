#!/usr/bin/env bash
# Run every benchmark binary sequentially, teeing the combined output to
# bench_output.txt. Cheap benches run first so partial results are useful.
# Each bench also writes a machine-readable BENCH_<name>.json metrics report
# (eim.metrics.v3, one snapshot per cell — diff two runs with
# build/tools/bench_diff, trend several with build/tools/bench_history), a
# TRACE_<name>.json Chrome trace of its first cell (open in
# ui.perfetto.dev), and a PROF_<name>.folded wall profile of that cell
# (attribute with build/tools/prof_report — see docs/OBSERVABILITY.md).
set -u
cd "$(dirname "$0")/.."

OUT=bench_output.txt
: > "$OUT"

BENCHES=(
  bench_table1_graphs
  bench_fig3_scan
  bench_fig4_logenc
  bench_fig5_srcelim_speed
  bench_fig6_srcelim_mem
  bench_ablation_lt_scan
  bench_ablation_encoding
  bench_multi_gpu
  bench_quality
  bench_fig7_ic
  bench_fig8_lt
  bench_table2_ic_k
  bench_table4_lt_k
  bench_table3_ic_eps
  bench_table5_lt_eps
  bench_micro
)

for b in "${BENCHES[@]}"; do
  echo "===== build/bench/$b =====" >> "$OUT"
  EIM_BENCH_JSON="BENCH_${b}.json" EIM_BENCH_TRACE="TRACE_${b}.json" \
    EIM_BENCH_PROFILE="PROF_${b}.folded" \
    ./build/bench/"$b" >> "$OUT" 2>&1
  echo >> "$OUT"
done
echo "SUITE DONE" >> "$OUT"
