#!/usr/bin/env bash
# Pre-merge gate: build everything under AddressSanitizer + UBSan and run
# the default test suite plus the stress-labeled tests (see README.md).
#
# Usage: scripts/run_checks.sh [build-dir]
#   build-dir defaults to build-asan (kept separate from the regular build).
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build-asan}"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "== configure (${build_dir}, ASan+UBSan) =="
cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DEIM_SANITIZE=ON

echo "== build =="
cmake --build "${build_dir}" -j "${jobs}"

# Make UBSan failures fatal and loud; halt_on_error keeps ctest exit codes
# meaningful instead of letting a poisoned process limp to "Passed".
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}"

echo "== default test suite =="
ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"

echo "== stress-labeled tests =="
ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}" -C stress -L stress

echo "All checks passed."
