#!/usr/bin/env bash
# Pre-merge gate: build everything under AddressSanitizer + UBSan and run
# the default test suite plus the stress-, checkpoint-, cluster-, spill-,
# and drawmode-labeled tests (see README.md), exercise CLI-level
# checkpoint/resume including corrupt-snapshot rejection, a --draw-mode
# skip round-trip with mode-mismatch rejection, a node-kill cluster
# failover smoke, and a quarter-budget spill smoke that must reproduce the
# unconstrained seeds bit-identically, then
# run one small traced benchmark, validate the JSON artifacts it emits, and
# diff its timings against the committed baseline. Finishes with a
# Release-build perf smoke: bench_micro plus the fig7, multi-node, and
# spill-tax curves diffed bit-identically against bench/baselines (wall rows
# are warn-only; see docs/PERFORMANCE.md), with the sampling profiler
# attached to the fig7 run — its folded stacks must symbolize (prof_report
# gate) and the profiled modeled rows must stay bit-identical — and the
# bench_quality draw-mode spread-equivalence gate (always fatal).
#
# Usage: scripts/run_checks.sh [build-dir]
#   build-dir defaults to build-asan (kept separate from the regular build).
#
# The benchmark diff is warn-only by default (modeled time shifts whenever
# the cost model or the pipeline legitimately changes); export
# EIM_CHECKS_BENCH_GATE=1 to make a regression beyond the threshold fatal.
# Refresh the baseline with the command printed on mismatch.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build-asan}"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "== configure (${build_dir}, ASan+UBSan) =="
cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DEIM_SANITIZE=ON

echo "== build =="
cmake --build "${build_dir}" -j "${jobs}"

# Make UBSan failures fatal and loud; halt_on_error keeps ctest exit codes
# meaningful instead of letting a poisoned process limp to "Passed".
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}"

echo "== default test suite =="
ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"

echo "== stress-labeled tests =="
ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}" -C stress -L stress

echo "== checkpoint-labeled tests (kill-at-every-ordinal resume sweep) =="
ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}" -L checkpoint

echo "== cluster-labeled tests (multi-node failover + elastic resume) =="
ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}" -L cluster

echo "== spill-labeled tests (tiered store, disk-fault sweeps, CRC quarantine) =="
ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}" -L spill

echo "== drawmode-labeled tests (skip/alias statistical pinning, mode identity) =="
ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}" -L drawmode

echo "== CLI checkpoint/resume round-trip + corrupt-snapshot rejection =="
ckpt_tmp="$(mktemp -d)"
cli="${build_dir}/tools/eim_cli"
cli_args=(--dataset WV --k 10 --eps 0.3 --json)
"${cli}" "${cli_args[@]}" --checkpoint "${ckpt_tmp}/ck" > "${ckpt_tmp}/full.json"
"${cli}" "${cli_args[@]}" --resume "${ckpt_tmp}/ck" > "${ckpt_tmp}/resumed.json"
# Seeds and every algorithmic field must be bit-identical; only the modeled
# clock fields may differ (the resumed run charges a restore transfer).
for f in full resumed; do
  python3 -c 'import json,sys; d=json.load(open(sys.argv[1])); [d.pop(k) for k in ("device_seconds","peak_device_bytes")]; print(json.dumps(d,sort_keys=True))' \
    "${ckpt_tmp}/${f}.json" > "${ckpt_tmp}/${f}.norm.json"
done
diff "${ckpt_tmp}/full.norm.json" "${ckpt_tmp}/resumed.norm.json"

# A bit-flipped snapshot must be refused with the I/O exit code (3), and a
# truncated one likewise — never a crash or a silently wrong answer.
python3 - "${ckpt_tmp}/ck/snapshot.bin" <<'EOF'
import sys
path = sys.argv[1]
data = bytearray(open(path, "rb").read())
data[len(data) // 2] ^= 0xFF
open(path, "wb").write(bytes(data))
EOF
status=0
"${cli}" "${cli_args[@]}" --resume "${ckpt_tmp}/ck" > /dev/null 2>&1 || status=$?
if [[ "${status}" -ne 3 ]]; then
  echo "ERROR: bit-flipped snapshot: expected exit 3, got ${status}" >&2; exit 1
fi
"${cli}" "${cli_args[@]}" --checkpoint "${ckpt_tmp}/ck2" > /dev/null
truncate -s 100 "${ckpt_tmp}/ck2/snapshot.bin"
status=0
"${cli}" "${cli_args[@]}" --resume "${ckpt_tmp}/ck2" > /dev/null 2>&1 || status=$?
if [[ "${status}" -ne 3 ]]; then
  echo "ERROR: truncated snapshot: expected exit 3, got ${status}" >&2; exit 1
fi
rm -rf "${ckpt_tmp}"

echo "== CLI --draw-mode skip smoke: round-trip + resume-mode-mismatch =="
dm_tmp="$(mktemp -d)"
dm_args=(--dataset WV --k 10 --eps 0.3 --json --draw-mode skip)
"${cli}" "${dm_args[@]}" --checkpoint "${dm_tmp}/ck" > "${dm_tmp}/full.json"
"${cli}" "${dm_args[@]}" --resume "${dm_tmp}/ck" > "${dm_tmp}/resumed.json"
# Same contract as the exact-mode round-trip above: bit-identical modulo the
# modeled clock fields.
for f in full resumed; do
  python3 -c 'import json,sys; d=json.load(open(sys.argv[1])); [d.pop(k) for k in ("device_seconds","peak_device_bytes")]; print(json.dumps(d,sort_keys=True))' \
    "${dm_tmp}/${f}.json" > "${dm_tmp}/${f}.norm.json"
done
diff "${dm_tmp}/full.norm.json" "${dm_tmp}/resumed.norm.json"
# A skip checkpoint resumed without --draw-mode skip would splice two
# incompatible draw sequences; the manifest identity must refuse (exit 2).
status=0
"${cli}" --dataset WV --k 10 --eps 0.3 --json --resume "${dm_tmp}/ck" \
  > /dev/null 2>&1 || status=$?
if [[ "${status}" -ne 2 ]]; then
  echo "ERROR: draw-mode mismatch resume: expected exit 2, got ${status}" >&2; exit 1
fi
rm -rf "${dm_tmp}"

echo "== CLI node-kill failover smoke =="
clu_tmp="$(mktemp -d)"
clu_args=(--dataset WV --k 10 --eps 0.3 --json --nodes 3)
"${cli}" "${clu_args[@]}" > "${clu_tmp}/clean.json"
"${cli}" "${clu_args[@]}" --kill-node 1@2 > "${clu_tmp}/killed.json"
# Elastic failover contract: losing a node mid-run may only change the
# modeled clock, the failover bookkeeping, and memory-layout figures
# (rrr_bytes reflects per-device capacity, which resharding repacks) — the
# seeds and every other algorithmic field must be bit-identical to the
# clean cluster run.
for f in clean killed; do
  python3 -c 'import json,sys; d=json.load(open(sys.argv[1])); [d.pop(k) for k in ("device_seconds","peak_device_bytes","rrr_bytes","communication_seconds","reshard_samples","collective_retries","failed_nodes")]; print(json.dumps(d,sort_keys=True))' \
    "${clu_tmp}/${f}.json" > "${clu_tmp}/${f}.norm.json"
done
diff "${clu_tmp}/clean.norm.json" "${clu_tmp}/killed.norm.json"
# Dropping below quorum without --node-degrade is unrecoverable: exit 6.
status=0
"${cli}" "${clu_args[@]}" --quorum 3 --kill-node 1@2 > /dev/null 2>&1 || status=$?
if [[ "${status}" -ne 6 ]]; then
  echo "ERROR: quorum loss: expected exit 6, got ${status}" >&2; exit 1
fi
# With --node-degrade the same loss publishes best-effort seeds (exit 0).
"${cli}" "${clu_args[@]}" --quorum 3 --kill-node 1@2 --node-degrade > /dev/null
rm -rf "${clu_tmp}"

echo "== CLI spill smoke: quarter-budget run matches unconstrained seeds =="
spill_tmp="$(mktemp -d)"
spill_args=(--dataset WV --k 10 --eps 0.3 --json)
"${cli}" "${spill_args[@]}" > "${spill_tmp}/unconstrained.json"
budget="$(python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))["rrr_bytes"] // 4)' \
  "${spill_tmp}/unconstrained.json")"
"${cli}" "${spill_args[@]}" --device-mem-budget "${budget}" \
  > "${spill_tmp}/budgeted.json"
# Spill contract: a 4x smaller device budget may only change the modeled
# clock, memory figures, and the spill bookkeeping — the seeds and every
# other algorithmic field must be bit-identical, at full theta.
for f in unconstrained budgeted; do
  python3 -c 'import json,sys; d=json.load(open(sys.argv[1])); [d.pop(k, None) for k in ("device_seconds","peak_device_bytes","rrr_bytes","spilled_sets","spill_bytes_compressed")]; print(json.dumps(d,sort_keys=True))' \
    "${spill_tmp}/${f}.json" > "${spill_tmp}/${f}.norm.json"
done
diff "${spill_tmp}/unconstrained.norm.json" "${spill_tmp}/budgeted.norm.json"
python3 - "${spill_tmp}/budgeted.json" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["spilled_sets"] > 0, "budgeted run never spilled"
assert not d["degraded"], "budgeted run degraded instead of spilling"
EOF
rm -rf "${spill_tmp}"

echo "== CLI stdout-conflict rejection (at most one '-' artifact) =="
# --metrics-json - / --trace-out - / --profile-out - all write to stdout;
# any two at once would interleave artifacts, so the CLI must refuse with
# the bad-arguments exit code (2) before running anything.
for pair in "--metrics-json - --trace-out -" \
            "--metrics-json - --profile-out -" \
            "--trace-out - --profile-out -"; do
  status=0
  # shellcheck disable=SC2086
  "${cli}" --dataset WV --k 5 --eps 0.5 ${pair} > /dev/null 2>&1 || status=$?
  if [[ "${status}" -ne 2 ]]; then
    echo "ERROR: '${pair}': expected exit 2, got ${status}" >&2; exit 1
  fi
done

echo "== traced benchmark + artifact validation =="
bench_tmp="$(mktemp -d)"
trap 'rm -rf "${bench_tmp}"' EXIT
EIM_BENCH_DATASETS=WV EIM_BENCH_FAST=1 \
  EIM_BENCH_JSON="${bench_tmp}/BENCH_fig7_ic.json" \
  EIM_BENCH_TRACE="${bench_tmp}/TRACE_fig7_ic.json" \
  "${build_dir}/bench/bench_fig7_ic"
"${build_dir}/tools/bench_diff" --validate \
  "${bench_tmp}/BENCH_fig7_ic.json" "${bench_tmp}/TRACE_fig7_ic.json"

echo "== benchmark regression diff vs committed baseline =="
baseline="${repo_root}/bench/baselines/BENCH_fig7_ic_WV_fast.json"
if "${build_dir}/tools/bench_diff" "${baseline}" "${bench_tmp}/BENCH_fig7_ic.json"; then
  :
else
  diff_exit=$?
  echo "bench_diff: modeled time moved vs ${baseline} (exit ${diff_exit})."
  echo "If intentional, refresh the baseline:"
  echo "  cp ${bench_tmp}/BENCH_fig7_ic.json ${baseline}"
  if [[ "${EIM_CHECKS_BENCH_GATE:-0}" == "1" ]]; then
    echo "EIM_CHECKS_BENCH_GATE=1 — treating the regression as fatal."
    exit "${diff_exit}"
  fi
  echo "Warn-only (set EIM_CHECKS_BENCH_GATE=1 to gate on this)."
fi

echo "== Release perf smoke (bench_micro + wall-clock diff, warn-only) =="
# Wall-clock numbers from a sanitizer build are meaningless, so the perf
# smoke uses a separate Release build. Never pass -DEIM_NATIVE=ON here: the
# committed baselines must stay comparable across machines.
perf_dir="${repo_root}/build-perf"
cmake -B "${perf_dir}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${perf_dir}" -j "${jobs}" --target bench_micro bench_fig7_ic bench_multi_node bench_spill bench_diff prof_report
EIM_BENCH_JSON="${bench_tmp}/BENCH_micro.json" \
  "${perf_dir}/bench/bench_micro" --benchmark_min_time=0.2 > /dev/null
"${perf_dir}/tools/bench_diff" --validate "${bench_tmp}/BENCH_micro.json"
micro_baseline="${repo_root}/bench/baselines/BENCH_micro.json"
if [[ -f "${micro_baseline}" ]]; then
  # Micro cells carry only wall_seconds, which bench_diff treats warn-only —
  # the diff prints the host-time trajectory but cannot fail the gate.
  "${perf_dir}/tools/bench_diff" "${micro_baseline}" "${bench_tmp}/BENCH_micro.json" || true
fi
# EIM_BENCH_PROFILE attaches the sampling profiler and the wall timers to
# the first cell; the --threshold 0 diff below then doubles as the proof
# that profiling leaves every modeled row bit-identical.
EIM_BENCH_DATASETS=WV EIM_BENCH_FAST=1 \
  EIM_BENCH_JSON="${bench_tmp}/BENCH_fig7_ic_release.json" \
  EIM_BENCH_PROFILE="${bench_tmp}/PROF_fig7_ic.folded" \
  "${perf_dir}/bench/bench_fig7_ic" > /dev/null

echo "-- profiler smoke: folded stacks symbolize and bucket --"
prof_file="${bench_tmp}/PROF_fig7_ic.folded"
if [[ ! -s "${prof_file}" ]]; then
  echo "ERROR: ${prof_file} is missing or empty" >&2; exit 1
fi
if head -n 1 "${prof_file}" | grep -q '^# profiler-unsupported'; then
  echo "SKIP: sampling profiler unsupported on this platform (wall timers still recorded)"
else
  # At least 60% of samples must carry a symbolized frame — the tripwire
  # for a build that lost -rdynamic (CMAKE_ENABLE_EXPORTS) and would
  # otherwise emit all-hex stacks that no one can attribute.
  "${perf_dir}/tools/prof_report" --min-symbolized 0.6 "${prof_file}"
fi

# --threshold 0: host-side restructuring (bulk RNG, draw buffers, fused
# commits) must leave the modeled rows bit-identical to the committed
# baseline — any modeled drift at all means the cost model changed, which
# deserves an intentional baseline refresh, not a tolerance window. The
# profiled run feeding this diff also proves observation changes nothing.
echo "-- fig7 WV fast: modeled time gated bit-identical, wall warn-only --"
if "${perf_dir}/tools/bench_diff" --threshold 0 "${baseline}" "${bench_tmp}/BENCH_fig7_ic_release.json"; then
  :
else
  diff_exit=$?
  echo "bench_diff (Release): modeled time moved vs ${baseline} (exit ${diff_exit})."
  echo "If intentional, refresh the baseline:"
  echo "  cp ${bench_tmp}/BENCH_fig7_ic_release.json ${baseline}"
  if [[ "${EIM_CHECKS_BENCH_GATE:-0}" == "1" ]]; then
    echo "EIM_CHECKS_BENCH_GATE=1 — treating the regression as fatal."
    exit "${diff_exit}"
  fi
  echo "Warn-only (set EIM_CHECKS_BENCH_GATE=1 to gate on this)."
fi

echo "-- multi-node scaling curve: modeled time gated bit-identical --"
# Full-envelope run (WV, k=50, eps=0.02 — the fig7 envelope): the committed
# baseline proves near-linear modeled scaling (>=0.8 parallel efficiency at
# 8 nodes) plus a priced node-kill failover cell. Modeled rows are
# deterministic, so any drift means the cluster cost model changed.
mn_baseline="${repo_root}/bench/baselines/BENCH_multi_node.json"
EIM_BENCH_JSON="${bench_tmp}/BENCH_multi_node.json" \
  "${perf_dir}/bench/bench_multi_node"
"${perf_dir}/tools/bench_diff" --validate "${bench_tmp}/BENCH_multi_node.json"
if "${perf_dir}/tools/bench_diff" --threshold 0 "${mn_baseline}" "${bench_tmp}/BENCH_multi_node.json"; then
  :
else
  diff_exit=$?
  echo "bench_diff: cluster modeled time moved vs ${mn_baseline} (exit ${diff_exit})."
  echo "If intentional, refresh the baseline:"
  echo "  cp ${bench_tmp}/BENCH_multi_node.json ${mn_baseline}"
  if [[ "${EIM_CHECKS_BENCH_GATE:-0}" == "1" ]]; then
    echo "EIM_CHECKS_BENCH_GATE=1 — treating the regression as fatal."
    exit "${diff_exit}"
  fi
  echo "Warn-only (set EIM_CHECKS_BENCH_GATE=1 to gate on this)."
fi

echo "-- spill tax curve: modeled time gated bit-identical --"
# Fig7's WV cell replayed under a device budget of 1/4 its own footprint:
# the committed baseline proves full-theta completion with bit-identical
# seeds and prices the spill tax. Modeled rows are deterministic, so any
# drift means the spill path or the disk-tier cost model changed.
spill_baseline="${repo_root}/bench/baselines/BENCH_spill.json"
EIM_BENCH_FAST=1 EIM_BENCH_JSON="${bench_tmp}/BENCH_spill.json" \
  "${perf_dir}/bench/bench_spill"
"${perf_dir}/tools/bench_diff" --validate "${bench_tmp}/BENCH_spill.json"
if "${perf_dir}/tools/bench_diff" --threshold 0 "${spill_baseline}" "${bench_tmp}/BENCH_spill.json"; then
  :
else
  diff_exit=$?
  echo "bench_diff: spill modeled time moved vs ${spill_baseline} (exit ${diff_exit})."
  echo "If intentional, refresh the baseline:"
  echo "  cp ${bench_tmp}/BENCH_spill.json ${spill_baseline}"
  if [[ "${EIM_CHECKS_BENCH_GATE:-0}" == "1" ]]; then
    echo "EIM_CHECKS_BENCH_GATE=1 — treating the regression as fatal."
    exit "${diff_exit}"
  fi
  echo "Warn-only (set EIM_CHECKS_BENCH_GATE=1 to gate on this)."
fi

echo "-- draw-mode spread equivalence: Exact vs Skip seeds (hard gate) --"
# bench_quality's second section runs eIM in both draw modes on the fig7/
# fig8 envelopes and exits nonzero itself when the expected spreads deviate
# beyond its tolerance — the gate that lets Skip ship without a bit-identity
# contract. Unlike the modeled-time diffs this is always fatal: a spread
# regression means the fast-draw math is wrong, not that a cost model moved.
cmake --build "${perf_dir}" -j "${jobs}" --target bench_quality
EIM_BENCH_DATASETS=WV EIM_BENCH_FAST=1 "${perf_dir}/bench/bench_quality"

echo "All checks passed."
