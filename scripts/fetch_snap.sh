#!/usr/bin/env bash
# Download the paper's real SNAP datasets (Table 1) into data/.
#
# The benchmark suite runs on built-in synthetic stand-ins by default; this
# script fetches the originals for anyone who wants to rerun the pipelines
# at full scale, e.g.:
#
#   scripts/fetch_snap.sh wiki-Vote soc-Epinions1
#   ./build/tools/eim_cli --file data/wiki-Vote.txt --k 50 --eps 0.05
#
# With no arguments, every dataset is fetched (several GB).
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p data

declare -A URLS=(
  [wiki-Vote]="https://snap.stanford.edu/data/wiki-Vote.txt.gz"
  [p2p-Gnutella31]="https://snap.stanford.edu/data/p2p-Gnutella31.txt.gz"
  [soc-Epinions1]="https://snap.stanford.edu/data/soc-Epinions1.txt.gz"
  [soc-Slashdot0902]="https://snap.stanford.edu/data/soc-Slashdot0902.txt.gz"
  [email-EuAll]="https://snap.stanford.edu/data/email-EuAll.txt.gz"
  [web-Stanford]="https://snap.stanford.edu/data/web-Stanford.txt.gz"
  [web-NotreDame]="https://snap.stanford.edu/data/web-NotreDame.txt.gz"
  [com-DBLP]="https://snap.stanford.edu/data/bigdata/communities/com-dblp.ungraph.txt.gz"
  [com-Amazon]="https://snap.stanford.edu/data/bigdata/communities/com-amazon.ungraph.txt.gz"
  [web-BerkStan]="https://snap.stanford.edu/data/web-BerkStan.txt.gz"
  [web-Google]="https://snap.stanford.edu/data/web-Google.txt.gz"
  [com-Youtube]="https://snap.stanford.edu/data/bigdata/communities/com-youtube.ungraph.txt.gz"
  [soc-Pokec]="https://snap.stanford.edu/data/soc-pokec-relationships.txt.gz"
  [wiki-topcats]="https://snap.stanford.edu/data/wiki-topcats.txt.gz"
  [com-Orkut]="https://snap.stanford.edu/data/bigdata/communities/com-orkut.ungraph.txt.gz"
  [soc-LiveJournal1]="https://snap.stanford.edu/data/soc-LiveJournal1.txt.gz"
)

targets=("$@")
if [ ${#targets[@]} -eq 0 ]; then
  targets=("${!URLS[@]}")
fi

for name in "${targets[@]}"; do
  url="${URLS[$name]:-}"
  if [ -z "$url" ]; then
    echo "unknown dataset: $name (known: ${!URLS[*]})" >&2
    exit 1
  fi
  out="data/${name}.txt"
  if [ -f "$out" ]; then
    echo "already have $out"
    continue
  fi
  echo "fetching $name ..."
  curl -L --fail "$url" | gunzip > "$out"
done
echo "done. Run e.g.: ./build/tools/eim_cli --file data/${targets[0]}.txt"
