// bench_diff — regression diffing for eim.metrics.v2/v3 bench reports.
//
// Compares two EIM_BENCH_JSON files cell by cell on *modeled* time (the
// deterministic quantity the simulator computes) and prints a per-metric
// delta table. Measured host `wall_seconds` — when both envelopes carry it —
// is diffed warn-only: it tracks the real-time trajectory but never flips
// the verdict, because wall clocks are machine noise.
//
//   bench_diff old/BENCH_fig7.json new/BENCH_fig7.json
//   bench_diff --threshold 10 old.json new.json   # tolerate <10% growth
//
// Exit codes follow the repo convention (support/error.hpp): 0 = no
// regression, 1 = at least one metric regressed beyond the threshold (or a
// cell that used to complete now OOMs), 2 = bad arguments, 3 = unreadable
// or malformed input. Identical inputs always exit 0.
//
//   bench_diff --validate <file>...
//
// validates instead of diffing: each file must parse as JSON and look like
// one of the observability artifacts (a bench envelope, an eim.metrics run
// report, or a Chrome trace-event file). Used by scripts/run_checks.sh.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "eim/support/error.hpp"
#include "eim/support/json.hpp"
#include "eim/support/table.hpp"

namespace {

using eim::support::JsonValue;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw eim::support::IoError("cannot read '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// One cell's modeled timing; a field is nullopt when the envelope omitted
/// it (OOM cells carry no timing).
struct CellTiming {
  std::string id;
  std::optional<double> seconds;
  std::optional<double> kernel_seconds;
  std::optional<double> transfer_seconds;
  std::optional<double> wall_seconds;  ///< measured host time — warn-only
};

std::optional<double> number_field(const JsonValue& obj, std::string_view key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_number()) return std::nullopt;
  return v->as_double();
}

std::vector<CellTiming> load_envelope(const std::string& path) {
  const JsonValue doc = eim::support::parse_json(read_file(path));
  const JsonValue* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string()) {
    throw eim::support::IoError(path + ": missing \"schema\" — not a bench envelope");
  }
  const JsonValue* cells = doc.find("cells");
  if (cells == nullptr || !cells->is_array()) {
    throw eim::support::IoError(path + ": missing \"cells\" array");
  }
  std::vector<CellTiming> out;
  for (const JsonValue& cell : cells->items()) {
    const JsonValue* id = cell.find("id");
    if (id == nullptr || !id->is_string()) {
      throw eim::support::IoError(path + ": cell without a string \"id\"");
    }
    CellTiming t;
    t.id = id->as_string();
    t.seconds = number_field(cell, "seconds");
    t.kernel_seconds = number_field(cell, "kernel_seconds");
    t.transfer_seconds = number_field(cell, "transfer_seconds");
    t.wall_seconds = number_field(cell, "wall_seconds");
    out.push_back(std::move(t));
  }
  return out;
}

const CellTiming* find_cell(const std::vector<CellTiming>& cells,
                            const std::string& id) {
  for (const CellTiming& c : cells) {
    if (c.id == id) return &c;
  }
  return nullptr;
}

/// Identify + sanity-check one observability artifact; returns a short
/// description ("bench envelope, 12 cells") for the ok line.
std::string validate_artifact(const std::string& path) {
  const JsonValue doc = eim::support::parse_json(read_file(path));
  if (const JsonValue* events = doc.find("traceEvents");
      events != nullptr && events->is_array()) {
    for (const JsonValue& ev : events->items()) {
      const JsonValue* ph = ev.find("ph");
      if (ph == nullptr || !ph->is_string() || ev.find("pid") == nullptr ||
          ev.find("tid") == nullptr) {
        throw eim::support::IoError(path +
                                    ": trace event without ph/pid/tid fields");
      }
    }
    return "chrome trace, " + std::to_string(events->items().size()) + " events";
  }
  const JsonValue* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string()) {
    throw eim::support::IoError(
        path + ": neither a trace (traceEvents) nor a metrics document (schema)");
  }
  if (const JsonValue* cells = doc.find("cells");
      cells != nullptr && cells->is_array()) {
    return schema->as_string() + " bench envelope, " +
           std::to_string(cells->items().size()) + " cells";
  }
  if (doc.find("metrics") != nullptr) {
    return schema->as_string() + " run report";
  }
  throw eim::support::IoError(path + ": schema \"" + schema->as_string() +
                              "\" with neither cells nor metrics");
}

void print_usage() {
  std::puts(
      "usage: bench_diff [--threshold <pct>] <old.json> <new.json>\n"
      "       bench_diff --validate <file>...\n"
      "  Diffs two EIM_BENCH_JSON (eim.metrics.v2/v3) envelopes on modeled time\n"
      "  and exits 1 when any cell's seconds / kernel_seconds /\n"
      "  transfer_seconds grew more than <pct> percent (default 5), or when\n"
      "  a cell that used to complete is now missing or OOM. Measured\n"
      "  wall_seconds is diffed too but only warns — it is machine noise,\n"
      "  never part of the modeled-cost contract.\n"
      "  --validate parses each file and checks it is a well-formed bench\n"
      "  envelope, run report, or Chrome trace; exits 3 on the first bad one.");
}

struct MetricRow {
  const char* name;
  std::optional<double> CellTiming::* field;
  /// Warn-only metrics report their delta but never flip the verdict:
  /// wall-clock is machine noise, not a modeled quantity. A side that lacks
  /// the field (older envelopes) is skipped silently.
  bool warn_only;
};

constexpr MetricRow kMetrics[] = {
    {"seconds", &CellTiming::seconds, false},
    {"kernel_seconds", &CellTiming::kernel_seconds, false},
    {"transfer_seconds", &CellTiming::transfer_seconds, false},
    {"wall_seconds", &CellTiming::wall_seconds, true},
};

int run_diff(const std::string& old_path, const std::string& new_path,
             double threshold_pct) {
  const std::vector<CellTiming> old_cells = load_envelope(old_path);
  const std::vector<CellTiming> new_cells = load_envelope(new_path);

  eim::support::TextTable table(
      {"cell", "metric", "old", "new", "delta%", "status"});
  bool regressed = false;

  for (const CellTiming& oldc : old_cells) {
    const CellTiming* newc = find_cell(new_cells, oldc.id);
    if (newc == nullptr) {
      table.add_row({oldc.id, "-", "-", "-", "-", "MISSING"});
      if (oldc.seconds.has_value()) regressed = true;  // completed cell vanished
      continue;
    }
    for (const MetricRow& m : kMetrics) {
      const std::optional<double> ov = oldc.*m.field;
      const std::optional<double> nv = (*newc).*m.field;
      if (!ov.has_value() && !nv.has_value()) continue;  // OOM both sides
      if (m.warn_only && (!ov.has_value() || !nv.has_value())) {
        continue;  // one side predates the wall column — nothing to compare
      }
      if (ov.has_value() && !nv.has_value()) {
        table.add_row({oldc.id, m.name, eim::support::TextTable::num(*ov, 6), "OOM",
                       "-", "REGRESSED"});
        regressed = true;
        continue;
      }
      if (!ov.has_value()) {
        table.add_row({oldc.id, m.name, "OOM",
                       eim::support::TextTable::num(*nv, 6), "-", "recovered"});
        continue;
      }
      // Relative growth; a zero baseline only regresses if the new value is
      // observably nonzero.
      const double delta_pct =
          *ov > 0.0 ? (*nv - *ov) / *ov * 100.0 : (*nv > 1e-12 ? 1e9 : 0.0);
      const bool bad = delta_pct > threshold_pct;
      if (!m.warn_only) regressed = regressed || bad;
      const char* status = bad ? (m.warn_only ? "warn" : "REGRESSED") : "ok";
      table.add_row({oldc.id, m.name, eim::support::TextTable::num(*ov, 6),
                     eim::support::TextTable::num(*nv, 6),
                     eim::support::TextTable::num(delta_pct, 2), status});
    }
  }
  for (const CellTiming& newc : new_cells) {
    if (find_cell(old_cells, newc.id) == nullptr) {
      table.add_row({newc.id, "-", "-", "-", "-", "new"});
    }
  }

  table.print(std::cout);
  std::printf(
      "# threshold: +%.2f%% on modeled seconds/kernel/transfer"
      " (wall_seconds warn-only)\n",
      threshold_pct);
  std::printf("# verdict: %s\n", regressed ? "REGRESSED" : "ok");
  return regressed ? eim::support::kExitError : eim::support::kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  double threshold_pct = 5.0;
  bool validate = false;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return eim::support::kExitOk;
    }
    if (arg == "--validate") {
      validate = true;
    } else if (arg == "--threshold") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --threshold needs a value\n");
        return eim::support::kExitBadArgs;
      }
      char* end = nullptr;
      threshold_pct = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0' || threshold_pct < 0.0) {
        std::fprintf(stderr, "error: bad threshold '%s'\n", argv[i]);
        return eim::support::kExitBadArgs;
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n\n", arg.c_str());
      print_usage();
      return eim::support::kExitBadArgs;
    } else {
      paths.push_back(arg);
    }
  }

  try {
    if (validate) {
      if (paths.empty()) {
        std::fprintf(stderr, "error: --validate needs at least one file\n");
        return eim::support::kExitBadArgs;
      }
      for (const std::string& path : paths) {
        std::printf("ok %s (%s)\n", path.c_str(), validate_artifact(path).c_str());
      }
      return eim::support::kExitOk;
    }
    if (paths.size() != 2) {
      print_usage();
      return eim::support::kExitBadArgs;
    }
    return run_diff(paths[0], paths[1], threshold_pct);
  } catch (const eim::support::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return eim::support::kExitIo;
  }
}
