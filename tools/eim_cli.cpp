// eim — command-line influence maximization.
//
// Examples:
//   eim --dataset WV --k 25                         # synthetic wiki-Vote, IC
//   eim --file soc-Epinions1.txt --model lt --k 50  # real SNAP download, LT
//   eim --dataset EE --algo gim --eps 0.1           # run the gIM baseline
//   eim --dataset SPR --devices 4                   # multi-GPU eIM
//   eim --dataset WV --algo serial --verify 500     # CPU reference + MC check
//
// Prints the seed set, the device metrics, and (with --verify N) a forward
// Monte-Carlo estimate of the expected spread over N cascades.
#include <cstdio>
#include <cstring>
#include <functional>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "eim/baselines/curipples.hpp"
#include "eim/baselines/gim.hpp"
#include "eim/diffusion/forward.hpp"
#include "eim/eim/checkpoint.hpp"
#include "eim/eim/multi_gpu.hpp"
#include "eim/eim/multi_node.hpp"
#include "eim/eim/pipeline.hpp"
#include "eim/graph/io.hpp"
#include "eim/graph/registry.hpp"
#include "eim/imm/imm.hpp"
#include "eim/imm/tim.hpp"
#include "eim/support/atomic_write.hpp"
#include "eim/support/error.hpp"
#include "eim/support/json.hpp"
#include "eim/support/snapshot.hpp"
#include "eim/support/metrics.hpp"
#include "eim/support/profiler.hpp"
#include "eim/support/trace.hpp"

namespace {

using namespace eim;

/// Print a one-line machine-parseable error record to stderr and return the
/// exit code mapped from the exception class (docs/RESILIENCE.md):
///   2 = bad arguments, 3 = I/O, 4 = device OOM, 5 = device fault/loss,
///   6 = unrecoverable cluster loss, 1 = anything else.
int report_error(const support::Error& e) {
  support::JsonWriter w(std::cerr);
  w.begin_object()
      .field("error", support::error_kind_for(e))
      .field("exit_code", static_cast<std::uint64_t>(
                              static_cast<unsigned>(support::exit_code_for(e))))
      .field("message", e.what());
  if (const auto* oom = dynamic_cast<const support::DeviceOutOfMemoryError*>(&e)) {
    w.field("requested_bytes", oom->requested_bytes())
        .field("available_bytes", oom->available_bytes());
  }
  if (const auto* quorum = dynamic_cast<const support::ClusterQuorumError*>(&e)) {
    w.field("alive_nodes", static_cast<std::uint64_t>(quorum->alive_nodes()))
        .field("quorum", static_cast<std::uint64_t>(quorum->quorum()));
  }
  w.end_object();
  std::cerr << "\n";
  return support::exit_code_for(e);
}

struct CliOptions {
  std::string dataset;
  std::string file;
  std::string algo = "eim";
  graph::DiffusionModel model = graph::DiffusionModel::IndependentCascade;
  imm::ImmParams params;
  std::uint32_t devices = 1;
  std::uint32_t nodes = 0;  ///< >0 selects the modeled cluster tier
  std::uint32_t devices_per_node = 1;
  std::uint32_t quorum = 1;
  bool node_degrade = false;
  gpusim::ClusterFaultPlan cluster_faults;  ///< --kill-node/--link-fault/--straggler
  std::uint64_t memory_mb = 512;
  std::uint64_t device_mem_budget = 0;  ///< >0 caps the RRR device footprint
  std::string spill_policy;             ///< off|spill|degrade ("" = infer)
  std::string spill_dir;                ///< cold-tier directory (default temp)
  std::uint64_t spill_host_budget = 0;  ///< compressed host tier cap (bytes)
  std::uint32_t verify_trials = 0;
  std::string draw_mode = "exact";  ///< exact|skip (eim only)
  bool no_log_encoding = false;
  bool no_source_elim = false;
  bool oom_degrade = false;
  bool json = false;
  std::string metrics_json;  ///< write an eim.metrics.v3 report here ("-" = stdout)
  std::string trace_out;     ///< write a Chrome trace-event file here ("-" = stdout)
  std::string profile_out;   ///< write a folded-stack profile here ("-" = stdout)
  std::uint32_t profile_hz = 97;  ///< sampling frequency for --profile-out
  std::string checkpoint_dir;  ///< round-boundary snapshots land here
  std::string resume_dir;      ///< continue from this directory's snapshot
};

void print_usage() {
  std::puts(
      "usage: eim_cli [options]\n"
      "  --dataset <ABBREV>   synthetic stand-in from the 16-network registry\n"
      "  --file <path>        SNAP edge-list text file (overrides --dataset)\n"
      "  --model ic|lt        diffusion model (default ic)\n"
      "  --algo eim|gim|curipples|serial|tim  (default eim)\n"
      "  --k <n>              seed-set size (default 50)\n"
      "  --eps <x>            approximation parameter (default 0.13)\n"
      "  --seed <n>           RNG seed (default 42)\n"
      "  --devices <n>        simulated GPUs for eIM (default 1)\n"
      "  --nodes <n>          modeled cluster: shard eIM over n nodes (eim\n"
      "                       only; see docs/RESILIENCE.md, Cluster failover)\n"
      "  --devices-per-node <n>  simulated GPUs inside each node (default 1)\n"
      "  --quorum <n>         minimum alive nodes; dropping below exits with\n"
      "                       code 6 (cluster_lost) unless --node-degrade\n"
      "  --node-degrade       below quorum, publish best-effort seeds from\n"
      "                       the committed samples plus the shortfall\n"
      "                       instead of failing (cluster analogue of\n"
      "                       --oom-degrade)\n"
      "  --kill-node <i@o>    fault script: node i dies at collective\n"
      "                       ordinal o (repeatable)\n"
      "  --link-fault <i@o>   fault script: node i's link drops its o-th\n"
      "                       per-link transfer once (repeatable)\n"
      "  --straggler <i@f>    fault script: node i's link runs f x slower\n"
      "                       (repeatable)\n"
      "  --memory-mb <n>      simulated device memory (default 512)\n"
      "  --device-mem-budget <bytes>  cap the RRR collection's device\n"
      "                       footprint; cold sets spill to compressed host\n"
      "                       memory and disk instead of truncating the run\n"
      "                       (implies --spill-policy spill; eim only,\n"
      "                       single device; see docs/RESILIENCE.md)\n"
      "  --spill-policy off|spill|degrade  what device OOM does to the RRR\n"
      "                       store: off = fail/degrade as --oom-degrade\n"
      "                       says, spill = evict cold sets down the tier\n"
      "                       hierarchy (full theta, bit-identical seeds),\n"
      "                       degrade = spill first and degrade only if the\n"
      "                       tiers themselves are exhausted\n"
      "  --spill-dir <path>   directory for the disk tier's block files\n"
      "                       (default: a fresh temp directory, removed on\n"
      "                       exit)\n"
      "  --spill-host-budget <bytes>  cap the compressed host tier; colder\n"
      "                       blocks overflow to disk (0 = unlimited)\n"
      "  --verify <trials>    score the seeds with forward Monte-Carlo\n"
      "  --draw-mode exact|skip  how the sampler spends randomness (eim\n"
      "                       only; default exact). exact = one Bernoulli\n"
      "                       draw per scanned in-edge, bit-identical across\n"
      "                       all configurations; skip = geometric skip-ahead\n"
      "                       (IC) / alias-table picks (LT), statistically\n"
      "                       equivalent spread at a fraction of the RNG\n"
      "                       cost (docs/PERFORMANCE.md, Draw efficiency).\n"
      "                       Recorded in checkpoints: a --resume must use\n"
      "                       the writing run's mode\n"
      "  --no-log-encoding    disable the Section 3.1 compression\n"
      "  --no-source-elim     disable the Section 3.4 heuristic\n"
      "  --oom-degrade        on device OOM, return best-effort seeds from\n"
      "                       the sets that fit instead of failing (eim only)\n"
      "  --json               print the result as a JSON object\n"
      "  --metrics-json <path|->  write an eim.metrics.v3 run report (phase\n"
      "                       timers, histograms, memory high-water mark,\n"
      "                       commit/regrow counters, hot-path wall timers;\n"
      "                       '-' = stdout; emitted even when the run fails\n"
      "                       or degrades; see docs/OBSERVABILITY.md)\n"
      "  --trace-out <path|->  write a Chrome trace-event / Perfetto span\n"
      "                       trace of the run on the modeled device clock\n"
      "                       ('-' = stdout; open in ui.perfetto.dev)\n"
      "  --profile-out <path|->  sample host wall-clock stacks during the\n"
      "                       run and write a folded-stack profile ('-' =\n"
      "                       stdout; feed to tools/prof_report or a flame\n"
      "                       graph; also enables the metrics `wall`\n"
      "                       section; writes a '# profiler-unsupported'\n"
      "                       marker on platforms without backtrace())\n"
      "  --profile-hz <n>     sampling frequency for --profile-out\n"
      "                       (default 97; prime avoids phase lock)\n"
      "  --checkpoint <dir>   write a crash-safe snapshot at every round\n"
      "                       boundary (eim only; see docs/RESILIENCE.md)\n"
      "  --resume <dir>       continue from <dir>'s snapshot — the final\n"
      "                       seeds are bit-identical to an uninterrupted\n"
      "                       run, even onto a different --devices count;\n"
      "                       keeps checkpointing into <dir> unless\n"
      "                       --checkpoint overrides (eim only)\n"
      "  --list-datasets      print the registry and exit");
}

/// Split a fault-script operand of the form "<node>@<value>" — e.g.
/// `--kill-node 1@4`. `rest` points at the text after the '@'.
bool parse_indexed(const char* s, std::uint32_t& node, const char*& rest) {
  const char* at = std::strchr(s, '@');
  if (at == nullptr || at == s || *(at + 1) == '\0') {
    std::fprintf(stderr, "error: expected <node>@<value>, got '%s'\n", s);
    return false;
  }
  node = static_cast<std::uint32_t>(std::atoi(s));
  rest = at + 1;
  return true;
}

/// Parse argv. On nullopt, `exit_code` says why: kExitOk for --help /
/// --list-datasets, kExitBadArgs for malformed input.
std::optional<CliOptions> parse(int argc, char** argv, int& exit_code) {
  CliOptions opt;
  opt.params.k = 50;
  opt.params.epsilon = 0.13;
  exit_code = support::kExitBadArgs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };

    if (arg == "--help" || arg == "-h") {
      print_usage();
      exit_code = support::kExitOk;
      return std::nullopt;
    }
    if (arg == "--list-datasets") {
      exit_code = support::kExitOk;
      for (const auto& spec : graph::all_datasets()) {
        std::printf("%-4.*s %.*s\n", static_cast<int>(spec.abbrev.size()),
                    spec.abbrev.data(), static_cast<int>(spec.name.size()),
                    spec.name.data());
      }
      return std::nullopt;
    }
    const char* value = nullptr;
    if (arg == "--dataset" && (value = next())) {
      opt.dataset = value;
    } else if (arg == "--file" && (value = next())) {
      opt.file = value;
    } else if (arg == "--algo" && (value = next())) {
      opt.algo = value;
    } else if (arg == "--model" && (value = next())) {
      if (std::strcmp(value, "lt") == 0) {
        opt.model = graph::DiffusionModel::LinearThreshold;
      } else if (std::strcmp(value, "ic") != 0) {
        std::fprintf(stderr, "error: unknown model '%s'\n", value);
        return std::nullopt;
      }
    } else if (arg == "--k" && (value = next())) {
      opt.params.k = static_cast<std::uint32_t>(std::atoi(value));
    } else if (arg == "--eps" && (value = next())) {
      opt.params.epsilon = std::atof(value);
    } else if (arg == "--seed" && (value = next())) {
      opt.params.rng_seed = static_cast<std::uint64_t>(std::atoll(value));
    } else if (arg == "--devices" && (value = next())) {
      opt.devices = static_cast<std::uint32_t>(std::atoi(value));
    } else if (arg == "--nodes" && (value = next())) {
      opt.nodes = static_cast<std::uint32_t>(std::atoi(value));
    } else if (arg == "--devices-per-node" && (value = next())) {
      opt.devices_per_node = static_cast<std::uint32_t>(std::atoi(value));
    } else if (arg == "--quorum" && (value = next())) {
      opt.quorum = static_cast<std::uint32_t>(std::atoi(value));
    } else if (arg == "--node-degrade") {
      opt.node_degrade = true;
    } else if (arg == "--kill-node" && (value = next())) {
      std::uint32_t node = 0;
      const char* at = nullptr;
      if (!parse_indexed(value, node, at)) return std::nullopt;
      opt.cluster_faults.node_losses.push_back(
          {node, static_cast<std::uint64_t>(std::atoll(at)), -1.0});
    } else if (arg == "--link-fault" && (value = next())) {
      std::uint32_t node = 0;
      const char* at = nullptr;
      if (!parse_indexed(value, node, at)) return std::nullopt;
      opt.cluster_faults.link_faults.push_back(
          {node, static_cast<std::uint64_t>(std::atoll(at))});
    } else if (arg == "--straggler" && (value = next())) {
      std::uint32_t node = 0;
      const char* at = nullptr;
      if (!parse_indexed(value, node, at)) return std::nullopt;
      opt.cluster_faults.slowdowns.push_back({node, std::atof(at), 0});
    } else if (arg == "--memory-mb" && (value = next())) {
      opt.memory_mb = static_cast<std::uint64_t>(std::atoll(value));
    } else if (arg == "--device-mem-budget" && (value = next())) {
      opt.device_mem_budget = static_cast<std::uint64_t>(std::atoll(value));
    } else if (arg == "--spill-policy" && (value = next())) {
      opt.spill_policy = value;
      if (opt.spill_policy != "off" && opt.spill_policy != "spill" &&
          opt.spill_policy != "degrade") {
        std::fprintf(stderr, "error: --spill-policy must be off|spill|degrade, got '%s'\n",
                     value);
        return std::nullopt;
      }
    } else if (arg == "--spill-dir" && (value = next())) {
      opt.spill_dir = value;
    } else if (arg == "--spill-host-budget" && (value = next())) {
      opt.spill_host_budget = static_cast<std::uint64_t>(std::atoll(value));
    } else if (arg == "--verify" && (value = next())) {
      opt.verify_trials = static_cast<std::uint32_t>(std::atoi(value));
    } else if (arg == "--draw-mode" && (value = next())) {
      opt.draw_mode = value;
      if (opt.draw_mode != "exact" && opt.draw_mode != "skip") {
        std::fprintf(stderr, "error: --draw-mode must be exact|skip, got '%s'\n",
                     value);
        return std::nullopt;
      }
    } else if (arg == "--no-log-encoding") {
      opt.no_log_encoding = true;
    } else if (arg == "--no-source-elim") {
      opt.no_source_elim = true;
    } else if (arg == "--oom-degrade") {
      opt.oom_degrade = true;
    } else if (arg == "--json") {
      opt.json = true;
    } else if (arg == "--metrics-json" && (value = next())) {
      opt.metrics_json = value;
    } else if (arg == "--trace-out" && (value = next())) {
      opt.trace_out = value;
    } else if (arg == "--profile-out" && (value = next())) {
      opt.profile_out = value;
    } else if (arg == "--profile-hz" && (value = next())) {
      const int hz = std::atoi(value);
      if (hz <= 0) {
        std::fprintf(stderr, "error: --profile-hz must be positive, got '%s'\n",
                     value);
        return std::nullopt;
      }
      opt.profile_hz = static_cast<std::uint32_t>(hz);
    } else if (arg == "--checkpoint" && (value = next())) {
      opt.checkpoint_dir = value;
    } else if (arg == "--resume" && (value = next())) {
      opt.resume_dir = value;
    } else if (value == nullptr) {
      std::fprintf(stderr, "error: unknown option '%s'\n\n", arg.c_str());
      print_usage();
      return std::nullopt;
    }
  }
  if (opt.dataset.empty() && opt.file.empty()) opt.dataset = "WV";
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  int parse_exit = support::kExitBadArgs;
  const auto parsed = parse(argc, argv, parse_exit);
  if (!parsed) return parse_exit;
  const CliOptions& opt = *parsed;

  if ((!opt.checkpoint_dir.empty() || !opt.resume_dir.empty()) && opt.algo != "eim") {
    return report_error(support::InvalidArgumentError(
        "--checkpoint/--resume require --algo eim (got '" + opt.algo + "')"));
  }
  if (opt.draw_mode == "skip" && opt.algo != "eim") {
    return report_error(support::InvalidArgumentError(
        "--draw-mode skip requires --algo eim (got '" + opt.algo + "')"));
  }
  if (opt.nodes > 0 && opt.algo != "eim") {
    return report_error(support::InvalidArgumentError(
        "--nodes requires --algo eim (got '" + opt.algo + "')"));
  }
  if (opt.nodes == 0 && (!opt.cluster_faults.empty() || opt.node_degrade ||
                         opt.quorum != 1 || opt.devices_per_node != 1)) {
    return report_error(support::InvalidArgumentError(
        "cluster options (--quorum/--node-degrade/--devices-per-node/"
        "--kill-node/--link-fault/--straggler) require --nodes"));
  }
  // Spill is a single-device answer to memory pressure (the cluster tier
  // answers it by adding nodes), so the tiered-store flags are rejected
  // outside --algo eim with one device.
  const bool spill_requested =
      opt.device_mem_budget > 0 || !opt.spill_dir.empty() ||
      opt.spill_host_budget > 0 ||
      (!opt.spill_policy.empty() && opt.spill_policy != "off");
  if (spill_requested) {
    if (opt.algo != "eim") {
      return report_error(support::InvalidArgumentError(
          "spill options (--device-mem-budget/--spill-policy/--spill-dir/"
          "--spill-host-budget) require --algo eim (got '" + opt.algo + "')"));
    }
    if (opt.devices > 1 || opt.nodes > 0) {
      return report_error(support::InvalidArgumentError(
          "spill options require a single device (no --devices > 1 or "
          "--nodes); the cluster tier handles memory pressure by resharding"));
    }
  }
  // Each artifact stream has its own framing; interleaving any two on
  // stdout would corrupt both, so at most one may claim '-'.
  {
    const int stdout_claims = (opt.metrics_json == "-" ? 1 : 0) +
                              (opt.trace_out == "-" ? 1 : 0) +
                              (opt.profile_out == "-" ? 1 : 0);
    if (stdout_claims > 1) {
      return report_error(support::InvalidArgumentError(
          "at most one of --metrics-json/--trace-out/--profile-out may write "
          "to stdout ('-')"));
    }
  }
  // --resume keeps checkpointing into the same directory unless --checkpoint
  // points elsewhere.
  const std::string checkpoint_dir =
      !opt.checkpoint_dir.empty() ? opt.checkpoint_dir : opt.resume_dir;

  // Load or generate the graph. A malformed or unreadable edge list exits
  // with the I/O code and a structured stderr record.
  graph::Graph g;
  std::string source_name;
  try {
    if (!opt.file.empty()) {
      source_name = opt.file;
      g = graph::Graph::from_edge_list(graph::load_snap_text_file(opt.file));
    } else {
      const auto spec = graph::find_dataset(opt.dataset);
      if (!spec) {
        return report_error(support::InvalidArgumentError(
            "unknown dataset '" + opt.dataset + "' (try --list-datasets)"));
      }
      source_name = std::string(spec->name) + " (synthetic)";
      g = graph::Graph::from_edge_list(graph::build_dataset_edges(*spec));
    }
  } catch (const support::Error& e) {
    return report_error(e);
  }
  graph::assign_weights(g, opt.model);
  // Reserve stdout for machine output when any of it is routed there:
  // --json, --metrics-json -, or --trace-out - suppress the human text.
  const bool machine_stdout = opt.json || opt.metrics_json == "-" ||
                              opt.trace_out == "-" || opt.profile_out == "-";
  if (!machine_stdout) {
    std::printf("graph: %s — %u vertices, %llu edges | model=%s algo=%s k=%u eps=%g\n",
                source_name.c_str(), g.num_vertices(),
                static_cast<unsigned long long>(g.num_edges()),
                graph::to_string(opt.model), opt.algo.c_str(), opt.params.k,
                opt.params.epsilon);
  }

  // Run the requested algorithm. The registry and recorder collect
  // instrumentation from whatever path runs; --metrics-json / --trace-out
  // serialize them afterwards — even when the run fails, so failure paths
  // stay observable (everything recorded up to the fault is kept).
  support::metrics::MetricsRegistry registry;
  support::trace::TraceRecorder recorder;
  support::trace::TraceRecorder* trace =
      opt.trace_out.empty() ? nullptr : &recorder;
  // --profile-out arms both profiler instruments for the run: the wall
  // profile (hot-path scoped timers, lands in the metrics `wall` section)
  // and the SIGPROF sampling profiler (folded stacks). Both are wall-only —
  // the modeled results are bit-identical with or without them.
  support::profiler::WallProfile wall_profile;
  support::profiler::WallProfile* profile =
      opt.profile_out.empty() ? nullptr : &wall_profile;
  support::profiler::SamplingProfiler sampler_prof(
      {.hz = opt.profile_hz, .max_samples = std::size_t{1} << 15});
  if (profile != nullptr && support::profiler::SamplingProfiler::supported()) {
    sampler_prof.start();
  }
  eim_impl::EimResult result;
  std::optional<eim_impl::MultiNodeResult> cluster_result;
  int run_exit = support::kExitOk;
  try {
    // Load the snapshot before touching any device. A damaged checkpoint —
    // truncation, bit flip, malformed manifest — is rejected here by its
    // checksums with the I/O exit code, never resumed silently wrong.
    std::optional<eim_impl::CheckpointState> ckpt;
    if (!opt.resume_dir.empty()) {
      try {
        ckpt = eim_impl::load_checkpoint(opt.resume_dir);
      } catch (const support::snapshot::SnapshotCorruptError&) {
        registry.counter("checkpoint.corrupt_rejected").add();
        throw;
      }
    }
    if (opt.algo == "serial") {
      const auto serial = imm::run_imm_serial(g, opt.model, opt.params, profile);
      static_cast<imm::ImmResult&>(result) = serial;
    } else if (opt.algo == "tim") {
      const auto tim = imm::run_tim(g, opt.model, opt.params);
      static_cast<imm::ImmResult&>(result) = tim;
      if (!machine_stdout) {
        std::printf("TIM KPT* estimate: %.1f (%llu estimation samples)\n", tim.kpt,
                    static_cast<unsigned long long>(tim.estimation_samples));
      }
    } else if (opt.algo == "eim" && opt.nodes > 0) {
      gpusim::ClusterSpec spec;
      spec.num_nodes = opt.nodes;
      spec.node.num_devices = opt.devices_per_node;
      spec.node.device = gpusim::make_benchmark_device(opt.memory_mb);
      gpusim::Cluster cluster(spec);
      cluster.set_fault_plan(opt.cluster_faults);
      eim_impl::EimOptions options;
      options.log_encode = !opt.no_log_encoding;
      options.eliminate_sources = !opt.no_source_elim;
      if (opt.draw_mode == "skip") options.draw_mode = eim_impl::DrawMode::Skip;
      if (opt.oom_degrade) options.oom_policy = eim_impl::OomPolicy::Degrade;
      options.metrics = &registry;
      options.trace = trace;
      options.profile = profile;
      options.checkpoint_dir = checkpoint_dir;
      options.resume = ckpt.has_value() ? &*ckpt : nullptr;
      eim_impl::MultiNodeOptions node_options;
      node_options.quorum = opt.quorum;
      node_options.node_degrade = opt.node_degrade;
      const auto clustered = eim_impl::run_eim_cluster(cluster, g, opt.model,
                                                       opt.params, options,
                                                       node_options);
      result = clustered;
      cluster_result = clustered;
      if (!machine_stdout) {
        std::printf("cluster: %u nodes x %u devices (communication %.3f ms",
                    clustered.num_nodes, clustered.devices_per_node,
                    clustered.communication_seconds * 1e3);
        if (!clustered.failed_nodes.empty()) {
          std::printf(", %zu node(s) failed over, %llu samples resharded",
                      clustered.failed_nodes.size(),
                      static_cast<unsigned long long>(clustered.reshard_samples));
        }
        std::printf(")\n");
      }
    } else if (opt.algo == "eim" && opt.devices > 1) {
      std::vector<std::unique_ptr<gpusim::Device>> owned;
      std::vector<gpusim::Device*> ptrs;
      for (std::uint32_t d = 0; d < opt.devices; ++d) {
        owned.push_back(std::make_unique<gpusim::Device>(
            gpusim::make_benchmark_device(opt.memory_mb)));
        ptrs.push_back(owned.back().get());
      }
      eim_impl::EimOptions options;
      options.log_encode = !opt.no_log_encoding;
      options.eliminate_sources = !opt.no_source_elim;
      if (opt.draw_mode == "skip") options.draw_mode = eim_impl::DrawMode::Skip;
      if (opt.oom_degrade) options.oom_policy = eim_impl::OomPolicy::Degrade;
      options.metrics = &registry;
      options.trace = trace;
      options.profile = profile;
      options.checkpoint_dir = checkpoint_dir;
      options.resume = ckpt.has_value() ? &*ckpt : nullptr;
      const auto multi = eim_impl::run_eim_multi(ptrs, g, opt.model, opt.params, options);
      result = multi;
      if (!machine_stdout) {
        std::printf("devices: %u (communication %.3f ms)\n", multi.num_devices,
                    multi.communication_seconds * 1e3);
      }
    } else {
      gpusim::Device device(gpusim::make_benchmark_device(opt.memory_mb));
      if (opt.algo == "eim") {
        eim_impl::EimOptions options;
        options.log_encode = !opt.no_log_encoding;
        options.eliminate_sources = !opt.no_source_elim;
        if (opt.draw_mode == "skip") options.draw_mode = eim_impl::DrawMode::Skip;
        if (opt.oom_degrade) options.oom_policy = eim_impl::OomPolicy::Degrade;
        options.metrics = &registry;
        options.trace = trace;
        options.profile = profile;
        options.checkpoint_dir = checkpoint_dir;
        options.resume = ckpt.has_value() ? &*ckpt : nullptr;
        if (spill_requested) {
          options.spill.policy = opt.spill_policy == "degrade"
                                     ? eim_impl::SpillPolicy::SpillThenDegrade
                                     : eim_impl::SpillPolicy::Spill;
          options.spill.device_budget_bytes = opt.device_mem_budget;
          options.spill.host_budget_bytes = opt.spill_host_budget;
          options.spill.dir = opt.spill_dir;
        }
        result = eim_impl::run_eim(device, g, opt.model, opt.params, options);
      } else if (opt.algo == "gim") {
        result = baselines::run_gim(device, g, opt.model, opt.params);
      } else if (opt.algo == "curipples") {
        result = baselines::run_curipples(device, g, opt.model, opt.params);
      } else {
        throw support::InvalidArgumentError("unknown algorithm '" + opt.algo + "'");
      }
    }
  } catch (const support::Error& e) {
    run_exit = report_error(e);
  }
  // Stop sampling before serialization: artifact I/O is not part of the run
  // and would pollute the attribution.
  sampler_prof.stop();

  // Artifact emission is atomic (temp + rename) and stream-checked: a full
  // disk or failed serializer surfaces as the I/O exit code with a
  // structured stderr record, and never publishes a torn file.
  int artifact_exit = support::kExitOk;
  const auto emit_artifact = [&](const std::string& dest, const char* what,
                                 const std::function<void(std::ostream&)>& producer) {
    try {
      if (dest == "-") {
        producer(std::cout);
        std::cout.flush();
        if (!std::cout) {
          throw support::IoError(std::string("cannot write ") + what + " to stdout");
        }
      } else {
        support::atomic_write_text(dest, producer);
      }
    } catch (const support::Error& e) {
      const int code = report_error(e);
      if (artifact_exit == support::kExitOk) artifact_exit = code;
    }
  };

  if (!opt.metrics_json.empty()) {
    support::metrics::RunReport report;
    report.tool = "eim_cli";
    report.graph = source_name;
    report.algo = opt.algo;
    report.model = graph::to_string(opt.model);
    report.vertices = g.num_vertices();
    report.edges = g.num_edges();
    report.k = opt.params.k;
    report.epsilon = opt.params.epsilon;
    report.metrics = &registry;
    report.wall = profile;
    emit_artifact(opt.metrics_json, "metrics report",
                  [&](std::ostream& out) { report.write_json(out); });
  }

  if (trace != nullptr) {
    emit_artifact(opt.trace_out, "trace",
                  [&](std::ostream& out) { recorder.write_chrome_trace(out); });
  }

  if (!opt.profile_out.empty()) {
    emit_artifact(opt.profile_out, "profile", [&](std::ostream& out) {
      if (support::profiler::SamplingProfiler::supported()) {
        sampler_prof.write_folded(out);
      } else {
        // Visible marker so scripts can SKIP instead of mistaking an
        // unsupported platform for an empty (broken) profile.
        out << "# profiler-unsupported\n";
      }
    });
  }

  if (run_exit != support::kExitOk) return run_exit;
  if (artifact_exit != support::kExitOk) return artifact_exit;

  // A degraded run exits 0 but is not the run that was asked for: surface
  // the shortfall as one machine-parseable stderr record, uniformly across
  // tiers (byte-denominated always; sample-denominated when clustered).
  if (result.degraded) {
    support::JsonWriter w(std::cerr);
    w.begin_object()
        .field("warning", "degraded")
        .field("degrade_shortfall_bytes", result.degrade_shortfall_bytes);
    if (cluster_result.has_value()) {
      w.field("degrade_shortfall_samples",
              cluster_result->degrade_shortfall_samples);
    }
    w.end_object();
    std::cerr << "\n";
  }

  if (opt.json) {
    support::JsonWriter w(std::cout);
    w.begin_object()
        .field("graph", source_name)
        .field("vertices", static_cast<std::uint64_t>(g.num_vertices()))
        .field("edges", static_cast<std::uint64_t>(g.num_edges()))
        .field("model", graph::to_string(opt.model))
        .field("algo", opt.algo)
        .field("k", static_cast<std::uint64_t>(opt.params.k))
        .field("eps", opt.params.epsilon);
    w.begin_array("seeds");
    for (const auto v : result.seeds) w.value(static_cast<std::uint64_t>(v));
    w.end_array();
    w.field("rrr_sets", result.num_sets)
        .field("rrr_elements", result.total_elements)
        .field("singletons_discarded", result.singletons_discarded)
        .field("device_seconds", result.device_seconds)
        .field("peak_device_bytes", result.peak_device_bytes)
        .field("rrr_bytes", result.rrr_bytes)
        .field("estimated_spread", result.estimated_spread)
        .field("degraded", result.degraded);
    if (result.degraded) {
      w.field("degrade_shortfall_bytes", result.degrade_shortfall_bytes);
    }
    if (spill_requested) {
      w.field("spilled_sets", result.spilled_sets)
          .field("spill_bytes_compressed", result.spill_bytes_compressed);
    }
    if (cluster_result.has_value()) {
      w.field("nodes", static_cast<std::uint64_t>(cluster_result->num_nodes))
          .field("devices_per_node",
                 static_cast<std::uint64_t>(cluster_result->devices_per_node))
          .field("communication_seconds", cluster_result->communication_seconds)
          .field("reshard_samples", cluster_result->reshard_samples)
          .field("collective_retries", cluster_result->collective_retries);
      w.begin_array("failed_nodes");
      for (const auto n : cluster_result->failed_nodes) {
        w.value(static_cast<std::uint64_t>(n));
      }
      w.end_array();
      if (cluster_result->degraded) {
        w.field("degrade_shortfall_samples",
                cluster_result->degrade_shortfall_samples);
      }
    }
    if (opt.verify_trials > 0) {
      const auto spread = diffusion::estimate_spread(g, opt.model, result.seeds,
                                                     opt.verify_trials, 1234);
      w.field("verified_spread", spread.mean).field("verified_stddev", spread.stddev);
    }
    w.end_object();
    std::cout << "\n";
    return 0;
  }
  if (machine_stdout) return 0;

  std::printf("seeds:");
  for (const auto v : result.seeds) std::printf(" %u", v);
  std::printf("\nRRR sets: %llu (%llu elements, %llu singleton samples discarded)\n",
              static_cast<unsigned long long>(result.num_sets),
              static_cast<unsigned long long>(result.total_elements),
              static_cast<unsigned long long>(result.singletons_discarded));
  if (opt.algo != "serial") {
    std::printf("modeled device time: %.3f ms (kernels %.3f, transfers %.3f)\n",
                result.device_seconds * 1e3, result.kernel_seconds * 1e3,
                result.transfer_seconds * 1e3);
    std::printf("peak device memory: %.2f MB | R stored %.2f MB (raw %.2f MB)\n",
                static_cast<double>(result.peak_device_bytes) / 1e6,
                static_cast<double>(result.rrr_bytes) / 1e6,
                static_cast<double>(result.rrr_raw_bytes) / 1e6);
    if (result.spilled_sets > 0) {
      std::printf("spill: %llu sets evicted off-device (%.2f MB compressed)\n",
                  static_cast<unsigned long long>(result.spilled_sets),
                  static_cast<double>(result.spill_bytes_compressed) / 1e6);
    }
  }
  if (result.degraded) {
    if (cluster_result.has_value() &&
        cluster_result->degrade_shortfall_samples > 0) {
      std::printf(
          "DEGRADED: cluster fell below quorum %llu samples short of the "
          "full run; seeds are best-effort over the committed prefix\n",
          static_cast<unsigned long long>(
              cluster_result->degrade_shortfall_samples));
    } else {
      std::printf(
          "DEGRADED: device memory ran out %llu bytes short; seeds are "
          "best-effort over the sets that fit\n",
          static_cast<unsigned long long>(result.degrade_shortfall_bytes));
    }
  }
  std::printf("coverage-based spread estimate: %.1f of %u vertices\n",
              result.estimated_spread, g.num_vertices());

  if (opt.verify_trials > 0) {
    const auto spread = diffusion::estimate_spread(g, opt.model, result.seeds,
                                                   opt.verify_trials, 1234);
    std::printf("forward MC verification: %.1f +- %.1f expected activations\n",
                spread.mean, spread.stddev);
  }
  return 0;
}
