// graph_stats — structural profile of a network, focused on the properties
// that predict influence-maximization behaviour.
//
// Usage:
//   graph_stats --dataset EE
//   graph_stats --file data/wiki-Vote.txt
//
// Reports size, degree shape, connectivity, and the RIS-relevant signals:
// zero in-degree share (guaranteed singleton RRR sources, §3.4) and the
// expected reverse-branching factor (how explosive RRR sets will be).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>

#include "eim/graph/components.hpp"
#include "eim/graph/io.hpp"
#include "eim/graph/registry.hpp"
#include "eim/graph/weights.hpp"

int main(int argc, char** argv) {
  using namespace eim;

  std::string dataset = "WV";
  std::string file;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--dataset") == 0) dataset = argv[i + 1];
    if (std::strcmp(argv[i], "--file") == 0) file = argv[i + 1];
  }

  graph::Graph g;
  std::string name;
  if (!file.empty()) {
    name = file;
    g = graph::Graph::from_edge_list(graph::load_snap_text_file(file));
  } else {
    const auto spec = graph::find_dataset(dataset);
    if (!spec) {
      std::fprintf(stderr, "unknown dataset '%s'\n", dataset.c_str());
      return 1;
    }
    name = std::string(spec->name) + " (synthetic)";
    g = graph::Graph::from_edge_list(graph::build_dataset_edges(*spec));
  }
  graph::assign_weights(g, graph::DiffusionModel::IndependentCascade);

  const graph::GraphStats s = graph::compute_stats(g);
  const auto weak = graph::weakly_connected_components(g);
  const auto strong = graph::strongly_connected_components(g);

  // Reverse branching factor under 1/d^- weights: each visited vertex
  // activates one in-neighbor in expectation unless it has none, so the
  // effective factor is the share of vertices with in-edges. Near 1.0 means
  // near-critical cascades (huge RRR sets); well below means short ones.
  const double branching =
      1.0 - static_cast<double>(s.zero_in_degree_count) / s.num_vertices;

  std::printf("graph: %s\n", name.c_str());
  std::printf("  vertices: %u   edges: %llu   avg degree: %.2f\n", s.num_vertices,
              static_cast<unsigned long long>(s.num_edges), s.avg_degree);
  std::printf("  max in-degree: %llu   max out-degree: %llu\n",
              static_cast<unsigned long long>(s.max_in_degree),
              static_cast<unsigned long long>(s.max_out_degree));
  std::printf("  weakly connected components: %u (giant: %u vertices, %.1f%%)\n",
              weak.num_components, weak.giant_size,
              100.0 * weak.giant_size / s.num_vertices);
  std::printf("  strongly connected components: %u (giant: %u vertices)\n",
              strong.num_components, strong.giant_size);
  std::printf("  zero in-degree vertices: %u (%.1f%%) -> guaranteed singleton RRR sources\n",
              s.zero_in_degree_count, 100.0 * s.zero_in_degree_count / s.num_vertices);
  std::printf("  reverse branching factor (IC, 1/d^-): %.3f %s\n", branching,
              branching > 0.97 ? "(near-critical: expect very large RRR sets)"
                               : branching > 0.8 ? "(moderate cascades)"
                                                 : "(short cascades, many singletons)");
  return 0;
}
