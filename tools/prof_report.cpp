// prof_report — bucketed attribution over a folded-stack profile.
//
// Collapses the folded ("collapsed") output of the support::profiler
// sampling profiler (eim_cli --profile-out / EIM_BENCH_PROFILE) into the
// attribution table every sampler-optimization PR is judged with:
//
//   prof_report profile.folded
//   prof_report --json profile.folded
//   eim_cli ... --profile-out - | prof_report -
//
// Each sample (one folded line, weighted by its count) is attributed to the
// first frame, scanning leaf to root, that matches a known hot-path bucket:
//
//   sampler   Monte Carlo RRR generation (EimSampler/RrrSampler BFS + walk)
//   rng.skip  fast-draw arithmetic: geometric skip-ahead draws and
//             alias-table picks (--draw-mode skip)
//   rng.gen   Philox block generation and bulk refills
//   rng       remaining draw plumbing (RandomStream scalar draws, the draw
//             buffer bookkeeping) — also where every rng-ish symbol from a
//             profile predating the rng.gen/rng.skip split still lands, so
//             old folded files keep parsing with the same total rng share
//   spill     memory-pressure tiers: TieredRrrStore evict/fetch, the
//             rrr_block codec frames it drives, atomic disk I/O + retries
//   codec     bit-packed encode/decode (PackedCsc, BitPackedArray, ...)
//   selector  seed selection (inverted index, lazy-greedy, coverage walk)
//   pool      ThreadPool dispatch/queue machinery (idle workers excluded
//             only if the platform strips their frames)
//   other     everything else (driver, I/O, unresolved frames)
//
// Leaf-to-root matching attributes work to the code actually executing —
// a codec decode running inside the selector counts as codec.
//
// A sample "symbolizes" when at least one of its frames is a real symbol
// (not a raw 0x address). The tool exits nonzero when fewer than
// --min-symbolized (default 0.5) of the samples symbolize — an unsymbolized
// profile silently attributes everything to "other", which is worse than
// failing loudly. Exit codes: 0 ok, 1 below threshold or empty profile,
// 2 bad arguments, 3 unreadable input.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "eim/support/error.hpp"
#include "eim/support/json.hpp"
#include "eim/support/table.hpp"

namespace {

struct Bucket {
  const char* name;
  /// Substring patterns; a frame matches the bucket if it contains any.
  std::vector<std::string_view> patterns;
  std::uint64_t samples = 0;
};

/// Bucket patterns, checked per frame in this order (first hit wins). The
/// order resolves the rare frame that matches two buckets: draw generation
/// outranks the sampler that requested it, the spill tier outranks the
/// codec it drives (rrr_block_encode inside an eviction is spill tax, not
/// steady-state codec work), codec outranks the selector driving the decode.
std::vector<Bucket> make_buckets() {
  return {
      // The rng family is split three ways: the two sub-buckets claim their
      // specific symbols first, and the plain `rng` catch-all keeps every
      // other draw-path symbol — including everything an old (pre-split)
      // folded file can contain — bucketing exactly where it used to.
      {"rng.skip",
       {"geometric_skip", "alias_pick", "build_draw_plan", "draw_plan"},
       0},
      {"rng.gen",
       {"Philox", "fill_floats", "fill_u32", "fill_blocks", "refill"},
       0},
      {"rng",
       {"RandomStream", "FloatDrawBuffer", "splitmix64"},
       0},
      {"spill",
       {"TieredRrrStore", "rrr_block_", "spill", "atomic_write", "retry_on",
        "resample_set", "quarantine"},
       0},
      {"codec",
       {"BitPackedArray", "PackedCsc", "decode_set", "decode_into",
        "store_release_range", "encode", "BitmapSet", "Huffman", "varint"},
       0},
      {"sampler",
       {"EimSampler", "RrrSampler", "bfs_ic", "walk_lt", "sample_ic", "sample_lt",
        "sample_into", "sample_rrr", "sample_assigned", "sample_to", "generate",
        "launch_blocks", "try_commit", "wave_body"},
       0},
      {"selector",
       {"SeedSelector", "GpuSeedSelector", "LazyArgMax", "build_inverted_index",
        "select_seeds", "seed_selection", "pop_best"},
       0},
      {"pool",
       {"ThreadPool", "parallel_for", "worker_loop", "enqueue_bulk",
        "MoveOnlyTask", "drain"},
       0},
  };
}

bool frame_is_symbol(std::string_view frame) {
  return !(frame.size() > 2 && frame[0] == '0' && (frame[1] == 'x' || frame[1] == 'X'));
}

struct Report {
  std::vector<Bucket> buckets = make_buckets();
  std::uint64_t total = 0;
  std::uint64_t other = 0;
  std::uint64_t symbolized = 0;

  /// Attribute one folded stack (root;...;leaf) carrying `count` samples.
  void add(std::string_view stack, std::uint64_t count) {
    total += count;

    // Split root-first, then scan leaf to root.
    std::vector<std::string_view> frames;
    std::size_t pos = 0;
    while (pos <= stack.size()) {
      const std::size_t semi = stack.find(';', pos);
      const std::size_t end = semi == std::string_view::npos ? stack.size() : semi;
      frames.push_back(stack.substr(pos, end - pos));
      if (semi == std::string_view::npos) break;
      pos = semi + 1;
    }

    bool any_symbol = false;
    Bucket* hit = nullptr;
    for (auto it = frames.rbegin(); it != frames.rend(); ++it) {
      if (frame_is_symbol(*it)) any_symbol = true;
      if (hit == nullptr) {
        for (Bucket& b : buckets) {
          for (const std::string_view pat : b.patterns) {
            if (it->find(pat) != std::string_view::npos) {
              hit = &b;
              break;
            }
          }
          if (hit != nullptr) break;
        }
      }
      if (hit != nullptr && any_symbol) break;
    }
    if (any_symbol) symbolized += count;
    if (hit != nullptr) {
      hit->samples += count;
    } else {
      other += count;
    }
  }

  [[nodiscard]] double symbolized_fraction() const {
    return total == 0 ? 0.0
                      : static_cast<double>(symbolized) / static_cast<double>(total);
  }
  [[nodiscard]] double bucketed_fraction() const {
    return total == 0 ? 0.0
                      : static_cast<double>(total - other) / static_cast<double>(total);
  }
};

Report collapse(std::istream& in, const std::string& label) {
  Report report;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;  // tolerate comment headers
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos || space + 1 >= line.size()) {
      throw eim::support::IoError(label + ":" + std::to_string(lineno) +
                                  ": not a folded-stack line (missing count)");
    }
    char* end = nullptr;
    const unsigned long long count = std::strtoull(line.c_str() + space + 1, &end, 10);
    if (end == line.c_str() + space + 1 || *end != '\0') {
      throw eim::support::IoError(label + ":" + std::to_string(lineno) +
                                  ": bad sample count '" + line.substr(space + 1) + "'");
    }
    report.add(std::string_view(line).substr(0, space), count);
  }
  return report;
}

double pct(std::uint64_t part, std::uint64_t total) {
  return total == 0 ? 0.0
                    : 100.0 * static_cast<double>(part) / static_cast<double>(total);
}

void print_text(const Report& r) {
  eim::support::TextTable table({"bucket", "samples", "percent"});
  for (const Bucket& b : r.buckets) {
    table.add_row({b.name, std::to_string(b.samples),
                   eim::support::TextTable::num(pct(b.samples, r.total), 1)});
  }
  table.add_row({"other", std::to_string(r.other),
                 eim::support::TextTable::num(pct(r.other, r.total), 1)});
  table.print(std::cout);
  std::printf("# total samples:  %llu\n", static_cast<unsigned long long>(r.total));
  std::printf("# symbolized:     %llu (%.1f%%)\n",
              static_cast<unsigned long long>(r.symbolized),
              100.0 * r.symbolized_fraction());
  std::printf("# bucketed:       %.1f%%\n", 100.0 * r.bucketed_fraction());
}

void print_json(const Report& r) {
  eim::support::JsonWriter w(std::cout);
  w.begin_object();
  // v2: the `rng` bucket split into rng.skip / rng.gen / rng (catch-all).
  w.field("schema", "eim.prof_report.v2");
  w.field("total_samples", static_cast<std::uint64_t>(r.total));
  w.field("symbolized_samples", static_cast<std::uint64_t>(r.symbolized));
  w.field("symbolized_fraction", r.symbolized_fraction());
  w.field("bucketed_fraction", r.bucketed_fraction());
  w.key("buckets").begin_object();
  for (const Bucket& b : r.buckets) w.field(b.name, b.samples);
  w.field("other", r.other);
  w.end_object();
  w.end_object();
  std::cout << '\n';
}

void print_usage() {
  std::puts(
      "usage: prof_report [--json] [--min-symbolized <frac>] <profile.folded|->\n"
      "  Attributes a folded-stack sampling profile (support::profiler) to\n"
      "  the repo's hot-path buckets: sampler / rng.skip / rng.gen / rng /\n"
      "  spill / codec / selector / pool / other. '-' reads stdin. Exits 1\n"
      "  when the profile\n"
      "  is empty or\n"
      "  fewer than <frac> (default 0.5) of the samples symbolize.");
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  double min_symbolized = 0.5;
  std::string path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return eim::support::kExitOk;
    }
    if (arg == "--json") {
      json = true;
    } else if (arg == "--min-symbolized") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --min-symbolized needs a value\n");
        return eim::support::kExitBadArgs;
      }
      char* end = nullptr;
      min_symbolized = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0' || min_symbolized < 0.0 ||
          min_symbolized > 1.0) {
        std::fprintf(stderr, "error: bad fraction '%s'\n", argv[i]);
        return eim::support::kExitBadArgs;
      }
    } else if (arg != "-" && !arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n\n", arg.c_str());
      print_usage();
      return eim::support::kExitBadArgs;
    } else if (path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr, "error: more than one input file\n");
      return eim::support::kExitBadArgs;
    }
  }
  if (path.empty()) {
    print_usage();
    return eim::support::kExitBadArgs;
  }

  try {
    Report report;
    if (path == "-") {
      report = collapse(std::cin, "<stdin>");
    } else {
      std::ifstream in(path, std::ios::binary);
      if (!in) throw eim::support::IoError("cannot read '" + path + "'");
      report = collapse(in, path);
    }

    if (json) {
      print_json(report);
    } else {
      print_text(report);
    }

    if (report.total == 0) {
      std::fprintf(stderr, "error: empty profile (no samples)\n");
      return eim::support::kExitError;
    }
    if (report.symbolized_fraction() < min_symbolized) {
      std::fprintf(stderr,
                   "error: only %.1f%% of samples symbolized (need %.1f%%) — "
                   "was the binary built with symbol export?\n",
                   100.0 * report.symbolized_fraction(), 100.0 * min_symbolized);
      return eim::support::kExitError;
    }
    return eim::support::kExitOk;
  } catch (const eim::support::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return eim::support::kExitIo;
  }
}
