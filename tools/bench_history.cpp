// bench_history — per-cell performance trajectory across bench envelopes.
//
// Reads N bench envelope files (oldest first, as listed on the command
// line) and prints one trend table per measure:
//
//   bench_history BENCH_a.json BENCH_b.json BENCH_c.json
//
//   == seconds (modeled) ==
//   cell              BENCH_a   BENCH_b   BENCH_c
//   fig7_ic_WV_fast   1.0421    1.0421    0.9817
//   ...
//
// Rows are the union of cell ids in first-appearance order; a cell absent
// from an envelope prints "-". The modeled `seconds` column is the paper's
// reproducible cost model (bit-identical across hosts), `wall_seconds` is
// the honest host wall clock — drift in one but not the other localizes a
// change to the model or to the host implementation respectively.
//
// Exit codes: 0 ok, 2 bad arguments, 3 unreadable/invalid input.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "eim/support/error.hpp"
#include "eim/support/json.hpp"
#include "eim/support/table.hpp"

namespace {

using eim::support::JsonValue;

struct Envelope {
  std::string label;
  /// cell id -> (seconds, wall_seconds)
  std::map<std::string, std::pair<double, double>> cells;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw eim::support::IoError("cannot read '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string basename_no_ext(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  std::string base = slash == std::string::npos ? path : path.substr(slash + 1);
  const std::size_t dot = base.rfind('.');
  if (dot != std::string::npos && dot > 0) base.resize(dot);
  return base;
}

Envelope load_envelope(const std::string& path) {
  const JsonValue root = eim::support::parse_json(read_file(path));
  if (!root.is_object() || root.find("schema") == nullptr ||
      !root.at("schema").is_string()) {
    throw eim::support::IoError("'" + path + "': not a bench envelope (no schema)");
  }
  const JsonValue* cells = root.find("cells");
  if (cells == nullptr || !cells->is_array()) {
    throw eim::support::IoError("'" + path + "': envelope has no cells array");
  }
  Envelope env;
  env.label = basename_no_ext(path);
  for (const JsonValue& cell : cells->items()) {
    if (!cell.is_object() || cell.find("id") == nullptr) continue;
    const std::string id = cell.at("id").as_string();
    const JsonValue* seconds = cell.find("seconds");
    const JsonValue* wall = cell.find("wall_seconds");
    env.cells[id] = {seconds != nullptr ? seconds->as_double() : -1.0,
                     wall != nullptr ? wall->as_double() : -1.0};
  }
  return env;
}

std::string format_cell(double value, int precision) {
  return value < 0 ? "-" : eim::support::TextTable::num(value, precision);
}

void print_trend(const std::string& title, const std::vector<Envelope>& envelopes,
                 const std::vector<std::string>& row_order, bool wall) {
  std::vector<std::string> header{"cell"};
  for (const Envelope& e : envelopes) header.push_back(e.label);
  eim::support::TextTable table(header);
  for (const std::string& id : row_order) {
    std::vector<std::string> row{id};
    for (const Envelope& e : envelopes) {
      const auto it = e.cells.find(id);
      if (it == e.cells.end()) {
        row.emplace_back("-");
      } else {
        row.push_back(format_cell(wall ? it->second.second : it->second.first, 4));
      }
    }
    table.add_row(std::move(row));
  }
  std::cout << "== " << title << " ==\n";
  table.print(std::cout);
  std::cout << '\n';
}

void print_usage() {
  std::puts(
      "usage: bench_history <envelope.json> [<envelope.json> ...]\n"
      "  Prints per-cell trend tables of modeled `seconds` and host\n"
      "  `wall_seconds` across bench envelopes, in the order given\n"
      "  (oldest first). Cells missing from an envelope print '-'.");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return eim::support::kExitOk;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n\n", arg.c_str());
      print_usage();
      return eim::support::kExitBadArgs;
    }
    paths.push_back(arg);
  }
  if (paths.empty()) {
    print_usage();
    return eim::support::kExitBadArgs;
  }

  try {
    std::vector<Envelope> envelopes;
    envelopes.reserve(paths.size());
    for (const std::string& p : paths) envelopes.push_back(load_envelope(p));

    // Row order: union of cell ids, first appearance wins.
    std::vector<std::string> row_order;
    for (const Envelope& e : envelopes) {
      for (const auto& [id, values] : e.cells) {
        bool seen = false;
        for (const std::string& existing : row_order) {
          if (existing == id) {
            seen = true;
            break;
          }
        }
        if (!seen) row_order.push_back(id);
      }
    }

    print_trend("seconds (modeled)", envelopes, row_order, /*wall=*/false);
    print_trend("wall_seconds (host)", envelopes, row_order, /*wall=*/true);
    return eim::support::kExitOk;
  } catch (const eim::support::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return eim::support::kExitIo;
  }
}
