// Classical non-sketch seed-selection heuristics.
//
// These are the pre-RIS practical alternatives the IM literature (and the
// paper's §1) measures sketch algorithms against: no approximation
// guarantee, but near-instant. Useful as the "what does the guarantee buy"
// comparison in examples and benches.
#pragma once

#include <cstdint>
#include <vector>

#include "eim/graph/graph.hpp"

namespace eim::baselines {

/// Top-k by out-degree — the naive "most followers" pick.
[[nodiscard]] std::vector<graph::VertexId> max_degree_seeds(const graph::Graph& g,
                                                            std::uint32_t k);

/// SingleDiscount (Chen, Wang, Yang — KDD'09): like max-degree, but each
/// pick discounts its neighbors' degrees by their edges into the chosen
/// set, avoiding redundant hubs in the same neighborhood.
[[nodiscard]] std::vector<graph::VertexId> single_discount_seeds(const graph::Graph& g,
                                                                 std::uint32_t k);

/// DegreeDiscountIC (same paper): refines the discount with the IC
/// activation probability p — the expected marginal value of v with t_v
/// chosen in-neighbors is d_v - 2 t_v - (d_v - t_v) t_v p. Derived for
/// uniform p; we use the mean edge weight as p.
[[nodiscard]] std::vector<graph::VertexId> degree_discount_seeds(const graph::Graph& g,
                                                                 std::uint32_t k);

}  // namespace eim::baselines
