// gIM-like baseline (Shahrouz, Salehkaleybar, Hashemi — TPDS 2021), re-built
// on the same simulator substrate as eIM so the comparison isolates the
// *design* differences the paper credits for its speedups:
//
//  * shared-memory BFS queue per block, spilled to dynamically-allocated
//    global memory when it fills (§2.3) — fast for small traversals, but
//    every spill pays an in-kernel malloc and leaves allocator fragmentation
//    behind, which is gIM's documented OOM mechanism;
//  * each finished set is written to a dynamically-allocated temporary
//    global buffer and then copied into the final collection (double
//    traffic, one more malloc);
//  * R is stored uncompressed and grown by doubling (transiently holding
//    old + new), with no source elimination;
//  * seed selection scans one *warp* per RRR set.
//
// Determinism contract: identical sample streams as the serial reference
// and eIM (imm::kSampleStreamTag), so with elimination off all backends
// produce identical RRR sets — the integration tests rely on this.
#pragma once

#include "eim/eim/options.hpp"
#include "eim/gpusim/device.hpp"
#include "eim/graph/graph.hpp"
#include "eim/graph/weights.hpp"
#include "eim/imm/params.hpp"

namespace eim::baselines {

struct GimConfig {
  /// Shared-memory queue capacity in vertices. gIM budgets most of the
  /// 48 KB block shared memory for the queue; 4096 entries (16 KB) leaves
  /// room for its frontier metadata.
  std::uint32_t shared_queue_entries = 4096;
  /// Allocator model for in-kernel mallocs: each allocation is rounded up
  /// to the next power of two plus a header, and the rounding waste stays
  /// unavailable until the run ends (cudaMalloc-in-kernel heap behaviour —
  /// the fragmentation the paper blames for gIM's exhaustion of GPU memory).
  std::uint32_t malloc_header_bytes = 64;
  /// In-kernel heap pressure: each malloc's cost grows by
  /// base * allocations_so_far / heap_pressure_scale, modeling the free-list
  /// search and global heap-lock contention that make CUDA's device-side
  /// allocator degrade as it fills — the "repeated dynamic memory
  /// allocations ... introduce overhead" behaviour of §2.3. This is the
  /// term that makes eIM's advantage over gIM grow with theta (Tables 2-5).
  std::uint64_t heap_pressure_scale = 50'000;
  /// Long-run fragmentation per in-kernel malloc/free pair, in bytes
  /// (headers and split blocks that never coalesce).
  std::uint64_t frag_bytes_per_malloc = 8;
  /// gIM lays R out as fixed-width set slots sized from an estimate of the
  /// maximum traversal, because a running kernel cannot grow its arrays.
  /// Slot width = slot_padding_factor * average observed set size. This
  /// padded allocation — not the useful payload — is what exhausts device
  /// memory when theta or the set sizes are large (the paper's OOM cells).
  double slot_padding_factor = 4.0;
};

/// Run the gIM-like pipeline. Throws DeviceOutOfMemoryError when the device
/// budget is exhausted (the paper's OOM cells).
[[nodiscard]] eim_impl::EimResult run_gim(gpusim::Device& device, const graph::Graph& g,
                                          graph::DiffusionModel model,
                                          const imm::ImmParams& params,
                                          const GimConfig& config = {});

}  // namespace eim::baselines
