// cuRipples-like baseline (Minutoli et al., ICS 2020), re-built on the
// simulator substrate.
//
// The design the paper contrasts eIM against (§2.3): a CPU+GPU pair where
// RRR sets are generated on the device but offloaded to *system* memory —
// which scales beautifully but pays for it at seed selection, when the sets
// are shuttled back into device memory until it is full and the overflow is
// processed by the (much slower) CPU cores. The modeled time is dominated
// by those PCIe transfers plus the CPU-side scan, which is exactly why the
// paper measures three-orders-of-magnitude speedups for eIM.
//
// Same deterministic sample streams as every other backend.
#pragma once

#include "eim/eim/options.hpp"
#include "eim/gpusim/device.hpp"
#include "eim/graph/graph.hpp"
#include "eim/graph/weights.hpp"
#include "eim/imm/params.hpp"

namespace eim::baselines {

struct CuRipplesConfig {
  /// Host cores paired with the device (the paper's runs use 16).
  std::uint32_t cpu_cores = 16;
  /// Host-side cost of scanning one RRR set for the picked vertex during a
  /// selection round, in nanoseconds. Calibrated to Ripples' published
  /// single-node max-cover throughput (bitmask updates + queue bookkeeping
  /// per set, not just a pointer chase).
  double cpu_ns_per_set = 800.0;
  /// Host-side cost of generating one RRR-set element during sampling,
  /// calibrated to Ripples' CPU sampling throughput (hash-set visited
  /// tracking and dynamic set construction are microsecond-scale per
  /// element on commodity cores).
  double cpu_ns_per_element = 4000.0;
  /// Fraction of sampling delegated to the CPU workers (cuRipples splits
  /// batches across the CPU-GPU pair; on a single-GPU node the CPU side
  /// carries about half the batches).
  double cpu_sampling_share = 0.5;
  /// Fraction of device memory available to stage RRR sets during seed
  /// selection (the rest holds the graph and working buffers).
  double selection_staging_fraction = 0.5;
};

[[nodiscard]] eim_impl::EimResult run_curipples(gpusim::Device& device,
                                                const graph::Graph& g,
                                                graph::DiffusionModel model,
                                                const imm::ImmParams& params,
                                                const CuRipplesConfig& config = {});

}  // namespace eim::baselines
