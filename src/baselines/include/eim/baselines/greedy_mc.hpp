// Classical Monte-Carlo greedy baselines (Kempe et al. 2003; Goyal et al.
// 2011), used to sanity-check the sketch-based algorithms' seed quality on
// small graphs. Both achieve the same (1 - 1/e - eps) guarantee as IMM but
// cost O(k * n * trials) cascade simulations — the very inefficiency that
// motivated the RIS line of work (§1).
#pragma once

#include <cstdint>
#include <vector>

#include "eim/graph/graph.hpp"
#include "eim/graph/weights.hpp"

namespace eim::baselines {

struct GreedyMcResult {
  std::vector<graph::VertexId> seeds;
  /// Monte-Carlo estimate of E[I(seeds)] after the final pick.
  double estimated_spread = 0.0;
  /// Cascade simulations executed (the cost driver).
  std::uint64_t simulations = 0;
};

/// Plain greedy hill climbing: every pick evaluates the marginal gain of
/// every remaining vertex with `trials` cascades.
[[nodiscard]] GreedyMcResult greedy_mc(const graph::Graph& g,
                                       graph::DiffusionModel model, std::uint32_t k,
                                       std::uint32_t trials, std::uint64_t seed = 42);

/// CELF: greedy with lazy-forward evaluation. Identical output distribution
/// with far fewer simulations (submodularity makes stale bounds safe).
[[nodiscard]] GreedyMcResult celf(const graph::Graph& g, graph::DiffusionModel model,
                                  std::uint32_t k, std::uint32_t trials,
                                  std::uint64_t seed = 42);

}  // namespace eim::baselines
