#include "eim/baselines/heuristics.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

#include "eim/support/error.hpp"

namespace eim::baselines {

using graph::VertexId;

namespace {

void check_k(const graph::Graph& g, std::uint32_t k) {
  EIM_CHECK_MSG(k >= 1 && k <= g.num_vertices(), "k out of range");
}

}  // namespace

std::vector<VertexId> max_degree_seeds(const graph::Graph& g, std::uint32_t k) {
  check_k(g, k);
  std::vector<VertexId> order(g.num_vertices());
  std::iota(order.begin(), order.end(), 0u);
  std::partial_sort(order.begin(), order.begin() + k, order.end(),
                    [&](VertexId a, VertexId b) {
                      return g.out_degree(a) != g.out_degree(b)
                                 ? g.out_degree(a) > g.out_degree(b)
                                 : a < b;
                    });
  order.resize(k);
  return order;
}

std::vector<VertexId> single_discount_seeds(const graph::Graph& g, std::uint32_t k) {
  check_k(g, k);
  const VertexId n = g.num_vertices();
  // Effective degree = out-degree minus edges already pointing into S.
  std::vector<std::int64_t> degree(n);
  for (VertexId v = 0; v < n; ++v) degree[v] = static_cast<std::int64_t>(g.out_degree(v));
  std::vector<bool> chosen(n, false);

  std::vector<VertexId> seeds;
  seeds.reserve(k);
  for (std::uint32_t pick = 0; pick < k; ++pick) {
    VertexId best = graph::kInvalidVertex;
    std::int64_t best_degree = -1;
    for (VertexId v = 0; v < n; ++v) {
      if (!chosen[v] && degree[v] > best_degree) {
        best = v;
        best_degree = degree[v];
      }
    }
    chosen[best] = true;
    seeds.push_back(best);
    // Everyone pointing at `best` loses one useful edge.
    for (const VertexId u : g.in().neighbors(best)) {
      if (!chosen[u]) --degree[u];
    }
  }
  return seeds;
}

std::vector<VertexId> degree_discount_seeds(const graph::Graph& g, std::uint32_t k) {
  check_k(g, k);
  const VertexId n = g.num_vertices();

  // Mean activation probability stands in for the uniform p the formula
  // assumes (the paper's default weighting is 1/d^-, so p varies per edge).
  double p = 0.01;
  if (g.num_edges() > 0) {
    double sum = 0.0;
    for (const graph::Weight w : g.all_in_weights()) sum += w;
    p = sum / static_cast<double>(g.num_edges());
  }

  std::vector<double> score(n);
  std::vector<std::uint32_t> hits(n, 0);  // t_v: chosen in-neighbors
  for (VertexId v = 0; v < n; ++v) score[v] = static_cast<double>(g.out_degree(v));
  std::vector<bool> chosen(n, false);

  std::vector<VertexId> seeds;
  seeds.reserve(k);
  for (std::uint32_t pick = 0; pick < k; ++pick) {
    VertexId best = graph::kInvalidVertex;
    double best_score = -1.0;
    for (VertexId v = 0; v < n; ++v) {
      if (!chosen[v] && score[v] > best_score) {
        best = v;
        best_score = score[v];
      }
    }
    chosen[best] = true;
    seeds.push_back(best);
    // DegreeDiscountIC update for the out-neighbors of the chosen seed.
    for (const VertexId v : g.out().neighbors(best)) {
      if (chosen[v]) continue;
      ++hits[v];
      const auto d = static_cast<double>(g.out_degree(v));
      const auto t = static_cast<double>(hits[v]);
      score[v] = d - 2.0 * t - (d - t) * t * p;
    }
  }
  return seeds;
}

}  // namespace eim::baselines
