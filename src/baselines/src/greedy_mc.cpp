#include "eim/baselines/greedy_mc.hpp"

#include <algorithm>
#include <queue>

#include "eim/diffusion/forward.hpp"
#include "eim/support/error.hpp"

namespace eim::baselines {

using graph::VertexId;

namespace {

double mean_spread(const graph::Graph& g, graph::DiffusionModel model,
                   std::vector<VertexId>& seeds, VertexId candidate,
                   std::uint32_t trials, std::uint64_t seed,
                   std::uint64_t& simulations) {
  seeds.push_back(candidate);
  double total = 0.0;
  for (std::uint32_t t = 0; t < trials; ++t) {
    total += model == graph::DiffusionModel::IndependentCascade
                 ? diffusion::simulate_ic(g, seeds, seed, t)
                 : diffusion::simulate_lt(g, seeds, seed, t);
  }
  simulations += trials;
  seeds.pop_back();
  return total / trials;
}

}  // namespace

GreedyMcResult greedy_mc(const graph::Graph& g, graph::DiffusionModel model,
                         std::uint32_t k, std::uint32_t trials, std::uint64_t seed) {
  const VertexId n = g.num_vertices();
  EIM_CHECK_MSG(k >= 1 && k <= n, "k out of range");
  EIM_CHECK_MSG(trials >= 1, "need at least one trial");

  GreedyMcResult result;
  std::vector<bool> chosen(n, false);
  double current_spread = 0.0;

  for (std::uint32_t pick = 0; pick < k; ++pick) {
    VertexId best = graph::kInvalidVertex;
    double best_spread = current_spread;
    for (VertexId v = 0; v < n; ++v) {
      if (chosen[v]) continue;
      const double spread =
          mean_spread(g, model, result.seeds, v, trials, seed, result.simulations);
      if (spread > best_spread || best == graph::kInvalidVertex) {
        best = v;
        best_spread = spread;
      }
    }
    chosen[best] = true;
    result.seeds.push_back(best);
    current_spread = best_spread;
  }
  result.estimated_spread = current_spread;
  return result;
}

GreedyMcResult celf(const graph::Graph& g, graph::DiffusionModel model, std::uint32_t k,
                    std::uint32_t trials, std::uint64_t seed) {
  const VertexId n = g.num_vertices();
  EIM_CHECK_MSG(k >= 1 && k <= n, "k out of range");
  EIM_CHECK_MSG(trials >= 1, "need at least one trial");

  GreedyMcResult result;
  double current_spread = 0.0;

  // Max-heap of (stale marginal gain, vertex, round the gain was computed).
  struct Entry {
    double gain;
    VertexId vertex;
    std::uint32_t round;
    bool operator<(const Entry& other) const { return gain < other.gain; }
  };
  std::priority_queue<Entry> heap;

  // Initial pass: marginal gain of every singleton.
  for (VertexId v = 0; v < n; ++v) {
    const double spread =
        mean_spread(g, model, result.seeds, v, trials, seed, result.simulations);
    heap.push(Entry{spread, v, 0});
  }

  for (std::uint32_t pick = 0; pick < k; ++pick) {
    for (;;) {
      Entry top = heap.top();
      heap.pop();
      if (top.round == pick) {
        // Fresh for this round: submodularity guarantees it is the max.
        result.seeds.push_back(top.vertex);
        current_spread += top.gain;
        break;
      }
      // Stale: recompute against the current seed set and re-insert.
      const double spread = mean_spread(g, model, result.seeds, top.vertex, trials,
                                        seed, result.simulations);
      heap.push(Entry{spread - current_spread, top.vertex, pick});
    }
  }
  result.estimated_spread = current_spread;
  return result;
}

}  // namespace eim::baselines
