#include "eim/baselines/curipples.hpp"

#include <algorithm>

#include "eim/imm/driver.hpp"
#include "eim/imm/imm.hpp"
#include "eim/imm/rrr_store.hpp"
#include "eim/support/error.hpp"

namespace eim::baselines {

using eim_impl::EimResult;
using graph::VertexId;

namespace {

/// Effective GPU sampling throughput in ns per RRR-set element: the
/// per-element kernel cost (~1200 cycles of traversal + commit traffic)
/// amortized over the device's concurrently resident sampler blocks.
/// Matches the order of magnitude the metered eIM/gIM kernels exhibit.
constexpr double kGpuNsPerElement = 2.5;

/// Parallel efficiency of the host-side selection loop (Ripples' OpenMP
/// max-cover scales sublinearly over sockets).
constexpr double kCpuSelectionEfficiency = 0.5;

}  // namespace

EimResult run_curipples(gpusim::Device& device, const graph::Graph& g,
                        graph::DiffusionModel model, const imm::ImmParams& params,
                        const CuRipplesConfig& config) {
  EIM_CHECK_MSG(config.cpu_cores >= 1, "cuRipples needs at least one CPU core");
  device.timeline().reset();
  device.memory().reset_peak();

  imm::ImmParams effective = params;
  effective.eliminate_sources = false;  // no source elimination in cuRipples

  EimResult result;
  result.network_raw_bytes = g.csc_bytes();
  result.network_bytes = result.network_raw_bytes;
  auto network_charge = device.alloc<std::uint8_t>(result.network_bytes);
  device.transfer_to_device("network CSC", result.network_bytes);

  // R lives in *system* memory (the design's defining trait).
  imm::RrrStore store(g.num_vertices());

  auto sample_to = [&](std::uint64_t target) {
    const std::uint64_t before = store.total_elements();
    (void)imm::sample_to_target(g, model, effective, store, target);
    const std::uint64_t new_elements = store.total_elements() - before;
    if (new_elements == 0) return;

    // The CPU-GPU pair splits the batch; both sides run concurrently and
    // the batch finishes when the slower side does.
    const double gpu_elements =
        static_cast<double>(new_elements) * (1.0 - config.cpu_sampling_share);
    const double cpu_elements =
        static_cast<double>(new_elements) * config.cpu_sampling_share;
    const double gpu_seconds = gpu_elements * kGpuNsPerElement * 1e-9;
    const double cpu_seconds = cpu_elements * config.cpu_ns_per_element * 1e-9 /
                               static_cast<double>(config.cpu_cores);
    device.timeline().add(gpusim::SegmentKind::Kernel, "curipples::sample",
                          std::max(gpu_seconds, cpu_seconds));

    // GPU-generated sets are offloaded to system memory.
    const auto gpu_bytes =
        static_cast<std::uint64_t>(gpu_elements * sizeof(VertexId));
    device.transfer_to_host("RRR batch offload", gpu_bytes);
  };

  auto select = [&] {
    // Selection round. R lives in system memory and the greedy counters are
    // maintained by the host, so every pick re-streams the collection into
    // the device staging area in batches, scans it there, and merges the
    // coverage updates back on the CPU — "the transfer of data between the
    // CPU and GPU incurs significant overhead and results in higher
    // computation time" (§2.3). The per-pick cost is therefore
    //   stream(R over PCIe) + warp scan + host count update,
    // all multiplied by k, and again by every estimation round.
    const std::uint64_t r_bytes = store.bytes();
    const auto staging = static_cast<std::uint64_t>(
        static_cast<double>(device.memory().capacity_bytes()) *
        config.selection_staging_fraction);
    const auto& spec = device.spec();

    for (std::uint32_t pick = 0; pick < effective.k; ++pick) {
      // Batched H2D stream of the whole collection (one latency charge per
      // staging-window batch).
      std::uint64_t remaining = r_bytes;
      do {
        const std::uint64_t batch = std::min(remaining, std::max<std::uint64_t>(staging, 1));
        device.transfer_to_device("RRR pick stream", batch);
        remaining -= batch;
      } while (remaining > 0);

      // Device-side membership scan, one warp per staged set.
      const double gpu_cycles =
          static_cast<double>(store.num_sets()) /
          static_cast<double>(spec.max_resident_warps()) *
          (2.0 * spec.costs.global_latency);
      // Host-side counter update and merge across the batch results.
      const double cpu_seconds = static_cast<double>(store.num_sets()) *
                                 config.cpu_ns_per_set * 1e-9 /
                                 (static_cast<double>(config.cpu_cores) *
                                  kCpuSelectionEfficiency);
      device.timeline().add(gpusim::SegmentKind::Kernel, "curipples::select",
                            spec.cycles_to_seconds(gpu_cycles) + cpu_seconds);
    }

    return imm::select_seeds_greedy(store, effective.k);
  };

  const imm::FrameworkOutcome outcome =
      imm::run_imm_framework(g.num_vertices(), effective, sample_to, select);

  result.seeds = outcome.final_selection.seeds;
  result.num_sets = store.num_sets();
  result.total_elements = store.total_elements();
  result.lower_bound = outcome.lower_bound;
  result.estimation_rounds = outcome.estimation_rounds;
  result.estimated_spread = static_cast<double>(g.num_vertices()) *
                            outcome.final_selection.coverage_fraction;

  result.device_seconds = device.timeline().total_seconds();
  result.kernel_seconds = device.timeline().kernel_seconds();
  result.transfer_seconds = device.timeline().transfer_seconds();
  result.peak_device_bytes = device.memory().peak_bytes();
  result.rrr_bytes = store.bytes();  // host-resident, uncompressed
  result.rrr_raw_bytes = store.bytes();
  result.device_mallocs = 0;
  return result;
}

}  // namespace eim::baselines
