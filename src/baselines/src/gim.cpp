#include "eim/baselines/gim.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>

#include "eim/eim/rrr_collection.hpp"
#include "eim/eim/seed_selector.hpp"
#include "eim/imm/driver.hpp"
#include "eim/imm/imm.hpp"
#include "eim/support/bits.hpp"
#include "eim/support/error.hpp"
#include "eim/support/rng.hpp"

namespace eim::baselines {

using eim_impl::DeviceRrrCollection;
using eim_impl::EimResult;
using graph::VertexId;
using gpusim::BlockContext;
using support::RandomStream;

namespace {

std::uint64_t warp_chunks(std::uint64_t count, std::uint32_t warp) {
  return support::div_ceil<std::uint64_t>(count, warp);
}

/// gIM sampling kernels: shared-memory queue with dynamic global spill.
class GimSampler {
 public:
  GimSampler(gpusim::Device& device, const graph::Graph& g,
             graph::DiffusionModel model, const imm::ImmParams& params,
             const GimConfig& config)
      : device_(&device),
        graph_(&g),
        model_(model),
        params_(params),
        config_(config),
        num_blocks_(device.spec().num_sms * 2) {
    scratch_.resize(num_blocks_);
    for (auto& s : scratch_) s.stamp.assign(g.num_vertices(), 0);
    // Each block keeps its visited bitmap M in global memory (the queue
    // itself lives in shared memory until it spills).
    bitmap_pool_ = gpusim::DeviceBuffer<std::uint8_t>(
        device.memory(),
        support::div_ceil<std::uint64_t>(g.num_vertices(), 8) * num_blocks_);
  }

  ~GimSampler() {
    // Fragmentation from in-kernel mallocs and the padded slot array are
    // only reclaimed when the context is torn down.
    device_->memory().deallocate(fragmentation_bytes_);
    device_->memory().deallocate(padded_bytes_);
  }

  void sample_to(DeviceRrrCollection& collection, std::uint64_t target) {
    if (collection.num_sets() >= target) return;

    std::vector<std::uint64_t> pending;
    for (std::uint64_t i = collection.num_sets(); i < target; ++i) pending.push_back(i);

    int wave = 0;
    std::uint64_t max_failed_len = 0;
    while (!pending.empty()) {
      EIM_CHECK_MSG(++wave <= 64, "gIM sampler failed to converge on capacity");
      const std::uint64_t have = collection.num_sets();
      const double avg = have > 0 && collection.total_elements() > 0
                             ? static_cast<double>(collection.total_elements()) /
                                   static_cast<double>(have)
                             : 8.0;
      // Doubling growth: gIM reserves aggressively and uncompressed.
      const auto giant_slots = std::min<std::uint64_t>(pending.size(), num_blocks_ * 4u);
      const auto estimated = collection.total_elements() +
                             (static_cast<std::uint64_t>(avg * 2.0) + 1) *
                                 static_cast<std::uint64_t>(pending.size()) +
                             max_failed_len * giant_slots + 4096;
      collection.reserve(target, estimated);

      // gIM's fixed-width slot array: theta slots of padded width. The slot
      // width only grows (a kernel cannot shrink a live allocation).
      slot_width_ = std::max(
          slot_width_, static_cast<std::uint64_t>(avg * config_.slot_padding_factor) + 1);
      const std::uint64_t padded_target = target * slot_width_ * sizeof(VertexId);
      if (padded_target > padded_bytes_) {
        device_->memory().allocate(padded_target - padded_bytes_);  // may OOM
        padded_bytes_ = padded_target;
        device_->charge_allocation_event("gIM padded slots");
      }

      for (auto& s : scratch_) s.failed.clear();

      device_->launch_blocks("gim::sample", num_blocks_, [&](BlockContext& ctx) {
        BlockScratch& scratch = scratch_[ctx.block_id()];
        for (std::uint64_t slot = ctx.block_id(); slot < pending.size();
             slot += num_blocks_) {
          ctx.charge_atomic_global(1);
          const std::uint64_t sample_index = pending[slot];
          generate(ctx, scratch, sample_index);
          std::sort(scratch.queue.begin(), scratch.queue.end());
          if (collection.try_commit(sample_index, scratch.queue)) {
            charge_commit(ctx, scratch,
                          static_cast<std::uint32_t>(scratch.queue.size()));
          } else {
            scratch.failed.push_back(sample_index);
            scratch.max_failed_len =
                std::max<std::uint64_t>(scratch.max_failed_len, scratch.queue.size());
          }
        }
      });

      pending.clear();
      for (auto& s : scratch_) {
        pending.insert(pending.end(), s.failed.begin(), s.failed.end());
        max_failed_len = std::max(max_failed_len, s.max_failed_len);
        s.max_failed_len = 0;
      }
      std::sort(pending.begin(), pending.end());
    }
    collection.set_num_sets(target);
  }

  [[nodiscard]] std::uint64_t malloc_count() const noexcept {
    return malloc_count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t fragmentation_bytes() const noexcept {
    return fragmentation_bytes_;
  }

 private:
  struct BlockScratch {
    std::vector<VertexId> queue;
    std::vector<std::uint32_t> stamp;
    support::FloatDrawBuffer draws;  ///< bulk activation draws (IC BFS)
    std::uint32_t epoch = 0;
    std::vector<std::uint64_t> failed;
    std::uint64_t max_failed_len = 0;  ///< largest set that failed to fit
    bool spilled = false;          ///< this block's queue escaped shared memory
    std::uint64_t temp_capacity = 0;  ///< this block's temp RRR buffer slots
  };

  /// Meter one in-kernel malloc of `bytes`: latency on the block scaled by
  /// heap pressure, plus part of the pow2-rounding and the header staying
  /// claimed until teardown (in-kernel heap fragmentation).
  void charge_malloc(BlockContext& ctx, std::uint64_t bytes) {
    charge_heap_latency(ctx);
    const std::uint64_t rounded = std::bit_ceil(std::max<std::uint64_t>(bytes, 1));
    const std::uint64_t waste = (rounded - bytes) / 4 + config_.malloc_header_bytes;
    device_->memory().allocate(waste);  // throws on exhaustion -> gIM's OOM
    std::atomic_ref<std::uint64_t>(fragmentation_bytes_)
        .fetch_add(waste, std::memory_order_relaxed);
  }

  /// The latency-and-bookkeeping part of a device malloc: base cost scaled
  /// by how crowded the heap already is (free-list search + global heap
  /// lock), plus the long-run fragmentation trickle.
  void charge_heap_latency(BlockContext& ctx) {
    const std::uint64_t count =
        malloc_count_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t base = device_->spec().costs.device_malloc;
    ctx.charge_device_malloc();
    ctx.add_cycles(base * count / config_.heap_pressure_scale);
    if (config_.frag_bytes_per_malloc > 0) {
      device_->memory().allocate(config_.frag_bytes_per_malloc);
      std::atomic_ref<std::uint64_t>(fragmentation_bytes_)
          .fetch_add(config_.frag_bytes_per_malloc, std::memory_order_relaxed);
    }
  }

  void generate(BlockContext& ctx, BlockScratch& scratch, std::uint64_t sample_index) {
    RandomStream rng(params_.rng_seed,
                     support::derive_stream(imm::kSampleStreamTag, sample_index, 0));
    const VertexId source = rng.next_below(graph_->num_vertices());
    ctx.charge_alu(2);

    if (++scratch.epoch == 0) {
      std::fill(scratch.stamp.begin(), scratch.stamp.end(), 0u);
      scratch.epoch = 1;
    }
    scratch.queue.clear();
    scratch.queue.push_back(source);
    scratch.stamp[source] = scratch.epoch;
    scratch.spilled = false;

    if (model_ == graph::DiffusionModel::IndependentCascade) {
      bfs_ic(ctx, scratch, rng);
    } else {
      walk_lt(ctx, scratch, rng);
    }
  }

  /// Queue-write cost: shared memory while the queue fits, global after the
  /// spill. The spill itself mallocs a global buffer and copies the shared
  /// contents out.
  void charge_enqueue(BlockContext& ctx, BlockScratch& scratch,
                      std::size_t queue_size) {
    if (!scratch.spilled && queue_size > config_.shared_queue_entries) {
      scratch.spilled = true;
      charge_malloc(ctx, queue_size * sizeof(VertexId) * 2);
      ctx.charge_global(warp_chunks(queue_size, ctx.warp_size()));  // evacuate
    }
    if (scratch.spilled) {
      ctx.charge_global(1);
      ctx.charge_atomic_global(1);
    } else {
      ctx.charge_shared(1);
      ctx.charge_atomic_shared(1);
    }
  }

  void bfs_ic(BlockContext& ctx, BlockScratch& scratch, RandomStream& rng) {
    const graph::Graph& g = *graph_;
    const std::uint32_t warp = ctx.warp_size();
    // Hoisted: queue.push_back writes through a uint32 pointer, so keeping
    // stamp/epoch as locals spares a per-edge member reload in this hot loop.
    std::uint32_t* const stamp = scratch.stamp.data();
    const std::uint32_t epoch = scratch.epoch;
    // Bulk-filled draw buffer, same consumption order as a next_float()
    // per unvisited neighbor (see EimSampler::bfs_ic).
    support::FloatDrawBuffer& draws = scratch.draws;
    auto c = draws.begin_sample(rng);
    // Frontier draw demand: in-degree sum of queued-but-unswept vertices
    // (see EimSampler::bfs_ic) — refills are sized to it.
    std::size_t pending = g.in().neighbors(scratch.queue.front()).size();
    for (std::size_t head = 0; head < scratch.queue.size(); ++head) {
      const VertexId u = scratch.queue[head];
      if (scratch.spilled) {
        ctx.charge_global(1);
      } else {
        ctx.charge_shared(1);
      }
      const auto ins = g.in().neighbors(u);
      const auto ws = g.in_weights(u);
      ctx.charge_global(3 * warp_chunks(ins.size(), warp));
      ctx.charge_alu(warp_chunks(ins.size(), warp));
      c = draws.ensure(c, rng, ins.size(), pending);
      std::size_t t = 0;
      for (std::size_t j = 0; j < ins.size(); ++j) {
        const VertexId v = ins[j];
        if (stamp[v] == epoch) continue;
        // Strict <, matching the eIM sampler: zero-weight edges never
        // activate.
        if (c.p[t++] < ws[j]) {
          stamp[v] = epoch;
          scratch.queue.push_back(v);
          pending += g.in().neighbors(v).size();
          charge_enqueue(ctx, scratch, scratch.queue.size());
        }
      }
      c.p += t;
      c.avail -= t;
      pending -= ins.size();
    }
    draws.finish_sample(rng, c);
  }

  void walk_lt(BlockContext& ctx, BlockScratch& scratch, RandomStream& rng) {
    const graph::Graph& g = *graph_;
    const std::uint32_t warp = ctx.warp_size();
    VertexId u = scratch.queue.front();
    for (;;) {
      const auto ins = g.in().neighbors(u);
      const auto ws = g.in_weights(u);
      if (ins.empty()) break;
      const float tau = rng.next_float();
      ctx.charge_alu(1);

      VertexId chosen = graph::kInvalidVertex;
      float base = 0.0f;
      for (std::size_t chunk = 0; chunk < ins.size() && chosen == graph::kInvalidVertex;
           chunk += warp) {
        const std::size_t len = std::min<std::size_t>(warp, ins.size() - chunk);
        ctx.charge_global(2);
        // gIM's LT activation uses the serialized shared-sum design.
        ctx.charge_atomic_shared(len);
        float running = base;
        for (std::size_t l = 0; l < len; ++l) {
          const float inclusive = running + ws[chunk + l];
          if (inclusive > tau && running <= tau) {
            chosen = ins[chunk + l];
            break;
          }
          running = inclusive;
        }
        base = running;
      }

      if (chosen == graph::kInvalidVertex) break;
      if (scratch.stamp[chosen] == scratch.epoch) break;
      scratch.stamp[chosen] = scratch.epoch;
      scratch.queue.push_back(chosen);
      charge_enqueue(ctx, scratch, scratch.queue.size());
      u = chosen;
    }
  }

  /// Commit: write the queue into the block's temporary global RRR buffer,
  /// then copy it into the final collection (double traffic, §2.3). The
  /// temp buffer is dynamically (re)allocated whenever a set outgrows it.
  void charge_commit(BlockContext& ctx, BlockScratch& scratch, std::uint32_t len) {
    const std::uint32_t warp = ctx.warp_size();
    if (len == 0) {
      ctx.charge_atomic_global(1);
      return;
    }
    // Every set round-trips through a freshly allocated temporary global
    // buffer (§2.3: "written from the queue to a temporary RRR set in
    // global memory") — the repeated malloc/free whose overhead grows with
    // heap pressure. Capacity growth additionally leaves fragmentation.
    if (len > scratch.temp_capacity) {
      scratch.temp_capacity = std::bit_ceil<std::uint64_t>(len) * 2;
      charge_malloc(ctx, scratch.temp_capacity * sizeof(VertexId));
    } else {
      charge_heap_latency(ctx);
    }
    const std::uint64_t chunks = warp_chunks(len, warp);
    const std::uint32_t log_len = support::ceil_log2(std::max<std::uint32_t>(2, len));
    ctx.charge_alu(chunks * log_len * log_len);  // ascending-order insert
    ctx.charge_global(2 * chunks);               // write temp, read temp
    ctx.charge_global(chunks);                   // write final R
    ctx.charge_atomic_global(1);                 // offset claim
    for (std::uint64_t c = 0; c < chunks; ++c) ctx.charge_atomic_global(1);  // C
    ctx.charge_atomic_global(1);                 // count
  }

  gpusim::Device* device_;
  const graph::Graph* graph_;
  graph::DiffusionModel model_;
  imm::ImmParams params_;
  GimConfig config_;
  std::uint32_t num_blocks_;
  std::vector<BlockScratch> scratch_;
  std::atomic<std::uint64_t> malloc_count_{0};
  std::uint64_t fragmentation_bytes_ = 0;
  std::uint64_t slot_width_ = 0;
  std::uint64_t padded_bytes_ = 0;
  gpusim::DeviceBuffer<std::uint8_t> bitmap_pool_;
};

}  // namespace

EimResult run_gim(gpusim::Device& device, const graph::Graph& g,
                  graph::DiffusionModel model, const imm::ImmParams& params,
                  const GimConfig& config) {
  device.timeline().reset();
  device.memory().reset_peak();

  imm::ImmParams effective = params;
  effective.eliminate_sources = false;  // gIM has no source elimination

  EimResult result;
  result.network_raw_bytes = g.csc_bytes();
  result.network_bytes = result.network_raw_bytes;  // uncompressed CSC
  auto network_charge = device.alloc<std::uint8_t>(result.network_bytes);
  device.transfer_to_device("network CSC", result.network_bytes);

  DeviceRrrCollection collection(device, g.num_vertices(), /*log_encode=*/false);
  GimSampler sampler(device, g, model, effective, config);
  eim_impl::GpuSeedSelector selector(device, eim_impl::ScanStrategy::WarpPerSet);

  const imm::FrameworkOutcome outcome = imm::run_imm_framework(
      g.num_vertices(), effective,
      [&](std::uint64_t target) { sampler.sample_to(collection, target); },
      [&] { return selector.select(collection, effective.k); });

  device.transfer_to_host("seed set",
                          outcome.final_selection.seeds.size() * sizeof(VertexId));

  result.seeds = outcome.final_selection.seeds;
  result.num_sets = collection.num_sets();
  result.total_elements = collection.total_elements();
  result.lower_bound = outcome.lower_bound;
  result.estimation_rounds = outcome.estimation_rounds;
  result.estimated_spread = static_cast<double>(g.num_vertices()) *
                            outcome.final_selection.coverage_fraction;

  result.device_seconds = device.timeline().total_seconds();
  result.kernel_seconds = device.timeline().kernel_seconds();
  result.transfer_seconds = device.timeline().transfer_seconds();
  result.peak_device_bytes = device.memory().peak_bytes();
  result.rrr_bytes = collection.stored_bytes();
  result.rrr_raw_bytes = collection.raw_equivalent_bytes();
  result.device_mallocs = sampler.malloc_count();
  return result;
}

}  // namespace eim::baselines
