// Synthetic network generators.
//
// The benchmark registry (registry.hpp) builds scaled stand-ins for the 16
// SNAP datasets in the paper's Table 1 out of these families. What matters
// for reproducing the paper's per-network effects is the in-degree
// distribution (it determines IC edge probabilities 1/d^-, RRR-set depth,
// and the singleton-set fraction that drives Figs. 5-6), so each family
// controls degree skew, reciprocity, and density.
//
// All generators are deterministic in (params, seed).
#pragma once

#include <cstdint>

#include "eim/graph/edge_list.hpp"

namespace eim::graph {

/// G(n, m): m directed edges chosen uniformly (no duplicates/self-loops).
/// Near-uniform degrees — used for the P2P-Gnutella stand-in.
[[nodiscard]] EdgeList erdos_renyi(VertexId n, EdgeId m, std::uint64_t seed);

/// Barabási–Albert preferential attachment: each new vertex attaches
/// `edges_per_vertex` out-edges to existing vertices, probability
/// proportional to current degree. Power-law in-degrees — the social-network
/// stand-in. `reciprocal_fraction` of edges also get a reverse arc
/// (friendship reciprocity).
[[nodiscard]] EdgeList barabasi_albert(VertexId n, EdgeId edges_per_vertex,
                                       double reciprocal_fraction, std::uint64_t seed);

/// Watts–Strogatz small world on a ring: degree-regular + rewiring.
/// High clustering, tiny degree variance — the co-purchase (com-Amazon)
/// stand-in. Edges are emitted in both directions (undirected semantics).
[[nodiscard]] EdgeList watts_strogatz(VertexId n, VertexId ring_degree, double rewire_p,
                                      std::uint64_t seed);

/// R-MAT / Kronecker-style sampler over a 2^scale vertex grid.
/// (a, b, c, d) control skew; web-graph stand-ins use strong skew.
struct RmatParams {
  std::uint32_t scale = 16;       ///< n = 2^scale
  EdgeId num_edges = 1 << 20;
  double a = 0.57, b = 0.19, c = 0.19, d = 0.05;
  /// Fraction of generated arcs that also get their reverse arc.
  double reciprocal_fraction = 0.0;
};
[[nodiscard]] EdgeList rmat(const RmatParams& params, std::uint64_t seed);

// -- Deterministic micro-graphs for unit tests ------------------------------

/// 0 -> 1 -> 2 -> ... -> n-1.
[[nodiscard]] EdgeList path_graph(VertexId n);
/// Hub 0 -> {1..n-1}.
[[nodiscard]] EdgeList star_graph(VertexId n);
/// 0 -> 1 -> ... -> n-1 -> 0.
[[nodiscard]] EdgeList cycle_graph(VertexId n);
/// All ordered pairs (u, v), u != v.
[[nodiscard]] EdgeList complete_graph(VertexId n);
/// Layers {0..left-1} -> {left..left+right-1}, complete bipartite.
[[nodiscard]] EdgeList bipartite_graph(VertexId left, VertexId right);

}  // namespace eim::graph
