// Dataset registry: scaled synthetic stand-ins for the 16 SNAP networks in
// the paper's Table 1.
//
// The real datasets cannot ship with the repository, so each entry pairs the
// paper's network statistics with a deterministic generator recipe that
// reproduces the network's *class*: degree skew (power-law social graphs vs.
// near-regular P2P vs. lattice-like co-purchase), reciprocity, and average
// degree. Those properties drive everything the paper measures per network —
// RRR-set depth, the singleton-set fraction of §3.4, and bit-widths for log
// encoding. If you have the real SNAP files, load them with
// graph::load_snap_text_file and pass them through the same pipelines.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "eim/graph/graph.hpp"
#include "eim/graph/weights.hpp"

namespace eim::graph {

/// Topology family used for a dataset's synthetic stand-in.
enum class TopologyClass {
  Social,      ///< power-law, hub-dominated (R-MAT / BA)
  PeerToPeer,  ///< near-uniform degree (Erdős–Rényi)
  Web,         ///< heavily skewed, high reciprocity within hosts (R-MAT)
  CoPurchase,  ///< low-variance degree, high clustering (Watts–Strogatz)
};

struct DatasetSpec {
  std::string_view abbrev;     ///< the tag used in the paper's Tables 2-5
  std::string_view name;       ///< SNAP dataset name
  std::uint32_t paper_vertices;
  std::uint64_t paper_edges;
  TopologyClass topology;

  // Generator recipe (interpreted per topology class).
  std::uint32_t synth_vertices;   ///< target vertex count (power of two for R-MAT)
  std::uint64_t synth_edges;      ///< target directed edge count
  double skew;                    ///< R-MAT 'a' quadrant / BA strength
  double reciprocity;             ///< fraction of arcs mirrored
};

/// All 16 datasets, in the paper's Table 1 order (ascending vertex count).
[[nodiscard]] std::span<const DatasetSpec> all_datasets();

/// Look up by abbreviation ("WV", "PG", ...); nullopt if unknown.
[[nodiscard]] std::optional<DatasetSpec> find_dataset(std::string_view abbrev);

/// Deterministically build a dataset's synthetic edge list.
[[nodiscard]] EdgeList build_dataset_edges(const DatasetSpec& spec,
                                           std::uint64_t seed = 42);

/// Build the graph and assign weights for `model` (paper default scheme:
/// 1/d^- for both IC and LT).
[[nodiscard]] Graph build_dataset(const DatasetSpec& spec, DiffusionModel model,
                                  std::uint64_t seed = 42);

}  // namespace eim::graph
