// The weighted directed graph type consumed by every algorithm in the
// library.
//
// Holds both directions of adjacency: CSC (in-neighbors, traversed by the
// reverse-influence samplers) and CSR (out-neighbors, traversed by the
// forward diffusion simulator that validates seed quality). Edge weights are
// stored per direction so both traversals are cache-friendly.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "eim/graph/csc.hpp"
#include "eim/graph/edge_list.hpp"
#include "eim/graph/types.hpp"

namespace eim::graph {

struct DrawPlan;  // draw_plan.hpp — fast-draw sidecar built by assign_weights

class Graph {
 public:
  Graph() = default;

  /// Build both adjacency directions from an edge list.
  /// The list should be normalized (no duplicates/self-loops); weights start
  /// at zero — call assign_weights (weights.hpp) before running diffusion.
  static Graph from_edge_list(const EdgeList& edges);

  [[nodiscard]] VertexId num_vertices() const noexcept { return in_.num_vertices(); }
  [[nodiscard]] EdgeId num_edges() const noexcept { return in_.num_edges(); }

  /// CSC view: in().neighbors(v) are all u with an edge u -> v.
  [[nodiscard]] const Adjacency& in() const noexcept { return in_; }
  /// CSR view: out().neighbors(u) are all v with an edge u -> v.
  [[nodiscard]] const Adjacency& out() const noexcept { return out_; }

  [[nodiscard]] EdgeId in_degree(VertexId v) const noexcept { return in_.degree(v); }
  [[nodiscard]] EdgeId out_degree(VertexId v) const noexcept { return out_.degree(v); }

  /// Weight p_{uv} of the j-th in-edge of v (parallel to in().neighbors(v)).
  [[nodiscard]] std::span<const Weight> in_weights(VertexId v) const noexcept {
    return {in_weights_.data() + in_.offsets[v], in_weights_.data() + in_.offsets[v + 1]};
  }
  /// Weight p_{uv} of the j-th out-edge of u (parallel to out().neighbors(u)).
  [[nodiscard]] std::span<const Weight> out_weights(VertexId u) const noexcept {
    return {out_weights_.data() + out_.offsets[u],
            out_weights_.data() + out_.offsets[u + 1]};
  }

  [[nodiscard]] std::span<const Weight> all_in_weights() const noexcept {
    return in_weights_;
  }

  /// Mutable access for the weight-assignment routines. Invalidates the
  /// draw plan: its cached classifications describe the old weights.
  [[nodiscard]] std::vector<Weight>& mutable_in_weights() noexcept {
    draw_plan_.reset();
    return in_weights_;
  }
  [[nodiscard]] std::vector<Weight>& mutable_out_weights() noexcept {
    draw_plan_.reset();
    return out_weights_;
  }

  /// Fast-draw sidecar (draw_plan.hpp) built by assign_weights; null until
  /// weights are assigned or after any mutable weight access. Shared
  /// read-only across samplers and multi-GPU shards.
  [[nodiscard]] const DrawPlan* draw_plan() const noexcept { return draw_plan_.get(); }
  void set_draw_plan(std::shared_ptr<const DrawPlan> plan) noexcept {
    draw_plan_ = std::move(plan);
  }

  /// Copy every in-edge weight to its mirror out-edge entry.
  /// Called by assign_weights after filling the in-direction.
  void sync_out_weights_from_in();

  /// Bytes used by the uncompressed CSC arrays (offsets + neighbors +
  /// weights) — the quantity the paper's Fig. 4 compares log encoding
  /// against.
  [[nodiscard]] std::uint64_t csc_bytes() const noexcept;

 private:
  Adjacency in_;
  Adjacency out_;
  std::vector<Weight> in_weights_;
  std::vector<Weight> out_weights_;
  std::shared_ptr<const DrawPlan> draw_plan_;
};

/// Degree statistics used by Table 1 and the dataset registry.
struct GraphStats {
  VertexId num_vertices = 0;
  EdgeId num_edges = 0;
  EdgeId max_in_degree = 0;
  EdgeId max_out_degree = 0;
  double avg_degree = 0.0;
  VertexId zero_in_degree_count = 0;  ///< these always yield singleton RRR sets
};

[[nodiscard]] GraphStats compute_stats(const Graph& g);

}  // namespace eim::graph
