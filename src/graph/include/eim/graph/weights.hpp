// Edge-weight assignment for the diffusion models.
//
// The paper's datasets are unweighted; §2.1/§4.1 describe the preprocessing:
// under IC, edge (u,v) gets probability 1/d^-(v) (the weighted-cascade
// assignment of Kempe et al. that the paper focuses on); under LT, in-edge
// weights of v must sum to at most 1, and 1/d^-(v) satisfies that with
// equality. The paper's future-work extension — IC with random edge
// weights — is implemented here as well (WeightScheme::RandomUniform).
#pragma once

#include <cstdint>

#include "eim/graph/graph.hpp"

namespace eim::graph {

/// Diffusion model selector shared across the whole library.
enum class DiffusionModel {
  IndependentCascade,
  LinearThreshold,
};

enum class WeightScheme {
  /// p_{uv} = 1 / d^-(v). The paper's default for both models.
  InDegree,
  /// IC: p_{uv} = constant; LT: constant / d^-(v) (keeps the sum <= 1).
  UniformConstant,
  /// IC: p_{uv} ~ U(0, cap); LT: random weights normalized to sum <= 1.
  /// This is the paper's announced extension to random edge weights.
  RandomUniform,
  /// IC trivalency model: p_{uv} drawn from {0.1, 0.01, 0.001}.
  Trivalency,
};

struct WeightParams {
  WeightScheme scheme = WeightScheme::InDegree;
  /// Constant for UniformConstant, cap for RandomUniform.
  float value = 0.1f;
  std::uint64_t seed = 1;
};

/// Fill the graph's in-edge weights for `model` and mirror them onto the
/// out-direction. Must be called before running any sampler or simulator.
void assign_weights(Graph& g, DiffusionModel model, const WeightParams& params = {});

[[nodiscard]] const char* to_string(DiffusionModel model) noexcept;
[[nodiscard]] const char* to_string(WeightScheme scheme) noexcept;

}  // namespace eim::graph
