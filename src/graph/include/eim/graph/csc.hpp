// Compressed sparse column / row adjacency.
//
// IMM traverses edges *backwards* (reverse influence sampling), so the
// primary representation is CSC: for each vertex v, the contiguous list of
// its in-neighbors u with the edge weight p_{uv}. The same structure viewed
// from the out-direction (CSR) is used by the forward diffusion simulator.
#pragma once

#include <span>
#include <vector>

#include "eim/graph/edge_list.hpp"
#include "eim/graph/types.hpp"

namespace eim::graph {

/// One direction of adjacency in offset/targets form.
struct Adjacency {
  std::vector<EdgeId> offsets;      ///< size n+1; offsets[v]..offsets[v+1] index `targets`
  std::vector<VertexId> targets;    ///< size m

  [[nodiscard]] VertexId num_vertices() const noexcept {
    return static_cast<VertexId>(offsets.empty() ? 0 : offsets.size() - 1);
  }
  [[nodiscard]] EdgeId num_edges() const noexcept {
    return static_cast<EdgeId>(targets.size());
  }
  [[nodiscard]] std::span<const VertexId> neighbors(VertexId v) const noexcept {
    return {targets.data() + offsets[v], targets.data() + offsets[v + 1]};
  }
  [[nodiscard]] EdgeId degree(VertexId v) const noexcept {
    return offsets[v + 1] - offsets[v];
  }
};

/// Build in-adjacency: entry (v, u) means edge u -> v exists.
/// Within each vertex's slice, neighbors are sorted ascending.
[[nodiscard]] Adjacency build_in_adjacency(const EdgeList& edges);

/// Build out-adjacency: entry (u, v) means edge u -> v exists.
[[nodiscard]] Adjacency build_out_adjacency(const EdgeList& edges);

}  // namespace eim::graph
