// Draw-acceleration sidecar built alongside the CSC at weight-assignment
// time, consumed by the opt-in fast-draw sampler mode (--draw-mode skip).
//
// Two independent halves, each keyed to the diffusion model the weights were
// assigned for:
//
//  * IC geometric skip-ahead. Vertices whose in-edges all share one weight w
//    (always true for the paper's weighted-cascade 1/d^-(v) assignment) are
//    classified Uniform and get a cached log1p(-p_eff) so the sampler can
//    replace d Bernoulli draws with one uniform per *run* of failures. The
//    success probability is quantized to the sampler's 24-bit draw grid
//    (p_eff = ceil(w * 2^24) / 2^24) so the geometric jump is distributed
//    exactly like the strict `next_float() < w` per-edge test it replaces.
//    Mixed-weight vertices fall back to per-edge draws; the w == 0 and
//    w >= 1 degenerate cases get their own branch-free classifications.
//
//  * LT alias tables. Per-vertex Vose alias tables in a flat two-array SoA
//    layout (prob/alias, indexed by the same CSC offsets as the in-edges)
//    let each LT step pick the activated in-neighbor in O(1) with a single
//    uniform split into (bucket, coin), replacing the O(in-degree) prefix
//    scan. Draws landing at or above the per-vertex total weight fall into
//    the no-one gap, exactly like the exact path's tau beyond the last
//    cumulative sum. Zero-weight in-edges get an acceptance threshold of 0
//    and are never picked.
//
// The plan is immutable after construction and shared read-only across
// samplers and multi-GPU shards (the Graph hands out a shared_ptr). Any
// mutable weight access on the Graph invalidates it.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "eim/graph/graph.hpp"
#include "eim/graph/weights.hpp"

namespace eim::graph {

struct DrawPlan {
  /// Per-vertex classification of the IC in-edge weight profile.
  enum class IcKind : std::uint8_t {
    Empty = 0,  ///< no in-edges: nothing to draw
    Uniform,    ///< one shared weight in (0,1): geometric skip-ahead applies
    Saturated,  ///< shared weight with p_eff >= 1: every in-edge activates
    Zero,       ///< shared weight <= 0: no in-edge ever activates
    Mixed,      ///< heterogeneous weights: exact per-edge fallback
  };

  // --- IC half (model == IndependentCascade) ---
  std::vector<std::uint8_t> ic_kind;  ///< IcKind per vertex, size n
  /// log1p(-p_eff) per vertex (strictly negative for Uniform, 0 otherwise).
  std::vector<double> ic_log1m;

  // --- LT half (model == LinearThreshold) ---
  /// Acceptance threshold per bucket, size m, sliced by the CSC offsets.
  std::vector<float> lt_prob;
  /// Alias bucket (local in-edge index) per bucket, size m.
  std::vector<std::uint32_t> lt_alias;
  /// Per-vertex total in-weight W, size n. A draw u >= W means no one
  /// activated this step (the tau-in-no-one-gap case of the exact scan).
  std::vector<float> lt_total;

  /// Model the weights were assigned for when this plan was built. A sampler
  /// running the other model must ignore the plan and fall back to exact.
  DiffusionModel model = DiffusionModel::IndependentCascade;

  [[nodiscard]] bool has_ic() const noexcept { return !ic_kind.empty(); }
  [[nodiscard]] bool has_lt() const noexcept { return !lt_total.empty(); }

  [[nodiscard]] IcKind kind(VertexId v) const noexcept {
    return static_cast<IcKind>(ic_kind[v]);
  }

  /// Host bytes held by the sidecar — also the footprint a device copy
  /// would occupy, which the sampler charges against its memory budget.
  [[nodiscard]] std::uint64_t bytes() const noexcept;
};

/// Success probability of the strict `next_float() < w` test on the 24-bit
/// draw grid: the fraction of the 2^24 representable draws strictly below w.
/// Exposed so the statistical regression tests can pin the quantization.
[[nodiscard]] double grid_success_probability(float w) noexcept;

/// Classify every vertex (IC) or build the alias tables (LT) for the
/// weights currently assigned to `g`. Parallel over vertices.
[[nodiscard]] DrawPlan build_draw_plan(const Graph& g, DiffusionModel model);

/// O(1) alias-table pick for the LT step at vertex `v`: splits one uniform
/// `u` (in [0,1)) into (bucket, coin) against the vertex's table slice.
/// Returns the local in-edge index of the activated in-neighbor, or
/// `kNoAliasPick` when `u` falls into the no-one gap (u >= W, or W <= 0).
/// Kept out of line so profile samples attribute to the rng.skip bucket.
inline constexpr std::uint32_t kNoAliasPick = 0xFFFFFFFFu;
[[nodiscard]] std::uint32_t alias_pick_lt(const DrawPlan& plan, const Graph& g,
                                          VertexId v, float u) noexcept;

}  // namespace eim::graph
