// Graph I/O.
//
// Two formats:
//  * SNAP edge-list text ('#'-comment header, one "u<ws>v" pair per line) —
//    the format of every dataset in the paper's Table 1, so real downloads
//    drop straight in.
//  * A compact little-endian binary format for caching generated datasets.
#pragma once

#include <iosfwd>
#include <string>

#include "eim/graph/edge_list.hpp"

namespace eim::graph {

/// Parse SNAP edge-list text. Vertex ids are compacted to a dense [0, n)
/// range (SNAP files routinely skip ids). Throws IoError on malformed input.
[[nodiscard]] EdgeList load_snap_text(std::istream& in);
[[nodiscard]] EdgeList load_snap_text_file(const std::string& path);

/// Serialize in SNAP-compatible text (with a comment header).
void save_snap_text(const EdgeList& edges, std::ostream& out,
                    const std::string& name = "eim graph");

/// Binary round-trip (magic + counts + raw edge array).
void save_binary(const EdgeList& edges, std::ostream& out);
[[nodiscard]] EdgeList load_binary(std::istream& in);
void save_binary_file(const EdgeList& edges, const std::string& path);
[[nodiscard]] EdgeList load_binary_file(const std::string& path);

}  // namespace eim::graph
