// Fundamental graph types.
//
// Vertex ids are 32-bit (the largest paper dataset, soc-LiveJournal1, has
// 4.8M vertices; 32 bits also matches what the GPU kernels pack), edge ids
// are 64-bit (com-Orkut has 117M edges; offsets must not overflow).
#pragma once

#include <cstdint>

namespace eim::graph {

using VertexId = std::uint32_t;
using EdgeId = std::uint64_t;
using Weight = float;

/// Sentinel for "no vertex".
inline constexpr VertexId kInvalidVertex = 0xFFFFFFFFu;

/// A directed edge u -> v, meaning u can influence v.
struct Edge {
  VertexId from;
  VertexId to;

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

}  // namespace eim::graph
