// Mutable edge-list representation used while constructing or loading graphs.
#pragma once

#include <cstddef>
#include <vector>

#include "eim/graph/types.hpp"

namespace eim::graph {

/// A bag of directed edges plus a vertex-count bound.
///
/// `num_vertices` may exceed the largest endpoint + 1 (isolated vertices are
/// legal and occur in real SNAP data).
class EdgeList {
 public:
  EdgeList() = default;
  explicit EdgeList(VertexId num_vertices) : num_vertices_(num_vertices) {}
  EdgeList(VertexId num_vertices, std::vector<Edge> edges);

  void add_edge(VertexId from, VertexId to);

  /// Grow the vertex bound (never shrinks).
  void ensure_vertex(VertexId v);

  /// Sort by (from, to) and drop duplicate edges and self-loops.
  /// SNAP social graphs contain both; IMM's diffusion models assume neither.
  void normalize();

  /// Add the reverse of every edge (used to model undirected SNAP datasets,
  /// which the IM literature treats as bidirectional influence).
  void make_bidirectional();

  [[nodiscard]] VertexId num_vertices() const noexcept { return num_vertices_; }
  [[nodiscard]] std::size_t num_edges() const noexcept { return edges_.size(); }
  [[nodiscard]] const std::vector<Edge>& edges() const noexcept { return edges_; }
  [[nodiscard]] std::vector<Edge>& edges() noexcept { return edges_; }

 private:
  VertexId num_vertices_ = 0;
  std::vector<Edge> edges_;
};

}  // namespace eim::graph
