// Connectivity analysis.
//
// Used to characterize the benchmark networks (RIS behaviour depends
// heavily on component structure: sources drawn outside the giant
// component yield near-singleton RRR sets) and by tests as an independent
// oracle for reachability properties.
#pragma once

#include <cstdint>
#include <vector>

#include "eim/graph/graph.hpp"

namespace eim::graph {

struct ComponentAnalysis {
  /// Component id per vertex, dense in [0, num_components).
  std::vector<std::uint32_t> component;
  std::uint32_t num_components = 0;
  /// Vertices in the largest component.
  std::uint32_t giant_size = 0;
};

/// Weakly connected components (edge direction ignored).
[[nodiscard]] ComponentAnalysis weakly_connected_components(const Graph& g);

/// Strongly connected components (Tarjan, iterative — safe on deep graphs).
[[nodiscard]] ComponentAnalysis strongly_connected_components(const Graph& g);

/// Vertices backward-reachable from `target` (the support of its RRR sets
/// when every edge fires): BFS over in-edges.
[[nodiscard]] std::vector<VertexId> backward_reachable(const Graph& g, VertexId target);

}  // namespace eim::graph
