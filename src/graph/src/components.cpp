#include "eim/graph/components.hpp"

#include <algorithm>

#include "eim/support/error.hpp"

namespace eim::graph {

namespace {

void finalize(ComponentAnalysis& analysis) {
  std::vector<std::uint32_t> sizes(analysis.num_components, 0);
  for (const std::uint32_t c : analysis.component) ++sizes[c];
  analysis.giant_size = sizes.empty() ? 0 : *std::max_element(sizes.begin(), sizes.end());
}

}  // namespace

ComponentAnalysis weakly_connected_components(const Graph& g) {
  const VertexId n = g.num_vertices();
  ComponentAnalysis analysis;
  analysis.component.assign(n, 0xFFFFFFFFu);

  std::vector<VertexId> stack;
  for (VertexId root = 0; root < n; ++root) {
    if (analysis.component[root] != 0xFFFFFFFFu) continue;
    const std::uint32_t id = analysis.num_components++;
    analysis.component[root] = id;
    stack.push_back(root);
    while (!stack.empty()) {
      const VertexId u = stack.back();
      stack.pop_back();
      for (const VertexId v : g.out().neighbors(u)) {
        if (analysis.component[v] == 0xFFFFFFFFu) {
          analysis.component[v] = id;
          stack.push_back(v);
        }
      }
      for (const VertexId v : g.in().neighbors(u)) {
        if (analysis.component[v] == 0xFFFFFFFFu) {
          analysis.component[v] = id;
          stack.push_back(v);
        }
      }
    }
  }
  finalize(analysis);
  return analysis;
}

ComponentAnalysis strongly_connected_components(const Graph& g) {
  const VertexId n = g.num_vertices();
  ComponentAnalysis analysis;
  analysis.component.assign(n, 0xFFFFFFFFu);

  // Iterative Tarjan with an explicit frame stack.
  constexpr std::uint32_t kUnvisited = 0xFFFFFFFFu;
  std::vector<std::uint32_t> index(n, kUnvisited);
  std::vector<std::uint32_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<VertexId> scc_stack;
  std::uint32_t next_index = 0;

  struct Frame {
    VertexId v;
    std::size_t edge;  ///< next out-edge to explore
  };
  std::vector<Frame> frames;

  for (VertexId root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    frames.push_back(Frame{root, 0});
    while (!frames.empty()) {
      Frame& frame = frames.back();
      const VertexId v = frame.v;
      if (frame.edge == 0) {
        index[v] = lowlink[v] = next_index++;
        scc_stack.push_back(v);
        on_stack[v] = true;
      }
      const auto outs = g.out().neighbors(v);
      bool descended = false;
      while (frame.edge < outs.size()) {
        const VertexId w = outs[frame.edge++];
        if (index[w] == kUnvisited) {
          frames.push_back(Frame{w, 0});
          descended = true;
          break;
        }
        if (on_stack[w]) lowlink[v] = std::min(lowlink[v], index[w]);
      }
      if (descended) continue;

      if (lowlink[v] == index[v]) {
        const std::uint32_t id = analysis.num_components++;
        for (;;) {
          const VertexId w = scc_stack.back();
          scc_stack.pop_back();
          on_stack[w] = false;
          analysis.component[w] = id;
          if (w == v) break;
        }
      }
      frames.pop_back();
      if (!frames.empty()) {
        const VertexId parent = frames.back().v;
        lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
      }
    }
  }
  finalize(analysis);
  return analysis;
}

std::vector<VertexId> backward_reachable(const Graph& g, VertexId target) {
  EIM_CHECK_MSG(target < g.num_vertices(), "target out of range");
  std::vector<bool> seen(g.num_vertices(), false);
  std::vector<VertexId> order{target};
  seen[target] = true;
  for (std::size_t head = 0; head < order.size(); ++head) {
    for (const VertexId u : g.in().neighbors(order[head])) {
      if (!seen[u]) {
        seen[u] = true;
        order.push_back(u);
      }
    }
  }
  std::sort(order.begin(), order.end());
  return order;
}

}  // namespace eim::graph
