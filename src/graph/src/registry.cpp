#include "eim/graph/registry.hpp"

#include <array>

#include "eim/graph/generators.hpp"
#include "eim/support/bits.hpp"
#include "eim/support/error.hpp"
#include "eim/support/rng.hpp"

namespace eim::graph {

namespace {

// Synthetic sizes are ~1/16 to ~1/200 of the originals (larger originals are
// scaled harder) so the full 16-network sweeps of Figs. 4-8 / Tables 2-5 run
// in minutes on a laptop while preserving each network's class and density.
constexpr std::array<DatasetSpec, 16> kDatasets{{
    // abbrev, name, paper n, paper m, class, synth n, synth m, skew, recip
    {"WV", "wiki-Vote", 7'115, 103'689, TopologyClass::Social, 4'096, 60'000, 0.60, 0.05},
    {"PG", "p2p-Gnutella31", 62'586, 147'892, TopologyClass::PeerToPeer, 8'192, 20'000, 0.25, 0.0},
    {"SE", "soc-Epinions1", 75'888, 508'837, TopologyClass::Social, 8'192, 55'000, 0.60, 0.25},
    {"SD", "soc-Slashdot0902", 82'168, 870'161, TopologyClass::Social, 8'192, 87'000, 0.60, 0.80},
    {"EE", "email-EuAll", 265'214, 418'956, TopologyClass::Social, 16'384, 26'000, 0.72, 0.02},
    {"WS", "web-Stanford", 281'904, 2'312'497, TopologyClass::Web, 16'384, 134'000, 0.65, 0.25},
    {"WN", "web-NotreDame", 325'729, 1'469'679, TopologyClass::Web, 16'384, 74'000, 0.65, 0.50},
    // com-DBLP: collaborations are fully reciprocal and hub-dominated
    // (prolific authors), which is what keeps its theta moderate.
    {"CD", "com-DBLP", 425'957, 1'049'866, TopologyClass::Social, 8'192, 49'000, 0.55, 1.0},
    // com-Amazon: co-purchase edges are far less cliquish than DBLP's
    // collaboration cliques; a sparse near-random directed graph reproduces
    // its signature behaviour under 1/d^- weights — near-critical reverse
    // cascades with very large RRR sets, the reason gIM OOMs on it in every
    // configuration of the paper's Tables 2 and 4.
    // Nearly every product in the bidirectional co-purchase graph has
    // in-degree >= 1, which pushes the 1/d^- reverse cascade to the
    // critical branching point: RRR sets are enormous. A denser random
    // graph (so almost no vertex has zero in-degree) reproduces that
    // criticality — and with it the padded-slot OOMs gIM shows on
    // com-Amazon in every configuration of Tables 2 and 4.
    {"CA", "com-Amazon", 448'552, 925'872, TopologyClass::PeerToPeer, 12'000, 60'000, 0.0, 0.0},
    {"WB", "web-BerkStan", 685'231, 7'600'595, TopologyClass::Web, 16'384, 181'000, 0.65, 0.25},
    {"WG", "web-Google", 875'713, 5'105'039, TopologyClass::Web, 16'384, 95'000, 0.65, 0.30},
    {"CY", "com-Youtube", 1'134'890, 2'987'624, TopologyClass::Social, 16'384, 43'000, 0.70, 0.10},
    {"SPR", "soc-Pokec", 1'632'804, 30'622'564, TopologyClass::Social, 8'192, 154'000, 0.60, 0.50},
    {"WT", "wiki-topcats", 1'791'489, 28'508'141, TopologyClass::Web, 8'192, 130'000, 0.65, 0.10},
    {"CO", "com-Orkut", 3'072'627, 117'185'083, TopologyClass::Social, 4'096, 156'000, 0.55, 0.70},
    {"SL", "soc-LiveJournal1", 4'847'571, 68'475'391, TopologyClass::Social, 8'192, 115'000, 0.60, 0.40},
}};

std::uint64_t dataset_seed(const DatasetSpec& spec, std::uint64_t seed) {
  // Distinct generator stream per dataset so recipes never share draws.
  std::uint64_t h = seed;
  for (const char c : spec.abbrev) {
    h = support::splitmix64(h ^ static_cast<std::uint64_t>(c));
  }
  return h;
}

}  // namespace

std::span<const DatasetSpec> all_datasets() { return kDatasets; }

std::optional<DatasetSpec> find_dataset(std::string_view abbrev) {
  for (const DatasetSpec& spec : kDatasets) {
    if (spec.abbrev == abbrev) return spec;
  }
  return std::nullopt;
}

EdgeList build_dataset_edges(const DatasetSpec& spec, std::uint64_t seed) {
  const std::uint64_t s = dataset_seed(spec, seed);
  switch (spec.topology) {
    case TopologyClass::PeerToPeer:
      return erdos_renyi(spec.synth_vertices, spec.synth_edges, s);
    case TopologyClass::CoPurchase: {
      // Ring degree from target density; Watts-Strogatz emits both arc
      // directions, so the directed edge count is ~ring_degree * n.
      auto ring = static_cast<VertexId>(spec.synth_edges / spec.synth_vertices);
      if (ring % 2 != 0) ++ring;
      ring = std::max<VertexId>(2, ring);
      const double rewire = spec.skew > 0.0 ? spec.skew : 0.08;
      return watts_strogatz(spec.synth_vertices, ring, rewire, s);
    }
    case TopologyClass::Social:
    case TopologyClass::Web: {
      RmatParams params;
      params.scale = support::ceil_log2(spec.synth_vertices);
      params.num_edges = spec.synth_edges;
      params.a = spec.skew;
      const double rest = 1.0 - spec.skew;
      params.b = rest * 0.45;
      params.c = rest * 0.45;
      params.d = rest * 0.10;
      params.reciprocal_fraction = spec.reciprocity;
      return rmat(params, s);
    }
  }
  throw support::InvalidArgumentError("unknown topology class");
}

Graph build_dataset(const DatasetSpec& spec, DiffusionModel model, std::uint64_t seed) {
  Graph g = Graph::from_edge_list(build_dataset_edges(spec, seed));
  assign_weights(g, model, WeightParams{.scheme = WeightScheme::InDegree, .seed = seed});
  return g;
}

}  // namespace eim::graph
