#include "eim/graph/edge_list.hpp"

#include <algorithm>

#include "eim/support/error.hpp"

namespace eim::graph {

EdgeList::EdgeList(VertexId num_vertices, std::vector<Edge> edges)
    : num_vertices_(num_vertices), edges_(std::move(edges)) {
  for (const Edge& e : edges_) {
    EIM_CHECK_MSG(e.from < num_vertices_ && e.to < num_vertices_,
                  "edge endpoint out of range");
  }
}

void EdgeList::add_edge(VertexId from, VertexId to) {
  ensure_vertex(from);
  ensure_vertex(to);
  edges_.push_back(Edge{from, to});
}

void EdgeList::ensure_vertex(VertexId v) {
  EIM_CHECK_MSG(v != kInvalidVertex, "vertex id reserved as sentinel");
  if (v >= num_vertices_) num_vertices_ = v + 1;
}

void EdgeList::normalize() {
  std::erase_if(edges_, [](const Edge& e) { return e.from == e.to; });
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
}

void EdgeList::make_bidirectional() {
  const std::size_t original = edges_.size();
  edges_.reserve(original * 2);
  for (std::size_t i = 0; i < original; ++i) {
    edges_.push_back(Edge{edges_[i].to, edges_[i].from});
  }
  normalize();
}

}  // namespace eim::graph
