#include "eim/graph/draw_plan.hpp"

#include <cmath>
#include <cstring>

#include "eim/support/thread_pool.hpp"

namespace eim::graph {

namespace {

constexpr double kDrawGrid = 16777216.0;  // 2^24, the next_float() lattice

/// Grain for the per-vertex parallel loops: coarse enough that the pool
/// dispatch cost never dominates the per-vertex classification work.
constexpr std::size_t kBuildGrain = 4096;

void build_ic_half(const Graph& g, DrawPlan& plan) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  plan.ic_kind.assign(n, static_cast<std::uint8_t>(DrawPlan::IcKind::Empty));
  plan.ic_log1m.assign(n, 0.0);
  support::ThreadPool::global().parallel_for(
      0, n,
      [&](std::size_t v) {
        const auto ws = g.in_weights(static_cast<VertexId>(v));
        if (ws.empty()) return;  // Empty, preset
        // Bitwise comparison: two weights draw identically iff their bit
        // patterns match (the strict `<` test sees the value, and WC/constant
        // schemes produce bit-identical repeats, never just nearby ones).
        std::uint32_t first = 0;
        std::memcpy(&first, &ws[0], sizeof(first));
        for (std::size_t j = 1; j < ws.size(); ++j) {
          std::uint32_t bits = 0;
          std::memcpy(&bits, &ws[j], sizeof(bits));
          if (bits != first) {
            plan.ic_kind[v] = static_cast<std::uint8_t>(DrawPlan::IcKind::Mixed);
            return;
          }
        }
        const double p = grid_success_probability(ws[0]);
        if (p <= 0.0) {
          plan.ic_kind[v] = static_cast<std::uint8_t>(DrawPlan::IcKind::Zero);
        } else if (p >= 1.0) {
          plan.ic_kind[v] = static_cast<std::uint8_t>(DrawPlan::IcKind::Saturated);
        } else {
          plan.ic_kind[v] = static_cast<std::uint8_t>(DrawPlan::IcKind::Uniform);
          plan.ic_log1m[v] = std::log1p(-p);
        }
      },
      kBuildGrain);
}

/// Vose alias construction for one vertex. Deterministic: buckets are
/// seeded ascending and the small/large worklists are LIFO, so the table is
/// a pure function of the weight slice.
void build_alias_row(std::span<const Weight> ws, float* prob, std::uint32_t* alias,
                     float* total, std::vector<double>& scaled,
                     std::vector<std::uint32_t>& small_idx,
                     std::vector<std::uint32_t>& large_idx) {
  const auto d = static_cast<std::uint32_t>(ws.size());
  double sum = 0.0;
  std::uint32_t first_pos = kNoAliasPick;
  for (std::uint32_t j = 0; j < d; ++j) {
    const double w = ws[j] > 0.0f ? static_cast<double>(ws[j]) : 0.0;
    if (w > 0.0 && first_pos == kNoAliasPick) first_pos = j;
    sum += w;
  }
  *total = static_cast<float>(sum);
  if (sum <= 0.0 || first_pos == kNoAliasPick) {
    // Every draw lands in the no-one gap; the table is never consulted, but
    // keep it self-consistent (nothing pickable).
    for (std::uint32_t j = 0; j < d; ++j) {
      prob[j] = 0.0f;
      alias[j] = j;
    }
    *total = 0.0f;
    return;
  }

  scaled.resize(d);
  small_idx.clear();
  large_idx.clear();
  for (std::uint32_t j = 0; j < d; ++j) {
    const double w = ws[j] > 0.0f ? static_cast<double>(ws[j]) : 0.0;
    scaled[j] = w * d / sum;
    (scaled[j] < 1.0 ? small_idx : large_idx).push_back(j);
  }
  while (!small_idx.empty() && !large_idx.empty()) {
    const std::uint32_t s = small_idx.back();
    small_idx.pop_back();
    const std::uint32_t l = large_idx.back();
    prob[s] = static_cast<float>(scaled[s]);
    alias[s] = l;
    scaled[l] -= 1.0 - scaled[s];
    if (scaled[l] < 1.0) {
      large_idx.pop_back();
      small_idx.push_back(l);
    }
  }
  // Numerical leftovers: the remaining mass is 1 per bucket up to rounding.
  for (const std::uint32_t l : large_idx) {
    prob[l] = 1.0f;
    alias[l] = l;
  }
  for (const std::uint32_t s : small_idx) {
    if (ws[s] > 0.0f) {
      prob[s] = 1.0f;
      alias[s] = s;
    } else {
      // A zero-weight bucket must never be pickable even when rounding
      // drains the large list first: alias it to a positive-weight edge.
      prob[s] = 0.0f;
      alias[s] = first_pos;
    }
  }
}

void build_lt_half(const Graph& g, DrawPlan& plan) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  plan.lt_prob.assign(static_cast<std::size_t>(g.num_edges()), 0.0f);
  plan.lt_alias.assign(static_cast<std::size_t>(g.num_edges()), 0);
  plan.lt_total.assign(n, 0.0f);
  support::ThreadPool::global().parallel_for(
      0, n,
      [&](std::size_t v) {
        // Worklists are per-call; thread_local reuse would leak capacity
        // across graphs and the allocations amortize over the grain anyway.
        std::vector<double> scaled;
        std::vector<std::uint32_t> small_idx;
        std::vector<std::uint32_t> large_idx;
        const auto vid = static_cast<VertexId>(v);
        const EdgeId begin = g.in().offsets[vid];
        build_alias_row(g.in_weights(vid), plan.lt_prob.data() + begin,
                        plan.lt_alias.data() + begin, &plan.lt_total[v], scaled,
                        small_idx, large_idx);
      },
      kBuildGrain);
}

}  // namespace

double grid_success_probability(float w) noexcept {
  if (!(w > 0.0f)) return 0.0;
  if (w >= 1.0f) return 1.0;
  // Count of lattice points k/2^24 (k in [0, 2^24)) strictly below w:
  // ceil(w * 2^24), exact because a float times 2^24 is exact in double.
  const double count = std::ceil(static_cast<double>(w) * kDrawGrid);
  return std::min(count, kDrawGrid) / kDrawGrid;
}

std::uint64_t DrawPlan::bytes() const noexcept {
  return static_cast<std::uint64_t>(ic_kind.size() * sizeof(std::uint8_t)) +
         ic_log1m.size() * sizeof(double) + lt_prob.size() * sizeof(float) +
         lt_alias.size() * sizeof(std::uint32_t) + lt_total.size() * sizeof(float);
}

DrawPlan build_draw_plan(const Graph& g, DiffusionModel model) {
  DrawPlan plan;
  plan.model = model;
  if (model == DiffusionModel::IndependentCascade) {
    build_ic_half(g, plan);
  } else {
    build_lt_half(g, plan);
  }
  return plan;
}

std::uint32_t alias_pick_lt(const DrawPlan& plan, const Graph& g, VertexId v,
                            float u) noexcept {
  const float total = plan.lt_total[v];
  if (!(u < total)) return kNoAliasPick;  // tau in the no-one gap (or W <= 0)
  const EdgeId begin = g.in().offsets[v];
  const auto d = static_cast<std::uint32_t>(g.in().offsets[v + 1] - begin);
  const double x = static_cast<double>(u) / static_cast<double>(total) *
                   static_cast<double>(d);
  auto bucket = static_cast<std::uint32_t>(x);
  if (bucket >= d) bucket = d - 1;  // u/total rounding at the top edge
  const double coin = x - static_cast<double>(bucket);
  const std::size_t slot = static_cast<std::size_t>(begin) + bucket;
  return coin < static_cast<double>(plan.lt_prob[slot]) ? bucket
                                                        : plan.lt_alias[slot];
}

}  // namespace eim::graph
