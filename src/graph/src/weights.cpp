#include "eim/graph/weights.hpp"

#include <algorithm>
#include <memory>

#include "eim/graph/draw_plan.hpp"
#include "eim/support/error.hpp"
#include "eim/support/rng.hpp"

namespace eim::graph {

namespace {

using support::RandomStream;

/// Trivalency probabilities from Chen et al.'s IC benchmarks.
constexpr float kTrivalency[3] = {0.1f, 0.01f, 0.001f};

// Distinct stream tags so weight draws never collide with sampler draws.
constexpr std::uint64_t kWeightStreamTag = 0x57454947u;   // "WEIG"
constexpr std::uint64_t kTrivalencyStreamTag = 0x54524956u;  // "TRIV"

void fill_in_degree(Graph& g) {
  auto& w = g.mutable_in_weights();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const EdgeId begin = g.in().offsets[v];
    const EdgeId end = g.in().offsets[v + 1];
    const auto d = static_cast<float>(end - begin);
    for (EdgeId i = begin; i < end; ++i) w[i] = 1.0f / d;
  }
}

void fill_uniform_constant(Graph& g, DiffusionModel model, float value) {
  EIM_CHECK_MSG(value > 0.0f && value <= 1.0f, "constant weight out of (0,1]");
  auto& w = g.mutable_in_weights();
  if (model == DiffusionModel::IndependentCascade) {
    std::fill(w.begin(), w.end(), value);
    return;
  }
  // LT: scale by in-degree so the per-vertex sum stays <= 1.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const EdgeId begin = g.in().offsets[v];
    const EdgeId end = g.in().offsets[v + 1];
    const auto d = static_cast<float>(end - begin);
    for (EdgeId i = begin; i < end; ++i) w[i] = value / d;
  }
}

void fill_random_uniform(Graph& g, DiffusionModel model, float cap, std::uint64_t seed) {
  EIM_CHECK_MSG(cap > 0.0f && cap <= 1.0f, "weight cap out of (0,1]");
  auto& w = g.mutable_in_weights();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    RandomStream rng(seed, support::derive_stream(kWeightStreamTag, v));
    const EdgeId begin = g.in().offsets[v];
    const EdgeId end = g.in().offsets[v + 1];
    if (begin == end) continue;
    if (model == DiffusionModel::IndependentCascade) {
      for (EdgeId i = begin; i < end; ++i) {
        w[i] = cap * static_cast<float>(rng.next_double());
      }
    } else {
      // Draw raw weights, then normalize so they sum to a random total in
      // (0, 1]; keeps LT feasible while remaining genuinely random.
      double sum = 0.0;
      for (EdgeId i = begin; i < end; ++i) {
        w[i] = static_cast<float>(rng.next_double()) + 1e-6f;
        sum += w[i];
      }
      const auto total = static_cast<float>(0.5 + 0.5 * rng.next_double());
      for (EdgeId i = begin; i < end; ++i) {
        w[i] = static_cast<float>(w[i] / sum) * total;
      }
    }
  }
}

void fill_trivalency(Graph& g, std::uint64_t seed) {
  auto& w = g.mutable_in_weights();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    RandomStream rng(seed, support::derive_stream(kTrivalencyStreamTag, v));
    const EdgeId begin = g.in().offsets[v];
    const EdgeId end = g.in().offsets[v + 1];
    for (EdgeId i = begin; i < end; ++i) w[i] = kTrivalency[rng.next_below(3)];
  }
}

}  // namespace

void assign_weights(Graph& g, DiffusionModel model, const WeightParams& params) {
  switch (params.scheme) {
    case WeightScheme::InDegree:
      fill_in_degree(g);
      break;
    case WeightScheme::UniformConstant:
      fill_uniform_constant(g, model, params.value);
      break;
    case WeightScheme::RandomUniform:
      fill_random_uniform(g, model, params.value, params.seed);
      break;
    case WeightScheme::Trivalency:
      EIM_CHECK_MSG(model == DiffusionModel::IndependentCascade,
                    "trivalency weights are an IC scheme");
      fill_trivalency(g, params.seed);
      break;
  }
  g.sync_out_weights_from_in();
  // Build the fast-draw sidecar while the assignment scheme is still known:
  // weight-uniformity detection (IC skip-ahead) and alias tables (LT) are
  // keyed to the model the weights were just assigned for.
  g.set_draw_plan(std::make_shared<DrawPlan>(build_draw_plan(g, model)));
}

const char* to_string(DiffusionModel model) noexcept {
  switch (model) {
    case DiffusionModel::IndependentCascade: return "IC";
    case DiffusionModel::LinearThreshold: return "LT";
  }
  return "?";
}

const char* to_string(WeightScheme scheme) noexcept {
  switch (scheme) {
    case WeightScheme::InDegree: return "in-degree";
    case WeightScheme::UniformConstant: return "uniform-constant";
    case WeightScheme::RandomUniform: return "random-uniform";
    case WeightScheme::Trivalency: return "trivalency";
  }
  return "?";
}

}  // namespace eim::graph
