#include "eim/graph/graph.hpp"

#include <algorithm>

#include "eim/support/error.hpp"

namespace eim::graph {

Graph Graph::from_edge_list(const EdgeList& edges) {
  Graph g;
  g.in_ = build_in_adjacency(edges);
  g.out_ = build_out_adjacency(edges);
  g.in_weights_.assign(g.in_.targets.size(), 0.0f);
  g.out_weights_.assign(g.out_.targets.size(), 0.0f);
  return g;
}

void Graph::sync_out_weights_from_in() {
  // For each out-edge (u, v) locate u within v's sorted in-slice.
  const VertexId n = num_vertices();
  for (VertexId u = 0; u < n; ++u) {
    const auto vs = out_.neighbors(u);
    for (std::size_t j = 0; j < vs.size(); ++j) {
      const VertexId v = vs[j];
      const auto ins = in_.neighbors(v);
      const auto it = std::lower_bound(ins.begin(), ins.end(), u);
      EIM_CHECK_MSG(it != ins.end() && *it == u, "adjacency directions disagree");
      const auto pos = in_.offsets[v] + static_cast<EdgeId>(it - ins.begin());
      out_weights_[out_.offsets[u] + j] = in_weights_[pos];
    }
  }
}

std::uint64_t Graph::csc_bytes() const noexcept {
  return static_cast<std::uint64_t>(in_.offsets.size()) * sizeof(EdgeId) +
         static_cast<std::uint64_t>(in_.targets.size()) * sizeof(VertexId) +
         static_cast<std::uint64_t>(in_weights_.size()) * sizeof(Weight);
}

GraphStats compute_stats(const Graph& g) {
  GraphStats s;
  s.num_vertices = g.num_vertices();
  s.num_edges = g.num_edges();
  for (VertexId v = 0; v < s.num_vertices; ++v) {
    const EdgeId din = g.in_degree(v);
    const EdgeId dout = g.out_degree(v);
    s.max_in_degree = std::max(s.max_in_degree, din);
    s.max_out_degree = std::max(s.max_out_degree, dout);
    if (din == 0) ++s.zero_in_degree_count;
  }
  s.avg_degree = s.num_vertices == 0
                     ? 0.0
                     : static_cast<double>(s.num_edges) / s.num_vertices;
  return s;
}

}  // namespace eim::graph
