#include "eim/graph/csc.hpp"

#include <algorithm>
#include <numeric>

namespace eim::graph {

namespace {

/// Counting-sort style CSR construction keyed by `key(edge)`,
/// storing `value(edge)` sorted ascending within each slice.
template <typename KeyFn, typename ValueFn>
Adjacency build_adjacency(const EdgeList& edges, KeyFn key, ValueFn value) {
  const VertexId n = edges.num_vertices();
  Adjacency adj;
  adj.offsets.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const Edge& e : edges.edges()) {
    ++adj.offsets[key(e) + 1];
  }
  std::partial_sum(adj.offsets.begin(), adj.offsets.end(), adj.offsets.begin());

  adj.targets.resize(edges.num_edges());
  std::vector<EdgeId> cursor(adj.offsets.begin(), adj.offsets.end() - 1);
  for (const Edge& e : edges.edges()) {
    adj.targets[cursor[key(e)]++] = value(e);
  }
  for (VertexId v = 0; v < n; ++v) {
    std::sort(adj.targets.begin() + static_cast<std::ptrdiff_t>(adj.offsets[v]),
              adj.targets.begin() + static_cast<std::ptrdiff_t>(adj.offsets[v + 1]));
  }
  return adj;
}

}  // namespace

Adjacency build_in_adjacency(const EdgeList& edges) {
  return build_adjacency(
      edges, [](const Edge& e) { return e.to; }, [](const Edge& e) { return e.from; });
}

Adjacency build_out_adjacency(const EdgeList& edges) {
  return build_adjacency(
      edges, [](const Edge& e) { return e.from; }, [](const Edge& e) { return e.to; });
}

}  // namespace eim::graph
