#include "eim/graph/generators.hpp"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "eim/support/error.hpp"
#include "eim/support/rng.hpp"

namespace eim::graph {

using support::RandomStream;

namespace {
constexpr std::uint64_t kGenStreamTag = 0x47454E45u;  // "GENE"

std::uint64_t edge_key(VertexId from, VertexId to) {
  return (static_cast<std::uint64_t>(from) << 32) | to;
}
}  // namespace

EdgeList erdos_renyi(VertexId n, EdgeId m, std::uint64_t seed) {
  EIM_CHECK_MSG(n >= 2, "erdos_renyi needs at least two vertices");
  const auto max_edges = static_cast<EdgeId>(n) * (n - 1);
  EIM_CHECK_MSG(m <= max_edges / 2, "erdos_renyi: too dense for rejection sampling");

  EdgeList edges(n);
  RandomStream rng(seed, support::derive_stream(kGenStreamTag, 1));
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(static_cast<std::size_t>(m) * 2);
  while (edges.num_edges() < m) {
    const VertexId u = rng.next_below(n);
    const VertexId v = rng.next_below(n);
    if (u == v) continue;
    if (!seen.insert(edge_key(u, v)).second) continue;
    edges.add_edge(u, v);
  }
  edges.normalize();
  return edges;
}

EdgeList barabasi_albert(VertexId n, EdgeId edges_per_vertex, double reciprocal_fraction,
                         std::uint64_t seed) {
  EIM_CHECK_MSG(n >= 2 && edges_per_vertex >= 1, "barabasi_albert: bad parameters");
  EdgeList edges(n);
  RandomStream rng(seed, support::derive_stream(kGenStreamTag, 2));

  // Repeated-endpoint list: sampling an element uniformly is sampling a
  // vertex proportionally to its degree (the classic BA trick).
  std::vector<VertexId> endpoint_pool;
  endpoint_pool.reserve(static_cast<std::size_t>(n) * edges_per_vertex * 2);

  // Small seed clique so early vertices have degree.
  const VertexId seed_size =
      std::max<VertexId>(2, static_cast<VertexId>(std::min<EdgeId>(edges_per_vertex + 1, n)));
  for (VertexId u = 0; u < seed_size; ++u) {
    const VertexId v = (u + 1) % seed_size;
    edges.add_edge(u, v);
    endpoint_pool.push_back(u);
    endpoint_pool.push_back(v);
  }

  for (VertexId u = seed_size; u < n; ++u) {
    std::unordered_set<VertexId> picked;
    for (EdgeId j = 0; j < edges_per_vertex; ++j) {
      VertexId target = kInvalidVertex;
      for (int attempt = 0; attempt < 16; ++attempt) {
        const auto idx = rng.next_below(static_cast<std::uint32_t>(endpoint_pool.size()));
        target = endpoint_pool[idx];
        if (target != u && !picked.contains(target)) break;
        target = kInvalidVertex;
      }
      if (target == kInvalidVertex) target = rng.next_below(u);  // uniform fallback
      if (target == u || picked.contains(target)) continue;
      picked.insert(target);
      edges.add_edge(u, target);
      endpoint_pool.push_back(u);
      endpoint_pool.push_back(target);
      if (reciprocal_fraction > 0.0 && rng.next_double() < reciprocal_fraction) {
        edges.add_edge(target, u);
      }
    }
  }
  edges.normalize();
  return edges;
}

EdgeList watts_strogatz(VertexId n, VertexId ring_degree, double rewire_p,
                        std::uint64_t seed) {
  EIM_CHECK_MSG(n >= 4 && ring_degree >= 2 && ring_degree % 2 == 0,
                "watts_strogatz: need n >= 4 and even ring_degree >= 2");
  EIM_CHECK_MSG(ring_degree < n, "watts_strogatz: ring_degree must be < n");
  EdgeList edges(n);
  RandomStream rng(seed, support::derive_stream(kGenStreamTag, 3));

  for (VertexId u = 0; u < n; ++u) {
    for (VertexId hop = 1; hop <= ring_degree / 2; ++hop) {
      VertexId v = static_cast<VertexId>((u + hop) % n);
      if (rng.next_double() < rewire_p) {
        // Rewire the far endpoint to a uniform non-self target.
        VertexId w = rng.next_below(n);
        int guard = 0;
        while (w == u && ++guard < 8) w = rng.next_below(n);
        if (w != u) v = w;
      }
      edges.add_edge(u, v);
      edges.add_edge(v, u);
    }
  }
  edges.normalize();
  return edges;
}

EdgeList rmat(const RmatParams& params, std::uint64_t seed) {
  EIM_CHECK_MSG(params.scale >= 1 && params.scale <= 30, "rmat: scale out of range");
  const double sum = params.a + params.b + params.c + params.d;
  EIM_CHECK_MSG(sum > 0.999 && sum < 1.001, "rmat: quadrant probabilities must sum to 1");

  const VertexId n = static_cast<VertexId>(1u << params.scale);
  EdgeList edges(n);
  RandomStream rng(seed, support::derive_stream(kGenStreamTag, 4));

  const double ab = params.a + params.b;
  const double a_over_ab = params.a / ab;
  const double c_over_cd = params.c / (params.c + params.d);

  for (EdgeId e = 0; e < params.num_edges; ++e) {
    VertexId u = 0;
    VertexId v = 0;
    for (std::uint32_t bit = 0; bit < params.scale; ++bit) {
      // Mild parameter noise per level avoids the artificial "staircase"
      // degree plot of vanilla R-MAT (standard Graph500 smoothing).
      const double jitter = 0.95 + 0.1 * rng.next_double();
      const bool down = rng.next_double() >= ab * jitter / (ab * jitter + (1.0 - ab));
      const bool right =
          rng.next_double() >= (down ? c_over_cd : a_over_ab);
      u = static_cast<VertexId>((u << 1) | (down ? 1u : 0u));
      v = static_cast<VertexId>((v << 1) | (right ? 1u : 0u));
    }
    if (u == v) continue;
    edges.add_edge(u, v);
    if (params.reciprocal_fraction > 0.0 &&
        rng.next_double() < params.reciprocal_fraction) {
      edges.add_edge(v, u);
    }
  }
  edges.normalize();
  return edges;
}

EdgeList path_graph(VertexId n) {
  EIM_CHECK(n >= 1);
  EdgeList edges(n);
  for (VertexId u = 0; u + 1 < n; ++u) edges.add_edge(u, u + 1);
  return edges;
}

EdgeList star_graph(VertexId n) {
  EIM_CHECK(n >= 1);
  EdgeList edges(n);
  for (VertexId v = 1; v < n; ++v) edges.add_edge(0, v);
  return edges;
}

EdgeList cycle_graph(VertexId n) {
  EIM_CHECK(n >= 2);
  EdgeList edges(n);
  for (VertexId u = 0; u < n; ++u) edges.add_edge(u, static_cast<VertexId>((u + 1) % n));
  return edges;
}

EdgeList complete_graph(VertexId n) {
  EIM_CHECK(n >= 2);
  EdgeList edges(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = 0; v < n; ++v) {
      if (u != v) edges.add_edge(u, v);
    }
  }
  return edges;
}

EdgeList bipartite_graph(VertexId left, VertexId right) {
  EIM_CHECK(left >= 1 && right >= 1);
  EdgeList edges(static_cast<VertexId>(left + right));
  for (VertexId u = 0; u < left; ++u) {
    for (VertexId v = 0; v < right; ++v) {
      edges.add_edge(u, static_cast<VertexId>(left + v));
    }
  }
  return edges;
}

}  // namespace eim::graph
