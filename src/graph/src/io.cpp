#include "eim/graph/io.hpp"

#include <array>
#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_map>

#include "eim/support/error.hpp"

namespace eim::graph {

using support::IoError;

EdgeList load_snap_text(std::istream& in) {
  EdgeList edges;
  std::unordered_map<std::uint64_t, VertexId> remap;
  auto intern = [&](std::uint64_t raw) {
    auto [it, inserted] = remap.try_emplace(raw, static_cast<VertexId>(remap.size()));
    if (inserted) edges.ensure_vertex(it->second);
    return it->second;
  };

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream fields(line);
    std::uint64_t raw_from = 0;
    std::uint64_t raw_to = 0;
    if (!(fields >> raw_from >> raw_to)) {
      throw IoError("malformed SNAP edge at line " + std::to_string(line_no) + ": '" +
                    line + "'");
    }
    edges.add_edge(intern(raw_from), intern(raw_to));
  }
  edges.normalize();
  return edges;
}

EdgeList load_snap_text_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open '" + path + "' for reading");
  return load_snap_text(in);
}

void save_snap_text(const EdgeList& edges, std::ostream& out, const std::string& name) {
  out << "# Directed graph: " << name << "\n";
  out << "# Nodes: " << edges.num_vertices() << " Edges: " << edges.num_edges() << "\n";
  out << "# FromNodeId\tToNodeId\n";
  for (const Edge& e : edges.edges()) out << e.from << '\t' << e.to << '\n';
}

namespace {
constexpr std::array<char, 8> kMagic = {'E', 'I', 'M', 'G', 'R', 'P', 'H', '1'};
}  // namespace

void save_binary(const EdgeList& edges, std::ostream& out) {
  out.write(kMagic.data(), kMagic.size());
  const std::uint64_t n = edges.num_vertices();
  const std::uint64_t m = edges.num_edges();
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(&m), sizeof(m));
  out.write(reinterpret_cast<const char*>(edges.edges().data()),
            static_cast<std::streamsize>(m * sizeof(Edge)));
  if (!out) throw IoError("binary graph write failed");
}

EdgeList load_binary(std::istream& in) {
  std::array<char, 8> magic{};
  in.read(magic.data(), magic.size());
  if (!in || magic != kMagic) throw IoError("not an eIM binary graph");
  std::uint64_t n = 0;
  std::uint64_t m = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  in.read(reinterpret_cast<char*>(&m), sizeof(m));
  if (!in) throw IoError("truncated binary graph header");
  std::vector<Edge> raw(m);
  in.read(reinterpret_cast<char*>(raw.data()),
          static_cast<std::streamsize>(m * sizeof(Edge)));
  if (!in) throw IoError("truncated binary graph body");
  return EdgeList(static_cast<VertexId>(n), std::move(raw));
}

void save_binary_file(const EdgeList& edges, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot open '" + path + "' for writing");
  save_binary(edges, out);
}

EdgeList load_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open '" + path + "' for reading");
  return load_binary(in);
}

}  // namespace eim::graph
