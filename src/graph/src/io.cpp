#include "eim/graph/io.hpp"

#include <array>
#include <charconv>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>
#include <string_view>
#include <unordered_map>

#include "eim/support/error.hpp"

namespace eim::graph {

using support::IoError;

namespace {

constexpr const char* kWhitespace = " \t\r\f\v";

/// Split a line into whitespace-separated tokens (views into `line`).
std::vector<std::string_view> split_fields(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t pos = 0;
  while (pos < line.size()) {
    const std::size_t start = line.find_first_not_of(kWhitespace, pos);
    if (start == std::string_view::npos) break;
    std::size_t end = line.find_first_of(kWhitespace, start);
    if (end == std::string_view::npos) end = line.size();
    tokens.push_back(line.substr(start, end - start));
    pos = end;
  }
  return tokens;
}

/// Parse a full token as an unsigned vertex id. Rejects what istream
/// extraction silently accepts: negative ids (would wrap), embedded
/// garbage ("12abc"), and values that overflow 64 bits — each with the
/// offending line number.
std::uint64_t parse_vertex_token(std::string_view tok, std::size_t line_no) {
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), value);
  if (ec == std::errc::result_out_of_range) {
    throw IoError("vertex id '" + std::string(tok) + "' overflows at line " +
                  std::to_string(line_no));
  }
  if (ec != std::errc{} || ptr != tok.data() + tok.size()) {
    throw IoError("invalid vertex id '" + std::string(tok) + "' at line " +
                  std::to_string(line_no) + " (ids must be non-negative integers)");
  }
  return value;
}

/// Any column after `from to` (weights, timestamps) must be a complete
/// finite number — a truncated or garbage attribute is a malformed line,
/// not something to skip silently.
void check_attribute_token(std::string_view tok, std::size_t line_no) {
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), value);
  if (ec != std::errc{} || ptr != tok.data() + tok.size() || !std::isfinite(value)) {
    throw IoError("malformed edge attribute '" + std::string(tok) + "' at line " +
                  std::to_string(line_no));
  }
}

}  // namespace

EdgeList load_snap_text(std::istream& in) {
  EdgeList edges;
  std::unordered_map<std::uint64_t, VertexId> remap;
  auto intern = [&](std::uint64_t raw) {
    auto [it, inserted] = remap.try_emplace(raw, static_cast<VertexId>(remap.size()));
    if (inserted) edges.ensure_vertex(it->second);
    return it->second;
  };

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    const std::vector<std::string_view> tokens = split_fields(line);
    if (tokens.empty()) continue;  // whitespace-only line
    if (tokens.size() < 2) {
      throw IoError("malformed SNAP edge at line " + std::to_string(line_no) +
                    ": expected 'from to [attributes]', got '" + line + "'");
    }
    const std::uint64_t raw_from = parse_vertex_token(tokens[0], line_no);
    const std::uint64_t raw_to = parse_vertex_token(tokens[1], line_no);
    for (std::size_t t = 2; t < tokens.size(); ++t) {
      check_attribute_token(tokens[t], line_no);
    }
    edges.add_edge(intern(raw_from), intern(raw_to));
  }
  edges.normalize();
  return edges;
}

EdgeList load_snap_text_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open '" + path + "' for reading");
  return load_snap_text(in);
}

void save_snap_text(const EdgeList& edges, std::ostream& out, const std::string& name) {
  out << "# Directed graph: " << name << "\n";
  out << "# Nodes: " << edges.num_vertices() << " Edges: " << edges.num_edges() << "\n";
  out << "# FromNodeId\tToNodeId\n";
  for (const Edge& e : edges.edges()) out << e.from << '\t' << e.to << '\n';
}

namespace {
constexpr std::array<char, 8> kMagic = {'E', 'I', 'M', 'G', 'R', 'P', 'H', '1'};
}  // namespace

void save_binary(const EdgeList& edges, std::ostream& out) {
  out.write(kMagic.data(), kMagic.size());
  const std::uint64_t n = edges.num_vertices();
  const std::uint64_t m = edges.num_edges();
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(&m), sizeof(m));
  out.write(reinterpret_cast<const char*>(edges.edges().data()),
            static_cast<std::streamsize>(m * sizeof(Edge)));
  if (!out) throw IoError("binary graph write failed");
}

EdgeList load_binary(std::istream& in) {
  std::array<char, 8> magic{};
  in.read(magic.data(), magic.size());
  if (!in || magic != kMagic) throw IoError("not an eIM binary graph");
  std::uint64_t n = 0;
  std::uint64_t m = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  in.read(reinterpret_cast<char*>(&m), sizeof(m));
  if (!in) throw IoError("truncated binary graph header");
  std::vector<Edge> raw(m);
  in.read(reinterpret_cast<char*>(raw.data()),
          static_cast<std::streamsize>(m * sizeof(Edge)));
  if (!in) throw IoError("truncated binary graph body");
  return EdgeList(static_cast<VertexId>(n), std::move(raw));
}

void save_binary_file(const EdgeList& edges, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot open '" + path + "' for writing");
  save_binary(edges, out);
}

EdgeList load_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open '" + path + "' for reading");
  return load_binary(in);
}

}  // namespace eim::graph
