#include "eim/gpusim/cluster.hpp"

#include <cmath>

#include "eim/support/error.hpp"

namespace eim::gpusim {

namespace {

/// ceil(log2 p) for p >= 1 — the hop count of the logarithmic collectives.
std::uint32_t log2_hops(std::size_t p) noexcept {
  std::uint32_t hops = 0;
  std::size_t reach = 1;
  while (reach < p) {
    reach *= 2;
    ++hops;
  }
  return hops;
}

}  // namespace

ClusterNode::ClusterNode(std::uint32_t index, const NodeSpec& spec) : index_(index) {
  devices_.reserve(spec.num_devices);
  for (std::uint32_t d = 0; d < spec.num_devices; ++d) {
    devices_.push_back(std::make_unique<Device>(spec.device));
  }
}

Cluster::Cluster(ClusterSpec spec) : spec_(spec) {
  EIM_CHECK_MSG(spec_.num_nodes >= 1, "cluster needs at least one node");
  EIM_CHECK_MSG(spec_.node.num_devices >= 1, "node needs at least one device");
  EIM_CHECK_MSG(spec_.node.link.link_gbytes_per_sec > 0.0,
                "link bandwidth must be positive");
  EIM_CHECK_MSG(spec_.node.link.link_latency_us >= 0.0,
                "link latency must be non-negative");
  nodes_.reserve(spec_.num_nodes);
  for (std::uint32_t n = 0; n < spec_.num_nodes; ++n) {
    nodes_.push_back(std::unique_ptr<ClusterNode>(new ClusterNode(n, spec_.node)));
  }
}

void Cluster::mark_node_lost(std::uint32_t node_index) noexcept {
  if (node_index >= nodes_.size()) return;
  ClusterNode& n = *nodes_[node_index];
  if (n.lost_) return;
  n.lost_ = true;
  ++fault_stats_.node_losses;
}

double Cluster::effective_link_bandwidth(std::uint32_t node_index,
                                         std::uint64_t ordinal) const noexcept {
  // A straggler divides bandwidth; overlapping rules compound by taking the
  // worst (max) factor, matching how a degraded NIC dominates its link.
  double factor = 1.0;
  for (const auto& rule : fault_plan_.slowdowns) {
    if (rule.node == node_index && ordinal >= rule.from_collective_ordinal &&
        rule.factor > factor) {
      factor = rule.factor;
    }
  }
  return spec_.node.link.link_gbytes_per_sec * 1e9 / factor;
}

double Cluster::bottleneck_bandwidth(std::span<const std::uint32_t> participants,
                                     std::uint64_t ordinal) const {
  double slowest = spec_.node.link.link_gbytes_per_sec * 1e9;
  for (std::uint32_t n : participants) {
    const double bw = effective_link_bandwidth(n, ordinal);
    if (bw < slowest) slowest = bw;
  }
  return slowest;
}

double Cluster::run_collective(CollectiveKind kind, const std::string& label,
                               std::uint64_t bytes,
                               std::span<const std::uint32_t> participants) {
  EIM_CHECK_MSG(!participants.empty(), "collective needs at least one participant");
  const std::uint64_t ordinal = collective_ordinal_++;

  // Node-loss checks run before any cost is charged: a dead participant
  // fails the collective outright, exactly like a dead device fails a
  // launch. Sticky — once a rule fires the node stays dead.
  for (std::uint32_t n : participants) {
    EIM_CHECK_MSG(n < nodes_.size(), "collective participant out of range");
    ClusterNode& node = *nodes_[n];
    if (!node.lost_) {
      bool dies = false;
      for (const auto& rule : fault_plan_.node_losses) {
        if (rule.node != n) continue;
        if (ordinal >= rule.collective_ordinal) dies = true;
        if (rule.at_seconds >= 0.0 && timeline_.total_seconds() >= rule.at_seconds) {
          dies = true;
        }
      }
      if (dies) {
        node.lost_ = true;
        ++fault_stats_.node_losses;
      }
    }
    if (node.lost_) {
      throw support::NodeLostError(label + " (collective ordinal " +
                                       std::to_string(ordinal) + ")",
                                   n);
    }
  }

  // Each participant's NIC consumes one link transfer ordinal per attempt;
  // a scripted transient fault aborts the attempt after charging the setup
  // latency (the wire was touched), mirroring device transfer faults.
  const double latency = spec_.node.link.link_latency_us * 1e-6;
  std::uint32_t faulted_node = 0;
  std::uint64_t faulted_ordinal = 0;
  bool faulted = false;
  for (std::uint32_t n : participants) {
    ClusterNode& node = *nodes_[n];
    const std::uint64_t link_ordinal = node.link_transfer_ordinal_++;
    if (faulted) continue;  // later NICs still consume their ordinals
    for (const auto& rule : fault_plan_.link_faults) {
      if (rule.node == n && rule.transfer_ordinal == link_ordinal) {
        faulted = true;
        faulted_node = n;
        faulted_ordinal = link_ordinal;
        break;
      }
    }
  }
  if (faulted) {
    ++fault_stats_.link_faults;
    timeline_.add(SegmentKind::Transfer, label + " [link fault]", latency);
    throw support::LinkFaultError(label, faulted_ordinal, faulted_node);
  }

  const std::size_t p = participants.size();
  double seconds = 0.0;
  if (p > 1) {
    const double hops = static_cast<double>(log2_hops(p));
    const double bw = bottleneck_bandwidth(participants, ordinal);
    const double b = static_cast<double>(bytes);
    const double frac = static_cast<double>(p - 1) / static_cast<double>(p);
    switch (kind) {
      case CollectiveKind::Allreduce:
        // Rabenseifner: reduce-scatter + allgather, each moving (p-1)/p of
        // the vector over log2(p) rounds on the slowest link.
        seconds = 2.0 * hops * latency + 2.0 * frac * b / bw;
        break;
      case CollectiveKind::Allgather:
        // `bytes` is the per-node contribution; every node ends with p*B.
        seconds = hops * latency + frac * (static_cast<double>(p) * b) / bw;
        break;
      case CollectiveKind::Broadcast:
        // Pipelined binomial tree: latency per hop, payload streams once.
        seconds = hops * latency + b / bw;
        break;
    }
  }
  timeline_.add(SegmentKind::Transfer, label, seconds);
  return seconds;
}

double Cluster::allreduce(const std::string& label, std::uint64_t bytes,
                          std::span<const std::uint32_t> participants) {
  return run_collective(CollectiveKind::Allreduce, label, bytes, participants);
}

double Cluster::allgather(const std::string& label, std::uint64_t bytes_per_node,
                          std::span<const std::uint32_t> participants) {
  return run_collective(CollectiveKind::Allgather, label, bytes_per_node,
                        participants);
}

double Cluster::broadcast(const std::string& label, std::uint64_t bytes,
                          std::span<const std::uint32_t> participants) {
  return run_collective(CollectiveKind::Broadcast, label, bytes, participants);
}

void Cluster::charge_transfer(const std::string& label, std::uint64_t bytes,
                              std::span<const std::uint32_t> participants) {
  const double latency = spec_.node.link.link_latency_us * 1e-6;
  // Recovery traffic sees the current straggler state but consumes no
  // ordinal — key it off the *next* collective's slowdown window.
  const double bw = participants.empty()
                        ? spec_.node.link.link_gbytes_per_sec * 1e9
                        : bottleneck_bandwidth(participants, collective_ordinal_);
  timeline_.add(SegmentKind::Transfer, label,
                latency + static_cast<double>(bytes) / bw);
}

}  // namespace eim::gpusim
