#include "eim/gpusim/context.hpp"

#include <cassert>

#include "eim/support/bits.hpp"

namespace eim::gpusim {

void BlockContext::warp_inclusive_scan(std::span<float> lane_values) noexcept {
  assert(lane_values.size() <= spec_->warp_size);
  // Host-side sequential prefix sum...
  float running = 0.0f;
  for (float& v : lane_values) {
    running += v;
    v = running;
  }
  // ...charged as the Hillis-Steele shuffle ladder a warp would execute:
  // log2(warp_size) shuffle+add steps (§3.3's O(log d) claim).
  const std::uint32_t steps = support::ceil_log2(spec_->warp_size);
  charge_shuffle(steps);
  charge_alu(steps);
}

std::uint32_t BlockContext::warp_ballot(std::span<const bool> lane_predicates) noexcept {
  assert(lane_predicates.size() <= spec_->warp_size);
  std::uint32_t mask = 0;
  for (std::size_t lane = 0; lane < lane_predicates.size(); ++lane) {
    if (lane_predicates[lane]) mask |= (1u << lane);
  }
  charge_alu(1);
  return mask;
}

}  // namespace eim::gpusim
