#include "eim/gpusim/device.hpp"

#include <algorithm>
#include <queue>
#include <vector>

#include "eim/support/bits.hpp"
#include "eim/support/error.hpp"
#include "eim/support/thread_pool.hpp"

namespace eim::gpusim {

DeviceSpec make_benchmark_device(std::uint64_t memory_mb) {
  DeviceSpec spec;
  spec.name = "sim-rtx-a6000-scaled";
  spec.global_memory_bytes = memory_mb << 20;
  return spec;
}

Device::Device(DeviceSpec spec)
    : spec_(std::move(spec)), memory_(spec_.global_memory_bytes) {}

namespace {

/// Greedy list-scheduling makespan: pack unit costs onto `slots` resident
/// slots in launch order; the largest slot load is the modeled completion
/// time (within 2x of optimal by Graham's bound, and exact for the
/// self-balancing kernels used here).
std::uint64_t schedule_makespan(const std::vector<std::uint64_t>& unit_cycles,
                                std::uint64_t slots) {
  if (unit_cycles.empty() || slots == 0) return 0;
  if (unit_cycles.size() <= slots) {
    return *std::max_element(unit_cycles.begin(), unit_cycles.end());
  }
  std::priority_queue<std::uint64_t, std::vector<std::uint64_t>,
                      std::greater<std::uint64_t>>
      loads;
  for (std::uint64_t s = 0; s < slots; ++s) loads.push(0);
  for (const std::uint64_t c : unit_cycles) {
    const std::uint64_t lowest = loads.top();
    loads.pop();
    loads.push(lowest + c);
  }
  std::uint64_t makespan = 0;
  while (!loads.empty()) {
    makespan = loads.top();
    loads.pop();
  }
  return makespan;
}

}  // namespace

void Device::mark_lost(const std::string& label) {
  if (!memory_.lost()) {
    memory_.set_lost();
    ++fault_stats_.device_losses;
  }
  throw support::DeviceLostError(spec_.name + ": " + label);
}

void Device::check_launch_faults(const std::string& label) {
  if (memory_.lost()) mark_lost(label);
  if (fault_plan_.device_loss_at_seconds >= 0.0 &&
      timeline_.total_seconds() >= fault_plan_.device_loss_at_seconds) {
    mark_lost(label);
  }
  const std::uint64_t ordinal = kernel_ordinal_++;
  if (ordinal == fault_plan_.process_abort_kernel_ordinal) {
    // Scripted process death: thrown before any block body runs, so the
    // launch mutates nothing — exactly what a SIGKILL at this point leaves
    // behind. The catcher must treat all in-memory state as gone.
    ++fault_stats_.process_aborts;
    throw support::ProcessAbortError("kernel launch '" + label + "'", ordinal);
  }
  if (ordinal >= fault_plan_.device_loss_kernel_ordinal) mark_lost(label);
  if (FaultPlan::hits(fault_plan_.kernel_fault_ordinals, ordinal)) {
    ++fault_stats_.kernel_faults;
    // The aborted launch still burns its host-side launch latency.
    timeline_.add(SegmentKind::Kernel, label + " [faulted]",
                  spec_.costs.kernel_launch_us * 1e-6);
    throw support::DeviceFaultError("kernel launch '" + label + "' failed", ordinal);
  }
}

void Device::check_transfer_faults(const std::string& label) {
  if (memory_.lost()) mark_lost(label);
  if (fault_plan_.device_loss_at_seconds >= 0.0 &&
      timeline_.total_seconds() >= fault_plan_.device_loss_at_seconds) {
    mark_lost(label);
  }
  const std::uint64_t ordinal = transfer_ordinal_++;
  if (FaultPlan::hits(fault_plan_.transfer_fault_ordinals, ordinal)) {
    ++fault_stats_.transfer_faults;
    // The broken transfer paid its per-transfer setup before failing.
    timeline_.add(SegmentKind::Transfer, label + " [faulted]",
                  spec_.costs.pcie_latency_us * 1e-6);
    throw support::DeviceFaultError("transfer '" + label + "' failed", ordinal);
  }
}

double Device::finish_kernel(const std::string& label, std::uint64_t units,
                             std::uint64_t makespan_cycles) {
  const double seconds = spec_.costs.kernel_launch_us * 1e-6 +
                         spec_.cycles_to_seconds(static_cast<double>(makespan_cycles));
  timeline_.add(SegmentKind::Kernel, label, seconds);
  (void)units;
  return seconds;
}

KernelStats Device::launch_blocks(const std::string& label, std::uint32_t num_blocks,
                                  const std::function<void(BlockContext&)>& body) {
  EIM_CHECK_MSG(num_blocks > 0, "kernel launched with zero blocks");
  check_launch_faults(label);
  std::vector<std::uint64_t> block_cycles(num_blocks, 0);

  // Adaptive grain: per-block bodies are heavy (whole RRR waves), so the
  // dispatch overhead of grain=1 used to dominate small launches; chunking
  // stays dynamic via the pool's shared cursor.
  support::ThreadPool::global().parallel_for(
      0, num_blocks,
      [&](std::size_t b) {
        BlockContext ctx(static_cast<std::uint32_t>(b), spec_);
        body(ctx);
        block_cycles[b] = ctx.cycles();
      },
      /*grain=*/0);

  KernelStats stats;
  stats.label = label;
  stats.units = num_blocks;
  for (const std::uint64_t c : block_cycles) stats.work_cycles += c;
  // One single-warp block occupies one resident warp slot.
  stats.makespan_cycles = schedule_makespan(block_cycles, spec_.max_resident_warps());
  stats.seconds = finish_kernel(label, num_blocks, stats.makespan_cycles);
  return stats;
}

KernelStats Device::launch_grid(const std::string& label, std::uint64_t num_threads,
                                const std::function<void(ThreadContext&)>& body) {
  EIM_CHECK_MSG(num_threads > 0, "kernel launched with zero threads");
  check_launch_faults(label);
  const std::uint32_t warp = spec_.warp_size;
  const auto num_warps =
      static_cast<std::size_t>(support::div_ceil<std::uint64_t>(num_threads, warp));
  std::vector<std::uint64_t> warp_cycles(num_warps, 0);

  // Threads execute in warp-sized batches; a warp's cost is its slowest
  // lane (SIMT lockstep).
  support::ThreadPool::global().parallel_for(
      0, num_warps,
      [&](std::size_t w) {
        std::uint64_t worst = 0;
        const std::uint64_t begin = static_cast<std::uint64_t>(w) * warp;
        const std::uint64_t end = std::min<std::uint64_t>(begin + warp, num_threads);
        for (std::uint64_t t = begin; t < end; ++t) {
          ThreadContext ctx(t, spec_);
          body(ctx);
          worst = std::max(worst, ctx.cycles());
        }
        warp_cycles[w] = worst;
      },
      /*grain=*/0);

  KernelStats stats;
  stats.label = label;
  stats.units = num_threads;
  for (const std::uint64_t c : warp_cycles) stats.work_cycles += c * warp;
  stats.makespan_cycles = schedule_makespan(warp_cycles, spec_.max_resident_warps());
  stats.seconds = finish_kernel(label, num_threads, stats.makespan_cycles);
  return stats;
}

void Device::transfer_to_device(const std::string& label, std::uint64_t bytes) {
  check_transfer_faults("H2D " + label);
  const double seconds = spec_.costs.pcie_latency_us * 1e-6 +
                         static_cast<double>(bytes) / (spec_.costs.pcie_gbytes_per_sec * 1e9);
  timeline_.add(SegmentKind::Transfer, "H2D " + label, seconds);
}

void Device::transfer_to_host(const std::string& label, std::uint64_t bytes) {
  check_transfer_faults("D2H " + label);
  const double seconds = spec_.costs.pcie_latency_us * 1e-6 +
                         static_cast<double>(bytes) / (spec_.costs.pcie_gbytes_per_sec * 1e9);
  timeline_.add(SegmentKind::Transfer, "D2H " + label, seconds);
}

void Device::charge_allocation_event(const std::string& label) {
  // cudaMalloc/cudaFree synchronize the device; ~100 us is typical.
  timeline_.add(SegmentKind::Allocation, label, 100e-6);
}

}  // namespace eim::gpusim
