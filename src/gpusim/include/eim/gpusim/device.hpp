// The simulated device: memory pool + timeline + kernel launch.
//
// launch_blocks models the paper's sampling kernels (one warp per block,
// self-scheduled work); launch_grid models flat thread grids (Alg. 3).
// Block/thread bodies run on the host thread pool and meter their cycles;
// the device folds those into modeled kernel time with a work-span
// occupancy model: blocks (or warps) are greedily packed onto the device's
// resident slots and the makespan — the maximum slot load — becomes the
// kernel's cycle count. This is what produces the paper's §3.5 scaling law
// ceil(N/W_n)*C_w vs ceil(N/T_n)*C_t without hand-coding it anywhere.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "eim/gpusim/context.hpp"
#include "eim/gpusim/device_spec.hpp"
#include "eim/gpusim/memory.hpp"
#include "eim/gpusim/timeline.hpp"

namespace eim::gpusim {

struct KernelStats {
  std::string label;
  std::uint64_t units = 0;            ///< blocks or threads launched
  std::uint64_t makespan_cycles = 0;  ///< modeled parallel completion time
  std::uint64_t work_cycles = 0;      ///< total cycles across all units
  double seconds = 0.0;               ///< launch overhead + makespan
};

class Device {
 public:
  explicit Device(DeviceSpec spec = DeviceSpec{});

  [[nodiscard]] const DeviceSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] DeviceMemoryPool& memory() noexcept { return memory_; }
  [[nodiscard]] const DeviceMemoryPool& memory() const noexcept { return memory_; }
  [[nodiscard]] DeviceTimeline& timeline() noexcept { return timeline_; }
  [[nodiscard]] const DeviceTimeline& timeline() const noexcept { return timeline_; }

  /// Allocate a tracked device buffer (throws DeviceOutOfMemoryError).
  template <typename T>
  [[nodiscard]] DeviceBuffer<T> alloc(std::size_t count) {
    return DeviceBuffer<T>(memory_, count);
  }

  /// Launch `num_blocks` single-warp blocks. Bodies run concurrently on the
  /// host pool; shared state inside the body must use atomics, exactly as
  /// the CUDA original would.
  KernelStats launch_blocks(const std::string& label, std::uint32_t num_blocks,
                            const std::function<void(BlockContext&)>& body);

  /// Launch a flat grid of `num_threads` scalar threads.
  KernelStats launch_grid(const std::string& label, std::uint64_t num_threads,
                          const std::function<void(ThreadContext&)>& body);

  /// Meter a host->device or device->host copy (cuRipples' Achilles heel).
  void transfer_to_device(const std::string& label, std::uint64_t bytes);
  void transfer_to_host(const std::string& label, std::uint64_t bytes);

  /// Meter a host-side cudaMalloc-style allocation event (fixed latency).
  void charge_allocation_event(const std::string& label);

  /// Good default block count for self-scheduling sampler kernels: fill
  /// every SM with resident warps.
  [[nodiscard]] std::uint32_t sampler_block_count() const noexcept {
    return static_cast<std::uint32_t>(spec_.max_resident_warps());
  }

 private:
  [[nodiscard]] double finish_kernel(const std::string& label, std::uint64_t units,
                                     std::uint64_t makespan_cycles);

  DeviceSpec spec_;
  DeviceMemoryPool memory_;
  DeviceTimeline timeline_;
};

}  // namespace eim::gpusim
