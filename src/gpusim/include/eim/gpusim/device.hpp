// The simulated device: memory pool + timeline + kernel launch.
//
// launch_blocks models the paper's sampling kernels (one warp per block,
// self-scheduled work); launch_grid models flat thread grids (Alg. 3).
// Block/thread bodies run on the host thread pool and meter their cycles;
// the device folds those into modeled kernel time with a work-span
// occupancy model: blocks (or warps) are greedily packed onto the device's
// resident slots and the makespan — the maximum slot load — becomes the
// kernel's cycle count. This is what produces the paper's §3.5 scaling law
// ceil(N/W_n)*C_w vs ceil(N/T_n)*C_t without hand-coding it anywhere.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "eim/gpusim/context.hpp"
#include "eim/gpusim/device_spec.hpp"
#include "eim/gpusim/fault_plan.hpp"
#include "eim/gpusim/memory.hpp"
#include "eim/gpusim/timeline.hpp"

namespace eim::gpusim {

struct KernelStats {
  std::string label;
  std::uint64_t units = 0;            ///< blocks or threads launched
  std::uint64_t makespan_cycles = 0;  ///< modeled parallel completion time
  std::uint64_t work_cycles = 0;      ///< total cycles across all units
  double seconds = 0.0;               ///< launch overhead + makespan
};

class Device {
 public:
  explicit Device(DeviceSpec spec = DeviceSpec{});

  [[nodiscard]] const DeviceSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] DeviceMemoryPool& memory() noexcept { return memory_; }
  [[nodiscard]] const DeviceMemoryPool& memory() const noexcept { return memory_; }
  [[nodiscard]] DeviceTimeline& timeline() noexcept { return timeline_; }
  [[nodiscard]] const DeviceTimeline& timeline() const noexcept { return timeline_; }

  /// Allocate a tracked device buffer (throws DeviceOutOfMemoryError, or
  /// DeviceLostError once the device has died).
  template <typename T>
  [[nodiscard]] DeviceBuffer<T> alloc(std::size_t count) {
    return DeviceBuffer<T>(memory_, count);
  }

  // -- fault injection (docs/RESILIENCE.md) -----------------------------

  /// Install a deterministic fault plan. Replaces any previous plan; the
  /// ordinal counters are NOT reset, so a plan installed mid-life keys
  /// against the device's cumulative launch/transfer/allocation history.
  void set_fault_plan(FaultPlan plan) noexcept {
    fault_plan_ = std::move(plan);
    memory_.attach_fault_plan(fault_plan_.empty() ? nullptr : &fault_plan_);
  }
  [[nodiscard]] const FaultPlan& fault_plan() const noexcept { return fault_plan_; }

  /// True once a permanent device-loss fault fired; every further launch,
  /// transfer, or allocation throws DeviceLostError.
  [[nodiscard]] bool lost() const noexcept { return memory_.lost(); }

  /// Kernel launches attempted so far (the fault-plan launch ordinal).
  [[nodiscard]] std::uint64_t kernel_launch_ordinal() const noexcept {
    return kernel_ordinal_;
  }
  /// Transfers attempted so far (H2D and D2H share the ordinal space).
  [[nodiscard]] std::uint64_t transfer_ordinal() const noexcept {
    return transfer_ordinal_;
  }

  /// Injected-fault tallies (allocation OOMs included, read from the pool).
  [[nodiscard]] FaultStats fault_stats() const noexcept {
    FaultStats stats = fault_stats_;
    stats.alloc_ooms = memory_.injected_oom_count();
    return stats;
  }

  /// Charge deterministic retry backoff to the modeled timeline.
  void charge_backoff(const std::string& label, double seconds) {
    timeline_.add(SegmentKind::Backoff, label, seconds);
  }

  /// Launch `num_blocks` single-warp blocks. Bodies run concurrently on the
  /// host pool; shared state inside the body must use atomics, exactly as
  /// the CUDA original would.
  KernelStats launch_blocks(const std::string& label, std::uint32_t num_blocks,
                            const std::function<void(BlockContext&)>& body);

  /// Launch a flat grid of `num_threads` scalar threads.
  KernelStats launch_grid(const std::string& label, std::uint64_t num_threads,
                          const std::function<void(ThreadContext&)>& body);

  /// Meter a host->device or device->host copy (cuRipples' Achilles heel).
  void transfer_to_device(const std::string& label, std::uint64_t bytes);
  void transfer_to_host(const std::string& label, std::uint64_t bytes);

  /// Meter a host-side cudaMalloc-style allocation event (fixed latency).
  void charge_allocation_event(const std::string& label);

  /// Good default block count for self-scheduling sampler kernels: fill
  /// every SM with resident warps.
  [[nodiscard]] std::uint32_t sampler_block_count() const noexcept {
    return static_cast<std::uint32_t>(spec_.max_resident_warps());
  }

 private:
  [[nodiscard]] double finish_kernel(const std::string& label, std::uint64_t units,
                                     std::uint64_t makespan_cycles);

  /// Consume one launch ordinal and fire any scripted fault: permanent loss
  /// (ordinal- or modeled-time-keyed) throws DeviceLostError, a transient
  /// fault throws DeviceFaultError *before* any block body runs.
  void check_launch_faults(const std::string& label);
  /// Same for transfers; the faulted transfer charges its setup latency.
  void check_transfer_faults(const std::string& label);
  [[noreturn]] void mark_lost(const std::string& label);

  DeviceSpec spec_;
  DeviceMemoryPool memory_;
  DeviceTimeline timeline_;
  FaultPlan fault_plan_;
  FaultStats fault_stats_;
  std::uint64_t kernel_ordinal_ = 0;
  std::uint64_t transfer_ordinal_ = 0;
};

}  // namespace eim::gpusim
