// Modeled multi-node cluster above the device pool.
//
// A Cluster is N identical nodes, each holding D simulated Devices plus a
// network link; collectives (allreduce / allgather / broadcast) are charged
// to a cluster-level DeviceTimeline using standard logarithmic collective
// cost models over the slowest participating link. Like everything else in
// gpusim, the cluster runs deterministically: collectives consume a global
// *collective ordinal*, each node's link consumes a *link transfer ordinal*
// per collective attempt, and every scripted fault is keyed by those
// ordinals or by modeled cluster time — never wall-clock — so a fault plan
// reproduces the identical failure at the identical point on every run.
//
// Fault classes (ClusterFaultPlan; docs/RESILIENCE.md, "Cluster failover"):
//  * node loss      — NodeLostError once a collective ordinal or a modeled
//    cluster-time threshold is reached; sticky — the node stays dead and
//    every later collective naming it fails the same way. The caller
//    (eim/multi_node) reshards the dead node's sample range to survivors.
//  * link fault     — transient LinkFaultError at a node's link transfer
//    ordinal; one collective attempt fails, the next attempt consumes fresh
//    ordinals and succeeds unless the plan lists consecutive ordinals.
//    Retryable (LinkFaultError derives from DeviceFaultError, the class
//    support::retry catches); retry exhaustion escalates to node-dead.
//  * straggler      — scripted link slowdown: from a collective ordinal on,
//    a node's link bandwidth is divided by a factor, stretching every
//    collective it participates in (the ring/tree is gated by the slowest
//    link). Stragglers change only modeled time, never results.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "eim/gpusim/device.hpp"
#include "eim/gpusim/fault_plan.hpp"
#include "eim/gpusim/timeline.hpp"

namespace eim::gpusim {

/// Per-node interconnect description (NVLink-class intra-node traffic is
/// already part of DeviceSpec; this is the inter-node NIC).
struct NetworkSpec {
  double link_gbytes_per_sec = 25.0;  ///< effective per-node NIC bandwidth (200 GbE)
  double link_latency_us = 5.0;       ///< per-hop message latency
};

/// One cluster node: D devices behind one network link.
struct NodeSpec {
  std::uint32_t num_devices = 1;
  DeviceSpec device;
  NetworkSpec link;
};

/// N identical nodes. Homogeneous by construction — heterogeneous fleets
/// are modeled through ClusterFaultPlan stragglers, not through the spec.
struct ClusterSpec {
  std::uint32_t num_nodes = 1;
  NodeSpec node;

  [[nodiscard]] std::uint64_t total_devices() const noexcept {
    return static_cast<std::uint64_t>(num_nodes) * node.num_devices;
  }
};

/// Deterministic cluster-tier fault script (see file comment).
struct ClusterFaultPlan {
  struct NodeLoss {
    std::uint32_t node = 0;
    /// The node dies when the global collective ordinal reaches this.
    std::uint64_t collective_ordinal = kNeverOrdinal;
    /// ... or when the cluster timeline passes this (< 0 = disabled).
    double at_seconds = -1.0;
  };
  struct LinkFault {
    std::uint32_t node = 0;
    /// This node's link transfer ordinal (one consumed per collective
    /// attempt the node participates in) that fails transiently.
    std::uint64_t transfer_ordinal = kNeverOrdinal;
  };
  struct LinkSlowdown {
    std::uint32_t node = 0;
    double factor = 1.0;  ///< bandwidth divisor (>= 1)
    /// The slowdown applies from this collective ordinal on (0 = always).
    std::uint64_t from_collective_ordinal = 0;
  };

  std::vector<NodeLoss> node_losses;
  std::vector<LinkFault> link_faults;
  std::vector<LinkSlowdown> slowdowns;

  [[nodiscard]] bool empty() const noexcept {
    return node_losses.empty() && link_faults.empty() && slowdowns.empty();
  }
};

/// Monotone tallies of injected cluster faults.
struct ClusterFaultStats {
  std::uint64_t node_losses = 0;  ///< nodes that died (scripted or escalated)
  std::uint64_t link_faults = 0;  ///< transient link faults injected
};

class Cluster;

/// One node's runtime state: its devices, its link ordinal counter, and its
/// liveness. Constructed by the Cluster; devices are owned here so a node's
/// lifetime is the natural shard boundary.
class ClusterNode {
 public:
  [[nodiscard]] std::uint32_t index() const noexcept { return index_; }
  [[nodiscard]] std::uint32_t num_devices() const noexcept {
    return static_cast<std::uint32_t>(devices_.size());
  }
  [[nodiscard]] Device& device(std::uint32_t d) noexcept { return *devices_[d]; }
  [[nodiscard]] const Device& device(std::uint32_t d) const noexcept {
    return *devices_[d];
  }
  /// True once the node died (scripted loss or escalated link timeout).
  [[nodiscard]] bool lost() const noexcept { return lost_; }
  /// Link transfer attempts so far (the link-fault ordinal space).
  [[nodiscard]] std::uint64_t link_transfer_ordinal() const noexcept {
    return link_transfer_ordinal_;
  }

 private:
  friend class Cluster;
  ClusterNode(std::uint32_t index, const NodeSpec& spec);

  std::uint32_t index_;
  std::vector<std::unique_ptr<Device>> devices_;
  bool lost_ = false;
  std::uint64_t link_transfer_ordinal_ = 0;
};

class Cluster {
 public:
  explicit Cluster(ClusterSpec spec);

  [[nodiscard]] const ClusterSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] std::uint32_t num_nodes() const noexcept {
    return static_cast<std::uint32_t>(nodes_.size());
  }
  [[nodiscard]] ClusterNode& node(std::uint32_t i) noexcept { return *nodes_[i]; }
  [[nodiscard]] const ClusterNode& node(std::uint32_t i) const noexcept {
    return *nodes_[i];
  }

  /// The cluster network ledger: collectives land as Transfer segments,
  /// retry backoff as Backoff segments. total_seconds() is the modeled
  /// network time the multi-node result reports as communication.
  [[nodiscard]] DeviceTimeline& timeline() noexcept { return timeline_; }
  [[nodiscard]] const DeviceTimeline& timeline() const noexcept { return timeline_; }

  /// Install a deterministic cluster fault plan. Replaces any previous
  /// plan; ordinal counters are NOT reset (same contract as Device).
  void set_fault_plan(ClusterFaultPlan plan) noexcept { fault_plan_ = std::move(plan); }
  [[nodiscard]] const ClusterFaultPlan& fault_plan() const noexcept {
    return fault_plan_;
  }

  /// Collective attempts so far (the node-loss scripting key).
  [[nodiscard]] std::uint64_t collective_ordinal() const noexcept {
    return collective_ordinal_;
  }
  [[nodiscard]] ClusterFaultStats fault_stats() const noexcept { return fault_stats_; }

  /// Charge deterministic retry backoff to the cluster timeline.
  void charge_backoff(const std::string& label, double seconds) {
    timeline_.add(SegmentKind::Backoff, label, seconds);
  }

  /// Escalate a node to permanently dead outside a scripted loss — the
  /// multi-node layer calls this when a link's transient faults exhaust the
  /// retry budget (timeout => node-dead) or when a device-tier loss drains
  /// the whole node. Idempotent; counted once.
  void mark_node_lost(std::uint32_t node_index) noexcept;

  /// Effective link bandwidth of `node_index` at collective ordinal
  /// `ordinal`, after scripted slowdowns (bytes/second).
  [[nodiscard]] double effective_link_bandwidth(std::uint32_t node_index,
                                                std::uint64_t ordinal) const noexcept;

  // -- modeled collectives ----------------------------------------------
  //
  // `participants` are node indices (the caller's alive set). Each call
  // consumes ONE global collective ordinal plus one link transfer ordinal
  // per participant, runs the fault checks, charges the modeled cost to the
  // cluster timeline, and returns the seconds charged. A single-participant
  // collective is free but still consumes ordinals (fault scripting stays
  // aligned however many nodes survive). Cost models (P participants, B
  // bytes, L = slowest participating link, lat = link latency):
  //   allreduce:  2*ceil(log2 P)*lat + 2*(P-1)/P * B / L   (Rabenseifner)
  //   allgather:  ceil(log2 P)*lat + (P-1)/P * (P*B_per_node) / L
  //   broadcast:  ceil(log2 P)*lat + B / L                 (pipelined tree)
  double allreduce(const std::string& label, std::uint64_t bytes,
                   std::span<const std::uint32_t> participants);
  double allgather(const std::string& label, std::uint64_t bytes_per_node,
                   std::span<const std::uint32_t> participants);
  double broadcast(const std::string& label, std::uint64_t bytes,
                   std::span<const std::uint32_t> participants);

  /// Meter point-to-point recovery traffic (shard resharding) on the
  /// cluster timeline. Not a collective: consumes no ordinals and runs no
  /// fault checks — recovery traffic must not perturb the scripted fault
  /// schedule keyed to collective ordinals.
  void charge_transfer(const std::string& label, std::uint64_t bytes,
                       std::span<const std::uint32_t> participants);

 private:
  enum class CollectiveKind { Allreduce, Allgather, Broadcast };
  double run_collective(CollectiveKind kind, const std::string& label,
                        std::uint64_t bytes,
                        std::span<const std::uint32_t> participants);
  /// Slowest participating link in bytes/second at `ordinal`.
  [[nodiscard]] double bottleneck_bandwidth(
      std::span<const std::uint32_t> participants, std::uint64_t ordinal) const;

  ClusterSpec spec_;
  std::vector<std::unique_ptr<ClusterNode>> nodes_;
  DeviceTimeline timeline_;
  ClusterFaultPlan fault_plan_;
  ClusterFaultStats fault_stats_;
  std::uint64_t collective_ordinal_ = 0;
};

}  // namespace eim::gpusim
