// Device global-memory accounting.
//
// Buffers store their payload in host RAM (the simulator executes on the
// CPU), but every byte is charged against the device's global-memory budget;
// exceeding it throws DeviceOutOfMemoryError — this is the mechanism behind
// the paper's OOM cells in Tables 2-5 and Fig. 8 (gIM over-allocates, eIM's
// pooled queues don't).
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "eim/gpusim/fault_plan.hpp"
#include "eim/support/error.hpp"
#include "eim/support/metrics.hpp"

namespace eim::gpusim {

class DeviceMemoryPool {
 public:
  explicit DeviceMemoryPool(std::uint64_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  /// Reserve `bytes`; throws DeviceOutOfMemoryError on exhaustion (or when
  /// the attached fault plan scripts an OOM at this allocation ordinal /
  /// byte size) and DeviceLostError once the owning device has died.
  void allocate(std::uint64_t bytes) {
    if (lost_.load(std::memory_order_relaxed)) {
      throw support::DeviceLostError("allocation on lost device");
    }
    // Every *attempt* consumes one ordinal, so a plan's alloc faults stay
    // keyed to the same request whether or not earlier requests succeeded.
    const std::uint64_t ordinal = alloc_attempts_.fetch_add(1, std::memory_order_relaxed);
    if (fault_plan_ != nullptr &&
        ((fault_plan_->alloc_oom_bytes_threshold != 0 &&
          bytes >= fault_plan_->alloc_oom_bytes_threshold) ||
         FaultPlan::hits(fault_plan_->alloc_oom_ordinals, ordinal))) {
      injected_ooms_.fetch_add(1, std::memory_order_relaxed);
      const std::uint64_t held = allocated_.load(std::memory_order_relaxed);
      throw support::DeviceOutOfMemoryError(bytes, capacity_ - held);
    }
    std::uint64_t current = allocated_.load(std::memory_order_relaxed);
    for (;;) {
      if (current + bytes > capacity_) {
        throw support::DeviceOutOfMemoryError(bytes, capacity_ - current);
      }
      if (allocated_.compare_exchange_weak(current, current + bytes,
                                           std::memory_order_relaxed)) {
        break;
      }
    }
    // Track the high-water mark (racy max-update loop).
    std::uint64_t peak = peak_.load(std::memory_order_relaxed);
    const std::uint64_t now = current + bytes;
    while (peak < now && !peak_.compare_exchange_weak(peak, now)) {
    }
    alloc_events_.fetch_add(1, std::memory_order_relaxed);
    if (hwm_gauge_ != nullptr) hwm_gauge_->max_update(now);
    if (alloc_counter_ != nullptr) alloc_counter_->add();
  }

  void deallocate(std::uint64_t bytes) noexcept {
    allocated_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t capacity_bytes() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t allocated_bytes() const noexcept {
    return allocated_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t peak_bytes() const noexcept {
    return peak_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t allocation_count() const noexcept {
    return alloc_events_.load(std::memory_order_relaxed);
  }

  void reset_peak() noexcept { peak_.store(allocated_.load()); }

  /// Mirror the high-water mark and allocation events into metrics
  /// instruments (either may be null; pass nulls to detach). The
  /// instruments are not owned — detach before they are destroyed. Attach
  /// from the driving thread before kernels launch; the pointers themselves
  /// are not synchronized.
  void attach_metrics(support::metrics::Gauge* high_water,
                      support::metrics::Counter* allocations) noexcept {
    hwm_gauge_ = high_water;
    alloc_counter_ = allocations;
    if (hwm_gauge_ != nullptr) hwm_gauge_->max_update(peak_bytes());
  }

  /// Attach the owning device's fault plan (not owned; nullptr detaches).
  /// Like attach_metrics, attach from the driving thread before kernels run.
  void attach_fault_plan(const FaultPlan* plan) noexcept { fault_plan_ = plan; }

  /// Permanent device loss: every further allocation throws DeviceLostError.
  /// Deallocation stays permitted so RAII teardown of host-side mirrors
  /// keeps the accounting balanced.
  void set_lost() noexcept { lost_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool lost() const noexcept {
    return lost_.load(std::memory_order_relaxed);
  }

  /// Allocation attempts (the fault-plan ordinal counter; includes faulted
  /// requests, unlike allocation_count()).
  [[nodiscard]] std::uint64_t allocation_attempts() const noexcept {
    return alloc_attempts_.load(std::memory_order_relaxed);
  }
  /// OOMs injected by the attached fault plan (not genuine exhaustion).
  [[nodiscard]] std::uint64_t injected_oom_count() const noexcept {
    return injected_ooms_.load(std::memory_order_relaxed);
  }

 private:
  std::uint64_t capacity_;
  std::atomic<std::uint64_t> allocated_{0};
  std::atomic<std::uint64_t> peak_{0};
  std::atomic<std::uint64_t> alloc_events_{0};
  std::atomic<std::uint64_t> alloc_attempts_{0};
  std::atomic<std::uint64_t> injected_ooms_{0};
  std::atomic<bool> lost_{false};
  support::metrics::Gauge* hwm_gauge_ = nullptr;
  support::metrics::Counter* alloc_counter_ = nullptr;
  const FaultPlan* fault_plan_ = nullptr;
};

/// RAII device allocation of `T[count]`. Move-only.
template <typename T>
class DeviceBuffer {
 public:
  DeviceBuffer() = default;

  DeviceBuffer(DeviceMemoryPool& pool, std::size_t count) : pool_(&pool) {
    pool.allocate(count * sizeof(T));
    data_.assign(count, T{});
  }

  DeviceBuffer(DeviceBuffer&& other) noexcept
      : pool_(other.pool_), data_(std::move(other.data_)) {
    other.pool_ = nullptr;
  }
  DeviceBuffer& operator=(DeviceBuffer&& other) noexcept {
    if (this != &other) {
      release();
      pool_ = other.pool_;
      data_ = std::move(other.data_);
      other.pool_ = nullptr;
    }
    return *this;
  }
  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;

  ~DeviceBuffer() { release(); }

  [[nodiscard]] std::span<T> span() noexcept { return data_; }
  [[nodiscard]] std::span<const T> span() const noexcept { return data_; }
  [[nodiscard]] T* data() noexcept { return data_.data(); }
  [[nodiscard]] const T* data() const noexcept { return data_.data(); }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }
  [[nodiscard]] std::uint64_t bytes() const noexcept { return data_.size() * sizeof(T); }
  T& operator[](std::size_t i) noexcept { return data_[i]; }
  const T& operator[](std::size_t i) const noexcept { return data_[i]; }

 private:
  void release() noexcept {
    if (pool_ != nullptr) {
      pool_->deallocate(bytes());
      pool_ = nullptr;
    }
    data_.clear();
  }

  DeviceMemoryPool* pool_ = nullptr;
  std::vector<T> data_;
};

}  // namespace eim::gpusim
