// Modeled-time ledger for a simulated device.
//
// Every kernel launch, host<->device transfer, and allocation event appends a
// segment; total_seconds() is the modeled wall time the paper's speedup plots
// compare. Segments keep their labels so benches can break down where a
// baseline loses (e.g. cuRipples' time is dominated by Transfer segments).
//
// Each segment is a true span on the device's modeled clock: `start` is the
// clock value when the segment was charged (the device executes serially, so
// a segment occupies [start, start + seconds) and consecutive segments never
// overlap), and `sequence` is its monotone position in the ledger. Both feed
// the trace export (support/trace.hpp, docs/OBSERVABILITY.md).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace eim::gpusim {

enum class SegmentKind {
  Kernel,
  Transfer,
  Allocation,
  /// Modeled retry backoff after a transient device fault — recovery time
  /// charged to the same ledger as the work it protects (support::retry).
  Backoff,
};

struct TimelineSegment {
  SegmentKind kind;
  std::string label;
  double start;             ///< modeled clock when the segment began
  double seconds;
  std::uint64_t sequence;   ///< monotone ledger position (0-based)
};

class DeviceTimeline {
 public:
  void add(SegmentKind kind, std::string label, double seconds) {
    const double start = total_seconds_;
    total_seconds_ += seconds;
    switch (kind) {
      case SegmentKind::Kernel: kernel_seconds_ += seconds; break;
      case SegmentKind::Transfer: transfer_seconds_ += seconds; break;
      case SegmentKind::Allocation: allocation_seconds_ += seconds; break;
      case SegmentKind::Backoff: backoff_seconds_ += seconds; break;
    }
    segments_.push_back(TimelineSegment{kind, std::move(label), start, seconds,
                                        static_cast<std::uint64_t>(segments_.size())});
  }

  [[nodiscard]] double total_seconds() const noexcept { return total_seconds_; }
  [[nodiscard]] double kernel_seconds() const noexcept { return kernel_seconds_; }
  [[nodiscard]] double transfer_seconds() const noexcept { return transfer_seconds_; }
  [[nodiscard]] double allocation_seconds() const noexcept { return allocation_seconds_; }
  [[nodiscard]] double backoff_seconds() const noexcept { return backoff_seconds_; }
  [[nodiscard]] const std::vector<TimelineSegment>& segments() const noexcept {
    return segments_;
  }

  /// Clear the ledger *and* release its storage: bench sweeps reset the
  /// timeline between cells, and keeping a peak-size segment buffer alive
  /// per device would otherwise hold the largest cell's footprint for the
  /// whole sweep.
  void reset() {
    std::vector<TimelineSegment>().swap(segments_);
    total_seconds_ = kernel_seconds_ = transfer_seconds_ = allocation_seconds_ =
        backoff_seconds_ = 0.0;
  }

 private:
  std::vector<TimelineSegment> segments_;
  double total_seconds_ = 0.0;
  double kernel_seconds_ = 0.0;
  double transfer_seconds_ = 0.0;
  double allocation_seconds_ = 0.0;
  double backoff_seconds_ = 0.0;
};

}  // namespace eim::gpusim
