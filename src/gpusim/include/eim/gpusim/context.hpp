// Execution contexts handed to simulated kernels.
//
// A kernel body is ordinary C++ that does its real work on the host and
// *meters* the operations a CUDA kernel would issue: the context converts
// each metered operation into cycles using the device's cost model. Two
// granularities exist, matching how the paper's kernels are written:
//
//  * BlockContext — one warp per block (the sampling kernels of Alg. 2 and
//    the warp-based scan). Costs are warp-wide: a coalesced global access is
//    one transaction for all 32 lanes; divergent scalar accesses charge per
//    lane.
//  * ThreadContext — per-thread kernels (the thread-based scan of Alg. 3).
//    Every access is scalar.
//
// Warp collectives (inclusive scan via __shfl_up_sync, ballot) execute
// sequentially but charge the log2(32)-step parallel cost, exactly the
// O(log d) the paper credits its LT prefix-scan with (§3.3).
#pragma once

#include <cstdint>
#include <span>

#include "eim/gpusim/device_spec.hpp"

namespace eim::gpusim {

/// Cost-metering base shared by both granularities.
class CostMeter {
 public:
  explicit CostMeter(const DeviceSpec& spec) noexcept : spec_(&spec) {}

  [[nodiscard]] const DeviceSpec& spec() const noexcept { return *spec_; }
  [[nodiscard]] std::uint64_t cycles() const noexcept { return cycles_; }
  void add_cycles(std::uint64_t c) noexcept { cycles_ += c; }

 protected:
  const DeviceSpec* spec_;
  std::uint64_t cycles_ = 0;
};

class BlockContext : public CostMeter {
 public:
  BlockContext(std::uint32_t block_id, const DeviceSpec& spec) noexcept
      : CostMeter(spec), block_id_(block_id), shared_free_(spec.shared_memory_per_block) {}

  [[nodiscard]] std::uint32_t block_id() const noexcept { return block_id_; }
  [[nodiscard]] std::uint32_t warp_size() const noexcept { return spec_->warp_size; }

  // -- memory traffic --------------------------------------------------

  /// `transactions` coalesced warp-wide global accesses.
  void charge_global(std::uint64_t transactions = 1) noexcept {
    cycles_ += transactions * spec_->costs.global_latency;
  }
  /// `accesses` divergent (per-lane serialized) global accesses.
  void charge_global_scalar(std::uint64_t accesses) noexcept {
    cycles_ += accesses * spec_->costs.global_latency;
  }
  void charge_shared(std::uint64_t accesses = 1) noexcept {
    cycles_ += accesses * spec_->costs.shared_latency;
  }

  // -- atomics ----------------------------------------------------------

  /// A global atomic issued by `conflicting_lanes` lanes hitting the same
  /// address: base latency plus per-lane serialization (the cost §3.3's
  /// atomic-add LT variant pays and the prefix-scan variant avoids).
  void charge_atomic_global(std::uint64_t conflicting_lanes = 1) noexcept {
    cycles_ += spec_->costs.atomic_global +
               (conflicting_lanes - 1) * spec_->costs.atomic_conflict;
  }
  void charge_atomic_shared(std::uint64_t conflicting_lanes = 1) noexcept {
    cycles_ += spec_->costs.atomic_shared +
               (conflicting_lanes - 1) * spec_->costs.atomic_conflict;
  }

  // -- compute ----------------------------------------------------------

  void charge_alu(std::uint64_t warp_ops = 1) noexcept {
    cycles_ += warp_ops * spec_->costs.alu_op;
  }
  void charge_shuffle(std::uint64_t steps = 1) noexcept {
    cycles_ += steps * spec_->costs.shuffle_op;
  }

  /// In-kernel malloc/free — the dynamic-allocation overhead that dominates
  /// gIM when its shared-memory queue spills (§2.3).
  void charge_device_malloc() noexcept {
    cycles_ += spec_->costs.device_malloc;
    ++malloc_count_;
  }
  [[nodiscard]] std::uint64_t malloc_count() const noexcept { return malloc_count_; }

  // -- shared-memory budget ----------------------------------------------

  /// Claim block shared memory; false when the 48 KB budget is exhausted
  /// (gIM's spill trigger).
  [[nodiscard]] bool try_alloc_shared(std::uint64_t bytes) noexcept {
    if (bytes > shared_free_) return false;
    shared_free_ -= bytes;
    return true;
  }
  void free_shared(std::uint64_t bytes) noexcept { shared_free_ += bytes; }
  [[nodiscard]] std::uint64_t shared_free_bytes() const noexcept { return shared_free_; }

  // -- warp collectives ---------------------------------------------------

  /// Warp-wide inclusive prefix sum over up to warp_size lane values,
  /// in place. Hillis-Steele with __shfl_up_sync: log2(32) = 5 shuffle+add
  /// steps regardless of lane count.
  void warp_inclusive_scan(std::span<float> lane_values) noexcept;

  /// Ballot: bit i set iff lane i's predicate holds. One warp instruction.
  [[nodiscard]] std::uint32_t warp_ballot(std::span<const bool> lane_predicates) noexcept;

 private:
  std::uint32_t block_id_;
  std::uint64_t shared_free_;
  std::uint64_t malloc_count_ = 0;
};

class ThreadContext : public CostMeter {
 public:
  ThreadContext(std::uint64_t thread_id, const DeviceSpec& spec) noexcept
      : CostMeter(spec), thread_id_(thread_id) {}

  [[nodiscard]] std::uint64_t thread_id() const noexcept { return thread_id_; }

  /// Scalar global accesses (no coalescing — the trade-off the thread-based
  /// scan accepts in exchange for T_n-way parallelism).
  void charge_global(std::uint64_t accesses = 1) noexcept {
    cycles_ += accesses * spec_->costs.global_latency;
  }
  void charge_atomic_global(std::uint64_t ops = 1) noexcept {
    cycles_ += ops * spec_->costs.atomic_global;
  }
  void charge_alu(std::uint64_t ops = 1) noexcept {
    cycles_ += ops * spec_->costs.alu_op;
  }

 private:
  std::uint64_t thread_id_;
};

}  // namespace eim::gpusim
