// Deterministic fault injection for the simulated device.
//
// A FaultPlan scripts failures against a Device the same way the cost model
// scripts time: keyed by *ordinals* (kernel-launch ordinal, allocation
// ordinal, transfer ordinal) and by *modeled* device time — never by
// wall-clock or randomness — so a plan reproduces the identical fault at the
// identical point on every run, and a fault-free re-execution of the same
// work is bit-identical. This is the substrate behind the recovery paths the
// paper's OOM cells motivate (Tables 2-5, Fig. 8): the pipeline's
// retry/degrade policies and the multi-GPU failover are all tested by
// attaching plans here.
//
// Fault classes (see docs/RESILIENCE.md for the full schema):
//  * transient kernel fault   — DeviceFaultError at a launch ordinal; the
//    fault fires *before* any block body executes, so a retried launch
//    re-runs the whole kernel cleanly (the ordinal has advanced, so the
//    retry succeeds unless the plan lists consecutive ordinals);
//  * transient transfer fault — DeviceFaultError at a transfer ordinal; the
//    failed transfer still charges its setup latency to the timeline;
//  * allocation OOM           — DeviceOutOfMemoryError at an allocation
//    ordinal, or for any single request of at least `alloc_oom_bytes_threshold`
//    bytes (models fragmentation / cudaMalloc failure under pressure);
//  * permanent device loss    — DeviceLostError once a launch ordinal or a
//    modeled-time threshold is reached; the device stays dead (every later
//    launch, transfer, or allocation throws DeviceLostError).
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

namespace eim::gpusim {

/// Sentinel "never fires" ordinal / threshold.
inline constexpr std::uint64_t kNeverOrdinal =
    std::numeric_limits<std::uint64_t>::max();

struct FaultPlan {
  /// Launch ordinals (0-based, per device) that throw DeviceFaultError.
  std::vector<std::uint64_t> kernel_fault_ordinals;
  /// Transfer ordinals (H2D and D2H share one counter) that throw
  /// DeviceFaultError.
  std::vector<std::uint64_t> transfer_fault_ordinals;
  /// Allocation ordinals (counted per *attempt*, including faulted ones)
  /// that throw DeviceOutOfMemoryError.
  std::vector<std::uint64_t> alloc_oom_ordinals;
  /// Any single allocation of >= this many bytes throws
  /// DeviceOutOfMemoryError (0 = disabled).
  std::uint64_t alloc_oom_bytes_threshold = 0;
  /// Permanent loss: the device dies when its launch ordinal reaches this.
  std::uint64_t device_loss_kernel_ordinal = kNeverOrdinal;
  /// Scripted process death: ProcessAbortError at exactly this launch
  /// ordinal, thrown before any block body runs — the checkpoint/resume
  /// tests sweep this over every ordinal to prove a run killed anywhere
  /// resumes to the bit-identical answer (docs/RESILIENCE.md).
  std::uint64_t process_abort_kernel_ordinal = kNeverOrdinal;
  /// Permanent loss keyed by modeled time: the device dies at the first
  /// launch or transfer once its timeline passes this (< 0 = disabled).
  double device_loss_at_seconds = -1.0;

  // Spill-tier faults (TieredRrrStore, docs/RESILIENCE.md "Memory-pressure
  // tiers"). Each class has its own per-attempt ordinal counter inside the
  // store, so sweeps over these are independent of kernel/transfer/alloc
  // ordinals above.

  /// Host-allocation attempts (T1 admission of a compressed spill block)
  /// that fail: the block bypasses host memory and goes straight to disk.
  std::vector<std::uint64_t> host_alloc_oom_ordinals;
  /// Spill-block disk *write* attempts that throw a transient IoError
  /// before any byte reaches disk (device driver / filesystem error).
  std::vector<std::uint64_t> spill_write_fault_ordinals;
  /// Spill-block disk write attempts that short-write mid-file (ENOSPC):
  /// the atomic-write temp is discarded — no partial artifact is ever
  /// published — and the attempt surfaces as a transient IoError.
  std::vector<std::uint64_t> spill_short_write_ordinals;
  /// Spill-block disk *read* attempts that throw a transient IoError.
  std::vector<std::uint64_t> spill_read_fault_ordinals;
  /// Spill-block disk reads whose payload comes back torn (bit corruption):
  /// the per-block CRC-32C rejects it and the store quarantines the block,
  /// resampling its sets instead of retrying the read.
  std::vector<std::uint64_t> spill_corrupt_ordinals;

  [[nodiscard]] bool empty() const noexcept {
    return kernel_fault_ordinals.empty() && transfer_fault_ordinals.empty() &&
           alloc_oom_ordinals.empty() && alloc_oom_bytes_threshold == 0 &&
           device_loss_kernel_ordinal == kNeverOrdinal &&
           process_abort_kernel_ordinal == kNeverOrdinal &&
           device_loss_at_seconds < 0.0 && host_alloc_oom_ordinals.empty() &&
           spill_write_fault_ordinals.empty() &&
           spill_short_write_ordinals.empty() &&
           spill_read_fault_ordinals.empty() && spill_corrupt_ordinals.empty();
  }

  /// Plans hold a handful of scripted ordinals; linear scan beats a set.
  [[nodiscard]] static bool hits(const std::vector<std::uint64_t>& ordinals,
                                 std::uint64_t ordinal) noexcept {
    return std::find(ordinals.begin(), ordinals.end(), ordinal) != ordinals.end();
  }
};

/// Monotone per-device tallies of injected faults; recovery layers mirror
/// run deltas into the metrics registry (docs/OBSERVABILITY.md).
struct FaultStats {
  std::uint64_t kernel_faults = 0;    ///< transient launch faults injected
  std::uint64_t transfer_faults = 0;  ///< transient transfer faults injected
  std::uint64_t alloc_ooms = 0;       ///< allocation OOMs injected by plan
  std::uint64_t device_losses = 0;    ///< 0 or 1: the device died
  std::uint64_t process_aborts = 0;   ///< scripted process deaths injected
};

}  // namespace eim::gpusim
