// Bridge from the modeled-time ledger to the trace recorder.
//
// Folds a DeviceTimeline's segments into a TraceRecorder as leaf spans on
// the device's pid, preserving ledger order so the exported durations sum
// to total_seconds() in the exact same floating-point order the timeline
// accumulated them. Called at the end of a run (the segments' [start,
// start+seconds) intervals are already final); the enclosing orchestration
// spans recorded live during the run parent them by containment.
#pragma once

#include <cstdint>

#include "eim/gpusim/timeline.hpp"
#include "eim/support/trace.hpp"

namespace eim::gpusim {

inline support::trace::SpanCategory trace_category(SegmentKind kind) noexcept {
  switch (kind) {
    case SegmentKind::Kernel: return support::trace::SpanCategory::Kernel;
    case SegmentKind::Transfer: return support::trace::SpanCategory::Transfer;
    case SegmentKind::Allocation: return support::trace::SpanCategory::Allocation;
    case SegmentKind::Backoff: return support::trace::SpanCategory::Backoff;
  }
  return support::trace::SpanCategory::Kernel;
}

inline void record_timeline_spans(support::trace::TraceRecorder& trace,
                                  std::uint32_t pid, const DeviceTimeline& timeline) {
  for (const TimelineSegment& seg : timeline.segments()) {
    trace.complete_span(pid, trace_category(seg.kind), seg.label, seg.start,
                        seg.seconds);
  }
}

}  // namespace eim::gpusim
