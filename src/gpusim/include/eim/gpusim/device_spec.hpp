// Device description and cost model for the GPU execution simulator.
//
// The simulator substitutes for the paper's NVIDIA RTX A6000 (84 SMs,
// 10752 CUDA cores, 48 GB). Kernels written against it execute for real on
// the host — they produce actual RRR sets and seed sets — while every
// memory access, atomic, shuffle, and allocation is *metered* against this
// cost table, and the device timeline converts metered cycles into modeled
// seconds. The paper's measured effects (warp-vs-thread scan scaling,
// dynamic-allocation overhead, PCIe transfer cost, OOM) are all functions of
// these quantities, which is what makes the substitution faithful in shape.
//
// Latency constants follow the usual microbenchmark folklore for Ampere-class
// parts (global ~400 cycles, shared ~30, atomics ~100+); they need only be
// *relatively* right for the reproduced comparisons to hold.
#pragma once

#include <cstdint>
#include <string>

namespace eim::gpusim {

struct CostModel {
  // Memory system, in cycles.
  std::uint32_t global_latency = 400;    ///< one coalesced warp transaction
  std::uint32_t shared_latency = 30;     ///< one conflict-free warp access
  std::uint32_t atomic_global = 120;     ///< uncontended global atomic
  std::uint32_t atomic_shared = 40;      ///< uncontended shared atomic
  std::uint32_t atomic_conflict = 60;    ///< extra per serialized conflicting lane

  // Compute, in cycles (warp-wide instruction).
  std::uint32_t alu_op = 4;
  std::uint32_t shuffle_op = 8;          ///< one __shfl_up_sync step

  // Runtime events.
  std::uint32_t device_malloc = 6000;    ///< in-kernel malloc/free (gIM's spills)
  double kernel_launch_us = 5.0;         ///< fixed host-side launch latency

  // Host <-> device interconnect.
  double pcie_gbytes_per_sec = 12.0;     ///< effective PCIe 4.0 x16 bandwidth
  double pcie_latency_us = 10.0;         ///< per-transfer setup latency

  // Host <-> disk spill tier (TieredRrrStore's T2; NetworkSpec-style
  // bandwidth + latency so the spill tax lands in modeled seconds,
  // docs/PERFORMANCE.md "Spill overhead").
  double disk_gbytes_per_sec = 2.0;      ///< effective NVMe sequential bandwidth
  double disk_latency_us = 100.0;        ///< per-block submit + sync latency
};

struct DeviceSpec {
  std::string name = "sim-rtx-a6000";
  std::uint32_t num_sms = 84;
  std::uint32_t warp_size = 32;
  std::uint32_t max_warps_per_sm = 48;       ///< resident warp slots
  std::uint32_t lanes_per_sm = 128;          ///< CUDA cores per SM
  std::uint64_t global_memory_bytes = 48ull << 30;
  std::uint32_t shared_memory_per_block = 48u << 10;
  double clock_ghz = 1.41;
  CostModel costs;

  /// Resident warp capacity of the whole device.
  [[nodiscard]] std::uint64_t max_resident_warps() const noexcept {
    return static_cast<std::uint64_t>(num_sms) * max_warps_per_sm;
  }
  /// Launchable threads (the paper's T_n in §3.5).
  [[nodiscard]] std::uint64_t max_resident_threads() const noexcept {
    return max_resident_warps() * warp_size;
  }
  [[nodiscard]] double cycles_to_seconds(double cycles) const noexcept {
    return cycles / (clock_ghz * 1e9);
  }
};

/// A spec scaled down for the synthetic benchmark networks: memory shrinks
/// from 48 GB to `memory_mb` so gIM's over-allocation hits OOM on the scaled
/// datasets exactly where it hits on the real ones at full scale.
[[nodiscard]] DeviceSpec make_benchmark_device(std::uint64_t memory_mb = 192);

}  // namespace eim::gpusim
