// Fixed-width ASCII table printer shared by the benchmark binaries so every
// experiment prints its rows/series the way the paper's tables do.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace eim::support {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Render with column alignment and a header rule.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  /// Format a double with `precision` digits after the point.
  static std::string num(double value, int precision = 2);
  /// Format with thousands separators (for vertex/edge counts).
  static std::string count(std::uint64_t value);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace eim::support
