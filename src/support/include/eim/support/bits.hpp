// Bit-manipulation helpers shared by the encoding and simulator layers.
//
// Everything here is constexpr-friendly and branch-light; these functions sit
// on the hot path of the bit-packed codec (eim/encoding) and the warp
// primitives (eim/gpusim).
#pragma once

#include <bit>
#include <cstdint>
#include <limits>
#include <type_traits>

namespace eim::support {

/// Number of bits needed to represent `x` in binary (0 needs 1 bit).
///
/// This is the paper's n_b = ceil(log2(x_max)) rule from §3.1, with the
/// conventional fix-ups: representing the *value* x requires
/// floor(log2(x)) + 1 bits, and an all-zero array still needs one bit per
/// element so offsets stay well-defined.
[[nodiscard]] constexpr std::uint32_t bit_width_for_value(std::uint64_t x) noexcept {
  return x == 0 ? 1u : static_cast<std::uint32_t>(std::bit_width(x));
}

/// ceil(log2(x)) for x >= 1.
[[nodiscard]] constexpr std::uint32_t ceil_log2(std::uint64_t x) noexcept {
  if (x <= 1) return 0;
  return static_cast<std::uint32_t>(std::bit_width(x - 1));
}

/// floor(log2(x)) for x >= 1.
[[nodiscard]] constexpr std::uint32_t floor_log2(std::uint64_t x) noexcept {
  return x == 0 ? 0 : static_cast<std::uint32_t>(std::bit_width(x)) - 1;
}

/// Integer ceiling division for non-negative operands.
template <typename T>
[[nodiscard]] constexpr T div_ceil(T a, T b) noexcept {
  static_assert(std::is_integral_v<T>);
  return static_cast<T>((a + b - 1) / b);
}

/// Round `a` up to the next multiple of `b` (b > 0).
template <typename T>
[[nodiscard]] constexpr T round_up(T a, T b) noexcept {
  return div_ceil(a, b) * b;
}

/// Mask with the low `n` bits set; `n` may be 0..64.
[[nodiscard]] constexpr std::uint64_t low_mask64(std::uint32_t n) noexcept {
  return n >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
}

/// Mask with the low `n` bits set; `n` may be 0..32.
[[nodiscard]] constexpr std::uint32_t low_mask32(std::uint32_t n) noexcept {
  return n >= 32 ? ~std::uint32_t{0} : ((std::uint32_t{1} << n) - 1);
}

/// True if `x` is a power of two (x > 0).
[[nodiscard]] constexpr bool is_pow2(std::uint64_t x) noexcept {
  return x != 0 && (x & (x - 1)) == 0;
}

}  // namespace eim::support
