// Wall-clock profiling: a signal-based sampling profiler plus named
// wall-only scope timers.
//
// Two instruments, two questions:
//
//  * SamplingProfiler answers "where does host wall time go?" without
//    touching the measured code: ITIMER_PROF fires SIGPROF on whichever
//    thread is burning CPU, the handler captures raw frame pointers into a
//    preallocated ring, and symbolization happens offline in
//    write_folded(). The folded-stack output feeds flamegraph tooling and
//    tools/prof_report.
//
//  * WallTimer / WallProfile answer "how long does one named hot scope
//    take?" with explicit instrumentation. WallTimer is deliberately a
//    separate type from metrics::PhaseTimer: PhaseTimer carries both the
//    modeled device clock and wall time, and the two clocks must never be
//    confused — a WallTimer has no modeled component at all. Durations
//    aggregate into the existing log2 metrics::Histogram (whole
//    nanoseconds), and the registry report serializes them under the
//    "wall" section of the eim.metrics.v3 schema.
//
// Signal-path constraints (docs/OBSERVABILITY.md "Profiling"): the SIGPROF
// handler performs no allocation, takes no locks, and calls only
// backtrace() (primed once in start() so libgcc is already loaded). Slots
// are claimed with one relaxed fetch_add; a full ring drops the sample and
// counts it instead of blocking.
//
// Platform gating: sampling requires Linux + <execinfo.h>. Elsewhere the
// class compiles but supported() is false and start() refuses; WallTimer /
// WallProfile work everywhere.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>

#include "eim/support/metrics.hpp"

#if defined(__linux__) && __has_include(<execinfo.h>)
#define EIM_PROFILER_SUPPORTED 1
#else
#define EIM_PROFILER_SUPPORTED 0
#endif

namespace eim::support::profiler {

/// Wall-clock-only duration aggregate for one named hot scope. Each scope
/// entry records whole nanoseconds into a log2 histogram, so the report
/// carries count, total, p50/p95, and max per scope. Lock-free (the
/// histogram is relaxed atomics): safe to record from pool workers.
class WallTimer {
 public:
  void record_ns(std::uint64_t ns) noexcept { hist_.observe(ns); }

  [[nodiscard]] std::uint64_t entries() const noexcept { return hist_.count(); }
  [[nodiscard]] double total_seconds() const noexcept {
    return static_cast<double>(hist_.sum()) * 1e-9;
  }
  [[nodiscard]] const metrics::Histogram& histogram() const noexcept {
    return hist_;
  }

 private:
  metrics::Histogram hist_;
};

/// RAII scope for a WallTimer. A null timer means "profiling disabled" and
/// costs nothing — not even a clock read — so hot paths can hold a nullable
/// WallTimer* and wrap unconditionally.
class ScopedWallTimer {
 public:
  explicit ScopedWallTimer(WallTimer* timer) noexcept : timer_(timer) {
    if (timer_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedWallTimer() {
    if (timer_ == nullptr) return;
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    timer_->record_ns(ns > 0 ? static_cast<std::uint64_t>(ns) : 0u);
  }
  ScopedWallTimer(const ScopedWallTimer&) = delete;
  ScopedWallTimer& operator=(const ScopedWallTimer&) = delete;

 private:
  WallTimer* timer_;
  std::chrono::steady_clock::time_point start_;
};

/// Named WallTimer store, mirroring MetricsRegistry: timers are created on
/// first lookup and stay valid for the profile's lifetime, so hot paths
/// look a handle up once and bump it lock-free thereafter.
class WallProfile {
 public:
  WallProfile() = default;
  WallProfile(const WallProfile&) = delete;
  WallProfile& operator=(const WallProfile&) = delete;

  [[nodiscard]] WallTimer& timer(std::string_view name);

  /// Serialize as one JSON object keyed by timer name, each value carrying
  /// {"entries","total_seconds","p50_ns","p95_ns","max_ns"}. Names sort
  /// lexicographically so reports diff cleanly across runs.
  void write_json(JsonWriter& w) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<WallTimer>, std::less<>> timers_;
};

/// Signal-based sampling profiler. One instance may be active at a time
/// (the SIGPROF disposition is process-global); a second concurrent
/// start() returns false.
class SamplingProfiler {
 public:
  struct Options {
    std::uint32_t hz = 97;  ///< SIGPROF rate against consumed CPU time.
    std::size_t max_samples = 1u << 15;  ///< Ring capacity; later samples drop.
  };

  /// True when this build/platform can capture stacks at all.
  [[nodiscard]] static bool supported() noexcept;

  explicit SamplingProfiler(Options options);
  ~SamplingProfiler();
  SamplingProfiler(const SamplingProfiler&) = delete;
  SamplingProfiler& operator=(const SamplingProfiler&) = delete;

  /// Install the SIGPROF handler and arm ITIMER_PROF. Returns false when
  /// unsupported or when another instance is already active.
  bool start();
  /// Disarm the timer and restore the previous SIGPROF disposition.
  /// Idempotent; the destructor calls it.
  void stop();

  [[nodiscard]] bool running() const noexcept { return running_; }
  /// Samples captured so far (excludes drops).
  [[nodiscard]] std::size_t num_samples() const noexcept;
  /// Samples lost because the ring was full.
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Symbolize the captured ring and write folded-stack ("collapsed")
  /// lines: "outermost;...;leaf <count>\n", aggregated and sorted. Frames
  /// that fail dladdr render as raw "0x..." addresses; flamegraph tooling
  /// and prof_report both accept that. Call after stop().
  void write_folded(std::ostream& out) const;

  /// Max frames kept per sample; deeper stacks truncate at the root end.
  static constexpr std::size_t kMaxFrames = 64;

 private:
  static void handle_signal(int);

  Options options_;
  bool running_ = false;
  // Flat preallocated ring: slot s owns frames_[s*kMaxFrames .. +kMaxFrames).
  std::unique_ptr<void*[]> frames_;
  std::unique_ptr<std::atomic<std::int32_t>[]> depths_;
  std::atomic<std::size_t> next_slot_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace eim::support::profiler
