// Exception hierarchy for the eIM library.
//
// The GPU simulator throws DeviceOutOfMemoryError when a kernel's working set
// exceeds the configured device-memory budget; the benchmark harness catches
// it to reproduce the paper's "OOM" table cells (Tables 2-5, Fig. 8).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace eim::support {

/// Base class for all errors raised by the library.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Caller passed an argument outside the documented domain.
class InvalidArgumentError : public Error {
 public:
  using Error::Error;
};

/// A file could not be read/written or had an unexpected format.
class IoError : public Error {
 public:
  using Error::Error;
};

/// Simulated device memory was exhausted.
///
/// Carries how much was requested and how much was available so harnesses can
/// report the shortfall the way the paper reports gIM's OOM failures.
class DeviceOutOfMemoryError : public Error {
 public:
  DeviceOutOfMemoryError(std::uint64_t requested_bytes, std::uint64_t available_bytes)
      : Error("device out of memory: requested " + std::to_string(requested_bytes) +
              " bytes, available " + std::to_string(available_bytes) + " bytes"),
        requested_(requested_bytes),
        available_(available_bytes) {}

  [[nodiscard]] std::uint64_t requested_bytes() const noexcept { return requested_; }
  [[nodiscard]] std::uint64_t available_bytes() const noexcept { return available_; }

 private:
  std::uint64_t requested_;
  std::uint64_t available_;
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* expr, const char* file, int line,
                                      const std::string& message);
}  // namespace detail

/// Invariant check that survives NDEBUG: throws Error on failure.
///
/// Used at module boundaries; hot inner loops use plain assert().
#define EIM_CHECK(expr)                                                        \
  do {                                                                         \
    if (!(expr)) {                                                             \
      ::eim::support::detail::throw_check_failure(#expr, __FILE__, __LINE__,   \
                                                  std::string{});              \
    }                                                                          \
  } while (false)

#define EIM_CHECK_MSG(expr, msg)                                               \
  do {                                                                         \
    if (!(expr)) {                                                             \
      ::eim::support::detail::throw_check_failure(#expr, __FILE__, __LINE__,   \
                                                  (msg));                      \
    }                                                                          \
  } while (false)

}  // namespace eim::support
