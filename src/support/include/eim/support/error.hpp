// Exception hierarchy for the eIM library.
//
// The GPU simulator throws DeviceOutOfMemoryError when a kernel's working set
// exceeds the configured device-memory budget; the benchmark harness catches
// it to reproduce the paper's "OOM" table cells (Tables 2-5, Fig. 8).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace eim::support {

/// Base class for all errors raised by the library.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Caller passed an argument outside the documented domain.
class InvalidArgumentError : public Error {
 public:
  using Error::Error;
};

/// A file could not be read/written or had an unexpected format.
class IoError : public Error {
 public:
  using Error::Error;
};

/// Simulated device memory was exhausted.
///
/// Carries how much was requested and how much was available so harnesses can
/// report the shortfall the way the paper reports gIM's OOM failures.
class DeviceOutOfMemoryError : public Error {
 public:
  DeviceOutOfMemoryError(std::uint64_t requested_bytes, std::uint64_t available_bytes)
      : Error("device out of memory: requested " + std::to_string(requested_bytes) +
              " bytes, available " + std::to_string(available_bytes) + " bytes"),
        requested_(requested_bytes),
        available_(available_bytes) {}

  [[nodiscard]] std::uint64_t requested_bytes() const noexcept { return requested_; }
  [[nodiscard]] std::uint64_t available_bytes() const noexcept { return available_; }

 private:
  std::uint64_t requested_;
  std::uint64_t available_;
};

/// A transient fault on the simulated device: an injected kernel-launch or
/// interconnect-transfer failure. Retryable — `support::retry` catches
/// exactly this class; everything else propagates.
class DeviceFaultError : public Error {
 public:
  DeviceFaultError(const std::string& what, std::uint64_t ordinal)
      : Error("device fault: " + what + " (ordinal " + std::to_string(ordinal) + ")"),
        ordinal_(ordinal) {}

  /// Which kernel-launch / transfer ordinal faulted (deterministic key).
  [[nodiscard]] std::uint64_t ordinal() const noexcept { return ordinal_; }

 private:
  std::uint64_t ordinal_;
};

/// The device disappeared permanently (simulated device loss). Not
/// retryable on the same device; the multi-GPU layer redistributes the lost
/// shard to survivors instead (see docs/RESILIENCE.md).
class DeviceLostError : public Error {
 public:
  explicit DeviceLostError(const std::string& what) : Error("device lost: " + what) {}

 protected:
  /// Derived classes (NodeLostError) supply their own prefix.
  struct Raw {};
  DeviceLostError(Raw, const std::string& what) : Error(what) {}
};

/// A transient fault on a modeled cluster interconnect link: one collective
/// attempt failed on one node's NIC. Derives from DeviceFaultError so
/// `support::retry` treats it as retryable; the multi-node layer escalates
/// retry exhaustion to node-dead (docs/RESILIENCE.md, "Cluster failover").
class LinkFaultError : public DeviceFaultError {
 public:
  LinkFaultError(const std::string& what, std::uint64_t link_transfer_ordinal,
                 std::uint32_t node)
      : DeviceFaultError("link: " + what + " (node " + std::to_string(node) + ")",
                         link_transfer_ordinal),
        node_(node) {}

  /// Which cluster node's link faulted (deterministic escalation target).
  [[nodiscard]] std::uint32_t node() const noexcept { return node_; }

 private:
  std::uint32_t node_;
};

/// A whole cluster node died (scripted loss at a collective ordinal or
/// modeled time, or a link whose transient faults exhausted the retry
/// budget). Permanent like DeviceLostError — it derives from it so generic
/// device-loss handling still applies — but carries the node index so the
/// multi-node layer can reshard exactly that node's residual sample range.
class NodeLostError : public DeviceLostError {
 public:
  NodeLostError(const std::string& what, std::uint32_t node)
      : DeviceLostError(Raw{}, "node lost: " + what + " (node " +
                                   std::to_string(node) + ")"),
        node_(node) {}

  [[nodiscard]] std::uint32_t node() const noexcept { return node_; }

 private:
  std::uint32_t node_;
};

/// Unrecoverable cluster loss: the surviving node count fell below the
/// configured quorum floor (or every node died) and the degrade policy did
/// not permit a best-effort answer. Maps to its own exit code (6,
/// "cluster_lost") so orchestrators can tell "re-run elsewhere" apart from
/// a single-device fault (docs/RESILIENCE.md).
class ClusterQuorumError : public Error {
 public:
  ClusterQuorumError(const std::string& what, std::uint32_t alive_nodes,
                     std::uint32_t quorum)
      : Error("cluster quorum lost: " + what + " (" + std::to_string(alive_nodes) +
              " nodes alive, quorum " + std::to_string(quorum) + ")"),
        alive_(alive_nodes),
        quorum_(quorum) {}

  [[nodiscard]] std::uint32_t alive_nodes() const noexcept { return alive_; }
  [[nodiscard]] std::uint32_t quorum() const noexcept { return quorum_; }

 private:
  std::uint32_t alive_;
  std::uint32_t quorum_;
};

/// Simulated process death, fired by the fault plan at a scripted kernel
/// ordinal — the in-simulation stand-in for SIGKILL. Nothing in memory is
/// assumed to survive: checkpoint/resume tests catch this, discard every
/// live object, and restart from the last on-disk snapshot
/// (docs/RESILIENCE.md). Not retryable and not a device fault.
class ProcessAbortError : public Error {
 public:
  ProcessAbortError(const std::string& what, std::uint64_t ordinal)
      : Error("process abort: " + what + " (kernel ordinal " +
              std::to_string(ordinal) + ")"),
        ordinal_(ordinal) {}

  [[nodiscard]] std::uint64_t ordinal() const noexcept { return ordinal_; }

 private:
  std::uint64_t ordinal_;
};

// Process exit codes for tools mapping the hierarchy above (eim_cli et al.).
inline constexpr int kExitOk = 0;
inline constexpr int kExitError = 1;        ///< unclassified library error
inline constexpr int kExitBadArgs = 2;      ///< InvalidArgumentError / CLI misuse
inline constexpr int kExitIo = 3;           ///< IoError
inline constexpr int kExitDeviceOom = 4;    ///< DeviceOutOfMemoryError
inline constexpr int kExitDeviceFault = 5;  ///< DeviceFaultError / DeviceLostError
inline constexpr int kExitClusterLost = 6;  ///< ClusterQuorumError (quorum unreachable)

/// Map an error to its process exit code, plus a short machine-readable
/// kind string ("bad_args", "io", "device_oom", "device_fault",
/// "cluster_lost", "error") for one-line structured stderr reports.
[[nodiscard]] int exit_code_for(const Error& e) noexcept;
[[nodiscard]] const char* error_kind_for(const Error& e) noexcept;

namespace detail {
[[noreturn]] void throw_check_failure(const char* expr, const char* file, int line,
                                      const std::string& message);
}  // namespace detail

/// Invariant check that survives NDEBUG: throws Error on failure.
///
/// Used at module boundaries; hot inner loops use plain assert().
#define EIM_CHECK(expr)                                                        \
  do {                                                                         \
    if (!(expr)) {                                                             \
      ::eim::support::detail::throw_check_failure(#expr, __FILE__, __LINE__,   \
                                                  std::string{});              \
    }                                                                          \
  } while (false)

#define EIM_CHECK_MSG(expr, msg)                                               \
  do {                                                                         \
    if (!(expr)) {                                                             \
      ::eim::support::detail::throw_check_failure(#expr, __FILE__, __LINE__,   \
                                                  (msg));                      \
    }                                                                          \
  } while (false)

}  // namespace eim::support
