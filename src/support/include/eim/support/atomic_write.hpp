// Crash-safe file emission: write-temp / flush / verify / rename.
//
// Every artifact the tools produce (metrics reports, traces, bench
// envelopes, checkpoint snapshots) goes through atomic_write_file so a
// crash — or a full disk — can never leave a torn or empty file at the
// destination path: either the previous contents survive untouched or the
// complete new contents appear, because the POSIX rename(2) that publishes
// the temp file is atomic within a filesystem. The temp file lives in the
// destination's directory (rename across filesystems is not atomic) and is
// unlinked on any failure.
#pragma once

#include <functional>
#include <ostream>
#include <string>
#include <string_view>

namespace eim::support {

/// Write `contents` to `path` atomically. Throws IoError when the temp file
/// cannot be created, written, flushed, or renamed; on failure the
/// destination is left exactly as it was and the temp file is removed.
void atomic_write_file(const std::string& path, std::string_view contents);

/// Serialize through `producer` into a memory buffer, verify the stream is
/// still good (a silently failed write must not be published), then
/// atomically install the buffer at `path`. The convenience wrapper for
/// JSON artifact emitters that take an std::ostream.
void atomic_write_text(const std::string& path,
                       const std::function<void(std::ostream&)>& producer);

/// The temp-file name `atomic_write_file` stages through (exposed so crash
/// tests and cleanup tooling can reason about leftovers): `path` +
/// ".tmp.<pid>".
[[nodiscard]] std::string atomic_write_temp_path(const std::string& path);

}  // namespace eim::support
