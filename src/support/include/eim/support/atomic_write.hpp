// Crash-safe file emission: write-temp / flush / verify / rename.
//
// Every artifact the tools produce (metrics reports, traces, bench
// envelopes, checkpoint snapshots) goes through atomic_write_file so a
// crash — or a full disk — can never leave a torn or empty file at the
// destination path: either the previous contents survive untouched or the
// complete new contents appear, because the POSIX rename(2) that publishes
// the temp file is atomic within a filesystem. The temp file lives in the
// destination's directory (rename across filesystems is not atomic) and is
// unlinked on any failure.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <string_view>

namespace eim::support {

/// Write `contents` to `path` atomically. Throws IoError when the temp file
/// cannot be created, written, synced, or renamed; on failure the
/// destination is left exactly as it was and the temp file is removed. On
/// POSIX the temp file is fsync'd before the rename publishes it, so a
/// power loss after atomic_write_file returns cannot resurrect a torn file.
void atomic_write_file(const std::string& path, std::string_view contents);

/// Deterministic fault injection for atomic_write_file (test-only; the spill
/// store arms `short_write_after` from FaultPlan::spill_short_write_ordinals
/// to model ENOSPC mid-file). Each armed fault fires on every subsequent
/// call until cleared with `set_atomic_write_faults({})`. Not thread-safe:
/// arm and clear from the same serial context as the write under test.
struct AtomicWriteFaults {
  bool fail_create = false;           ///< open/create of the temp file fails
  std::int64_t short_write_after = -1;  ///< accept N bytes then ENOSPC (-1 = off)
  bool fail_fsync = false;            ///< fsync of the temp file fails
  bool fail_rename = false;           ///< the publishing rename fails
};
void set_atomic_write_faults(const AtomicWriteFaults& faults) noexcept;

/// Serialize through `producer` into a memory buffer, verify the stream is
/// still good (a silently failed write must not be published), then
/// atomically install the buffer at `path`. The convenience wrapper for
/// JSON artifact emitters that take an std::ostream.
void atomic_write_text(const std::string& path,
                       const std::function<void(std::ostream&)>& producer);

/// The temp-file name `atomic_write_file` stages through (exposed so crash
/// tests and cleanup tooling can reason about leftovers): `path` +
/// ".tmp.<pid>".
[[nodiscard]] std::string atomic_write_temp_path(const std::string& path);

}  // namespace eim::support
