// CRC-32C (Castagnoli, polynomial 0x1EDC6F41) over byte ranges.
//
// The checksum behind every snapshot section and artifact integrity check
// (support/snapshot.hpp): software slice-by-one with a constexpr-built
// table — fast enough for checkpoint-sized payloads and dependency-free.
// The reflected polynomial 0x82F63B78 matches SSE4.2 crc32 instructions and
// iSCSI/ext4, so externally produced checksums of the same bytes agree.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace eim::support {

namespace detail {

inline constexpr std::array<std::uint32_t, 256> make_crc32c_table() noexcept {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) != 0 ? 0x82F63B78u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32cTable = make_crc32c_table();

}  // namespace detail

/// Incremental update: feed `prev` the running value from a previous call
/// (or leave the default to start a fresh checksum).
[[nodiscard]] constexpr std::uint32_t crc32c(std::span<const std::uint8_t> bytes,
                                             std::uint32_t prev = 0) noexcept {
  std::uint32_t crc = ~prev;
  for (const std::uint8_t b : bytes) {
    crc = (crc >> 8) ^ detail::kCrc32cTable[(crc ^ b) & 0xFFu];
  }
  return ~crc;
}

[[nodiscard]] inline std::uint32_t crc32c(std::string_view text,
                                          std::uint32_t prev = 0) noexcept {
  return crc32c(std::span<const std::uint8_t>(
                    reinterpret_cast<const std::uint8_t*>(text.data()), text.size()),
                prev);
}

}  // namespace eim::support
