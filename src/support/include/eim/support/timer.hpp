// Wall-clock timing helper for the host side of benchmarks.
// Simulated device time lives in eim/gpusim (DeviceTimeline), not here.
#pragma once

#include <chrono>

namespace eim::support {

class WallTimer {
 public:
  WallTimer() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  [[nodiscard]] double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace eim::support
