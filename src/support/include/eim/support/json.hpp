// Minimal JSON writer (no parsing) for machine-readable tool output.
//
// Streaming, allocation-light, escapes strings per RFC 8259. Used by
// eim_cli's --json mode so results pipe straight into analysis scripts.
#pragma once

#include <cstdint>
#include <ostream>
#include <string_view>
#include <vector>

namespace eim::support {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(&out) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array(std::string_view key = {});
  JsonWriter& end_array();

  JsonWriter& key(std::string_view name);
  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  JsonWriter& value(double number);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(bool flag);
  JsonWriter& null();

  /// Splice pre-serialized JSON verbatim (caller guarantees validity).
  /// Lets one document embed another without re-parsing — e.g. a bench
  /// report embedding a per-cell metrics snapshot.
  JsonWriter& raw_value(std::string_view json);

  /// key + value in one call.
  template <typename T>
  JsonWriter& field(std::string_view name, T&& v) {
    key(name);
    return value(std::forward<T>(v));
  }

 private:
  void separator();
  void escape(std::string_view text);

  std::ostream* out_;
  /// true = a value has been emitted at this nesting level.
  std::vector<bool> has_value_{};
  bool pending_key_ = false;
};

}  // namespace eim::support
