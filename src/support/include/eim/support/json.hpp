// Minimal JSON writer + recursive-descent parser for machine-readable
// tool output.
//
// The writer is streaming, allocation-light, and escapes strings per
// RFC 8259; eim_cli's --json mode pipes straight into analysis scripts.
// The parser builds a JsonValue tree (object members keep their source
// order, so a parsed document round-trips through JsonValue::write
// structurally unchanged) and backs the trace/metrics validation tests
// and tools/bench_diff.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "eim/support/error.hpp"

namespace eim::support {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(&out) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array(std::string_view key = {});
  JsonWriter& end_array();

  JsonWriter& key(std::string_view name);
  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  JsonWriter& value(double number);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(bool flag);
  JsonWriter& null();

  /// Splice pre-serialized JSON verbatim (caller guarantees validity).
  /// Lets one document embed another without re-parsing — e.g. a bench
  /// report embedding a per-cell metrics snapshot.
  JsonWriter& raw_value(std::string_view json);

  /// key + value in one call.
  template <typename T>
  JsonWriter& field(std::string_view name, T&& v) {
    key(name);
    return value(std::forward<T>(v));
  }

 private:
  void separator();
  void escape(std::string_view text);

  std::ostream* out_;
  /// true = a value has been emitted at this nesting level.
  std::vector<bool> has_value_{};
  bool pending_key_ = false;
};

/// A malformed JSON document; carries the byte offset of the failure.
class JsonParseError : public Error {
 public:
  JsonParseError(const std::string& what, std::size_t offset)
      : Error("JSON parse error at offset " + std::to_string(offset) + ": " + what),
        offset_(offset) {}

  [[nodiscard]] std::size_t offset() const noexcept { return offset_; }

 private:
  std::size_t offset_;
};

/// Parsed JSON document node. Numbers keep their integer-ness (an integral
/// token that fits int64 stays exact; everything else is a double); object
/// members preserve source order so a parse -> write -> parse trip is
/// structurally the identity.
class JsonValue {
 public:
  enum class Kind { Null, Bool, Int, Double, String, Array, Object };
  using Member = std::pair<std::string, JsonValue>;

  JsonValue() = default;

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::Null; }
  [[nodiscard]] bool is_object() const noexcept { return kind_ == Kind::Object; }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::Array; }
  [[nodiscard]] bool is_string() const noexcept { return kind_ == Kind::String; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind_ == Kind::Int || kind_ == Kind::Double;
  }

  /// Typed accessors; EIM_CHECK-fail on kind mismatch (as_double accepts
  /// Int and widens).
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<JsonValue>& items() const;
  [[nodiscard]] const std::vector<Member>& members() const;

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept;
  /// find() + EIM_CHECK that the member exists.
  [[nodiscard]] const JsonValue& at(std::string_view key) const;

  /// Serialize this tree through the streaming writer (round-trip path).
  void write(JsonWriter& w) const;

  /// Structural equality (object member *order* is ignored; numbers compare
  /// by value across Int/Double).
  [[nodiscard]] bool structurally_equal(const JsonValue& other) const;

  static JsonValue make_null() { return JsonValue{}; }
  static JsonValue make_bool(bool b);
  static JsonValue make_int(std::int64_t i);
  static JsonValue make_double(double d);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(std::vector<JsonValue> items);
  static JsonValue make_object(std::vector<Member> members);

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<Member> members_;
};

/// Parse one complete JSON document (trailing whitespace allowed, trailing
/// garbage is an error). Throws JsonParseError on malformed input.
[[nodiscard]] JsonValue parse_json(std::string_view text);

}  // namespace eim::support
