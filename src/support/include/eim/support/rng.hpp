// Counter-based random number generation.
//
// All randomness in the library flows through Philox4x32-10 (Salmon et al.,
// SC'11), a counter-based generator: output = f(key, counter). Two properties
// matter for this codebase:
//
//  * Determinism under parallelism. A sampler seeded with (seed, stream)
//    produces the same numbers no matter which CPU thread runs it, so
//    simulator kernels are bit-reproducible regardless of scheduling —
//    mirroring how CUDA samplers derive per-thread Philox streams.
//  * Cheap splitting. Every (block, sample, lane) gets an independent stream
//    by mixing ids into the key; no shared state, no locks.
#pragma once

#include <array>
#include <cstdint>

namespace eim::support {

/// Raw Philox4x32-10 block function: 128-bit counter + 64-bit key -> 128 bits.
struct Philox4x32 {
  using Counter = std::array<std::uint32_t, 4>;
  using Key = std::array<std::uint32_t, 2>;

  static constexpr std::uint32_t kMul0 = 0xD2511F53u;
  static constexpr std::uint32_t kMul1 = 0xCD9E8D57u;
  static constexpr std::uint32_t kWeyl0 = 0x9E3779B9u;
  static constexpr std::uint32_t kWeyl1 = 0xBB67AE85u;
  static constexpr int kRounds = 10;

  /// One keyed permutation of the counter block.
  [[nodiscard]] static Counter apply(Counter ctr, Key key) noexcept {
    for (int r = 0; r < kRounds; ++r) {
      const std::uint64_t p0 = static_cast<std::uint64_t>(kMul0) * ctr[0];
      const std::uint64_t p1 = static_cast<std::uint64_t>(kMul1) * ctr[2];
      const auto hi0 = static_cast<std::uint32_t>(p0 >> 32);
      const auto lo0 = static_cast<std::uint32_t>(p0);
      const auto hi1 = static_cast<std::uint32_t>(p1 >> 32);
      const auto lo1 = static_cast<std::uint32_t>(p1);
      ctr = {hi1 ^ ctr[1] ^ key[0], lo1, hi0 ^ ctr[3] ^ key[1], lo0};
      key[0] += kWeyl0;
      key[1] += kWeyl1;
    }
    return ctr;
  }
};

/// Mix an arbitrary list of 64-bit ids into a single stream id
/// (SplitMix64 finalizer chain). Used to derive independent sub-streams,
/// e.g. stream = derive_stream(block_id, sample_index).
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

template <typename... Ids>
[[nodiscard]] constexpr std::uint64_t derive_stream(std::uint64_t first, Ids... rest) noexcept {
  std::uint64_t h = splitmix64(first);
  // Order-sensitive combine (hash_combine style): the running hash is
  // remixed before each xor so (a, b) and (b, a) land in different streams.
  ((h = splitmix64(h * 0x9E3779B97F4A7C15ull ^
                   splitmix64(static_cast<std::uint64_t>(rest)))),
   ...);
  return h;
}

/// A deterministic random stream identified by (seed, stream).
///
/// Satisfies the UniformRandomBitGenerator requirements, so it also plugs
/// into <random> distributions where convenient.
class RandomStream {
 public:
  using result_type = std::uint32_t;

  RandomStream() noexcept : RandomStream(0, 0) {}

  RandomStream(std::uint64_t seed, std::uint64_t stream) noexcept
      : key_{static_cast<std::uint32_t>(seed), static_cast<std::uint32_t>(seed >> 32)},
        base_{static_cast<std::uint32_t>(stream), static_cast<std::uint32_t>(stream >> 32)},
        counter_(0),
        cached_(0) {}

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return 0xFFFFFFFFu; }

  /// Next 32 uniform random bits.
  result_type operator()() noexcept { return next_u32(); }

  result_type next_u32() noexcept {
    if (cached_ == 0) refill();
    return block_[--cached_];
  }

  std::uint64_t next_u64() noexcept {
    const std::uint64_t hi = next_u32();
    return (hi << 32) | next_u32();
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [0, 1); the precision a CUDA curand_uniform would give.
  float next_float() noexcept {
    return static_cast<float>(next_u32() >> 8) * 0x1.0p-24f;
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift rejection.
  std::uint32_t next_below(std::uint32_t bound) noexcept {
    if (bound <= 1) return 0;
    std::uint64_t m = static_cast<std::uint64_t>(next_u32()) * bound;
    auto lo = static_cast<std::uint32_t>(m);
    if (lo < bound) {
      const std::uint32_t threshold = (0u - bound) % bound;
      while (lo < threshold) {
        m = static_cast<std::uint64_t>(next_u32()) * bound;
        lo = static_cast<std::uint32_t>(m);
      }
    }
    return static_cast<std::uint32_t>(m >> 32);
  }

  /// Reposition the stream at draw-block `counter` (each block is 4 u32s).
  void seek(std::uint64_t counter) noexcept {
    counter_ = counter;
    cached_ = 0;
  }

  [[nodiscard]] std::uint64_t block_counter() const noexcept { return counter_; }

 private:
  void refill() noexcept {
    const Philox4x32::Counter ctr{static_cast<std::uint32_t>(counter_),
                                  static_cast<std::uint32_t>(counter_ >> 32), base_[0],
                                  base_[1]};
    block_ = Philox4x32::apply(ctr, key_);
    ++counter_;
    cached_ = 4;
  }

  Philox4x32::Key key_;
  std::array<std::uint32_t, 2> base_;
  std::uint64_t counter_;
  Philox4x32::Counter block_{};
  unsigned cached_;
};

}  // namespace eim::support
