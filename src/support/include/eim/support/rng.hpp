// Counter-based random number generation.
//
// All randomness in the library flows through Philox4x32-10 (Salmon et al.,
// SC'11), a counter-based generator: output = f(key, counter). Two properties
// matter for this codebase:
//
//  * Determinism under parallelism. A sampler seeded with (seed, stream)
//    produces the same numbers no matter which CPU thread runs it, so
//    simulator kernels are bit-reproducible regardless of scheduling —
//    mirroring how CUDA samplers derive per-thread Philox streams.
//  * Cheap splitting. Every (block, sample, lane) gets an independent stream
//    by mixing ids into the key; no shared state, no locks.
#pragma once

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "eim/support/profiler.hpp"

namespace eim::support {

/// Raw Philox4x32-10 block function: 128-bit counter + 64-bit key -> 128 bits.
struct Philox4x32 {
  using Counter = std::array<std::uint32_t, 4>;
  using Key = std::array<std::uint32_t, 2>;

  static constexpr std::uint32_t kMul0 = 0xD2511F53u;
  static constexpr std::uint32_t kMul1 = 0xCD9E8D57u;
  static constexpr std::uint32_t kWeyl0 = 0x9E3779B9u;
  static constexpr std::uint32_t kWeyl1 = 0xBB67AE85u;
  static constexpr int kRounds = 10;

  /// One keyed permutation of the counter block.
  [[nodiscard]] static Counter apply(Counter ctr, Key key) noexcept {
    for (int r = 0; r < kRounds; ++r) {
      const std::uint64_t p0 = static_cast<std::uint64_t>(kMul0) * ctr[0];
      const std::uint64_t p1 = static_cast<std::uint64_t>(kMul1) * ctr[2];
      const auto hi0 = static_cast<std::uint32_t>(p0 >> 32);
      const auto lo0 = static_cast<std::uint32_t>(p0);
      const auto hi1 = static_cast<std::uint32_t>(p1 >> 32);
      const auto lo1 = static_cast<std::uint32_t>(p1);
      ctr = {hi1 ^ ctr[1] ^ key[0], lo1, hi0 ^ ctr[3] ^ key[1], lo0};
      key[0] += kWeyl0;
      key[1] += kWeyl1;
    }
    return ctr;
  }
};

/// Mix an arbitrary list of 64-bit ids into a single stream id
/// (SplitMix64 finalizer chain). Used to derive independent sub-streams,
/// e.g. stream = derive_stream(block_id, sample_index).
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

template <typename... Ids>
[[nodiscard]] constexpr std::uint64_t derive_stream(std::uint64_t first, Ids... rest) noexcept {
  std::uint64_t h = splitmix64(first);
  // Order-sensitive combine (hash_combine style): the running hash is
  // remixed before each xor so (a, b) and (b, a) land in different streams.
  ((h = splitmix64(h * 0x9E3779B97F4A7C15ull ^
                   splitmix64(static_cast<std::uint64_t>(rest)))),
   ...);
  return h;
}

/// A deterministic random stream identified by (seed, stream).
///
/// Satisfies the UniformRandomBitGenerator requirements, so it also plugs
/// into <random> distributions where convenient.
class RandomStream {
 public:
  using result_type = std::uint32_t;

  RandomStream() noexcept : RandomStream(0, 0) {}

  RandomStream(std::uint64_t seed, std::uint64_t stream) noexcept
      : key_{static_cast<std::uint32_t>(seed), static_cast<std::uint32_t>(seed >> 32)},
        base_{static_cast<std::uint32_t>(stream), static_cast<std::uint32_t>(stream >> 32)},
        counter_(0),
        cached_(0) {}

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return 0xFFFFFFFFu; }

  /// Next 32 uniform random bits.
  result_type operator()() noexcept { return next_u32(); }

  result_type next_u32() noexcept {
    if (cached_ == 0) refill();
    return block_[--cached_];
  }

  std::uint64_t next_u64() noexcept {
    const std::uint64_t hi = next_u32();
    return (hi << 32) | next_u32();
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [0, 1); the precision a CUDA curand_uniform would give.
  float next_float() noexcept {
    return static_cast<float>(next_u32() >> 8) * 0x1.0p-24f;
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift rejection.
  std::uint32_t next_below(std::uint32_t bound) noexcept {
    if (bound <= 1) return 0;
    std::uint64_t m = static_cast<std::uint64_t>(next_u32()) * bound;
    auto lo = static_cast<std::uint32_t>(m);
    if (lo < bound) {
      const std::uint32_t threshold = (0u - bound) % bound;
      while (lo < threshold) {
        m = static_cast<std::uint64_t>(next_u32()) * bound;
        lo = static_cast<std::uint32_t>(m);
      }
    }
    return static_cast<std::uint32_t>(m >> 32);
  }

  /// Bulk generation: exactly the next `out.size()` values of the scalar
  /// next_u32() sequence, leaving the stream in the same state as that many
  /// scalar calls. The whole-block middle runs the Philox rounds over a
  /// batch of independent counters laid out lane-wise, so the compiler can
  /// vectorize the 32x32->64 multiplies across blocks.
  void fill_u32(std::span<std::uint32_t> out) noexcept {
    fill_impl(out.data(), out.size(), [](std::uint32_t v) { return v; });
  }

  /// Bulk next_float(): bit-identical to out.size() scalar calls.
  void fill_floats(std::span<float> out) noexcept {
    fill_impl(out.data(), out.size(), [](std::uint32_t v) {
      return static_cast<float>(v >> 8) * 0x1.0p-24f;
    });
  }

  /// Reposition the stream at draw-block `counter` (each block is 4 u32s).
  void seek(std::uint64_t counter) noexcept {
    counter_ = counter;
    cached_ = 0;
  }

  [[nodiscard]] std::uint64_t block_counter() const noexcept { return counter_; }

  /// u32 draws consumed since construction (or the last seek target). The
  /// pair u32_position()/seek_u32() brackets speculative bulk generation:
  /// a consumer may over-generate draws and then rewind to the exact
  /// mid-block position of what it actually used.
  [[nodiscard]] std::uint64_t u32_position() const noexcept {
    return counter_ * 4 - cached_;
  }

  /// Reposition so the next next_u32() is draw number `pos` of the stream.
  void seek_u32(std::uint64_t pos) noexcept {
    seek(pos >> 2);
    for (std::uint64_t i = 0; i < (pos & 3); ++i) (void)next_u32();
  }

 private:
  // Whole-block middle of a bulk fill: writes 4 * num_blocks draws in scalar
  // consumption order and advances counter_. Out of line (rng.cpp) and
  // compiled as runtime-dispatched ISA clones — the Philox lane loop
  // vectorizes to whatever width the host CPU has, while this header (and
  // the committed baselines) stay arch-portable.
  void fill_blocks(std::uint32_t* out, std::size_t num_blocks) noexcept;
  void fill_blocks(float* out, std::size_t num_blocks) noexcept;

  template <typename Out, typename Map>
  void fill_impl(Out* out, std::size_t n, Map map) noexcept {
    std::size_t i = 0;
    // Drain the cached partial block first — scalar consumption order.
    while (cached_ != 0 && i < n) out[i++] = map(block_[--cached_]);

    const std::size_t blocks = (n - i) / 4;
    if (blocks != 0) {
      fill_blocks(out + i, blocks);
      i += 4 * blocks;
    }
    // Tail: refill the cache like the scalar path would and take a prefix,
    // leaving cached_ mid-block exactly as n scalar calls would have.
    if (i < n) {
      refill();
      while (i < n) out[i++] = map(block_[--cached_]);
    }
  }

  void refill() noexcept {
    const Philox4x32::Counter ctr{static_cast<std::uint32_t>(counter_),
                                  static_cast<std::uint32_t>(counter_ >> 32), base_[0],
                                  base_[1]};
    block_ = Philox4x32::apply(ctr, key_);
    ++counter_;
    cached_ = 4;
  }

  Philox4x32::Key key_;
  std::array<std::uint32_t, 2> base_;
  std::uint64_t counter_;
  Philox4x32::Counter block_{};
  unsigned cached_;
};

/// "No success in any remaining trial" sentinel for geometric_skip.
inline constexpr std::uint64_t kGeometricNever = ~std::uint64_t{0};

/// One geometric skip-ahead draw: the number of Bernoulli(p) failures before
/// the next success, sampled by inversion from a single uniform —
/// floor(log(u) / log1p(-p)). `log1p_neg_p` is the caller-cached log1p(-p),
/// which must be finite and strictly negative (0 < p < 1; the p == 0 and
/// p >= 1 degenerate cases take their own branches in the sampler).
///
/// With p quantized to the 24-bit draw grid (graph::grid_success_probability)
/// the skip count is distributed exactly like counting consecutive failures
/// of the strict `next_float() < w` per-edge test — the basis of the
/// fast-draw mode's statistical equivalence to the exact sampler.
///
/// Kept out of line ([[gnu::noinline]], like FloatDrawBuffer::refill) so
/// sampling-profiler frames attribute skip arithmetic to the rng.skip
/// bucket instead of dissolving into the BFS loop.
[[gnu::noinline]] inline std::uint64_t geometric_skip(RandomStream& rng,
                                                      double log1p_neg_p) noexcept {
  const double u = rng.next_double();
  // next_double() is in [0, 1); u == 0 would send log() to -inf, which is
  // the correct limit (an infinitely long failure run) — map it explicitly.
  if (u <= 0.0) return kGeometricNever;
  const double k = std::log(u) / log1p_neg_p;
  if (!(k < static_cast<double>(kGeometricNever))) return kGeometricNever;
  return static_cast<std::uint64_t>(k);
}

/// FIFO over a RandomStream's next_float() sequence, refilled with
/// fill_floats so the hot consumers (the Monte Carlo BFS edge sweeps) read
/// activation draws from a flat array instead of paying a function call and
/// a refill branch per draw. Draws are handed out in exact stream order, so
/// a loop that takes one draw per unvisited neighbor consumes the identical
/// sequence the scalar code did — bit-parity by construction.
///
/// The consumption state lives in a by-value Cursor the caller keeps in
/// locals: the edge sweep reads `c.p[t]` and bumps `c.p`/`c.avail` itself,
/// so the hot loop touches no buffer members at all (member traffic per
/// vertex was measurably slower across deep cascades). Only a refill — rare
/// by construction — goes through the buffer object.
///
/// Usage per sample:
///   auto c = buf.begin_sample(rng);
///   ... per frontier vertex: c = buf.ensure(c, rng, degree, pending);
///       ... c.p[t++] ... then c.p += t; c.avail -= t;
///   buf.finish_sample(rng, c);  // rewinds rng to exactly what was consumed
///
/// finish_sample repositions the stream at the draws actually taken, so
/// over-generated draws (visited neighbors skip theirs) are observationally
/// free: callers that keep using `rng` afterwards see the scalar sequence.
class FloatDrawBuffer {
 public:
  /// Register-resident view of the unconsumed draws: `p` is the next draw,
  /// `avail` how many are valid at `p`. Invalidated by ensure() — always
  /// reassign from its return value.
  struct Cursor {
    const float* p;
    std::size_t avail;
  };

  [[nodiscard]] Cursor begin_sample(const RandomStream& rng) noexcept {
    generated_ = 0;
    start_ = rng.u32_position();
    return Cursor{buf_.data(), 0};
  }

  /// Make at least `n` draws available at the returned cursor. When a
  /// refill is needed it is sized to `lookahead` (>= n): the caller's
  /// estimate of total outstanding demand — for a BFS, the in-degree sum of
  /// every queued vertex. Demand-sized fills are what make batching win: a
  /// cascade that dies young generates no more Philox blocks than the
  /// scalar loop would, while a wide frontier turns into one lane-parallel
  /// fill instead of a block every four draws. Surplus carries over to
  /// later ensure() calls, and finish_sample() rewinds the stream past only
  /// what was consumed, so over-generation is observationally invisible.
  [[nodiscard]] Cursor ensure(Cursor c, RandomStream& rng, std::size_t n,
                              std::size_t lookahead) {
    if (c.avail >= n) return c;
    return refill(c, rng, lookahead > n ? lookahead : n);
  }
  [[nodiscard]] Cursor ensure(Cursor c, RandomStream& rng, std::size_t n) {
    return ensure(c, rng, n, n);
  }

  /// Rewind `rng` to the position of the draws actually consumed, as if
  /// they had been taken one next_float() at a time. Free when every
  /// generated draw was consumed (the common case for shallow cascades,
  /// whose first refill is sized exactly to the request).
  void finish_sample(RandomStream& rng, Cursor c) const noexcept {
    const std::uint64_t pos = start_ + (generated_ - c.avail);
    if (rng.u32_position() != pos) rng.seek_u32(pos);
  }

  /// Attach (nullptr detaches) a wall timer for refills. Only fills of at
  /// least kTimedRefillDraws draws are timed. Refills run inside the BFS
  /// sweep, so the measurement itself perturbs the hot path: two clock
  /// reads plus RMWs on one histogram shared by every worker. Timing every
  /// mid-size refill at 256 draws measured ~8% end-to-end; at 4096 only
  /// the demand-burst tail is timed — the fill dwarfs the measurement and
  /// the sampling profiler attributes the common case statistically.
  void attach_refill_timer(profiler::WallTimer* timer) noexcept {
    refill_timer_ = timer;
  }
  static constexpr std::size_t kTimedRefillDraws = 2048;

 private:
  // Out of line on purpose: keeping the cold path off the sweep's inlined
  // footprint is what lets the Cursor fast path stay branch + array read.
  [[gnu::noinline]] Cursor refill(Cursor c, RandomStream& rng, std::size_t target) {
    if (c.avail != 0) {  // compact the unconsumed suffix to the front
      std::copy(c.p, c.p + c.avail, buf_.begin());
    }
    if (buf_.size() < target) {
      // The surplus was already copied to the front; resize preserves it.
      buf_.resize(target);
    }
    const std::size_t fresh = target - c.avail;
    const bool timed = refill_timer_ != nullptr && fresh >= kTimedRefillDraws;
    const auto t0 = timed ? std::chrono::steady_clock::now()
                          : std::chrono::steady_clock::time_point{};
    rng.fill_floats(std::span<float>(buf_.data() + c.avail, fresh));
    if (timed) {
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
      refill_timer_->record_ns(ns > 0 ? static_cast<std::uint64_t>(ns) : 0u);
    }
    generated_ += fresh;
    return Cursor{buf_.data(), target};
  }

  std::vector<float> buf_;
  std::uint64_t generated_ = 0;
  std::uint64_t start_ = 0;
  profiler::WallTimer* refill_timer_ = nullptr;
};

}  // namespace eim::support
