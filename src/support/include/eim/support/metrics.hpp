// Run-wide metrics: counters, gauges, and phase timers.
//
// The registry is the instrumentation substrate for the whole pipeline —
// sampler commit retries, collection regrows, selector decode traffic,
// device memory high-water marks — so that every run (CLI or bench) can
// emit one machine-readable report with the numbers the paper's figures
// are built from (per-phase time, peak memory, queue/commit traffic).
//
// Thread-safety: instrument handles (Counter/Gauge/PhaseTimer) are lock-free
// atomics, safe to bump from sampler blocks running on the host pool.
// Registration (counter()/gauge()/phase()) takes a mutex and returns a
// reference that stays valid for the registry's lifetime — look handles up
// once outside hot loops. write_json() snapshots under the same mutex.
//
// The JSON schema ("eim.metrics.v3") is documented in docs/OBSERVABILITY.md.
#pragma once

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>

#include "eim/support/json.hpp"

namespace eim::support::profiler {
class WallProfile;
}  // namespace eim::support::profiler

namespace eim::support::metrics {

/// Monotone event count (relaxed atomic increments).
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write or high-water-mark sample of an instantaneous quantity.
class Gauge {
 public:
  void set(std::uint64_t v) noexcept { value_.store(v, std::memory_order_relaxed); }

  /// Racy-max update: keeps the largest value ever observed.
  void max_update(std::uint64_t v) noexcept {
    std::uint64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < v &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Fixed log2-bucket distribution of an unsigned quantity (RRR set sizes,
/// queue depths, per-pick gains). Bucket 0 counts zeros; bucket b (1..64)
/// counts values of bit width b, i.e. the range [2^(b-1), 2^b). Buckets,
/// count, sum, and max are all lock-free relaxed atomics, so observe() is
/// safe from sampler blocks running concurrently on the host pool.
class Histogram {
 public:
  static constexpr std::uint32_t kNumBuckets = 65;

  static constexpr std::uint32_t bucket_of(std::uint64_t v) noexcept {
    return v == 0 ? 0u : static_cast<std::uint32_t>(64 - std::countl_zero(v));
  }
  /// Largest value bucket `b` can hold (its reported "le" bound).
  static constexpr std::uint64_t bucket_upper(std::uint32_t b) noexcept {
    return b == 0 ? 0 : (b >= 64 ? ~0ull : (1ull << b) - 1);
  }

  void observe(std::uint64_t v) noexcept {
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t cur = max_.load(std::memory_order_relaxed);
    while (cur < v && !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  /// Duration convenience: records whole nanoseconds, so the log2 buckets
  /// resolve from ~1 ns to centuries (docs/OBSERVABILITY.md).
  void observe_duration(double seconds) noexcept {
    observe(seconds <= 0.0 ? 0 : static_cast<std::uint64_t>(seconds * 1e9 + 0.5));
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t max_value() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bucket_count(std::uint32_t b) const noexcept {
    return buckets_[b].load(std::memory_order_relaxed);
  }

  /// Bucket-resolution quantile estimate: the upper bound of the first
  /// bucket whose cumulative count reaches q * count, clamped to the true
  /// max. q in (0, 1]; returns 0 on an empty histogram.
  [[nodiscard]] std::uint64_t quantile(double q) const noexcept;

  /// Checkpoint-resume merge: fold `n` prior observations into bucket `b`
  /// (also advances count), then fold the prior sum/max via merge_totals.
  void merge_bucket(std::uint32_t b, std::uint64_t n) noexcept {
    buckets_[b < kNumBuckets ? b : kNumBuckets - 1].fetch_add(
        n, std::memory_order_relaxed);
    count_.fetch_add(n, std::memory_order_relaxed);
  }
  void merge_totals(std::uint64_t sum, std::uint64_t max_value) noexcept {
    sum_.fetch_add(sum, std::memory_order_relaxed);
    std::uint64_t cur = max_.load(std::memory_order_relaxed);
    while (cur < max_value &&
           !max_.compare_exchange_weak(cur, max_value, std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<std::uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// Accumulated time for one named pipeline phase. Wall seconds are host
/// time (what the operator waits for); modeled seconds are simulated device
/// time (what the paper's speedup plots compare). Both accumulate across
/// entries because IMM phases interleave (sample, select, sample, ...).
class PhaseTimer {
 public:
  void add_wall(double seconds) noexcept {
    atomic_add(wall_, seconds);
    entries_.fetch_add(1, std::memory_order_relaxed);
  }
  void add_modeled(double seconds) noexcept { atomic_add(modeled_, seconds); }

  [[nodiscard]] double wall_seconds() const noexcept {
    return wall_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double modeled_seconds() const noexcept {
    return modeled_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t entries() const noexcept {
    return entries_.load(std::memory_order_relaxed);
  }

  /// Checkpoint-resume merge: fold a prior run segment's accumulated wall /
  /// modeled seconds and entry count into this timer.
  void merge(double wall, double modeled, std::uint64_t entries) noexcept {
    atomic_add(wall_, wall);
    atomic_add(modeled_, modeled);
    entries_.fetch_add(entries, std::memory_order_relaxed);
  }

 private:
  /// CAS add (std::atomic<double>::fetch_add needs a newer libstdc++).
  static void atomic_add(std::atomic<double>& a, double delta) noexcept {
    double cur = a.load(std::memory_order_relaxed);
    while (!a.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
    }
  }

  std::atomic<double> wall_{0.0};
  std::atomic<double> modeled_{0.0};
  std::atomic<std::uint64_t> entries_{0};
};

/// Named instrument store. Instruments are created on first lookup and live
/// as long as the registry; names are dotted paths ("sampler.commit_retries").
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name);
  [[nodiscard]] PhaseTimer& phase(std::string_view name);

  /// Serialize the registry as one JSON object:
  /// {"counters":{...},"gauges":{...},"histograms":{...},"phases":[{...}]}.
  /// Names sort lexicographically so reports diff cleanly across runs.
  void write_json(JsonWriter& w) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::unique_ptr<PhaseTimer>, std::less<>> phases_;
};

/// RAII wall-clock scope for one phase entry; optionally folds in the
/// modeled-seconds delta the caller measured across the same scope.
class ScopedPhase {
 public:
  explicit ScopedPhase(PhaseTimer& timer) noexcept;
  ~ScopedPhase();
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseTimer* timer_;
  std::chrono::steady_clock::time_point start_;
};

/// One run's identity plus a snapshot of its registry, serializable to the
/// "eim.metrics.v3" JSON document that eim_cli --metrics-json and the bench
/// reporter both emit. v3 extends v2 with a "wall" section carrying the
/// host wall-clock attribution captured by support::profiler::WallProfile
/// (null when the run was not profiled).
struct RunReport {
  std::string tool;   ///< producing binary ("eim_cli", "bench_fig7_ic", ...)
  std::string graph;  ///< dataset name or file path
  std::string algo;
  std::string model;
  std::uint64_t vertices = 0;
  std::uint64_t edges = 0;
  std::uint32_t k = 0;
  double epsilon = 0.0;
  const MetricsRegistry* metrics = nullptr;  ///< not owned; may be null
  const profiler::WallProfile* wall = nullptr;  ///< not owned; may be null

  void write_json(std::ostream& out) const;
};

/// Fold a registry JSON snapshot (the write_json schema) back into `into`:
/// counters add, gauges overwrite, histograms merge their sparse buckets and
/// totals, phase timers merge. Checkpoint resume uses this to carry the
/// crashed run's accumulated metrics forward. Throws JsonParseError /
/// support::Error on a document that does not follow the schema.
void restore_registry_json(MetricsRegistry& into, std::string_view json);

}  // namespace eim::support::metrics
