// Versioned, checksummed binary snapshot container.
//
// The on-disk format behind checkpoint/resume (docs/RESILIENCE.md): a
// snapshot is a flat file of named sections, each independently CRC-32C
// checksummed, behind a magic + version header whose section table carries
// its own checksum. Layout (all integers little-endian, fixed width):
//
//   magic   8 bytes  "EIMSNAP1"
//   u32     format version (kFormatVersion)
//   u32     section count
//   per section:
//     u32   name length, then the name bytes (UTF-8, no NUL)
//     u64   payload length in bytes
//     u32   CRC-32C of the payload
//   u32     CRC-32C of every byte above (magic through the table)
//   payloads, concatenated in section order
//
// Every malformed condition — wrong magic, unknown version, truncated
// table, truncated payload, checksum mismatch, trailing garbage — is
// detected on load and reported as SnapshotCorruptError (an IoError, so
// tools exit with the I/O code 3), never a crash or a silently wrong
// decode. ByteWriter/ByteReader are the bounds-checked primitives section
// payloads are encoded with.
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "eim/support/error.hpp"

namespace eim::support::snapshot {

inline constexpr std::string_view kMagic = "EIMSNAP1";
inline constexpr std::uint32_t kFormatVersion = 1;

/// A snapshot failed validation: bad magic/version, truncation, checksum
/// mismatch, or a malformed section payload. Derives IoError so
/// exit_code_for maps it to the I/O exit code (3).
class SnapshotCorruptError : public IoError {
 public:
  explicit SnapshotCorruptError(const std::string& what)
      : IoError("corrupt snapshot: " + what) {}
};

/// Little-endian append-only encoder for section payloads.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    bytes_.insert(bytes_.end(), s.begin(), s.end());
  }
  template <typename T>
  void u32_array(std::span<const T> values) {
    u64(values.size());
    for (const T v : values) u32(static_cast<std::uint32_t>(v));
  }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept { return bytes_; }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked decoder; any read past the payload end throws
/// SnapshotCorruptError instead of reading garbage.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes, std::string context)
      : bytes_(bytes), context_(std::move(context)) {}

  [[nodiscard]] std::uint8_t u8() { return take(1)[0]; }
  [[nodiscard]] std::uint32_t u32() {
    const auto b = take(4);
    std::uint32_t v = 0;
    for (std::size_t i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
    return v;
  }
  [[nodiscard]] std::uint64_t u64() {
    const auto b = take(8);
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
    return v;
  }
  [[nodiscard]] double f64() { return std::bit_cast<double>(u64()); }
  [[nodiscard]] std::string str() {
    const std::uint32_t len = u32();
    const auto b = take(len);
    return std::string(reinterpret_cast<const char*>(b.data()), b.size());
  }
  template <typename T>
  [[nodiscard]] std::vector<T> u32_array() {
    const std::uint64_t count = u64();
    // Guard length-prefix corruption before allocating: the array cannot
    // hold more entries than payload bytes remain.
    if (count > remaining() / 4) {
      throw SnapshotCorruptError(context_ + ": array length " + std::to_string(count) +
                                 " exceeds remaining payload");
    }
    std::vector<T> values;
    values.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) values.push_back(static_cast<T>(u32()));
    return values;
  }

  [[nodiscard]] std::size_t remaining() const noexcept { return bytes_.size() - pos_; }
  /// Sections must be consumed exactly; leftover bytes mean the reader and
  /// writer disagree about the schema.
  void expect_exhausted() const {
    if (remaining() != 0) {
      throw SnapshotCorruptError(context_ + ": " + std::to_string(remaining()) +
                                 " trailing bytes after decode");
    }
  }

 private:
  std::span<const std::uint8_t> take(std::size_t n) {
    if (n > remaining()) {
      throw SnapshotCorruptError(context_ + ": truncated payload (wanted " +
                                 std::to_string(n) + " bytes, " +
                                 std::to_string(remaining()) + " left)");
    }
    const auto out = bytes_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
  std::string context_;
};

class SnapshotWriter {
 public:
  /// Append a named section. Names must be unique; section order is
  /// preserved in the file.
  void add_section(std::string name, std::vector<std::uint8_t> payload);

  /// Serialize header + table + payloads to one byte string.
  [[nodiscard]] std::string serialize() const;

  /// serialize() + support::atomic_write_file: the destination either keeps
  /// its previous snapshot or atomically becomes this one.
  void write_file(const std::string& path) const;

 private:
  struct Section {
    std::string name;
    std::vector<std::uint8_t> payload;
  };
  std::vector<Section> sections_;
};

class SnapshotReader {
 public:
  /// Parse and fully validate (header, table, every payload checksum).
  /// Throws SnapshotCorruptError on any mismatch.
  explicit SnapshotReader(std::string bytes);

  /// Read + validate a snapshot file. Missing/unreadable file throws plain
  /// IoError ("no snapshot" is distinct from "corrupt snapshot").
  [[nodiscard]] static SnapshotReader load_file(const std::string& path);

  [[nodiscard]] bool has_section(std::string_view name) const noexcept;
  /// Checksummed payload bytes; throws SnapshotCorruptError when absent
  /// (a missing required section is a structural defect).
  [[nodiscard]] std::span<const std::uint8_t> section(std::string_view name) const;
  /// Bounds-checked reader over section(name).
  [[nodiscard]] ByteReader reader(std::string_view name) const;

  [[nodiscard]] std::vector<std::string> section_names() const;

 private:
  struct Entry {
    std::string name;
    std::size_t offset;
    std::size_t length;
  };
  std::string bytes_;
  std::vector<Entry> entries_;
};

}  // namespace eim::support::snapshot
