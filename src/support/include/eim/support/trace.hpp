// Hierarchical span tracing with Chrome trace-event / Perfetto export.
//
// A TraceRecorder captures what the metrics registry cannot: *when* things
// happened on the modeled device clock. Spans nest — phase -> estimation
// round -> sampling wave -> kernel/transfer/backoff leaf segments — and
// every span carries both its modeled interval (deterministic, exported)
// and the host wall seconds the same scope took (diagnostic, kept out of
// the export so traces stay bit-identical across runs with the same seed).
//
// Like the metrics registry, the recorder is opt-in and non-owning: a null
// EimOptions::trace pointer means every instrumentation site is skipped at
// zero cost. Recording is mutex-serialized — spans are begun/ended from the
// orchestration thread around kernel launches, never from inside block
// bodies, so the lock is uncontended in practice.
//
// The export (`write_chrome_trace`) is the Chrome trace-event JSON format:
// one `pid` per registered process (a simulated device), one `tid` per host
// thread that recorded spans, `ph:"X"` complete events for spans, `ph:"i"`
// instant events for faults/failover, `ph:"s"/"f"` flow arrows linking a
// collective's participants to the cluster track, and `ph:"M"` metadata
// naming and ordering the tracks (process_sort_index keeps registration
// order in the Perfetto UI). Open the file in https://ui.perfetto.dev or
// chrome://tracing. Schema details in docs/OBSERVABILITY.md.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

namespace eim::support::trace {

/// What a span models. Leaf kinds mirror gpusim::SegmentKind; the first
/// three are host-side orchestration scopes.
enum class SpanCategory {
  Phase,       ///< pipeline phase (sample / select)
  Round,       ///< one IMM estimation round inside a phase
  Wave,        ///< one sampling kernel wave (launch + commit + retries)
  Kernel,      ///< modeled kernel segment from the device timeline
  Transfer,    ///< modeled H2D/D2H segment
  Allocation,  ///< modeled cudaMalloc-style event
  Backoff,     ///< modeled retry backoff after a transient fault
  Collective,  ///< cluster collective (broadcast/allreduce/exchange); NOT a
               ///< device leaf — the cluster timeline's own segments are
               ///< recorded separately, so making this a leaf would
               ///< double-count the per-pid duration invariant
};

[[nodiscard]] const char* to_string(SpanCategory cat) noexcept;

/// True for the categories that are device-timeline leaves: summing their
/// durations per pid reproduces DeviceTimeline::total_seconds() exactly.
[[nodiscard]] constexpr bool is_device_leaf(SpanCategory cat) noexcept {
  return cat == SpanCategory::Kernel || cat == SpanCategory::Transfer ||
         cat == SpanCategory::Allocation || cat == SpanCategory::Backoff;
}

struct TraceSpan {
  std::uint64_t sequence = 0;   ///< global record order (deterministic)
  std::uint32_t pid = 0;        ///< registered process (simulated device)
  std::uint32_t tid = 0;        ///< host thread ordinal (first recorder = 0)
  std::string name;
  SpanCategory category = SpanCategory::Kernel;
  double modeled_start = 0.0;   ///< seconds on the device's modeled clock
  double modeled_seconds = 0.0;
  double wall_seconds = 0.0;    ///< host wall time; NOT exported
  std::int64_t parent = -1;     ///< sequence of the enclosing span, -1 = root
};

/// Point event (ph:"i"): device loss, failover redistribution, degrade
/// activation — things with a time but no duration.
struct TraceInstant {
  std::uint64_t sequence = 0;
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
  std::string name;
  std::string detail;           ///< free-form args.detail payload
  double modeled_ts = 0.0;
};

/// One endpoint of a flow arrow (ph:"s" start / ph:"f" finish). A start and
/// every finish sharing its flow_id draw as arrows in Perfetto — used to
/// link a collective's send side on each node track to the receive on the
/// cluster track, which timeline spans alone cannot express.
struct TraceFlow {
  std::uint64_t sequence = 0;
  std::uint64_t flow_id = 0;    ///< shared by the arrow's endpoints
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
  std::string name;             ///< must match on both endpoints
  double modeled_ts = 0.0;
  bool start = false;           ///< true = ph:"s", false = ph:"f"
};

class TraceRecorder {
 public:
  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Allocate the next pid and name its track. `key` (optional) lets later
  /// instrumentation sites that only hold a device pointer find the pid
  /// again via pid_of(); re-registering the same key re-uses its pid.
  std::uint32_t register_process(const std::string& name, const void* key = nullptr);
  [[nodiscard]] std::optional<std::uint32_t> pid_of(const void* key) const;

  /// Open a span at `modeled_start`; the span's parent is the innermost
  /// still-open span begun by this thread. Returns the span's sequence id.
  std::uint64_t begin_span(std::uint32_t pid, SpanCategory category, std::string name,
                           double modeled_start);
  /// Close span `id` at `modeled_end`, folding in the measured wall time.
  void end_span(std::uint64_t id, double modeled_end, double wall_seconds = 0.0);

  /// Record an already-finished leaf span (device timeline segments).
  /// Bypasses the open-span stack; parent is the caller's innermost open
  /// span, which is how leaves attach to the wave that launched them.
  void complete_span(std::uint32_t pid, SpanCategory category, std::string name,
                     double modeled_start, double modeled_seconds);

  void instant(std::uint32_t pid, std::string name, std::string detail,
               double modeled_ts);

  /// Allocate a fresh flow id (deterministic: a plain counter under the
  /// recorder lock). Record the arrow's endpoints with flow_start /
  /// flow_end — both must carry this id and the same name.
  [[nodiscard]] std::uint64_t new_flow_id();
  void flow_start(std::uint32_t pid, std::uint64_t flow_id, std::string name,
                  double modeled_ts);
  void flow_end(std::uint32_t pid, std::uint64_t flow_id, std::string name,
                double modeled_ts);

  /// Snapshots for tests/tools (copies under the lock).
  [[nodiscard]] std::vector<TraceSpan> spans() const;
  [[nodiscard]] std::vector<TraceInstant> instants() const;
  [[nodiscard]] std::vector<TraceFlow> flows() const;

  /// Emit the Chrome trace-event JSON document. Deterministic: only modeled
  /// times and stable ids are written; wall seconds are omitted.
  void write_chrome_trace(std::ostream& out) const;

 private:
  std::uint32_t tid_for_locked(std::thread::id id);

  mutable std::mutex mu_;
  std::vector<TraceSpan> spans_;
  std::vector<TraceInstant> instants_;
  std::vector<TraceFlow> flows_;
  std::uint64_t next_flow_id_ = 0;
  std::vector<std::string> process_names_;      ///< index = pid
  std::map<const void*, std::uint32_t> pids_;   ///< key -> pid
  std::map<std::thread::id, std::uint32_t> tids_;
  std::map<std::thread::id, std::vector<std::uint64_t>> open_stacks_;
  std::uint64_t next_sequence_ = 0;
};

/// RAII span. Inactive when the recorder is null, so call sites read
/// `ScopedSpan span(options.trace, ...)` with no branching. Wall time is
/// measured here (steady_clock across the scope); modeled end must be
/// supplied by end() — if the scope unwinds without it (a device fault
/// propagating), the span closes zero-length at its start point, which
/// marks exactly where the run died on the timeline.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(TraceRecorder* recorder, std::uint32_t pid, SpanCategory category,
             std::string name, double modeled_start);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Close at `modeled_end` (idempotent; later calls are ignored).
  void end(double modeled_end);

 private:
  TraceRecorder* recorder_ = nullptr;
  std::uint64_t id_ = 0;
  double modeled_start_ = 0.0;
  bool ended_ = true;
  std::chrono::steady_clock::time_point wall_start_{};
};

}  // namespace eim::support::trace
