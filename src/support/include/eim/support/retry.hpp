// Bounded retry with deterministic modeled backoff.
//
// `retry` wraps an operation that may throw the *transient* fault class
// (DeviceFaultError — injected kernel-launch or transfer failures) and
// re-attempts it up to a bounded number of tries. The backoff between tries
// is deterministic modeled time, not a host sleep: the caller's `on_retry`
// hook receives the backoff seconds and charges them to the device timeline
// (Device::charge_backoff), so recovery costs show up in the same modeled
// ledger as the work they protect and runs stay bit-reproducible — no
// wall-clock, no jitter.
//
// Non-transient errors (DeviceOutOfMemoryError, DeviceLostError, anything
// else) propagate immediately: OOM is a capacity condition retrying cannot
// fix (the pipeline's OomPolicy handles it), and a lost device never comes
// back (the multi-GPU layer fails over instead).
#pragma once

#include <cstdint>
#include <utility>

#include "eim/support/error.hpp"

namespace eim::support {

struct RetryPolicy {
  /// Total tries, including the first (>= 1). 1 disables retrying.
  std::uint32_t max_attempts = 3;
  /// Modeled delay before the first retry.
  double backoff_seconds = 100e-6;
  /// Deterministic exponential growth per subsequent retry.
  double backoff_multiplier = 2.0;

  /// Backoff before retry number `retry_index` (0-based).
  [[nodiscard]] double backoff_for(std::uint32_t retry_index) const noexcept {
    double delay = backoff_seconds;
    for (std::uint32_t i = 0; i < retry_index; ++i) delay *= backoff_multiplier;
    return delay;
  }
};

/// Run `fn`, retrying the transient fault class `TransientError` up to
/// `policy.max_attempts` total tries. Before each retry,
/// `on_retry(retry_index, backoff_seconds, error)` runs — charge the modeled
/// backoff and bump metrics there. The final failure is rethrown; exceptions
/// outside `TransientError` pass straight through.
template <typename TransientError, typename Fn, typename OnRetry>
decltype(auto) retry_on(const RetryPolicy& policy, Fn&& fn, OnRetry&& on_retry) {
  for (std::uint32_t attempt = 0;; ++attempt) {
    try {
      return fn();
    } catch (const TransientError& fault) {
      if (attempt + 1 >= policy.max_attempts) throw;
      on_retry(attempt, policy.backoff_for(attempt), fault);
    }
  }
}

/// The device-side default: retry transient DeviceFaultError (injected
/// kernel-launch or transfer failures). The spill store instantiates
/// retry_on<IoError> for its disk tier instead.
template <typename Fn, typename OnRetry>
decltype(auto) retry(const RetryPolicy& policy, Fn&& fn, OnRetry&& on_retry) {
  return retry_on<DeviceFaultError>(policy, std::forward<Fn>(fn),
                                    std::forward<OnRetry>(on_retry));
}

}  // namespace eim::support
