// Minimal fixed-size thread pool used by the GPU simulator to execute
// "blocks" concurrently on the host.
//
// Design notes (per the C++ Core Guidelines concurrency rules): the pool owns
// its threads (RAII, joined in the destructor), tasks are type-erased
// move-only callables, and parallel_for uses an atomic cursor so chunking is
// dynamic — important because RRR-set traversals have wildly unequal lengths
// (the very load-imbalance problem the paper discusses in §3.2).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace eim::support {

class ThreadPool {
 public:
  /// Spins up `num_threads` workers (0 = hardware concurrency, min 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task; the returned future reports completion/exception.
  std::future<void> submit(std::function<void()> task);

  /// Run fn(i) for i in [begin, end) across the pool, blocking until done.
  ///
  /// Work is handed out in `grain`-sized chunks from an atomic cursor, so
  /// stragglers don't serialize the batch. Exceptions from any invocation are
  /// rethrown (first one wins).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn, std::size_t grain = 1);

  /// Process-wide pool sized to hardware concurrency.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace eim::support
