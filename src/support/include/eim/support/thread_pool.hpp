// Minimal fixed-size thread pool used by the GPU simulator to execute
// "blocks" concurrently on the host.
//
// Design notes (per the C++ Core Guidelines concurrency rules): the pool owns
// its threads (RAII, joined in the destructor), tasks are type-erased
// move-only callables with small-buffer storage, and parallel_for uses an
// atomic cursor so chunking is dynamic — important because RRR-set
// traversals have wildly unequal lengths (the very load-imbalance problem
// the paper discusses in §3.2).
//
// Hot-path contract: parallel_for keeps its entire coordination state on the
// caller's stack (cursor, error slot, completion count) — one call performs
// zero shared_ptr allocations and at most `helpers` small task pushes, so
// the simulated per-kernel-launch dispatch cost stays bounded by queue
// traffic, not by the allocator.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <new>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace eim::support {

namespace profiler {
class WallTimer;
}  // namespace profiler

/// Type-erased move-only callable `void()`. Callables up to kInlineBytes
/// with a noexcept move constructor live in the inline buffer; larger or
/// throwing-move ones fall back to a single heap cell. This is what lets
/// the pool run move-only payloads (promises, packaged state) that
/// std::function rejects, without a mandatory allocation per task.
class MoveOnlyTask {
 public:
  static constexpr std::size_t kInlineBytes = 6 * sizeof(void*);

  MoveOnlyTask() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, MoveOnlyTask> &&
                std::is_invocable_r_v<void, std::remove_cvref_t<F>&>>>
  MoveOnlyTask(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::remove_cvref_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      vtable_ = &inline_vtable<Fn>;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      vtable_ = &heap_vtable<Fn>;
    }
  }

  MoveOnlyTask(MoveOnlyTask&& other) noexcept : vtable_(other.vtable_) {
    if (vtable_ != nullptr) {
      vtable_->relocate(other.storage_, storage_);
      other.vtable_ = nullptr;
    }
  }

  MoveOnlyTask& operator=(MoveOnlyTask&& other) noexcept {
    if (this != &other) {
      reset();
      vtable_ = other.vtable_;
      if (vtable_ != nullptr) {
        vtable_->relocate(other.storage_, storage_);
        other.vtable_ = nullptr;
      }
    }
    return *this;
  }

  MoveOnlyTask(const MoveOnlyTask&) = delete;
  MoveOnlyTask& operator=(const MoveOnlyTask&) = delete;

  ~MoveOnlyTask() { reset(); }

  [[nodiscard]] explicit operator bool() const noexcept { return vtable_ != nullptr; }

  void operator()() { vtable_->invoke(storage_); }

 private:
  struct VTable {
    void (*invoke)(void* storage);
    /// Move-construct into `dst` and destroy the source (dst is raw).
    void (*relocate)(void* src, void* dst) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  template <typename Fn>
  static constexpr VTable inline_vtable{
      [](void* s) { (*static_cast<Fn*>(s))(); },
      [](void* src, void* dst) noexcept {
        ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
        static_cast<Fn*>(src)->~Fn();
      },
      [](void* s) noexcept { static_cast<Fn*>(s)->~Fn(); },
  };

  template <typename Fn>
  static constexpr VTable heap_vtable{
      [](void* s) { (**static_cast<Fn**>(s))(); },
      [](void* src, void* dst) noexcept {
        ::new (dst) Fn*(*static_cast<Fn**>(src));
      },
      [](void* s) noexcept { delete *static_cast<Fn**>(s); },
  };

  void reset() noexcept {
    if (vtable_ != nullptr) {
      vtable_->destroy(storage_);
      vtable_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes]{};
  const VTable* vtable_ = nullptr;
};

class ThreadPool {
 public:
  /// Spins up `num_threads` workers (0 = hardware concurrency, min 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task; the returned future reports completion/exception.
  /// Accepts move-only callables (e.g. ones capturing a promise).
  std::future<void> submit(MoveOnlyTask task);

  /// Run fn(i) for i in [begin, end) across the pool, blocking until done.
  ///
  /// Work is handed out in `grain`-sized chunks from an atomic cursor, so
  /// stragglers don't serialize the batch; grain 0 picks an adaptive chunk
  /// (several chunks per worker) that amortizes cursor traffic on large
  /// ranges while keeping dynamic balancing. Exceptions from any invocation
  /// are rethrown (first one wins). All coordination state lives on the
  /// caller's stack — no allocation beyond the helper task pushes.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn, std::size_t grain = 0);

  /// Process-wide pool sized to hardware concurrency.
  static ThreadPool& global();

  /// Attach (or, with nullptr, detach) a wall timer that records the
  /// *dispatch* portion of each parallel_for — entry through handing the
  /// helper tasks to the queue — not the body work, which would double-count
  /// every scope the callback itself is timed under. The serial fast path
  /// records nothing (there is no dispatch). Null by default: the check is
  /// one relaxed load per call.
  void attach_dispatch_timer(profiler::WallTimer* timer) noexcept {
    dispatch_timer_.store(timer, std::memory_order_relaxed);
  }

 private:
  void worker_loop();
  /// Push `count` copies of tasks produced by `make` under one lock.
  void enqueue_bulk(std::size_t count, const std::function<MoveOnlyTask()>& make);

  std::vector<std::thread> workers_;
  std::deque<MoveOnlyTask> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;

  // Completion signalling for parallel_for: pool-lifetime primitives so the
  // per-call state can die on the caller's stack without racing a helper's
  // final notify (the helper only touches pool members after its last
  // access to the call state).
  std::mutex done_mutex_;
  std::condition_variable done_cv_;

  std::atomic<profiler::WallTimer*> dispatch_timer_{nullptr};
};

}  // namespace eim::support
