// Small statistics accumulators used by the benchmark harness (the paper
// reports every number as a mean over ten runs) and by property tests.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

namespace eim::support {

/// Streaming mean/variance/min/max (Welford's algorithm).
class RunningStat {
 public:
  void push(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept {
    return count_ ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  [[nodiscard]] double max() const noexcept {
    return count_ ? max_ : std::numeric_limits<double>::quiet_NaN();
  }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Pearson chi-square statistic over matched observed/expected cells.
/// Cells with nonpositive expectation are skipped (a fixed-zero category —
/// e.g. a zero-weight in-edge that must never be picked — contributes
/// nothing here and is asserted exactly by the caller instead). The caller
/// compares against a critical value for its degrees of freedom.
[[nodiscard]] inline double chi_square_statistic(const std::vector<double>& observed,
                                                 const std::vector<double>& expected) {
  double stat = 0.0;
  const std::size_t cells = std::min(observed.size(), expected.size());
  for (std::size_t i = 0; i < cells; ++i) {
    if (expected[i] <= 0.0) continue;
    const double d = observed[i] - expected[i];
    stat += d * d / expected[i];
  }
  return stat;
}

/// Two-sample Kolmogorov-Smirnov statistic: sup |F_a - F_b| over the merged
/// support. Inputs are copied and sorted. Ties are consumed as whole groups
/// before the CDF gap is evaluated — the empirical CDFs only have values at
/// group boundaries, so evaluating mid-group would report a spurious sup on
/// discrete data (e.g. the integer success counts the draw-mode tests feed
/// in).
[[nodiscard]] inline double ks_statistic(std::vector<double> a, std::vector<double> b) {
  if (a.empty() || b.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  double d = 0.0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    const double v = std::min(a[i], b[j]);
    while (i < a.size() && a[i] == v) ++i;
    while (j < b.size() && b[j] == v) ++j;
    const double fa = static_cast<double>(i) / static_cast<double>(a.size());
    const double fb = static_cast<double>(j) / static_cast<double>(b.size());
    d = std::max(d, std::abs(fa - fb));
  }
  return d;
}

/// p-th percentile (0..100) by linear interpolation; copies + sorts.
[[nodiscard]] inline double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::sort(xs.begin(), xs.end());
  const double rank = (p / 100.0) * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

}  // namespace eim::support
