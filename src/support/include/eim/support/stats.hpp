// Small statistics accumulators used by the benchmark harness (the paper
// reports every number as a mean over ten runs) and by property tests.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

namespace eim::support {

/// Streaming mean/variance/min/max (Welford's algorithm).
class RunningStat {
 public:
  void push(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept {
    return count_ ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  [[nodiscard]] double max() const noexcept {
    return count_ ? max_ : std::numeric_limits<double>::quiet_NaN();
  }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// p-th percentile (0..100) by linear interpolation; copies + sorts.
[[nodiscard]] inline double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::sort(xs.begin(), xs.end());
  const double rank = (p / 100.0) * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

}  // namespace eim::support
