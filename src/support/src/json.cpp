#include "eim/support/json.hpp"

#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <utility>

#include "eim/support/error.hpp"

namespace eim::support {

void JsonWriter::separator() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // "key": value — no comma between key and its value
  }
  if (!has_value_.empty()) {
    if (has_value_.back()) *out_ << ',';
    has_value_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  separator();
  *out_ << '{';
  has_value_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  EIM_CHECK_MSG(!has_value_.empty(), "end_object without begin");
  has_value_.pop_back();
  *out_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array(std::string_view name) {
  if (!name.empty()) key(name);
  separator();
  *out_ << '[';
  has_value_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  EIM_CHECK_MSG(!has_value_.empty(), "end_array without begin");
  has_value_.pop_back();
  *out_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  separator();
  *out_ << '"';
  escape(name);
  *out_ << "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  separator();
  *out_ << '"';
  escape(text);
  *out_ << '"';
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  separator();
  if (std::isfinite(number)) {
    *out_ << std::setprecision(15) << number;
  } else {
    *out_ << "null";  // JSON has no NaN/Inf
  }
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  separator();
  *out_ << number;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  separator();
  *out_ << number;
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  separator();
  *out_ << (flag ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  separator();
  *out_ << "null";
  return *this;
}

JsonWriter& JsonWriter::raw_value(std::string_view json) {
  separator();
  *out_ << json;
  return *this;
}

// ---- JsonValue -----------------------------------------------------------

bool JsonValue::as_bool() const {
  EIM_CHECK_MSG(kind_ == Kind::Bool, "JSON value is not a bool");
  return bool_;
}

std::int64_t JsonValue::as_int() const {
  EIM_CHECK_MSG(kind_ == Kind::Int, "JSON value is not an integer");
  return int_;
}

double JsonValue::as_double() const {
  EIM_CHECK_MSG(is_number(), "JSON value is not a number");
  return kind_ == Kind::Int ? static_cast<double>(int_) : double_;
}

const std::string& JsonValue::as_string() const {
  EIM_CHECK_MSG(kind_ == Kind::String, "JSON value is not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  EIM_CHECK_MSG(kind_ == Kind::Array, "JSON value is not an array");
  return items_;
}

const std::vector<JsonValue::Member>& JsonValue::members() const {
  EIM_CHECK_MSG(kind_ == Kind::Object, "JSON value is not an object");
  return members_;
}

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (kind_ != Kind::Object) return nullptr;
  for (const Member& m : members_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* found = find(key);
  EIM_CHECK_MSG(found != nullptr, "missing JSON object member '" + std::string(key) + "'");
  return *found;
}

void JsonValue::write(JsonWriter& w) const {
  switch (kind_) {
    case Kind::Null: w.null(); break;
    case Kind::Bool: w.value(bool_); break;
    case Kind::Int: w.value(int_); break;
    case Kind::Double: w.value(double_); break;
    case Kind::String: w.value(std::string_view(string_)); break;
    case Kind::Array:
      w.begin_array();
      for (const JsonValue& item : items_) item.write(w);
      w.end_array();
      break;
    case Kind::Object:
      w.begin_object();
      for (const Member& m : members_) {
        w.key(m.first);
        m.second.write(w);
      }
      w.end_object();
      break;
  }
}

bool JsonValue::structurally_equal(const JsonValue& other) const {
  if (is_number() && other.is_number()) return as_double() == other.as_double();
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::Null: return true;
    case Kind::Bool: return bool_ == other.bool_;
    case Kind::Int:
    case Kind::Double: return true;  // handled above
    case Kind::String: return string_ == other.string_;
    case Kind::Array: {
      if (items_.size() != other.items_.size()) return false;
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (!items_[i].structurally_equal(other.items_[i])) return false;
      }
      return true;
    }
    case Kind::Object: {
      if (members_.size() != other.members_.size()) return false;
      for (const Member& m : members_) {
        const JsonValue* peer = other.find(m.first);
        if (peer == nullptr || !m.second.structurally_equal(*peer)) return false;
      }
      return true;
    }
  }
  return false;
}

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::Bool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_int(std::int64_t i) {
  JsonValue v;
  v.kind_ = Kind::Int;
  v.int_ = i;
  return v;
}

JsonValue JsonValue::make_double(double d) {
  JsonValue v;
  v.kind_ = Kind::Double;
  v.double_ = d;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::String;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::Array;
  v.items_ = std::move(items);
  return v;
}

JsonValue JsonValue::make_object(std::vector<Member> members) {
  JsonValue v;
  v.kind_ = Kind::Object;
  v.members_ = std::move(members);
  return v;
}

// ---- parser --------------------------------------------------------------

namespace {

/// Recursive-descent RFC 8259 parser over a string_view. Depth-limited so a
/// hostile input cannot blow the stack.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 128;

  [[noreturn]] void fail(const std::string& what) const {
    throw JsonParseError(what, pos_);
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  JsonValue parse_value() {
    if (++depth_ > kMaxDepth) fail("nesting too deep");
    skip_whitespace();
    JsonValue v;
    switch (peek()) {
      case '{': v = parse_object(); break;
      case '[': v = parse_array(); break;
      case '"': v = JsonValue::make_string(parse_string()); break;
      case 't':
        if (!consume_literal("true")) fail("invalid literal");
        v = JsonValue::make_bool(true);
        break;
      case 'f':
        if (!consume_literal("false")) fail("invalid literal");
        v = JsonValue::make_bool(false);
        break;
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        break;
      default: v = parse_number(); break;
    }
    --depth_;
    return v;
  }

  JsonValue parse_object() {
    expect('{');
    std::vector<JsonValue::Member> members;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(members));
    }
    for (;;) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      members.emplace_back(std::move(key), parse_value());
      skip_whitespace();
      const char c = peek();
      ++pos_;
      if (c == '}') return JsonValue::make_object(std::move(members));
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    std::vector<JsonValue> items;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(items));
    }
    for (;;) {
      items.push_back(parse_value());
      skip_whitespace();
      const char c = peek();
      ++pos_;
      if (c == ']') return JsonValue::make_array(std::move(items));
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_unicode_escape(out); break;
        default: fail("invalid escape sequence");
      }
    }
  }

  std::uint32_t parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    std::uint32_t code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        fail("invalid hex digit in \\u escape");
      }
    }
    return code;
  }

  void append_unicode_escape(std::string& out) {
    std::uint32_t code = parse_hex4();
    // Surrogate pair -> one code point.
    if (code >= 0xD800 && code <= 0xDBFF) {
      if (pos_ + 2 > text_.size() || text_[pos_] != '\\' || text_[pos_ + 1] != 'u') {
        fail("unpaired high surrogate");
      }
      pos_ += 2;
      const std::uint32_t low = parse_hex4();
      if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate");
      code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      fail("unpaired low surrogate");
    }
    // UTF-8 encode.
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  JsonValue parse_number() {
    const std::size_t begin = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool integral = true;
    bool any_digit = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        any_digit = true;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
      } else {
        break;
      }
      ++pos_;
    }
    if (!any_digit) fail("invalid number");
    const std::string_view token = text_.substr(begin, pos_ - begin);
    if (integral) {
      std::int64_t value = 0;
      const auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), value);
      if (ec == std::errc{} && ptr == token.data() + token.size()) {
        return JsonValue::make_int(value);
      }
      // Out of int64 range: fall through to double.
    }
    const std::string copy(token);  // strtod needs NUL termination
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(copy.c_str(), &end);
    if (end != copy.c_str() + copy.size()) fail("invalid number");
    return JsonValue::make_double(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  JsonParser parser(text);
  return parser.parse_document();
}

void JsonWriter::escape(std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': *out_ << "\\\""; break;
      case '\\': *out_ << "\\\\"; break;
      case '\n': *out_ << "\\n"; break;
      case '\r': *out_ << "\\r"; break;
      case '\t': *out_ << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out_ << "\\u" << std::hex << std::setw(4) << std::setfill('0')
                << static_cast<int>(c) << std::dec << std::setfill(' ');
        } else {
          *out_ << c;
        }
    }
  }
}

}  // namespace eim::support
