#include "eim/support/json.hpp"

#include <cmath>
#include <iomanip>

#include "eim/support/error.hpp"

namespace eim::support {

void JsonWriter::separator() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // "key": value — no comma between key and its value
  }
  if (!has_value_.empty()) {
    if (has_value_.back()) *out_ << ',';
    has_value_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  separator();
  *out_ << '{';
  has_value_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  EIM_CHECK_MSG(!has_value_.empty(), "end_object without begin");
  has_value_.pop_back();
  *out_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array(std::string_view name) {
  if (!name.empty()) key(name);
  separator();
  *out_ << '[';
  has_value_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  EIM_CHECK_MSG(!has_value_.empty(), "end_array without begin");
  has_value_.pop_back();
  *out_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  separator();
  *out_ << '"';
  escape(name);
  *out_ << "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  separator();
  *out_ << '"';
  escape(text);
  *out_ << '"';
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  separator();
  if (std::isfinite(number)) {
    *out_ << std::setprecision(15) << number;
  } else {
    *out_ << "null";  // JSON has no NaN/Inf
  }
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  separator();
  *out_ << number;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  separator();
  *out_ << number;
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  separator();
  *out_ << (flag ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  separator();
  *out_ << "null";
  return *this;
}

JsonWriter& JsonWriter::raw_value(std::string_view json) {
  separator();
  *out_ << json;
  return *this;
}

void JsonWriter::escape(std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': *out_ << "\\\""; break;
      case '\\': *out_ << "\\\\"; break;
      case '\n': *out_ << "\\n"; break;
      case '\r': *out_ << "\\r"; break;
      case '\t': *out_ << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out_ << "\\u" << std::hex << std::setw(4) << std::setfill('0')
                << static_cast<int>(c) << std::dec << std::setfill(' ');
        } else {
          *out_ << c;
        }
    }
  }
}

}  // namespace eim::support
