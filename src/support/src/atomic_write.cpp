#include "eim/support/atomic_write.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "eim/support/error.hpp"

#if defined(_WIN32)
#include <process.h>
#else
#include <unistd.h>
#endif

namespace eim::support {

namespace {

long current_pid() noexcept {
#if defined(_WIN32)
  return static_cast<long>(_getpid());
#else
  return static_cast<long>(getpid());
#endif
}

}  // namespace

std::string atomic_write_temp_path(const std::string& path) {
  return path + ".tmp." + std::to_string(current_pid());
}

void atomic_write_file(const std::string& path, std::string_view contents) {
  const std::string tmp = atomic_write_temp_path(path);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw IoError("atomic write: cannot create temp file '" + tmp + "'");
    }
    out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
    out.flush();
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      throw IoError("atomic write: short write to '" + tmp + "' (disk full?)");
    }
  }
  // rename(2) atomically replaces `path`; the destination never holds a
  // partial file, no matter when the process dies.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw IoError("atomic write: cannot rename '" + tmp + "' to '" + path + "'");
  }
}

void atomic_write_text(const std::string& path,
                       const std::function<void(std::ostream&)>& producer) {
  std::ostringstream buffer;
  producer(buffer);
  if (!buffer) {
    throw IoError("atomic write: serializer failed before reaching '" + path + "'");
  }
  atomic_write_file(path, buffer.str());
}

}  // namespace eim::support
