#include "eim/support/atomic_write.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "eim/support/error.hpp"

#if defined(_WIN32)
#include <process.h>
#else
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace eim::support {

namespace {

long current_pid() noexcept {
#if defined(_WIN32)
  return static_cast<long>(_getpid());
#else
  return static_cast<long>(getpid());
#endif
}

AtomicWriteFaults g_faults;

}  // namespace

void set_atomic_write_faults(const AtomicWriteFaults& faults) noexcept {
  g_faults = faults;
}

std::string atomic_write_temp_path(const std::string& path) {
  return path + ".tmp." + std::to_string(current_pid());
}

#if !defined(_WIN32)

namespace {

// Write the temp file through raw POSIX I/O so the data is durably on disk
// (fsync) before the rename publishes it. Throws IoError with the temp file
// removed on any failure; never touches the destination.
void write_temp_posix(const std::string& tmp, std::string_view contents) {
  const int fd = g_faults.fail_create
                     ? -1
                     : ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                              0644);
  if (fd < 0) {
    throw IoError("atomic write: cannot create temp file '" + tmp + "'");
  }
  std::size_t written = 0;
  while (written < contents.size()) {
    std::size_t chunk = contents.size() - written;
    if (g_faults.short_write_after >= 0) {
      const auto cap = static_cast<std::size_t>(g_faults.short_write_after);
      if (written >= cap) {
        // Injected ENOSPC: the device accepted a prefix, then filled up.
        ::close(fd);
        std::remove(tmp.c_str());
        throw IoError("atomic write: short write to '" + tmp + "' (disk full?)");
      }
      chunk = std::min(chunk, cap - written);
    }
    const ssize_t n = ::write(fd, contents.data() + written, chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      std::remove(tmp.c_str());
      throw IoError("atomic write: short write to '" + tmp + "' (disk full?)");
    }
    written += static_cast<std::size_t>(n);
  }
  if (g_faults.fail_fsync || ::fsync(fd) != 0) {
    ::close(fd);
    std::remove(tmp.c_str());
    throw IoError("atomic write: fsync of '" + tmp + "' failed");
  }
  if (::close(fd) != 0) {
    std::remove(tmp.c_str());
    throw IoError("atomic write: close of '" + tmp + "' failed");
  }
}

// Best-effort directory sync so the rename itself survives power loss; a
// failure here is not an error (the rename is already visible, and some
// filesystems reject directory fsync).
void sync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

#endif  // !_WIN32

void atomic_write_file(const std::string& path, std::string_view contents) {
  const std::string tmp = atomic_write_temp_path(path);
#if defined(_WIN32)
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out || g_faults.fail_create) {
      throw IoError("atomic write: cannot create temp file '" + tmp + "'");
    }
    const auto cap = g_faults.short_write_after >= 0
                         ? std::min<std::size_t>(
                               contents.size(),
                               static_cast<std::size_t>(g_faults.short_write_after))
                         : contents.size();
    out.write(contents.data(), static_cast<std::streamsize>(cap));
    out.flush();
    if (!out || cap != contents.size() || g_faults.fail_fsync) {
      out.close();
      std::remove(tmp.c_str());
      throw IoError("atomic write: short write to '" + tmp + "' (disk full?)");
    }
  }
#else
  write_temp_posix(tmp, contents);
#endif
  // rename(2) atomically replaces `path`; the destination never holds a
  // partial file, no matter when the process dies.
  if (g_faults.fail_rename || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw IoError("atomic write: cannot rename '" + tmp + "' to '" + path + "'");
  }
#if !defined(_WIN32)
  sync_parent_dir(path);
#endif
}

void atomic_write_text(const std::string& path,
                       const std::function<void(std::ostream&)>& producer) {
  std::ostringstream buffer;
  producer(buffer);
  if (!buffer) {
    throw IoError("atomic write: serializer failed before reaching '" + path + "'");
  }
  atomic_write_file(path, buffer.str());
}

}  // namespace eim::support
