#include "eim/support/table.hpp"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <sstream>

#include "eim/support/error.hpp"

namespace eim::support {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  EIM_CHECK_MSG(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> row) {
  EIM_CHECK_MSG(row.size() == header_.size(), "row arity mismatch");
  rows_.push_back(std::move(row));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(widths[c]))
         << (c == 0 ? std::left : std::right) << row[c];
      os << std::right;
    }
    os << " |\n";
  };

  print_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << (c == 0 ? "|" : "-|") << std::string(widths[c] + 2, '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) print_row(row);
}

std::string TextTable::num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string TextTable::count(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

}  // namespace eim::support
