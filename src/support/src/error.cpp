#include "eim/support/error.hpp"

#include <sstream>

namespace eim::support {

int exit_code_for(const Error& e) noexcept {
  if (dynamic_cast<const ClusterQuorumError*>(&e) != nullptr) return kExitClusterLost;
  if (dynamic_cast<const InvalidArgumentError*>(&e) != nullptr) return kExitBadArgs;
  if (dynamic_cast<const IoError*>(&e) != nullptr) return kExitIo;
  if (dynamic_cast<const DeviceOutOfMemoryError*>(&e) != nullptr) return kExitDeviceOom;
  if (dynamic_cast<const DeviceFaultError*>(&e) != nullptr) return kExitDeviceFault;
  if (dynamic_cast<const DeviceLostError*>(&e) != nullptr) return kExitDeviceFault;
  return kExitError;
}

const char* error_kind_for(const Error& e) noexcept {
  switch (exit_code_for(e)) {
    case kExitBadArgs: return "bad_args";
    case kExitIo: return "io";
    case kExitDeviceOom: return "device_oom";
    case kExitDeviceFault: return "device_fault";
    case kExitClusterLost: return "cluster_lost";
    default: return "error";
  }
}

}  // namespace eim::support

namespace eim::support::detail {

void throw_check_failure(const char* expr, const char* file, int line,
                         const std::string& message) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!message.empty()) os << " (" << message << ")";
  throw Error(os.str());
}

}  // namespace eim::support::detail
