// Whole-block middle of RandomStream's bulk fills.
//
// The Philox lane loop is the one place in the library where raw ALU
// throughput matters: on CPUs it is the direct stand-in for the device-side
// curand batch the paper's sampler would run. Two bodies exist:
//
//  * a hand-scheduled AVX-512 kernel (even/odd u64-lane convention, below),
//    selected at runtime where the host supports it;
//  * a portable lane-array loop compiled as ISA clones (ifunc), so the
//    baseline build stays at plain x86-64 while the loader transparently
//    picks an AVX2 body on hosts without AVX-512.
//
// Every path computes the identical bit sequence — the kernels are pure
// 32-bit integer mixing plus an exact float scale — so dispatch never
// affects determinism, only wall time.
#include "eim/support/rng.hpp"

#include <cstddef>
#include <cstdint>
#include <type_traits>

#if defined(__x86_64__) && defined(__gnu_linux__) && \
    (defined(__GNUC__) || defined(__clang__))
#define EIM_PHILOX_X86 1
#include <immintrin.h>
// target_clones needs ifunc support (GCC/Clang on x86-64 Linux with glibc);
// elsewhere the plain definition is used and the compiler's baseline wins.
#define EIM_PHILOX_CLONES __attribute__((target_clones("avx2", "default")))
#else
#define EIM_PHILOX_X86 0
#define EIM_PHILOX_CLONES
#endif

namespace eim::support {
namespace {

/// Map a raw Philox word to the output type: identity for u32, the exact
/// 24-bit mantissa scale for float (bit-equal to RandomStream::next_float).
inline std::uint32_t map_word(std::uint32_t v, std::uint32_t* /*tag*/) noexcept {
  return v;
}
inline float map_word(std::uint32_t v, float* /*tag*/) noexcept {
  return static_cast<float>(v >> 8) * 0x1.0p-24f;
}

/// Scalar per-block tail shared by every path: one Philox application,
/// stored in consumption order (block_[3..0]).
template <typename Out>
inline void scalar_blocks(const Philox4x32::Key key,
                          const std::array<std::uint32_t, 2> base,
                          std::uint64_t counter, Out* out, std::size_t first,
                          std::size_t num_blocks) noexcept {
  for (std::size_t b = first; b < num_blocks; ++b) {
    const std::uint64_t ctr = counter + b;
    const Philox4x32::Counter blk = Philox4x32::apply(
        {static_cast<std::uint32_t>(ctr), static_cast<std::uint32_t>(ctr >> 32),
         base[0], base[1]},
        key);
    Out* const dst = out + 4 * b;
    dst[0] = map_word(blk[3], out);
    dst[1] = map_word(blk[2], out);
    dst[2] = map_word(blk[1], out);
    dst[3] = map_word(blk[0], out);
  }
}

/// Portable bulk path: the lane state lives in parallel arrays so each round
/// is a straight-line loop over lanes — the pattern every vector ISA picks
/// up as widening 32x32->64 multiplies. 32 lanes keep two accumulator
/// vectors in flight per register file on AVX2 and AVX-512 alike.
template <typename Out>
inline void generic_blocks(const Philox4x32::Key key,
                           const std::array<std::uint32_t, 2> base,
                           std::uint64_t counter, Out* out,
                           std::size_t num_blocks) noexcept {
  constexpr std::size_t kLanes = 32;
  std::size_t b = 0;
  while (num_blocks - b >= kLanes) {
    std::uint32_t c0[kLanes], c1[kLanes], c2[kLanes], c3[kLanes];
    for (std::size_t l = 0; l < kLanes; ++l) {
      const std::uint64_t ctr = counter + b + l;
      c0[l] = static_cast<std::uint32_t>(ctr);
      c1[l] = static_cast<std::uint32_t>(ctr >> 32);
      c2[l] = base[0];
      c3[l] = base[1];
    }
    std::uint32_t k0 = key[0];
    std::uint32_t k1 = key[1];
    for (int r = 0; r < Philox4x32::kRounds; ++r) {
      for (std::size_t l = 0; l < kLanes; ++l) {
        const std::uint32_t lo0 = Philox4x32::kMul0 * c0[l];
        const auto hi0 = static_cast<std::uint32_t>(
            (static_cast<std::uint64_t>(Philox4x32::kMul0) * c0[l]) >> 32);
        const std::uint32_t lo1 = Philox4x32::kMul1 * c2[l];
        const auto hi1 = static_cast<std::uint32_t>(
            (static_cast<std::uint64_t>(Philox4x32::kMul1) * c2[l]) >> 32);
        c0[l] = hi1 ^ c1[l] ^ k0;
        c1[l] = lo1;
        c2[l] = hi0 ^ c3[l] ^ k1;
        c3[l] = lo0;
      }
      k0 += Philox4x32::kWeyl0;
      k1 += Philox4x32::kWeyl1;
    }
    Out* const dst = out + 4 * b;
    for (std::size_t l = 0; l < kLanes; ++l) {
      dst[4 * l + 0] = map_word(c3[l], out);
      dst[4 * l + 1] = map_word(c2[l], out);
      dst[4 * l + 2] = map_word(c1[l], out);
      dst[4 * l + 3] = map_word(c0[l], out);
    }
    b += kLanes;
  }
  scalar_blocks(key, base, counter, out, b, num_blocks);
}

// The clones must wrap the template body in plain functions: target_clones
// resolves through an ifunc symbol, so each instantiation needs its own
// out-of-line definition.
EIM_PHILOX_CLONES
void generic_fill(const Philox4x32::Key key, const std::array<std::uint32_t, 2> base,
                  std::uint64_t counter, std::uint32_t* out,
                  std::size_t num_blocks) noexcept {
  generic_blocks(key, base, counter, out, num_blocks);
}

EIM_PHILOX_CLONES
void generic_fill(const Philox4x32::Key key, const std::array<std::uint32_t, 2> base,
                  std::uint64_t counter, float* out, std::size_t num_blocks) noexcept {
  generic_blocks(key, base, counter, out, num_blocks);
}

#if EIM_PHILOX_X86

// GCC 12 flags "__Y may be used uninitialized" inside avx512fintrin.h when
// mask intrinsics are inlined at -O3; the passthrough operand is genuinely
// unused under a constant mask, so the warning is a false positive.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

/// Hand-scheduled AVX-512 kernel. Per 8-block group (one zmm of u64 lanes)
/// the state convention is: c0/c2 in the EVEN u32 half of each lane (where
/// vpmuludq reads its multiplicand), c1/c3 in the ODD half. A round is then
/// two multiplies, two three-way xors (vpternlogd) and four lane-fixup
/// shifts — no blends — with all ten round keys hoisted into broadcast
/// registers. Two groups run in flight to cover the multiply latency.
__attribute__((target("avx512f"))) inline void avx512_rounds(
    __m512i& zc0, __m512i& zc1, __m512i& zc2, __m512i& zc3, const __m512i m0,
    const __m512i m1, const __m512i* k0r, const __m512i* k1r) noexcept {
  for (int r = 0; r < Philox4x32::kRounds; ++r) {
    const __m512i p0 = _mm512_mul_epu32(zc0, m0);  // [lo0 even | hi0 odd]
    const __m512i p1 = _mm512_mul_epu32(zc2, m1);  // [lo1 even | hi1 odd]
    const __m512i t0 = _mm512_ternarylogic_epi32(p1, zc1, k0r[r], 0x96);
    const __m512i t2 = _mm512_ternarylogic_epi32(p0, zc3, k1r[r], 0x96);
    zc0 = _mm512_srli_epi64(t0, 32);  // n0 = hi1^c1^k0 -> even
    zc2 = _mm512_srli_epi64(t2, 32);  // n2 = hi0^c3^k1 -> even
    zc1 = _mm512_slli_epi64(p1, 32);  // n1 = lo1       -> odd
    zc3 = _mm512_slli_epi64(p0, 32);  // n3 = lo0       -> odd
  }
}

/// Pack one finished 8-block group into consumption order and store it.
/// `words` (<= 32) masks the two 16-word stores so a partial tail step never
/// writes past the caller's range. Consumption order per block is
/// [c3, c2, c1, c0]; pack as u64 halves w0 = c3|c2<<32, w1 = c1|c0<<32, then
/// interleave w0/w1 lanes.
template <typename Out>
__attribute__((target("avx512f"))) inline void avx512_emit(
    const __m512i zc0, const __m512i zc1, const __m512i zc2, const __m512i zc3,
    const __m512i idx_lo, const __m512i idx_hi, Out* dst,
    std::uint32_t words) noexcept {
  constexpr bool kFloat = std::is_same_v<Out, float>;
  const __m512i w0 =
      _mm512_or_epi64(_mm512_srli_epi64(zc3, 32), _mm512_slli_epi64(zc2, 32));
  const __m512i w1 =
      _mm512_or_epi64(_mm512_srli_epi64(zc1, 32), _mm512_slli_epi64(zc0, 32));
  const __m512i o0 = _mm512_permutex2var_epi64(w0, idx_lo, w1);
  const __m512i o1 = _mm512_permutex2var_epi64(w0, idx_hi, w1);
  const std::uint32_t hi_words = words > 16 ? words - 16 : 0;
  const auto mask0 = words >= 16 ? static_cast<__mmask16>(0xFFFF)
                                 : static_cast<__mmask16>((1u << words) - 1u);
  const auto mask1 = hi_words >= 16 ? static_cast<__mmask16>(0xFFFF)
                                    : static_cast<__mmask16>((1u << hi_words) - 1u);
  if constexpr (kFloat) {
    const __m512 scale = _mm512_set1_ps(0x1.0p-24f);
    const __m512 f0 =
        _mm512_mul_ps(_mm512_cvtepu32_ps(_mm512_srli_epi32(o0, 8)), scale);
    const __m512 f1 =
        _mm512_mul_ps(_mm512_cvtepu32_ps(_mm512_srli_epi32(o1, 8)), scale);
    _mm512_mask_storeu_ps(dst, mask0, f0);
    _mm512_mask_storeu_ps(dst + 16, mask1, f1);
  } else {
    _mm512_mask_storeu_epi32(dst, mask0, o0);
    _mm512_mask_storeu_epi32(dst + 16, mask1, o1);
  }
}

template <typename Out>
__attribute__((target("avx512f"))) void avx512_fill(
    const Philox4x32::Key key, const std::array<std::uint32_t, 2> base,
    std::uint64_t counter, Out* out, std::size_t num_blocks) noexcept {
  constexpr std::size_t kGroup = 8;   // blocks per zmm (u64 lanes)
  constexpr std::size_t kUnroll = 2;  // independent groups in flight
  constexpr std::size_t kStep = kGroup * kUnroll;

  const __m512i m0 = _mm512_set1_epi64(Philox4x32::kMul0);
  const __m512i m1 = _mm512_set1_epi64(Philox4x32::kMul1);
  __m512i k0r[Philox4x32::kRounds];
  __m512i k1r[Philox4x32::kRounds];
  {
    std::uint32_t k0 = key[0];
    std::uint32_t k1 = key[1];
    for (int r = 0; r < Philox4x32::kRounds; ++r) {
      k0r[r] = _mm512_set1_epi64(static_cast<std::uint64_t>(k0) << 32);
      k1r[r] = _mm512_set1_epi64(static_cast<std::uint64_t>(k1) << 32);
      k0 += Philox4x32::kWeyl0;
      k1 += Philox4x32::kWeyl1;
    }
  }
  const __m512i lo32 = _mm512_set1_epi64(0xFFFFFFFFll);
  const __m512i c2_init = _mm512_set1_epi64(base[0]);
  const __m512i c3_init = _mm512_set1_epi64(static_cast<std::uint64_t>(base[1]) << 32);
  const __m512i lane_ids = _mm512_set_epi64(7, 6, 5, 4, 3, 2, 1, 0);
  // permutex2var indices interleaving the two packed halves of a group:
  // o0 = [w0_0, w1_0, .., w0_3, w1_3], o1 the upper four lanes.
  const __m512i idx_lo = _mm512_set_epi64(11, 3, 10, 2, 9, 1, 8, 0);
  const __m512i idx_hi = _mm512_set_epi64(15, 7, 14, 6, 13, 5, 12, 4);

  std::size_t b = 0;
  while (num_blocks - b >= kStep) {
    __m512i zc0[kUnroll], zc1[kUnroll], zc2[kUnroll], zc3[kUnroll];
    for (std::size_t g = 0; g < kUnroll; ++g) {
      // Full 64-bit counters per lane: c0 = low word (even half), c1 = high
      // word (odd half); add_epi64 keeps the carry into c1 exact.
      const __m512i ctr = _mm512_add_epi64(
          _mm512_set1_epi64(static_cast<long long>(counter + b + g * kGroup)),
          lane_ids);
      zc0[g] = _mm512_and_epi64(ctr, lo32);
      zc1[g] = _mm512_andnot_epi64(lo32, ctr);
      zc2[g] = c2_init;
      zc3[g] = c3_init;
    }
    for (std::size_t g = 0; g < kUnroll; ++g) {
      avx512_rounds(zc0[g], zc1[g], zc2[g], zc3[g], m0, m1, k0r, k1r);
    }
    for (std::size_t g = 0; g < kUnroll; ++g) {
      avx512_emit(zc0[g], zc1[g], zc2[g], zc3[g], idx_lo, idx_hi,
                  out + 4 * (b + g * kGroup), 32);
    }
    b += kStep;
  }
  // Partial tail: masked stores keep the kernel path for >= 4 blocks (the
  // surplus lanes are computed and dropped); a shorter stub is cheaper
  // scalar.
  while (num_blocks - b >= 4) {
    const std::uint32_t words = static_cast<std::uint32_t>(4 * (num_blocks - b));
    const __m512i ctr = _mm512_add_epi64(
        _mm512_set1_epi64(static_cast<long long>(counter + b)), lane_ids);
    __m512i zc0 = _mm512_and_epi64(ctr, lo32);
    __m512i zc1 = _mm512_andnot_epi64(lo32, ctr);
    __m512i zc2 = c2_init;
    __m512i zc3 = c3_init;
    avx512_rounds(zc0, zc1, zc2, zc3, m0, m1, k0r, k1r);
    avx512_emit(zc0, zc1, zc2, zc3, idx_lo, idx_hi, out + 4 * b,
                words > 32 ? 32 : words);
    b += num_blocks - b >= kGroup ? kGroup : num_blocks - b;
  }
  scalar_blocks(key, base, counter, out, b, num_blocks);
}

#pragma GCC diagnostic pop

bool have_avx512f() noexcept {
#if defined(__clang__) || defined(__GNUC__)
  return __builtin_cpu_supports("avx512f") != 0;
#else
  return false;
#endif
}

#endif  // EIM_PHILOX_X86

}  // namespace

void RandomStream::fill_blocks(std::uint32_t* out, std::size_t num_blocks) noexcept {
#if EIM_PHILOX_X86
  if (have_avx512f()) {
    avx512_fill(key_, base_, counter_, out, num_blocks);
    counter_ += num_blocks;
    return;
  }
#endif
  generic_fill(key_, base_, counter_, out, num_blocks);
  counter_ += num_blocks;
}

void RandomStream::fill_blocks(float* out, std::size_t num_blocks) noexcept {
#if EIM_PHILOX_X86
  if (have_avx512f()) {
    avx512_fill(key_, base_, counter_, out, num_blocks);
    counter_ += num_blocks;
    return;
  }
#endif
  generic_fill(key_, base_, counter_, out, num_blocks);
  counter_ += num_blocks;
}

}  // namespace eim::support
