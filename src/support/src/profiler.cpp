#include "eim/support/profiler.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

#if EIM_PROFILER_SUPPORTED
#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <signal.h>
#include <sys/time.h>

#include <cstdlib>
#include <cstring>
#endif

namespace eim::support::profiler {

// ---------------------------------------------------------------------------
// WallProfile

WallTimer& WallProfile::timer(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = timers_.find(name);
  if (it == timers_.end()) {
    it = timers_.emplace(std::string(name), std::make_unique<WallTimer>()).first;
  }
  return *it->second;
}

void WallProfile::write_json(JsonWriter& w) const {
  std::lock_guard<std::mutex> lock(mu_);
  w.begin_object();
  for (const auto& [name, timer] : timers_) {
    const metrics::Histogram& h = timer->histogram();
    w.key(name);
    w.begin_object();
    w.field("entries", h.count());
    w.field("total_seconds", static_cast<double>(h.sum()) * 1e-9);
    w.field("p50_ns", h.quantile(0.5));
    w.field("p95_ns", h.quantile(0.95));
    w.field("max_ns", h.max_value());
    w.end_object();
  }
  w.end_object();
}

// ---------------------------------------------------------------------------
// SamplingProfiler

#if EIM_PROFILER_SUPPORTED

namespace {

// The SIGPROF disposition is process-global, so exactly one profiler may be
// armed; the handler reads everything it needs through this pointer.
std::atomic<SamplingProfiler*> g_active{nullptr};
struct sigaction g_previous_action;

}  // namespace

bool SamplingProfiler::supported() noexcept { return true; }

SamplingProfiler::SamplingProfiler(Options options) : options_(options) {
  if (options_.hz == 0) options_.hz = 1;
  if (options_.max_samples == 0) options_.max_samples = 1;
}

SamplingProfiler::~SamplingProfiler() { stop(); }

std::size_t SamplingProfiler::num_samples() const noexcept {
  const std::size_t claimed = next_slot_.load(std::memory_order_relaxed);
  return std::min(claimed, options_.max_samples);
}

// Async-signal-safe by construction: one relaxed fetch_add to claim a slot,
// one backtrace() into preallocated storage, one release store to publish
// the depth. No allocation, no locks, no iostream.
void SamplingProfiler::handle_signal(int) {
  SamplingProfiler* self = g_active.load(std::memory_order_acquire);
  if (self == nullptr) return;
  const std::size_t slot = self->next_slot_.fetch_add(1, std::memory_order_relaxed);
  if (slot >= self->options_.max_samples) {
    self->dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  void** frames = self->frames_.get() + slot * kMaxFrames;
  const int depth = ::backtrace(frames, static_cast<int>(kMaxFrames));
  self->depths_[slot].store(depth > 0 ? depth : 0, std::memory_order_release);
}

bool SamplingProfiler::start() {
  if (running_) return true;
  SamplingProfiler* expected = nullptr;
  if (!g_active.compare_exchange_strong(expected, this,
                                        std::memory_order_acq_rel)) {
    return false;  // another instance holds the SIGPROF disposition
  }

  frames_ = std::make_unique<void*[]>(options_.max_samples * kMaxFrames);
  depths_ = std::make_unique<std::atomic<std::int32_t>[]>(options_.max_samples);
  for (std::size_t i = 0; i < options_.max_samples; ++i) {
    depths_[i].store(0, std::memory_order_relaxed);
  }
  next_slot_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);

  // Prime backtrace() outside the signal context: the first call may dlopen
  // libgcc, which is not async-signal-safe.
  void* prime[4];
  (void)::backtrace(prime, 4);

  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = &SamplingProfiler::handle_signal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  if (sigaction(SIGPROF, &action, &g_previous_action) != 0) {
    g_active.store(nullptr, std::memory_order_release);
    return false;
  }

  itimerval timer;
  const long usec = std::max(1L, 1000000L / static_cast<long>(options_.hz));
  timer.it_interval.tv_sec = usec / 1000000L;
  timer.it_interval.tv_usec = usec % 1000000L;
  timer.it_value = timer.it_interval;
  if (setitimer(ITIMER_PROF, &timer, nullptr) != 0) {
    sigaction(SIGPROF, &g_previous_action, nullptr);
    g_active.store(nullptr, std::memory_order_release);
    return false;
  }
  running_ = true;
  return true;
}

void SamplingProfiler::stop() {
  if (!running_) return;
  itimerval off;
  std::memset(&off, 0, sizeof(off));
  setitimer(ITIMER_PROF, &off, nullptr);
  sigaction(SIGPROF, &g_previous_action, nullptr);
  g_active.store(nullptr, std::memory_order_release);
  running_ = false;
}

namespace {

/// Resolve one captured address to a demangled symbol name; hex fallback
/// when dladdr finds nothing (static binary, JIT page, stripped symbol).
/// `is_return_address` frames point one past the call, so probe addr-1 to
/// land inside the calling instruction.
std::string symbolize_frame(void* addr, bool is_return_address) {
  Dl_info info;
  void* probe = addr;
  if (is_return_address) {
    probe = reinterpret_cast<void*>(reinterpret_cast<std::uintptr_t>(addr) - 1);
  }
  if ((dladdr(probe, &info) == 0 || info.dli_sname == nullptr) &&
      (dladdr(addr, &info) == 0 || info.dli_sname == nullptr)) {
    std::ostringstream hex;
    hex << addr;
    return hex.str();
  }
  int status = 0;
  char* demangled = abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
  if (status == 0 && demangled != nullptr) {
    std::string name(demangled);
    std::free(demangled);
    return name;
  }
  std::free(demangled);
  return info.dli_sname;
}

}  // namespace

void SamplingProfiler::write_folded(std::ostream& out) const {
  // backtrace() captured from inside the handler: frame 0 is the handler
  // itself and frame 1 the kernel signal trampoline — neither belongs to
  // the interrupted program, so the fold skips them.
  constexpr std::size_t kSkipLeadingFrames = 2;

  std::map<void*, std::string> symbol_cache;
  const auto symbol_of = [&](void* addr, bool is_return) -> const std::string& {
    auto it = symbol_cache.find(addr);
    if (it == symbol_cache.end()) {
      it = symbol_cache.emplace(addr, symbolize_frame(addr, is_return)).first;
    }
    return it->second;
  };

  std::map<std::string, std::uint64_t> folded;
  const std::size_t captured = num_samples();
  for (std::size_t slot = 0; slot < captured; ++slot) {
    const auto depth = static_cast<std::size_t>(
        std::max<std::int32_t>(0, depths_[slot].load(std::memory_order_acquire)));
    if (depth <= kSkipLeadingFrames) continue;
    void* const* frames = frames_.get() + slot * kMaxFrames;
    // backtrace() is leaf-first; folded format wants root-first.
    std::string line;
    for (std::size_t f = depth; f-- > kSkipLeadingFrames;) {
      // The interrupted PC (the leaf, f == kSkipLeadingFrames) is exact;
      // every outer frame is a return address.
      const bool is_return = f != kSkipLeadingFrames;
      if (!line.empty()) line += ';';
      line += symbol_of(frames[f], is_return);
    }
    ++folded[line];
  }
  for (const auto& [stack, count] : folded) {
    out << stack << ' ' << count << '\n';
  }
}

#else  // !EIM_PROFILER_SUPPORTED

bool SamplingProfiler::supported() noexcept { return false; }

SamplingProfiler::SamplingProfiler(Options options) : options_(options) {}
SamplingProfiler::~SamplingProfiler() = default;

std::size_t SamplingProfiler::num_samples() const noexcept { return 0; }
void SamplingProfiler::handle_signal(int) {}
bool SamplingProfiler::start() { return false; }
void SamplingProfiler::stop() {}
void SamplingProfiler::write_folded(std::ostream&) const {}

#endif  // EIM_PROFILER_SUPPORTED

}  // namespace eim::support::profiler
