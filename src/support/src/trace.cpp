#include "eim/support/trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "eim/support/error.hpp"
#include "eim/support/json.hpp"

namespace eim::support::trace {

namespace {

/// Shortest-round-trip double formatting for the trace export: %.17g is
/// guaranteed to parse back to the identical IEEE value, which is what lets
/// the tests assert that parsed span durations sum *exactly* to
/// DeviceTimeline::total_seconds(). (JsonWriter's default 15 digits is fine
/// for human-facing reports but can drop the last bit.)
std::string exact_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

const char* to_string(SpanCategory cat) noexcept {
  switch (cat) {
    case SpanCategory::Phase: return "phase";
    case SpanCategory::Round: return "round";
    case SpanCategory::Wave: return "wave";
    case SpanCategory::Kernel: return "kernel";
    case SpanCategory::Transfer: return "transfer";
    case SpanCategory::Allocation: return "allocation";
    case SpanCategory::Backoff: return "backoff";
    case SpanCategory::Collective: return "collective";
  }
  return "unknown";
}

std::uint32_t TraceRecorder::register_process(const std::string& name,
                                              const void* key) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (key != nullptr) {
    const auto it = pids_.find(key);
    if (it != pids_.end()) {
      process_names_[it->second] = name;  // latest registration names the track
      return it->second;
    }
  }
  const auto pid = static_cast<std::uint32_t>(process_names_.size());
  process_names_.push_back(name);
  if (key != nullptr) pids_.emplace(key, pid);
  return pid;
}

std::optional<std::uint32_t> TraceRecorder::pid_of(const void* key) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = pids_.find(key);
  if (it == pids_.end()) return std::nullopt;
  return it->second;
}

std::uint32_t TraceRecorder::tid_for_locked(std::thread::id id) {
  const auto it = tids_.find(id);
  if (it != tids_.end()) return it->second;
  const auto tid = static_cast<std::uint32_t>(tids_.size());
  tids_.emplace(id, tid);
  return tid;
}

std::uint64_t TraceRecorder::begin_span(std::uint32_t pid, SpanCategory category,
                                        std::string name, double modeled_start) {
  const std::lock_guard<std::mutex> lock(mu_);
  const std::thread::id self = std::this_thread::get_id();
  auto& stack = open_stacks_[self];

  TraceSpan span;
  span.sequence = next_sequence_++;
  span.pid = pid;
  span.tid = tid_for_locked(self);
  span.name = std::move(name);
  span.category = category;
  span.modeled_start = modeled_start;
  span.modeled_seconds = -1.0;  // sentinel: still open
  span.parent = stack.empty() ? -1 : static_cast<std::int64_t>(stack.back());
  const std::uint64_t sequence = span.sequence;
  stack.push_back(sequence);
  spans_.push_back(std::move(span));
  return sequence;
}

void TraceRecorder::end_span(std::uint64_t id, double modeled_end,
                             double wall_seconds) {
  const std::lock_guard<std::mutex> lock(mu_);
  // Sequences are shared with instants, so the id is not an index; the span
  // being ended is almost always near the back.
  const auto rit = std::find_if(spans_.rbegin(), spans_.rend(),
                                [id](const TraceSpan& s) { return s.sequence == id; });
  EIM_CHECK_MSG(rit != spans_.rend(), "end_span on unknown span id");
  TraceSpan& span = *rit;
  if (span.modeled_seconds >= 0.0) return;  // already closed
  span.modeled_seconds = std::max(0.0, modeled_end - span.modeled_start);
  span.wall_seconds = wall_seconds;
  auto& stack = open_stacks_[std::this_thread::get_id()];
  const auto it = std::find(stack.begin(), stack.end(), id);
  if (it != stack.end()) stack.erase(it, stack.end());  // pop it and any orphans
}

void TraceRecorder::complete_span(std::uint32_t pid, SpanCategory category,
                                  std::string name, double modeled_start,
                                  double modeled_seconds) {
  const std::lock_guard<std::mutex> lock(mu_);
  const std::thread::id self = std::this_thread::get_id();
  const auto& stack = open_stacks_[self];

  TraceSpan span;
  span.sequence = next_sequence_++;
  span.pid = pid;
  span.tid = tid_for_locked(self);
  span.name = std::move(name);
  span.category = category;
  span.modeled_start = modeled_start;
  span.modeled_seconds = modeled_seconds;
  span.parent = stack.empty() ? -1 : static_cast<std::int64_t>(stack.back());
  spans_.push_back(std::move(span));
}

void TraceRecorder::instant(std::uint32_t pid, std::string name, std::string detail,
                            double modeled_ts) {
  const std::lock_guard<std::mutex> lock(mu_);
  TraceInstant inst;
  inst.sequence = next_sequence_++;
  inst.pid = pid;
  inst.tid = tid_for_locked(std::this_thread::get_id());
  inst.name = std::move(name);
  inst.detail = std::move(detail);
  inst.modeled_ts = modeled_ts;
  instants_.push_back(std::move(inst));
}

std::uint64_t TraceRecorder::new_flow_id() {
  const std::lock_guard<std::mutex> lock(mu_);
  return next_flow_id_++;
}

void TraceRecorder::flow_start(std::uint32_t pid, std::uint64_t flow_id,
                               std::string name, double modeled_ts) {
  const std::lock_guard<std::mutex> lock(mu_);
  flows_.push_back(TraceFlow{next_sequence_++, flow_id, pid,
                             tid_for_locked(std::this_thread::get_id()),
                             std::move(name), modeled_ts, /*start=*/true});
}

void TraceRecorder::flow_end(std::uint32_t pid, std::uint64_t flow_id,
                             std::string name, double modeled_ts) {
  const std::lock_guard<std::mutex> lock(mu_);
  flows_.push_back(TraceFlow{next_sequence_++, flow_id, pid,
                             tid_for_locked(std::this_thread::get_id()),
                             std::move(name), modeled_ts, /*start=*/false});
}

std::vector<TraceSpan> TraceRecorder::spans() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::vector<TraceInstant> TraceRecorder::instants() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return instants_;
}

std::vector<TraceFlow> TraceRecorder::flows() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return flows_;
}

void TraceRecorder::write_chrome_trace(std::ostream& out) const {
  const std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w(out);
  w.begin_object();
  w.field("displayTimeUnit", "ms");
  w.begin_array("traceEvents");

  // Track metadata first: process names for every registered pid, thread
  // names for every host worker that recorded.
  for (std::uint32_t pid = 0; pid < process_names_.size(); ++pid) {
    w.begin_object()
        .field("ph", "M")
        .field("name", "process_name")
        .field("pid", std::uint64_t{pid})
        .field("tid", std::uint64_t{0})
        .key("args")
        .begin_object()
        .field("name", std::string_view(process_names_[pid]))
        .end_object()
        .end_object();
    // Pin the UI track order to registration order (cluster, then node 0's
    // devices, ...): Perfetto otherwise sorts tracks by name.
    w.begin_object()
        .field("ph", "M")
        .field("name", "process_sort_index")
        .field("pid", std::uint64_t{pid})
        .field("tid", std::uint64_t{0})
        .key("args")
        .begin_object()
        .field("sort_index", std::uint64_t{pid})
        .end_object()
        .end_object();
  }
  for (const auto& [thread_id, tid] : tids_) {
    (void)thread_id;
    for (std::uint32_t pid = 0; pid < process_names_.size(); ++pid) {
      w.begin_object()
          .field("ph", "M")
          .field("name", "thread_name")
          .field("pid", std::uint64_t{pid})
          .field("tid", std::uint64_t{tid})
          .key("args")
          .begin_object()
          .field("name", "host-worker-" + std::to_string(tid))
          .end_object()
          .end_object();
    }
  }

  // Spans as ph:"X" complete events. ts/dur are microseconds of *modeled*
  // time; args carry the raw seconds at full precision plus the stable
  // sequence/parent ids. Wall time is deliberately absent (bit-identical
  // traces across same-seed runs).
  for (const TraceSpan& span : spans_) {
    const double dur = std::max(0.0, span.modeled_seconds);  // open -> 0
    w.begin_object()
        .field("ph", "X")
        .field("name", std::string_view(span.name))
        .field("cat", to_string(span.category))
        .field("pid", std::uint64_t{span.pid})
        .field("tid", std::uint64_t{span.tid});
    w.key("ts").raw_value(exact_double(span.modeled_start * 1e6));
    w.key("dur").raw_value(exact_double(dur * 1e6));
    w.key("args").begin_object();
    w.field("seq", span.sequence);
    if (span.parent >= 0) w.field("parent", span.parent);
    w.key("seconds").raw_value(exact_double(dur));
    w.end_object();
    w.end_object();
  }

  // Instants as ph:"i", process-scoped so Perfetto draws a full-height line.
  for (const TraceInstant& inst : instants_) {
    w.begin_object()
        .field("ph", "i")
        .field("s", "p")
        .field("name", std::string_view(inst.name))
        .field("cat", "fault")
        .field("pid", std::uint64_t{inst.pid})
        .field("tid", std::uint64_t{inst.tid});
    w.key("ts").raw_value(exact_double(inst.modeled_ts * 1e6));
    w.key("args").begin_object();
    w.field("seq", inst.sequence);
    if (!inst.detail.empty()) w.field("detail", std::string_view(inst.detail));
    w.end_object();
    w.end_object();
  }

  // Flow arrows as ph:"s" (start) / ph:"f" (finish). The finish binds to
  // the enclosing slice ("bp":"e"), which is what makes Perfetto attach the
  // arrowhead to the receiving collective span rather than the next slice.
  for (const TraceFlow& flow : flows_) {
    w.begin_object()
        .field("ph", flow.start ? "s" : "f");
    if (!flow.start) w.field("bp", "e");
    w.field("name", std::string_view(flow.name))
        .field("cat", "flow")
        .field("id", flow.flow_id)
        .field("pid", std::uint64_t{flow.pid})
        .field("tid", std::uint64_t{flow.tid});
    w.key("ts").raw_value(exact_double(flow.modeled_ts * 1e6));
    w.key("args").begin_object();
    w.field("seq", flow.sequence);
    w.end_object();
    w.end_object();
  }

  w.end_array();
  w.end_object();
  out << '\n';
}

ScopedSpan::ScopedSpan(TraceRecorder* recorder, std::uint32_t pid,
                       SpanCategory category, std::string name, double modeled_start)
    : recorder_(recorder), modeled_start_(modeled_start), ended_(recorder == nullptr) {
  if (recorder_ == nullptr) return;
  wall_start_ = std::chrono::steady_clock::now();
  id_ = recorder_->begin_span(pid, category, std::move(name), modeled_start);
}

void ScopedSpan::end(double modeled_end) {
  if (ended_) return;
  ended_ = true;
  const auto elapsed = std::chrono::steady_clock::now() - wall_start_;
  recorder_->end_span(id_, modeled_end,
                      std::chrono::duration<double>(elapsed).count());
}

ScopedSpan::~ScopedSpan() { end(modeled_start_); }

}  // namespace eim::support::trace
