#include "eim/support/metrics.hpp"

#include <algorithm>
#include <utility>

#include "eim/support/profiler.hpp"

namespace eim::support::metrics {

namespace {

/// Emplace-or-find under the registry mutex; the unique_ptr indirection
/// keeps instrument addresses stable across later insertions.
template <typename Map, typename Instrument = typename Map::mapped_type::element_type>
Instrument& lookup(std::mutex& mu, Map& map, std::string_view name) {
  std::lock_guard<std::mutex> lock(mu);
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name), std::make_unique<Instrument>()).first;
  }
  return *it->second;
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  return lookup(mu_, counters_, name);
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  return lookup(mu_, gauges_, name);
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  return lookup(mu_, histograms_, name);
}

std::uint64_t Histogram::quantile(double q) const noexcept {
  const std::uint64_t total = count();
  if (total == 0) return 0;
  // Rank of the requested quantile, at least 1 so q -> first bucket works.
  auto rank = static_cast<std::uint64_t>(q * static_cast<double>(total));
  if (rank < 1) rank = 1;
  if (rank > total) rank = total;
  std::uint64_t cumulative = 0;
  for (std::uint32_t b = 0; b < kNumBuckets; ++b) {
    cumulative += bucket_count(b);
    if (cumulative >= rank) {
      // The bucket's upper bound, clamped by the true max (exact when the
      // quantile falls in the max's bucket).
      return std::min(bucket_upper(b), max_value());
    }
  }
  return max_value();
}

PhaseTimer& MetricsRegistry::phase(std::string_view name) {
  return lookup(mu_, phases_, name);
}

void MetricsRegistry::write_json(JsonWriter& w) const {
  std::lock_guard<std::mutex> lock(mu_);
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, c] : counters_) w.field(name, c->value());
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, g] : gauges_) w.field(name, g->value());
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name).begin_object();
    w.field("count", h->count())
        .field("sum", h->sum())
        .field("max", h->max_value())
        .field("p50", h->quantile(0.50))
        .field("p95", h->quantile(0.95));
    w.begin_array("buckets");
    for (std::uint32_t b = 0; b < Histogram::kNumBuckets; ++b) {
      const std::uint64_t n = h->bucket_count(b);
      if (n == 0) continue;  // sparse: only occupied buckets are reported
      w.begin_object()
          .field("le", Histogram::bucket_upper(b))
          .field("count", n)
          .end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.begin_array("phases");
  for (const auto& [name, p] : phases_) {
    w.begin_object()
        .field("name", std::string_view(name))
        .field("wall_seconds", p->wall_seconds())
        .field("modeled_seconds", p->modeled_seconds())
        .field("entries", p->entries())
        .end_object();
  }
  w.end_array();
  w.end_object();
}

ScopedPhase::ScopedPhase(PhaseTimer& timer) noexcept
    : timer_(&timer), start_(std::chrono::steady_clock::now()) {}

ScopedPhase::~ScopedPhase() {
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  timer_->add_wall(std::chrono::duration<double>(elapsed).count());
}

void restore_registry_json(MetricsRegistry& into, std::string_view json) {
  const JsonValue doc = parse_json(json);
  EIM_CHECK_MSG(doc.is_object(), "metrics snapshot is not a JSON object");
  if (const JsonValue* counters = doc.find("counters"); counters != nullptr) {
    for (const auto& [name, v] : counters->members()) {
      into.counter(name).add(static_cast<std::uint64_t>(v.as_int()));
    }
  }
  if (const JsonValue* gauges = doc.find("gauges"); gauges != nullptr) {
    for (const auto& [name, v] : gauges->members()) {
      into.gauge(name).set(static_cast<std::uint64_t>(v.as_int()));
    }
  }
  if (const JsonValue* histograms = doc.find("histograms"); histograms != nullptr) {
    for (const auto& [name, v] : histograms->members()) {
      Histogram& h = into.histogram(name);
      for (const JsonValue& bucket : v.at("buckets").items()) {
        const auto le = static_cast<std::uint64_t>(bucket.at("le").as_int());
        const auto n = static_cast<std::uint64_t>(bucket.at("count").as_int());
        h.merge_bucket(Histogram::bucket_of(le), n);
      }
      h.merge_totals(static_cast<std::uint64_t>(v.at("sum").as_int()),
                     static_cast<std::uint64_t>(v.at("max").as_int()));
    }
  }
  if (const JsonValue* phases = doc.find("phases"); phases != nullptr) {
    for (const JsonValue& p : phases->items()) {
      into.phase(p.at("name").as_string())
          .merge(p.at("wall_seconds").as_double(), p.at("modeled_seconds").as_double(),
                 static_cast<std::uint64_t>(p.at("entries").as_int()));
    }
  }
}

void RunReport::write_json(std::ostream& out) const {
  JsonWriter w(out);
  w.begin_object();
  w.field("schema", "eim.metrics.v3");
  w.field("tool", std::string_view(tool));
  w.key("run").begin_object();
  w.field("graph", std::string_view(graph))
      .field("algo", std::string_view(algo))
      .field("model", std::string_view(model))
      .field("vertices", vertices)
      .field("edges", edges)
      .field("k", std::uint64_t{k})
      .field("epsilon", epsilon);
  w.end_object();
  w.key("metrics");
  if (metrics != nullptr) {
    metrics->write_json(w);
  } else {
    w.null();
  }
  // v3 addition: host wall-clock attribution for the instrumented hot
  // scopes; null when the run was not profiled.
  w.key("wall");
  if (wall != nullptr) {
    wall->write_json(w);
  } else {
    w.null();
  }
  w.end_object();
  out << '\n';
}

}  // namespace eim::support::metrics
