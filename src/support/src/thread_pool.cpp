#include "eim/support/thread_pool.hpp"

#include <algorithm>
#include <exception>

#include "eim/support/bits.hpp"
#include "eim/support/error.hpp"

namespace eim::support {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  EIM_CHECK_MSG(task != nullptr, "null task submitted to ThreadPool");
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    std::lock_guard lock(mutex_);
    EIM_CHECK_MSG(!stopping_, "submit after ThreadPool shutdown");
    queue_.push_back(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t grain) {
  if (begin >= end) return;
  grain = std::max<std::size_t>(1, grain);

  auto cursor = std::make_shared<std::atomic<std::size_t>>(begin);
  auto first_error = std::make_shared<std::atomic<bool>>(false);
  auto error_ptr = std::make_shared<std::exception_ptr>();
  auto error_mutex = std::make_shared<std::mutex>();

  auto drain = [=, this] {
    for (;;) {
      const std::size_t chunk_begin = cursor->fetch_add(grain);
      if (chunk_begin >= end) break;
      const std::size_t chunk_end = std::min(end, chunk_begin + grain);
      for (std::size_t i = chunk_begin; i < chunk_end; ++i) {
        if (first_error->load(std::memory_order_relaxed)) return;
        try {
          fn(i);
        } catch (...) {
          std::lock_guard lock(*error_mutex);
          if (!first_error->exchange(true)) *error_ptr = std::current_exception();
          return;
        }
      }
    }
  };

  // The calling thread participates too, so a 1-thread pool still makes
  // progress even while all workers are busy elsewhere.
  std::vector<std::future<void>> helpers;
  const std::size_t items = end - begin;
  const std::size_t want = std::min(workers_.size(), div_ceil(items, grain) - 1);
  helpers.reserve(want);
  for (std::size_t i = 0; i < want; ++i) helpers.push_back(submit(drain));
  drain();
  for (auto& h : helpers) h.wait();

  if (first_error->load()) std::rethrow_exception(*error_ptr);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task stores exceptions in the future
  }
}

}  // namespace eim::support
