#include "eim/support/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <exception>

#include "eim/support/bits.hpp"
#include "eim/support/error.hpp"
#include "eim/support/profiler.hpp"

namespace eim::support {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(MoveOnlyTask task) {
  EIM_CHECK_MSG(static_cast<bool>(task), "null task submitted to ThreadPool");
  std::promise<void> promise;
  auto future = promise.get_future();
  MoveOnlyTask wrapped([task = std::move(task), promise = std::move(promise)]() mutable {
    try {
      task();
      promise.set_value();
    } catch (...) {
      promise.set_exception(std::current_exception());
    }
  });
  {
    std::lock_guard lock(mutex_);
    EIM_CHECK_MSG(!stopping_, "submit after ThreadPool shutdown");
    queue_.push_back(std::move(wrapped));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::enqueue_bulk(std::size_t count,
                              const std::function<MoveOnlyTask()>& make) {
  {
    std::lock_guard lock(mutex_);
    EIM_CHECK_MSG(!stopping_, "enqueue after ThreadPool shutdown");
    for (std::size_t i = 0; i < count; ++i) queue_.push_back(make());
  }
  if (count == 1) {
    cv_.notify_one();
  } else {
    cv_.notify_all();
  }
}

namespace {

/// Per-call coordination for parallel_for; lives on the caller's stack. The
/// calling thread waits (on the pool's done_cv_) until `remaining` helpers
/// have fully finished, so helpers never touch a dead frame.
struct ParallelForState {
  std::atomic<std::size_t> cursor;
  std::size_t end = 0;
  std::size_t grain = 1;
  const std::function<void(std::size_t)>* fn = nullptr;

  std::atomic<bool> failed{false};
  std::exception_ptr error;     ///< guarded by error_mutex
  std::mutex error_mutex;

  std::size_t remaining = 0;    ///< live helpers; guarded by pool done_mutex_
};

void drain(ParallelForState& state) {
  for (;;) {
    const std::size_t chunk_begin =
        state.cursor.fetch_add(state.grain, std::memory_order_relaxed);
    if (chunk_begin >= state.end) return;
    const std::size_t chunk_end = std::min(state.end, chunk_begin + state.grain);
    for (std::size_t i = chunk_begin; i < chunk_end; ++i) {
      if (state.failed.load(std::memory_order_relaxed)) return;
      try {
        (*state.fn)(i);
      } catch (...) {
        const std::lock_guard lock(state.error_mutex);
        if (!state.failed.exchange(true)) state.error = std::current_exception();
        return;
      }
    }
  }
}

}  // namespace

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t grain) {
  if (begin >= end) return;
  const std::size_t items = end - begin;
  if (grain == 0) {
    // Adaptive: a few chunks per worker keeps dynamic balancing against
    // stragglers while large ranges pay O(workers) cursor bumps, not
    // O(items).
    grain = std::max<std::size_t>(1, items / (4 * workers_.size() + 1));
  }

  // Serial fast path: a range that fits one chunk, or a pool with a single
  // worker, never touches the queue, the cursor, or the wake machinery. The
  // single-worker case matters beyond overhead: handing chunks to the lone
  // worker while the caller also drains buys no parallelism but makes the
  // iteration interleaving scheduler-dependent — and racy-claim protocols
  // (the RRR commit cursor) then produce machine-noisy modeled output.
  // Caller-only execution keeps single-core runs bit-reproducible.
  const std::size_t chunks = div_ceil(items, grain);
  if (chunks <= 1 || workers_.size() <= 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  ParallelForState state;
  state.cursor.store(begin, std::memory_order_relaxed);
  state.end = end;
  state.grain = grain;
  state.fn = &fn;

  // The calling thread participates too, so a 1-thread pool still makes
  // progress even while all workers are busy elsewhere.
  const std::size_t helpers = std::min(workers_.size(), chunks - 1);
  {
    const std::lock_guard lock(done_mutex_);
    state.remaining = helpers;
  }
  // The dispatch timer covers only the fan-out (task construction + queue
  // handoff); the drained body work belongs to whatever scope the caller is
  // already timing.
  profiler::WallTimer* dispatch_timer =
      dispatch_timer_.load(std::memory_order_relaxed);
  const auto dispatch_start = dispatch_timer != nullptr
                                  ? std::chrono::steady_clock::now()
                                  : std::chrono::steady_clock::time_point{};
  enqueue_bulk(helpers, [this, &state]() -> MoveOnlyTask {
    return MoveOnlyTask([this, &state] {
      drain(state);
      // Last touch of `state`: decrement under the pool-lifetime mutex, so
      // once the caller observes remaining == 0 the frame is safe to die;
      // the trailing notify only uses pool members.
      {
        const std::lock_guard lock(done_mutex_);
        --state.remaining;
      }
      done_cv_.notify_all();
    });
  });
  if (dispatch_timer != nullptr) {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - dispatch_start)
                        .count();
    dispatch_timer->record_ns(ns > 0 ? static_cast<std::uint64_t>(ns) : 0u);
  }
  drain(state);
  {
    std::unique_lock lock(done_mutex_);
    done_cv_.wait(lock, [&state] { return state.remaining == 0; });
  }

  if (state.failed.load()) std::rethrow_exception(state.error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop() {
  for (;;) {
    MoveOnlyTask task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // submit() wraps exceptions into the promise; parallel_for
             // helpers capture them into the call state
  }
}

}  // namespace eim::support
