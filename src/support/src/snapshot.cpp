#include "eim/support/snapshot.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "eim/support/atomic_write.hpp"
#include "eim/support/crc32.hpp"

namespace eim::support::snapshot {

namespace {

void append_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void append_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

/// Header-side cursor with its own truncation reporting (the payload
/// ByteReader reports against a section name; here we are still parsing the
/// table itself).
class HeaderCursor {
 public:
  explicit HeaderCursor(std::string_view bytes) : bytes_(bytes) {}

  [[nodiscard]] std::string_view take(std::size_t n, const char* what) {
    if (pos_ + n > bytes_.size()) {
      throw SnapshotCorruptError(std::string("truncated header while reading ") + what);
    }
    const std::string_view out = bytes_.substr(pos_, n);
    pos_ += n;
    return out;
  }
  [[nodiscard]] std::uint32_t u32(const char* what) {
    const std::string_view b = take(4, what);
    std::uint32_t v = 0;
    for (std::size_t i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(b[i])) << (8 * i);
    }
    return v;
  }
  [[nodiscard]] std::uint64_t u64(const char* what) {
    const std::string_view b = take(8, what);
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(b[i])) << (8 * i);
    }
    return v;
  }
  [[nodiscard]] std::size_t pos() const noexcept { return pos_; }

 private:
  std::string_view bytes_;
  std::size_t pos_ = 0;
};

std::span<const std::uint8_t> as_bytes(std::string_view s) noexcept {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

}  // namespace

void SnapshotWriter::add_section(std::string name, std::vector<std::uint8_t> payload) {
  EIM_CHECK_MSG(!name.empty(), "snapshot section needs a name");
  EIM_CHECK_MSG(std::none_of(sections_.begin(), sections_.end(),
                             [&](const Section& s) { return s.name == name; }),
                "duplicate snapshot section '" + name + "'");
  sections_.push_back(Section{std::move(name), std::move(payload)});
}

std::string SnapshotWriter::serialize() const {
  std::string out;
  out.append(kMagic);
  append_u32(out, kFormatVersion);
  append_u32(out, static_cast<std::uint32_t>(sections_.size()));
  for (const Section& s : sections_) {
    append_u32(out, static_cast<std::uint32_t>(s.name.size()));
    out.append(s.name);
    append_u64(out, s.payload.size());
    append_u32(out, crc32c(std::span<const std::uint8_t>(s.payload)));
  }
  append_u32(out, crc32c(out));
  for (const Section& s : sections_) {
    out.append(reinterpret_cast<const char*>(s.payload.data()), s.payload.size());
  }
  return out;
}

void SnapshotWriter::write_file(const std::string& path) const {
  atomic_write_file(path, serialize());
}

SnapshotReader::SnapshotReader(std::string bytes) : bytes_(std::move(bytes)) {
  HeaderCursor cur(bytes_);
  if (cur.take(kMagic.size(), "magic") != kMagic) {
    throw SnapshotCorruptError("bad magic (not an eIM snapshot)");
  }
  const std::uint32_t version = cur.u32("version");
  if (version != kFormatVersion) {
    throw SnapshotCorruptError("unsupported format version " + std::to_string(version) +
                               " (expected " + std::to_string(kFormatVersion) + ")");
  }
  const std::uint32_t count = cur.u32("section count");

  struct Pending {
    std::string name;
    std::size_t length;
    std::uint32_t crc;
  };
  std::vector<Pending> pending;
  pending.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t name_len = cur.u32("section name length");
    const std::string_view name = cur.take(name_len, "section name");
    const std::uint64_t payload_len = cur.u64("section payload length");
    const std::uint32_t crc = cur.u32("section checksum");
    pending.push_back(Pending{std::string(name),
                              static_cast<std::size_t>(payload_len), crc});
  }
  const std::size_t table_end = cur.pos();
  const std::uint32_t header_crc = cur.u32("header checksum");
  if (crc32c(std::string_view(bytes_).substr(0, table_end)) != header_crc) {
    throw SnapshotCorruptError("header checksum mismatch (section table damaged)");
  }

  std::size_t offset = cur.pos();
  for (const Pending& p : pending) {
    if (offset + p.length > bytes_.size()) {
      throw SnapshotCorruptError("section '" + p.name + "' truncated (wanted " +
                                 std::to_string(p.length) + " bytes at offset " +
                                 std::to_string(offset) + ", file has " +
                                 std::to_string(bytes_.size()) + ")");
    }
    const std::string_view payload = std::string_view(bytes_).substr(offset, p.length);
    if (crc32c(as_bytes(payload)) != p.crc) {
      throw SnapshotCorruptError("section '" + p.name + "' checksum mismatch");
    }
    entries_.push_back(Entry{p.name, offset, p.length});
    offset += p.length;
  }
  if (offset != bytes_.size()) {
    throw SnapshotCorruptError(std::to_string(bytes_.size() - offset) +
                               " trailing bytes after the last section");
  }
}

SnapshotReader SnapshotReader::load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open snapshot '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) throw IoError("cannot read snapshot '" + path + "'");
  return SnapshotReader(buffer.str());
}

bool SnapshotReader::has_section(std::string_view name) const noexcept {
  return std::any_of(entries_.begin(), entries_.end(),
                     [&](const Entry& e) { return e.name == name; });
}

std::span<const std::uint8_t> SnapshotReader::section(std::string_view name) const {
  for (const Entry& e : entries_) {
    if (e.name == name) {
      return {reinterpret_cast<const std::uint8_t*>(bytes_.data()) + e.offset, e.length};
    }
  }
  throw SnapshotCorruptError("required section '" + std::string(name) + "' missing");
}

ByteReader SnapshotReader::reader(std::string_view name) const {
  return ByteReader(section(name), "section '" + std::string(name) + "'");
}

std::vector<std::string> SnapshotReader::section_names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const Entry& e : entries_) names.push_back(e.name);
  return names;
}

}  // namespace eim::support::snapshot
