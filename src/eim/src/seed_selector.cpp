#include "eim/eim/seed_selector.hpp"

#include <algorithm>

#include "eim/eim/lazy_greedy.hpp"
#include "eim/support/bits.hpp"
#include "eim/support/error.hpp"
#include "eim/support/metrics.hpp"
#include "eim/support/profiler.hpp"
#include "eim/support/thread_pool.hpp"

namespace eim::eim_impl {

using graph::VertexId;

namespace {

/// Scalar binary-search cost in global reads: probes of the sorted set.
std::uint64_t binsearch_probes(std::uint32_t len) {
  return 1 + support::ceil_log2(std::max<std::uint32_t>(2, len));
}

/// Build the inverted index vertex -> set ids. Deterministic regardless of
/// parallelism: sets are split into contiguous chunks, pass 1 counts each
/// chunk's per-vertex occurrences, a serial prefix turns the histograms
/// into per-chunk write bases, and pass 2 scatters set ids at those bases —
/// reproducing the serial layout exactly (set ids ascending within each
/// vertex's bucket).
void build_inverted_index(std::span<const VertexId> flat,
                          std::span<const std::uint64_t> starts, std::uint64_t num_sets,
                          VertexId n, std::vector<std::uint64_t>& index_offsets,
                          std::vector<std::uint64_t>& index_sets) {
  auto& pool = support::ThreadPool::global();
  // Parallelism only pays once the scatter dwarfs the O(chunks * n)
  // histogram footprint; small problems keep the single-chunk (serial)
  // path.
  const std::size_t num_chunks =
      (pool.size() > 1 && flat.size() >= 65536 && flat.size() >= n)
          ? std::min<std::size_t>(4 * pool.size(), static_cast<std::size_t>(num_sets))
          : 1;
  const auto chunk_begin = [&](std::size_t c) {
    return static_cast<std::uint64_t>(num_sets * c / num_chunks);
  };

  std::vector<std::vector<std::uint64_t>> hist(num_chunks);
  pool.parallel_for(
      0, num_chunks,
      [&](std::size_t c) {
        auto& h = hist[c];
        h.assign(static_cast<std::size_t>(n), 0);
        for (std::uint64_t p = starts[chunk_begin(c)]; p < starts[chunk_begin(c + 1)];
             ++p) {
          ++h[flat[p]];
        }
      },
      /*grain=*/1);

  // Serial prefix over (vertex, chunk): turns counts into write cursors.
  index_offsets.assign(static_cast<std::size_t>(n) + 1, 0);
  std::uint64_t running = 0;
  for (VertexId v = 0; v < n; ++v) {
    index_offsets[v] = running;
    for (std::size_t c = 0; c < num_chunks; ++c) {
      const std::uint64_t cnt = hist[c][v];
      hist[c][v] = running;  // reuse as this chunk's write base for v
      running += cnt;
    }
  }
  index_offsets[n] = running;

  index_sets.resize(flat.size());
  pool.parallel_for(
      0, num_chunks,
      [&](std::size_t c) {
        auto& cursor = hist[c];
        for (std::uint64_t i = chunk_begin(c); i < chunk_begin(c + 1); ++i) {
          for (std::uint64_t p = starts[i]; p < starts[i + 1]; ++p) {
            index_sets[cursor[flat[p]]++] = i;
          }
        }
      },
      /*grain=*/1);
}

}  // namespace

imm::SelectionResult GpuSeedSelector::select(const DeviceRrrCollection& collection,
                                             std::uint32_t k) {
  const VertexId n = collection.num_vertices();
  EIM_CHECK_MSG(k >= 1 && k <= n, "k out of range");

  const std::uint64_t num_sets = collection.num_sets();
  const auto& spec = device_->spec();
  const auto g_lat = static_cast<std::uint64_t>(spec.costs.global_latency);
  const auto a_lat = static_cast<std::uint64_t>(spec.costs.atomic_global);
  const std::uint64_t warp = spec.warp_size;

  // F: one flag per set, device-resident for the selection's duration.
  auto f_flags = device_->alloc<std::uint8_t>(std::max<std::uint64_t>(1, num_sets));

  // Host mirror: decode every set once (the data already lives on the
  // device; no transfer is charged).
  std::vector<std::uint32_t> lengths(num_sets);
  std::vector<std::uint64_t> starts(num_sets + 1, 0);
  for (std::uint64_t i = 0; i < num_sets; ++i) {
    lengths[i] = collection.set_length(i);
    starts[i + 1] = starts[i] + lengths[i];
  }
  std::vector<VertexId> flat(starts[num_sets]);
  {
    // Bulk word-streaming decode, parallel across sets (disjoint output
    // slices, so the layout is identical to the serial per-element walk).
    const support::profiler::ScopedWallTimer decode_scope(
        profile_ != nullptr ? &profile_->timer("codec.decode") : nullptr);
    if (collection.has_spilled()) {
      // Spilled sets stream up through the store's staging pool, which is
      // not thread-safe and whose modeled transfer charges must land on the
      // timeline in a deterministic order — decode serially, in set order.
      for (std::uint64_t i = 0; i < num_sets; ++i) {
        collection.decode_set(
            i, std::span<VertexId>(flat.data() + starts[i], lengths[i]));
      }
    } else {
      support::ThreadPool::global().parallel_for(
          0, num_sets,
          [&](std::size_t i) {
            collection.decode_set(
                i, std::span<VertexId>(flat.data() + starts[i], lengths[i]));
          },
          /*grain=*/0);
    }
  }

  if (metrics_ != nullptr) {
    metrics_->counter("selector.select_calls").add();
    metrics_->counter("selector.elements_decoded").add(flat.size());
  }
  support::metrics::Counter* argmax_kernels =
      metrics_ != nullptr ? &metrics_->counter("selector.argmax_kernels") : nullptr;
  support::metrics::Counter* update_kernels =
      metrics_ != nullptr ? &metrics_->counter("selector.update_kernels") : nullptr;
  support::metrics::Counter* fallback_picks =
      metrics_ != nullptr ? &metrics_->counter("selector.fallback_picks") : nullptr;
  support::metrics::Histogram* gain_hist =
      metrics_ != nullptr ? &metrics_->histogram("selector.gain_per_pick") : nullptr;

  // Inverted index vertex -> set ids (host-side greedy accelerator).
  std::vector<std::uint64_t> index_offsets;
  std::vector<std::uint64_t> index_sets;
  {
    const support::profiler::ScopedWallTimer preprocess_scope(
        profile_ != nullptr ? &profile_->timer("selector.preprocess") : nullptr);
    build_inverted_index(flat, starts, num_sets, n, index_offsets, index_sets);
  }

  std::vector<std::uint32_t> counts(collection.counts().begin(),
                                    collection.counts().end());
  // uint8_t, not vector<bool>: the bit proxies sit inside the inner
  // decrement loop and cost a shift+mask per touch.
  std::vector<std::uint8_t> covered(num_sets, 0);
  std::vector<std::uint8_t> chosen(n, 0);

  // Running aggregates for the update-kernel cost model.
  const bool thread_scan = strategy_ == ScanStrategy::ThreadPerSet;
  std::uint64_t uncovered_cnt = num_sets;
  std::uint64_t uncovered_search_cycles = 0;  // sum of per-set search cost
  std::uint32_t max_len = 2;
  for (const std::uint32_t len : lengths) {
    max_len = std::max(max_len, len);
    uncovered_search_cycles +=
        thread_scan ? binsearch_probes(len) * g_lat
                    : support::div_ceil<std::uint64_t>(std::max<std::uint32_t>(1, len),
                                                       warp) *
                          g_lat;
  }

  // Parallelism of the chosen strategy (§3.5's T_n vs W_n).
  const std::uint64_t units =
      thread_scan ? spec.max_resident_threads() : spec.max_resident_warps();

  imm::SelectionResult result;
  result.seeds.reserve(k);

  // arg max over C: a tree reduction, T_n-wide. One launch per pick —
  // including the degenerate tail picks below — so modeled time always
  // reflects k kernel pairs.
  const auto charge_argmax = [&] {
    const std::uint64_t per_unit =
        support::div_ceil<std::uint64_t>(n, spec.max_resident_threads());
    const std::uint64_t cycles =
        per_unit * g_lat + support::ceil_log2(std::max<VertexId>(2, n)) *
                               spec.costs.shuffle_op;
    device_->timeline().add(gpusim::SegmentKind::Kernel, "eim::argmax",
                            spec.costs.kernel_launch_us * 1e-6 +
                                spec.cycles_to_seconds(static_cast<double>(cycles)));
    if (argmax_kernels != nullptr) argmax_kernels->add();
  };

  // Update-kernel makespan: every set costs an F read; uncovered ones add
  // the search; covering units add their decrement walks. Work spreads
  // over min(units, num_sets) parallel units.
  const auto charge_update = [&](std::uint64_t dec_cycles) {
    if (num_sets == 0) return;
    const std::uint64_t f_cycles = num_sets * g_lat;
    const std::uint64_t total = f_cycles + uncovered_search_cycles + dec_cycles;
    const std::uint64_t used = std::max<std::uint64_t>(1, std::min(units, num_sets));
    const std::uint64_t floor_cycles =
        thread_scan ? binsearch_probes(max_len) * g_lat
                    : support::div_ceil<std::uint64_t>(max_len, warp) * g_lat;
    const std::uint64_t makespan = std::max(total / used, floor_cycles);
    device_->timeline().add(gpusim::SegmentKind::Kernel, "eim::update_counts",
                            spec.costs.kernel_launch_us * 1e-6 +
                                spec.cycles_to_seconds(static_cast<double>(makespan)));
    if (update_kernels != nullptr) update_kernels->add();
  };

  // The modeled device always runs a full arg-max reduction; the *host*
  // answer comes from the lazy heap (or the linear reference scan in
  // test mode) — both produce the same (count, smallest-id) winner.
  LazyArgMaxHeap heap{argmax_mode_ == ArgMaxMode::kLazyHeap
                          ? std::span<const std::uint32_t>(counts)
                          : std::span<const std::uint32_t>()};

  support::profiler::WallTimer* pick_w =
      profile_ != nullptr ? &profile_->timer("selector.pick") : nullptr;

  for (std::uint32_t pick = 0; pick < k; ++pick) {
    const support::profiler::ScopedWallTimer pick_scope(pick_w);
    charge_argmax();

    VertexId best = graph::kInvalidVertex;
    std::uint32_t best_count = 0;
    if (argmax_mode_ == ArgMaxMode::kLazyHeap) {
      if (!heap.pop_best(counts, chosen, best, best_count)) {
        best = graph::kInvalidVertex;
      }
    } else {
      for (VertexId v = 0; v < n; ++v) {
        if (chosen[v] == 0 && counts[v] > best_count) {
          best = v;
          best_count = counts[v];
        }
      }
    }
    if (best == graph::kInvalidVertex) {
      // Every set is covered; the remaining picks are tie-broken zeros.
      // The device still runs the per-pick kernel pair for each of them —
      // this pick's arg-max is already charged above, so charge its update
      // plus a full pair per additional filler to keep saturated runs at
      // exactly k argmax/update launches like unsaturated ones.
      bool first_filler = true;
      for (VertexId v = 0; v < n && result.seeds.size() < k; ++v) {
        if (chosen[v] == 0) {
          if (!first_filler) charge_argmax();
          first_filler = false;
          charge_update(0);
          if (fallback_picks != nullptr) fallback_picks->add();
          if (gain_hist != nullptr) gain_hist->observe(0);
          chosen[v] = 1;
          result.seeds.push_back(v);
        }
      }
      break;
    }
    chosen[best] = 1;
    result.seeds.push_back(best);
    if (gain_hist != nullptr) gain_hist->observe(best_count);

    // Cover best's sets; track decrement traffic for the cost model.
    std::uint64_t dec_cycles = 0;
    for (std::uint64_t idx = index_offsets[best]; idx < index_offsets[best + 1]; ++idx) {
      const std::uint64_t set_id = index_sets[idx];
      if (covered[set_id] != 0) continue;
      covered[set_id] = 1;
      f_flags[set_id] = 1;
      ++result.covered_sets;

      const std::uint32_t len = lengths[set_id];
      // Aggregate bookkeeping: this set leaves the uncovered population.
      --uncovered_cnt;
      uncovered_search_cycles -=
          thread_scan
              ? binsearch_probes(len) * g_lat
              : support::div_ceil<std::uint64_t>(std::max<std::uint32_t>(1, len), warp) *
                    g_lat;
      // Decrement pass (Alg. 3 lines 10-12): the finding unit walks the set
      // and atomically subtracts each member's count. A thread does this
      // scalar; a warp coalesces the reads but still issues len atomics.
      dec_cycles += thread_scan
                        ? static_cast<std::uint64_t>(len) * (g_lat + a_lat)
                        : support::div_ceil<std::uint64_t>(
                              std::max<std::uint32_t>(1, len), warp) *
                                  g_lat +
                              static_cast<std::uint64_t>(len) * a_lat / warp;

      for (std::uint64_t p = starts[set_id]; p < starts[set_id + 1]; ++p) {
        --counts[flat[p]];
      }
    }

    charge_update(dec_cycles);
  }

  result.coverage_fraction = num_sets == 0 ? 0.0
                                           : static_cast<double>(result.covered_sets) /
                                                 static_cast<double>(num_sets);
  return result;
}

}  // namespace eim::eim_impl
