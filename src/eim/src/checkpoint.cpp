#include "eim/eim/checkpoint.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "eim/eim/options.hpp"
#include "eim/eim/rrr_collection.hpp"
#include "eim/support/atomic_write.hpp"
#include "eim/support/error.hpp"
#include "eim/support/json.hpp"
#include "eim/support/snapshot.hpp"

namespace eim::eim_impl {

namespace {

using support::IoError;
using support::InvalidArgumentError;
using support::JsonValue;
using support::snapshot::ByteReader;
using support::snapshot::ByteWriter;
using support::snapshot::SnapshotCorruptError;
using support::snapshot::SnapshotReader;
using support::snapshot::SnapshotWriter;

constexpr std::string_view kManifestSchema = "eim.checkpoint.v1";
constexpr const char* kManifestFile = "manifest.json";
constexpr const char* kSnapshotFile = "snapshot.bin";

std::string manifest_path(const std::string& dir) { return dir + "/" + kManifestFile; }
std::string snapshot_path(const std::string& dir) { return dir + "/" + kSnapshotFile; }

std::string render_manifest(const CheckpointState& state) {
  std::ostringstream out;
  support::JsonWriter w(out);
  w.begin_object();
  w.field("schema", kManifestSchema);
  // Decimal string: JSON numbers round-trip through int64, and the seed is
  // an arbitrary 64-bit value.
  w.field("rng_seed", std::string_view(std::to_string(state.rng_seed)));
  w.field("num_vertices", std::uint64_t{state.num_vertices});
  w.field("num_edges", state.num_edges);
  w.field("k", std::uint64_t{state.k});
  w.field("epsilon", state.epsilon);
  w.field("ell", state.ell);
  w.field("model", std::uint64_t{state.model});
  w.field("log_encode", state.log_encode);
  w.field("eliminate_sources", state.eliminate_sources);
  w.field("draw_mode", std::uint64_t{state.draw_mode});
  w.field("num_devices", std::uint64_t{state.num_devices});
  w.field("num_sets", std::uint64_t{state.lengths.size()});
  w.field("snapshot", std::string_view(kSnapshotFile));
  w.end_object();
  out << '\n';
  return out.str();
}

/// Parse + validate the manifest into the identity block of `state`. Every
/// schema defect — unparseable JSON, missing member, wrong schema tag —
/// reports as SnapshotCorruptError.
void decode_manifest(const std::string& text, CheckpointState& state) {
  try {
    const JsonValue doc = support::parse_json(text);
    const std::string& schema = doc.at("schema").as_string();
    if (schema != kManifestSchema) {
      throw SnapshotCorruptError("manifest schema '" + schema + "' (expected '" +
                                 std::string(kManifestSchema) + "')");
    }
    state.rng_seed = std::stoull(doc.at("rng_seed").as_string());
    state.num_vertices = static_cast<std::uint32_t>(doc.at("num_vertices").as_int());
    state.num_edges = static_cast<std::uint64_t>(doc.at("num_edges").as_int());
    state.k = static_cast<std::uint32_t>(doc.at("k").as_int());
    state.epsilon = doc.at("epsilon").as_double();
    state.ell = doc.at("ell").as_double();
    state.model = static_cast<std::uint8_t>(doc.at("model").as_int());
    state.log_encode = doc.at("log_encode").as_bool();
    state.eliminate_sources = doc.at("eliminate_sources").as_bool();
    // Optional for backward compatibility: manifests written before the
    // fast-draw mode existed carry no draw_mode and decode as Exact.
    const JsonValue* draw_mode = doc.find("draw_mode");
    state.draw_mode =
        draw_mode != nullptr ? static_cast<std::uint8_t>(draw_mode->as_int()) : 0;
    state.num_devices = static_cast<std::uint32_t>(doc.at("num_devices").as_int());
  } catch (const SnapshotCorruptError&) {
    throw;
  } catch (const support::Error& e) {
    // JsonParseError, missing members, kind mismatches: all structural
    // damage to the checkpoint, not user error.
    throw SnapshotCorruptError(std::string("manifest: ") + e.what());
  } catch (const std::exception& e) {
    throw SnapshotCorruptError(std::string("manifest: ") + e.what());
  }
}

std::string read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open checkpoint file '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) throw IoError("cannot read checkpoint file '" + path + "'");
  return buffer.str();
}

/// Structural checks beyond checksums: the decoded collection must be a
/// plausible RRR collection for the recorded graph, or restoring it would
/// index out of range.
void validate_collection_shape(const CheckpointState& state) {
  std::uint64_t total = 0;
  for (const std::uint32_t len : state.lengths) total += len;
  if (total != state.elements.size()) {
    throw SnapshotCorruptError("collection lengths sum to " + std::to_string(total) +
                               " but " + std::to_string(state.elements.size()) +
                               " elements are stored");
  }
  std::uint64_t pos = 0;
  for (std::size_t i = 0; i < state.lengths.size(); ++i) {
    graph::VertexId prev = 0;
    for (std::uint32_t j = 0; j < state.lengths[i]; ++j) {
      const graph::VertexId v = state.elements[pos++];
      if (v >= state.num_vertices) {
        throw SnapshotCorruptError("set " + std::to_string(i) + " holds vertex " +
                                   std::to_string(v) + " outside the recorded range");
      }
      if (j > 0 && v <= prev) {
        throw SnapshotCorruptError("set " + std::to_string(i) +
                                   " is not strictly ascending");
      }
      prev = v;
    }
  }
}

}  // namespace

std::uint64_t save_checkpoint(const std::string& dir, const CheckpointState& state) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    throw IoError("cannot create checkpoint directory '" + dir + "': " + ec.message());
  }

  SnapshotWriter snap;
  {
    ByteWriter w;
    w.u32(state.round.next_round);
    w.u32(state.round.estimation_rounds);
    w.f64(state.round.lower_bound);
    w.u8(state.round.estimation_done ? 1 : 0);
    snap.add_section("framework", w.take());
  }
  {
    ByteWriter w;
    w.u32_array(std::span<const std::uint32_t>(state.lengths));
    w.u32_array(std::span<const graph::VertexId>(state.elements));
    snap.add_section("collection", w.take());
  }
  {
    ByteWriter w;
    w.u64(state.singletons_discarded);
    snap.add_section("sampler", w.take());
  }
  {
    ByteWriter w;
    w.f64(state.kernel_seconds);
    w.f64(state.transfer_seconds);
    w.f64(state.allocation_seconds);
    w.f64(state.backoff_seconds);
    snap.add_section("timeline", w.take());
  }
  {
    ByteWriter w;
    w.str(state.metrics_json);
    snap.add_section("metrics", w.take());
  }

  // snapshot.bin first, manifest last: the manifest only ever points at a
  // fully published snapshot, and each rename is individually atomic.
  const std::string snapshot_bytes = snap.serialize();
  support::atomic_write_file(snapshot_path(dir), snapshot_bytes);
  const std::string manifest = render_manifest(state);
  support::atomic_write_file(manifest_path(dir), manifest);
  return snapshot_bytes.size() + manifest.size();
}

CheckpointState load_checkpoint(const std::string& dir) {
  CheckpointState state;
  decode_manifest(read_text_file(manifest_path(dir)), state);

  const SnapshotReader snap = SnapshotReader::load_file(snapshot_path(dir));
  {
    ByteReader r = snap.reader("framework");
    state.round.next_round = r.u32();
    state.round.estimation_rounds = r.u32();
    state.round.lower_bound = r.f64();
    state.round.estimation_done = r.u8() != 0;
    r.expect_exhausted();
  }
  {
    ByteReader r = snap.reader("collection");
    state.lengths = r.u32_array<std::uint32_t>();
    state.elements = r.u32_array<graph::VertexId>();
    r.expect_exhausted();
  }
  {
    ByteReader r = snap.reader("sampler");
    state.singletons_discarded = r.u64();
    r.expect_exhausted();
  }
  {
    ByteReader r = snap.reader("timeline");
    state.kernel_seconds = r.f64();
    state.transfer_seconds = r.f64();
    state.allocation_seconds = r.f64();
    state.backoff_seconds = r.f64();
    r.expect_exhausted();
  }
  {
    ByteReader r = snap.reader("metrics");
    state.metrics_json = r.str();
    r.expect_exhausted();
  }

  validate_collection_shape(state);
  return state;
}

void validate_checkpoint(const CheckpointState& state, const graph::Graph& g,
                         graph::DiffusionModel model, const imm::ImmParams& params,
                         const EimOptions& options) {
  const auto mismatch = [](const char* field, const std::string& have,
                           const std::string& want) -> void {
    throw InvalidArgumentError(std::string("checkpoint does not match this run: ") +
                               field + " is " + have + " in the snapshot but " + want +
                               " here");
  };
  if (state.num_vertices != g.num_vertices()) {
    mismatch("num_vertices", std::to_string(state.num_vertices),
             std::to_string(g.num_vertices()));
  }
  if (state.num_edges != g.num_edges()) {
    mismatch("num_edges", std::to_string(state.num_edges), std::to_string(g.num_edges()));
  }
  if (state.model != static_cast<std::uint8_t>(model)) {
    mismatch("model", std::to_string(state.model),
             std::to_string(static_cast<std::uint8_t>(model)));
  }
  if (state.rng_seed != params.rng_seed) {
    mismatch("rng_seed", std::to_string(state.rng_seed), std::to_string(params.rng_seed));
  }
  if (state.k != params.k) {
    mismatch("k", std::to_string(state.k), std::to_string(params.k));
  }
  if (state.epsilon != params.epsilon) {
    mismatch("epsilon", std::to_string(state.epsilon), std::to_string(params.epsilon));
  }
  if (state.ell != params.ell) {
    mismatch("ell", std::to_string(state.ell), std::to_string(params.ell));
  }
  if (state.log_encode != options.log_encode) {
    mismatch("log_encode", state.log_encode ? "true" : "false",
             options.log_encode ? "true" : "false");
  }
  if (state.eliminate_sources != options.eliminate_sources) {
    mismatch("eliminate_sources", state.eliminate_sources ? "true" : "false",
             options.eliminate_sources ? "true" : "false");
  }
  if (state.draw_mode != static_cast<std::uint8_t>(options.draw_mode)) {
    const auto name = [](std::uint8_t m) {
      return m == static_cast<std::uint8_t>(DrawMode::Skip) ? "skip" : "exact";
    };
    mismatch("draw_mode", name(state.draw_mode),
             name(static_cast<std::uint8_t>(options.draw_mode)));
  }
}

void export_collection(const DeviceRrrCollection& collection, CheckpointState& state) {
  const std::uint64_t num_sets = collection.num_sets();
  state.lengths.resize(num_sets);
  state.elements.clear();
  state.elements.reserve(collection.total_elements());
  for (std::uint64_t i = 0; i < num_sets; ++i) {
    const std::uint32_t len = collection.set_length(i);
    state.lengths[i] = len;
    const std::size_t at = state.elements.size();
    state.elements.resize(at + len);
    collection.decode_set(i, std::span(state.elements.data() + at, len));
  }
}

void restore_collection(DeviceRrrCollection& collection, const CheckpointState& state) {
  const std::uint64_t num_sets = state.lengths.size();
  if (num_sets == 0) return;
  collection.reserve(num_sets, state.elements.size());
  std::uint64_t pos = 0;
  for (std::uint64_t i = 0; i < num_sets; ++i) {
    const std::span<const graph::VertexId> set(state.elements.data() + pos,
                                               state.lengths[i]);
    if (!collection.try_commit(i, set)) {
      // A spill-budgeted collection clamps its device horizon; extending it
      // spills the committed prefix downward (same global offsets, so the
      // restored layout is unchanged) and makes room for the rest.
      const std::uint64_t before = collection.element_capacity();
      collection.reserve(num_sets,
                         collection.total_elements() +
                             (state.elements.size() - pos));
      EIM_CHECK_MSG(collection.element_capacity() > before,
                    "checkpoint restore: committed set did not fit reserved capacity");
      EIM_CHECK_MSG(collection.try_commit(i, set),
                    "checkpoint restore: committed set did not fit reserved capacity");
    }
    pos += state.lengths[i];
  }
  collection.set_num_sets(num_sets);
}

}  // namespace eim::eim_impl
