#include "eim/eim/rrr_collection.hpp"

#include <algorithm>
#include <cassert>

#include <chrono>

#include "eim/support/bits.hpp"
#include "eim/support/error.hpp"
#include "eim/support/metrics.hpp"
#include "eim/support/profiler.hpp"

namespace eim::eim_impl {

using graph::VertexId;

DeviceRrrCollection::DeviceRrrCollection(gpusim::Device& device, VertexId num_vertices,
                                         bool log_encode)
    : device_(&device),
      n_(num_vertices),
      log_encode_(log_encode),
      bits_per_vertex_(
          support::bit_width_for_value(num_vertices == 0 ? 0 : num_vertices - 1)),
      counts_(num_vertices, 0) {
  // C lives on the device for the whole run.
  charge_device(static_cast<std::uint64_t>(num_vertices) * sizeof(std::uint32_t));
}

DeviceRrrCollection::~DeviceRrrCollection() {
#ifndef NDEBUG
  // The running charge must equal the footprint of what we actually own —
  // a mismatch means some charge/refund pair desynced from an array resize.
  const std::uint64_t r_bytes =
      log_encode_ ? packed_.storage_bytes() : raw_.size() * sizeof(VertexId);
  const std::uint64_t o_bytes =
      starts_.size() * (sizeof(std::uint64_t) + sizeof(std::uint32_t));
  const std::uint64_t c_bytes = static_cast<std::uint64_t>(n_) * sizeof(std::uint32_t);
  assert(charged_bytes_ == r_bytes + o_bytes + c_bytes &&
         "device charge desynced from owned R/O/C arrays");
#endif
  refund_device(charged_bytes_);
}

void DeviceRrrCollection::attach_metrics(support::metrics::MetricsRegistry* registry) {
  if (registry == nullptr) {
    commit_rejects_ = nullptr;
    claim_cas_retries_ = nullptr;
    regrow_r_ = nullptr;
    regrow_o_ = nullptr;
    set_size_hist_ = nullptr;
    return;
  }
  commit_rejects_ = &registry->counter("rrr.commit_rejects");
  claim_cas_retries_ = &registry->counter("rrr.claim_cas_retries");
  regrow_r_ = &registry->counter("rrr.regrow_r");
  regrow_o_ = &registry->counter("rrr.regrow_o");
  set_size_hist_ = &registry->histogram("rrr.set_size");
}

void DeviceRrrCollection::attach_profile(support::profiler::WallProfile* profile) {
  commit_publish_ = profile != nullptr ? &profile->timer("commit.publish") : nullptr;
}

void DeviceRrrCollection::charge_device(std::uint64_t bytes) {
  device_->memory().allocate(bytes);
  charged_bytes_ += bytes;
}

void DeviceRrrCollection::refund_device(std::uint64_t bytes) noexcept {
  device_->memory().deallocate(bytes);
  charged_bytes_ -= bytes;
}

void DeviceRrrCollection::reserve(std::uint64_t num_sets, std::uint64_t num_elements) {
  // O growth (start u64 + length u32 per set).
  if (num_sets > starts_.size()) {
    const std::uint64_t extra = (num_sets - starts_.size()) * (sizeof(std::uint64_t) +
                                                               sizeof(std::uint32_t));
    charge_device(extra);
    starts_.resize(num_sets, 0);
    lengths_.resize(num_sets, 0);
    device_->charge_allocation_event("grow O");
    if (regrow_o_ != nullptr) regrow_o_->add();
  }

  // R growth: allocate-new / copy / free-old, transiently holding both.
  if (num_elements > element_capacity_) {
    const std::uint64_t old_bytes =
        log_encode_ ? packed_.storage_bytes()
                    : raw_.size() * sizeof(VertexId);
    if (log_encode_) {
      const std::uint64_t new_bytes = support::div_ceil<std::uint64_t>(
                                          num_elements * bits_per_vertex_, 32) *
                                      sizeof(std::uint32_t);
      charge_device(new_bytes);
      encoding::BitPackedArray grown(num_elements, bits_per_vertex_);
      // Same bit width, so the committed prefix is a straight word copy —
      // slots past the cursor are still zero on both sides.
      const std::uint64_t used = element_cursor_.load(std::memory_order_relaxed);
      grown.assign_prefix(packed_, static_cast<std::size_t>(used));
      packed_ = std::move(grown);
      refund_device(old_bytes);
    } else {
      const std::uint64_t new_bytes = num_elements * sizeof(VertexId);
      charge_device(new_bytes);
      raw_.resize(num_elements, 0);
      // std::vector already moved the payload; refund the old footprint.
      refund_device(old_bytes);
    }
    element_capacity_ = num_elements;
    device_->charge_allocation_event("grow R");
    if (regrow_r_ != nullptr) regrow_r_->add();
  }
}

bool DeviceRrrCollection::try_commit(std::uint64_t set_index,
                                     std::span<const VertexId> sorted_set) {
  assert(std::is_sorted(sorted_set.begin(), sorted_set.end()));
  EIM_CHECK_MSG(set_index < starts_.size(), "set index beyond reserved O capacity");

  // Alg. 2 line 21: claim this set's slice of R. The claim is a CAS, not a
  // fetch_add with a fetch_sub rollback: a blind add lets a failing claim
  // transiently push the cursor past capacity, and its rollback can rewind
  // the cursor below a slice a concurrent thread committed in between —
  // the next claim then overlays that slice, which under log encoding ORs
  // two sets' bits together. With the CAS the cursor only ever advances,
  // and only by claims that fit entirely.
  std::uint64_t offset = element_cursor_.load(std::memory_order_relaxed);
  for (;;) {
    if (offset + sorted_set.size() > element_capacity_) {
      // Nothing was claimed, so nothing to undo; the driver grows R and
      // re-issues the sample next wave.
      if (commit_rejects_ != nullptr) commit_rejects_->add();
      return false;
    }
    if (element_cursor_.compare_exchange_weak(offset, offset + sorted_set.size(),
                                              std::memory_order_relaxed)) {
      break;
    }
    if (claim_cas_retries_ != nullptr) claim_cas_retries_->add();
  }

  starts_[set_index] = offset;
  lengths_[set_index] = static_cast<std::uint32_t>(sorted_set.size());
  if (set_size_hist_ != nullptr) set_size_hist_->observe(sorted_set.size());

  // Fused publish: the C frequency update rides the same pass that encodes
  // the slice into R, so each committed vertex is touched once instead of
  // being re-walked after the store (Alg. 2 lines 26-28 as one sweep).
  std::uint32_t* const counts = counts_.data();
  const auto bump_count = [counts](VertexId v) {
    std::atomic_ref<std::uint32_t>(counts[v]).fetch_add(1, std::memory_order_relaxed);
  };
  // Thresholded wall timing (kTimedPublishLen): short publishes cost less
  // than the clock reads, so only substantial slices are measured here.
  const bool timed =
      commit_publish_ != nullptr && sorted_set.size() >= kTimedPublishLen;
  const auto publish_start = timed ? std::chrono::steady_clock::now()
                                   : std::chrono::steady_clock::time_point{};
  if (log_encode_) {
    // Bulk word-streaming publish of the claimed slice: only the boundary
    // containers shared with neighboring slices pay an atomic op.
    packed_.store_release_range(static_cast<std::size_t>(offset), sorted_set,
                                bump_count);
  } else {
    VertexId* const dst = raw_.data() + offset;
    for (std::size_t k = 0; k < sorted_set.size(); ++k) {
      dst[k] = sorted_set[k];
      bump_count(sorted_set[k]);
    }
  }
  if (timed) {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - publish_start)
                        .count();
    commit_publish_->record_ns(ns > 0 ? static_cast<std::uint64_t>(ns) : 0u);
  }
  return true;
}

void DeviceRrrCollection::decode_set(std::uint64_t i,
                                     std::span<VertexId> out) const noexcept {
  assert(out.size() == lengths_[i]);
  const std::uint64_t start = starts_[i];
  if (log_encode_) {
    packed_.decode_into(static_cast<std::size_t>(start), out);
  } else {
    std::copy_n(raw_.begin() + static_cast<std::ptrdiff_t>(start), out.size(),
                out.begin());
  }
}

std::uint64_t DeviceRrrCollection::stored_bytes() const noexcept {
  const std::uint64_t r_bytes = log_encode_
                                    ? support::div_ceil<std::uint64_t>(
                                          total_elements() * bits_per_vertex_, 32) *
                                          sizeof(std::uint32_t)
                                    : total_elements() * sizeof(VertexId);
  // O is charged per reserved slot (reserve() sizes starts_), so report the
  // same footprint here; num_sets_ lags the reservation mid-run and would
  // under-report what the pool actually holds.
  const std::uint64_t o_bytes =
      starts_.size() * (sizeof(std::uint64_t) + sizeof(std::uint32_t));
  const std::uint64_t c_bytes = static_cast<std::uint64_t>(n_) * sizeof(std::uint32_t);
  return r_bytes + o_bytes + c_bytes;
}

std::uint64_t DeviceRrrCollection::raw_equivalent_bytes() const noexcept {
  return total_elements() * sizeof(VertexId) +
         starts_.size() * (sizeof(std::uint64_t) + sizeof(std::uint32_t)) +
         static_cast<std::uint64_t>(n_) * sizeof(std::uint32_t);
}

}  // namespace eim::eim_impl
