#include "eim/eim/rrr_collection.hpp"

#include <algorithm>
#include <cassert>

#include <chrono>

#include "eim/eim/tiered_store.hpp"
#include "eim/support/bits.hpp"
#include "eim/support/error.hpp"
#include "eim/support/metrics.hpp"
#include "eim/support/profiler.hpp"

namespace eim::eim_impl {

using graph::VertexId;

DeviceRrrCollection::DeviceRrrCollection(gpusim::Device& device, VertexId num_vertices,
                                         bool log_encode)
    : device_(&device),
      n_(num_vertices),
      log_encode_(log_encode),
      bits_per_vertex_(
          support::bit_width_for_value(num_vertices == 0 ? 0 : num_vertices - 1)),
      counts_(num_vertices, 0) {
  // C lives on the device for the whole run.
  charge_device(static_cast<std::uint64_t>(num_vertices) * sizeof(std::uint32_t));
}

DeviceRrrCollection::~DeviceRrrCollection() {
#ifndef NDEBUG
  // The running charge must equal the footprint of what we actually own —
  // a mismatch means some charge/refund pair desynced from an array resize.
  const std::uint64_t r_bytes = current_r_bytes();
  const std::uint64_t o_bytes =
      starts_.size() * (sizeof(std::uint64_t) + sizeof(std::uint32_t));
  const std::uint64_t c_bytes = static_cast<std::uint64_t>(n_) * sizeof(std::uint32_t);
  assert(charged_bytes_ == r_bytes + o_bytes + c_bytes &&
         "device charge desynced from owned R/O/C arrays");
#endif
  refund_device(charged_bytes_);
}

void DeviceRrrCollection::attach_metrics(support::metrics::MetricsRegistry* registry) {
  if (registry == nullptr) {
    commit_rejects_ = nullptr;
    claim_cas_retries_ = nullptr;
    regrow_r_ = nullptr;
    regrow_o_ = nullptr;
    set_size_hist_ = nullptr;
    return;
  }
  commit_rejects_ = &registry->counter("rrr.commit_rejects");
  claim_cas_retries_ = &registry->counter("rrr.claim_cas_retries");
  regrow_r_ = &registry->counter("rrr.regrow_r");
  regrow_o_ = &registry->counter("rrr.regrow_o");
  set_size_hist_ = &registry->histogram("rrr.set_size");
}

void DeviceRrrCollection::attach_profile(support::profiler::WallProfile* profile) {
  commit_publish_ = profile != nullptr ? &profile->timer("commit.publish") : nullptr;
}

void DeviceRrrCollection::charge_device(std::uint64_t bytes) {
  device_->memory().allocate(bytes);
  charged_bytes_ += bytes;
}

void DeviceRrrCollection::refund_device(std::uint64_t bytes) noexcept {
  device_->memory().deallocate(bytes);
  charged_bytes_ -= bytes;
}

void DeviceRrrCollection::attach_spill(TieredRrrStore* store,
                                       std::uint64_t device_budget_bytes) {
  EIM_CHECK_MSG(element_cursor_.load(std::memory_order_relaxed) == 0,
                "attach the spill store before any set is committed");
  spill_ = store;
  device_budget_bytes_ = device_budget_bytes;
  spilled_.assign(starts_.size(), 0);
  committed_.assign(starts_.size(), 0);
}

std::uint64_t DeviceRrrCollection::current_r_bytes() const noexcept {
  return log_encode_ ? packed_.storage_bytes() : raw_.size() * sizeof(VertexId);
}

std::uint64_t DeviceRrrCollection::elements_for_bytes(
    std::uint64_t bytes) const noexcept {
  if (!log_encode_) return bytes / sizeof(VertexId);
  const std::uint64_t words = bytes / sizeof(std::uint32_t);
  return bits_per_vertex_ == 0 ? words * 32 : words * 32 / bits_per_vertex_;
}

std::uint64_t DeviceRrrCollection::budget_device_elements() const noexcept {
  // The budget caps the R element array alone. The per-set offset/length
  // metadata (12 B/set) cannot spill — it indexes the spilled sets too — so
  // it stays device-resident outside the budget; a budget tighter than the
  // metadata would otherwise allow zero elements and stall every wave.
  return elements_for_bytes(device_budget_bytes_);
}

void DeviceRrrCollection::spill_committed() {
  EIM_CHECK_MSG(spill_ != nullptr, "spill_committed without an attached store");
  const std::uint64_t cursor = element_cursor_.load(std::memory_order_relaxed);
  // The wave-boundary invariant makes this safe: between waves every claimed
  // slice is published, so [device_base_, cursor) is exactly the union of
  // the committed sets' slices and the device array can be dropped whole.
  std::vector<std::uint64_t> ids;
  std::vector<std::uint32_t> lens;
  std::uint64_t total = 0;
  for (std::uint64_t i = 0; i < starts_.size(); ++i) {
    if (committed_[i] == 0 || spilled_[i] != 0) continue;
    ids.push_back(i);
    lens.push_back(lengths_[i]);
    total += lengths_[i];
  }
  if (!ids.empty()) {
    std::vector<VertexId> values(total);
    std::uint64_t at = 0;
    for (std::size_t j = 0; j < ids.size(); ++j) {
      decode_set(ids[j], std::span<VertexId>(values.data() + at, lens[j]));
      at += lens[j];
    }
    const std::uint64_t resident = cursor - device_base_;
    const std::uint64_t raw_bytes =
        log_encode_ ? support::div_ceil<std::uint64_t>(resident * bits_per_vertex_,
                                                       32) *
                          sizeof(std::uint32_t)
                    : resident * sizeof(VertexId);
    spill_->spill(ids, lens, values, raw_bytes);
    for (const std::uint64_t i : ids) spilled_[i] = 1;
    spilled_any_ = true;
  }
  const std::uint64_t old_bytes = current_r_bytes();
  if (log_encode_) {
    packed_ = encoding::BitPackedArray();
  } else {
    raw_.clear();
    raw_.shrink_to_fit();
  }
  refund_device(old_bytes);
  device_base_ = cursor;
  element_capacity_ = cursor;
}

void DeviceRrrCollection::allocate_r(std::uint64_t num_elements) {
  // Allocate-new / copy / free-old, transiently holding both — exactly what
  // a cudaMalloc/cudaMemcpy resize costs. Only the device-resident suffix
  // [device_base_, cursor) is copied; spilled history stays below.
  const std::uint64_t dev_len = num_elements - device_base_;
  const std::uint64_t old_bytes = current_r_bytes();
  if (log_encode_) {
    const std::uint64_t new_bytes =
        support::div_ceil<std::uint64_t>(dev_len * bits_per_vertex_, 32) *
        sizeof(std::uint32_t);
    charge_device(new_bytes);
    encoding::BitPackedArray grown(static_cast<std::size_t>(dev_len),
                                   bits_per_vertex_);
    // Same bit width, so the committed prefix is a straight word copy —
    // slots past the cursor are still zero on both sides.
    const std::uint64_t used =
        element_cursor_.load(std::memory_order_relaxed) - device_base_;
    grown.assign_prefix(packed_, static_cast<std::size_t>(used));
    packed_ = std::move(grown);
    refund_device(old_bytes);
  } else {
    const std::uint64_t new_bytes = dev_len * sizeof(VertexId);
    charge_device(new_bytes);
    raw_.resize(dev_len, 0);
    // std::vector already moved the payload; refund the old footprint.
    refund_device(old_bytes);
  }
  element_capacity_ = num_elements;
  device_->charge_allocation_event("grow R");
  if (regrow_r_ != nullptr) regrow_r_->add();
}

void DeviceRrrCollection::grow_r(std::uint64_t num_elements) {
  // Budget clamp: when the requested horizon exceeds what the device budget
  // allows, evict everything committed and restart the device array at the
  // cursor — spill instead of truncating θ.
  if (spill_ != nullptr && device_budget_bytes_ > 0) {
    const std::uint64_t max_dev = budget_device_elements();
    if (num_elements - device_base_ > max_dev) {
      if (element_cursor_.load(std::memory_order_relaxed) > device_base_) {
        spill_committed();
      }
      num_elements = std::min(
          num_elements, device_base_ + std::max<std::uint64_t>(max_dev, 1));
      if (num_elements <= element_capacity_) return;
    }
  }
  for (std::uint32_t attempt = 0;; ++attempt) {
    try {
      allocate_r(num_elements);
      return;
    } catch (const support::DeviceOutOfMemoryError&) {
      // Genuine pool OOM: free the cold device-resident sets downward and
      // retry once, sized to what the pool can still hold.
      if (spill_ == nullptr || attempt > 0) throw;
      spill_committed();
      const auto& pool = device_->memory();
      const std::uint64_t avail =
          pool.capacity_bytes() > pool.allocated_bytes()
              ? pool.capacity_bytes() - pool.allocated_bytes()
              : 0;
      const std::uint64_t max_dev = elements_for_bytes(avail);
      num_elements = std::min(
          num_elements, device_base_ + std::max<std::uint64_t>(max_dev, 1));
      if (num_elements <= element_capacity_) throw;
    }
  }
}

void DeviceRrrCollection::reserve(std::uint64_t num_sets, std::uint64_t num_elements) {
  // O growth (start u64 + length u32 per set).
  if (num_sets > starts_.size()) {
    const std::uint64_t extra = (num_sets - starts_.size()) * (sizeof(std::uint64_t) +
                                                               sizeof(std::uint32_t));
    charge_device(extra);
    starts_.resize(num_sets, 0);
    lengths_.resize(num_sets, 0);
    if (spill_ != nullptr) {
      spilled_.resize(num_sets, 0);
      committed_.resize(num_sets, 0);
    }
    device_->charge_allocation_event("grow O");
    if (regrow_o_ != nullptr) regrow_o_->add();
  }

  if (num_elements > element_capacity_) grow_r(num_elements);
}

bool DeviceRrrCollection::try_commit(std::uint64_t set_index,
                                     std::span<const VertexId> sorted_set) {
  assert(std::is_sorted(sorted_set.begin(), sorted_set.end()));
  EIM_CHECK_MSG(set_index < starts_.size(), "set index beyond reserved O capacity");

  // Alg. 2 line 21: claim this set's slice of R. The claim is a CAS, not a
  // fetch_add with a fetch_sub rollback: a blind add lets a failing claim
  // transiently push the cursor past capacity, and its rollback can rewind
  // the cursor below a slice a concurrent thread committed in between —
  // the next claim then overlays that slice, which under log encoding ORs
  // two sets' bits together. With the CAS the cursor only ever advances,
  // and only by claims that fit entirely.
  std::uint64_t offset = element_cursor_.load(std::memory_order_relaxed);
  for (;;) {
    if (offset + sorted_set.size() > element_capacity_) {
      // Nothing was claimed, so nothing to undo; the driver grows R and
      // re-issues the sample next wave.
      if (commit_rejects_ != nullptr) commit_rejects_->add();
      return false;
    }
    if (element_cursor_.compare_exchange_weak(offset, offset + sorted_set.size(),
                                              std::memory_order_relaxed)) {
      break;
    }
    if (claim_cas_retries_ != nullptr) claim_cas_retries_->add();
  }

  starts_[set_index] = offset;
  lengths_[set_index] = static_cast<std::uint32_t>(sorted_set.size());
  // Distinct indices from concurrent blocks; bytes are separate objects.
  if (spill_ != nullptr) committed_[set_index] = 1;
  if (set_size_hist_ != nullptr) set_size_hist_->observe(sorted_set.size());

  // Fused publish: the C frequency update rides the same pass that encodes
  // the slice into R, so each committed vertex is touched once instead of
  // being re-walked after the store (Alg. 2 lines 26-28 as one sweep).
  std::uint32_t* const counts = counts_.data();
  const auto bump_count = [counts](VertexId v) {
    std::atomic_ref<std::uint32_t>(counts[v]).fetch_add(1, std::memory_order_relaxed);
  };
  // Thresholded wall timing (kTimedPublishLen): short publishes cost less
  // than the clock reads, so only substantial slices are measured here.
  const bool timed =
      commit_publish_ != nullptr && sorted_set.size() >= kTimedPublishLen;
  const auto publish_start = timed ? std::chrono::steady_clock::now()
                                   : std::chrono::steady_clock::time_point{};
  const std::uint64_t local = offset - device_base_;
  if (log_encode_) {
    // Bulk word-streaming publish of the claimed slice: only the boundary
    // containers shared with neighboring slices pay an atomic op.
    packed_.store_release_range(static_cast<std::size_t>(local), sorted_set,
                                bump_count);
  } else {
    VertexId* const dst = raw_.data() + local;
    for (std::size_t k = 0; k < sorted_set.size(); ++k) {
      dst[k] = sorted_set[k];
      bump_count(sorted_set[k]);
    }
  }
  if (timed) {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - publish_start)
                        .count();
    commit_publish_->record_ns(ns > 0 ? static_cast<std::uint64_t>(ns) : 0u);
  }
  return true;
}

void DeviceRrrCollection::decode_set(std::uint64_t i, std::span<VertexId> out) const {
  assert(out.size() == lengths_[i]);
  if (is_spilled(i)) {
    spill_->fetch(i, out);
    return;
  }
  const std::uint64_t start = starts_[i] - device_base_;
  if (log_encode_) {
    packed_.decode_into(static_cast<std::size_t>(start), out);
  } else {
    std::copy_n(raw_.begin() + static_cast<std::ptrdiff_t>(start), out.size(),
                out.begin());
  }
}

std::uint64_t DeviceRrrCollection::stored_bytes() const noexcept {
  // Only the device-resident suffix counts — spilled history lives in the
  // store, whose compressed footprint is reported separately.
  const std::uint64_t resident = total_elements() - device_base_;
  const std::uint64_t r_bytes = log_encode_
                                    ? support::div_ceil<std::uint64_t>(
                                          resident * bits_per_vertex_, 32) *
                                          sizeof(std::uint32_t)
                                    : resident * sizeof(VertexId);
  // O is charged per reserved slot (reserve() sizes starts_), so report the
  // same footprint here; num_sets_ lags the reservation mid-run and would
  // under-report what the pool actually holds.
  const std::uint64_t o_bytes =
      starts_.size() * (sizeof(std::uint64_t) + sizeof(std::uint32_t));
  const std::uint64_t c_bytes = static_cast<std::uint64_t>(n_) * sizeof(std::uint32_t);
  return r_bytes + o_bytes + c_bytes;
}

std::uint64_t DeviceRrrCollection::raw_equivalent_bytes() const noexcept {
  return total_elements() * sizeof(VertexId) +
         starts_.size() * (sizeof(std::uint64_t) + sizeof(std::uint32_t)) +
         static_cast<std::uint64_t>(n_) * sizeof(std::uint32_t);
}

}  // namespace eim::eim_impl
