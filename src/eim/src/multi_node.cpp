#include "eim/eim/multi_node.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <sstream>

#include "eim/eim/checkpoint.hpp"
#include "eim/eim/lazy_greedy.hpp"
#include "eim/eim/rrr_collection.hpp"
#include "eim/eim/sampler.hpp"
#include "eim/encoding/packed_csc.hpp"
#include "eim/gpusim/timeline_trace.hpp"
#include "eim/imm/driver.hpp"
#include "eim/support/bits.hpp"
#include "eim/support/error.hpp"
#include "eim/support/metrics.hpp"
#include "eim/support/trace.hpp"

namespace eim::eim_impl {

using graph::VertexId;

namespace {

/// Scalar binary-search cost in global reads (same formula as the
/// single-device selector).
std::uint64_t binsearch_probes(std::uint32_t len) {
  return 1 + support::ceil_log2(std::max<std::uint32_t>(2, len));
}

}  // namespace

MultiNodeResult run_eim_cluster(gpusim::Cluster& cluster, const graph::Graph& g,
                                graph::DiffusionModel model,
                                const imm::ImmParams& params, const EimOptions& options,
                                const MultiNodeOptions& node_options) {
  const std::uint32_t num_nodes = cluster.num_nodes();
  const std::uint32_t devices_per_node = cluster.spec().node.num_devices;
  const std::uint32_t num_flat = num_nodes * devices_per_node;
  EIM_CHECK_MSG(node_options.quorum >= 1, "quorum must be at least 1");
  EIM_CHECK_MSG(node_options.quorum <= num_nodes,
                "quorum cannot exceed the cluster's node count");

  imm::ImmParams effective = params;
  effective.eliminate_sources = options.eliminate_sources;

  MultiNodeResult result;
  result.num_nodes = num_nodes;
  result.devices_per_node = devices_per_node;
  result.network_raw_bytes = g.csc_bytes();
  std::uint64_t network_bytes = result.network_raw_bytes;
  if (options.log_encode) network_bytes = encoding::PackedCsc(g).packed_bytes();
  result.network_bytes = network_bytes;

  // Nodes the previous life of this cluster already killed stay out of the
  // run; everything below keys off `alive`, never off raw indices.
  std::vector<std::uint32_t> alive;
  for (std::uint32_t n = 0; n < num_nodes; ++n) {
    if (!cluster.node(n).lost()) alive.push_back(n);
  }
  EIM_CHECK_MSG(!alive.empty(), "cluster has no alive nodes");
  EIM_CHECK_MSG(alive.size() >= node_options.quorum,
                "cluster is below quorum before the run starts");

  const auto device_at = [&](std::uint32_t f) -> gpusim::Device& {
    return cluster.node(f / devices_per_node).device(f % devices_per_node);
  };

  std::vector<gpusim::FaultStats> faults_before(num_flat);
  for (std::uint32_t f = 0; f < num_flat; ++f) {
    faults_before[f] = device_at(f).fault_stats();
  }

  // One trace track per device plus one for the cluster fabric; collective
  // instants ride on the fabric track, node.lost on the dying node's track.
  support::trace::TraceRecorder* trace = options.trace;
  std::uint32_t cluster_pid = 0;
  if (trace != nullptr) {
    for (const std::uint32_t n : alive) {
      for (std::uint32_t d = 0; d < devices_per_node; ++d) {
        trace->register_process(
            "node " + std::to_string(n) + " device " + std::to_string(d),
            &cluster.node(n).device(d));
      }
    }
    cluster_pid = trace->register_process("cluster network", &cluster);
  }

  support::metrics::MetricsRegistry* metrics = options.metrics;
  support::metrics::Histogram* backoff_hist =
      metrics != nullptr ? &metrics->histogram("collective.backoff_seconds") : nullptr;
  support::metrics::PhaseTimer* sample_phase =
      metrics != nullptr ? &metrics->phase("sample") : nullptr;
  support::metrics::PhaseTimer* select_phase =
      metrics != nullptr ? &metrics->phase("select") : nullptr;

  // Per flattened device f = node*D + d: graph copy + shard + sampler.
  cluster.timeline().reset();
  std::vector<gpusim::DeviceBuffer<std::uint8_t>> network_charges(num_flat);
  std::vector<std::unique_ptr<DeviceRrrCollection>> shards(num_flat);
  std::vector<std::unique_ptr<EimSampler>> samplers(num_flat);
  for (const std::uint32_t n : alive) {
    for (std::uint32_t d = 0; d < devices_per_node; ++d) {
      const std::uint32_t f = n * devices_per_node + d;
      gpusim::Device& dev = device_at(f);
      dev.timeline().reset();
      dev.memory().reset_peak();
      network_charges[f] = dev.alloc<std::uint8_t>(network_bytes);
      dev.transfer_to_device("network CSC", network_bytes);
      shards[f] = std::make_unique<DeviceRrrCollection>(dev, g.num_vertices(),
                                                        options.log_encode);
      samplers[f] = std::make_unique<EimSampler>(dev, g, model, effective, options);
    }
  }

  // Failover bookkeeping, one tier up from multi_gpu: `assigned[f]` lists
  // flattened device f's sample ids in local-slot order; owner_of/slot_of
  // invert the mapping per global sample id. Fault-free, the layout is the
  // node = id % N, device = (id / N) % D striping; after a node loss the
  // survivors absorb the dead shards' ids at whatever slots come next.
  std::vector<std::vector<std::uint64_t>> assigned(num_flat);
  std::vector<std::uint32_t> owner_of;
  std::vector<std::uint64_t> slot_of;

  gpusim::Device* primary = &cluster.node(alive.front()).device(0);
  std::uint64_t sampled_global = 0;
  std::uint64_t requested_global = 0;
  bool quorum_lost = false;

  // Checkpoint-restored prefix. Kept at run level (not parked on a sampler)
  // so the restored singleton total survives the death of any node, and so
  // failover can re-commit restored sets from the snapshot replica instead
  // of re-sampling them — re-sampling would count their singleton draws a
  // second time on top of the restored total.
  std::uint64_t num_restored = 0;
  std::uint64_t restored_singletons = 0;
  std::vector<std::uint64_t> restore_starts;

  const auto flat_for = [&](std::uint64_t id) -> std::uint32_t {
    const std::uint32_t n = alive[id % alive.size()];
    const auto d =
        static_cast<std::uint32_t>((id / alive.size()) % devices_per_node);
    return n * devices_per_node + d;
  };

  // Decommission node n: respill every sample id its devices owned (plus
  // the in-flight batches) into `todo`, free its device-side state, charge
  // the reshard manifest transfer to the survivors, and enforce quorum.
  const auto decommission = [&](std::uint32_t n, std::vector<std::uint64_t>& todo,
                                const std::vector<std::uint64_t>& in_flight) {
    cluster.mark_node_lost(n);
    std::uint64_t respilled = in_flight.size();
    for (std::uint32_t d = 0; d < devices_per_node; ++d) {
      const std::uint32_t f = n * devices_per_node + d;
      respilled += assigned[f].size();
      for (const std::uint64_t id : assigned[f]) todo.push_back(id);
      assigned[f].clear();
      // Teardown is safe on a lost device: deallocation stays permitted.
      samplers[f].reset();
      shards[f].reset();
      network_charges[f] = gpusim::DeviceBuffer<std::uint8_t>{};
    }
    for (const std::uint64_t id : in_flight) todo.push_back(id);
    alive.erase(std::find(alive.begin(), alive.end(), n));
    result.failed_nodes.push_back(n);
    result.reshard_samples += respilled;
    if (trace != nullptr) {
      if (const auto pid = trace->pid_of(&cluster.node(n).device(0));
          pid.has_value()) {
        trace->instant(*pid, "node.lost", "respilled=" + std::to_string(respilled),
                       cluster.node(n).device(0).timeline().total_seconds());
      }
    }
    if (alive.empty()) {
      throw support::ClusterQuorumError("every node lost", 0, node_options.quorum);
    }
    primary = &cluster.node(alive.front()).device(0);
    // Survivors receive the dead shard's sample-id manifest. Charged as a
    // plain network transfer — recovery traffic must not consume collective
    // ordinals, or fault scripts keyed to them would shift under failover.
    const std::uint64_t bytes = respilled * sizeof(std::uint64_t);
    if (bytes > 0) cluster.charge_transfer("reshard", bytes, alive);
    if (metrics != nullptr) {
      metrics->counter("cluster.node_lost").add();
      metrics->counter("cluster.reshard_samples").add(respilled);
    }
    if (trace != nullptr && bytes > 0) {
      trace->instant(cluster_pid, "reshard", "bytes=" + std::to_string(bytes),
                     cluster.timeline().total_seconds());
    }
    if (alive.size() < node_options.quorum) {
      if (!node_options.node_degrade) {
        throw support::ClusterQuorumError(
            "node " + std::to_string(n) + " lost",
            static_cast<std::uint32_t>(alive.size()), node_options.quorum);
      }
      if (!quorum_lost) {
        quorum_lost = true;
        result.degraded = true;
        if (metrics != nullptr) metrics->counter("cluster.degraded").add();
        if (trace != nullptr) {
          trace->instant(cluster_pid, "cluster.degraded",
                         "alive=" + std::to_string(alive.size()) +
                             " quorum=" + std::to_string(node_options.quorum),
                         cluster.timeline().total_seconds());
        }
      }
    }
  };

  // Run one collective under the retry policy. Transient link faults back
  // off on the cluster's modeled clock and re-attempt; exhausting the
  // budget escalates the flaky link's node to dead (timeout => node-dead),
  // surfacing as the same NodeLostError a scripted loss produces.
  const auto run_collective = [&](const std::string& label, auto&& op) -> double {
    // The collective occupies the fabric track as a Collective span (non-leaf
    // — the cluster timeline's own segments are folded in as leaves at the
    // end of the run, and a leaf here would double-count them). Each alive
    // participant sends a flow arrow from its device-0 track into the span,
    // which is how the export shows who fed the barrier. If the op unwinds
    // (node loss), the ScopedSpan closes zero-length at the start point and
    // the arrows stay dangling at their senders — both mark the fault site.
    support::trace::ScopedSpan span(trace, cluster_pid,
                                    support::trace::SpanCategory::Collective, label,
                                    cluster.timeline().total_seconds());
    std::vector<std::uint64_t> flow_ids;
    if (trace != nullptr) {
      for (const std::uint32_t n : alive) {
        const auto pid = trace->pid_of(&cluster.node(n).device(0));
        if (!pid.has_value()) continue;
        const std::uint64_t flow_id = trace->new_flow_id();
        trace->flow_start(*pid, flow_id, label,
                          cluster.node(n).device(0).timeline().total_seconds());
        flow_ids.push_back(flow_id);
      }
    }
    try {
      const double cost = support::retry(
          node_options.collective_retry, [&] { return op(); },
          [&](std::uint32_t retry_index, double backoff_seconds,
              const support::DeviceFaultError&) {
            ++result.collective_retries;
            cluster.charge_backoff(label + " backoff", backoff_seconds);
            if (metrics != nullptr) {
              metrics->counter("collective.retries").add();
              backoff_hist->observe_duration(backoff_seconds);
            }
            if (trace != nullptr) {
              trace->instant(cluster_pid, "collective.retry",
                             label + " retry=" + std::to_string(retry_index),
                             cluster.timeline().total_seconds());
            }
          });
      const double end_ts = cluster.timeline().total_seconds();
      if (trace != nullptr) {
        for (const std::uint64_t flow_id : flow_ids) {
          trace->flow_end(cluster_pid, flow_id, label, end_ts);
        }
      }
      span.end(end_ts);
      return cost;
    } catch (const support::LinkFaultError& e) {
      cluster.mark_node_lost(e.node());
      throw support::NodeLostError(label + ": link retry budget exhausted",
                                   e.node());
    }
  };

  // Regenerate the outstanding sample ids on the survivors: stripe over the
  // current alive set, absorb node deaths (a device-tier loss retires the
  // whole node — a host whose GPU died is drained, not limped), and loop
  // until every id is committed somewhere.
  const auto regenerate = [&](std::vector<std::uint64_t>& todo) {
    while (!todo.empty()) {
      std::sort(todo.begin(), todo.end());
      std::vector<std::vector<std::uint64_t>> batch(num_flat);
      for (const std::uint64_t id : todo) batch[flat_for(id)].push_back(id);
      todo.clear();

      const std::vector<std::uint32_t> round = alive;  // decommission mutates alive
      for (const std::uint32_t n : round) {
        bool node_failed = false;
        for (std::uint32_t d = 0; d < devices_per_node && !node_failed; ++d) {
          const std::uint32_t f = n * devices_per_node + d;
          if (batch[f].empty()) continue;
          try {
            // Ids inside the restored prefix re-commit straight from the
            // snapshot (their singleton draws already sit in the restored
            // total); only fresh ids re-sample from index-keyed streams.
            std::vector<std::uint64_t> recommit;
            std::vector<std::uint64_t> fresh;
            for (const std::uint64_t id : batch[f]) {
              (id < num_restored ? recommit : fresh).push_back(id);
            }
            if (!recommit.empty()) {
              const CheckpointState& ckpt = *options.resume;
              std::uint64_t recommit_elems = 0;
              for (const std::uint64_t id : recommit) {
                recommit_elems += ckpt.lengths[id];
              }
              shards[f]->reserve(assigned[f].size() + recommit.size(),
                                 shards[f]->total_elements() + recommit_elems);
              for (const std::uint64_t id : recommit) {
                const std::span<const VertexId> set(
                    ckpt.elements.data() + restore_starts[id], ckpt.lengths[id]);
                EIM_CHECK_MSG(shards[f]->try_commit(assigned[f].size(), set),
                              "reshard restore: set did not fit reserved capacity");
                owner_of[id] = f;
                slot_of[id] = assigned[f].size();
                assigned[f].push_back(id);
              }
              shards[f]->set_num_sets(assigned[f].size());
              device_at(f).transfer_to_device(
                  "checkpoint restore",
                  recommit_elems * sizeof(VertexId) +
                      recommit.size() * sizeof(std::uint32_t));
            }
            if (!fresh.empty()) {
              samplers[f]->sample_assigned(*shards[f], fresh);
              for (const std::uint64_t id : fresh) {
                owner_of[id] = f;
                slot_of[id] = assigned[f].size();
                assigned[f].push_back(id);
              }
            }
          } catch (const support::DeviceLostError&) {
            node_failed = true;
          } catch (const support::DeviceFaultError&) {
            // Transient faults are retried inside the sampler; reaching
            // here means the retry budget is exhausted — retire the node.
            node_failed = true;
          }
          if (node_failed) {
            std::vector<std::uint64_t> in_flight;
            for (std::uint32_t d2 = d; d2 < devices_per_node; ++d2) {
              const std::uint32_t f2 = n * devices_per_node + d2;
              in_flight.insert(in_flight.end(), batch[f2].begin(), batch[f2].end());
            }
            decommission(n, todo, in_flight);
          }
        }
      }
    }
  };

  // Distribute the (packed) network: one broadcast over the cluster fabric
  // (each device's PCIe staging was charged at construction). A node that
  // dies this early — collective ordinal 0 — is decommissioned with an
  // empty shard and the broadcast re-runs on the survivors.
  for (;;) {
    try {
      run_collective("network broadcast", [&] {
        return cluster.broadcast("network broadcast", network_bytes, alive);
      });
      break;
    } catch (const support::NodeLostError& e) {
      std::vector<std::uint64_t> todo;
      decommission(e.node(), todo, {});
      regenerate(todo);
    }
  }

  // Resume: redistribute the restored global sets over THIS run's alive set
  // — the writing run may have used any topology (single device, D GPUs,
  // a different node count); because the snapshot stores sets in global
  // sample-id order and streams are index-keyed, any layout produces the
  // identical answer.
  if (options.resume != nullptr) {
    const CheckpointState& ckpt = *options.resume;
    validate_checkpoint(ckpt, g, model, params, options);
    const std::uint64_t restored = ckpt.lengths.size();
    restore_starts.assign(restored + 1, 0);
    const std::vector<std::uint64_t>& starts = restore_starts;
    for (std::uint64_t i = 0; i < restored; ++i) {
      restore_starts[i + 1] = restore_starts[i] + ckpt.lengths[i];
    }
    num_restored = restored;
    owner_of.resize(restored);
    slot_of.resize(restored);
    std::vector<std::uint64_t> shard_sets(num_flat, 0);
    std::vector<std::uint64_t> shard_elems(num_flat, 0);
    for (std::uint64_t i = 0; i < restored; ++i) {
      const std::uint32_t f = flat_for(i);
      ++shard_sets[f];
      shard_elems[f] += ckpt.lengths[i];
    }
    for (std::uint32_t f = 0; f < num_flat; ++f) {
      if (shard_sets[f] == 0) continue;
      shards[f]->reserve(shard_sets[f], shard_elems[f]);
    }
    for (std::uint64_t i = 0; i < restored; ++i) {
      const std::uint32_t f = flat_for(i);
      const std::span<const VertexId> set(ckpt.elements.data() + starts[i],
                                          ckpt.lengths[i]);
      EIM_CHECK_MSG(shards[f]->try_commit(assigned[f].size(), set),
                    "checkpoint restore: set did not fit reserved shard capacity");
      owner_of[i] = f;
      slot_of[i] = assigned[f].size();
      assigned[f].push_back(i);
    }
    for (std::uint32_t f = 0; f < num_flat; ++f) {
      if (shard_sets[f] == 0) continue;
      shards[f]->set_num_sets(assigned[f].size());
      device_at(f).transfer_to_device("checkpoint restore",
                                      shard_elems[f] * sizeof(VertexId) +
                                          shard_sets[f] * sizeof(std::uint32_t));
    }
    sampled_global = restored;
    restored_singletons = ckpt.singletons_discarded;
    primary->timeline().add(gpusim::SegmentKind::Kernel, "resume carry-over",
                            ckpt.kernel_seconds);
    primary->timeline().add(gpusim::SegmentKind::Transfer, "resume carry-over",
                            ckpt.transfer_seconds);
    primary->timeline().add(gpusim::SegmentKind::Allocation, "resume carry-over",
                            ckpt.allocation_seconds);
    primary->timeline().add(gpusim::SegmentKind::Backoff, "resume carry-over",
                            ckpt.backoff_seconds);
    if (metrics != nullptr) {
      if (!ckpt.metrics_json.empty()) {
        support::metrics::restore_registry_json(*metrics, ckpt.metrics_json);
      }
      metrics->counter("checkpoint.resume_loaded").add();
    }
    if (trace != nullptr) {
      if (const auto pid = trace->pid_of(primary); pid.has_value()) {
        trace->instant(*pid, "checkpoint.resume",
                       "num_sets=" + std::to_string(restored),
                       primary->timeline().total_seconds());
      }
    }
  }
  requested_global = sampled_global;
  for (std::uint32_t f = 0; f < num_flat; ++f) {
    if (shards[f] != nullptr) shards[f]->attach_metrics(metrics);
  }

  // Sampling: extend the committed prefix to `target`, then combine the
  // per-vertex counts with one allreduce over the alive nodes. Once quorum
  // is lost (degrade mode), the committed prefix is final — further theta
  // extensions are skipped and tallied as the shortfall.
  std::uint64_t sample_round = 0;
  auto sample_to = [&](std::uint64_t target) {
    requested_global = std::max(requested_global, target);
    if (target <= sampled_global || quorum_lost) return;
    std::optional<support::metrics::ScopedPhase> scope;
    if (sample_phase != nullptr) scope.emplace(*sample_phase);
    gpusim::Device* const span_dev = primary;
    const std::uint32_t span_pid =
        trace != nullptr ? trace->pid_of(span_dev).value_or(0) : 0;
    const double span_start = span_dev->timeline().total_seconds();
    support::trace::ScopedSpan phase_span(
        trace, span_pid, support::trace::SpanCategory::Phase, "sample", span_start);
    support::trace::ScopedSpan round_span(
        trace, span_pid, support::trace::SpanCategory::Round,
        "round " + std::to_string(sample_round++), span_start);

    std::vector<std::uint64_t> todo;
    todo.reserve(target - sampled_global);
    for (std::uint64_t i = sampled_global; i < target; ++i) todo.push_back(i);
    sampled_global = target;
    owner_of.resize(sampled_global);
    slot_of.resize(sampled_global);

    // Regenerate-then-reduce loop: a node lost during the count allreduce
    // respills its shard, which must be regenerated before the reduce can
    // complete over the survivors.
    for (;;) {
      regenerate(todo);
      try {
        const std::uint64_t count_bytes =
            static_cast<std::uint64_t>(g.num_vertices()) * sizeof(std::uint32_t);
        run_collective("count allreduce", [&] {
          return cluster.allreduce("count allreduce", count_bytes, alive);
        });
        if (metrics != nullptr) metrics->counter("cluster.count_allreduces").add();
        break;
      } catch (const support::NodeLostError& e) {
        decommission(e.node(), todo, {});
      }
    }
    round_span.end(span_dev->timeline().total_seconds());
    phase_span.end(span_dev->timeline().total_seconds());
  };

  // Selection: exact greedy on the merged host mirror; modeled cost is the
  // max over devices' shard scans (they run concurrently) plus one small
  // pick-exchange allreduce per pick (chosen vertex + coverage delta).
  auto select_once = [&] {
    std::optional<support::metrics::ScopedPhase> scope;
    if (select_phase != nullptr) scope.emplace(*select_phase);
    gpusim::Device* const span_dev = primary;
    const std::uint32_t span_pid =
        trace != nullptr ? trace->pid_of(span_dev).value_or(0) : 0;
    support::trace::ScopedSpan phase_span(
        trace, span_pid, support::trace::SpanCategory::Phase, "select",
        span_dev->timeline().total_seconds());
    const VertexId n = g.num_vertices();

    // Merge shard mirrors through the owner/slot maps.
    const std::uint64_t num_sets = sampled_global;
    std::vector<std::uint32_t> lengths(num_sets);
    std::vector<std::uint64_t> starts(num_sets + 1, 0);
    for (std::uint64_t i = 0; i < num_sets; ++i) {
      lengths[i] = shards[owner_of[i]]->set_length(slot_of[i]);
      starts[i + 1] = starts[i] + lengths[i];
    }
    std::vector<VertexId> flat(starts[num_sets]);
    for (std::uint64_t i = 0; i < num_sets; ++i) {
      shards[owner_of[i]]->decode_set(
          slot_of[i], std::span<VertexId>(flat.data() + starts[i], lengths[i]));
    }

    std::vector<std::uint32_t> counts(n, 0);
    for (const std::uint32_t nd : alive) {
      for (std::uint32_t d = 0; d < devices_per_node; ++d) {
        const std::uint32_t f = nd * devices_per_node + d;
        for (VertexId v = 0; v < n; ++v) counts[v] += shards[f]->counts()[v];
      }
    }

    // Inverted index for the exact greedy.
    std::vector<std::uint64_t> index_offsets(static_cast<std::size_t>(n) + 1, 0);
    for (const VertexId v : flat) ++index_offsets[v + 1];
    for (VertexId v = 0; v < n; ++v) index_offsets[v + 1] += index_offsets[v];
    std::vector<std::uint64_t> index_sets(flat.size());
    {
      std::vector<std::uint64_t> cursor(index_offsets.begin(), index_offsets.end() - 1);
      for (std::uint64_t i = 0; i < num_sets; ++i) {
        for (std::uint64_t p = starts[i]; p < starts[i + 1]; ++p) {
          index_sets[cursor[flat[p]]++] = i;
        }
      }
    }

    const auto& spec = primary->spec();
    const auto g_lat = static_cast<std::uint64_t>(spec.costs.global_latency);
    const auto a_lat = static_cast<std::uint64_t>(spec.costs.atomic_global);
    const std::uint64_t units = spec.max_resident_threads();

    std::vector<std::uint64_t> shard_sets(num_flat, 0);
    std::vector<std::uint64_t> shard_search(num_flat, 0);
    for (std::uint64_t i = 0; i < num_sets; ++i) {
      shard_sets[owner_of[i]]++;
      shard_search[owner_of[i]] += binsearch_probes(lengths[i]) * g_lat;
    }

    std::vector<std::uint8_t> covered(num_sets, 0);
    std::vector<std::uint8_t> chosen(n, 0);
    imm::SelectionResult sel;
    sel.seeds.reserve(effective.k);

    // Per-pick modeled cost: every alive device scans its shard
    // concurrently (the slowest governs), then the alive nodes exchange the
    // pick + coverage delta in one 12-byte allreduce. A node lost inside
    // that collective aborts this whole selection pass; the caller reshards
    // and restarts it — the merged mirror is rebuilt from regenerated,
    // bit-identical sets, so the restart picks the same seeds.
    const auto charge_pick = [&](const std::vector<std::uint64_t>& shard_dec) {
      double pick_seconds = 0.0;
      for (const std::uint32_t nd : alive) {
        for (std::uint32_t d = 0; d < devices_per_node; ++d) {
          const std::uint32_t f = nd * devices_per_node + d;
          if (shard_sets[f] == 0) continue;
          const std::uint64_t total =
              shard_sets[f] * g_lat + shard_search[f] + shard_dec[f];
          const std::uint64_t used =
              std::max<std::uint64_t>(1, std::min(units, shard_sets[f]));
          pick_seconds = std::max(
              pick_seconds, spec.costs.kernel_launch_us * 1e-6 +
                                spec.cycles_to_seconds(static_cast<double>(total / used)));
        }
      }
      primary->timeline().add(gpusim::SegmentKind::Kernel, "eim::multi_update",
                              pick_seconds);
      run_collective("pick exchange", [&] {
        return cluster.allreduce("pick exchange",
                                 sizeof(VertexId) + sizeof(std::uint64_t), alive);
      });
      if (metrics != nullptr) metrics->counter("cluster.pick_exchanges").add();
    };
    const std::vector<std::uint64_t> no_decrements(num_flat, 0);

    LazyArgMaxHeap heap{std::span<const std::uint32_t>(counts)};

    for (std::uint32_t pick = 0; pick < effective.k; ++pick) {
      VertexId best = graph::kInvalidVertex;
      std::uint32_t best_count = 0;
      if (!heap.pop_best(counts, chosen, best, best_count)) {
        // Degenerate tail: every set is covered but picks remain; each
        // filler still charges a pick round like the unsaturated path.
        for (VertexId v = 0; v < n && sel.seeds.size() < effective.k; ++v) {
          if (chosen[v] == 0) {
            chosen[v] = 1;
            sel.seeds.push_back(v);
            charge_pick(no_decrements);
          }
        }
        break;
      }
      chosen[best] = 1;
      sel.seeds.push_back(best);

      std::vector<std::uint64_t> shard_dec(num_flat, 0);
      for (std::uint64_t idx = index_offsets[best]; idx < index_offsets[best + 1];
           ++idx) {
        const std::uint64_t set_id = index_sets[idx];
        if (covered[set_id] != 0) continue;
        covered[set_id] = 1;
        ++sel.covered_sets;
        const std::uint32_t len = lengths[set_id];
        const std::uint32_t owner = owner_of[set_id];
        shard_search[owner] -= binsearch_probes(len) * g_lat;
        shard_dec[owner] += static_cast<std::uint64_t>(len) * (g_lat + a_lat);
        for (std::uint64_t p = starts[set_id]; p < starts[set_id + 1]; ++p) {
          --counts[flat[p]];
        }
      }

      charge_pick(shard_dec);
    }

    sel.coverage_fraction = num_sets == 0 ? 0.0
                                          : static_cast<double>(sel.covered_sets) /
                                                static_cast<double>(num_sets);
    phase_span.end(span_dev->timeline().total_seconds());
    return sel;
  };

  // Selection with failover: a node death anywhere inside a selection pass
  // reshards + regenerates, then restarts the pass from scratch. The
  // restart is deterministic (identical merged mirror), so the only effect
  // is modeled recovery time.
  auto select = [&] {
    for (;;) {
      try {
        return select_once();
      } catch (const support::NodeLostError& e) {
        std::vector<std::uint64_t> todo;
        decommission(e.node(), todo, {});
        regenerate(todo);
      }
    }
  };

  // Round-boundary checkpointing: merge the shard mirrors back into global
  // sample-id order (through the owner/slot maps, so failover relayouts
  // don't matter) and snapshot — readable by any topology.
  std::function<void(const imm::FrameworkRoundState&)> on_round;
  if (!options.checkpoint_dir.empty()) {
    on_round = [&](const imm::FrameworkRoundState& fr) {
      CheckpointState ckpt;
      ckpt.rng_seed = effective.rng_seed;
      ckpt.num_vertices = g.num_vertices();
      ckpt.num_edges = g.num_edges();
      ckpt.k = effective.k;
      ckpt.epsilon = effective.epsilon;
      ckpt.ell = effective.ell;
      ckpt.model = static_cast<std::uint8_t>(model);
      ckpt.log_encode = options.log_encode;
      ckpt.eliminate_sources = effective.eliminate_sources;
      ckpt.draw_mode = static_cast<std::uint8_t>(options.draw_mode);
      ckpt.num_devices = num_flat;
      ckpt.round = fr;
      ckpt.lengths.resize(sampled_global);
      std::uint64_t total = 0;
      for (std::uint64_t i = 0; i < sampled_global; ++i) {
        ckpt.lengths[i] = shards[owner_of[i]]->set_length(slot_of[i]);
        total += ckpt.lengths[i];
      }
      ckpt.elements.resize(total);
      std::uint64_t at = 0;
      for (std::uint64_t i = 0; i < sampled_global; ++i) {
        shards[owner_of[i]]->decode_set(
            slot_of[i], std::span<VertexId>(ckpt.elements.data() + at, ckpt.lengths[i]));
        at += ckpt.lengths[i];
      }
      ckpt.singletons_discarded = restored_singletons;
      for (const std::uint32_t nd : alive) {
        for (std::uint32_t d = 0; d < devices_per_node; ++d) {
          ckpt.singletons_discarded +=
              samplers[nd * devices_per_node + d]->singletons_discarded();
        }
      }
      double max_kernel = 0.0;
      for (std::uint32_t f = 0; f < num_flat; ++f) {
        max_kernel = std::max(max_kernel, device_at(f).timeline().kernel_seconds());
      }
      ckpt.kernel_seconds = max_kernel;
      ckpt.transfer_seconds = primary->timeline().transfer_seconds() +
                              cluster.timeline().transfer_seconds();
      ckpt.allocation_seconds = primary->timeline().allocation_seconds();
      ckpt.backoff_seconds = primary->timeline().backoff_seconds() +
                             cluster.timeline().backoff_seconds();
      if (metrics != nullptr) {
        std::ostringstream snapshot;
        support::JsonWriter w(snapshot);
        metrics->write_json(w);
        ckpt.metrics_json = snapshot.str();
      }
      const std::uint64_t bytes = save_checkpoint(options.checkpoint_dir, ckpt);
      if (metrics != nullptr) {
        metrics->counter("checkpoint.writes").add();
        metrics->counter("checkpoint.bytes_written").add(bytes);
      }
      if (trace != nullptr) {
        if (const auto pid = trace->pid_of(primary); pid.has_value()) {
          trace->instant(*pid, "checkpoint.write",
                         "num_sets=" + std::to_string(sampled_global),
                         primary->timeline().total_seconds());
        }
      }
    };
  }

  const imm::FrameworkOutcome outcome = imm::run_imm_framework(
      g.num_vertices(), effective, sample_to, select,
      options.resume != nullptr ? &options.resume->round : nullptr, on_round);

  primary->transfer_to_host("seed set",
                            outcome.final_selection.seeds.size() * sizeof(VertexId));

  // Fold every ledger — dead nodes' pre-loss work and the cluster fabric
  // included — into the trace as leaf spans on their own tracks.
  if (trace != nullptr) {
    for (std::uint32_t f = 0; f < num_flat; ++f) {
      if (const auto pid = trace->pid_of(&device_at(f)); pid.has_value()) {
        gpusim::record_timeline_spans(*trace, *pid, device_at(f).timeline());
      }
    }
    gpusim::record_timeline_spans(*trace, cluster_pid, cluster.timeline());
  }

  result.seeds = outcome.final_selection.seeds;
  result.num_sets = sampled_global;
  result.lower_bound = outcome.lower_bound;
  result.estimation_rounds = outcome.estimation_rounds;
  result.singletons_discarded = restored_singletons;
  for (const std::uint32_t nd : alive) {
    for (std::uint32_t d = 0; d < devices_per_node; ++d) {
      const std::uint32_t f = nd * devices_per_node + d;
      result.total_elements += shards[f]->total_elements();
      result.singletons_discarded += samplers[f]->singletons_discarded();
      result.rrr_bytes += shards[f]->stored_bytes();
      result.rrr_raw_bytes += shards[f]->raw_equivalent_bytes();
    }
  }
  for (std::uint32_t f = 0; f < num_flat; ++f) {
    result.peak_device_bytes =
        std::max(result.peak_device_bytes, device_at(f).memory().peak_bytes());
  }
  if (quorum_lost) {
    result.degrade_shortfall_samples = requested_global - sampled_global;
    // Byte-denominated view of the same shortfall, so the top-level report
    // surfaces one uniform `degrade_shortfall_bytes` regardless of tier:
    // the missing samples priced at the committed sets' average stored size.
    if (result.num_sets > 0) {
      result.degrade_shortfall_bytes =
          result.degrade_shortfall_samples * (result.rrr_bytes / result.num_sets);
    }
  }
  // Same conditional-coverage correction as the single-device pipeline.
  const double kept_fraction =
      static_cast<double>(result.num_sets) /
      static_cast<double>(result.num_sets + result.singletons_discarded);
  result.estimated_spread = static_cast<double>(g.num_vertices()) *
                            outcome.final_selection.coverage_fraction * kept_fraction;

  // Modeled wall time: devices run concurrently — the slowest device's
  // kernel time governs (dead nodes' pre-loss work included) — plus the
  // primary's PCIe transfers, plus the cluster network (collectives,
  // resharding, and collective retry backoff are all serialized on the
  // fabric here).
  double max_kernel = 0.0;
  for (std::uint32_t f = 0; f < num_flat; ++f) {
    max_kernel = std::max(max_kernel, device_at(f).timeline().kernel_seconds());
  }
  result.kernel_seconds = max_kernel;
  result.transfer_seconds = primary->timeline().transfer_seconds();
  result.communication_seconds = cluster.timeline().transfer_seconds();
  result.device_seconds = result.kernel_seconds + result.transfer_seconds +
                          primary->timeline().allocation_seconds() +
                          primary->timeline().backoff_seconds() +
                          cluster.timeline().total_seconds();
  result.device_mallocs = 0;

  if (metrics != nullptr) {
    metrics->counter("imm.estimation_rounds").add(result.estimation_rounds);
    metrics->gauge("imm.theta").set(result.num_sets);
    metrics->phase("cluster.communication")
        .add_modeled(result.communication_seconds);
    for (std::uint32_t f = 0; f < num_flat; ++f) {
      const gpusim::FaultStats now = device_at(f).fault_stats();
      metrics->counter("fault.kernel_faults_injected")
          .add(now.kernel_faults - faults_before[f].kernel_faults);
      metrics->counter("fault.transfer_faults_injected")
          .add(now.transfer_faults - faults_before[f].transfer_faults);
      metrics->counter("fault.alloc_oom_injected")
          .add(now.alloc_ooms - faults_before[f].alloc_ooms);
      metrics->counter("fault.device_lost")
          .add(now.device_losses - faults_before[f].device_losses);
    }
    metrics->counter("cluster.link_faults_injected")
        .add(cluster.fault_stats().link_faults);
  }
  return result;
}

}  // namespace eim::eim_impl
