#include "eim/eim/multi_gpu.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <sstream>

#include "eim/eim/checkpoint.hpp"
#include "eim/eim/lazy_greedy.hpp"
#include "eim/eim/rrr_collection.hpp"
#include "eim/eim/sampler.hpp"
#include "eim/encoding/packed_csc.hpp"
#include "eim/gpusim/timeline_trace.hpp"
#include "eim/imm/driver.hpp"
#include "eim/support/bits.hpp"
#include "eim/support/error.hpp"
#include "eim/support/metrics.hpp"
#include "eim/support/trace.hpp"

namespace eim::eim_impl {

using graph::VertexId;

namespace {

/// Scalar binary-search cost in global reads (same formula as the
/// single-device selector).
std::uint64_t binsearch_probes(std::uint32_t len) {
  return 1 + support::ceil_log2(std::max<std::uint32_t>(2, len));
}

}  // namespace

MultiGpuResult run_eim_multi(std::vector<gpusim::Device*> devices,
                             const graph::Graph& g, graph::DiffusionModel model,
                             const imm::ImmParams& params, const EimOptions& options) {
  EIM_CHECK_MSG(!devices.empty(), "need at least one device");
  for (gpusim::Device* d : devices) EIM_CHECK_MSG(d != nullptr, "null device");
  const auto num_devices = static_cast<std::uint32_t>(devices.size());

  imm::ImmParams effective = params;
  effective.eliminate_sources = options.eliminate_sources;

  MultiGpuResult result;
  result.num_devices = num_devices;
  result.network_raw_bytes = g.csc_bytes();
  std::uint64_t network_bytes = result.network_raw_bytes;
  if (options.log_encode) network_bytes = encoding::PackedCsc(g).packed_bytes();
  result.network_bytes = network_bytes;

  std::vector<gpusim::FaultStats> faults_before(num_devices);
  for (std::uint32_t d = 0; d < num_devices; ++d) {
    faults_before[d] = devices[d]->fault_stats();
  }

  // One trace track per device; the samplers resolve their wave-span pids
  // through pid_of, and the phase spans ride on the current primary.
  support::trace::TraceRecorder* trace = options.trace;
  if (trace != nullptr) {
    for (std::uint32_t d = 0; d < num_devices; ++d) {
      trace->register_process("device " + std::to_string(d), devices[d]);
    }
  }

  // Every device holds the (packed) graph and its own shard state.
  std::vector<gpusim::DeviceBuffer<std::uint8_t>> network_charges;
  std::vector<std::unique_ptr<DeviceRrrCollection>> shards;
  std::vector<std::unique_ptr<EimSampler>> samplers;
  for (gpusim::Device* d : devices) {
    d->timeline().reset();
    d->memory().reset_peak();
    network_charges.push_back(d->alloc<std::uint8_t>(network_bytes));
    d->transfer_to_device("network CSC", network_bytes);
    shards.push_back(
        std::make_unique<DeviceRrrCollection>(*d, g.num_vertices(), options.log_encode));
    samplers.push_back(std::make_unique<EimSampler>(*d, g, model, effective, options));
  }

  support::metrics::Counter* count_allreduces =
      options.metrics != nullptr ? &options.metrics->counter("multi.count_allreduces")
                                 : nullptr;
  support::metrics::Counter* pick_broadcasts =
      options.metrics != nullptr ? &options.metrics->counter("multi.pick_broadcasts")
                                 : nullptr;
  support::metrics::PhaseTimer* sample_phase =
      options.metrics != nullptr ? &options.metrics->phase("sample") : nullptr;
  support::metrics::PhaseTimer* select_phase =
      options.metrics != nullptr ? &options.metrics->phase("select") : nullptr;

  // Failover bookkeeping. `alive` holds the indices still in service;
  // `assigned[d]` lists device d's sample ids in local-slot order, and
  // owner_of/slot_of invert that mapping per global sample id. In the
  // fault-free case the layout reduces to the classic id % D / id / D
  // striping, but after a loss survivors absorb the dead shard's ids at
  // whatever slots come next.
  std::vector<std::uint32_t> alive(num_devices);
  for (std::uint32_t d = 0; d < num_devices; ++d) alive[d] = d;
  std::vector<std::vector<std::uint64_t>> assigned(num_devices);
  std::vector<std::uint32_t> owner_of;
  std::vector<std::uint64_t> slot_of;

  gpusim::Device* primary = devices.front();
  std::uint64_t sampled_global = 0;
  double communication = 0.0;

  // Checkpoint-restored prefix. Kept at run level (not parked on a sampler)
  // so the restored singleton total survives the death of any device, and
  // so failover can re-commit restored sets from the snapshot instead of
  // re-sampling them — re-sampling would count their singleton draws a
  // second time on top of the restored total.
  std::uint64_t num_restored = 0;
  std::uint64_t restored_singletons = 0;
  std::vector<std::uint64_t> restore_starts;

  // Resume: redistribute the restored global sets over THIS run's device
  // count (id % D striping) — the writing run may have used a different
  // number of devices; because the snapshot stores sets in global sample-id
  // order and streams are index-keyed, any D produces the identical answer.
  if (options.resume != nullptr) {
    const CheckpointState& ckpt = *options.resume;
    validate_checkpoint(ckpt, g, model, params, options);
    const std::uint64_t restored = ckpt.lengths.size();
    restore_starts.assign(restored + 1, 0);
    const std::vector<std::uint64_t>& starts = restore_starts;
    for (std::uint64_t i = 0; i < restored; ++i) {
      restore_starts[i + 1] = restore_starts[i] + ckpt.lengths[i];
    }
    num_restored = restored;
    owner_of.resize(restored);
    slot_of.resize(restored);
    for (std::uint32_t d = 0; d < num_devices; ++d) {
      std::uint64_t shard_sets = 0;
      std::uint64_t shard_elems = 0;
      for (std::uint64_t i = d; i < restored; i += num_devices) {
        ++shard_sets;
        shard_elems += ckpt.lengths[i];
      }
      if (shard_sets == 0) continue;
      shards[d]->reserve(shard_sets, shard_elems);
      for (std::uint64_t i = d; i < restored; i += num_devices) {
        const std::span<const VertexId> set(ckpt.elements.data() + starts[i],
                                            ckpt.lengths[i]);
        EIM_CHECK_MSG(shards[d]->try_commit(assigned[d].size(), set),
                      "checkpoint restore: set did not fit reserved shard capacity");
        owner_of[i] = d;
        slot_of[i] = assigned[d].size();
        assigned[d].push_back(i);
      }
      shards[d]->set_num_sets(assigned[d].size());
      devices[d]->transfer_to_device("checkpoint restore",
                                     shard_elems * sizeof(VertexId) +
                                         shard_sets * sizeof(std::uint32_t));
    }
    sampled_global = restored;
    restored_singletons = ckpt.singletons_discarded;
    // Carried modeled clock lands on the primary, matching how the result's
    // device_seconds aggregates over the fleet.
    primary->timeline().add(gpusim::SegmentKind::Kernel, "resume carry-over",
                            ckpt.kernel_seconds);
    primary->timeline().add(gpusim::SegmentKind::Transfer, "resume carry-over",
                            ckpt.transfer_seconds);
    primary->timeline().add(gpusim::SegmentKind::Allocation, "resume carry-over",
                            ckpt.allocation_seconds);
    primary->timeline().add(gpusim::SegmentKind::Backoff, "resume carry-over",
                            ckpt.backoff_seconds);
    if (options.metrics != nullptr) {
      if (!ckpt.metrics_json.empty()) {
        support::metrics::restore_registry_json(*options.metrics, ckpt.metrics_json);
      }
      options.metrics->counter("checkpoint.resume_loaded").add();
    }
    if (trace != nullptr) {
      if (const auto pid = trace->pid_of(primary); pid.has_value()) {
        trace->instant(*pid, "checkpoint.resume",
                       "num_sets=" + std::to_string(restored),
                       primary->timeline().total_seconds());
      }
    }
  }
  for (std::uint32_t d = 0; d < num_devices; ++d) {
    shards[d]->attach_metrics(options.metrics);
  }

  // Decommission device d: respill everything it owned (plus its in-flight
  // batch) into `todo`, free its device-side state, and charge the
  // redistribution broadcast of the respilled sample indices on the
  // (possibly just-promoted) primary.
  const auto decommission = [&](std::uint32_t d, std::vector<std::uint64_t>& todo,
                                const std::vector<std::uint64_t>& in_flight) {
    const std::uint64_t regenerated = assigned[d].size();
    const std::uint64_t respilled = regenerated + in_flight.size();
    for (const std::uint64_t id : assigned[d]) todo.push_back(id);
    for (const std::uint64_t id : in_flight) todo.push_back(id);
    result.failover_regenerated_sets += regenerated;
    assigned[d].clear();
    // Teardown is safe on a lost device: deallocation stays permitted.
    samplers[d].reset();
    shards[d].reset();
    network_charges[d] = gpusim::DeviceBuffer<std::uint8_t>{};
    alive.erase(std::find(alive.begin(), alive.end(), d));
    result.failed_devices.push_back(d);
    EIM_CHECK_MSG(!alive.empty(), "every device lost; cannot recover the run");
    primary = devices[alive.front()];
    const std::uint64_t bytes = respilled * sizeof(std::uint64_t);
    if (bytes > 0) {
      primary->transfer_to_device("failover redistribution", bytes);
      result.failover_transfer_bytes += bytes;
    }
    if (options.metrics != nullptr) {
      options.metrics->counter("multi.failover_events").add();
      options.metrics->counter("multi.failover_regenerated_sets").add(regenerated);
      options.metrics->counter("multi.failover_transfer_bytes").add(bytes);
    }
    if (trace != nullptr) {
      if (const auto lost_pid = trace->pid_of(devices[d]); lost_pid.has_value()) {
        trace->instant(*lost_pid, "device.lost",
                       "respilled=" + std::to_string(respilled),
                       devices[d]->timeline().total_seconds());
      }
      if (const auto pri_pid = trace->pid_of(primary);
          pri_pid.has_value() && bytes > 0) {
        trace->instant(*pri_pid, "failover.redistribute",
                       "bytes=" + std::to_string(bytes),
                       primary->timeline().total_seconds());
      }
    }
  };

  // Sampling with failover: distribute the outstanding ids over the
  // survivors (id % |alive| striping), absorb device deaths by respilling,
  // and loop until every id is committed somewhere.
  std::uint64_t sample_round = 0;
  auto sample_to = [&](std::uint64_t target) {
    if (target <= sampled_global) return;
    std::optional<support::metrics::ScopedPhase> scope;
    if (sample_phase != nullptr) scope.emplace(*sample_phase);
    // The phase rides on whatever device is primary when the round starts;
    // its modeled clock anchors both endpoints even if failover promotes a
    // new primary mid-round.
    gpusim::Device* const span_dev = primary;
    const std::uint32_t span_pid =
        trace != nullptr ? trace->pid_of(span_dev).value_or(0) : 0;
    const double span_start = span_dev->timeline().total_seconds();
    support::trace::ScopedSpan phase_span(
        trace, span_pid, support::trace::SpanCategory::Phase, "sample", span_start);
    support::trace::ScopedSpan round_span(
        trace, span_pid, support::trace::SpanCategory::Round,
        "round " + std::to_string(sample_round++), span_start);

    std::vector<std::uint64_t> todo;
    todo.reserve(target - sampled_global);
    for (std::uint64_t i = sampled_global; i < target; ++i) todo.push_back(i);
    sampled_global = target;
    owner_of.resize(sampled_global);
    slot_of.resize(sampled_global);

    while (!todo.empty()) {
      std::sort(todo.begin(), todo.end());
      std::vector<std::vector<std::uint64_t>> batch(num_devices);
      for (const std::uint64_t id : todo) {
        batch[alive[id % alive.size()]].push_back(id);
      }
      todo.clear();

      const std::vector<std::uint32_t> round = alive;  // decommission mutates alive
      for (const std::uint32_t d : round) {
        if (batch[d].empty()) continue;
        try {
          // Ids inside the restored prefix re-commit straight from the
          // snapshot (their singleton draws already sit in the restored
          // total); only fresh ids re-sample from index-keyed streams.
          std::vector<std::uint64_t> recommit;
          std::vector<std::uint64_t> fresh;
          for (const std::uint64_t id : batch[d]) {
            (id < num_restored ? recommit : fresh).push_back(id);
          }
          if (!recommit.empty()) {
            const CheckpointState& ckpt = *options.resume;
            std::uint64_t recommit_elems = 0;
            for (const std::uint64_t id : recommit) {
              recommit_elems += ckpt.lengths[id];
            }
            shards[d]->reserve(assigned[d].size() + recommit.size(),
                               shards[d]->total_elements() + recommit_elems);
            for (const std::uint64_t id : recommit) {
              const std::span<const VertexId> set(
                  ckpt.elements.data() + restore_starts[id], ckpt.lengths[id]);
              EIM_CHECK_MSG(shards[d]->try_commit(assigned[d].size(), set),
                            "failover restore: set did not fit reserved capacity");
              owner_of[id] = d;
              slot_of[id] = assigned[d].size();
              assigned[d].push_back(id);
            }
            shards[d]->set_num_sets(assigned[d].size());
            devices[d]->transfer_to_device(
                "checkpoint restore",
                recommit_elems * sizeof(VertexId) +
                    recommit.size() * sizeof(std::uint32_t));
          }
          if (!fresh.empty()) {
            samplers[d]->sample_assigned(*shards[d], fresh);
            for (const std::uint64_t id : fresh) {
              owner_of[id] = d;
              slot_of[id] = assigned[d].size();
              assigned[d].push_back(id);
            }
          }
        } catch (const support::DeviceLostError&) {
          decommission(d, todo, batch[d]);
        } catch (const support::DeviceFaultError&) {
          // Transient faults are retried inside the sampler; reaching here
          // means the retry budget is exhausted — retire the device.
          decommission(d, todo, batch[d]);
        }
      }
    }

    // All-reduce the per-vertex counts to the primary (ring reduce: each
    // surviving device ships its count array once).
    const std::uint64_t count_bytes =
        static_cast<std::uint64_t>(g.num_vertices()) * sizeof(std::uint32_t);
    for (std::size_t j = 1; j < alive.size(); ++j) {
      const double before = primary->timeline().transfer_seconds();
      primary->transfer_to_device("count all-reduce", count_bytes);
      communication += primary->timeline().transfer_seconds() - before;
      if (count_allreduces != nullptr) count_allreduces->add();
    }
    round_span.end(span_dev->timeline().total_seconds());
    phase_span.end(span_dev->timeline().total_seconds());
  };

  // Selection: exact greedy on the merged host mirror; modeled cost is the
  // max over devices' shard scans (they run concurrently) plus the per-pick
  // broadcast/return traffic.
  auto select = [&] {
    std::optional<support::metrics::ScopedPhase> scope;
    if (select_phase != nullptr) scope.emplace(*select_phase);
    gpusim::Device* const span_dev = primary;
    const std::uint32_t span_pid =
        trace != nullptr ? trace->pid_of(span_dev).value_or(0) : 0;
    support::trace::ScopedSpan phase_span(
        trace, span_pid, support::trace::SpanCategory::Phase, "select",
        span_dev->timeline().total_seconds());
    const VertexId n = g.num_vertices();

    // Merge shard mirrors through the owner/slot maps (id % D striping in
    // the fault-free case, arbitrary after failover).
    const std::uint64_t num_sets = sampled_global;
    std::vector<std::uint32_t> lengths(num_sets);
    std::vector<std::uint64_t> starts(num_sets + 1, 0);
    for (std::uint64_t i = 0; i < num_sets; ++i) {
      lengths[i] = shards[owner_of[i]]->set_length(slot_of[i]);
      starts[i + 1] = starts[i] + lengths[i];
    }
    std::vector<VertexId> flat(starts[num_sets]);
    for (std::uint64_t i = 0; i < num_sets; ++i) {
      shards[owner_of[i]]->decode_set(
          slot_of[i], std::span<VertexId>(flat.data() + starts[i], lengths[i]));
    }

    std::vector<std::uint32_t> counts(n, 0);
    for (const std::uint32_t d : alive) {
      for (VertexId v = 0; v < n; ++v) counts[v] += shards[d]->counts()[v];
    }

    // Inverted index for the exact greedy.
    std::vector<std::uint64_t> index_offsets(static_cast<std::size_t>(n) + 1, 0);
    for (const VertexId v : flat) ++index_offsets[v + 1];
    for (VertexId v = 0; v < n; ++v) index_offsets[v + 1] += index_offsets[v];
    std::vector<std::uint64_t> index_sets(flat.size());
    {
      std::vector<std::uint64_t> cursor(index_offsets.begin(), index_offsets.end() - 1);
      for (std::uint64_t i = 0; i < num_sets; ++i) {
        for (std::uint64_t p = starts[i]; p < starts[i + 1]; ++p) {
          index_sets[cursor[flat[p]]++] = i;
        }
      }
    }

    const auto& spec = primary->spec();
    const auto g_lat = static_cast<std::uint64_t>(spec.costs.global_latency);
    const auto a_lat = static_cast<std::uint64_t>(spec.costs.atomic_global);
    const std::uint64_t units = spec.max_resident_threads();

    // Per-device running aggregates for the scan cost.
    std::vector<std::uint64_t> shard_sets(num_devices, 0);
    std::vector<std::uint64_t> shard_search(num_devices, 0);
    for (std::uint64_t i = 0; i < num_sets; ++i) {
      shard_sets[owner_of[i]]++;
      shard_search[owner_of[i]] += binsearch_probes(lengths[i]) * g_lat;
    }

    std::vector<std::uint8_t> covered(num_sets, 0);
    std::vector<std::uint8_t> chosen(n, 0);
    imm::SelectionResult sel;
    sel.seeds.reserve(effective.k);

    // Per-pick modeled cost: devices scan their shards concurrently, then
    // the primary broadcasts the pick and gathers coverage deltas. Charged
    // once per pick — including degenerate tail picks, which still launch
    // the kernel and round-trip the (zero-gain) pick.
    const auto charge_pick = [&](const std::vector<std::uint64_t>& shard_dec) {
      double pick_seconds = 0.0;
      for (const std::uint32_t d : alive) {
        if (shard_sets[d] == 0) continue;
        const std::uint64_t total =
            shard_sets[d] * g_lat + shard_search[d] + shard_dec[d];
        const std::uint64_t used =
            std::max<std::uint64_t>(1, std::min(units, shard_sets[d]));
        pick_seconds = std::max(
            pick_seconds, spec.costs.kernel_launch_us * 1e-6 +
                              spec.cycles_to_seconds(static_cast<double>(total / used)));
      }
      primary->timeline().add(gpusim::SegmentKind::Kernel, "eim::multi_update",
                              pick_seconds);
      const double before = primary->timeline().transfer_seconds();
      for (std::size_t j = 1; j < alive.size(); ++j) {
        primary->transfer_to_device("pick broadcast", sizeof(VertexId));
        primary->transfer_to_host("coverage delta", sizeof(std::uint64_t));
        if (pick_broadcasts != nullptr) pick_broadcasts->add();
      }
      communication += primary->timeline().transfer_seconds() - before;
    };
    const std::vector<std::uint64_t> no_decrements(num_devices, 0);

    // CELF-style lazy arg-max over the merged counts; bit-identical to the
    // linear reference scan (see lazy_greedy.hpp for the tie-break proof).
    LazyArgMaxHeap heap{std::span<const std::uint32_t>(counts)};

    for (std::uint32_t pick = 0; pick < effective.k; ++pick) {
      VertexId best = graph::kInvalidVertex;
      std::uint32_t best_count = 0;
      if (!heap.pop_best(counts, chosen, best, best_count)) {
        // Degenerate tail: every set is covered but picks remain. Charge
        // the per-pick kernel + broadcast round for each filler so the
        // modeled time reflects k rounds like the unsaturated path.
        for (VertexId v = 0; v < n && sel.seeds.size() < effective.k; ++v) {
          if (chosen[v] == 0) {
            chosen[v] = 1;
            sel.seeds.push_back(v);
            charge_pick(no_decrements);
          }
        }
        break;
      }
      chosen[best] = 1;
      sel.seeds.push_back(best);

      std::vector<std::uint64_t> shard_dec(num_devices, 0);
      for (std::uint64_t idx = index_offsets[best]; idx < index_offsets[best + 1];
           ++idx) {
        const std::uint64_t set_id = index_sets[idx];
        if (covered[set_id] != 0) continue;
        covered[set_id] = 1;
        ++sel.covered_sets;
        const std::uint32_t len = lengths[set_id];
        const std::uint32_t owner = owner_of[set_id];
        shard_search[owner] -= binsearch_probes(len) * g_lat;
        shard_dec[owner] += static_cast<std::uint64_t>(len) * (g_lat + a_lat);
        for (std::uint64_t p = starts[set_id]; p < starts[set_id + 1]; ++p) {
          --counts[flat[p]];
        }
      }

      charge_pick(shard_dec);
    }

    sel.coverage_fraction = num_sets == 0 ? 0.0
                                          : static_cast<double>(sel.covered_sets) /
                                                static_cast<double>(num_sets);
    phase_span.end(span_dev->timeline().total_seconds());
    return sel;
  };

  // Round-boundary checkpointing: merge the shard mirrors back into global
  // sample-id order (through the owner/slot maps, so failover relayouts
  // don't matter) and snapshot, exactly like the single-device pipeline.
  std::function<void(const imm::FrameworkRoundState&)> on_round;
  if (!options.checkpoint_dir.empty()) {
    on_round = [&](const imm::FrameworkRoundState& fr) {
      CheckpointState ckpt;
      ckpt.rng_seed = effective.rng_seed;
      ckpt.num_vertices = g.num_vertices();
      ckpt.num_edges = g.num_edges();
      ckpt.k = effective.k;
      ckpt.epsilon = effective.epsilon;
      ckpt.ell = effective.ell;
      ckpt.model = static_cast<std::uint8_t>(model);
      ckpt.log_encode = options.log_encode;
      ckpt.eliminate_sources = effective.eliminate_sources;
      ckpt.draw_mode = static_cast<std::uint8_t>(options.draw_mode);
      ckpt.num_devices = num_devices;
      ckpt.round = fr;
      ckpt.lengths.resize(sampled_global);
      std::uint64_t total = 0;
      for (std::uint64_t i = 0; i < sampled_global; ++i) {
        ckpt.lengths[i] = shards[owner_of[i]]->set_length(slot_of[i]);
        total += ckpt.lengths[i];
      }
      ckpt.elements.resize(total);
      std::uint64_t at = 0;
      for (std::uint64_t i = 0; i < sampled_global; ++i) {
        shards[owner_of[i]]->decode_set(
            slot_of[i], std::span<VertexId>(ckpt.elements.data() + at, ckpt.lengths[i]));
        at += ckpt.lengths[i];
      }
      ckpt.singletons_discarded = restored_singletons;
      for (const std::uint32_t d : alive) {
        ckpt.singletons_discarded += samplers[d]->singletons_discarded();
      }
      double max_kernel = 0.0;
      for (gpusim::Device* d : devices) {
        max_kernel = std::max(max_kernel, d->timeline().kernel_seconds());
      }
      ckpt.kernel_seconds = std::max(max_kernel, primary->timeline().kernel_seconds());
      ckpt.transfer_seconds = primary->timeline().transfer_seconds();
      ckpt.allocation_seconds = primary->timeline().allocation_seconds();
      ckpt.backoff_seconds = primary->timeline().backoff_seconds();
      if (options.metrics != nullptr) {
        std::ostringstream snapshot;
        support::JsonWriter w(snapshot);
        options.metrics->write_json(w);
        ckpt.metrics_json = snapshot.str();
      }
      const std::uint64_t bytes = save_checkpoint(options.checkpoint_dir, ckpt);
      if (options.metrics != nullptr) {
        options.metrics->counter("checkpoint.writes").add();
        options.metrics->counter("checkpoint.bytes_written").add(bytes);
      }
      if (trace != nullptr) {
        if (const auto pid = trace->pid_of(primary); pid.has_value()) {
          trace->instant(*pid, "checkpoint.write",
                         "num_sets=" + std::to_string(sampled_global),
                         primary->timeline().total_seconds());
        }
      }
    };
  }

  const imm::FrameworkOutcome outcome = imm::run_imm_framework(
      g.num_vertices(), effective, sample_to, select,
      options.resume != nullptr ? &options.resume->round : nullptr, on_round);

  primary->transfer_to_host("seed set",
                            outcome.final_selection.seeds.size() * sizeof(VertexId));

  // Fold every device's ledger — including dead devices' pre-loss work —
  // into the trace as leaf spans on its own track.
  if (trace != nullptr) {
    for (std::uint32_t d = 0; d < num_devices; ++d) {
      if (const auto pid = trace->pid_of(devices[d]); pid.has_value()) {
        gpusim::record_timeline_spans(*trace, *pid, devices[d]->timeline());
      }
    }
  }

  result.seeds = outcome.final_selection.seeds;
  result.num_sets = sampled_global;
  result.lower_bound = outcome.lower_bound;
  result.estimation_rounds = outcome.estimation_rounds;
  result.singletons_discarded = restored_singletons;
  for (const std::uint32_t d : alive) {
    result.total_elements += shards[d]->total_elements();
    result.singletons_discarded += samplers[d]->singletons_discarded();
    result.rrr_bytes += shards[d]->stored_bytes();
    result.rrr_raw_bytes += shards[d]->raw_equivalent_bytes();
  }
  for (std::uint32_t d = 0; d < num_devices; ++d) {
    result.peak_device_bytes =
        std::max(result.peak_device_bytes, devices[d]->memory().peak_bytes());
  }
  // Same conditional-coverage correction as the single-device pipeline.
  const double kept_fraction =
      static_cast<double>(result.num_sets) /
      static_cast<double>(result.num_sets + result.singletons_discarded);
  result.estimated_spread = static_cast<double>(g.num_vertices()) *
                            outcome.final_selection.coverage_fraction * kept_fraction;

  // Modeled wall time: devices run concurrently — the slowest device's
  // kernel time governs (dead devices' pre-loss work included), plus the
  // primary's transfers (reductions, broadcasts, redistribution) which are
  // serialized on its copy engine here, plus any retry backoff it absorbed.
  double max_kernel = 0.0;
  for (gpusim::Device* d : devices) {
    max_kernel = std::max(max_kernel, d->timeline().kernel_seconds());
  }
  result.kernel_seconds = std::max(max_kernel, primary->timeline().kernel_seconds());
  result.transfer_seconds = primary->timeline().transfer_seconds();
  result.communication_seconds = communication;
  result.device_seconds = result.kernel_seconds + result.transfer_seconds +
                          primary->timeline().allocation_seconds() +
                          primary->timeline().backoff_seconds();
  result.device_mallocs = 0;

  if (options.metrics != nullptr) {
    options.metrics->counter("imm.estimation_rounds").add(result.estimation_rounds);
    options.metrics->gauge("imm.theta").set(result.num_sets);
    options.metrics->phase("multi.communication").add_modeled(communication);
    for (std::uint32_t d = 0; d < num_devices; ++d) {
      const gpusim::FaultStats now = devices[d]->fault_stats();
      options.metrics->counter("fault.kernel_faults_injected")
          .add(now.kernel_faults - faults_before[d].kernel_faults);
      options.metrics->counter("fault.transfer_faults_injected")
          .add(now.transfer_faults - faults_before[d].transfer_faults);
      options.metrics->counter("fault.alloc_oom_injected")
          .add(now.alloc_ooms - faults_before[d].alloc_ooms);
      options.metrics->counter("fault.device_lost")
          .add(now.device_losses - faults_before[d].device_losses);
    }
  }
  return result;
}

}  // namespace eim::eim_impl
