#include "eim/eim/tiered_store.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <utility>

#if defined(_WIN32)
#include <process.h>
#else
#include <unistd.h>
#endif

#include "eim/encoding/rrr_codec.hpp"
#include "eim/support/atomic_write.hpp"
#include "eim/support/error.hpp"
#include "eim/support/metrics.hpp"
#include "eim/support/trace.hpp"

namespace eim::eim_impl {

namespace {

std::string make_unique_spill_dir() {
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t n = counter.fetch_add(1, std::memory_order_relaxed);
  std::error_code ec;
  std::filesystem::path base = std::filesystem::temp_directory_path(ec);
  if (ec) base = ".";
#if defined(_WIN32)
  const long pid = static_cast<long>(_getpid());
#else
  const long pid = static_cast<long>(getpid());
#endif
  base /= "eim-spill-" + std::to_string(pid) + "-" + std::to_string(n);
  return base.string();
}

}  // namespace

TieredRrrStore::TieredRrrStore(gpusim::Device& device, TieredStoreOptions options)
    : device_(&device), options_(std::move(options)) {
  EIM_CHECK_MSG(options_.sets_per_block > 0, "spill store needs sets_per_block > 0");
  EIM_CHECK_MSG(options_.staging_blocks > 0, "spill store needs staging_blocks > 0");
  if (options_.dir.empty()) {
    dir_ = make_unique_spill_dir();
    own_dir_ = true;
  } else {
    dir_ = options_.dir;
  }
}

TieredRrrStore::~TieredRrrStore() {
  std::error_code ec;
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    if (blocks_[i].on_disk) std::filesystem::remove(block_path(i), ec);
  }
  if (own_dir_) std::filesystem::remove_all(dir_, ec);
}

void TieredRrrStore::attach_metrics(support::metrics::MetricsRegistry* registry) {
  if (registry == nullptr) return;
  evictions_ = &registry->counter("spill.evictions");
  evicted_sets_ = &registry->counter("spill.evicted_sets");
  evicted_bytes_raw_ = &registry->counter("spill.evicted_bytes_raw");
  evicted_bytes_compressed_ = &registry->counter("spill.evicted_bytes_compressed");
  fetches_ = &registry->counter("spill.fetches");
  staging_hits_ = &registry->counter("spill.staging_hits");
  disk_writes_ = &registry->counter("spill.disk_writes");
  disk_reads_ = &registry->counter("spill.disk_reads");
  io_retries_ = &registry->counter("spill.io_retries");
  host_oom_ = &registry->counter("spill.host_oom");
  corrupt_blocks_ = &registry->counter("spill.corrupt_blocks");
  resampled_sets_ = &registry->counter("spill.resampled_sets");
  block_bytes_ = &registry->histogram("spill.block_bytes");
}

void TieredRrrStore::attach_trace(support::trace::TraceRecorder* trace,
                                  std::uint32_t pid) {
  trace_ = trace;
  trace_pid_ = pid;
}

void TieredRrrStore::set_resample_hook(
    std::function<void(std::uint64_t, std::vector<graph::VertexId>&)> hook) {
  resample_hook_ = std::move(hook);
}

std::string TieredRrrStore::block_path(std::size_t block_index) const {
  return (std::filesystem::path(dir_) /
          ("block-" + std::to_string(block_index) + ".spill"))
      .string();
}

void TieredRrrStore::charge_pcie(const char* label, std::uint64_t bytes) {
  const gpusim::CostModel& costs = device_->spec().costs;
  const double seconds = costs.pcie_latency_us * 1e-6 +
                         static_cast<double>(bytes) /
                             (costs.pcie_gbytes_per_sec * 1e9);
  device_->timeline().add(gpusim::SegmentKind::Transfer, label, seconds);
}

void TieredRrrStore::charge_disk(const char* label, std::uint64_t bytes) {
  const gpusim::CostModel& costs = device_->spec().costs;
  const double seconds = costs.disk_latency_us * 1e-6 +
                         static_cast<double>(bytes) /
                             (costs.disk_gbytes_per_sec * 1e9);
  device_->timeline().add(gpusim::SegmentKind::Transfer, label, seconds);
}

void TieredRrrStore::trace_instant(const char* name, std::string detail) {
  if (trace_ == nullptr) return;
  trace_->instant(trace_pid_, name, std::move(detail),
                  device_->timeline().total_seconds());
}

void TieredRrrStore::spill(std::span<const std::uint64_t> set_ids,
                           std::span<const std::uint32_t> lengths,
                           std::span<const graph::VertexId> values,
                           std::uint64_t raw_device_bytes) {
  EIM_CHECK_MSG(set_ids.size() == lengths.size(),
                "spill batch: one length per set id");
  if (set_ids.empty()) return;

  // One PCIe D2H transfer covers the whole eviction batch: the packed device
  // array streams out before the host-side re-encode.
  charge_pcie("spill.evict", raw_device_bytes);

  std::uint64_t num_blocks = 0;
  std::uint64_t compressed = 0;
  std::size_t set_at = 0;
  std::size_t value_at = 0;
  while (set_at < set_ids.size()) {
    const std::size_t take =
        std::min<std::size_t>(options_.sets_per_block, set_ids.size() - set_at);
    Block block;
    block.set_ids.assign(set_ids.begin() + static_cast<std::ptrdiff_t>(set_at),
                         set_ids.begin() + static_cast<std::ptrdiff_t>(set_at + take));
    block.lengths.assign(lengths.begin() + static_cast<std::ptrdiff_t>(set_at),
                         lengths.begin() + static_cast<std::ptrdiff_t>(set_at + take));
    block.offsets.resize(take + 1, 0);
    std::uint64_t block_values = 0;
    for (std::size_t j = 0; j < take; ++j) {
      block.offsets[j + 1] = block.offsets[j] + block.lengths[j];
      block_values += block.lengths[j];
    }
    EIM_CHECK_MSG(value_at + block_values <= values.size(),
                  "spill batch: values shorter than lengths");
    block.encoded = encoding::rrr_block_encode(
        block.lengths, values.subspan(value_at, block_values));
    block.encoded_bytes = block.encoded.size();
    // Prorate the freed device footprint by member count so a later fetch
    // charges the PCIe cost of just this block's share.
    block.raw_bytes =
        values.empty() ? 0
                       : raw_device_bytes * block_values /
                             std::max<std::uint64_t>(values.size(), 1);
    const std::uint32_t block_index = static_cast<std::uint32_t>(blocks_.size());
    for (std::size_t j = 0; j < take; ++j) {
      set_index_.emplace(block.set_ids[j],
                         std::make_pair(block_index, static_cast<std::uint32_t>(j)));
    }
    compressed += block.encoded_bytes;
    if (block_bytes_ != nullptr) block_bytes_->observe(block.encoded_bytes);
    admit_block(std::move(block));
    set_at += take;
    value_at += block_values;
    ++num_blocks;
  }
  spilled_sets_ += set_ids.size();
  if (evictions_ != nullptr) {
    evictions_->add(num_blocks);
    evicted_sets_->add(set_ids.size());
    evicted_bytes_raw_->add(raw_device_bytes);
    evicted_bytes_compressed_->add(compressed);
  }
  trace_instant("spill.evict", "sets=" + std::to_string(set_ids.size()) +
                                   " blocks=" + std::to_string(num_blocks) +
                                   " compressed=" + std::to_string(compressed));
}

void TieredRrrStore::admit_block(Block&& block) {
  block.lru = ++lru_clock_;
  blocks_.push_back(std::move(block));
  Block& admitted = blocks_.back();

  // T1 admission models a host allocation: the fault plan can refuse it,
  // bouncing the block straight to the disk tier.
  const std::uint64_t ordinal = host_alloc_ordinal_++;
  if (gpusim::FaultPlan::hits(device_->fault_plan().host_alloc_oom_ordinals,
                              ordinal)) {
    ++stats_.host_ooms;
    if (host_oom_ != nullptr) host_oom_->add();
    write_to_disk(admitted);
    return;
  }
  host_bytes_ += admitted.encoded_bytes;
  enforce_host_budget();
}

void TieredRrrStore::enforce_host_budget() {
  if (options_.host_budget_bytes == 0) return;
  while (host_bytes_ > options_.host_budget_bytes) {
    // LRU over host-resident blocks; oldest goes to disk.
    std::size_t victim = blocks_.size();
    std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t i = 0; i < blocks_.size(); ++i) {
      if (!blocks_[i].on_disk && blocks_[i].lru < oldest) {
        oldest = blocks_[i].lru;
        victim = i;
      }
    }
    if (victim == blocks_.size()) return;  // nothing left to evict
    host_bytes_ -= blocks_[victim].encoded_bytes;
    write_to_disk(blocks_[victim]);
  }
}

void TieredRrrStore::write_to_disk(Block& block) {
  const std::size_t block_index = static_cast<std::size_t>(&block - blocks_.data());
  const std::string path = block_path(block_index);
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  const std::string_view view(reinterpret_cast<const char*>(block.encoded.data()),
                              block.encoded.size());
  support::retry_on<support::IoError>(
      options_.retry,
      [&] {
        const std::uint64_t ordinal = write_ordinal_++;
        const gpusim::FaultPlan& plan = device_->fault_plan();
        if (gpusim::FaultPlan::hits(plan.spill_write_fault_ordinals, ordinal)) {
          ++stats_.write_faults;
          throw support::IoError("injected spill write fault (ordinal " +
                                 std::to_string(ordinal) + ")");
        }
        if (gpusim::FaultPlan::hits(plan.spill_short_write_ordinals, ordinal)) {
          // Model ENOSPC mid-file through the real atomic-write machinery:
          // the temp file is created, half-written, then discarded — proving
          // no partial artifact is ever visible at the destination.
          ++stats_.write_faults;
          support::AtomicWriteFaults faults;
          faults.short_write_after =
              static_cast<std::int64_t>(block.encoded.size() / 2);
          support::set_atomic_write_faults(faults);
          try {
            support::atomic_write_file(path, view);
          } catch (...) {
            support::set_atomic_write_faults({});
            throw;
          }
          support::set_atomic_write_faults({});
        }
        support::atomic_write_file(path, view);
      },
      [&](std::uint32_t, double backoff, const support::IoError&) {
        ++stats_.io_retries;
        if (io_retries_ != nullptr) io_retries_->add();
        device_->charge_backoff("spill.write retry", backoff);
      });
  charge_disk("spill.write", block.encoded_bytes);
  if (disk_writes_ != nullptr) disk_writes_->add();
  block.on_disk = true;
  disk_bytes_ += block.encoded_bytes;
  block.encoded.clear();
  block.encoded.shrink_to_fit();
}

std::vector<std::uint8_t> TieredRrrStore::read_from_disk(const Block& block,
                                                         std::size_t block_index) {
  const std::string path = block_path(block_index);
  return support::retry_on<support::IoError>(
      options_.retry,
      [&]() -> std::vector<std::uint8_t> {
        const std::uint64_t ordinal = read_ordinal_++;
        const gpusim::FaultPlan& plan = device_->fault_plan();
        if (gpusim::FaultPlan::hits(plan.spill_read_fault_ordinals, ordinal)) {
          ++stats_.read_faults;
          throw support::IoError("injected spill read fault (ordinal " +
                                 std::to_string(ordinal) + ")");
        }
        std::ifstream in(path, std::ios::binary);
        if (!in) {
          throw support::IoError("spill read: cannot open '" + path + "'");
        }
        std::vector<std::uint8_t> bytes(block.encoded_bytes);
        in.read(reinterpret_cast<char*>(bytes.data()),
                static_cast<std::streamsize>(bytes.size()));
        if (in.gcount() != static_cast<std::streamsize>(bytes.size())) {
          throw support::IoError("spill read: short read from '" + path + "'");
        }
        if (gpusim::FaultPlan::hits(plan.spill_corrupt_ordinals, ordinal) &&
            !bytes.empty()) {
          // Torn-block corruption: flip one payload byte. Not an exception —
          // the CRC check downstream must be the detector.
          bytes.back() ^= 0x40u;
        }
        charge_disk("spill.read", block.encoded_bytes);
        if (disk_reads_ != nullptr) disk_reads_->add();
        return bytes;
      },
      [&](std::uint32_t, double backoff, const support::IoError&) {
        ++stats_.io_retries;
        if (io_retries_ != nullptr) io_retries_->add();
        device_->charge_backoff("spill.read retry", backoff);
      });
}

std::vector<graph::VertexId> TieredRrrStore::quarantine_and_resample(
    std::size_t block_index) {
  Block& block = blocks_[block_index];
  ++stats_.corrupt_blocks;
  if (corrupt_blocks_ != nullptr) corrupt_blocks_->add();
  trace_instant("spill.corrupt",
                "block=" + std::to_string(block_index) +
                    " sets=" + std::to_string(block.set_ids.size()));

  // Regeneration is deterministic per global sample id, so the rebuilt
  // members are bit-identical to what the torn block held.
  std::vector<graph::VertexId> values;
  values.reserve(block.offsets.back());
  std::vector<graph::VertexId> one;
  for (std::size_t j = 0; j < block.set_ids.size(); ++j) {
    one.clear();
    resample_hook_(block.set_ids[j], one);
    EIM_CHECK_MSG(one.size() == block.lengths[j],
                  "spill resample: regenerated set length diverged");
    values.insert(values.end(), one.begin(), one.end());
  }
  stats_.resampled_sets += block.set_ids.size();
  if (resampled_sets_ != nullptr) resampled_sets_->add(block.set_ids.size());

  // Re-admit the repaired block to T1 and drop the stale disk file; the host
  // budget may push it straight back down (through a fresh, intact write).
  if (block.on_disk) {
    std::error_code ec;
    std::filesystem::remove(block_path(block_index), ec);
    disk_bytes_ -= block.encoded_bytes;
    block.on_disk = false;
  } else {
    host_bytes_ -= block.encoded_bytes;
  }
  block.encoded = encoding::rrr_block_encode(block.lengths, values);
  block.encoded_bytes = block.encoded.size();
  host_bytes_ += block.encoded_bytes;
  block.lru = ++lru_clock_;
  enforce_host_budget();
  return values;
}

TieredRrrStore::Staged& TieredRrrStore::stage_block(std::size_t block_index) {
  Block& block = blocks_[block_index];
  std::vector<graph::VertexId> values;
  bool resampled = false;
  {
    std::vector<std::uint8_t> from_disk;
    std::span<const std::uint8_t> frame;
    if (block.on_disk) {
      from_disk = read_from_disk(block, block_index);
      frame = from_disk;
    } else {
      frame = block.encoded;
    }
    try {
      encoding::DecodedRrrBlock decoded = encoding::rrr_block_decode(frame);
      values = std::move(decoded.values);
    } catch (const support::IoError&) {
      if (!resample_hook_) throw;
      values = quarantine_and_resample(block_index);
      resampled = true;
    }
  }
  if (!resampled) block.lru = ++lru_clock_;

  // Stream back up through the pinned staging pool: one PCIe H2D transfer
  // for the block's share of the original device footprint.
  charge_pcie("spill.fetch", block.raw_bytes);
  trace_instant("spill.fetch", "block=" + std::to_string(block_index) +
                                   " sets=" + std::to_string(block.set_ids.size()));

  if (staging_.size() < options_.staging_blocks) {
    staging_.push_back({});
  } else {
    // Reuse the LRU staging slot.
    std::size_t victim = 0;
    for (std::size_t i = 1; i < staging_.size(); ++i) {
      if (staging_[i].lru < staging_[victim].lru) victim = i;
    }
    std::swap(staging_[victim], staging_.back());
  }
  Staged& slot = staging_.back();
  slot.block = block_index;
  slot.values = std::move(values);
  slot.lru = ++lru_clock_;
  return slot;
}

void TieredRrrStore::fetch(std::uint64_t set_id, std::span<graph::VertexId> out) {
  const auto it = set_index_.find(set_id);
  EIM_CHECK_MSG(it != set_index_.end(), "spill fetch: set was never spilled");
  const std::size_t block_index = it->second.first;
  const std::size_t pos = it->second.second;
  const Block& block = blocks_[block_index];

  Staged* staged = nullptr;
  for (Staged& s : staging_) {
    if (s.block == block_index) {
      staged = &s;
      break;
    }
  }
  if (staged != nullptr) {
    staged->lru = ++lru_clock_;
    if (staging_hits_ != nullptr) staging_hits_->add();
  } else {
    staged = &stage_block(block_index);
  }
  if (fetches_ != nullptr) fetches_->add();

  const std::uint64_t begin = block.offsets[pos];
  const std::uint32_t len = block.lengths[pos];
  EIM_CHECK_MSG(out.size() == len, "spill fetch: caller span length mismatch");
  std::copy_n(staged->values.begin() + static_cast<std::ptrdiff_t>(begin), len,
              out.begin());
}

bool TieredRrrStore::contains(std::uint64_t set_id) const {
  return set_index_.find(set_id) != set_index_.end();
}

}  // namespace eim::eim_impl
