#include "eim/eim/pipeline.hpp"

#include <memory>
#include <sstream>
#include <utility>

#include "eim/eim/checkpoint.hpp"
#include "eim/eim/rrr_collection.hpp"
#include "eim/eim/sampler.hpp"
#include "eim/eim/seed_selector.hpp"
#include "eim/eim/tiered_store.hpp"
#include "eim/encoding/packed_csc.hpp"
#include "eim/gpusim/timeline_trace.hpp"
#include "eim/imm/driver.hpp"
#include "eim/support/error.hpp"
#include "eim/support/metrics.hpp"
#include "eim/support/profiler.hpp"
#include "eim/support/retry.hpp"
#include "eim/support/thread_pool.hpp"
#include "eim/support/trace.hpp"

namespace eim::eim_impl {

namespace {

/// Retry a transfer under the run's policy, charging deterministic backoff
/// to the device timeline and counting attempts into `retry.attempts`.
template <typename Fn>
void retry_transfer(gpusim::Device& device, const EimOptions& options,
                    const char* label, Fn&& fn) {
  support::retry(
      options.retry, std::forward<Fn>(fn),
      [&](std::uint32_t /*attempt*/, double backoff,
          const support::DeviceFaultError&) {
        device.charge_backoff(std::string(label) + " retry", backoff);
        if (options.metrics != nullptr) {
          options.metrics->counter("retry.attempts").add();
          options.metrics->histogram("retry.backoff_seconds").observe_duration(backoff);
        }
      });
}

/// Fold the run's injected-fault deltas into the registry (fault.* family).
void record_fault_deltas(support::metrics::MetricsRegistry* reg,
                         const gpusim::FaultStats& before,
                         const gpusim::FaultStats& after) {
  if (reg == nullptr) return;
  reg->counter("fault.kernel_faults_injected").add(after.kernel_faults - before.kernel_faults);
  reg->counter("fault.transfer_faults_injected")
      .add(after.transfer_faults - before.transfer_faults);
  reg->counter("fault.alloc_oom_injected").add(after.alloc_ooms - before.alloc_ooms);
  reg->counter("fault.device_lost").add(after.device_losses - before.device_losses);
}

/// Detach pool instrumentation on scope exit: the device outlives the run,
/// so its hooks must not dangle into the caller's registry.
struct PoolMetricsGuard {
  explicit PoolMetricsGuard(gpusim::Device& device) : device_(&device) {}
  ~PoolMetricsGuard() { device_->memory().attach_metrics(nullptr, nullptr); }
  PoolMetricsGuard(const PoolMetricsGuard&) = delete;
  PoolMetricsGuard& operator=(const PoolMetricsGuard&) = delete;

 private:
  gpusim::Device* device_;
};

/// Detach the global pool's dispatch wall timer on scope exit — the pool
/// outlives the run, and the WallProfile belongs to the caller.
struct PoolDispatchGuard {
  explicit PoolDispatchGuard(support::profiler::WallProfile* profile) {
    if (profile != nullptr) {
      support::ThreadPool::global().attach_dispatch_timer(
          &profile->timer("pool.dispatch"));
    }
  }
  ~PoolDispatchGuard() { support::ThreadPool::global().attach_dispatch_timer(nullptr); }
  PoolDispatchGuard(const PoolDispatchGuard&) = delete;
  PoolDispatchGuard& operator=(const PoolDispatchGuard&) = delete;
};

}  // namespace

EimResult run_eim(gpusim::Device& device, const graph::Graph& g,
                  graph::DiffusionModel model, const imm::ImmParams& params,
                  const EimOptions& options) {
  device.timeline().reset();
  device.memory().reset_peak();
  const gpusim::FaultStats faults_before = device.fault_stats();

  support::metrics::MetricsRegistry* reg = options.metrics;
  support::trace::TraceRecorder* trace = options.trace;
  // Find (or register) this device's trace track. A caller that already
  // named the track — eim_cli, the multi-GPU driver — wins; instrumentation
  // down the stack (sampler waves) resolves the pid through pid_of(&device).
  std::uint32_t trace_pid = 0;
  if (trace != nullptr) {
    const auto existing = trace->pid_of(&device);
    trace_pid =
        existing.has_value() ? *existing : trace->register_process("device 0", &device);
  }
  support::profiler::WallProfile* profile = options.profile;
  PoolMetricsGuard pool_guard(device);
  PoolDispatchGuard dispatch_guard(profile);
  if (reg != nullptr) {
    device.memory().attach_metrics(&reg->gauge("device.peak_bytes"),
                                   &reg->counter("device.alloc_events"));
  }

  imm::ImmParams effective = params;
  effective.eliminate_sources = options.eliminate_sources;

  EimResult result;
  result.network_raw_bytes = g.csc_bytes();

  // An empty network has nothing to sample and no seeds to pick; bail out
  // before the sampler touches its (empty) per-block scratch. Without this
  // guard, generate() would draw source 0 from next_below(0) and stamp an
  // empty epoch array out of bounds.
  if (g.num_vertices() == 0) {
    result.network_bytes = result.network_raw_bytes;
    return result;
  }

  // Stage the network on the device: packed (§3.1) or verbatim.
  std::uint64_t network_bytes = result.network_raw_bytes;
  if (options.log_encode) {
    const support::profiler::ScopedWallTimer encode_scope(
        profile != nullptr ? &profile->timer("codec.encode") : nullptr);
    const encoding::PackedCsc packed(g);
    network_bytes = packed.packed_bytes();
  }
  result.network_bytes = network_bytes;
  auto network_charge = device.alloc<std::uint8_t>(network_bytes);
  retry_transfer(device, options, "network CSC",
                 [&] { device.transfer_to_device("network CSC", network_bytes); });

  DeviceRrrCollection collection(device, g.num_vertices(), options.log_encode);
  EimSampler sampler(device, g, model, effective, options);
  GpuSeedSelector selector(device, options.scan);
  selector.attach_metrics(reg);
  selector.attach_profile(profile);
  collection.attach_profile(profile);

  // Tiered spill hierarchy: memory pressure evicts cold sets downward
  // (compressed host, then disk) instead of stopping θ refinement; torn
  // disk blocks are quarantined and rebuilt through deterministic
  // resampling, so the final seeds are bit-identical to an unconstrained
  // run (docs/RESILIENCE.md "Memory-pressure tiers").
  std::unique_ptr<TieredRrrStore> spill_store;
  if (options.spill.policy != SpillPolicy::Off) {
    TieredStoreOptions store_options;
    store_options.host_budget_bytes = options.spill.host_budget_bytes;
    store_options.dir = options.spill.dir;
    store_options.sets_per_block = options.spill.sets_per_block;
    store_options.staging_blocks = options.spill.staging_blocks;
    store_options.retry = options.retry;
    spill_store = std::make_unique<TieredRrrStore>(device, store_options);
    spill_store->attach_metrics(reg);
    if (trace != nullptr) spill_store->attach_trace(trace, trace_pid);
    // Single-device run: local slot == global sample id, so the sampler can
    // regenerate any spilled set directly.
    spill_store->set_resample_hook(
        [&sampler](std::uint64_t set_id, std::vector<graph::VertexId>& out) {
          sampler.resample_set(set_id, out);
        });
    collection.attach_spill(spill_store.get(), options.spill.device_budget_bytes);
  }

  // Resume: rebuild the committed collection and the run's carried state
  // before wiring commit instrumentation, so restored commits are not
  // double-counted on top of the merged metrics snapshot below.
  if (options.resume != nullptr) {
    const CheckpointState& ckpt = *options.resume;
    validate_checkpoint(ckpt, g, model, params, options);
    restore_collection(collection, ckpt);
    sampler.restore_singletons(ckpt.singletons_discarded);
    // The restored R travels back over PCIe like any staged input.
    const std::uint64_t restore_bytes =
        ckpt.elements.size() * sizeof(graph::VertexId) +
        ckpt.lengths.size() * sizeof(std::uint32_t);
    retry_transfer(device, options, "checkpoint restore", [&] {
      device.transfer_to_device("checkpoint restore", restore_bytes);
    });
    // Carry the crashed segment's modeled clock so device_seconds stays the
    // cumulative modeled cost of reaching the answer.
    device.timeline().add(gpusim::SegmentKind::Kernel, "resume carry-over",
                          ckpt.kernel_seconds);
    device.timeline().add(gpusim::SegmentKind::Transfer, "resume carry-over",
                          ckpt.transfer_seconds);
    device.timeline().add(gpusim::SegmentKind::Allocation, "resume carry-over",
                          ckpt.allocation_seconds);
    device.timeline().add(gpusim::SegmentKind::Backoff, "resume carry-over",
                          ckpt.backoff_seconds);
    if (reg != nullptr) {
      if (!ckpt.metrics_json.empty()) {
        support::metrics::restore_registry_json(*reg, ckpt.metrics_json);
      }
      reg->counter("checkpoint.resume_loaded").add();
    }
    if (trace != nullptr) {
      trace->instant(trace_pid, "checkpoint.resume",
                     "num_sets=" + std::to_string(collection.num_sets()),
                     device.timeline().total_seconds());
    }
  }
  collection.attach_metrics(reg);

  // Phase timers pair host wall time (ScopedPhase) with the modeled device
  // seconds the same span added to the timeline.
  support::metrics::PhaseTimer* sample_phase =
      reg != nullptr ? &reg->phase("sample") : nullptr;
  support::metrics::PhaseTimer* select_phase =
      reg != nullptr ? &reg->phase("select") : nullptr;

  // OomPolicy::Degrade: an OOM while growing the collection stops theta
  // refinement at the last state that fit — subsequent sample_to calls
  // become no-ops, the committed prefix stays selectable, and the run
  // reports best-effort seeds instead of throwing (docs/RESILIENCE.md).
  bool degraded = false;
  std::uint64_t degrade_shortfall = 0;
  // With a spill hierarchy, OOM only reaches here after even the spill
  // tiers failed to make progress; SpillThenDegrade converts that residue
  // to a degrade, plain Spill keeps the configured OomPolicy.
  const OomPolicy effective_oom_policy =
      options.spill.policy == SpillPolicy::SpillThenDegrade ? OomPolicy::Degrade
                                                            : options.oom_policy;
  const auto sample_to = [&](std::uint64_t target) {
    if (degraded) return;
    try {
      sampler.sample_to(collection, target);
    } catch (const support::DeviceOutOfMemoryError& oom) {
      if (effective_oom_policy != OomPolicy::Degrade) throw;
      degraded = true;
      degrade_shortfall = oom.requested_bytes() > oom.available_bytes()
                              ? oom.requested_bytes() - oom.available_bytes()
                              : 0;
      if (reg != nullptr) {
        reg->counter("degrade.activations").add();
        reg->gauge("degrade.shortfall_bytes").set(degrade_shortfall);
      }
      if (trace != nullptr) {
        trace->instant(trace_pid, "oom.degrade",
                       "shortfall_bytes=" + std::to_string(degrade_shortfall),
                       device.timeline().total_seconds());
      }
    }
  };

  // Round-boundary checkpointing: snapshot the full restart state after
  // every estimation round and after the final sampling phase. Published
  // atomically — a kill mid-write leaves the previous snapshot intact.
  std::function<void(const imm::FrameworkRoundState&)> on_round;
  if (!options.checkpoint_dir.empty()) {
    on_round = [&](const imm::FrameworkRoundState& fr) {
      CheckpointState ckpt;
      ckpt.rng_seed = effective.rng_seed;
      ckpt.num_vertices = g.num_vertices();
      ckpt.num_edges = g.num_edges();
      ckpt.k = effective.k;
      ckpt.epsilon = effective.epsilon;
      ckpt.ell = effective.ell;
      ckpt.model = static_cast<std::uint8_t>(model);
      ckpt.log_encode = options.log_encode;
      ckpt.eliminate_sources = effective.eliminate_sources;
      ckpt.draw_mode = static_cast<std::uint8_t>(options.draw_mode);
      ckpt.num_devices = 1;
      ckpt.round = fr;
      export_collection(collection, ckpt);
      ckpt.singletons_discarded = sampler.singletons_discarded();
      ckpt.kernel_seconds = device.timeline().kernel_seconds();
      ckpt.transfer_seconds = device.timeline().transfer_seconds();
      ckpt.allocation_seconds = device.timeline().allocation_seconds();
      ckpt.backoff_seconds = device.timeline().backoff_seconds();
      if (reg != nullptr) {
        std::ostringstream snapshot;
        support::JsonWriter w(snapshot);
        reg->write_json(w);
        ckpt.metrics_json = snapshot.str();
      }
      const std::uint64_t bytes = save_checkpoint(options.checkpoint_dir, ckpt);
      if (reg != nullptr) {
        reg->counter("checkpoint.writes").add();
        reg->counter("checkpoint.bytes_written").add(bytes);
      }
      if (trace != nullptr) {
        trace->instant(trace_pid, "checkpoint.write",
                       "num_sets=" + std::to_string(collection.num_sets()),
                       device.timeline().total_seconds());
      }
    };
  }

  std::uint64_t sample_round = 0;
  const imm::FrameworkOutcome outcome = imm::run_imm_framework(
      g.num_vertices(), effective,
      [&](std::uint64_t target) {
        const double before = device.timeline().total_seconds();
        support::trace::ScopedSpan phase_span(
            trace, trace_pid, support::trace::SpanCategory::Phase, "sample", before);
        support::trace::ScopedSpan round_span(
            trace, trace_pid, support::trace::SpanCategory::Round,
            "round " + std::to_string(sample_round++), before);
        if (sample_phase == nullptr) {
          sample_to(target);
        } else {
          const support::metrics::ScopedPhase scope(*sample_phase);
          sample_to(target);
          sample_phase->add_modeled(device.timeline().total_seconds() - before);
        }
        const double after = device.timeline().total_seconds();
        round_span.end(after);
        phase_span.end(after);
      },
      [&] {
        const double before = device.timeline().total_seconds();
        support::trace::ScopedSpan phase_span(
            trace, trace_pid, support::trace::SpanCategory::Phase, "select", before);
        imm::SelectionResult sel;
        if (select_phase == nullptr) {
          sel = selector.select(collection, effective.k);
        } else {
          const support::metrics::ScopedPhase scope(*select_phase);
          sel = selector.select(collection, effective.k);
          select_phase->add_modeled(device.timeline().total_seconds() - before);
        }
        phase_span.end(device.timeline().total_seconds());
        return sel;
      },
      options.resume != nullptr ? &options.resume->round : nullptr, on_round);

  // Seeds travel back over PCIe (k vertex ids).
  retry_transfer(device, options, "seed set", [&] {
    device.transfer_to_host("seed set", outcome.final_selection.seeds.size() *
                                            sizeof(graph::VertexId));
  });

  result.seeds = outcome.final_selection.seeds;
  result.num_sets = collection.num_sets();
  result.total_elements = collection.total_elements();
  result.lower_bound = outcome.lower_bound;
  result.estimation_rounds = outcome.estimation_rounds;
  result.singletons_discarded = sampler.singletons_discarded();
  // Coverage under source elimination is conditional on non-singleton
  // samples; rescale by the kept fraction so the reported spread estimate
  // stays an unbiased n * F over *all* generated samples. (The inflated
  // conditional coverage still drives the theta estimate — that is the
  // §3.4 heuristic's speed mechanism.)
  const std::uint64_t generated = collection.num_sets() + result.singletons_discarded;
  const double kept_fraction =
      generated > 0 ? static_cast<double>(collection.num_sets()) /
                          static_cast<double>(generated)
                    : 1.0;  // degraded before the first set committed
  result.estimated_spread = static_cast<double>(g.num_vertices()) *
                            outcome.final_selection.coverage_fraction * kept_fraction;

  result.device_seconds = device.timeline().total_seconds();
  result.kernel_seconds = device.timeline().kernel_seconds();
  result.transfer_seconds = device.timeline().transfer_seconds();
  result.peak_device_bytes = device.memory().peak_bytes();
  result.rrr_bytes = collection.stored_bytes();
  result.rrr_raw_bytes = collection.raw_equivalent_bytes();
  result.device_mallocs = 0;  // eIM's design point: no in-kernel allocation
  result.degraded = degraded;
  result.degrade_shortfall_bytes = degrade_shortfall;
  if (spill_store != nullptr) {
    result.spilled_sets = spill_store->spilled_sets();
    result.spill_bytes_compressed = spill_store->compressed_bytes();
    if (reg != nullptr) {
      reg->gauge("spill.compressed_bytes").set(spill_store->compressed_bytes());
      reg->gauge("spill.disk_bytes").set(spill_store->disk_bytes());
    }
  }

  // Fold the device ledger into the trace as leaf spans. The run is over, so
  // every segment interval is final; the phase/round/wave spans recorded
  // live above enclose them by containment on the modeled clock.
  if (trace != nullptr) {
    gpusim::record_timeline_spans(*trace, trace_pid, device.timeline());
  }

  record_fault_deltas(reg, faults_before, device.fault_stats());
  if (reg != nullptr) {
    reg->counter("imm.estimation_rounds").add(outcome.estimation_rounds);
    reg->gauge("imm.theta").set(collection.num_sets());
    reg->gauge("rrr.stored_bytes").set(result.rrr_bytes);
    reg->gauge("rrr.raw_equivalent_bytes").set(result.rrr_raw_bytes);
  }
  return result;
}

}  // namespace eim::eim_impl
