#include "eim/eim/sampler.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>

#include "eim/graph/draw_plan.hpp"
#include "eim/imm/imm.hpp"
#include "eim/support/bits.hpp"
#include "eim/support/error.hpp"
#include "eim/support/metrics.hpp"
#include "eim/support/profiler.hpp"
#include "eim/support/retry.hpp"
#include "eim/support/rng.hpp"
#include "eim/support/trace.hpp"

namespace eim::eim_impl {

using graph::VertexId;
using gpusim::BlockContext;
using support::RandomStream;

namespace {

/// Coalesced warp transactions needed to touch `count` consecutive items.
std::uint64_t warp_chunks(std::uint64_t count, std::uint32_t warp) {
  return support::div_ceil<std::uint64_t>(count, warp);
}

}  // namespace

EimSampler::EimSampler(gpusim::Device& device, const graph::Graph& g,
                       graph::DiffusionModel model, const imm::ImmParams& params,
                       const EimOptions& options)
    : device_(&device),
      graph_(&g),
      model_(model),
      params_(params),
      options_(options),
      num_blocks_(options.sampler_blocks != 0 ? options.sampler_blocks
                                              : device.spec().num_sms * 2) {
  // Persistent global-memory pool: per block, a queue of n vertex slots
  // plus the visited bitmap M (n bits). The host-side scratch uses stamped
  // words for speed, but the device charge reflects the kernel's packed
  // layout.
  const std::uint64_t per_block =
      static_cast<std::uint64_t>(g.num_vertices()) * sizeof(VertexId) +
      support::div_ceil<std::uint64_t>(g.num_vertices(), 8);
  pool_charge_ = device.alloc<std::uint8_t>(per_block * num_blocks_);

  // Scratch stamps are allocated lazily on a block's first wave (see
  // generate()): eagerly zeroing n words per block here is an O(n · blocks)
  // page-touch that multi-GPU runs repeat per device, and blocks beyond the
  // pending-sample count never run at all.
  if (options.draw_mode == DrawMode::Skip) {
    const graph::DrawPlan* plan = g.draw_plan();
    if (plan != nullptr && plan->model == model) {
      plan_ = plan;
      // The sidecar rides on-device next to the CSC for the sampler's
      // lifetime (read-only; the host copy is shared across shards).
      plan_charge_ = device.alloc<std::uint8_t>(plan->bytes());
    }
  }

  scratch_.resize(num_blocks_);
  support::profiler::WallTimer* refill_timer =
      options.profile != nullptr ? &options.profile->timer("rng.refill") : nullptr;
  for (auto& s : scratch_) {
    s.queue.reserve(64);
    // All blocks share one refill timer; the histogram is lock-free.
    s.draws.attach_refill_timer(refill_timer);
  }
}

void EimSampler::sample_to(DeviceRrrCollection& collection, std::uint64_t target) {
  if (collection.num_sets() >= target) return;
  std::vector<std::uint64_t> globals;
  globals.reserve(target - collection.num_sets());
  for (std::uint64_t i = collection.num_sets(); i < target; ++i) globals.push_back(i);
  sample_assigned(collection, globals);
}

void EimSampler::sample_assigned(DeviceRrrCollection& collection,
                                 std::span<const std::uint64_t> global_indices) {
  if (global_indices.empty()) return;
  // next_below(0) returns 0, so an empty graph would read stamp[0] of an
  // empty epoch array — reject the request cleanly instead (the pipeline
  // already short-circuits this case to a zero-set result).
  EIM_CHECK_MSG(graph_->num_vertices() > 0, "cannot sample an empty graph");
  const std::uint64_t base = collection.num_sets();
  const std::uint64_t target = base + global_indices.size();

  // Pending work: (local slot in the collection, global stream id).
  struct PendingSample {
    std::uint64_t local_slot;
    std::uint64_t global_id;
  };
  std::vector<PendingSample> pending;
  pending.reserve(global_indices.size());
  for (std::uint64_t j = 0; j < global_indices.size(); ++j) {
    pending.push_back(PendingSample{base + j, global_indices[j]});
  }

  support::profiler::WallTimer* wave_w =
      options_.profile != nullptr ? &options_.profile->timer("sampler.wave") : nullptr;
  support::metrics::Counter* waves_c = nullptr;
  support::metrics::Counter* committed_c = nullptr;
  support::metrics::Counter* retries_c = nullptr;
  support::metrics::Counter* regens_c = nullptr;
  support::metrics::Counter* fault_retries_c = nullptr;
  support::metrics::Counter* draws_skipped_c = nullptr;
  support::metrics::Counter* alias_picks_c = nullptr;
  support::metrics::Histogram* queue_depth_h = nullptr;
  support::metrics::Histogram* backoff_h = nullptr;
  if (options_.metrics != nullptr) {
    waves_c = &options_.metrics->counter("sampler.waves");
    committed_c = &options_.metrics->counter("sampler.samples_committed");
    retries_c = &options_.metrics->counter("sampler.commit_retries");
    regens_c = &options_.metrics->counter("sampler.singleton_regens");
    fault_retries_c = &options_.metrics->counter("retry.attempts");
    queue_depth_h = &options_.metrics->histogram("sampler.queue_depth");
    backoff_h = &options_.metrics->histogram("retry.backoff_seconds");
    // Fast-draw counters exist only when the skip kernels can actually run,
    // so exact-mode metrics reports stay byte-identical to the baselines.
    if (plan_ != nullptr) {
      if (model_ == graph::DiffusionModel::IndependentCascade) {
        draws_skipped_c = &options_.metrics->counter("sampler.draws_skipped");
      } else {
        alias_picks_c = &options_.metrics->counter("sampler.alias_picks");
      }
    }
  }

  // Wave spans attach to the device's trace track; the device must have
  // been registered by the pipeline for pid_of to resolve.
  support::trace::TraceRecorder* trace = options_.trace;
  std::uint32_t trace_pid = 0;
  if (trace != nullptr) {
    const auto pid = trace->pid_of(device_);
    if (pid.has_value()) {
      trace_pid = *pid;
    } else {
      trace = nullptr;
    }
  }

  int wave = 0;
  std::uint64_t max_failed_len = 0;
  const int max_waves = max_sampler_waves(collection.spill_active());
  while (!pending.empty()) {
    EIM_CHECK_MSG(++wave <= max_waves, "sampler failed to converge on capacity");
    support::trace::ScopedSpan wave_span(trace, trace_pid,
                                         support::trace::SpanCategory::Wave,
                                         "wave " + std::to_string(wave),
                                         device_->timeline().total_seconds());

    // Reserve O for every set and R using the observed average set size
    // (first wave: a generous default).
    const std::uint64_t have_sets = collection.num_sets();
    const double avg = have_sets > 0 && collection.total_elements() > 0
                           ? static_cast<double>(collection.total_elements()) /
                                 static_cast<double>(have_sets)
                           : 8.0;
    // Headroom: the running average with slack for every pending sample,
    // plus room for the largest set that failed to fit last wave on every
    // concurrently active block — guarantees forward progress when
    // supercritical cascades produce sets far above the average (e.g.
    // com-Amazon's near-critical reverse BFS) without reserving the
    // worst case for millions of samples at once.
    const auto giant_slots = std::min<std::uint64_t>(pending.size(), num_blocks_ * 4u);
    const auto estimated = collection.total_elements() +
                           (static_cast<std::uint64_t>(avg * 1.5) + 1) *
                               static_cast<std::uint64_t>(pending.size()) +
                           max_failed_len * giant_slots + 4096;
    try {
      collection.reserve(target, estimated);
      // Spill-budget progress guard: if the largest set that failed last
      // wave cannot fit even in the freshly spilled-empty device array, no
      // number of waves will ever commit it — surface that as OOM (which
      // SpillThenDegrade converts to a degrade) instead of spinning.
      if (collection.spill_active() && max_failed_len > 0 &&
          collection.element_capacity() - collection.total_elements() <
              max_failed_len) {
        throw support::DeviceOutOfMemoryError(
            max_failed_len * sizeof(VertexId),
            (collection.element_capacity() - collection.total_elements()) *
                sizeof(VertexId));
      }
    } catch (const support::DeviceOutOfMemoryError&) {
      // Publish the contiguous committed prefix before propagating so
      // OomPolicy::Degrade selects over every set that fully committed
      // (pending is sorted by local slot; its front is the first gap).
      collection.set_num_sets(pending.front().local_slot);
      throw;
    }

    for (auto& s : scratch_) s.failed.clear();

    // Transient launch faults fire before any block body runs, so a retry
    // re-executes the whole wave against untouched scratch/collection state;
    // the deterministic backoff lands on this device's timeline.
    const auto wave_body = [&](gpusim::BlockContext& ctx) {
          BlockScratch& scratch = scratch_[ctx.block_id()];
          // Round-robin assignment of samples to blocks (§3.2: "a round
          // robin assignment of RRR set creation between the GPU blocks").
          // Strided slots keep per-block load statistically balanced and —
          // unlike an atomic claim — make the modeled makespan independent
          // of host scheduling, so runs are bit-reproducible.
          for (std::uint64_t slot = ctx.block_id(); slot < pending.size();
               slot += num_blocks_) {
            ctx.charge_atomic_global(1);  // shared `count` bookkeeping

            const PendingSample sample = pending[slot];
            const std::uint32_t regenerated =
                generate(ctx, scratch, sample.global_id);

            // Sort + commit (Fig. 2). Source elimination already happened
            // inside generate(); queue holds the final sorted set.
            if (collection.try_commit(sample.local_slot, scratch.queue)) {
              // Final queue length = the RRR set this sample produced (post
              // source elimination); lock-free, safe from pool threads.
              // Observed only here: a capacity-failed sample re-runs next
              // wave and would otherwise be counted once per attempt.
              if (queue_depth_h != nullptr) queue_depth_h->observe(scratch.queue.size());
              charge_commit(ctx, static_cast<std::uint32_t>(scratch.queue.size()));
              scratch.discarded += regenerated;
            } else {
              scratch.failed.push_back(slot);
              scratch.max_failed_len =
                  std::max<std::uint64_t>(scratch.max_failed_len, scratch.queue.size());
            }
          }
        };
    {
      // One wall entry per wave launch: the whole Monte Carlo BFS sweep for
      // this wave's pending samples, including host-pool dispatch.
      const support::profiler::ScopedWallTimer wave_wall(wave_w);
      support::retry(
          options_.retry,
          [&] { device_->launch_blocks("eim::sample", num_blocks_, wave_body); },
          [&](std::uint32_t /*attempt*/, double backoff,
              const support::DeviceFaultError&) {
            device_->charge_backoff("eim::sample retry", backoff);
            if (fault_retries_c != nullptr) fault_retries_c->add();
            if (backoff_h != nullptr) backoff_h->observe_duration(backoff);
          });
    }

    std::vector<PendingSample> retry;
    for (auto& s : scratch_) {
      for (const std::uint64_t slot : s.failed) retry.push_back(pending[slot]);
      singletons_discarded_ += s.discarded;
      if (regens_c != nullptr) regens_c->add(s.discarded);
      s.discarded = 0;
      if (draws_skipped_c != nullptr) draws_skipped_c->add(s.draws_skipped);
      if (alias_picks_c != nullptr) alias_picks_c->add(s.alias_picks);
      s.draws_skipped = 0;
      s.alias_picks = 0;
      max_failed_len = std::max(max_failed_len, s.max_failed_len);
      s.max_failed_len = 0;
    }
    if (waves_c != nullptr) waves_c->add();
    if (retries_c != nullptr) retries_c->add(retry.size());
    if (committed_c != nullptr) committed_c->add(pending.size() - retry.size());
    wave_span.end(device_->timeline().total_seconds());
    std::sort(retry.begin(), retry.end(),
              [](const PendingSample& a, const PendingSample& b) {
                return a.local_slot < b.local_slot;
              });
    pending = std::move(retry);
  }

  collection.set_num_sets(target);
}

void EimSampler::resample_set(std::uint64_t global_id,
                              std::vector<graph::VertexId>& out) {
  // One single-block launch re-runs the generation path for this global
  // sample id; the draws are a pure function of (rng_seed, global id), so
  // the regenerated set is bit-identical to the one originally committed.
  out.clear();
  support::retry(
      options_.retry,
      [&] {
        device_->launch_blocks("eim::resample", 1, [&](gpusim::BlockContext& ctx) {
          BlockScratch& scratch = scratch_[ctx.block_id()];
          generate(ctx, scratch, global_id);
          out.assign(scratch.queue.begin(), scratch.queue.end());
        });
      },
      [&](std::uint32_t /*attempt*/, double backoff,
          const support::DeviceFaultError&) {
        device_->charge_backoff("eim::resample retry", backoff);
      });
}

std::uint32_t EimSampler::generate(BlockContext& ctx, BlockScratch& scratch,
                                   std::uint64_t sample_index) {
  const VertexId n = graph_->num_vertices();
  std::uint32_t regenerated = 0;

  for (std::uint32_t attempt = 0;; ++attempt) {
    RandomStream rng(params_.rng_seed,
                     support::derive_stream(imm::kSampleStreamTag, sample_index, attempt));
    const VertexId source = rng.next_below(n);
    ctx.charge_alu(2);  // lane 0 picks the source, seeds head/tail (Alg. 2 l.5-10)

    // First use of this block's scratch: materialize the stamp array now
    // (constructor defers it so idle blocks never pay the n-word touch).
    if (scratch.stamp.empty()) scratch.stamp.assign(n, 0);
    // Fresh epoch == "initialize M" without touching n words every sample.
    if (++scratch.epoch == 0) {
      std::fill(scratch.stamp.begin(), scratch.stamp.end(), 0u);
      scratch.epoch = 1;
    }
    scratch.queue.clear();
    scratch.queue.push_back(source);
    scratch.stamp[source] = scratch.epoch;

    if (model_ == graph::DiffusionModel::IndependentCascade) {
      if (plan_ != nullptr) {
        bfs_ic_skip(ctx, scratch, source, rng);
      } else {
        bfs_ic(ctx, scratch, source, rng);
      }
    } else {
      if (plan_ != nullptr) {
        walk_lt_skip(ctx, scratch, source, rng);
      } else {
        walk_lt(ctx, scratch, source, rng);
      }
    }

    if (options_.eliminate_sources) {
      // Queue slot 0 always holds the source.
      scratch.queue.erase(scratch.queue.begin());
      ctx.charge_alu(1);
      if (scratch.queue.empty() && attempt + 1 < imm::kMaxRegenerationAttempts) {
        ++regenerated;
        continue;  // §3.4: throw the singleton away, draw a fresh sample
      }
    }
    break;
  }

  std::sort(scratch.queue.begin(), scratch.queue.end());
  return regenerated;
}

void EimSampler::bfs_ic(BlockContext& ctx, BlockScratch& scratch, VertexId source,
                        RandomStream& rng) {
  const graph::Graph& g = *graph_;
  const std::uint32_t warp = ctx.warp_size();
  // Hoisted: queue.push_back writes through a uint32 pointer, so keeping
  // stamp/epoch as locals spares a per-edge member reload (hot loop). The
  // stamp base is stable here — only the epoch-wrap path resizes it, and
  // that ran before the BFS started.
  std::uint32_t* const stamp = scratch.stamp.data();
  const std::uint32_t epoch = scratch.epoch;

  // Per-level draw buffer: activation draws are generated in bulk
  // (fill_floats) ahead of each edge sweep, so the per-edge work is a flat
  // scan of precomputed draws against weights instead of a Philox call per
  // edge. One draw is consumed per *unvisited* neighbor, in stream order —
  // the exact consumption contract of the serial reference — and
  // finish_sample rewinds the stream to what was actually taken.
  support::FloatDrawBuffer& draws = scratch.draws;
  auto c = draws.begin_sample(rng);
  // In-degree sum of queued-but-unswept vertices — the frontier's exact
  // remaining draw demand. Refills are sized to it, so a cascade that dies
  // young costs no more Philox blocks than the scalar loop would.
  std::size_t pending = g.in().neighbors(source).size();

  // Warp-wide probabilistic BFS (Alg. 2 lines 11-20). The queue IS the
  // visited set; head walks forward, tail grows as lanes activate
  // in-neighbors.
  for (std::size_t head = 0; head < scratch.queue.size(); ++head) {
    const VertexId u = scratch.queue[head];
    ctx.charge_global(1);  // read Q front

    const auto ins = g.in().neighbors(u);
    const auto ws = g.in_weights(u);
    // Lanes sweep the in-edge list in warp-sized chunks: neighbor ids,
    // weights, and M lookups are each one coalesced transaction per chunk.
    ctx.charge_global(3 * warp_chunks(ins.size(), warp));
    ctx.charge_alu(warp_chunks(ins.size(), warp));  // rng + compare per lane

    c = draws.ensure(c, rng, ins.size(), pending);
    std::size_t t = 0;
    for (std::size_t j = 0; j < ins.size(); ++j) {
      const VertexId v = ins[j];
      const bool visited = stamp[v] == epoch;
      if (visited) continue;
      // Strict < (not <=): a zero-weight edge must never activate, and the
      // serial reference uses the same comparison for bit-parity.
      if (c.p[t++] < ws[j]) {
        stamp[v] = epoch;  // mark BEFORE enqueue (Alg. 2 l.18)
        scratch.queue.push_back(v);
        pending += g.in().neighbors(v).size();
        ctx.charge_global(1);         // M store + Q store (write-combined)
        ctx.charge_atomic_global(1);  // atomicAdd on q_tail (Alg. 2 l.20)
      }
    }
    c.p += t;
    c.avail -= t;
    pending -= ins.size();
  }
  draws.finish_sample(rng, c);
}

void EimSampler::walk_lt(BlockContext& ctx, BlockScratch& scratch, VertexId source,
                         RandomStream& rng) {
  const graph::Graph& g = *graph_;
  const std::uint32_t warp = ctx.warp_size();

  // §3.3: thread 0 draws tau for the dequeued vertex; the warp prefix-scans
  // in-edge weights and the unique lane whose inclusive sum first crosses
  // tau activates its neighbor. At most one vertex joins per step, so the
  // queue is a walk.
  VertexId u = source;
  for (;;) {
    const auto ins = g.in().neighbors(u);
    const auto ws = g.in_weights(u);
    if (ins.empty()) break;

    const float tau = rng.next_float();
    ctx.charge_alu(1);

    VertexId chosen = graph::kInvalidVertex;
    float base = 0.0f;
    for (std::size_t chunk = 0; chunk < ins.size(); chunk += warp) {
      const std::size_t len = std::min<std::size_t>(warp, ins.size() - chunk);
      ctx.charge_global(2);  // neighbors + weights, one transaction each

      // Real inclusive scan over this chunk's weights (metered as the
      // __shfl_up_sync ladder).
      float lane_vals[32];
      for (std::size_t l = 0; l < len; ++l) lane_vals[l] = ws[chunk + l];
      ctx.warp_inclusive_scan(std::span<float>(lane_vals, len));

      bool lane_hit[32];
      for (std::size_t l = 0; l < len; ++l) {
        const float inclusive = base + lane_vals[l];
        const float exclusive = base + (l == 0 ? 0.0f : lane_vals[l - 1]);
        lane_hit[l] = inclusive > tau && exclusive <= tau;
      }
      const std::uint32_t mask = ctx.warp_ballot(std::span<const bool>(lane_hit, len));
      if (options_.lt_activation == LtActivationMethod::AtomicAdd) {
        // Ablation: the shared-sum variant serializes one atomic per lane
        // on the same address (§3.3's rejected design). Identical result,
        // different cost.
        ctx.charge_atomic_shared(len);
      }
      if (mask != 0) {
        chosen = ins[chunk + static_cast<std::size_t>(std::countr_zero(mask))];
        break;
      }
      base += lane_vals[len - 1];
    }

    if (chosen == graph::kInvalidVertex) break;          // tau in the no-one gap
    if (scratch.stamp[chosen] == scratch.epoch) break;   // walk closed a loop
    scratch.stamp[chosen] = scratch.epoch;
    scratch.queue.push_back(chosen);
    ctx.charge_global(1);
    ctx.charge_atomic_global(1);
    u = chosen;
  }
}

void EimSampler::bfs_ic_skip(BlockContext& ctx, BlockScratch& scratch,
                             VertexId source, RandomStream& rng) {
  const graph::Graph& g = *graph_;
  const graph::DrawPlan& plan = *plan_;
  const std::uint32_t warp = ctx.warp_size();
  std::uint32_t* const stamp = scratch.stamp.data();
  const std::uint32_t epoch = scratch.epoch;
  const graph::EdgeId* const offsets = g.in().offsets.data();
  const VertexId* const targets = g.in().targets.data();
  const graph::Weight* const weights = g.all_in_weights().data();

  // SoA frontier: the CSC slice and weight class of every queued vertex,
  // captured at enqueue time. The sweep then streams flat arrays — no
  // offset-table reload, no per-vertex plan lookup.
  auto& fbegin = scratch.frontier_begin;
  auto& flen = scratch.frontier_len;
  auto& fkind = scratch.frontier_kind;
  fbegin.clear();
  flen.clear();
  fkind.clear();
  const auto push_meta = [&](VertexId v) {
    const graph::EdgeId b = offsets[v];
    fbegin.push_back(b);
    flen.push_back(static_cast<std::uint32_t>(offsets[v + 1] - b));
    fkind.push_back(plan.ic_kind[v]);
  };
  push_meta(source);

  for (std::size_t head = 0; head < scratch.queue.size(); ++head) {
    ctx.charge_global(1);  // read Q front + its SoA slice (one line each)

    const auto kind = static_cast<graph::DrawPlan::IcKind>(fkind[head]);
    const std::uint32_t deg = flen[head];
    if (deg == 0 || kind == graph::DrawPlan::IcKind::Zero) {
      // Zero: uniform weight <= 0 — no draw can succeed, skip the slice
      // outright. deg draws avoided, zero consumed.
      scratch.draws_skipped += deg;
      continue;
    }
    const graph::EdgeId begin = fbegin[head];
    const VertexId* const ins = targets + begin;

    switch (kind) {
      case graph::DrawPlan::IcKind::Uniform: {
        // One uniform per failure run: jump straight to the next success.
        // The jump counts positions over ALL in-edges (visited targets
        // included — a success on a visited vertex is a no-op), so the
        // per-edge Bernoulli distribution is preserved exactly.
        const double log1m = plan.ic_log1m[scratch.queue[head]];
        std::uint64_t draws = 1;
        ctx.charge_alu(1);  // log + floor of the skip draw
        std::uint64_t j = support::geometric_skip(rng, log1m);
        while (j < deg) {
          const VertexId v = ins[j];
          ctx.charge_global(1);  // neighbor id gather + M probe
          if (stamp[v] != epoch) {
            stamp[v] = epoch;
            scratch.queue.push_back(v);
            push_meta(v);
            ctx.charge_global(1);         // M store + Q store (write-combined)
            ctx.charge_atomic_global(1);  // atomicAdd on q_tail
          }
          const std::uint64_t s = support::geometric_skip(rng, log1m);
          ++draws;
          ctx.charge_alu(1);
          if (s >= deg - 1 - j) break;  // next success lands past the slice
          j += 1 + s;
        }
        if (deg > draws) scratch.draws_skipped += deg - draws;
        break;
      }
      case graph::DrawPlan::IcKind::Saturated: {
        // Uniform weight with p_eff >= 1: every in-edge activates, no
        // randomness consumed at all.
        ctx.charge_global(2 * warp_chunks(deg, warp));  // ids + M probes
        for (std::uint32_t j = 0; j < deg; ++j) {
          const VertexId v = ins[j];
          if (stamp[v] != epoch) {
            stamp[v] = epoch;
            scratch.queue.push_back(v);
            push_meta(v);
            ctx.charge_global(1);
            ctx.charge_atomic_global(1);
          }
        }
        scratch.draws_skipped += deg;
        break;
      }
      default: {
        // Mixed weights: exact per-edge fallback (same draw-per-unvisited-
        // neighbor shape and the same metered cost as the exact kernel).
        const graph::Weight* const ws = weights + begin;
        ctx.charge_global(3 * warp_chunks(deg, warp));
        ctx.charge_alu(warp_chunks(deg, warp));
        for (std::uint32_t j = 0; j < deg; ++j) {
          const VertexId v = ins[j];
          if (stamp[v] == epoch) continue;
          if (rng.next_float() < ws[j]) {
            stamp[v] = epoch;
            scratch.queue.push_back(v);
            push_meta(v);
            ctx.charge_global(1);
            ctx.charge_atomic_global(1);
          }
        }
        break;
      }
    }
  }
}

void EimSampler::walk_lt_skip(BlockContext& ctx, BlockScratch& scratch,
                              VertexId source, RandomStream& rng) {
  const graph::Graph& g = *graph_;
  const graph::DrawPlan& plan = *plan_;

  // Same walk as walk_lt, but the activated in-neighbor is picked in O(1)
  // from the vertex's Vose alias table: one uniform split into (bucket,
  // coin) replaces the O(in-degree) warp prefix scan.
  VertexId u = source;
  for (;;) {
    const graph::EdgeId begin = g.in().offsets[u];
    const auto deg = static_cast<std::uint32_t>(g.in().offsets[u + 1] - begin);
    if (deg == 0) break;

    const float tau = rng.next_float();
    ctx.charge_alu(1);     // lane 0 draws tau and splits (bucket, coin)
    ctx.charge_global(1);  // alias-table gather (prob + alias, one line)
    const std::uint32_t pick = graph::alias_pick_lt(plan, g, u, tau);
    ++scratch.alias_picks;
    if (pick == graph::kNoAliasPick) break;  // tau in the no-one gap

    const VertexId chosen = g.in().targets[begin + pick];
    ctx.charge_global(1);  // neighbor id gather
    if (scratch.stamp[chosen] == scratch.epoch) break;  // walk closed a loop
    scratch.stamp[chosen] = scratch.epoch;
    scratch.queue.push_back(chosen);
    ctx.charge_global(1);
    ctx.charge_atomic_global(1);
    u = chosen;
  }
}

void EimSampler::charge_commit(BlockContext& ctx, std::uint32_t len) const {
  if (len == 0) {
    ctx.charge_atomic_global(1);  // offset claim still happens
    return;
  }
  const std::uint32_t warp = ctx.warp_size();
  const std::uint64_t chunks = warp_chunks(len, warp);

  // Ascending-order insert: in-register bitonic sort of the queue,
  // log^2(len) compare-exchange stages over ceil(len/32) warp fronts.
  const std::uint32_t log_len = support::ceil_log2(std::max<std::uint32_t>(2, len));
  ctx.charge_alu(chunks * log_len * log_len);

  ctx.charge_atomic_global(1);  // offset claim (Alg. 2 line 21)
  ctx.charge_global(1);         // O[count + 1] store

  // Copy Q -> R (lines 23-27): one coalesced store per chunk — doubled for
  // the packed layout's read-modify-write — plus C atomics and M resets.
  const std::uint64_t store_cost = options_.log_encode ? 2 * chunks : chunks;
  ctx.charge_global(store_cost + chunks /* M resets */);
  for (std::uint64_t c = 0; c < chunks; ++c) {
    ctx.charge_atomic_global(1);  // 32 lanes, distinct counters: one round
  }
  ctx.charge_atomic_global(1);  // atomicAdd(count, 1) (line 28)
}

}  // namespace eim::eim_impl
