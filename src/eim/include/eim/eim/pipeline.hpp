// The eIM end-to-end pipeline: the paper's contribution, assembled.
//
//   1. the network CSC is (optionally log-encoded and) placed in device
//      memory, paid for against the device budget and the PCIe model;
//   2. the IMM framework runs with eIM's sampler (global-memory queue pool,
//      source elimination) and eIM's seed selector (thread-per-set scan);
//   3. the result carries both the algorithmic outputs and the device
//      metrics (modeled seconds, peak memory, packed vs raw sizes) that the
//      paper's figures and tables report.
//
// Throws support::DeviceOutOfMemoryError if the configured device budget is
// exceeded — the condition the benchmark harness reports as "OOM".
#pragma once

#include "eim/eim/options.hpp"
#include "eim/gpusim/device.hpp"
#include "eim/graph/graph.hpp"
#include "eim/graph/weights.hpp"
#include "eim/imm/params.hpp"

namespace eim::eim_impl {

/// Run eIM on a fresh device state. The device's timeline and peak-memory
/// tracking are reset on entry so the result reflects this run alone.
[[nodiscard]] EimResult run_eim(gpusim::Device& device, const graph::Graph& g,
                                graph::DiffusionModel model,
                                const imm::ImmParams& params,
                                const EimOptions& options = {});

}  // namespace eim::eim_impl
