// Multi-GPU eIM — the extension announced in the paper's conclusion
// ("we plan to extend eIM to support multi-GPU execution to further improve
// scalability").
//
// Design: sampling is embarrassingly parallel, so device d generates the
// sample indices congruent to d modulo D (the same index-keyed streams as
// everywhere else — the union across devices is bit-identical to a
// single-device run). After each sampling phase the per-vertex count arrays
// are all-reduced to the primary device over the interconnect, and seed
// selection runs on the primary against the distributed collection: each
// pick broadcasts the chosen vertex (4 bytes) and every device scans its
// local shard, returning its coverage delta.
//
// Modeled time per phase = max over devices (they run concurrently) plus
// the reduction/broadcast transfers.
//
// Failover (docs/RESILIENCE.md): if a device dies mid-sampling
// (DeviceLostError, or a transient fault that exhausts the retry budget),
// its residual shard — every sample index it owned plus its in-flight
// batch — is redistributed across the survivors and regenerated from the
// same index-keyed random streams. Because streams are keyed by sample
// index, not by device, the final seed set is bit-identical to the
// fault-free run; only the modeled time and shard layout change.
#pragma once

#include <cstdint>
#include <vector>

#include "eim/eim/options.hpp"
#include "eim/gpusim/device.hpp"
#include "eim/graph/graph.hpp"
#include "eim/graph/weights.hpp"
#include "eim/imm/params.hpp"

namespace eim::eim_impl {

struct MultiGpuResult : EimResult {
  std::uint32_t num_devices = 1;
  /// Modeled seconds spent in count all-reduce / pick broadcast.
  double communication_seconds = 0.0;
  /// Devices (indices into the input vector) decommissioned by failover.
  std::vector<std::uint32_t> failed_devices;
  /// RRR sets that had to be regenerated on survivors after device loss.
  std::uint64_t failover_regenerated_sets = 0;
  /// Interconnect bytes spent redistributing lost shards' sample indices.
  std::uint64_t failover_transfer_bytes = 0;
};

/// Run eIM across `devices.size()` simulated GPUs. Seeds (and every other
/// algorithmic output) are identical to the single-device run with the same
/// parameters; only the modeled time changes. Device loss mid-run triggers
/// deterministic failover (see above) as long as one device survives;
/// losing every device raises DeviceLostError.
[[nodiscard]] MultiGpuResult run_eim_multi(std::vector<gpusim::Device*> devices,
                                           const graph::Graph& g,
                                           graph::DiffusionModel model,
                                           const imm::ImmParams& params,
                                           const EimOptions& options = {});

}  // namespace eim::eim_impl
