// Multi-GPU eIM — the extension announced in the paper's conclusion
// ("we plan to extend eIM to support multi-GPU execution to further improve
// scalability").
//
// Design: sampling is embarrassingly parallel, so device d generates the
// sample indices congruent to d modulo D (the same index-keyed streams as
// everywhere else — the union across devices is bit-identical to a
// single-device run). After each sampling phase the per-vertex count arrays
// are all-reduced to the primary device over the interconnect, and seed
// selection runs on the primary against the distributed collection: each
// pick broadcasts the chosen vertex (4 bytes) and every device scans its
// local shard, returning its coverage delta.
//
// Modeled time per phase = max over devices (they run concurrently) plus
// the reduction/broadcast transfers.
#pragma once

#include <vector>

#include "eim/eim/options.hpp"
#include "eim/gpusim/device.hpp"
#include "eim/graph/graph.hpp"
#include "eim/graph/weights.hpp"
#include "eim/imm/params.hpp"

namespace eim::eim_impl {

struct MultiGpuResult : EimResult {
  std::uint32_t num_devices = 1;
  /// Modeled seconds spent in count all-reduce / pick broadcast.
  double communication_seconds = 0.0;
};

/// Run eIM across `devices.size()` simulated GPUs. Seeds (and every other
/// algorithmic output) are identical to the single-device run with the same
/// parameters; only the modeled time changes.
[[nodiscard]] MultiGpuResult run_eim_multi(std::vector<gpusim::Device*> devices,
                                           const graph::Graph& g,
                                           graph::DiffusionModel model,
                                           const imm::ImmParams& params,
                                           const EimOptions& options = {});

}  // namespace eim::eim_impl
