// Tiered RRR spill store: compressed host overflow + disk-backed cold tier.
//
// The two lower rungs of the memory-pressure hierarchy behind
// DeviceRrrCollection (docs/RESILIENCE.md "Memory-pressure tiers"):
//
//   T0  device-resident bit-packed sets (the collection itself)
//   T1  compressed host-resident blocks — batches of decoded sets framed by
//       encoding::rrr_block_encode (delta + varint/Huffman, per-block
//       CRC-32C), admitted under an optional host byte budget with LRU
//       eviction downward
//   T2  disk-backed cold blocks, written through the hardened
//       support::atomic_write_file (fsync + atomic rename) so a crash or a
//       full disk never publishes a torn block
//
// Every movement is charged to the owning device's modeled timeline — PCIe
// bandwidth/latency for device<->host ("spill.evict"/"spill.fetch"), the
// cost model's disk tier for host<->disk ("spill.write"/"spill.read") — so
// the spill tax shows up in modeled `seconds` exactly like kernel time.
// Disk I/O honors the device FaultPlan's spill ordinals: transient
// write/read faults and mid-file short writes retry under
// support::retry_on<IoError> with deterministic modeled backoff; a block
// whose CRC fails on read is quarantined and rebuilt through the resample
// hook (sample regeneration is deterministic per global sample id), so even
// torn disk blocks cannot change the final seeds.
//
// Not thread-safe: spill and fetch run only in the pipeline's serial
// contexts (reserve between waves, selector preprocessing, checkpoint
// export), matching the DeviceTimeline's single-writer rule.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "eim/graph/types.hpp"
#include "eim/gpusim/device.hpp"
#include "eim/support/retry.hpp"

namespace eim::support::metrics {
class MetricsRegistry;
class Counter;
class Histogram;
}  // namespace eim::support::metrics

namespace eim::support::trace {
class TraceRecorder;
}  // namespace eim::support::trace

namespace eim::eim_impl {

struct TieredStoreOptions {
  /// Cap on compressed bytes held in host memory (T1); blocks past it are
  /// LRU-evicted to disk. 0 = unbounded (disk is reached only via injected
  /// host-allocation OOM).
  std::uint64_t host_budget_bytes = 0;
  /// Directory for T2 block files; empty = a fresh per-store directory under
  /// the system temp path, removed when the store is destroyed.
  std::string dir;
  /// Sets batched into one compressed block.
  std::uint32_t sets_per_block = 1024;
  /// Decoded blocks kept hot in the staging pool (the "small pinned staging
  /// pool" sets stream back up through).
  std::uint32_t staging_blocks = 4;
  /// Transient disk-I/O retry budget (backoff is modeled, deterministic).
  support::RetryPolicy retry;
};

struct TieredStoreStats {
  std::uint64_t host_ooms = 0;        ///< T1 admissions bounced to disk by fault plan
  std::uint64_t write_faults = 0;     ///< injected transient write faults + short writes
  std::uint64_t read_faults = 0;      ///< injected transient read faults
  std::uint64_t io_retries = 0;       ///< disk attempts retried after a transient fault
  std::uint64_t corrupt_blocks = 0;   ///< blocks quarantined on CRC mismatch
  std::uint64_t resampled_sets = 0;   ///< sets rebuilt through the resample hook
};

class TieredRrrStore {
 public:
  TieredRrrStore(gpusim::Device& device, TieredStoreOptions options);
  ~TieredRrrStore();
  TieredRrrStore(const TieredRrrStore&) = delete;
  TieredRrrStore& operator=(const TieredRrrStore&) = delete;

  void attach_metrics(support::metrics::MetricsRegistry* registry);
  void attach_trace(support::trace::TraceRecorder* trace, std::uint32_t pid);

  /// Deterministic block-repair source: regenerate the decoded members of
  /// one set by global sample id. Without a hook, a CRC failure is fatal
  /// (IoError, exit 3) instead of recoverable.
  void set_resample_hook(
      std::function<void(std::uint64_t, std::vector<graph::VertexId>&)> hook);

  /// Evict a batch of decoded sets downward. `values` concatenates the sets
  /// in `set_ids` order (each ascending); `raw_device_bytes` is the packed
  /// device footprint being freed, charged as one PCIe D2H transfer.
  void spill(std::span<const std::uint64_t> set_ids,
             std::span<const std::uint32_t> lengths,
             std::span<const graph::VertexId> values,
             std::uint64_t raw_device_bytes);

  /// Stream one spilled set back up through the staging pool. `out.size()`
  /// must equal the length passed to spill(). Throws IoError when disk I/O
  /// fails past the retry budget or a corrupt block cannot be resampled.
  void fetch(std::uint64_t set_id, std::span<graph::VertexId> out);

  [[nodiscard]] bool contains(std::uint64_t set_id) const;
  [[nodiscard]] std::uint64_t spilled_sets() const noexcept { return spilled_sets_; }
  /// Compressed footprint across T1 + T2.
  [[nodiscard]] std::uint64_t compressed_bytes() const noexcept {
    return host_bytes_ + disk_bytes_;
  }
  [[nodiscard]] std::uint64_t host_bytes() const noexcept { return host_bytes_; }
  [[nodiscard]] std::uint64_t disk_bytes() const noexcept { return disk_bytes_; }
  [[nodiscard]] const TieredStoreStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

 private:
  struct Block {
    std::vector<std::uint64_t> set_ids;
    std::vector<std::uint32_t> lengths;
    std::vector<std::uint64_t> offsets;   ///< prefix sums over lengths (size+1)
    std::vector<std::uint8_t> encoded;    ///< empty while resident on disk
    std::uint64_t encoded_bytes = 0;      ///< frame size (valid in either tier)
    std::uint64_t raw_bytes = 0;          ///< packed device footprint it freed
    bool on_disk = false;
    std::uint64_t lru = 0;
  };
  struct Staged {
    std::size_t block = 0;
    std::vector<graph::VertexId> values;
    std::uint64_t lru = 0;
  };

  void admit_block(Block&& block);
  void enforce_host_budget();
  void write_to_disk(Block& block);
  [[nodiscard]] std::vector<std::uint8_t> read_from_disk(const Block& block,
                                                         std::size_t block_index);
  Staged& stage_block(std::size_t block_index);
  [[nodiscard]] std::vector<graph::VertexId> quarantine_and_resample(
      std::size_t block_index);
  [[nodiscard]] std::string block_path(std::size_t block_index) const;
  void charge_pcie(const char* label, std::uint64_t bytes);
  void charge_disk(const char* label, std::uint64_t bytes);
  void trace_instant(const char* name, std::string detail);

  gpusim::Device* device_;
  TieredStoreOptions options_;
  std::string dir_;
  bool own_dir_ = false;

  std::vector<Block> blocks_;
  std::unordered_map<std::uint64_t, std::pair<std::uint32_t, std::uint32_t>>
      set_index_;  ///< set id -> (block, position in block)
  std::vector<Staged> staging_;
  std::uint64_t lru_clock_ = 0;

  std::uint64_t spilled_sets_ = 0;
  std::uint64_t host_bytes_ = 0;
  std::uint64_t disk_bytes_ = 0;
  std::uint64_t host_alloc_ordinal_ = 0;
  std::uint64_t write_ordinal_ = 0;
  std::uint64_t read_ordinal_ = 0;
  TieredStoreStats stats_;

  std::function<void(std::uint64_t, std::vector<graph::VertexId>&)> resample_hook_;

  support::metrics::Counter* evictions_ = nullptr;
  support::metrics::Counter* evicted_sets_ = nullptr;
  support::metrics::Counter* evicted_bytes_raw_ = nullptr;
  support::metrics::Counter* evicted_bytes_compressed_ = nullptr;
  support::metrics::Counter* fetches_ = nullptr;
  support::metrics::Counter* staging_hits_ = nullptr;
  support::metrics::Counter* disk_writes_ = nullptr;
  support::metrics::Counter* disk_reads_ = nullptr;
  support::metrics::Counter* io_retries_ = nullptr;
  support::metrics::Counter* host_oom_ = nullptr;
  support::metrics::Counter* corrupt_blocks_ = nullptr;
  support::metrics::Counter* resampled_sets_ = nullptr;
  support::metrics::Histogram* block_bytes_ = nullptr;

  support::trace::TraceRecorder* trace_ = nullptr;
  std::uint32_t trace_pid_ = 0;
};

}  // namespace eim::eim_impl
