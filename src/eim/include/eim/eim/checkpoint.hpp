// Crash-safe checkpoint/resume for the eIM pipeline (docs/RESILIENCE.md).
//
// At every round boundary the pipeline can serialize its complete restart
// state into a checkpoint directory:
//
//   <dir>/manifest.json   run identity (graph shape, params, model, options)
//   <dir>/snapshot.bin    support::snapshot container with the sections
//                         "framework", "collection", "sampler", "timeline",
//                         "metrics"
//
// Both files are published with support::atomic_write_file, and snapshot.bin
// is written before manifest.json, so a kill at any instant leaves either
// the previous consistent checkpoint or none — never a torn one.
//
// Resume is bit-identical by construction: RRR sampling draws from streams
// keyed by the *global sample index* (sampler.hpp's determinism contract),
// so restoring the committed sets 0..theta'-1 plus the framework's round
// position replays the remaining indices exactly as the uninterrupted run
// would have generated them. The snapshot therefore stores the collection
// in global sample-id order (lengths + flattened sorted elements), the
// framework round state, the singleton tally (which fixes the §3.4
// kept-fraction, and with it estimated_spread), the modeled-timeline
// aggregates, and a metrics-registry snapshot.
//
// Corruption handling: any bit flip or truncation in snapshot.bin is caught
// by the container's CRC-32C checksums; a malformed manifest is caught by
// support::parse_json. Both surface as snapshot::SnapshotCorruptError — an
// IoError, exit code 3 — never a crash or a silently wrong resume. Resuming
// against the wrong graph/params is InvalidArgumentError (exit code 2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "eim/graph/graph.hpp"
#include "eim/graph/weights.hpp"
#include "eim/imm/driver.hpp"
#include "eim/imm/params.hpp"

namespace eim::eim_impl {

class DeviceRrrCollection;
struct EimOptions;

/// Everything a crashed run needs to continue, decoded into host memory.
struct CheckpointState {
  // Run identity — validated against the resuming run's inputs so a
  // snapshot can never silently continue the wrong run.
  std::uint64_t rng_seed = 0;
  std::uint32_t num_vertices = 0;
  std::uint64_t num_edges = 0;
  std::uint32_t k = 0;
  double epsilon = 0.0;
  double ell = 0.0;
  std::uint8_t model = 0;  ///< graph::DiffusionModel as an integer
  bool log_encode = false;
  bool eliminate_sources = false;
  /// eim_impl::DrawMode as an integer. Part of the identity: Exact and Skip
  /// consume the RNG streams differently, so a resume that silently switched
  /// modes would splice two incompatible draw sequences. Old manifests
  /// (pre-draw-mode) decode as Exact — the only mode that existed.
  std::uint8_t draw_mode = 0;
  /// Device count of the writing run. Informational only: a resumed run may
  /// redistribute the restored collection across a different device count.
  std::uint32_t num_devices = 1;

  /// Where the IMM framework stopped (theta targets are recomputed).
  imm::FrameworkRoundState round;

  /// The committed collection in global sample-id order: per-set lengths
  /// and the flattened element array (each set ascending, as committed).
  std::vector<std::uint32_t> lengths;
  std::vector<graph::VertexId> elements;

  /// §3.4 singleton tally at the boundary (exact, for estimated_spread).
  std::uint64_t singletons_discarded = 0;

  /// Modeled-timeline aggregates, carried over so device_seconds stays the
  /// cumulative modeled cost of reaching the answer across run segments.
  double kernel_seconds = 0.0;
  double transfer_seconds = 0.0;
  double allocation_seconds = 0.0;
  double backoff_seconds = 0.0;

  /// Registry snapshot in the eim.metrics.v2 registry schema ("" = none);
  /// folded back via support::metrics::restore_registry_json on resume.
  std::string metrics_json;
};

/// Serialize `state` into `dir` (created if missing) as manifest.json +
/// snapshot.bin, each published atomically. Returns total bytes written.
/// Throws support::IoError when the directory or files cannot be written.
std::uint64_t save_checkpoint(const std::string& dir, const CheckpointState& state);

/// Load and fully validate the checkpoint in `dir`. Throws plain
/// support::IoError when no checkpoint exists (missing/unreadable files) and
/// support::snapshot::SnapshotCorruptError on any structural, checksum, or
/// schema damage — including a manifest that fails support::parse_json and
/// element values outside the recorded vertex range.
[[nodiscard]] CheckpointState load_checkpoint(const std::string& dir);

/// Guard a resume against the wrong run: `state`'s identity block must match
/// the resuming run's graph shape, diffusion model, ImmParams, and the
/// layout-relevant options. Throws support::InvalidArgumentError (exit code
/// 2) naming the first mismatched field.
void validate_checkpoint(const CheckpointState& state, const graph::Graph& g,
                         graph::DiffusionModel model, const imm::ImmParams& params,
                         const EimOptions& options);

/// Flatten `collection` (its full committed range) into
/// `state.lengths`/`state.elements` in set-index order.
void export_collection(const DeviceRrrCollection& collection, CheckpointState& state);

/// Rebuild `collection` from `state`: reserve exact capacity, re-commit
/// every set at its original index, and publish the set count. The
/// collection must be freshly constructed (empty).
void restore_collection(DeviceRrrCollection& collection, const CheckpointState& state);

}  // namespace eim::eim_impl
