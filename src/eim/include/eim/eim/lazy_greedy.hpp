// CELF-style lazy arg-max for greedy seed selection (host-side accelerator).
//
// The greedy invariant that makes laziness sound: marginal counts only ever
// decrease as sets get covered, so a heap keyed by *cached* counts holds an
// upper bound for every vertex. When the popped top's cached count matches
// its current count, it is the true arg-max — every other entry's current
// count is bounded by its cached key, which the heap says is <= the top.
//
// Tie-breaking is part of the contract: the reference linear scan picks the
// smallest vertex id among maximal counts (strict `>` while scanning ids in
// ascending order). Packing keys as (count << 32) | ~v reproduces exactly
// that under ordinary uint64 max-heap ordering, so the selected seed
// sequence is bit-identical to the reference — which the property tests in
// tests/eim/test_seed_selector.cpp pin down.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "eim/graph/types.hpp"

namespace eim::eim_impl {

class LazyArgMaxHeap {
 public:
  /// Build from the initial counts; O(n) make_heap.
  explicit LazyArgMaxHeap(std::span<const std::uint32_t> counts) {
    keys_.reserve(counts.size());
    for (std::size_t v = 0; v < counts.size(); ++v) {
      keys_.push_back(pack(counts[v], static_cast<graph::VertexId>(v)));
    }
    std::make_heap(keys_.begin(), keys_.end());
  }

  /// Pop the arg-max of `counts` over vertices not yet `chosen`, skipping
  /// chosen entries and re-keying stale ones. Returns false when every
  /// remaining vertex has count zero (the caller's filler path) — the heap
  /// is left intact so a later call still sees those vertices.
  [[nodiscard]] bool pop_best(std::span<const std::uint32_t> counts,
                              std::span<const std::uint8_t> chosen,
                              graph::VertexId& best, std::uint32_t& best_count) {
    while (!keys_.empty()) {
      std::pop_heap(keys_.begin(), keys_.end());
      const std::uint64_t key = keys_.back();
      keys_.pop_back();
      const auto v = vertex(key);
      if (chosen[v] != 0) continue;  // permanently drained
      const std::uint32_t current = counts[v];
      if (current != count(key)) {
        push(pack(current, v));  // stale upper bound: re-key and retry
        continue;
      }
      if (current == 0) {
        // Accurate top with count 0 ⇒ all remaining counts are 0.
        push(key);
        return false;
      }
      best = v;
      best_count = current;
      return true;
    }
    return false;
  }

 private:
  [[nodiscard]] static std::uint64_t pack(std::uint32_t cnt,
                                          graph::VertexId v) noexcept {
    // Count major; ~v minor so equal counts order by *smallest* id first.
    return (static_cast<std::uint64_t>(cnt) << 32) |
           static_cast<std::uint32_t>(~v);
  }
  [[nodiscard]] static std::uint32_t count(std::uint64_t key) noexcept {
    return static_cast<std::uint32_t>(key >> 32);
  }
  [[nodiscard]] static graph::VertexId vertex(std::uint64_t key) noexcept {
    return static_cast<graph::VertexId>(~static_cast<std::uint32_t>(key));
  }

  void push(std::uint64_t key) {
    keys_.push_back(key);
    std::push_heap(keys_.begin(), keys_.end());
  }

  std::vector<std::uint64_t> keys_;
};

}  // namespace eim::eim_impl
