// Configuration and result types for the eIM backend.
#pragma once

#include <cstdint>
#include <string>

#include "eim/imm/params.hpp"
#include "eim/support/retry.hpp"

namespace eim::support::metrics {
class MetricsRegistry;
}  // namespace eim::support::metrics

namespace eim::support::trace {
class TraceRecorder;
}  // namespace eim::support::trace

namespace eim::support::profiler {
class WallProfile;
}  // namespace eim::support::profiler

namespace eim::eim_impl {

struct CheckpointState;

/// Which kernel shape scans the RRR sets during seed selection (§3.5).
enum class ScanStrategy {
  /// One thread per RRR set — eIM's choice; scales with T_n.
  ThreadPerSet,
  /// One warp per RRR set — the baseline design; coalesced but only W_n-way
  /// parallel. Kept for the Fig. 3 ablation.
  WarpPerSet,
};

/// How the LT kernel identifies the activating in-neighbor (§3.3).
enum class LtActivationMethod {
  /// Warp prefix sum via __shfl_up_sync: O(log d) steps. eIM's choice.
  PrefixScan,
  /// Shared-sum atomicAdd per lane: O(d) serialized steps. Ablation only.
  AtomicAdd,
};

/// How the sampler spends randomness per edge examined (docs/PERFORMANCE.md
/// "Draw efficiency").
enum class DrawMode {
  /// One Bernoulli draw per scanned IC in-edge, one prefix scan per LT step
  /// — the serial reference's draw order. Modeled output is bit-identical
  /// across every configuration and gated by `bench_diff --threshold 0`.
  Exact,
  /// Fast-draw mode: IC geometric skip-ahead over uniform-weight vertices
  /// (one uniform per failure run) and O(1) LT alias-table picks, using the
  /// graph's DrawPlan sidecar. Consumes the RNG stream differently from
  /// Exact, so it is gated by `bench_quality` spread equivalence instead of
  /// bit parity. Still deterministic for a fixed seed: the same seeds come
  /// out regardless of device count, spill pressure, or resume point.
  Skip,
};

/// What the pipeline does when the device runs out of memory while growing
/// the RRR collection (docs/RESILIENCE.md).
enum class OomPolicy {
  /// Propagate DeviceOutOfMemoryError — the paper's "OOM" cell behavior.
  Throw,
  /// Stop theta refinement at the last state that fit, keep every committed
  /// set, and return best-effort seeds with EimResult::degraded set.
  Degrade,
};

/// Where memory pressure goes when the RRR collection outgrows the device
/// (docs/RESILIENCE.md "Memory-pressure tiers"). Spilling preserves the θ
/// target — and therefore the exact seeds — by trading modeled time for
/// device memory; OomPolicy only ever fires after the spill tiers are
/// exhausted too.
enum class SpillPolicy {
  /// No spill hierarchy: OomPolicy alone decides (the pre-spill behavior).
  Off,
  /// Evict cold sets device -> compressed host -> disk; OOM propagates only
  /// when even that fails (policy-wise equivalent to OomPolicy::Throw at
  /// the bottom of the hierarchy).
  Spill,
  /// As Spill, but when the hierarchy itself cannot make progress (a single
  /// set larger than the whole device budget), degrade like
  /// OomPolicy::Degrade instead of throwing.
  SpillThenDegrade,
};

struct SpillOptions {
  SpillPolicy policy = SpillPolicy::Off;
  /// Device-byte cap on the packed R element array (per-set offset/length
  /// metadata stays device-resident — it indexes the spilled sets too);
  /// 0 = no cap, spill only on genuine allocation failure.
  std::uint64_t device_budget_bytes = 0;
  /// Compressed host-tier cap; past it blocks LRU-evict to disk (0 = none).
  std::uint64_t host_budget_bytes = 0;
  /// Disk-tier directory (empty = per-run temp dir, removed afterwards).
  std::string dir;
  /// Sets per compressed block and decoded blocks kept hot in staging.
  std::uint32_t sets_per_block = 1024;
  std::uint32_t staging_blocks = 4;
};

struct EimOptions {
  /// §3.1: log-encode the network CSC and the RRR array R.
  bool log_encode = true;
  /// §3.4: drop source vertices, regenerate source-only samples.
  bool eliminate_sources = true;
  ScanStrategy scan = ScanStrategy::ThreadPerSet;
  LtActivationMethod lt_activation = LtActivationMethod::PrefixScan;
  /// Opt-in fast-draw sampling (geometric skip-ahead + alias tables).
  /// Recorded in checkpoint identity: a resume cannot silently switch modes.
  DrawMode draw_mode = DrawMode::Exact;
  /// Sampler blocks to launch (0 = 4 per SM, the self-scheduling default).
  std::uint32_t sampler_blocks = 0;
  /// Optional run-wide instrumentation sink (not owned; must outlive the
  /// run). When set, the pipeline records phase timers and commit/regrow/
  /// decode counters into it — see docs/OBSERVABILITY.md.
  support::metrics::MetricsRegistry* metrics = nullptr;
  /// Optional span recorder (not owned; must outlive the run). When set,
  /// the pipeline records the phase -> round -> wave hierarchy plus fault/
  /// degrade instants against each device's modeled clock, exportable as a
  /// Chrome trace-event file — see docs/OBSERVABILITY.md. Null skips every
  /// site, like `metrics`.
  support::trace::TraceRecorder* trace = nullptr;
  /// Optional host wall-clock attribution sink (not owned; must outlive the
  /// run). When set, the pipeline wraps the real hot scopes — sampler
  /// waves, RNG refills, bulk codec decode/encode, commit publish, selector
  /// preprocessing, lazy-greedy picks, pool dispatch — in wall-only scoped
  /// timers; the aggregate lands in the "wall" section of the
  /// eim.metrics.v3 report. Null (the default) skips every site without
  /// even a clock read. Wall timers never touch the modeled clock, so
  /// modeled output stays bit-identical — see docs/OBSERVABILITY.md.
  support::profiler::WallProfile* profile = nullptr;
  /// Behavior when device memory runs out mid-collection-growth.
  OomPolicy oom_policy = OomPolicy::Throw;
  /// Tiered spill hierarchy riding below OomPolicy (device -> compressed
  /// host -> disk); modeled seeds stay bit-identical to an unconstrained
  /// run whenever the hierarchy absorbs the pressure.
  SpillOptions spill;
  /// Bounded retry for transient device faults around sampler launches and
  /// transfers; backoff is deterministic modeled time on the device.
  support::RetryPolicy retry;
  /// Directory for round-boundary snapshots (empty = no checkpointing).
  /// Created on first write; each snapshot is published atomically, so a
  /// crash mid-write leaves the previous snapshot — or none — never a torn
  /// file. See eim/checkpoint.hpp and docs/RESILIENCE.md.
  std::string checkpoint_dir;
  /// Restored state to continue from (not owned; must outlive the run;
  /// null = fresh run). Obtained from load_checkpoint() and validated
  /// against this run's graph/model/params — the resumed run's seeds and
  /// spread estimate are bit-identical to an uninterrupted same-seed run.
  const CheckpointState* resume = nullptr;
};

/// ImmResult plus the device-side metrics the paper's figures report.
struct EimResult : imm::ImmResult {
  /// Modeled device seconds (kernel + transfer + allocation).
  double device_seconds = 0.0;
  double kernel_seconds = 0.0;
  double transfer_seconds = 0.0;
  /// Peak simulated device memory.
  std::uint64_t peak_device_bytes = 0;
  /// Bytes of R + O + C as stored (packed if log_encode).
  std::uint64_t rrr_bytes = 0;
  /// Bytes the same R + O + C would occupy uncompressed.
  std::uint64_t rrr_raw_bytes = 0;
  /// Bytes of the network CSC as stored on device.
  std::uint64_t network_bytes = 0;
  std::uint64_t network_raw_bytes = 0;
  /// In-kernel dynamic allocations (always 0 for eIM; nonzero for gIM).
  std::uint64_t device_mallocs = 0;
  /// OomPolicy::Degrade fired: theta refinement stopped early and the seeds
  /// are best-effort over the sets that fit. Fault-free runs stay false.
  bool degraded = false;
  /// Bytes the collection growth was short by when degradation triggered
  /// (requested - available at the OOM).
  std::uint64_t degrade_shortfall_bytes = 0;
  /// Sets evicted into the tiered spill store (0 when SpillPolicy::Off or
  /// the device never came under pressure).
  std::uint64_t spilled_sets = 0;
  /// Compressed footprint of the spilled sets across host + disk tiers.
  std::uint64_t spill_bytes_compressed = 0;
};

}  // namespace eim::eim_impl
