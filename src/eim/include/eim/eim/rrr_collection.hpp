// Device-resident RRR-set collection for eIM.
//
// Mirrors the paper's layout: a single flat array R holding every set's
// vertices (log-encoded when enabled), the offset array O, and the
// frequency counts C updated atomically as sets are committed (Alg. 2,
// lines 21-28). Warps claim a slice of R with a CAS on the shared element
// cursor — a claim either fits entirely or is never made, so the cursor is
// monotone and never exceeds capacity — and publish their vertices
// independently; the thread-safe packed store of §3.1 makes that safe under
// log encoding. (The earlier fetch_add/fetch_sub "rollback" protocol let a
// failed claim transiently push the cursor past capacity and then rewind it
// below a concurrent success's slice, so a later commit could overlay — and
// under log encoding OR-corrupt — a committed set. See
// docs/OBSERVABILITY.md for the invariants and tests/stress for the
// regression hammer.)
//
// Capacity grows only *between* kernel waves (the sampler driver reserves
// ahead); a warp that cannot fit its set reports failure and the driver
// re-issues that sample in the next wave, which is how a fixed-capacity
// GPU array is managed without in-kernel malloc.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "eim/encoding/bit_packed_array.hpp"
#include "eim/gpusim/device.hpp"
#include "eim/graph/types.hpp"

namespace eim::support::metrics {
class Counter;
class Histogram;
class MetricsRegistry;
}  // namespace eim::support::metrics

namespace eim::support::profiler {
class WallProfile;
class WallTimer;
}  // namespace eim::support::profiler

namespace eim::eim_impl {

class TieredRrrStore;

class DeviceRrrCollection {
 public:
  DeviceRrrCollection(gpusim::Device& device, graph::VertexId num_vertices,
                      bool log_encode);
  ~DeviceRrrCollection();

  DeviceRrrCollection(const DeviceRrrCollection&) = delete;
  DeviceRrrCollection& operator=(const DeviceRrrCollection&) = delete;

  /// Make room for `num_sets` sets totalling up to `num_elements` vertices.
  /// Existing contents are preserved; device memory is re-charged (alloc
  /// new + copy + free old, exactly what a cudaMalloc/cudaMemcpy resize
  /// costs).
  void reserve(std::uint64_t num_sets, std::uint64_t num_elements);

  /// Thread-safe commit path used from sampler blocks. Claims a slice of R
  /// for set `set_index` with a CAS-retry loop — the claim succeeds only if
  /// the whole set fits, so the element cursor never overshoots capacity
  /// and never moves backwards. Returns false when capacity is insufficient
  /// (the caller re-issues the sample after the driver grows the arrays).
  /// `sorted_set` must be ascending. Updates O, C, and the element cursor.
  [[nodiscard]] bool try_commit(std::uint64_t set_index,
                                std::span<const graph::VertexId> sorted_set);

  [[nodiscard]] graph::VertexId num_vertices() const noexcept { return n_; }
  /// Number of committed sets = high-water set index + 1 (driver-managed).
  [[nodiscard]] std::uint64_t num_sets() const noexcept { return num_sets_; }
  void set_num_sets(std::uint64_t sets) noexcept { num_sets_ = sets; }

  [[nodiscard]] std::uint64_t total_elements() const noexcept {
    return element_cursor_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint32_t set_length(std::uint64_t i) const noexcept {
    return lengths_[i];
  }
  /// Decode member j of set i. Device-resident sets only — a spilled set
  /// must stream through decode_set (the store has no per-element access).
  [[nodiscard]] graph::VertexId element(std::uint64_t i, std::uint32_t j) const noexcept {
    const std::uint64_t pos = starts_[i] + j - device_base_;
    return log_encode_ ? static_cast<graph::VertexId>(packed_.get(pos)) : raw_[pos];
  }

  /// Bulk-decode all of set i into `out` (must hold set_length(i) values).
  /// Uses the word-streaming decoder under log encoding instead of one
  /// container walk per element — the hot path for selection, checkpoint
  /// export, and shard redistribution. A spilled set streams back up
  /// through the attached store's staging pool instead (and may then throw
  /// IoError if its disk tier fails past the retry budget).
  void decode_set(std::uint64_t i, std::span<graph::VertexId> out) const;

  [[nodiscard]] std::span<const std::uint32_t> counts() const noexcept { return counts_; }

  /// Device bytes of R + O + C as stored.
  [[nodiscard]] std::uint64_t stored_bytes() const noexcept;
  /// Device bytes of the same data uncompressed (u32 R, u64 O, u32 C).
  [[nodiscard]] std::uint64_t raw_equivalent_bytes() const noexcept;

  [[nodiscard]] bool log_encoded() const noexcept { return log_encode_; }

  /// Wire commit/regrow counters into `registry` (nullptr detaches). The
  /// registry must outlive the collection or the next attach call.
  void attach_metrics(support::metrics::MetricsRegistry* registry);

  /// Wire the commit-publish wall timer into `profile` (nullptr detaches).
  /// Only publishes of at least kTimedPublishLen elements are timed — a
  /// short set's publish is cheaper than the two clock reads it would cost,
  /// and the sampling profiler attributes that tail statistically.
  void attach_profile(support::profiler::WallProfile* profile);
  static constexpr std::size_t kTimedPublishLen = 64;

  /// Attach the tiered spill hierarchy (docs/RESILIENCE.md "Memory-pressure
  /// tiers"). `device_budget_bytes` caps the packed R element array (the
  /// per-set offset/length metadata stays device-resident — it indexes the
  /// spilled sets too); when a reservation would exceed it — or a genuine device
  /// allocation fails — every committed set is evicted into `store` and the
  /// device array restarts empty at the current cursor, so θ refinement
  /// continues instead of degrading. 0 = no budget (spill only on real
  /// OOM). Must be attached before any set is committed; `store` must
  /// outlive all decode/commit traffic.
  void attach_spill(TieredRrrStore* store, std::uint64_t device_budget_bytes);

  [[nodiscard]] bool spill_active() const noexcept { return spill_ != nullptr; }
  /// True once any set has been evicted (selector preprocessing switches to
  /// the serial streaming path to keep staging-pool traffic deterministic).
  [[nodiscard]] bool has_spilled() const noexcept { return spilled_any_; }
  [[nodiscard]] bool is_spilled(std::uint64_t i) const noexcept {
    return spilled_any_ && spilled_[i] != 0;
  }
  [[nodiscard]] std::uint64_t element_capacity() const noexcept {
    return element_capacity_;
  }

  /// Evict every committed, not-yet-spilled set downward and restart the
  /// device array empty at the current cursor. Serial contexts only (the
  /// sampler's between-wave reserve, tests).
  void spill_committed();

 private:
  void charge_device(std::uint64_t bytes);
  void refund_device(std::uint64_t bytes) noexcept;
  void grow_r(std::uint64_t num_elements);
  void allocate_r(std::uint64_t num_elements);
  [[nodiscard]] std::uint64_t current_r_bytes() const noexcept;
  [[nodiscard]] std::uint64_t elements_for_bytes(std::uint64_t bytes) const noexcept;
  [[nodiscard]] std::uint64_t budget_device_elements() const noexcept;

  gpusim::Device* device_;
  graph::VertexId n_;
  bool log_encode_;
  std::uint32_t bits_per_vertex_;

  // R: exactly one of these is active.
  encoding::BitPackedArray packed_;
  std::vector<graph::VertexId> raw_;
  std::uint64_t element_capacity_ = 0;

  // O, split into start+length so out-of-order commits need no ordering.
  std::vector<std::uint64_t> starts_;
  std::vector<std::uint32_t> lengths_;

  std::vector<std::uint32_t> counts_;  ///< C, updated with atomic_ref

  std::atomic<std::uint64_t> element_cursor_{0};
  std::uint64_t num_sets_ = 0;
  std::uint64_t charged_bytes_ = 0;  ///< what we currently hold in the pool

  // Spill hierarchy (null/0 when detached). The device arrays hold the
  // global element range [device_base_, element_capacity_); sets below
  // device_base_ live in the tiered store.
  TieredRrrStore* spill_ = nullptr;
  std::uint64_t device_budget_bytes_ = 0;
  std::uint64_t device_base_ = 0;
  bool spilled_any_ = false;
  std::vector<std::uint8_t> spilled_;    ///< per O slot: evicted to the store
  std::vector<std::uint8_t> committed_;  ///< per O slot: published (spill only)

  // Optional instrumentation (see attach_metrics); null when detached.
  support::metrics::Counter* commit_rejects_ = nullptr;
  support::metrics::Counter* claim_cas_retries_ = nullptr;
  support::metrics::Counter* regrow_r_ = nullptr;
  support::metrics::Counter* regrow_o_ = nullptr;
  support::metrics::Histogram* set_size_hist_ = nullptr;
  support::profiler::WallTimer* commit_publish_ = nullptr;
};

}  // namespace eim::eim_impl
