// Seed selection on the simulated device (paper §3.5, Algorithm 3).
//
// The greedy answer itself is computed exactly (host-side inverted index —
// bit-identical to the serial reference); what the simulator adds is the
// *device cost* of each pick:
//
//  * an arg-max reduction over C (one kernel per pick), and
//  * the count-update kernel: every launched unit reads F for its sets,
//    binary-searches the picked vertex in the uncovered ones, and on a hit
//    covers the set and decrements C for its members.
//
// The update kernel's makespan is derived from running aggregates
// (uncovered-set count, their summed search cost, decrement traffic) packed
// onto the strategy's parallelism: T_n threads (ThreadPerSet) or W_n warps
// (WarpPerSet). This yields exactly the paper's ceil(N/W_n)*C_w vs
// ceil(N/T_n)*C_t comparison, with C_w < C_t because warp scans coalesce.
#pragma once

#include <cstdint>
#include <vector>

#include "eim/eim/options.hpp"
#include "eim/eim/rrr_collection.hpp"
#include "eim/gpusim/device.hpp"
#include "eim/imm/seed_selection.hpp"

namespace eim::eim_impl {

/// How the host computes each pick's arg-max. Both produce bit-identical
/// seed sequences (same tie-break: smallest vertex id among maximal
/// counts); LinearReference exists so tests can property-check the heap
/// against the obviously-correct O(n)-per-pick scan.
enum class ArgMaxMode : std::uint8_t {
  kLazyHeap,         ///< CELF-style lazy max-heap (default, O(log n) amortized)
  kLinearReference,  ///< full scan per pick — test-only reference
};

class GpuSeedSelector {
 public:
  GpuSeedSelector(gpusim::Device& device, ScanStrategy strategy)
      : device_(&device), strategy_(strategy) {}

  /// Test hook: switch the host arg-max implementation. Modeled device
  /// charges are identical either way.
  void set_argmax_mode(ArgMaxMode mode) noexcept { argmax_mode_ = mode; }
  [[nodiscard]] ArgMaxMode argmax_mode() const noexcept { return argmax_mode_; }

  /// Run the full k-pick greedy over the collection's current contents,
  /// charging modeled kernel time per pick. Safe to call repeatedly as the
  /// collection grows (each call re-reads it).
  [[nodiscard]] imm::SelectionResult select(const DeviceRrrCollection& collection,
                                            std::uint32_t k);

  [[nodiscard]] ScanStrategy strategy() const noexcept { return strategy_; }

  /// Wire per-pick kernel/decode counters into `registry` (nullptr
  /// detaches). The registry must outlive the selector or the next attach.
  void attach_metrics(support::metrics::MetricsRegistry* registry) noexcept {
    metrics_ = registry;
  }

  /// Wire host wall-clock attribution (codec.decode, selector.preprocess,
  /// selector.pick) into `profile` (nullptr detaches). The profile must
  /// outlive the selector or the next attach.
  void attach_profile(support::profiler::WallProfile* profile) noexcept {
    profile_ = profile;
  }

 private:
  gpusim::Device* device_;
  ScanStrategy strategy_;
  ArgMaxMode argmax_mode_ = ArgMaxMode::kLazyHeap;
  support::metrics::MetricsRegistry* metrics_ = nullptr;
  support::profiler::WallProfile* profile_ = nullptr;
};

}  // namespace eim::eim_impl
