// Multi-node eIM over the modeled cluster tier (gpusim/cluster.hpp) — the
// DiFuseR-shaped step past single-host multi-GPU (ROADMAP item 4).
//
// Design: the same index-keyed determinism contract as multi_gpu.hpp, one
// level up. Global sample id i is striped across the alive nodes
// (node = alive[i % N'], then round-robin over that node's devices), so the
// union of shards is bit-identical to a single-device run for ANY node
// count, alive set, or failure history. After each sampling phase the
// per-vertex count vectors are combined with a modeled allreduce on the
// cluster network; each selection pick exchanges the chosen vertex and the
// coverage delta with one small allreduce.
//
// Resilience (docs/RESILIENCE.md, "Cluster failover"):
//  * every collective is wrapped in support::retry — transient link faults
//    back off exponentially on the cluster's modeled clock and re-attempt;
//  * retry exhaustion escalates the faulting node to dead (timeout =>
//    node-dead), exactly like a scripted NodeLostError;
//  * a dead node's residual sample range is resharded across survivors
//    (id % N' restriping) and regenerated from the same index-keyed
//    streams, so final seeds stay bit-identical to the fault-free run;
//  * a device-tier loss inside a node retires the whole node (a host whose
//    GPU died is drained rather than limped);
//  * if the alive set falls below MultiNodeOptions::quorum, the run either
//    raises ClusterQuorumError (exit code 6) or — with node_degrade — keeps
//    the committed prefix, stops extending theta, and publishes best-effort
//    seeds with `degraded` + the sample shortfall, mirroring OomPolicy.
#pragma once

#include <cstdint>
#include <vector>

#include "eim/eim/options.hpp"
#include "eim/gpusim/cluster.hpp"
#include "eim/graph/graph.hpp"
#include "eim/graph/weights.hpp"
#include "eim/imm/params.hpp"
#include "eim/support/retry.hpp"

namespace eim::eim_impl {

struct MultiNodeOptions {
  /// Minimum alive nodes for the run to stay authoritative. Falling below
  /// raises ClusterQuorumError unless `node_degrade` is set.
  std::uint32_t quorum = 1;
  /// Below-quorum policy: true = best-effort seeds with `degraded` + sample
  /// shortfall (the cluster analogue of OomPolicy::Degrade); false = throw.
  bool node_degrade = false;
  /// Bounded retry for transient link faults around collectives; backoff is
  /// deterministic modeled time on the cluster network timeline.
  support::RetryPolicy collective_retry;
};

struct MultiNodeResult : EimResult {
  std::uint32_t num_nodes = 1;
  std::uint32_t devices_per_node = 1;
  /// Modeled seconds on the cluster network (collectives + resharding).
  double communication_seconds = 0.0;
  /// Nodes decommissioned by failover, in death order.
  std::vector<std::uint32_t> failed_nodes;
  /// Sample ids resharded off dead nodes onto survivors.
  std::uint64_t reshard_samples = 0;
  /// Collective attempts that were retried after a transient link fault.
  std::uint64_t collective_retries = 0;
  /// Samples the degraded run fell short of the fault-free theta target
  /// (0 unless quorum loss degraded the run).
  std::uint64_t degrade_shortfall_samples = 0;
};

/// Run eIM across every device of `cluster`. Seeds (and every other
/// algorithmic output) are identical to the single-device run with the same
/// parameters; only the modeled time changes — under faults too, as long as
/// the alive set never drops below quorum. Checkpoints written by any
/// topology (single-device, multi-GPU, any node count) resume here
/// bit-identically, and vice versa.
[[nodiscard]] MultiNodeResult run_eim_cluster(gpusim::Cluster& cluster,
                                              const graph::Graph& g,
                                              graph::DiffusionModel model,
                                              const imm::ImmParams& params,
                                              const EimOptions& options = {},
                                              const MultiNodeOptions& node_options = {});

}  // namespace eim::eim_impl
