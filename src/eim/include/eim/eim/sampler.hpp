// eIM's RRR-set sampling kernels (paper §3.2-§3.4, Algorithm 2).
//
// One warp per block; every block owns a fixed slice of a pre-allocated
// global-memory queue pool (eIM's replacement for gIM's shared-memory queue
// + dynamic spill), so sampling performs *zero* in-kernel allocations. The
// queue doubles as the RRR set: on completion it is sorted and committed
// into the collection with one atomic offset claim (Fig. 2).
//
// Work distribution follows the paper: blocks round-robin over sample
// indices through a shared atomic counter until theta sets exist.
//
// Determinism contract: sample i draws from the stream
// (rng_seed, derive_stream(imm::kSampleStreamTag, i, attempt)) and consumes
// randomness in CSC order — the exact contract of the serial reference — so
// eIM produces the *identical* collection R as run_imm_serial for identical
// parameters, which the integration tests assert.
#pragma once

#include <cstdint>
#include <vector>

#include "eim/eim/options.hpp"
#include "eim/eim/rrr_collection.hpp"
#include "eim/gpusim/device.hpp"
#include "eim/graph/graph.hpp"
#include "eim/graph/weights.hpp"
#include "eim/imm/params.hpp"
#include "eim/support/rng.hpp"

namespace eim::eim_impl {

/// Cap on capacity-growth waves before sample_assigned declares the sampler
/// non-convergent. Shared by the single-device and multi-GPU paths (both
/// funnel through EimSampler::sample_assigned), so the two tiers can never
/// drift apart on the limit. The split: an unconstrained run doubles its
/// reservation every wave, so 64 waves already cover any realistic growth
/// curve and a 65th means the estimator is broken; under an active spill
/// budget the device array intentionally stays small and refills every few
/// waves, so convergence legitimately takes thousands of waves (4096 bounds
/// a quarter-footprint run with room to spare).
[[nodiscard]] constexpr int max_sampler_waves(bool spill_active) noexcept {
  return spill_active ? 4096 : 64;
}

class EimSampler {
 public:
  EimSampler(gpusim::Device& device, const graph::Graph& g,
             graph::DiffusionModel model, const imm::ImmParams& params,
             const EimOptions& options);

  /// Extend `collection` so it holds `target` sets (no-op if it already
  /// does). Launches as many kernel waves as capacity growth requires.
  void sample_to(DeviceRrrCollection& collection, std::uint64_t target);

  /// Append one set per entry of `global_indices`: entry j lands in local
  /// slot collection.num_sets() + j but draws from the stream of global
  /// sample id global_indices[j]. This is the multi-GPU shard entry point:
  /// device d samples the global ids congruent to d, and the union over
  /// devices is bit-identical to a single-device run (see multi_gpu.hpp).
  void sample_assigned(DeviceRrrCollection& collection,
                       std::span<const std::uint64_t> global_indices);

  /// Regenerate the decoded members of global sample `global_id` into `out`
  /// (sorted, post source-elimination — exactly what try_commit stored).
  /// Generation is deterministic per global id, so this is the spill
  /// store's quarantine-repair source for torn disk blocks: the rebuilt set
  /// is bit-identical to the evicted one. Runs as its own single-block
  /// launch ("eim::resample") so the recovery cost lands on the modeled
  /// timeline; does not touch singleton or discard accounting.
  void resample_set(std::uint64_t global_id, std::vector<graph::VertexId>& out);

  /// Source-only samples regenerated so far (§3.4 accounting).
  [[nodiscard]] std::uint64_t singletons_discarded() const noexcept {
    return singletons_discarded_;
  }

  /// Checkpoint resume: reinstate the crashed run's singleton tally so the
  /// kept-fraction correction — and with it estimated_spread — replays
  /// bit-identically (eim/checkpoint.hpp).
  void restore_singletons(std::uint64_t count) noexcept {
    singletons_discarded_ = count;
  }

  [[nodiscard]] std::uint32_t num_blocks() const noexcept { return num_blocks_; }

 private:
  struct BlockScratch {
    std::vector<graph::VertexId> queue;   ///< this block's global-pool slice
    std::vector<std::uint32_t> stamp;     ///< M as an epoch-stamped array
    support::FloatDrawBuffer draws;       ///< bulk activation draws (IC BFS)
    std::uint32_t epoch = 0;
    std::vector<std::uint64_t> failed;    ///< commits deferred to next wave
    std::uint64_t max_failed_len = 0;     ///< largest set that failed to fit
    std::uint64_t discarded = 0;          ///< committed samples' regen count
    // Struct-of-arrays frontier for the fast-draw BFS: each queue entry's
    // CSC slice and weight class, cached at enqueue so the sweep streams
    // flat arrays instead of re-touching the offset table per vertex.
    std::vector<graph::EdgeId> frontier_begin;
    std::vector<std::uint32_t> frontier_len;
    std::vector<std::uint8_t> frontier_kind;
    std::uint64_t draws_skipped = 0;  ///< Bernoulli draws avoided (flushed per wave)
    std::uint64_t alias_picks = 0;    ///< O(1) LT picks taken (flushed per wave)
  };

  /// Generate the RRR set for `sample_index` into scratch.queue; returns
  /// the number of singleton regenerations performed for this sample.
  std::uint32_t generate(gpusim::BlockContext& ctx, BlockScratch& scratch,
                         std::uint64_t sample_index);

  void bfs_ic(gpusim::BlockContext& ctx, BlockScratch& scratch,
              graph::VertexId source, support::RandomStream& rng);
  void walk_lt(gpusim::BlockContext& ctx, BlockScratch& scratch,
               graph::VertexId source, support::RandomStream& rng);

  // Fast-draw variants (DrawMode::Skip, docs/PERFORMANCE.md "Draw
  // efficiency"): geometric skip-ahead over uniform-weight vertices and
  // O(1) alias-table picks, driven by the graph's DrawPlan sidecar. They
  // consume the per-sample RNG stream differently from the exact kernels —
  // still a pure function of (rng_seed, global id), so resume/spill/
  // multi-GPU determinism holds within the mode.
  void bfs_ic_skip(gpusim::BlockContext& ctx, BlockScratch& scratch,
                   graph::VertexId source, support::RandomStream& rng);
  void walk_lt_skip(gpusim::BlockContext& ctx, BlockScratch& scratch,
                    graph::VertexId source, support::RandomStream& rng);

  /// Meter the sort + commit traffic for a finished set of length `len`.
  void charge_commit(gpusim::BlockContext& ctx, std::uint32_t len) const;

  gpusim::Device* device_;
  const graph::Graph* graph_;
  graph::DiffusionModel model_;
  imm::ImmParams params_;
  EimOptions options_;
  std::uint32_t num_blocks_;

  /// Device charge for the queue pool + M arrays (held for the sampler's
  /// lifetime, like eIM's persistent global-memory pool).
  gpusim::DeviceBuffer<std::uint8_t> pool_charge_;

  /// Fast-draw sidecar, non-null only when DrawMode::Skip is on AND the
  /// graph carries a plan built for this model (assign_weights builds it;
  /// hand-assigned weights leave it null and the sampler silently runs the
  /// exact kernels). Host memory is shared across samplers/shards; each
  /// modeled device charges its own resident copy.
  const graph::DrawPlan* plan_ = nullptr;
  gpusim::DeviceBuffer<std::uint8_t> plan_charge_;

  std::vector<BlockScratch> scratch_;
  std::uint64_t singletons_discarded_ = 0;
};

}  // namespace eim::eim_impl
