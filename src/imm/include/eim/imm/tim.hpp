// TIM — Two-phase Influence Maximization (Tang, Xiao, Shi — SIGMOD'14).
//
// The predecessor the paper's §1 credits with making RIS practical: instead
// of IMM's martingale lower bound, TIM estimates KPT* (the expected spread
// of a random size-k seed set) with a doubling search over sample batches
// and sizes theta = lambda / KPT*. IMM's bound is tighter, so
// theta_TIM >= theta_IMM on the same instance — a property the tests
// assert, and the reason IMM superseded it.
//
// Included as a reference backend: same sampling streams, same greedy
// selection, so quality matches IMM while the sample budget shows the
// historical gap.
#pragma once

#include "eim/graph/graph.hpp"
#include "eim/graph/weights.hpp"
#include "eim/imm/params.hpp"

namespace eim::imm {

struct TimResult : ImmResult {
  /// The KPT* estimate the sample size was derived from.
  double kpt = 1.0;
  /// Samples spent during KPT estimation (phase 1).
  std::uint64_t estimation_samples = 0;
};

/// Run TIM end to end (KPT estimation + sampling + greedy selection).
[[nodiscard]] TimResult run_tim(const graph::Graph& g, graph::DiffusionModel model,
                                const ImmParams& params);

/// TIM's sample-size constant: lambda = (8 + 2 eps) n (ell ln n +
/// ln C(n,k) + ln 2) / eps^2; theta = lambda / KPT*.
[[nodiscard]] double tim_lambda(std::uint32_t num_vertices, const ImmParams& params);

}  // namespace eim::imm
