// Shared parameter and result types for every IMM implementation in the
// repository (serial reference, eIM, gIM-like, cuRipples-like).
#pragma once

#include <cstdint>
#include <vector>

#include "eim/graph/types.hpp"

namespace eim::imm {

struct ImmParams {
  /// Seed-set size (the paper sweeps 20..100; default 50 per §4.1).
  std::uint32_t k = 50;
  /// Approximation parameter (the paper sweeps 0.5..0.05; default 0.05).
  double epsilon = 0.05;
  /// Confidence parameter: the guarantee holds with probability
  /// 1 - 1/n^ell. Tang et al.'s default of 1 is used throughout the paper.
  double ell = 1.0;
  /// Master RNG seed; every run with the same (graph, params) reproduces.
  std::uint64_t rng_seed = 42;
  /// §3.4: drop the source vertex from every RRR set and regenerate the
  /// samples that become empty. On for eIM, off for the baselines.
  bool eliminate_sources = false;
};

struct ImmResult {
  std::vector<graph::VertexId> seeds;
  /// Final number of RRR sets generated (theta).
  std::uint64_t num_sets = 0;
  /// Total vertices stored across all RRR sets (the size of R that Fig. 6
  /// tracks).
  std::uint64_t total_elements = 0;
  /// Lower bound on OPT found by the estimation phase.
  double lower_bound = 0.0;
  /// Coverage-based spread estimate n * F_R(S) for the returned seeds.
  double estimated_spread = 0.0;
  /// Estimation-phase iterations before the LB test passed.
  std::uint32_t estimation_rounds = 0;
  /// Samples discarded as source-only singletons (§3.4 accounting).
  std::uint64_t singletons_discarded = 0;
};

}  // namespace eim::imm
