// Greedy max-coverage seed selection over an RRR-set collection (§3.5).
//
// The CPU reference implementation of the procedure every backend shares:
// repeatedly take the vertex with the highest count C[v], mark the sets it
// covers in F, and decrement C for their other members (the paper's
// Algorithm 3 does the decrement pass with one GPU thread per set; here it
// is a plain loop).
#pragma once

#include <cstdint>
#include <vector>

#include "eim/imm/rrr_store.hpp"

namespace eim::imm {

struct SelectionResult {
  std::vector<graph::VertexId> seeds;
  /// Number of RRR sets covered by the seed set.
  std::uint64_t covered_sets = 0;
  /// F_R(S): covered fraction of all sets.
  double coverage_fraction = 0.0;
};

/// Pick `k` seeds greedily. Ties break toward the smaller vertex id, making
/// the result deterministic given the store contents. If fewer than `k`
/// vertices have positive marginal coverage, the remainder is filled with
/// the lowest-id unused vertices (matching how IMM degenerates when theta is
/// tiny).
[[nodiscard]] SelectionResult select_seeds_greedy(const RrrStore& store, std::uint32_t k);

}  // namespace eim::imm
