// Backend-agnostic IMM control flow.
//
// Every implementation in the repository — serial, eIM, gIM-like,
// cuRipples-like — runs the identical two-phase martingale framework
// (Algorithm 1) and differs only in *how* it samples and selects. This
// helper owns the framework so the backends cannot drift: callers provide
//   sample_to(target)  -> extend the collection to `target` sets
//   select()           -> greedy k-cover over the current collection
// and receive theta, LB, and the final selection.
#pragma once

#include <functional>

#include "eim/imm/seed_selection.hpp"
#include "eim/imm/theta.hpp"

namespace eim::imm {

struct FrameworkOutcome {
  SelectionResult final_selection;
  double lower_bound = 1.0;
  std::uint64_t theta = 0;
  std::uint32_t estimation_rounds = 0;
};

inline FrameworkOutcome run_imm_framework(
    std::uint32_t num_vertices, const ImmParams& params,
    const std::function<void(std::uint64_t target)>& sample_to,
    const std::function<SelectionResult()>& select) {
  const ThetaSchedule schedule(num_vertices, params);
  FrameworkOutcome out;

  double lb = 1.0;
  for (std::uint32_t round = 1; round <= schedule.max_rounds(); ++round) {
    ++out.estimation_rounds;
    sample_to(schedule.round_theta(round));
    const SelectionResult sel = select();
    if (schedule.passes(round, sel.coverage_fraction)) {
      lb = schedule.lower_bound(sel.coverage_fraction);
      break;
    }
    if (round == schedule.max_rounds()) {
      // Degenerate fallback (tiny graphs): best supportable bound.
      lb = std::max(1.0, schedule.lower_bound(sel.coverage_fraction));
    }
  }

  out.lower_bound = lb;
  out.theta = schedule.final_theta(lb);
  sample_to(out.theta);
  out.final_selection = select();
  return out;
}

}  // namespace eim::imm
