// Backend-agnostic IMM control flow.
//
// Every implementation in the repository — serial, eIM, gIM-like,
// cuRipples-like — runs the identical two-phase martingale framework
// (Algorithm 1) and differs only in *how* it samples and selects. This
// helper owns the framework so the backends cannot drift: callers provide
//   sample_to(target)  -> extend the collection to `target` sets
//   select()           -> greedy k-cover over the current collection
// and receive theta, LB, and the final selection.
#pragma once

#include <functional>

#include "eim/imm/seed_selection.hpp"
#include "eim/imm/theta.hpp"

namespace eim::imm {

struct FrameworkOutcome {
  SelectionResult final_selection;
  double lower_bound = 1.0;
  std::uint64_t theta = 0;
  std::uint32_t estimation_rounds = 0;
};

/// The framework's position between round boundaries — everything needed to
/// re-enter run_imm_framework where a previous run stopped. Snapshotted by
/// the checkpoint layer (eim/checkpoint.hpp); because theta targets are
/// derived, not stored, a resumed framework recomputes the identical
/// schedule and continues bit-identically.
struct FrameworkRoundState {
  std::uint32_t next_round = 1;         ///< next estimation round (1-based)
  std::uint32_t estimation_rounds = 0;  ///< rounds completed so far
  double lower_bound = 1.0;             ///< LB found so far (1.0 = none yet)
  bool estimation_done = false;         ///< LB settled; only final sampling left
};

inline FrameworkOutcome run_imm_framework(
    std::uint32_t num_vertices, const ImmParams& params,
    const std::function<void(std::uint64_t target)>& sample_to,
    const std::function<SelectionResult()>& select,
    const FrameworkRoundState* resume = nullptr,
    const std::function<void(const FrameworkRoundState&)>& on_round = {}) {
  const ThetaSchedule schedule(num_vertices, params);
  FrameworkOutcome out;

  FrameworkRoundState state;
  if (resume != nullptr) state = *resume;
  out.estimation_rounds = state.estimation_rounds;
  double lb = state.lower_bound;

  if (!state.estimation_done) {
    for (std::uint32_t round = state.next_round; round <= schedule.max_rounds();
         ++round) {
      ++out.estimation_rounds;
      sample_to(schedule.round_theta(round));
      const SelectionResult sel = select();
      if (schedule.passes(round, sel.coverage_fraction)) {
        lb = schedule.lower_bound(sel.coverage_fraction);
        state.estimation_done = true;
      } else if (round == schedule.max_rounds()) {
        // Degenerate fallback (tiny graphs): best supportable bound.
        lb = std::max(1.0, schedule.lower_bound(sel.coverage_fraction));
        state.estimation_done = true;
      }
      state.next_round = round + 1;
      state.estimation_rounds = out.estimation_rounds;
      state.lower_bound = lb;
      if (on_round) on_round(state);
      if (state.estimation_done) break;
    }
    // max_rounds() can be 0 on trivial graphs; the final phase below still
    // runs, it just starts from lb = 1.0.
    state.estimation_done = true;
  }

  out.lower_bound = lb;
  out.theta = schedule.final_theta(lb);
  sample_to(out.theta);
  // One more boundary after the (often dominant) final sampling phase, so a
  // crash during final selection resumes with the whole collection on disk.
  if (on_round) on_round(state);
  out.final_selection = select();
  return out;
}

}  // namespace eim::imm
