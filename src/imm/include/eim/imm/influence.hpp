// Sketch-based influence estimation for arbitrary seed sets.
//
// The RIS identity E[I(S)] = n * P(S intersects RRR(random source)) gives a
// cheap estimator for any S: draw samples, count hits. Orders of magnitude
// faster than forward Monte-Carlo for small spreads and the natural
// companion API to the maximizers — "how good is *this* set?" — with a
// standard-error report so callers can size the sample budget.
#pragma once

#include <cstdint>
#include <span>

#include "eim/graph/graph.hpp"
#include "eim/graph/weights.hpp"

namespace eim::imm {

struct InfluenceEstimate {
  /// Point estimate of E[I(S)].
  double spread = 0.0;
  /// Standard error of the estimate (binomial, scaled by n).
  double standard_error = 0.0;
  std::uint64_t samples = 0;
  std::uint64_t hits = 0;
};

/// Estimate E[I(S)] with `samples` RRR draws. Deterministic in `seed`.
[[nodiscard]] InfluenceEstimate estimate_influence_ris(
    const graph::Graph& g, graph::DiffusionModel model,
    std::span<const graph::VertexId> seeds, std::uint64_t samples,
    std::uint64_t seed = 42);

}  // namespace eim::imm
