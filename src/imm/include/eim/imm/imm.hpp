// Serial reference implementation of IMM (the paper's Algorithm 1).
//
// This is the correctness baseline: single-threaded, uncompressed storage,
// textbook control flow. The GPU-simulated implementations (eIM and the
// baselines) are expected to produce seed sets of matching quality — and,
// because all samplers derive their randomness from the sample index, to
// produce the *identical* collection R for identical parameters, which the
// integration tests exploit.
#pragma once

#include "eim/graph/graph.hpp"
#include "eim/graph/weights.hpp"
#include "eim/imm/params.hpp"
#include "eim/imm/rrr_store.hpp"

namespace eim::support::profiler {
class WallProfile;
}  // namespace eim::support::profiler

namespace eim::imm {

/// Stream tag shared by every RRR sampler in the repository: sample i of a
/// run draws from RandomStream(rng_seed, derive_stream(kSampleStreamTag, i,
/// attempt)). Keeping this in one place is what makes the serial and
/// simulated backends bit-identical.
inline constexpr std::uint64_t kSampleStreamTag = 0x52525253u;  // "RRRS"

/// Regeneration cap under source elimination: after this many source-only
/// draws for one slot, the empty set is accepted (prevents livelock on
/// edge-free graphs).
inline constexpr std::uint32_t kMaxRegenerationAttempts = 64;

/// Run IMM end to end: estimate theta, sample, select seeds. An optional
/// wall profile (not owned, may be null) attributes host time to the
/// sampling batches and RNG refills — wall-only, so results are unchanged.
[[nodiscard]] ImmResult run_imm_serial(const graph::Graph& g,
                                       graph::DiffusionModel model,
                                       const ImmParams& params,
                                       support::profiler::WallProfile* profile = nullptr);

/// Sampling phase only: extend `store` to `target` sets (used by tests and
/// by the estimation loop). Returns the number of singleton samples
/// discarded by source elimination. The optional profile records one
/// "sampler.batch" wall entry for the whole extension (per batch, not per
/// sample — a per-sample clock pair would dwarf small cascades).
[[nodiscard]] std::uint64_t sample_to_target(
    const graph::Graph& g, graph::DiffusionModel model, const ImmParams& params,
    RrrStore& store, std::uint64_t target,
    support::profiler::WallProfile* profile = nullptr);

}  // namespace eim::imm
