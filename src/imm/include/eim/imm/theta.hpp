// The martingale sample-size machinery of IMM (Tang et al., SIGMOD'15),
// summarized in the paper's §2.2.
//
// IMM's estimation phase probes guesses x = n/2^i for OPT: for each guess it
// needs theta_i = lambda' / x samples; if the greedy k-set covers at least
// (1+eps')x/n of them, LB = n*F/(1+eps') is a valid lower bound on OPT and
// the final sample count is theta = lambda* / LB. All constants below follow
// the published formulas, including the ell' = ell*(1 + ln2/ln n) bump that
// accounts for the union bound across phases.
#pragma once

#include <cstdint>

#include "eim/imm/params.hpp"

namespace eim::imm {

/// ln C(n, k) via lgamma — exact enough for n in the billions.
[[nodiscard]] double log_binomial(std::uint64_t n, std::uint64_t k);

class ThetaSchedule {
 public:
  ThetaSchedule(std::uint32_t num_vertices, const ImmParams& params);

  /// eps' = sqrt(2) * eps, the estimation-phase slack.
  [[nodiscard]] double epsilon_prime() const noexcept { return epsilon_prime_; }
  [[nodiscard]] double lambda_prime() const noexcept { return lambda_prime_; }
  [[nodiscard]] double lambda_star() const noexcept { return lambda_star_; }

  /// Number of estimation iterations: i = 1 .. ceil(log2 n) - 1.
  [[nodiscard]] std::uint32_t max_rounds() const noexcept { return max_rounds_; }

  /// OPT guess probed in round i (1-based): x = n / 2^i.
  [[nodiscard]] double guess(std::uint32_t round) const noexcept;

  /// Samples required for round i: ceil(lambda' / x).
  [[nodiscard]] std::uint64_t round_theta(std::uint32_t round) const noexcept;

  /// Did round i's greedy coverage pass the LB test?
  /// `coverage_fraction` is F_R(S) over the round's samples.
  [[nodiscard]] bool passes(std::uint32_t round, double coverage_fraction) const noexcept;

  /// LB implied by a passing coverage fraction.
  [[nodiscard]] double lower_bound(double coverage_fraction) const noexcept;

  /// Final sample count: ceil(lambda* / LB).
  [[nodiscard]] std::uint64_t final_theta(double lb) const noexcept;

 private:
  std::uint32_t n_;
  double epsilon_prime_;
  double lambda_prime_;
  double lambda_star_;
  std::uint32_t max_rounds_;
};

}  // namespace eim::imm
