// Host-side RRR-set collection: the flat array R, offsets O, and the
// per-vertex frequency counts C the paper's seed selection operates on.
//
// This is the uncompressed reference layout; eim's device-side store (see
// eim/eim/rrr_collection.hpp) keeps the same logical structure with R
// log-encoded.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "eim/graph/types.hpp"

namespace eim::imm {

class RrrStore {
 public:
  explicit RrrStore(graph::VertexId num_vertices);

  /// Append one RRR set (must be sorted ascending, duplicate-free).
  /// Updates the counts array. Empty sets are legal (they arise under
  /// source elimination when the cap on regeneration attempts is hit).
  void append(std::span<const graph::VertexId> sorted_set);

  [[nodiscard]] std::uint64_t num_sets() const noexcept { return offsets_.size() - 1; }
  [[nodiscard]] std::uint64_t total_elements() const noexcept { return flat_.size(); }
  [[nodiscard]] graph::VertexId num_vertices() const noexcept { return n_; }

  [[nodiscard]] std::span<const graph::VertexId> set(std::uint64_t i) const noexcept {
    return {flat_.data() + offsets_[i], flat_.data() + offsets_[i + 1]};
  }

  /// How many sets contain `v` (the influence proxy C of §3.5).
  [[nodiscard]] std::uint32_t count(graph::VertexId v) const noexcept {
    return counts_[v];
  }
  [[nodiscard]] std::span<const std::uint32_t> counts() const noexcept { return counts_; }

  /// Bytes of the uncompressed layout (R as u32 + O as u64) — the baseline
  /// the Fig. 4 RRR-memory comparison uses.
  [[nodiscard]] std::uint64_t bytes() const noexcept {
    return flat_.size() * sizeof(graph::VertexId) +
           offsets_.size() * sizeof(std::uint64_t);
  }

  void clear();

 private:
  graph::VertexId n_;
  std::vector<graph::VertexId> flat_;    ///< R
  std::vector<std::uint64_t> offsets_;   ///< O (num_sets + 1 entries)
  std::vector<std::uint32_t> counts_;    ///< C
};

}  // namespace eim::imm
