#include "eim/imm/rrr_store.hpp"

#include <algorithm>
#include <cassert>

#include "eim/support/error.hpp"

namespace eim::imm {

RrrStore::RrrStore(graph::VertexId num_vertices)
    : n_(num_vertices), offsets_{0}, counts_(num_vertices, 0) {}

void RrrStore::append(std::span<const graph::VertexId> sorted_set) {
  assert(std::is_sorted(sorted_set.begin(), sorted_set.end()));
  for (const graph::VertexId v : sorted_set) {
    EIM_CHECK_MSG(v < n_, "RRR member out of range");
    ++counts_[v];
    flat_.push_back(v);
  }
  offsets_.push_back(flat_.size());
}

void RrrStore::clear() {
  flat_.clear();
  offsets_.assign(1, 0);
  std::fill(counts_.begin(), counts_.end(), 0u);
}

}  // namespace eim::imm
