#include "eim/imm/tim.hpp"

#include <cmath>

#include "eim/diffusion/reverse.hpp"
#include "eim/imm/imm.hpp"
#include "eim/imm/seed_selection.hpp"
#include "eim/imm/theta.hpp"
#include "eim/support/error.hpp"
#include "eim/support/rng.hpp"

namespace eim::imm {

using graph::VertexId;
using support::RandomStream;

namespace {

/// Distinct stream tag so TIM's estimation draws never collide with the
/// shared production sampling streams.
constexpr std::uint64_t kKptStreamTag = 0x4B505445u;  // "KPTE"

/// TIM's width function: w(R) = number of edges entering R's vertices.
/// kappa(R) = 1 - (1 - w(R)/m)^k is an unbiased-ish proxy for the
/// probability a random k-set covers R.
double kappa(const graph::Graph& g, std::span<const VertexId> set, std::uint32_t k) {
  std::uint64_t width = 0;
  for (const VertexId v : set) width += g.in_degree(v);
  const double fraction =
      static_cast<double>(width) / static_cast<double>(std::max<std::uint64_t>(1, g.num_edges()));
  return 1.0 - std::pow(1.0 - std::min(1.0, fraction), static_cast<double>(k));
}

}  // namespace

double tim_lambda(std::uint32_t num_vertices, const ImmParams& params) {
  const double n = static_cast<double>(num_vertices);
  const double log_n = std::log(n);
  return (8.0 + 2.0 * params.epsilon) * n *
         (params.ell * log_n + log_binomial(num_vertices, params.k) + std::log(2.0)) /
         (params.epsilon * params.epsilon);
}

TimResult run_tim(const graph::Graph& g, graph::DiffusionModel model,
                  const ImmParams& params) {
  const VertexId n = g.num_vertices();
  EIM_CHECK_MSG(n >= 2, "graph too small for TIM");
  EIM_CHECK_MSG(params.k >= 1 && params.k <= n, "k out of range");
  EIM_CHECK_MSG(params.epsilon > 0.0 && params.epsilon < 1.0, "epsilon out of (0,1)");

  TimResult result;

  // Phase 1: KPT estimation (TIM Algorithm 2) — doubling search over
  // guesses KPT ~ n/2^i, each probed with a batch of RRR samples.
  diffusion::RrrSampler sampler(g, model, /*eliminate_source=*/false);
  std::vector<VertexId> scratch;
  const double log2n = std::log2(static_cast<double>(n));
  const auto max_rounds = static_cast<std::uint32_t>(std::max(1.0, log2n - 1.0));

  double kpt = 1.0;
  std::uint64_t draw = 0;
  for (std::uint32_t i = 1; i <= max_rounds; ++i) {
    const double ci_real = (6.0 * params.ell * std::log(static_cast<double>(n)) +
                            6.0 * std::log(log2n)) *
                           std::exp2(static_cast<double>(i));
    const auto ci = static_cast<std::uint64_t>(std::ceil(ci_real));
    double sum = 0.0;
    for (std::uint64_t j = 0; j < ci; ++j, ++draw) {
      RandomStream rng(params.rng_seed, support::derive_stream(kKptStreamTag, draw));
      const VertexId source = rng.next_below(n);
      sampler.sample_into(source, rng, scratch);
      sum += kappa(g, scratch, params.k);
    }
    result.estimation_samples += ci;
    if (sum / static_cast<double>(ci) > 1.0 / std::exp2(static_cast<double>(i))) {
      kpt = static_cast<double>(n) * sum / (2.0 * static_cast<double>(ci));
      break;
    }
  }
  result.kpt = std::max(1.0, kpt);

  // Phase 2: theta = lambda / KPT samples, then greedy max-coverage —
  // using the repository-wide production streams so quality comparisons
  // against IMM/eIM are apples-to-apples.
  const double lambda = tim_lambda(n, params);
  const auto theta =
      static_cast<std::uint64_t>(std::ceil(lambda / result.kpt));
  RrrStore store(n);
  ImmParams sampling_params = params;
  sampling_params.eliminate_sources = false;
  result.singletons_discarded =
      sample_to_target(g, model, sampling_params, store, theta);

  const SelectionResult sel = select_seeds_greedy(store, params.k);
  result.seeds = sel.seeds;
  result.num_sets = store.num_sets();
  result.total_elements = store.total_elements();
  result.lower_bound = result.kpt;
  result.estimation_rounds = 1;
  result.estimated_spread = static_cast<double>(n) * sel.coverage_fraction;
  return result;
}

}  // namespace eim::imm
