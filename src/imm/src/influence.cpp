#include "eim/imm/influence.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "eim/diffusion/reverse.hpp"
#include "eim/support/error.hpp"
#include "eim/support/rng.hpp"

namespace eim::imm {

using graph::VertexId;
using support::RandomStream;

namespace {
constexpr std::uint64_t kInfluenceStreamTag = 0x494E464Cu;  // "INFL"
}  // namespace

InfluenceEstimate estimate_influence_ris(const graph::Graph& g,
                                         graph::DiffusionModel model,
                                         std::span<const VertexId> seeds,
                                         std::uint64_t samples, std::uint64_t seed) {
  EIM_CHECK_MSG(samples > 0, "need at least one sample");
  const VertexId n = g.num_vertices();
  for (const VertexId s : seeds) EIM_CHECK_MSG(s < n, "seed out of range");

  // Membership flags once, so each sample costs O(|set|).
  std::vector<bool> is_seed(n, false);
  for (const VertexId s : seeds) is_seed[s] = true;

  diffusion::RrrSampler sampler(g, model, /*eliminate_source=*/false);
  std::vector<VertexId> scratch;
  std::uint64_t hits = 0;
  for (std::uint64_t i = 0; i < samples; ++i) {
    RandomStream rng(seed, support::derive_stream(kInfluenceStreamTag, i));
    const VertexId source = rng.next_below(n);
    sampler.sample_into(source, rng, scratch);
    hits += static_cast<std::uint64_t>(
        std::any_of(scratch.begin(), scratch.end(),
                    [&](VertexId v) { return is_seed[v]; }));
  }

  InfluenceEstimate out;
  out.samples = samples;
  out.hits = hits;
  const double p = static_cast<double>(hits) / static_cast<double>(samples);
  out.spread = static_cast<double>(n) * p;
  out.standard_error = static_cast<double>(n) *
                       std::sqrt(std::max(0.0, p * (1.0 - p) /
                                                   static_cast<double>(samples)));
  return out;
}

}  // namespace eim::imm
