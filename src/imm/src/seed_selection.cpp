#include "eim/imm/seed_selection.hpp"

#include <algorithm>

#include "eim/support/error.hpp"

namespace eim::imm {

using graph::VertexId;

SelectionResult select_seeds_greedy(const RrrStore& store, std::uint32_t k) {
  const VertexId n = store.num_vertices();
  EIM_CHECK_MSG(k >= 1 && k <= n, "k out of range");

  const std::uint64_t num_sets = store.num_sets();

  // Inverted index: for each vertex, the ids of the sets containing it
  // (CSR layout built in two counting passes). This keeps the whole greedy
  // loop at O(total_elements + k*n) instead of rescanning every set per
  // pick. The GPU backends model Algorithm 3's scan cost separately; this
  // host routine only needs to produce the identical greedy answer.
  std::vector<std::uint64_t> index_offsets(static_cast<std::size_t>(n) + 1, 0);
  for (std::uint64_t i = 0; i < num_sets; ++i) {
    for (const VertexId v : store.set(i)) ++index_offsets[v + 1];
  }
  for (VertexId v = 0; v < n; ++v) index_offsets[v + 1] += index_offsets[v];
  std::vector<std::uint64_t> index_sets(store.total_elements());
  {
    std::vector<std::uint64_t> cursor(index_offsets.begin(), index_offsets.end() - 1);
    for (std::uint64_t i = 0; i < num_sets; ++i) {
      for (const VertexId v : store.set(i)) index_sets[cursor[v]++] = i;
    }
  }

  std::vector<std::uint32_t> counts(store.counts().begin(), store.counts().end());
  std::vector<bool> covered(num_sets, false);
  std::vector<bool> chosen(n, false);

  SelectionResult result;
  result.seeds.reserve(k);

  for (std::uint32_t pick = 0; pick < k; ++pick) {
    // arg max C[u]; ties toward the smaller id.
    VertexId best = graph::kInvalidVertex;
    std::uint32_t best_count = 0;
    for (VertexId v = 0; v < n; ++v) {
      if (!chosen[v] && counts[v] > best_count) {
        best = v;
        best_count = counts[v];
      }
    }
    if (best == graph::kInvalidVertex) {
      // No remaining vertex covers anything: fill with lowest unused ids.
      for (VertexId v = 0; v < n && result.seeds.size() < k; ++v) {
        if (!chosen[v]) {
          chosen[v] = true;
          result.seeds.push_back(v);
        }
      }
      break;
    }

    chosen[best] = true;
    result.seeds.push_back(best);

    // Remove the influence of `best`: cover its sets and decrement the
    // counts of every co-member (Algorithm 3's effect).
    for (std::uint64_t idx = index_offsets[best]; idx < index_offsets[best + 1]; ++idx) {
      const std::uint64_t set_id = index_sets[idx];
      if (covered[set_id]) continue;
      covered[set_id] = true;
      ++result.covered_sets;
      for (const VertexId u : store.set(set_id)) --counts[u];
    }
  }

  result.coverage_fraction =
      num_sets == 0 ? 0.0
                    : static_cast<double>(result.covered_sets) /
                          static_cast<double>(num_sets);
  return result;
}

}  // namespace eim::imm
