#include "eim/imm/theta.hpp"

#include <cmath>

#include "eim/support/bits.hpp"
#include "eim/support/error.hpp"

namespace eim::imm {

double log_binomial(std::uint64_t n, std::uint64_t k) {
  if (k > n) return -std::numeric_limits<double>::infinity();
  if (k == 0 || k == n) return 0.0;
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

ThetaSchedule::ThetaSchedule(std::uint32_t num_vertices, const ImmParams& params)
    : n_(num_vertices) {
  EIM_CHECK_MSG(num_vertices >= 2, "graph too small for IMM");
  EIM_CHECK_MSG(params.k >= 1 && params.k <= num_vertices, "k out of range");
  EIM_CHECK_MSG(params.epsilon > 0.0 && params.epsilon < 1.0, "epsilon out of (0,1)");
  EIM_CHECK_MSG(params.ell > 0.0, "ell must be positive");

  const double n = static_cast<double>(num_vertices);
  const double log_n = std::log(n);
  const double log_nk = log_binomial(num_vertices, params.k);

  // ell is bumped so the three union-bounded failure events still total
  // n^-ell (Tang et al., remark after Theorem 2).
  const double ell = params.ell * (1.0 + std::log(2.0) / log_n);

  epsilon_prime_ = std::sqrt(2.0) * params.epsilon;

  // lambda' drives the estimation phase (IMM eq. for theta_i).
  const double log_log2n =
      std::log(std::max(2.0, std::log2(n)));  // guard tiny graphs
  lambda_prime_ = (2.0 + 2.0 / 3.0 * epsilon_prime_) *
                  (log_nk + ell * log_n + log_log2n) * n /
                  (epsilon_prime_ * epsilon_prime_);

  // lambda* drives the final sample count (IMM Theorem 1).
  constexpr double kOneMinusInvE = 1.0 - 1.0 / 2.718281828459045;
  const double alpha = std::sqrt(ell * log_n + std::log(2.0));
  const double beta =
      std::sqrt(kOneMinusInvE * (log_nk + ell * log_n + std::log(2.0)));
  const double combined = kOneMinusInvE * alpha + beta;
  lambda_star_ = 2.0 * n * combined * combined / (params.epsilon * params.epsilon);

  const auto log2_ceil = support::ceil_log2(num_vertices);
  max_rounds_ = log2_ceil > 1 ? log2_ceil - 1 : 1;
}

double ThetaSchedule::guess(std::uint32_t round) const noexcept {
  return static_cast<double>(n_) / std::exp2(static_cast<double>(round));
}

std::uint64_t ThetaSchedule::round_theta(std::uint32_t round) const noexcept {
  return static_cast<std::uint64_t>(std::ceil(lambda_prime_ / guess(round)));
}

bool ThetaSchedule::passes(std::uint32_t round, double coverage_fraction) const noexcept {
  return static_cast<double>(n_) * coverage_fraction >=
         (1.0 + epsilon_prime_) * guess(round);
}

double ThetaSchedule::lower_bound(double coverage_fraction) const noexcept {
  return static_cast<double>(n_) * coverage_fraction / (1.0 + epsilon_prime_);
}

std::uint64_t ThetaSchedule::final_theta(double lb) const noexcept {
  if (lb < 1.0) lb = 1.0;  // OPT >= k >= 1 always
  return static_cast<std::uint64_t>(std::ceil(lambda_star_ / lb));
}

}  // namespace eim::imm
