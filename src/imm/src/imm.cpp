#include "eim/imm/imm.hpp"

#include "eim/diffusion/reverse.hpp"
#include "eim/imm/driver.hpp"
#include "eim/imm/seed_selection.hpp"
#include "eim/imm/theta.hpp"
#include "eim/support/profiler.hpp"
#include "eim/support/rng.hpp"

namespace eim::imm {

using graph::VertexId;
using support::RandomStream;

std::uint64_t sample_to_target(const graph::Graph& g, graph::DiffusionModel model,
                               const ImmParams& params, RrrStore& store,
                               std::uint64_t target,
                               support::profiler::WallProfile* profile) {
  diffusion::RrrSampler sampler(g, model, params.eliminate_sources);
  if (profile != nullptr) {
    sampler.attach_refill_timer(&profile->timer("rng.refill"));
  }
  // One wall entry per batch: per-sample timing would cost more than the
  // shallow cascades it measures.
  const support::profiler::ScopedWallTimer batch_scope(
      profile != nullptr ? &profile->timer("sampler.batch") : nullptr);
  std::vector<VertexId> scratch;
  std::uint64_t discarded = 0;

  for (std::uint64_t i = store.num_sets(); i < target; ++i) {
    for (std::uint32_t attempt = 0;; ++attempt) {
      RandomStream rng(params.rng_seed,
                       support::derive_stream(kSampleStreamTag, i, attempt));
      const VertexId source = rng.next_below(g.num_vertices());
      sampler.sample_into(source, rng, scratch);
      if (!scratch.empty() || !params.eliminate_sources ||
          attempt + 1 >= kMaxRegenerationAttempts) {
        break;
      }
      ++discarded;  // source-only sample thrown away (§3.4)
    }
    store.append(scratch);
  }
  return discarded;
}

ImmResult run_imm_serial(const graph::Graph& g, graph::DiffusionModel model,
                         const ImmParams& params,
                         support::profiler::WallProfile* profile) {
  RrrStore store(g.num_vertices());
  ImmResult result;

  const FrameworkOutcome outcome = run_imm_framework(
      g.num_vertices(), params,
      [&](std::uint64_t target) {
        result.singletons_discarded +=
            sample_to_target(g, model, params, store, target, profile);
      },
      [&] { return select_seeds_greedy(store, params.k); });

  result.seeds = outcome.final_selection.seeds;
  result.num_sets = store.num_sets();
  result.total_elements = store.total_elements();
  result.lower_bound = outcome.lower_bound;
  result.estimation_rounds = outcome.estimation_rounds;
  // Under source elimination the coverage fraction is conditional on
  // non-singleton samples; rescale so the estimate covers all draws.
  const double kept_fraction =
      static_cast<double>(result.num_sets) /
      static_cast<double>(result.num_sets + result.singletons_discarded);
  result.estimated_spread = static_cast<double>(g.num_vertices()) *
                            outcome.final_selection.coverage_fraction * kept_fraction;
  return result;
}

}  // namespace eim::imm
