// Compressed, self-verifying RRR spill-block codec.
//
// A spill block packs a batch of decoded RRR sets into one frame for the
// tiered store's host and disk tiers (docs/RESILIENCE.md "Memory-pressure
// tiers"): per-set lengths, then every member delta-transformed — each set
// is strictly ascending, so `v[0], v[j]-v[j-1]-1, ...` are small symbols —
// and encoded with whichever of the two CPU-side codecs the paper positions
// log encoding against yields the smaller payload: LEB128 varint or
// canonical Huffman (HBMax's choice for host-resident RRR storage,
// arXiv:2208.00613). A CRC-32C over the payload makes torn or bit-flipped
// blocks detectable on the way back up; the store quarantines and resamples
// a failing block instead of trusting it.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace eim::encoding {

inline constexpr std::string_view kRrrBlockMagic = "EIMSPIL1";
inline constexpr std::uint8_t kRrrBlockCodecVarint = 0;
inline constexpr std::uint8_t kRrrBlockCodecHuffman = 1;

struct DecodedRrrBlock {
  std::vector<std::uint32_t> lengths;  ///< one entry per set
  std::vector<std::uint32_t> values;   ///< concatenated sets, each ascending
};

/// Encode a batch of sets (`values` holds the concatenation of `lengths`
/// ascending runs) into one framed block.
[[nodiscard]] std::vector<std::uint8_t> rrr_block_encode(
    std::span<const std::uint32_t> lengths, std::span<const std::uint32_t> values);

/// Decode a framed block. Throws support::IoError on bad magic, truncation,
/// or CRC mismatch (the message names the CRC so callers can distinguish
/// corruption from framing bugs).
[[nodiscard]] DecodedRrrBlock rrr_block_decode(std::span<const std::uint8_t> bytes);

/// Which values codec the frame chose (exposed for tests and metrics).
[[nodiscard]] std::uint8_t rrr_block_codec(std::span<const std::uint8_t> bytes);

}  // namespace eim::encoding
