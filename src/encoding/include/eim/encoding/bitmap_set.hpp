// Hybrid bitmap / id-list set codec.
//
// The second CPU-side RRR compressor the paper positions log encoding
// against (§3.1, citing HBMax): a dense RRR set stores as an n-bit bitmap,
// a sparse one as its id list — whichever is smaller. Bitmaps give O(1)
// membership but their size scales with n rather than |set|, which is why
// they only pay off for the unusually dense sets of near-critical cascades.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace eim::encoding {

enum class SetRepresentation : std::uint8_t {
  IdList,  ///< 4 bytes per member
  Bitmap,  ///< ceil(n/8) bytes regardless of membership
};

struct EncodedSet {
  SetRepresentation representation = SetRepresentation::IdList;
  std::uint32_t member_count = 0;
  std::vector<std::uint8_t> data;

  [[nodiscard]] std::uint64_t bytes() const noexcept {
    return data.size() + sizeof(representation) + sizeof(member_count);
  }
};

/// Encode a sorted, duplicate-free set over the universe [0, n) using the
/// cheaper of the two representations.
[[nodiscard]] EncodedSet bitmap_encode_set(std::span<const std::uint32_t> sorted_set,
                                           std::uint32_t universe);

/// Decode back to the sorted id list.
[[nodiscard]] std::vector<std::uint32_t> bitmap_decode_set(const EncodedSet& set,
                                                           std::uint32_t universe);

/// O(1) membership for bitmap-represented sets, O(log) for id lists.
[[nodiscard]] bool bitmap_set_contains(const EncodedSet& set, std::uint32_t vertex);

}  // namespace eim::encoding
