// LEB128 varint codec.
//
// Included as the comparison codec the log-encoding design was chosen over:
// varint has finer per-value adaptivity but data-dependent branches and no
// O(1) random access, which is why the paper picks bit-packing for GPU
// decompression (§3.1). The ablation bench contrasts their sizes and decode
// throughput.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace eim::encoding {

/// Append the varint encoding of `value` to `out`.
void varint_append(std::vector<std::uint8_t>& out, std::uint64_t value);

/// Encode a whole sequence.
[[nodiscard]] std::vector<std::uint8_t> varint_encode(std::span<const std::uint64_t> values);

/// Decode all varints in `bytes`. Throws IoError on truncation/overflow.
[[nodiscard]] std::vector<std::uint64_t> varint_decode(std::span<const std::uint8_t> bytes);

}  // namespace eim::encoding
