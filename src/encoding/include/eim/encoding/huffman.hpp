// Canonical Huffman codec over 32-bit symbols.
//
// One of the two CPU-side RRR-set compressors the paper positions log
// encoding against (§3.1, citing HBMax): Huffman reaches better ratios on
// skewed vertex-frequency distributions (hubs appear in many RRR sets) but
// decodes bit-serially with data-dependent branches and offers no O(1)
// random access — exactly why it stays on the CPU while log encoding runs
// on the GPU. The ablation bench quantifies both sides of that trade.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

namespace eim::encoding {

/// A Huffman-compressed block of symbols.
struct HuffmanBlock {
  /// Canonical code description: symbols sorted by (length, symbol).
  std::vector<std::uint32_t> symbols;
  /// Code length per symbol in `symbols` (same order, non-decreasing).
  std::vector<std::uint8_t> lengths;
  /// Bit-packed payload.
  std::vector<std::uint8_t> bits;
  std::uint64_t num_symbols = 0;

  [[nodiscard]] std::uint64_t payload_bytes() const noexcept { return bits.size(); }
  /// Total footprint: payload plus the code table (symbol + length each).
  [[nodiscard]] std::uint64_t total_bytes() const noexcept {
    return bits.size() + symbols.size() * (sizeof(std::uint32_t) + 1);
  }
};

/// Build a canonical Huffman code for `values` and encode them.
/// Handles the degenerate single-symbol alphabet (1-bit codes).
[[nodiscard]] HuffmanBlock huffman_encode(std::span<const std::uint32_t> values);

/// Decode the whole block. Throws IoError on a corrupt stream.
[[nodiscard]] std::vector<std::uint32_t> huffman_decode(const HuffmanBlock& block);

}  // namespace eim::encoding
