// Log encoding (bit-packing) — the paper's §3.1 memory optimization.
//
// An array of integers is stored with n_b = bit_width(x_max) bits per value,
// concatenated across 32-bit containers exactly as in the paper's Figure 1;
// a value whose bits don't align to a container boundary spans two (or, for
// n_b > 32, up to three) containers.
//
// Thread-safety contract (this is the "thread-safe implementation of log
// encoding" the paper relies on during RRR-set generation): concurrent
// *writers to distinct indices* are safe via store_release(), which ORs each
// touched container atomically — storage starts zeroed and every index is
// written at most once, which is precisely the access pattern of Algorithm 2
// line 26 (each warp owns a disjoint slice of R). Readers may run
// concurrently with writers of other indices.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "eim/support/bits.hpp"

namespace eim::encoding {

class BitPackedArray {
 public:
  BitPackedArray() = default;

  /// Zero-initialized array of `size` slots, `bits_per_value` bits each
  /// (1..64).
  BitPackedArray(std::size_t size, std::uint32_t bits_per_value);

  /// Pack an existing sequence with the tightest width for its maximum.
  [[nodiscard]] static BitPackedArray encode(std::span<const std::uint64_t> values);
  [[nodiscard]] static BitPackedArray encode_u32(std::span<const std::uint32_t> values);

  /// Read slot `i`.
  [[nodiscard]] std::uint64_t get(std::size_t i) const noexcept;

  /// Write slot `i`; single-writer (read-modify-write of containers).
  void set(std::size_t i, std::uint64_t value) noexcept;

  /// Thread-safe publish of slot `i`, which must still hold zero.
  /// Distinct indices may be written concurrently from any number of
  /// threads; containers shared between neighboring slots are updated with
  /// atomic fetch_or.
  void store_release(std::size_t i, std::uint64_t value) noexcept;

  /// Thread-safe bulk publish of slots [first, first + values.size()),
  /// which must all still hold zero. Disjoint ranges may be written
  /// concurrently: only the (up to two) boundary containers shared with
  /// neighboring ranges use atomic fetch_or; interior containers — whose 32
  /// bits all belong to this range — are plain word stores fed by the
  /// streaming accumulator. This is the RRR commit fast path: a claimed
  /// slice publishes per word instead of per element.
  void store_release_range(std::size_t first,
                           std::span<const std::uint32_t> values) noexcept {
    store_release_range(first, values, [](std::uint32_t) {});
  }

  /// As above, but additionally invokes `on_value(values[k])` exactly once
  /// per value, in slot order, as it is folded into the streaming
  /// accumulator. Lets a caller fuse a per-element side effect — eIM's
  /// frequency-count update of C — into the single publish pass instead of
  /// re-walking the set after encoding (Alg. 2 lines 26-28 as one sweep).
  template <typename OnValue>
  void store_release_range(std::size_t first, std::span<const std::uint32_t> values,
                           OnValue&& on_value) noexcept {
    if (values.empty()) return;
    const std::uint64_t mask = support::low_mask64(bits_);
    const std::uint64_t bit = static_cast<std::uint64_t>(first) * bits_;
    std::size_t w = static_cast<std::size_t>(bit >> 5);
    const std::uint32_t head_bits = static_cast<std::uint32_t>(bit & 31);
    // The accumulator starts with head_bits of zeros so our first value
    // lands at the right in-word shift; the head word itself may hold a
    // neighboring range's bits, so it (and the partial tail word) publish
    // via fetch_or while fully-owned interior words are plain stores.
    // __extension__ keeps -Wpedantic quiet in including TUs (the .cpp's
    // encode path uses the same 128-bit accumulator).
    __extension__ using Acc = unsigned __int128;
    Acc acc = 0;
    std::uint32_t acc_bits = head_bits;
    bool shared_head = head_bits != 0;
    for (const std::uint32_t value : values) {
      on_value(value);
      acc |= static_cast<Acc>(static_cast<std::uint64_t>(value) & mask) << acc_bits;
      acc_bits += bits_;
      while (acc_bits >= 32) {
        const auto word = static_cast<std::uint32_t>(acc);
        if (shared_head) {
          std::atomic_ref<std::uint32_t>(containers_[w]).fetch_or(
              word, std::memory_order_release);
          shared_head = false;
        } else {
          containers_[w] = word;
        }
        ++w;
        acc >>= 32;
        acc_bits -= 32;
      }
    }
    if (acc_bits > 0) {
      std::atomic_ref<std::uint32_t>(containers_[w])
          .fetch_or(static_cast<std::uint32_t>(acc), std::memory_order_release);
    }
  }

  /// Bulk decode: out[j] = get(first + j). Word-streaming — each value is
  /// gathered from a 64-bit window over the containers instead of the
  /// per-element multi-branch loop in get(), which is what makes decoding
  /// whole RRR sets cheap (§3.1 consumers). Requires first + out.size()
  /// <= size().
  void decode_into(std::size_t first, std::span<std::uint64_t> out) const noexcept;

  /// Narrow bulk decode for vertex-id payloads; requires bits_per_value()
  /// <= 32 (values are truncated otherwise).
  void decode_into(std::size_t first, std::span<std::uint32_t> out) const noexcept;

  /// Bulk decode [first, first + count) into a fresh vector.
  [[nodiscard]] std::vector<std::uint64_t> decode_range(std::size_t first,
                                                        std::size_t count) const;

  /// Bulk encode counterpart: set(first + j, values[j]) via a streaming
  /// 128-bit accumulator flushed word-by-word. Single-writer, like set().
  void encode_into(std::size_t first, std::span<const std::uint64_t> values) noexcept;
  void encode_into(std::size_t first, std::span<const std::uint32_t> values) noexcept;

  /// Word-level copy of src slots [0, count) into this array's prefix.
  /// Requires identical bits_per_value, count <= min(size, src.size), and
  /// the destination prefix currently zero (fresh or cleared array) — the
  /// container words are OR-merged, not read-modify-written per slot.
  void assign_prefix(const BitPackedArray& src, std::size_t count) noexcept;

  /// Reset all slots to zero (not thread-safe).
  void clear() noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::uint32_t bits_per_value() const noexcept { return bits_; }

  /// Bytes occupied by the container storage — the quantity Fig. 4 reports.
  /// Counts the logical words only, not the two zero pad words that let
  /// decode_into read a full 64-bit window past the last value.
  [[nodiscard]] std::uint64_t storage_bytes() const noexcept {
    return static_cast<std::uint64_t>(num_words_) * sizeof(std::uint32_t);
  }

  /// Bytes the same data occupies un-encoded at the given element width.
  [[nodiscard]] std::uint64_t raw_bytes(std::uint32_t element_bytes = 4) const noexcept {
    return static_cast<std::uint64_t>(size_) * element_bytes;
  }

  /// Decode the full array.
  [[nodiscard]] std::vector<std::uint64_t> decode_all() const;

 private:
  std::size_t size_ = 0;
  std::uint32_t bits_ = 0;
  std::size_t num_words_ = 0;  ///< logical container words (excludes padding)
  std::vector<std::uint32_t> containers_;
};

}  // namespace eim::encoding
