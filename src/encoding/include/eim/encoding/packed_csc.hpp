// Log-encoded CSC network representation (§3.1).
//
// The three CSC arrays are treated exactly as in the paper:
//  * offsets       -> packed with bit_width(m) bits,
//  * in-neighbors  -> packed with bit_width(n-1) bits,
//  * edge weights  -> kept as float32 (log encoding applies to integers; the
//                     paper compresses the integer arrays and this is what
//                     yields its 28.8% -> 14% savings band for network data).
//
// For the paper's default 1/d^- weight scheme the weights are additionally
// *derivable* from the offsets (w = 1/in_degree), so an implicit-weight mode
// drops the weight array entirely; this exceeds the paper's savings and is
// flagged off by default to keep Fig. 4 comparable.
#pragma once

#include <cstdint>

#include "eim/encoding/bit_packed_array.hpp"
#include "eim/graph/graph.hpp"

namespace eim::encoding {

enum class WeightStorage {
  /// Keep the float32 weight array verbatim (paper-comparable mode).
  RawFloat,
  /// Recompute 1/d^-(v) from the packed offsets; stores no weights.
  /// Only valid for graphs weighted with WeightScheme::InDegree.
  ImplicitInDegree,
};

class PackedCsc {
 public:
  /// Compress a weighted graph's in-adjacency.
  PackedCsc(const graph::Graph& g, WeightStorage weight_storage = WeightStorage::RawFloat);

  [[nodiscard]] graph::VertexId num_vertices() const noexcept { return n_; }
  [[nodiscard]] graph::EdgeId num_edges() const noexcept { return m_; }

  [[nodiscard]] graph::EdgeId offset(graph::VertexId v) const noexcept {
    return offsets_.get(v);
  }
  [[nodiscard]] graph::EdgeId in_degree(graph::VertexId v) const noexcept {
    return offsets_.get(v + 1u) - offsets_.get(v);
  }
  /// The j-th in-neighbor of v (j < in_degree(v)).
  [[nodiscard]] graph::VertexId in_neighbor(graph::VertexId v, graph::EdgeId j) const noexcept {
    return static_cast<graph::VertexId>(neighbors_.get(offsets_.get(v) + j));
  }
  /// Weight of the j-th in-edge of v.
  [[nodiscard]] graph::Weight in_weight(graph::VertexId v, graph::EdgeId j) const noexcept {
    if (weight_storage_ == WeightStorage::ImplicitInDegree) {
      return 1.0f / static_cast<float>(in_degree(v));
    }
    return weights_[offsets_.get(v) + j];
  }

  [[nodiscard]] WeightStorage weight_storage() const noexcept { return weight_storage_; }

  /// Total bytes of the compressed representation.
  [[nodiscard]] std::uint64_t packed_bytes() const noexcept;
  /// Bytes of the equivalent uncompressed CSC (64-bit offsets, 32-bit
  /// neighbors, 32-bit weights) — the baseline of Fig. 4.
  [[nodiscard]] std::uint64_t raw_bytes() const noexcept;
  /// Fraction of memory saved, as plotted in Fig. 4.
  [[nodiscard]] double saved_fraction() const noexcept {
    const auto raw = static_cast<double>(raw_bytes());
    return raw == 0.0 ? 0.0 : 1.0 - static_cast<double>(packed_bytes()) / raw;
  }

 private:
  graph::VertexId n_ = 0;
  graph::EdgeId m_ = 0;
  WeightStorage weight_storage_;
  BitPackedArray offsets_;
  BitPackedArray neighbors_;
  std::vector<graph::Weight> weights_;
};

}  // namespace eim::encoding
