#include "eim/encoding/bit_packed_array.hpp"

#include <algorithm>

#include "eim/support/error.hpp"

namespace eim::encoding {

using support::div_ceil;
using support::low_mask64;

BitPackedArray::BitPackedArray(std::size_t size, std::uint32_t bits_per_value)
    : size_(size), bits_(bits_per_value) {
  EIM_CHECK_MSG(bits_per_value >= 1 && bits_per_value <= 64,
                "bits_per_value must be in [1, 64]");
  const std::uint64_t total_bits = static_cast<std::uint64_t>(size) * bits_per_value;
  num_words_ = static_cast<std::size_t>(div_ceil<std::uint64_t>(total_bits, 32));
  // Two zero pad words so decode_into can unconditionally read a 64-bit
  // window at any starting word (and one word beyond for n_b > 32 values
  // that straddle three containers). storage_bytes() excludes them.
  containers_.assign(num_words_ + 2, 0u);
}

BitPackedArray BitPackedArray::encode(std::span<const std::uint64_t> values) {
  std::uint64_t max_value = 0;
  for (const std::uint64_t v : values) max_value = std::max(max_value, v);
  BitPackedArray packed(values.size(), support::bit_width_for_value(max_value));
  packed.encode_into(0, values);
  return packed;
}

BitPackedArray BitPackedArray::encode_u32(std::span<const std::uint32_t> values) {
  std::uint32_t max_value = 0;
  for (const std::uint32_t v : values) max_value = std::max(max_value, v);
  BitPackedArray packed(values.size(), support::bit_width_for_value(max_value));
  packed.encode_into(0, values);
  return packed;
}

std::uint64_t BitPackedArray::get(std::size_t i) const noexcept {
  const std::uint64_t first_bit = static_cast<std::uint64_t>(i) * bits_;
  std::size_t container = static_cast<std::size_t>(first_bit / 32);
  std::uint32_t shift = static_cast<std::uint32_t>(first_bit % 32);
  std::uint64_t out = 0;
  std::uint32_t produced = 0;
  while (produced < bits_) {
    const std::uint32_t take = std::min(32 - shift, bits_ - produced);
    const std::uint64_t chunk =
        (static_cast<std::uint64_t>(containers_[container]) >> shift) &
        low_mask64(take);
    out |= chunk << produced;
    produced += take;
    ++container;
    shift = 0;
  }
  return out;
}

void BitPackedArray::set(std::size_t i, std::uint64_t value) noexcept {
  const std::uint64_t first_bit = static_cast<std::uint64_t>(i) * bits_;
  std::size_t container = static_cast<std::size_t>(first_bit / 32);
  std::uint32_t shift = static_cast<std::uint32_t>(first_bit % 32);
  std::uint64_t v = value & low_mask64(bits_);
  std::uint32_t consumed = 0;
  while (consumed < bits_) {
    const std::uint32_t take = std::min(32 - shift, bits_ - consumed);
    const auto mask = static_cast<std::uint32_t>(low_mask64(take)) << shift;
    const auto chunk = static_cast<std::uint32_t>(v & low_mask64(take)) << shift;
    containers_[container] = (containers_[container] & ~mask) | chunk;
    v >>= take;
    consumed += take;
    ++container;
    shift = 0;
  }
}

void BitPackedArray::store_release(std::size_t i, std::uint64_t value) noexcept {
  const std::uint64_t first_bit = static_cast<std::uint64_t>(i) * bits_;
  std::size_t container = static_cast<std::size_t>(first_bit / 32);
  std::uint32_t shift = static_cast<std::uint32_t>(first_bit % 32);
  std::uint64_t v = value & low_mask64(bits_);
  std::uint32_t consumed = 0;
  while (consumed < bits_) {
    const std::uint32_t take = std::min(32 - shift, bits_ - consumed);
    const auto chunk = static_cast<std::uint32_t>(v & low_mask64(take)) << shift;
    // Slot i held zero, so OR-ing publishes our bits without disturbing the
    // neighbor slots that share this container.
    std::atomic_ref<std::uint32_t>(containers_[container])
        .fetch_or(chunk, std::memory_order_release);
    v >>= take;
    consumed += take;
    ++container;
    shift = 0;
  }
}

namespace {

/// Word-streaming gather shared by the decode_into overloads. Every value
/// starts at bit offset `bit`; its up-to-33 container-spanning bits always
/// fit the 64-bit window [word, word+2), plus (for n_b > 32 with a nonzero
/// intra-word shift) spillover from word+2 — which the two pad words make
/// safe to read unconditionally even at the array's tail.
template <typename Out>
void decode_words(const std::uint32_t* words, std::uint32_t bits, std::uint64_t bit,
                  Out* out, std::size_t count) noexcept {
  const std::uint64_t mask = low_mask64(bits);
  if (bits <= 32) {
    for (std::size_t j = 0; j < count; ++j, bit += bits) {
      const std::size_t w = static_cast<std::size_t>(bit >> 5);
      const std::uint32_t sh = static_cast<std::uint32_t>(bit & 31);
      const std::uint64_t pair =
          static_cast<std::uint64_t>(words[w]) |
          (static_cast<std::uint64_t>(words[w + 1]) << 32);
      out[j] = static_cast<Out>((pair >> sh) & mask);
    }
    return;
  }
  for (std::size_t j = 0; j < count; ++j, bit += bits) {
    const std::size_t w = static_cast<std::size_t>(bit >> 5);
    const std::uint32_t sh = static_cast<std::uint32_t>(bit & 31);
    std::uint64_t value =
        (static_cast<std::uint64_t>(words[w]) |
         (static_cast<std::uint64_t>(words[w + 1]) << 32)) >> sh;
    // Third-word spillover contributes bits [64-sh, 64); the two-step shift
    // is branchless-safe for sh == 0 (where it yields zero, as it must).
    value |= (static_cast<std::uint64_t>(words[w + 2]) << 1) << (63 - sh);
    out[j] = static_cast<Out>(value & mask);
  }
}

}  // namespace

void BitPackedArray::decode_into(std::size_t first,
                                 std::span<std::uint64_t> out) const noexcept {
  decode_words(containers_.data(), bits_,
               static_cast<std::uint64_t>(first) * bits_, out.data(), out.size());
}

void BitPackedArray::decode_into(std::size_t first,
                                 std::span<std::uint32_t> out) const noexcept {
  decode_words(containers_.data(), bits_,
               static_cast<std::uint64_t>(first) * bits_, out.data(), out.size());
}

std::vector<std::uint64_t> BitPackedArray::decode_range(std::size_t first,
                                                        std::size_t count) const {
  std::vector<std::uint64_t> out(count);
  decode_into(first, out);
  return out;
}

namespace {

/// Streaming bulk encode shared by the encode_into overloads. A 128-bit
/// accumulator (shift + n_b can exceed 64) collects values and flushes full
/// 32-bit containers; the partial head/tail words are merge-written so
/// neighbor slots sharing them are preserved.
template <typename In>
void encode_words(std::uint32_t* words, std::uint32_t bits, std::uint64_t bit,
                  const In* values, std::size_t count) noexcept {
  if (count == 0) return;
  const std::uint64_t mask = low_mask64(bits);
  std::size_t w = static_cast<std::size_t>(bit >> 5);
  const std::uint32_t head_bits = static_cast<std::uint32_t>(bit & 31);
  using Acc = unsigned __int128;
  Acc acc = words[w] & support::low_mask32(head_bits);
  std::uint32_t acc_bits = head_bits;
  for (std::size_t j = 0; j < count; ++j) {
    acc |= static_cast<Acc>(static_cast<std::uint64_t>(values[j]) & mask) << acc_bits;
    acc_bits += bits;
    while (acc_bits >= 32) {
      words[w++] = static_cast<std::uint32_t>(acc);
      acc >>= 32;
      acc_bits -= 32;
    }
  }
  if (acc_bits > 0) {
    words[w] = (words[w] & ~support::low_mask32(acc_bits)) |
               static_cast<std::uint32_t>(acc);
  }
}

}  // namespace

void BitPackedArray::encode_into(std::size_t first,
                                 std::span<const std::uint64_t> values) noexcept {
  encode_words(containers_.data(), bits_,
               static_cast<std::uint64_t>(first) * bits_, values.data(), values.size());
}

void BitPackedArray::encode_into(std::size_t first,
                                 std::span<const std::uint32_t> values) noexcept {
  encode_words(containers_.data(), bits_,
               static_cast<std::uint64_t>(first) * bits_, values.data(), values.size());
}

void BitPackedArray::assign_prefix(const BitPackedArray& src,
                                   std::size_t count) noexcept {
  const std::uint64_t total_bits = static_cast<std::uint64_t>(count) * bits_;
  const std::size_t full_words = static_cast<std::size_t>(total_bits / 32);
  std::copy_n(src.containers_.begin(), full_words, containers_.begin());
  const std::uint32_t tail_bits = static_cast<std::uint32_t>(total_bits % 32);
  if (tail_bits != 0) {
    // The destination prefix is zero per contract, so OR-ing the masked
    // tail preserves whatever the caller already wrote beyond `count`.
    containers_[full_words] |= src.containers_[full_words] & support::low_mask32(tail_bits);
  }
}

void BitPackedArray::clear() noexcept {
  std::fill(containers_.begin(), containers_.end(), 0u);
}

std::vector<std::uint64_t> BitPackedArray::decode_all() const {
  std::vector<std::uint64_t> out(size_);
  decode_into(0, out);
  return out;
}

}  // namespace eim::encoding
