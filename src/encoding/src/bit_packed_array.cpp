#include "eim/encoding/bit_packed_array.hpp"

#include <algorithm>

#include "eim/support/error.hpp"

namespace eim::encoding {

using support::div_ceil;
using support::low_mask64;

BitPackedArray::BitPackedArray(std::size_t size, std::uint32_t bits_per_value)
    : size_(size), bits_(bits_per_value) {
  EIM_CHECK_MSG(bits_per_value >= 1 && bits_per_value <= 64,
                "bits_per_value must be in [1, 64]");
  const std::uint64_t total_bits = static_cast<std::uint64_t>(size) * bits_per_value;
  containers_.assign(div_ceil<std::uint64_t>(total_bits, 32), 0u);
}

BitPackedArray BitPackedArray::encode(std::span<const std::uint64_t> values) {
  std::uint64_t max_value = 0;
  for (const std::uint64_t v : values) max_value = std::max(max_value, v);
  BitPackedArray packed(values.size(), support::bit_width_for_value(max_value));
  for (std::size_t i = 0; i < values.size(); ++i) packed.set(i, values[i]);
  return packed;
}

BitPackedArray BitPackedArray::encode_u32(std::span<const std::uint32_t> values) {
  std::uint32_t max_value = 0;
  for (const std::uint32_t v : values) max_value = std::max(max_value, v);
  BitPackedArray packed(values.size(), support::bit_width_for_value(max_value));
  for (std::size_t i = 0; i < values.size(); ++i) packed.set(i, values[i]);
  return packed;
}

std::uint64_t BitPackedArray::get(std::size_t i) const noexcept {
  const std::uint64_t first_bit = static_cast<std::uint64_t>(i) * bits_;
  std::size_t container = static_cast<std::size_t>(first_bit / 32);
  std::uint32_t shift = static_cast<std::uint32_t>(first_bit % 32);
  std::uint64_t out = 0;
  std::uint32_t produced = 0;
  while (produced < bits_) {
    const std::uint32_t take = std::min(32 - shift, bits_ - produced);
    const std::uint64_t chunk =
        (static_cast<std::uint64_t>(containers_[container]) >> shift) &
        low_mask64(take);
    out |= chunk << produced;
    produced += take;
    ++container;
    shift = 0;
  }
  return out;
}

void BitPackedArray::set(std::size_t i, std::uint64_t value) noexcept {
  const std::uint64_t first_bit = static_cast<std::uint64_t>(i) * bits_;
  std::size_t container = static_cast<std::size_t>(first_bit / 32);
  std::uint32_t shift = static_cast<std::uint32_t>(first_bit % 32);
  std::uint64_t v = value & low_mask64(bits_);
  std::uint32_t consumed = 0;
  while (consumed < bits_) {
    const std::uint32_t take = std::min(32 - shift, bits_ - consumed);
    const auto mask = static_cast<std::uint32_t>(low_mask64(take)) << shift;
    const auto chunk = static_cast<std::uint32_t>(v & low_mask64(take)) << shift;
    containers_[container] = (containers_[container] & ~mask) | chunk;
    v >>= take;
    consumed += take;
    ++container;
    shift = 0;
  }
}

void BitPackedArray::store_release(std::size_t i, std::uint64_t value) noexcept {
  const std::uint64_t first_bit = static_cast<std::uint64_t>(i) * bits_;
  std::size_t container = static_cast<std::size_t>(first_bit / 32);
  std::uint32_t shift = static_cast<std::uint32_t>(first_bit % 32);
  std::uint64_t v = value & low_mask64(bits_);
  std::uint32_t consumed = 0;
  while (consumed < bits_) {
    const std::uint32_t take = std::min(32 - shift, bits_ - consumed);
    const auto chunk = static_cast<std::uint32_t>(v & low_mask64(take)) << shift;
    // Slot i held zero, so OR-ing publishes our bits without disturbing the
    // neighbor slots that share this container.
    std::atomic_ref<std::uint32_t>(containers_[container])
        .fetch_or(chunk, std::memory_order_release);
    v >>= take;
    consumed += take;
    ++container;
    shift = 0;
  }
}

void BitPackedArray::clear() noexcept {
  std::fill(containers_.begin(), containers_.end(), 0u);
}

std::vector<std::uint64_t> BitPackedArray::decode_all() const {
  std::vector<std::uint64_t> out(size_);
  for (std::size_t i = 0; i < size_; ++i) out[i] = get(i);
  return out;
}

}  // namespace eim::encoding
