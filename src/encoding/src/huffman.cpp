#include "eim/encoding/huffman.hpp"

#include <algorithm>
#include <queue>

#include "eim/support/error.hpp"

namespace eim::encoding {

namespace {

/// Writer that appends bits MSB-first into a byte vector.
class BitWriter {
 public:
  void put(std::uint64_t code, std::uint8_t length) {
    for (int b = length - 1; b >= 0; --b) {
      if (bit_ == 0) bytes_.push_back(0);
      if ((code >> b) & 1u) bytes_.back() |= static_cast<std::uint8_t>(1u << (7 - bit_));
      bit_ = (bit_ + 1) & 7;
    }
  }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
  unsigned bit_ = 0;
};

/// Compute code lengths with the classic two-queue Huffman construction.
std::vector<std::uint8_t> code_lengths(const std::vector<std::uint64_t>& freqs) {
  struct Node {
    std::uint64_t weight;
    int left = -1, right = -1;
    int symbol = -1;
  };
  std::vector<Node> nodes;
  using HeapItem = std::pair<std::uint64_t, int>;  // (weight, node id)
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
  for (std::size_t s = 0; s < freqs.size(); ++s) {
    nodes.push_back(Node{freqs[s], -1, -1, static_cast<int>(s)});
    heap.emplace(freqs[s], static_cast<int>(s));
  }
  while (heap.size() > 1) {
    const auto [wa, a] = heap.top();
    heap.pop();
    const auto [wb, b] = heap.top();
    heap.pop();
    nodes.push_back(Node{wa + wb, a, b, -1});
    heap.emplace(wa + wb, static_cast<int>(nodes.size() - 1));
  }

  std::vector<std::uint8_t> lengths(freqs.size(), 0);
  if (freqs.size() == 1) {
    lengths[0] = 1;  // degenerate alphabet still needs one bit per symbol
    return lengths;
  }
  // Depth-first traversal assigning depths as lengths.
  std::vector<std::pair<int, std::uint8_t>> stack{{static_cast<int>(nodes.size() - 1), 0}};
  while (!stack.empty()) {
    const auto [id, depth] = stack.back();
    stack.pop_back();
    const Node& node = nodes[static_cast<std::size_t>(id)];
    if (node.symbol >= 0) {
      lengths[static_cast<std::size_t>(node.symbol)] = std::max<std::uint8_t>(1, depth);
    } else {
      stack.emplace_back(node.left, static_cast<std::uint8_t>(depth + 1));
      stack.emplace_back(node.right, static_cast<std::uint8_t>(depth + 1));
    }
  }
  return lengths;
}

}  // namespace

HuffmanBlock huffman_encode(std::span<const std::uint32_t> values) {
  HuffmanBlock block;
  block.num_symbols = values.size();
  if (values.empty()) return block;

  // Frequency table over the observed alphabet.
  std::unordered_map<std::uint32_t, std::uint64_t> freq;
  for (const std::uint32_t v : values) ++freq[v];

  std::vector<std::uint32_t> alphabet;
  std::vector<std::uint64_t> freqs;
  alphabet.reserve(freq.size());
  for (const auto& [symbol, count] : freq) {
    alphabet.push_back(symbol);
    freqs.push_back(count);
  }
  // Deterministic construction: sort the alphabet first.
  std::vector<std::size_t> order(alphabet.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return alphabet[a] < alphabet[b]; });
  {
    std::vector<std::uint32_t> a2(alphabet.size());
    std::vector<std::uint64_t> f2(freqs.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      a2[i] = alphabet[order[i]];
      f2[i] = freqs[order[i]];
    }
    alphabet.swap(a2);
    freqs.swap(f2);
  }

  const std::vector<std::uint8_t> lengths = code_lengths(freqs);

  // Canonical ordering: (length, symbol).
  std::vector<std::size_t> canon(alphabet.size());
  for (std::size_t i = 0; i < canon.size(); ++i) canon[i] = i;
  std::sort(canon.begin(), canon.end(), [&](std::size_t a, std::size_t b) {
    return lengths[a] != lengths[b] ? lengths[a] < lengths[b]
                                    : alphabet[a] < alphabet[b];
  });

  block.symbols.reserve(alphabet.size());
  block.lengths.reserve(alphabet.size());
  for (const std::size_t i : canon) {
    block.symbols.push_back(alphabet[i]);
    block.lengths.push_back(lengths[i]);
  }

  // Canonical code assignment.
  std::unordered_map<std::uint32_t, std::pair<std::uint64_t, std::uint8_t>> codes;
  std::uint64_t code = 0;
  std::uint8_t prev_len = block.lengths.empty() ? 0 : block.lengths.front();
  for (std::size_t i = 0; i < block.symbols.size(); ++i) {
    code <<= (block.lengths[i] - prev_len);
    codes[block.symbols[i]] = {code, block.lengths[i]};
    prev_len = block.lengths[i];
    ++code;
  }

  BitWriter writer;
  for (const std::uint32_t v : values) {
    const auto [c, len] = codes.at(v);
    writer.put(c, len);
  }
  block.bits = writer.take();
  return block;
}

std::vector<std::uint32_t> huffman_decode(const HuffmanBlock& block) {
  std::vector<std::uint32_t> out;
  out.reserve(block.num_symbols);
  if (block.num_symbols == 0) return out;
  EIM_CHECK_MSG(!block.symbols.empty(), "huffman block missing code table");

  // Canonical decode tables: for each length, the first code and the index
  // of its first symbol.
  const std::uint8_t max_len = block.lengths.back();
  std::vector<std::uint64_t> first_code(max_len + 2, 0);
  std::vector<std::size_t> first_index(max_len + 2, 0);
  std::vector<std::size_t> count(max_len + 2, 0);
  for (const std::uint8_t len : block.lengths) ++count[len];
  std::uint64_t code = 0;
  std::size_t index = 0;
  for (std::uint8_t len = 1; len <= max_len; ++len) {
    first_code[len] = code;
    first_index[len] = index;
    code = (code + count[len]) << 1;
    index += count[len];
  }

  std::uint64_t acc = 0;
  std::uint8_t acc_len = 0;
  std::size_t bit_pos = 0;
  const std::uint64_t total_bits = static_cast<std::uint64_t>(block.bits.size()) * 8;
  while (out.size() < block.num_symbols) {
    if (bit_pos >= total_bits) throw support::IoError("truncated huffman stream");
    const std::uint8_t byte = block.bits[bit_pos >> 3];
    const unsigned bit = (byte >> (7 - (bit_pos & 7))) & 1u;
    ++bit_pos;
    acc = (acc << 1) | bit;
    ++acc_len;
    if (acc_len > max_len) throw support::IoError("corrupt huffman stream");
    const std::uint64_t offset = acc - first_code[acc_len];
    if (acc_len >= block.lengths.front() && offset < count[acc_len]) {
      out.push_back(block.symbols[first_index[acc_len] + offset]);
      acc = 0;
      acc_len = 0;
    }
  }
  return out;
}

}  // namespace eim::encoding
