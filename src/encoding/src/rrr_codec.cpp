#include "eim/encoding/rrr_codec.hpp"

#include <cstring>

#include "eim/encoding/huffman.hpp"
#include "eim/encoding/varint.hpp"
#include "eim/support/crc32.hpp"
#include "eim/support/error.hpp"

namespace eim::encoding {

namespace {

// Fixed little-endian frame header:
//   magic(8) codec(1) num_sets(8) num_values(8) lengths_bytes(8)
//   payload_bytes(8) crc32c(4)
constexpr std::size_t kHeaderBytes = 8 + 1 + 8 + 8 + 8 + 8 + 4;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

class Cursor {
 public:
  explicit Cursor(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  [[nodiscard]] std::span<const std::uint8_t> take(std::size_t n) {
    if (bytes_.size() - at_ < n) {
      throw support::IoError("rrr block: truncated frame");
    }
    const auto view = bytes_.subspan(at_, n);
    at_ += n;
    return view;
  }
  [[nodiscard]] std::uint8_t u8() { return take(1)[0]; }
  [[nodiscard]] std::uint32_t u32() {
    const auto v = take(4);
    std::uint32_t r = 0;
    for (int i = 0; i < 4; ++i) r |= static_cast<std::uint32_t>(v[i]) << (8 * i);
    return r;
  }
  [[nodiscard]] std::uint64_t u64() {
    const auto v = take(8);
    std::uint64_t r = 0;
    for (int i = 0; i < 8; ++i) r |= static_cast<std::uint64_t>(v[i]) << (8 * i);
    return r;
  }
  [[nodiscard]] std::size_t remaining() const noexcept { return bytes_.size() - at_; }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t at_ = 0;
};

// Delta transform: within each (strictly ascending) set, the first member is
// absolute and every later one stores the gap minus one — small symbols that
// both varint and Huffman compress well.
std::vector<std::uint32_t> to_deltas(std::span<const std::uint32_t> lengths,
                                     std::span<const std::uint32_t> values) {
  std::vector<std::uint32_t> deltas;
  deltas.reserve(values.size());
  std::size_t at = 0;
  for (const std::uint32_t len : lengths) {
    for (std::uint32_t j = 0; j < len; ++j) {
      deltas.push_back(j == 0 ? values[at] : values[at] - values[at - 1] - 1);
      ++at;
    }
  }
  return deltas;
}

std::vector<std::uint8_t> serialize_huffman(const HuffmanBlock& block) {
  std::vector<std::uint8_t> out;
  out.reserve(block.total_bytes() + 32);
  put_u32(out, static_cast<std::uint32_t>(block.symbols.size()));
  for (std::size_t i = 0; i < block.symbols.size(); ++i) {
    put_u32(out, block.symbols[i]);
    out.push_back(block.lengths[i]);
  }
  put_u64(out, block.num_symbols);
  put_u64(out, block.bits.size());
  out.insert(out.end(), block.bits.begin(), block.bits.end());
  return out;
}

HuffmanBlock deserialize_huffman(Cursor& cur) {
  HuffmanBlock block;
  const std::uint32_t num_codes = cur.u32();
  block.symbols.reserve(num_codes);
  block.lengths.reserve(num_codes);
  for (std::uint32_t i = 0; i < num_codes; ++i) {
    block.symbols.push_back(cur.u32());
    block.lengths.push_back(cur.u8());
  }
  block.num_symbols = cur.u64();
  const std::uint64_t bits_bytes = cur.u64();
  const auto bits = cur.take(bits_bytes);
  block.bits.assign(bits.begin(), bits.end());
  return block;
}

}  // namespace

std::vector<std::uint8_t> rrr_block_encode(std::span<const std::uint32_t> lengths,
                                           std::span<const std::uint32_t> values) {
  const std::vector<std::uint32_t> deltas = to_deltas(lengths, values);

  // Lengths section: varint-coded (they are small and few).
  std::vector<std::uint8_t> lengths_bytes;
  for (const std::uint32_t len : lengths) varint_append(lengths_bytes, len);

  // Values section: encode with both candidate codecs, keep the smaller —
  // varint wins on tiny/uniform blocks, Huffman on skewed hub-heavy ones.
  std::vector<std::uint8_t> varint_section;
  varint_section.reserve(deltas.size());
  for (const std::uint32_t d : deltas) varint_append(varint_section, d);
  std::vector<std::uint8_t> huffman_section;
  if (!deltas.empty()) {
    huffman_section = serialize_huffman(huffman_encode(deltas));
  }
  const bool use_huffman =
      !huffman_section.empty() && huffman_section.size() < varint_section.size();
  const std::vector<std::uint8_t>& section =
      use_huffman ? huffman_section : varint_section;

  std::vector<std::uint8_t> payload;
  payload.reserve(lengths_bytes.size() + section.size());
  payload.insert(payload.end(), lengths_bytes.begin(), lengths_bytes.end());
  payload.insert(payload.end(), section.begin(), section.end());

  std::vector<std::uint8_t> frame;
  frame.reserve(kHeaderBytes + payload.size());
  frame.insert(frame.end(), kRrrBlockMagic.begin(), kRrrBlockMagic.end());
  frame.push_back(use_huffman ? kRrrBlockCodecHuffman : kRrrBlockCodecVarint);
  put_u64(frame, lengths.size());
  put_u64(frame, values.size());
  put_u64(frame, lengths_bytes.size());
  put_u64(frame, payload.size());
  put_u32(frame, support::crc32c(payload));
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

DecodedRrrBlock rrr_block_decode(std::span<const std::uint8_t> bytes) {
  Cursor header(bytes);
  const auto magic = header.take(kRrrBlockMagic.size());
  if (std::memcmp(magic.data(), kRrrBlockMagic.data(), kRrrBlockMagic.size()) != 0) {
    throw support::IoError("rrr block: bad magic");
  }
  const std::uint8_t codec = header.u8();
  const std::uint64_t num_sets = header.u64();
  const std::uint64_t num_values = header.u64();
  const std::uint64_t lengths_bytes = header.u64();
  const std::uint64_t payload_bytes = header.u64();
  const std::uint32_t crc = header.u32();
  if (header.remaining() != payload_bytes || lengths_bytes > payload_bytes) {
    throw support::IoError("rrr block: truncated frame");
  }
  const auto payload = header.take(payload_bytes);
  if (support::crc32c(payload) != crc) {
    throw support::IoError("rrr block: CRC-32C mismatch (torn or corrupt block)");
  }

  DecodedRrrBlock block;
  const std::vector<std::uint64_t> lens =
      varint_decode(payload.subspan(0, lengths_bytes));
  if (lens.size() != num_sets) {
    throw support::IoError("rrr block: lengths section does not match header");
  }
  block.lengths.reserve(num_sets);
  std::uint64_t total = 0;
  for (const std::uint64_t len : lens) {
    block.lengths.push_back(static_cast<std::uint32_t>(len));
    total += len;
  }
  if (total != num_values) {
    throw support::IoError("rrr block: value count does not match header");
  }

  std::vector<std::uint32_t> deltas;
  const auto section = payload.subspan(lengths_bytes);
  if (codec == kRrrBlockCodecVarint) {
    const std::vector<std::uint64_t> wide = varint_decode(section);
    deltas.reserve(wide.size());
    for (const std::uint64_t d : wide) deltas.push_back(static_cast<std::uint32_t>(d));
  } else if (codec == kRrrBlockCodecHuffman) {
    Cursor cur(section);
    deltas = huffman_decode(deserialize_huffman(cur));
  } else {
    throw support::IoError("rrr block: unknown codec id");
  }
  if (deltas.size() != num_values) {
    throw support::IoError("rrr block: values section does not match header");
  }

  block.values.reserve(num_values);
  std::size_t at = 0;
  for (const std::uint32_t len : block.lengths) {
    std::uint32_t prev = 0;
    for (std::uint32_t j = 0; j < len; ++j) {
      prev = j == 0 ? deltas[at] : prev + deltas[at] + 1;
      block.values.push_back(prev);
      ++at;
    }
  }
  return block;
}

std::uint8_t rrr_block_codec(std::span<const std::uint8_t> bytes) {
  Cursor header(bytes);
  (void)header.take(kRrrBlockMagic.size());
  return header.u8();
}

}  // namespace eim::encoding
