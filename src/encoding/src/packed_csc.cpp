#include "eim/encoding/packed_csc.hpp"

#include <cmath>

#include "eim/support/error.hpp"

namespace eim::encoding {

using graph::EdgeId;
using graph::VertexId;

PackedCsc::PackedCsc(const graph::Graph& g, WeightStorage weight_storage)
    : n_(g.num_vertices()), m_(g.num_edges()), weight_storage_(weight_storage) {
  const auto& in = g.in();
  offsets_ = BitPackedArray(in.offsets.size(), support::bit_width_for_value(m_));
  for (std::size_t i = 0; i < in.offsets.size(); ++i) offsets_.set(i, in.offsets[i]);

  const std::uint64_t max_vertex = n_ == 0 ? 0 : n_ - 1;
  neighbors_ =
      BitPackedArray(in.targets.size(), support::bit_width_for_value(max_vertex));
  for (std::size_t i = 0; i < in.targets.size(); ++i) neighbors_.set(i, in.targets[i]);

  if (weight_storage_ == WeightStorage::RawFloat) {
    weights_.assign(g.all_in_weights().begin(), g.all_in_weights().end());
  } else {
    // Verify the implicit contract: every weight must equal 1/d^-(v).
    for (VertexId v = 0; v < n_; ++v) {
      const auto ws = g.in_weights(v);
      const auto d = static_cast<float>(ws.size());
      for (const graph::Weight w : ws) {
        EIM_CHECK_MSG(std::abs(w - 1.0f / d) < 1e-6f,
                      "ImplicitInDegree requires 1/d^- weights");
      }
    }
  }
}

std::uint64_t PackedCsc::packed_bytes() const noexcept {
  return offsets_.storage_bytes() + neighbors_.storage_bytes() +
         static_cast<std::uint64_t>(weights_.size()) * sizeof(graph::Weight);
}

std::uint64_t PackedCsc::raw_bytes() const noexcept {
  return static_cast<std::uint64_t>(n_ + 1) * sizeof(EdgeId) +
         static_cast<std::uint64_t>(m_) * sizeof(VertexId) +
         static_cast<std::uint64_t>(m_) * sizeof(graph::Weight);
}

}  // namespace eim::encoding
