#include "eim/encoding/varint.hpp"

#include "eim/support/error.hpp"

namespace eim::encoding {

void varint_append(std::vector<std::uint8_t>& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80u);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

std::vector<std::uint8_t> varint_encode(std::span<const std::uint64_t> values) {
  std::vector<std::uint8_t> out;
  out.reserve(values.size());
  for (const std::uint64_t v : values) varint_append(out, v);
  return out;
}

std::vector<std::uint64_t> varint_decode(std::span<const std::uint8_t> bytes) {
  std::vector<std::uint64_t> out;
  std::uint64_t value = 0;
  std::uint32_t shift = 0;
  bool in_progress = false;
  for (const std::uint8_t b : bytes) {
    if (shift >= 64) throw support::IoError("varint overflows 64 bits");
    value |= static_cast<std::uint64_t>(b & 0x7Fu) << shift;
    if (b & 0x80u) {
      shift += 7;
      in_progress = true;
    } else {
      out.push_back(value);
      value = 0;
      shift = 0;
      in_progress = false;
    }
  }
  if (in_progress) throw support::IoError("truncated varint stream");
  return out;
}

}  // namespace eim::encoding
