#include "eim/encoding/bitmap_set.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "eim/support/bits.hpp"
#include "eim/support/error.hpp"

namespace eim::encoding {

EncodedSet bitmap_encode_set(std::span<const std::uint32_t> sorted_set,
                             std::uint32_t universe) {
  assert(std::is_sorted(sorted_set.begin(), sorted_set.end()));
  for (const std::uint32_t v : sorted_set) {
    EIM_CHECK_MSG(v < universe, "set member outside universe");
  }

  EncodedSet out;
  out.member_count = static_cast<std::uint32_t>(sorted_set.size());

  const std::uint64_t bitmap_bytes = support::div_ceil<std::uint64_t>(universe, 8);
  const std::uint64_t list_bytes = sorted_set.size() * sizeof(std::uint32_t);

  if (bitmap_bytes < list_bytes) {
    out.representation = SetRepresentation::Bitmap;
    out.data.assign(bitmap_bytes, 0);
    for (const std::uint32_t v : sorted_set) {
      out.data[v >> 3] |= static_cast<std::uint8_t>(1u << (v & 7));
    }
  } else {
    out.representation = SetRepresentation::IdList;
    out.data.resize(list_bytes);
    // An empty set has null data() on both sides; memcpy forbids that even
    // for zero bytes.
    if (list_bytes != 0) {
      std::memcpy(out.data.data(), sorted_set.data(), list_bytes);
    }
  }
  return out;
}

std::vector<std::uint32_t> bitmap_decode_set(const EncodedSet& set,
                                             std::uint32_t universe) {
  std::vector<std::uint32_t> out;
  out.reserve(set.member_count);
  if (set.representation == SetRepresentation::IdList) {
    out.resize(set.member_count);
    EIM_CHECK_MSG(set.data.size() == set.member_count * sizeof(std::uint32_t),
                  "id-list payload size mismatch");
    if (!set.data.empty()) {
      std::memcpy(out.data(), set.data.data(), set.data.size());
    }
    return out;
  }
  EIM_CHECK_MSG(set.data.size() >= support::div_ceil<std::uint64_t>(universe, 8),
                "bitmap payload too small for universe");
  for (std::uint32_t v = 0; v < universe; ++v) {
    if (set.data[v >> 3] & (1u << (v & 7))) out.push_back(v);
  }
  EIM_CHECK_MSG(out.size() == set.member_count, "bitmap member count mismatch");
  return out;
}

bool bitmap_set_contains(const EncodedSet& set, std::uint32_t vertex) {
  if (set.representation == SetRepresentation::Bitmap) {
    const std::size_t byte = vertex >> 3;
    if (byte >= set.data.size()) return false;
    return (set.data[byte] >> (vertex & 7)) & 1u;
  }
  const auto* begin = reinterpret_cast<const std::uint32_t*>(set.data.data());
  const auto* end = begin + set.member_count;
  return std::binary_search(begin, end, vertex);
}

}  // namespace eim::encoding
