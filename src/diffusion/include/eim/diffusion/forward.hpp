// Forward diffusion simulation under the IC and LT models (§2.1).
//
// Runs the cascade forwards from a seed set and reports the number of
// activated vertices. The Monte-Carlo estimator built on top is the ground
// truth the paper's §4.1 "quality of solutions" claim is checked against:
// seed sets from eIM, the baselines, and the serial reference should reach
// statistically indistinguishable expected spread.
#pragma once

#include <cstdint>
#include <span>

#include "eim/graph/graph.hpp"
#include "eim/graph/weights.hpp"

namespace eim::diffusion {

/// One IC cascade: every newly activated u gets one chance to activate each
/// out-neighbor v with probability p_{uv}. Returns |activated| including the
/// seeds themselves.
[[nodiscard]] std::uint32_t simulate_ic(const graph::Graph& g,
                                        std::span<const graph::VertexId> seeds,
                                        std::uint64_t seed, std::uint64_t trial);

/// One LT cascade: every vertex draws a threshold tau uniformly in [0,1];
/// v activates once the weight-sum of its active in-neighbors reaches tau.
[[nodiscard]] std::uint32_t simulate_lt(const graph::Graph& g,
                                        std::span<const graph::VertexId> seeds,
                                        std::uint64_t seed, std::uint64_t trial);

struct SpreadEstimate {
  double mean = 0.0;
  double stddev = 0.0;
  std::uint32_t trials = 0;
};

/// Monte-Carlo estimate of E[I(S)] over `trials` independent cascades.
[[nodiscard]] SpreadEstimate estimate_spread(const graph::Graph& g,
                                             graph::DiffusionModel model,
                                             std::span<const graph::VertexId> seeds,
                                             std::uint32_t trials, std::uint64_t seed);

}  // namespace eim::diffusion
