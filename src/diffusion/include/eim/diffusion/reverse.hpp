// CPU-reference random reverse-reachable (RRR) set samplers.
//
// These are the textbook single-threaded samplers of Borgs et al. / Tang et
// al.: an RRR set for source s is the set of vertices that would activate s
// in a forward cascade, computed by running the diffusion *backwards* from
// s. The GPU-simulator kernels in eim/eim and eim/baselines must agree with
// these in distribution — that equivalence is property-tested.
//
// Conventions shared with the kernels:
//  * the returned set is sorted ascending by vertex id (§3.2's ordering that
//    enables binary search during seed selection);
//  * the source itself is included unless `eliminate_source` is set (§3.4).
#pragma once

#include <cstdint>
#include <vector>

#include "eim/graph/graph.hpp"
#include "eim/graph/weights.hpp"
#include "eim/support/rng.hpp"

namespace eim::diffusion {

/// Reusable sampler: owns an epoch-stamped visited array so repeated
/// sampling costs O(|set|) per draw instead of O(n). This is what the serial
/// IMM reference iterates millions of times.
class RrrSampler {
 public:
  RrrSampler(const graph::Graph& g, graph::DiffusionModel model,
             bool eliminate_source = false);

  /// Draw one RRR set from `source` into `out` (cleared first, sorted
  /// ascending on return).
  void sample_into(graph::VertexId source, support::RandomStream& rng,
                   std::vector<graph::VertexId>& out);

  [[nodiscard]] std::vector<graph::VertexId> sample(graph::VertexId source,
                                                    support::RandomStream& rng);

  [[nodiscard]] bool eliminates_source() const noexcept { return eliminate_source_; }

  /// Wire the bulk-draw refill wall timer (nullptr detaches); forwarded to
  /// the internal FloatDrawBuffer, which only times fills of at least
  /// FloatDrawBuffer::kTimedRefillDraws draws.
  void attach_refill_timer(support::profiler::WallTimer* timer) noexcept {
    draws_.attach_refill_timer(timer);
  }

 private:
  void sample_ic(graph::VertexId source, support::RandomStream& rng,
                 std::vector<graph::VertexId>& out);
  void sample_lt(graph::VertexId source, support::RandomStream& rng,
                 std::vector<graph::VertexId>& out);

  const graph::Graph* graph_;
  graph::DiffusionModel model_;
  bool eliminate_source_;
  std::vector<std::uint32_t> stamp_;  ///< visited iff stamp_[v] == epoch_
  std::uint32_t epoch_ = 0;
  support::FloatDrawBuffer draws_;    ///< bulk activation draws (IC BFS)
};

/// IC reverse sampler: probabilistic reverse BFS from `source`; each in-edge
/// (u -> source-side vertex) is flipped once with probability p_{uv}.
[[nodiscard]] std::vector<graph::VertexId> sample_rrr_ic(const graph::Graph& g,
                                                         graph::VertexId source,
                                                         support::RandomStream& rng,
                                                         bool eliminate_source = false);

/// LT reverse sampler: a backwards random walk — each visited vertex u
/// activates at most one in-neighbor, chosen with probability equal to its
/// edge weight (or none with the leftover probability); the walk stops on a
/// revisit or when nothing activates.
[[nodiscard]] std::vector<graph::VertexId> sample_rrr_lt(const graph::Graph& g,
                                                         graph::VertexId source,
                                                         support::RandomStream& rng,
                                                         bool eliminate_source = false);

/// Dispatch on the model.
[[nodiscard]] std::vector<graph::VertexId> sample_rrr(const graph::Graph& g,
                                                      graph::DiffusionModel model,
                                                      graph::VertexId source,
                                                      support::RandomStream& rng,
                                                      bool eliminate_source = false);

}  // namespace eim::diffusion
