#include "eim/diffusion/forward.hpp"

#include <vector>

#include "eim/support/error.hpp"
#include "eim/support/rng.hpp"
#include "eim/support/stats.hpp"

namespace eim::diffusion {

using graph::VertexId;
using support::RandomStream;

namespace {
constexpr std::uint64_t kIcForwardTag = 0x49434657u;  // "ICFW"
constexpr std::uint64_t kLtForwardTag = 0x4C544657u;  // "LTFW"
}  // namespace

std::uint32_t simulate_ic(const graph::Graph& g, std::span<const VertexId> seeds,
                          std::uint64_t seed, std::uint64_t trial) {
  RandomStream rng(seed, support::derive_stream(kIcForwardTag, trial));
  std::vector<bool> active(g.num_vertices(), false);
  std::vector<VertexId> frontier;
  std::uint32_t activated = 0;

  for (const VertexId s : seeds) {
    EIM_CHECK_MSG(s < g.num_vertices(), "seed out of range");
    if (!active[s]) {
      active[s] = true;
      frontier.push_back(s);
      ++activated;
    }
  }

  // Bulk-filled draws, one per inactive out-neighbor in stream order (the
  // same sequence next_float() would produce; see RrrSampler::sample_ic).
  // `pending` tracks the out-degree sum of not-yet-swept frontier vertices
  // so each refill is sized to the frontier's actual draw demand.
  support::FloatDrawBuffer draws;
  auto c = draws.begin_sample(rng);
  std::size_t pending = 0;
  for (const VertexId s : frontier) pending += g.out().neighbors(s).size();
  std::vector<VertexId> next;
  while (!frontier.empty()) {
    next.clear();
    for (const VertexId u : frontier) {
      const auto vs = g.out().neighbors(u);
      const auto ws = g.out_weights(u);
      c = draws.ensure(c, rng, vs.size(), pending);
      std::size_t t = 0;
      for (std::size_t j = 0; j < vs.size(); ++j) {
        const VertexId v = vs[j];
        if (active[v]) continue;
        // Strict <, matching the reverse samplers: zero-weight edges never
        // activate, and P(draw < w) = w on the 2^-24 draw grid.
        if (c.p[t++] < ws[j]) {
          active[v] = true;
          next.push_back(v);
          ++activated;
          pending += g.out().neighbors(v).size();
        }
      }
      c.p += t;
      c.avail -= t;
      pending -= vs.size();
    }
    frontier.swap(next);
  }
  draws.finish_sample(rng, c);
  return activated;
}

std::uint32_t simulate_lt(const graph::Graph& g, std::span<const VertexId> seeds,
                          std::uint64_t seed, std::uint64_t trial) {
  RandomStream rng(seed, support::derive_stream(kLtForwardTag, trial));
  const VertexId n = g.num_vertices();

  // Per-vertex thresholds drawn up front (the model's definition), as one
  // bulk fill — bit-identical to a next_float() per vertex.
  std::vector<float> threshold(n);
  rng.fill_floats(threshold);

  std::vector<bool> active(n, false);
  std::vector<float> influence_in(n, 0.0f);  ///< weight-sum of active in-nbrs
  std::vector<VertexId> frontier;
  std::uint32_t activated = 0;

  for (const VertexId s : seeds) {
    EIM_CHECK_MSG(s < n, "seed out of range");
    if (!active[s]) {
      active[s] = true;
      frontier.push_back(s);
      ++activated;
    }
  }

  std::vector<VertexId> next;
  while (!frontier.empty()) {
    next.clear();
    for (const VertexId u : frontier) {
      const auto vs = g.out().neighbors(u);
      const auto ws = g.out_weights(u);
      for (std::size_t j = 0; j < vs.size(); ++j) {
        const VertexId v = vs[j];
        if (active[v]) continue;
        influence_in[v] += ws[j];
        if (influence_in[v] >= threshold[v]) {
          active[v] = true;
          next.push_back(v);
          ++activated;
        }
      }
    }
    frontier.swap(next);
  }
  return activated;
}

SpreadEstimate estimate_spread(const graph::Graph& g, graph::DiffusionModel model,
                               std::span<const VertexId> seeds, std::uint32_t trials,
                               std::uint64_t seed) {
  EIM_CHECK_MSG(trials > 0, "need at least one trial");
  support::RunningStat stat;
  for (std::uint32_t t = 0; t < trials; ++t) {
    const std::uint32_t spread = model == graph::DiffusionModel::IndependentCascade
                                     ? simulate_ic(g, seeds, seed, t)
                                     : simulate_lt(g, seeds, seed, t);
    stat.push(static_cast<double>(spread));
  }
  return SpreadEstimate{stat.mean(), stat.stddev(), trials};
}

}  // namespace eim::diffusion
