#include "eim/diffusion/reverse.hpp"

#include <algorithm>

#include "eim/support/error.hpp"

namespace eim::diffusion {

using graph::VertexId;
using support::RandomStream;

RrrSampler::RrrSampler(const graph::Graph& g, graph::DiffusionModel model,
                       bool eliminate_source)
    : graph_(&g),
      model_(model),
      eliminate_source_(eliminate_source),
      stamp_(g.num_vertices(), 0) {}

void RrrSampler::sample_into(VertexId source, RandomStream& rng,
                             std::vector<VertexId>& out) {
  EIM_CHECK_MSG(source < graph_->num_vertices(), "source out of range");
  out.clear();
  ++epoch_;
  if (epoch_ == 0) {  // stamp wrapped: invalidate everything once
    std::fill(stamp_.begin(), stamp_.end(), 0u);
    epoch_ = 1;
  }
  if (model_ == graph::DiffusionModel::IndependentCascade) {
    sample_ic(source, rng, out);
  } else {
    sample_lt(source, rng, out);
  }
  if (eliminate_source_) {
    // The source is always out[0]: it was pushed first and the set is not
    // yet sorted.
    out.erase(out.begin());
  }
  std::sort(out.begin(), out.end());
}

std::vector<VertexId> RrrSampler::sample(VertexId source, RandomStream& rng) {
  std::vector<VertexId> out;
  sample_into(source, rng, out);
  return out;
}

void RrrSampler::sample_ic(VertexId source, RandomStream& rng,
                           std::vector<VertexId>& out) {
  const graph::Graph& g = *graph_;
  out.push_back(source);
  stamp_[source] = epoch_;

  // Hoisted out of the loop: `out.push_back` writes through a uint32
  // pointer, so without the locals the compiler must reload the stamp
  // base/epoch members on every edge (this loop is the profile's top bucket).
  std::uint32_t* const stamp = stamp_.data();
  const std::uint32_t epoch = epoch_;

  // Activation draws come from a bulk-filled buffer, one per unvisited
  // neighbor in stream order — the same sequence as a next_float() call per
  // edge. finish_sample rewinds `rng` to the draws actually consumed, so a
  // caller that keeps drawing from the stream afterwards sees the scalar
  // sequence (this sampler is the library's draw-order reference).
  auto c = draws_.begin_sample(rng);
  // In-degree sum of every queued-but-unswept vertex: the exact number of
  // draws the current frontier can still consume. Sizing refills to it
  // keeps fills demand-driven — a cascade that dies young never generates
  // more Philox blocks than the scalar loop would.
  std::size_t pending = g.in().neighbors(source).size();

  // Queue-as-set BFS, mirroring Algorithm 2's "the queue is the RRR set".
  for (std::size_t head = 0; head < out.size(); ++head) {
    const VertexId u = out[head];
    const auto ins = g.in().neighbors(u);
    const auto ws = g.in_weights(u);
    c = draws_.ensure(c, rng, ins.size(), pending);
    std::size_t t = 0;
    for (std::size_t j = 0; j < ins.size(); ++j) {
      const VertexId v = ins[j];
      if (stamp[v] == epoch) continue;
      // Strict <: next_float() lands exactly on a representable weight with
      // probability 2^-24 per draw, and `<=` let a weight-0.0 edge activate
      // on a zero draw. P(draw < w) = w exactly for the 2^-24-grid draws.
      if (c.p[t++] < ws[j]) {
        stamp[v] = epoch;
        out.push_back(v);
        pending += g.in().neighbors(v).size();
      }
    }
    c.p += t;
    c.avail -= t;
    pending -= ins.size();
  }
  draws_.finish_sample(rng, c);
}

void RrrSampler::sample_lt(VertexId source, RandomStream& rng,
                           std::vector<VertexId>& out) {
  const graph::Graph& g = *graph_;
  out.push_back(source);
  stamp_[source] = epoch_;

  // Backwards walk: at u, exactly one in-neighbor (or none) is responsible
  // for u's activation; it is chosen with probability equal to its weight.
  VertexId u = source;
  for (;;) {
    const auto ins = g.in().neighbors(u);
    const auto ws = g.in_weights(u);
    if (ins.empty()) break;
    const float tau = rng.next_float();
    float cumulative = 0.0f;
    VertexId chosen = graph::kInvalidVertex;
    for (std::size_t j = 0; j < ins.size(); ++j) {
      cumulative += ws[j];
      if (tau < cumulative) {
        chosen = ins[j];
        break;
      }
    }
    if (chosen == graph::kInvalidVertex) break;  // tau fell in the no-one gap
    if (stamp_[chosen] == epoch_) break;         // walk closed a loop
    stamp_[chosen] = epoch_;
    out.push_back(chosen);
    u = chosen;
  }
}

std::vector<VertexId> sample_rrr_ic(const graph::Graph& g, VertexId source,
                                    RandomStream& rng, bool eliminate_source) {
  RrrSampler sampler(g, graph::DiffusionModel::IndependentCascade, eliminate_source);
  return sampler.sample(source, rng);
}

std::vector<VertexId> sample_rrr_lt(const graph::Graph& g, VertexId source,
                                    RandomStream& rng, bool eliminate_source) {
  RrrSampler sampler(g, graph::DiffusionModel::LinearThreshold, eliminate_source);
  return sampler.sample(source, rng);
}

std::vector<VertexId> sample_rrr(const graph::Graph& g, graph::DiffusionModel model,
                                 VertexId source, RandomStream& rng,
                                 bool eliminate_source) {
  RrrSampler sampler(g, model, eliminate_source);
  return sampler.sample(source, rng);
}

}  // namespace eim::diffusion
