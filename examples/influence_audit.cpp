// Influence audit: score competing seed-selection strategies with the
// sketch-based estimator (imm::estimate_influence_ris) instead of slow
// forward Monte-Carlo — the "how good is this set?" workflow.
//
// Compares eIM's guaranteed seeds against the classical heuristics
// (max-degree, SingleDiscount, DegreeDiscountIC) and reports each
// estimate with its standard error, cross-checked once against forward
// simulation.
#include <cstdio>
#include <iostream>

#include "eim/baselines/heuristics.hpp"
#include "eim/diffusion/forward.hpp"
#include "eim/eim/pipeline.hpp"
#include "eim/graph/registry.hpp"
#include "eim/imm/influence.hpp"
#include "eim/support/table.hpp"

int main() {
  using namespace eim;
  constexpr auto kModel = graph::DiffusionModel::IndependentCascade;
  constexpr std::uint32_t kBudget = 20;
  constexpr std::uint64_t kSamples = 40'000;

  const auto spec = *graph::find_dataset("SD");
  graph::Graph g = graph::build_dataset(spec, kModel);
  std::printf("audit network: %.*s-like, %u vertices, %llu edges, k=%u\n\n",
              static_cast<int>(spec.name.size()), spec.name.data(), g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()), kBudget);

  // Candidate strategies.
  gpusim::Device device(gpusim::make_benchmark_device(512));
  imm::ImmParams params;
  params.k = kBudget;
  params.epsilon = 0.13;
  const auto eim_result = eim_impl::run_eim(device, g, kModel, params);

  struct Strategy {
    const char* name;
    std::vector<graph::VertexId> seeds;
  };
  const Strategy strategies[] = {
      {"eIM (IMM guarantee)", eim_result.seeds},
      {"DegreeDiscountIC", baselines::degree_discount_seeds(g, kBudget)},
      {"SingleDiscount", baselines::single_discount_seeds(g, kBudget)},
      {"max out-degree", baselines::max_degree_seeds(g, kBudget)},
  };

  support::TextTable table({"strategy", "RIS estimate", "std error", "forward MC"});
  for (const Strategy& s : strategies) {
    const auto ris = imm::estimate_influence_ris(g, kModel, s.seeds, kSamples);
    const auto mc = diffusion::estimate_spread(g, kModel, s.seeds, 200, 17);
    table.add_row({s.name, support::TextTable::num(ris.spread, 1),
                   support::TextTable::num(ris.standard_error, 1),
                   support::TextTable::num(mc.mean, 1)});
  }
  table.print(std::cout);
  std::printf(
      "\nRIS estimates use %llu reverse samples each — the same machinery the\n"
      "maximizers run on, so the audit is orders of magnitude cheaper than\n"
      "forward simulation at equal precision on large graphs.\n",
      static_cast<unsigned long long>(kSamples));
  return 0;
}
