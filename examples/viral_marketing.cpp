// Viral marketing (the IM problem's original motivation, §1): a brand can
// give free products to k customers of a social platform and wants the
// campaign to reach as many users as possible by word of mouth (the IC
// model).
//
// The example pits three strategies against each other on the same network
// and budget, scoring each with forward Monte-Carlo simulation:
//   * eIM            — the paper's algorithm,
//   * degree heuristic — "give it to the users with the most followers",
//   * random          — the do-nothing baseline.
// The gap between eIM and the degree heuristic is the value influence
// maximization adds over naive targeting.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <numeric>
#include <vector>

#include "eim/diffusion/forward.hpp"
#include "eim/eim/pipeline.hpp"
#include "eim/graph/registry.hpp"
#include "eim/support/rng.hpp"
#include "eim/support/table.hpp"

int main() {
  using namespace eim;
  constexpr std::uint32_t kBudget = 25;
  constexpr auto kModel = graph::DiffusionModel::IndependentCascade;

  // A scaled soc-Epinions1 stand-in: a trust network of product reviewers.
  const auto spec = *graph::find_dataset("SE");
  graph::Graph g = graph::build_dataset(spec, kModel);
  std::printf("campaign network: %.*s-like, %u users, %llu trust edges, budget k=%u\n\n",
              static_cast<int>(spec.name.size()), spec.name.data(), g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()), kBudget);

  // Strategy 1: eIM.
  gpusim::Device device(gpusim::make_benchmark_device(256));
  imm::ImmParams params;
  params.k = kBudget;
  params.epsilon = 0.13;
  const auto eim_result = eim_impl::run_eim(device, g, kModel, params);

  // Strategy 2: highest out-degree (most followers).
  std::vector<graph::VertexId> by_degree(g.num_vertices());
  std::iota(by_degree.begin(), by_degree.end(), 0u);
  std::sort(by_degree.begin(), by_degree.end(),
            [&](graph::VertexId a, graph::VertexId b) {
              return g.out_degree(a) != g.out_degree(b)
                         ? g.out_degree(a) > g.out_degree(b)
                         : a < b;
            });
  const std::vector<graph::VertexId> degree_seeds(by_degree.begin(),
                                                  by_degree.begin() + kBudget);

  // Strategy 3: random pick.
  support::RandomStream rng(2026, 1);
  std::vector<graph::VertexId> random_seeds;
  while (random_seeds.size() < kBudget) {
    const auto v = rng.next_below(g.num_vertices());
    if (std::find(random_seeds.begin(), random_seeds.end(), v) == random_seeds.end()) {
      random_seeds.push_back(v);
    }
  }

  // Score every strategy with the same forward simulator.
  constexpr std::uint32_t kTrials = 400;
  const auto score_eim = diffusion::estimate_spread(g, kModel, eim_result.seeds, kTrials, 3);
  const auto score_deg = diffusion::estimate_spread(g, kModel, degree_seeds, kTrials, 3);
  const auto score_rnd = diffusion::estimate_spread(g, kModel, random_seeds, kTrials, 3);

  support::TextTable table({"strategy", "expected reach", "% of network"});
  auto row = [&](const char* strategy, const diffusion::SpreadEstimate& s) {
    table.add_row({strategy, support::TextTable::num(s.mean, 1),
                   support::TextTable::num(100.0 * s.mean / g.num_vertices(), 2)});
  };
  row("eIM (influence maximization)", score_eim);
  row("top out-degree heuristic", score_deg);
  row("random targeting", score_rnd);
  table.print(std::cout);

  std::printf("\neIM solved the campaign in %.2f ms of modeled GPU time (%llu RRR sets).\n",
              eim_result.device_seconds * 1e3,
              static_cast<unsigned long long>(eim_result.num_sets));
  return 0;
}
