// Memory-budget survival: the paper's scalability story in one program.
//
// The same workload is run against the same simulated GPU at a shrinking
// memory budget, once with gIM's design (uncompressed, padded slot array,
// dynamic in-kernel allocation) and once with eIM's (log-encoded R, pooled
// global-memory queues, source elimination). gIM starts returning OOM while
// eIM keeps completing — the effect behind the OOM cells of Tables 2-5 and
// the com-Amazon column of Fig. 8.
#include <cstdio>
#include <iostream>

#include "eim/baselines/gim.hpp"
#include "eim/eim/pipeline.hpp"
#include "eim/graph/registry.hpp"
#include "eim/support/table.hpp"

int main() {
  using namespace eim;
  constexpr auto kModel = graph::DiffusionModel::IndependentCascade;

  // The com-Amazon stand-in: near-critical cascades make its RRR sets huge,
  // which is exactly why gIM cannot hold them.
  const auto spec = *graph::find_dataset("CA");
  graph::Graph g = graph::build_dataset(spec, kModel);
  imm::ImmParams params;
  params.k = 20;
  params.epsilon = 0.2;

  std::printf("workload: %.*s-like graph (%u vertices), k=%u, eps=%.2f\n\n",
              static_cast<int>(spec.name.size()), spec.name.data(), g.num_vertices(),
              params.k, params.epsilon);

  support::TextTable table(
      {"device memory", "gIM", "eIM", "eIM peak MB", "eIM R saved"});

  for (const std::uint64_t budget_mb : {512u, 256u, 128u, 64u, 32u}) {
    std::string gim_cell;
    std::string eim_cell;
    std::string eim_peak;
    std::string eim_saved;

    {
      gpusim::Device device(gpusim::make_benchmark_device(budget_mb));
      try {
        const auto r = baselines::run_gim(device, g, kModel, params);
        gim_cell = support::TextTable::num(r.device_seconds * 1e3, 2) + " ms";
      } catch (const support::DeviceOutOfMemoryError&) {
        gim_cell = "OOM";
      }
    }
    {
      gpusim::Device device(gpusim::make_benchmark_device(budget_mb));
      try {
        const auto r = eim_impl::run_eim(device, g, kModel, params);
        eim_cell = support::TextTable::num(r.device_seconds * 1e3, 2) + " ms";
        eim_peak = support::TextTable::num(
            static_cast<double>(r.peak_device_bytes) / 1e6, 1);
        eim_saved = support::TextTable::num(
                        100.0 * (1.0 - static_cast<double>(r.rrr_bytes) /
                                           static_cast<double>(r.rrr_raw_bytes)),
                        1) +
                    "%";
      } catch (const support::DeviceOutOfMemoryError&) {
        eim_cell = "OOM";
        eim_peak = "-";
        eim_saved = "-";
      }
    }
    table.add_row({std::to_string(budget_mb) + " MB", gim_cell, eim_cell, eim_peak,
                   eim_saved});
  }

  table.print(std::cout);
  std::printf(
      "\ngIM's padded slots and allocation fragmentation exhaust small budgets;\n"
      "eIM's log-encoded R and pooled queues keep fitting (paper §3.1-§3.2).\n");
  return 0;
}
