// Quickstart: find the k most influential vertices of a network with eIM.
//
// Usage:
//   quickstart [path/to/snap-edge-list.txt] [k]
//
// Without arguments a scaled stand-in for SNAP's wiki-Vote is generated, so
// the example runs offline. With a path, any SNAP-format edge list (e.g. a
// real download of the paper's Table 1 datasets) is used instead.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "eim/diffusion/forward.hpp"
#include "eim/eim/pipeline.hpp"
#include "eim/graph/io.hpp"
#include "eim/graph/registry.hpp"

int main(int argc, char** argv) {
  using namespace eim;

  // 1. Obtain a graph.
  graph::EdgeList edges;
  std::string name;
  if (argc > 1) {
    name = argv[1];
    edges = graph::load_snap_text_file(name);
  } else {
    const auto spec = *graph::find_dataset("WV");
    name = std::string(spec.name) + " (synthetic stand-in)";
    edges = graph::build_dataset_edges(spec);
  }
  const auto k = static_cast<std::uint32_t>(argc > 2 ? std::atoi(argv[2]) : 10);

  // 2. Weight it for the Independent Cascade model (p_uv = 1/d^-(v)).
  graph::Graph g = graph::Graph::from_edge_list(edges);
  graph::assign_weights(g, graph::DiffusionModel::IndependentCascade);
  std::printf("graph: %s — %u vertices, %llu edges\n", name.c_str(), g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));

  // 3. Run eIM on the simulated GPU (all of the paper's optimizations on).
  gpusim::Device device(gpusim::make_benchmark_device(256));
  imm::ImmParams params;
  params.k = k;
  params.epsilon = 0.13;  // looser than the paper's 0.05 so this runs in ~1 s
  const eim_impl::EimResult result = eim_impl::run_eim(
      device, g, graph::DiffusionModel::IndependentCascade, params);

  std::printf("\nseed set (k=%u):", k);
  for (const auto v : result.seeds) std::printf(" %u", v);
  std::printf("\nRRR sets generated: %llu (%llu vertices stored)\n",
              static_cast<unsigned long long>(result.num_sets),
              static_cast<unsigned long long>(result.total_elements));
  std::printf("modeled device time: %.3f ms (kernel %.3f ms, PCIe %.3f ms)\n",
              result.device_seconds * 1e3, result.kernel_seconds * 1e3,
              result.transfer_seconds * 1e3);
  std::printf("RRR memory: %.2f MB log-encoded vs %.2f MB raw (%.1f%% saved)\n",
              static_cast<double>(result.rrr_bytes) / 1e6,
              static_cast<double>(result.rrr_raw_bytes) / 1e6,
              100.0 * (1.0 - static_cast<double>(result.rrr_bytes) /
                                 static_cast<double>(result.rrr_raw_bytes)));

  // 4. Validate the seeds with forward Monte-Carlo simulation.
  const auto spread = diffusion::estimate_spread(
      g, graph::DiffusionModel::IndependentCascade, result.seeds, 300, 7);
  std::printf("expected influence spread: %.1f vertices (+-%.1f) of %u\n", spread.mean,
              spread.stddev, g.num_vertices());
  return 0;
}
