// Outbreak detection / network monitoring under the Linear Threshold model
// (one of the IM applications cited in §1: Leskovec et al.'s cost-effective
// outbreak detection).
//
// Idea: rumors (or contaminations) start at random places and spread when
// enough of a node's neighbors have adopted them — the LT model. Placing
// monitors on an influence-maximizing seed set of the *reverse* spread
// gives locations that the largest expected fraction of outbreaks will
// reach. This example places k monitors with eIM/LT and then measures, by
// simulation, how many random single-source outbreaks eventually hit a
// monitor.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "eim/diffusion/reverse.hpp"
#include "eim/eim/pipeline.hpp"
#include "eim/graph/registry.hpp"
#include "eim/support/rng.hpp"

int main() {
  using namespace eim;
  constexpr std::uint32_t kMonitors = 20;
  constexpr auto kModel = graph::DiffusionModel::LinearThreshold;

  // Scaled wiki-Vote stand-in: an editor-trust network where positions and
  // rumors spread by peer adoption — classic LT territory.
  const auto spec = *graph::find_dataset("WV");
  graph::Graph g = graph::build_dataset(spec, kModel);
  std::printf("monitoring network: %.*s-like, %u nodes, %llu edges, %u monitors\n",
              static_cast<int>(spec.name.size()), spec.name.data(), g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()), kMonitors);

  // Place monitors with eIM under LT.
  gpusim::Device device(gpusim::make_benchmark_device(256));
  imm::ImmParams params;
  params.k = kMonitors;
  params.epsilon = 0.13;
  const auto result = eim_impl::run_eim(device, g, kModel, params);
  std::printf("monitor placement:");
  for (const auto v : result.seeds) std::printf(" %u", v);
  std::printf("\nmodeled GPU time: %.2f ms, %llu RRR walks generated\n\n",
              result.device_seconds * 1e3,
              static_cast<unsigned long long>(result.num_sets));

  // Evaluate: an RRR set from source s under LT is exactly the set of
  // vertices whose adoption would reach s, so "outbreak from a random
  // source reaches a monitor" == "monitor covers the source's RRR set in
  // the forward direction". We brute-force it with forward logic instead:
  // seed the outbreak at a random vertex, run LT, check monitor hits.
  support::RandomStream rng(7, 99);
  constexpr int kOutbreaks = 2000;
  int detected = 0;
  std::vector<bool> is_monitor(g.num_vertices(), false);
  for (const auto v : result.seeds) is_monitor[v] = true;

  diffusion::RrrSampler outbreak(g, kModel);  // reverse view of one outbreak
  for (int i = 0; i < kOutbreaks; ++i) {
    // Sampling the reverse walk from a random start and checking monitor
    // membership is distributionally identical to running the outbreak
    // forward from a random source and asking "did it reach a monitor".
    const auto trace = outbreak.sample(rng.next_below(g.num_vertices()), rng);
    detected += std::any_of(trace.begin(), trace.end(),
                            [&](graph::VertexId v) { return is_monitor[v]; });
  }
  std::printf("outbreak detection rate: %.1f%% of %d random outbreaks reached a monitor\n",
              100.0 * detected / kOutbreaks, kOutbreaks);
  std::printf("(coverage estimate from eIM's own RRR sets: %.1f%%)\n",
              100.0 * result.estimated_spread / g.num_vertices());
  return 0;
}
