#include "eim/baselines/heuristics.hpp"

#include <gtest/gtest.h>

#include <set>

#include "eim/diffusion/forward.hpp"
#include "eim/graph/generators.hpp"
#include "eim/graph/weights.hpp"
#include "eim/imm/imm.hpp"
#include "eim/support/error.hpp"

namespace eim::baselines {
namespace {

using graph::DiffusionModel;
using graph::Graph;
using graph::VertexId;

Graph social(VertexId n = 500) {
  Graph g = Graph::from_edge_list(graph::barabasi_albert(n, 3, 0.3, 7));
  graph::assign_weights(g, DiffusionModel::IndependentCascade);
  return g;
}

TEST(MaxDegree, PicksTheHubFirst) {
  Graph g = Graph::from_edge_list(graph::star_graph(20));
  graph::assign_weights(g, DiffusionModel::IndependentCascade);
  EXPECT_EQ(max_degree_seeds(g, 1)[0], 0u);
}

TEST(MaxDegree, ReturnsKDistinct) {
  const Graph g = social();
  const auto seeds = max_degree_seeds(g, 12);
  EXPECT_EQ(std::set<VertexId>(seeds.begin(), seeds.end()).size(), 12u);
}

TEST(SingleDiscount, AvoidsRedundantNeighborHubs) {
  // Two hubs pointing at the same leaves: after picking hub A, hub B's
  // discounted degree drops if its audience overlaps... construct: A->1..5,
  // B->1..5, C->6..8. Max-degree picks A then B; single-discount should
  // still pick A then B here (discount applies to in-neighbors of chosen).
  // Use a sharper construction: A -> {1,2,3}, B -> {A,1,2}, C -> {4,5}.
  graph::EdgeList edges(10);
  for (VertexId v : {1u, 2u, 3u}) edges.add_edge(0, v);   // A = 0, degree 3
  edges.add_edge(6, 0);                                    // B = 6 -> A
  edges.add_edge(6, 1);
  edges.add_edge(6, 2);                                    // B degree 3
  edges.add_edge(7, 4);
  edges.add_edge(7, 5);                                    // C = 7, degree 2
  Graph g = Graph::from_edge_list(edges);
  graph::assign_weights(g, DiffusionModel::IndependentCascade);

  const auto seeds = single_discount_seeds(g, 2);
  EXPECT_EQ(seeds[0], 0u);  // tie A/B broken toward lower id
  // After choosing A, B's discount: B->A edge discounts B (A chosen):
  // B degree 3 - 1 = 2, tied with C; tie to lower id -> B(6).
  EXPECT_EQ(seeds[1], 6u);
}

TEST(DegreeDiscount, ReturnsKDistinctInRange) {
  const Graph g = social();
  const auto seeds = degree_discount_seeds(g, 15);
  EXPECT_EQ(std::set<VertexId>(seeds.begin(), seeds.end()).size(), 15u);
  for (const VertexId v : seeds) EXPECT_LT(v, g.num_vertices());
}

TEST(Heuristics, ImmBeatsOrMatchesAllHeuristics) {
  // The guarantee should show: IMM's spread >= every heuristic's (within
  // Monte-Carlo noise).
  const Graph g = social(800);
  imm::ImmParams params;
  params.k = 10;
  params.epsilon = 0.25;
  const auto imm_result = imm::run_imm_serial(g, DiffusionModel::IndependentCascade, params);

  const auto score = [&](const std::vector<VertexId>& seeds) {
    return diffusion::estimate_spread(g, DiffusionModel::IndependentCascade, seeds, 400, 3)
        .mean;
  };
  const double imm_spread = score(imm_result.seeds);
  EXPECT_GE(imm_spread * 1.05 + 1.0, score(max_degree_seeds(g, 10)));
  EXPECT_GE(imm_spread * 1.05 + 1.0, score(single_discount_seeds(g, 10)));
  EXPECT_GE(imm_spread * 1.05 + 1.0, score(degree_discount_seeds(g, 10)));
}

TEST(Heuristics, DiscountsAtLeastMatchPlainDegreeOnSpread) {
  const Graph g = social(800);
  const auto score = [&](const std::vector<VertexId>& seeds) {
    return diffusion::estimate_spread(g, DiffusionModel::IndependentCascade, seeds, 400, 9)
        .mean;
  };
  // Discount variants were designed to not be worse than max-degree.
  EXPECT_GE(score(degree_discount_seeds(g, 10)) * 1.10 + 1.0,
            score(max_degree_seeds(g, 10)));
}

TEST(Heuristics, RejectBadK) {
  const Graph g = social(50);
  EXPECT_THROW((void)max_degree_seeds(g, 0), support::Error);
  EXPECT_THROW((void)single_discount_seeds(g, 51), support::Error);
  EXPECT_THROW((void)degree_discount_seeds(g, 0), support::Error);
}

}  // namespace
}  // namespace eim::baselines
