#include "eim/baselines/greedy_mc.hpp"

#include <gtest/gtest.h>

#include <set>

#include "eim/graph/generators.hpp"
#include "eim/imm/imm.hpp"
#include "eim/support/error.hpp"

namespace eim::baselines {
namespace {

using graph::DiffusionModel;
using graph::Graph;
using graph::VertexId;

Graph make_graph(VertexId n = 60) {
  Graph g = Graph::from_edge_list(graph::barabasi_albert(n, 2, 0.3, 9));
  graph::assign_weights(g, DiffusionModel::IndependentCascade);
  return g;
}

TEST(GreedyMc, ReturnsKDistinctSeeds) {
  const Graph g = make_graph();
  const auto r = greedy_mc(g, DiffusionModel::IndependentCascade, 4, 40);
  ASSERT_EQ(r.seeds.size(), 4u);
  EXPECT_EQ(std::set<VertexId>(r.seeds.begin(), r.seeds.end()).size(), 4u);
  EXPECT_GT(r.estimated_spread, 0.0);
  EXPECT_GT(r.simulations, 0u);
}

TEST(GreedyMc, StarHubIsFirstPick) {
  Graph g = Graph::from_edge_list(graph::star_graph(30));
  graph::assign_weights(g, DiffusionModel::IndependentCascade);
  const auto r = greedy_mc(g, DiffusionModel::IndependentCascade, 1, 50);
  EXPECT_EQ(r.seeds[0], 0u);  // the hub dominates every leaf
}

TEST(GreedyMc, SpreadGrowsWithK) {
  const Graph g = make_graph();
  const auto small = greedy_mc(g, DiffusionModel::IndependentCascade, 2, 40);
  const auto large = greedy_mc(g, DiffusionModel::IndependentCascade, 6, 40);
  EXPECT_GE(large.estimated_spread, small.estimated_spread);
}

TEST(GreedyMc, RejectsBadArguments) {
  const Graph g = make_graph();
  EXPECT_THROW((void)greedy_mc(g, DiffusionModel::IndependentCascade, 0, 10),
               support::Error);
  EXPECT_THROW((void)greedy_mc(g, DiffusionModel::IndependentCascade, 4, 0),
               support::Error);
}

TEST(Celf, MatchesGreedySeeds) {
  // Same trials + same RNG streams: CELF is an exact optimization of greedy.
  const Graph g = make_graph();
  const auto plain = greedy_mc(g, DiffusionModel::IndependentCascade, 4, 40);
  const auto lazy = celf(g, DiffusionModel::IndependentCascade, 4, 40);
  EXPECT_EQ(lazy.seeds, plain.seeds);
}

TEST(Celf, UsesFewerSimulations) {
  const Graph g = make_graph(100);
  const auto plain = greedy_mc(g, DiffusionModel::IndependentCascade, 5, 30);
  const auto lazy = celf(g, DiffusionModel::IndependentCascade, 5, 30);
  EXPECT_LT(lazy.simulations, plain.simulations);
}

TEST(Celf, WorksUnderLt) {
  Graph g = Graph::from_edge_list(graph::barabasi_albert(60, 2, 0.3, 9));
  graph::assign_weights(g, DiffusionModel::LinearThreshold);
  const auto r = celf(g, DiffusionModel::LinearThreshold, 3, 30);
  EXPECT_EQ(r.seeds.size(), 3u);
}

TEST(GreedyMc, AgreesWithImmOnSeedQuality) {
  // On a small graph the MC greedy and IMM should find seed sets of
  // near-identical expected spread (both are (1-1/e-eps) approximations).
  const Graph g = make_graph(80);
  const auto mc = greedy_mc(g, DiffusionModel::IndependentCascade, 3, 200);

  imm::ImmParams params;
  params.k = 3;
  params.epsilon = 0.2;
  const auto sketch = imm::run_imm_serial(g, DiffusionModel::IndependentCascade, params);
  EXPECT_NEAR(sketch.estimated_spread, mc.estimated_spread,
              0.25 * mc.estimated_spread + 2.0);
}

}  // namespace
}  // namespace eim::baselines
