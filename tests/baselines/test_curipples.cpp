#include "eim/baselines/curipples.hpp"

#include <gtest/gtest.h>

#include "eim/eim/pipeline.hpp"
#include "eim/graph/generators.hpp"
#include "eim/imm/imm.hpp"

namespace eim::baselines {
namespace {

using graph::DiffusionModel;
using graph::Graph;
using graph::VertexId;

Graph make_graph(DiffusionModel model = DiffusionModel::IndependentCascade,
                 VertexId n = 500) {
  Graph g = Graph::from_edge_list(graph::barabasi_albert(n, 3, 0.3, 7));
  graph::assign_weights(g, model);
  return g;
}

imm::ImmParams make_params(std::uint32_t k = 8, double eps = 0.3) {
  imm::ImmParams p;
  p.k = k;
  p.epsilon = eps;
  return p;
}

TEST(RunCuRipples, MatchesSerialReferenceExactly) {
  const Graph g = make_graph();
  imm::ImmParams params = make_params();
  gpusim::Device device(gpusim::make_benchmark_device(256));
  const auto cur = run_curipples(device, g, DiffusionModel::IndependentCascade, params);

  params.eliminate_sources = false;
  const auto serial = imm::run_imm_serial(g, DiffusionModel::IndependentCascade, params);
  EXPECT_EQ(cur.seeds, serial.seeds);
  EXPECT_EQ(cur.num_sets, serial.num_sets);
}

TEST(RunCuRipples, TransfersDominateTime) {
  const Graph g = make_graph();
  gpusim::Device device(gpusim::make_benchmark_device(256));
  const auto r =
      run_curipples(device, g, DiffusionModel::IndependentCascade, make_params());
  EXPECT_GT(r.transfer_seconds, 0.0);
  EXPECT_GT(r.device_seconds, r.kernel_seconds);  // transfers add real cost
}

TEST(RunCuRipples, EimIsOrdersOfMagnitudeFaster) {
  const Graph g = make_graph(DiffusionModel::IndependentCascade, 1000);
  const imm::ImmParams params = make_params(20, 0.15);

  gpusim::Device d1(gpusim::make_benchmark_device(512));
  gpusim::Device d2(gpusim::make_benchmark_device(512));
  eim_impl::EimOptions opts;
  opts.sampler_blocks = d1.spec().num_sms * 4;
  const auto eim_r = run_eim(d1, g, DiffusionModel::IndependentCascade, params, opts);
  const auto cur_r = run_curipples(d2, g, DiffusionModel::IndependentCascade, params);
  EXPECT_GT(cur_r.device_seconds / eim_r.device_seconds, 10.0);
}

TEST(RunCuRipples, MoreCpuCoresHelp) {
  const Graph g = make_graph();
  CuRipplesConfig few;
  few.cpu_cores = 2;
  CuRipplesConfig many;
  many.cpu_cores = 32;
  gpusim::Device d1(gpusim::make_benchmark_device(256));
  gpusim::Device d2(gpusim::make_benchmark_device(256));
  const auto slow =
      run_curipples(d1, g, DiffusionModel::IndependentCascade, make_params(), few);
  const auto fast =
      run_curipples(d2, g, DiffusionModel::IndependentCascade, make_params(), many);
  EXPECT_EQ(slow.seeds, fast.seeds);
  EXPECT_GT(slow.device_seconds, fast.device_seconds);
}

TEST(RunCuRipples, HostMemoryHoldsRrrSets) {
  // R never counts against the device budget: a tiny device can still run
  // a workload whose R would not fit on it (cuRipples' scaling advantage).
  const Graph g = make_graph();
  gpusim::Device device(gpusim::make_benchmark_device(2));
  const auto r = run_curipples(device, g, DiffusionModel::IndependentCascade,
                               make_params(8, 0.2));
  EXPECT_EQ(r.seeds.size(), 8u);
  EXPECT_GT(r.rrr_bytes, 0u);
}

TEST(RunCuRipples, WorksUnderLt) {
  const Graph g = make_graph(DiffusionModel::LinearThreshold);
  gpusim::Device device(gpusim::make_benchmark_device(256));
  const auto r = run_curipples(device, g, DiffusionModel::LinearThreshold, make_params());
  EXPECT_EQ(r.seeds.size(), 8u);
}

TEST(RunCuRipples, RejectsZeroCores) {
  const Graph g = make_graph();
  gpusim::Device device(gpusim::make_benchmark_device(256));
  CuRipplesConfig config;
  config.cpu_cores = 0;
  EXPECT_THROW((void)run_curipples(device, g, DiffusionModel::IndependentCascade,
                                   make_params(), config),
               support::Error);
}

}  // namespace
}  // namespace eim::baselines
