#include "eim/baselines/gim.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "eim/eim/pipeline.hpp"
#include "eim/graph/generators.hpp"
#include "eim/imm/imm.hpp"

namespace eim::baselines {
namespace {

using graph::DiffusionModel;
using graph::Graph;
using graph::VertexId;

Graph make_graph(DiffusionModel model = DiffusionModel::IndependentCascade,
                 VertexId n = 500) {
  Graph g = Graph::from_edge_list(graph::barabasi_albert(n, 3, 0.3, 7));
  graph::assign_weights(g, model);
  return g;
}

imm::ImmParams make_params(std::uint32_t k = 8, double eps = 0.3) {
  imm::ImmParams p;
  p.k = k;
  p.epsilon = eps;
  return p;
}

TEST(RunGim, ZeroWeightEdgesNeverActivate) {
  // Regression for the `<=` comparison bug in gIM's BFS: with every weight
  // forced to 0.0 each RRR set stays the singleton {source}, so the flat
  // array holds exactly one element per set.
  Graph g = Graph::from_edge_list(graph::complete_graph(32));
  graph::assign_weights(g, DiffusionModel::IndependentCascade);
  std::fill(g.mutable_in_weights().begin(), g.mutable_in_weights().end(), 0.0f);
  g.sync_out_weights_from_in();
  gpusim::Device device(gpusim::make_benchmark_device(256));
  const auto r = run_gim(device, g, DiffusionModel::IndependentCascade, make_params(4));
  EXPECT_GT(r.num_sets, 0u);
  EXPECT_EQ(r.total_elements, r.num_sets);
}

TEST(RunGim, MatchesSerialReferenceExactly) {
  // gIM has no source elimination, so its collection equals the serial
  // reference's and the greedy answer must be bit-identical.
  const Graph g = make_graph();
  imm::ImmParams params = make_params();
  gpusim::Device device(gpusim::make_benchmark_device(256));
  const auto gim = run_gim(device, g, DiffusionModel::IndependentCascade, params);

  params.eliminate_sources = false;
  const auto serial = imm::run_imm_serial(g, DiffusionModel::IndependentCascade, params);
  EXPECT_EQ(gim.seeds, serial.seeds);
  EXPECT_EQ(gim.num_sets, serial.num_sets);
  EXPECT_EQ(gim.total_elements, serial.total_elements);
}

TEST(RunGim, StoresRrrSetsUncompressed) {
  const Graph g = make_graph();
  gpusim::Device device(gpusim::make_benchmark_device(256));
  const auto r = run_gim(device, g, DiffusionModel::IndependentCascade, make_params());
  EXPECT_EQ(r.rrr_bytes, r.rrr_raw_bytes);
  EXPECT_EQ(r.network_bytes, r.network_raw_bytes);
}

TEST(RunGim, CountsDynamicAllocationsOnDeepTraversals) {
  // A near-critical sparse graph produces sets larger than a tiny shared
  // queue, forcing spills (and their mallocs).
  Graph g = Graph::from_edge_list(graph::erdos_renyi(2000, 5600, 3));
  graph::assign_weights(g, DiffusionModel::IndependentCascade);
  gpusim::Device device(gpusim::make_benchmark_device(512));
  GimConfig config;
  config.shared_queue_entries = 16;
  const auto r =
      run_gim(device, g, DiffusionModel::IndependentCascade, make_params(), config);
  EXPECT_GT(r.device_mallocs, 0u);
}

TEST(RunGim, SmallSharedQueueCostsMoreTime) {
  Graph g = Graph::from_edge_list(graph::erdos_renyi(2000, 5600, 3));
  graph::assign_weights(g, DiffusionModel::IndependentCascade);
  GimConfig roomy;
  roomy.shared_queue_entries = 1u << 20;  // never spills
  GimConfig cramped;
  cramped.shared_queue_entries = 16;  // spills constantly

  gpusim::Device d1(gpusim::make_benchmark_device(512));
  gpusim::Device d2(gpusim::make_benchmark_device(512));
  const auto fast = run_gim(d1, g, DiffusionModel::IndependentCascade, make_params(), roomy);
  const auto slow =
      run_gim(d2, g, DiffusionModel::IndependentCascade, make_params(), cramped);
  EXPECT_EQ(fast.seeds, slow.seeds);  // cost model only
  EXPECT_GT(slow.device_seconds, fast.device_seconds);
}

TEST(RunGim, FragmentationTriggersOom) {
  Graph g = Graph::from_edge_list(graph::erdos_renyi(4000, 11'000, 5));
  graph::assign_weights(g, DiffusionModel::IndependentCascade);
  gpusim::Device device(gpusim::make_benchmark_device(4));  // 4 MB budget
  GimConfig config;
  config.shared_queue_entries = 16;
  EXPECT_THROW((void)run_gim(device, g, DiffusionModel::IndependentCascade,
                             make_params(8, 0.15), config),
               support::DeviceOutOfMemoryError);
}

TEST(RunGim, FragmentationIsReleasedAfterFailure) {
  Graph g = Graph::from_edge_list(graph::erdos_renyi(4000, 11'000, 5));
  graph::assign_weights(g, DiffusionModel::IndependentCascade);
  gpusim::Device device(gpusim::make_benchmark_device(4));
  GimConfig config;
  config.shared_queue_entries = 16;
  try {
    (void)run_gim(device, g, DiffusionModel::IndependentCascade, make_params(8, 0.15),
                  config);
  } catch (const support::DeviceOutOfMemoryError&) {
  }
  // Context teardown reclaims everything: the device is reusable.
  EXPECT_EQ(device.memory().allocated_bytes(), 0u);
  const Graph small = make_graph();
  EXPECT_NO_THROW(
      (void)run_gim(device, small, DiffusionModel::IndependentCascade, make_params()));
}

TEST(RunGim, WorksUnderLt) {
  const Graph g = make_graph(DiffusionModel::LinearThreshold);
  gpusim::Device device(gpusim::make_benchmark_device(256));
  const auto r = run_gim(device, g, DiffusionModel::LinearThreshold, make_params());
  EXPECT_EQ(r.seeds.size(), 8u);
  EXPECT_GT(r.device_seconds, 0.0);
}

TEST(RunGim, EimBeatsGimAtTightEpsilon) {
  // The headline comparison: at large theta eIM's thread-based selection
  // and allocation-free sampling win.
  const Graph g = make_graph(DiffusionModel::IndependentCascade, 1000);
  const imm::ImmParams params = make_params(20, 0.12);

  gpusim::Device d1(gpusim::make_benchmark_device(512));
  gpusim::Device d2(gpusim::make_benchmark_device(512));
  eim_impl::EimOptions opts;
  opts.sampler_blocks = d1.spec().num_sms * 4;
  const auto eim_r = run_eim(d1, g, DiffusionModel::IndependentCascade, params, opts);
  const auto gim_r = run_gim(d2, g, DiffusionModel::IndependentCascade, params);
  EXPECT_LT(eim_r.device_seconds, gim_r.device_seconds);
}

}  // namespace
}  // namespace eim::baselines
