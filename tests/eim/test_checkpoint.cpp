// Crash-safe checkpoint/resume (eim/checkpoint.hpp, docs/RESILIENCE.md).
//
// The headline test sweeps a scripted process abort over EVERY kernel-launch
// ordinal of a run and proves each interrupted run resumes from its last
// round-boundary snapshot to the bit-identical seed set, spread estimate,
// and collection shape of the uninterrupted reference.
#include "eim/eim/checkpoint.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "eim/eim/multi_gpu.hpp"
#include "eim/eim/pipeline.hpp"
#include "eim/graph/generators.hpp"
#include "eim/support/atomic_write.hpp"
#include "eim/support/error.hpp"
#include "eim/support/metrics.hpp"
#include "eim/support/snapshot.hpp"

namespace eim::eim_impl {
namespace {

using graph::DiffusionModel;
using graph::Graph;
using support::snapshot::SnapshotCorruptError;

Graph make_graph(DiffusionModel model = DiffusionModel::IndependentCascade) {
  Graph g = Graph::from_edge_list(graph::barabasi_albert(300, 3, 0.3, 7));
  graph::assign_weights(g, model);
  return g;
}

imm::ImmParams make_params() {
  imm::ImmParams p;
  p.k = 4;
  p.epsilon = 0.4;
  return p;
}

struct TempDir {
  std::string path;
  explicit TempDir(const std::string& stem)
      : path(::testing::TempDir() + stem + "_" + std::to_string(::getpid())) {
    std::filesystem::remove_all(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

struct DevicePool {
  std::vector<std::unique_ptr<gpusim::Device>> owned;
  std::vector<gpusim::Device*> ptrs;
  explicit DevicePool(std::uint32_t n, std::uint64_t mb = 256) {
    for (std::uint32_t i = 0; i < n; ++i) {
      owned.push_back(std::make_unique<gpusim::Device>(gpusim::make_benchmark_device(mb)));
      ptrs.push_back(owned.back().get());
    }
  }
};

void expect_same_answer(const EimResult& a, const EimResult& b) {
  EXPECT_EQ(a.seeds, b.seeds);
  EXPECT_EQ(a.num_sets, b.num_sets);
  EXPECT_EQ(a.total_elements, b.total_elements);
  EXPECT_EQ(a.singletons_discarded, b.singletons_discarded);
  EXPECT_DOUBLE_EQ(a.lower_bound, b.lower_bound);
  EXPECT_DOUBLE_EQ(a.estimated_spread, b.estimated_spread);
}

TEST(Checkpoint, StateRoundTripsThroughDisk) {
  TempDir dir("eim_ckpt_roundtrip");
  CheckpointState s;
  s.rng_seed = 0xFFFFFFFFFFFFFFFFull;  // exercises the string-encoded u64
  s.num_vertices = 300;
  s.num_edges = 891;
  s.k = 4;
  s.epsilon = 0.4;
  s.ell = 1.0;
  s.model = 1;
  s.log_encode = true;
  s.eliminate_sources = true;
  s.num_devices = 3;
  s.round = {5, 4, 123.5, true};
  s.lengths = {2, 3};
  s.elements = {10, 20, 1, 2, 299};
  s.singletons_discarded = 77;
  s.kernel_seconds = 1.5;
  s.transfer_seconds = 0.25;
  s.allocation_seconds = 0.125;
  s.backoff_seconds = 0.0625;
  s.metrics_json = R"({"schema":"eim.metrics.v2","counters":{},"gauges":{})"
                   R"(,"histograms":{},"phases":[]})";
  const std::uint64_t bytes = save_checkpoint(dir.path, s);
  EXPECT_GT(bytes, 0u);

  const CheckpointState r = load_checkpoint(dir.path);
  EXPECT_EQ(r.rng_seed, s.rng_seed);
  EXPECT_EQ(r.num_vertices, s.num_vertices);
  EXPECT_EQ(r.num_edges, s.num_edges);
  EXPECT_EQ(r.k, s.k);
  EXPECT_DOUBLE_EQ(r.epsilon, s.epsilon);
  EXPECT_DOUBLE_EQ(r.ell, s.ell);
  EXPECT_EQ(r.model, s.model);
  EXPECT_EQ(r.log_encode, s.log_encode);
  EXPECT_EQ(r.eliminate_sources, s.eliminate_sources);
  EXPECT_EQ(r.num_devices, s.num_devices);
  EXPECT_EQ(r.round.next_round, s.round.next_round);
  EXPECT_EQ(r.round.estimation_rounds, s.round.estimation_rounds);
  EXPECT_DOUBLE_EQ(r.round.lower_bound, s.round.lower_bound);
  EXPECT_EQ(r.round.estimation_done, s.round.estimation_done);
  EXPECT_EQ(r.lengths, s.lengths);
  EXPECT_EQ(r.elements, s.elements);
  EXPECT_EQ(r.singletons_discarded, s.singletons_discarded);
  EXPECT_DOUBLE_EQ(r.kernel_seconds, s.kernel_seconds);
  EXPECT_DOUBLE_EQ(r.backoff_seconds, s.backoff_seconds);
  EXPECT_EQ(r.metrics_json, s.metrics_json);
}

TEST(Checkpoint, MissingDirectoryIsPlainIoErrorNotCorruption) {
  try {
    (void)load_checkpoint("/nonexistent-eim-checkpoint-dir");
    FAIL() << "expected IoError";
  } catch (const SnapshotCorruptError&) {
    FAIL() << "a missing checkpoint is not a corrupt one";
  } catch (const support::IoError&) {
  }
}

TEST(Checkpoint, CheckpointingDoesNotPerturbTheAnswer) {
  TempDir dir("eim_ckpt_noop");
  const Graph g = make_graph();
  const imm::ImmParams params = make_params();

  gpusim::Device plain_dev(gpusim::make_benchmark_device(256));
  const EimResult plain =
      run_eim(plain_dev, g, DiffusionModel::IndependentCascade, params);

  gpusim::Device ckpt_dev(gpusim::make_benchmark_device(256));
  EimOptions options;
  options.checkpoint_dir = dir.path;
  const EimResult with_ckpt =
      run_eim(ckpt_dev, g, DiffusionModel::IndependentCascade, params, options);

  expect_same_answer(plain, with_ckpt);
  // Identical modeled clock too: snapshot writes are host-side work.
  EXPECT_DOUBLE_EQ(plain.device_seconds, with_ckpt.device_seconds);
  EXPECT_TRUE(std::filesystem::exists(dir.path + "/manifest.json"));
  EXPECT_TRUE(std::filesystem::exists(dir.path + "/snapshot.bin"));
}

TEST(Checkpoint, ResumeFromCompletedRunReplaysFinalSelect) {
  TempDir dir("eim_ckpt_completed");
  const Graph g = make_graph();
  const imm::ImmParams params = make_params();

  gpusim::Device dev(gpusim::make_benchmark_device(256));
  EimOptions options;
  options.checkpoint_dir = dir.path;
  const EimResult first =
      run_eim(dev, g, DiffusionModel::IndependentCascade, params, options);

  const CheckpointState ckpt = load_checkpoint(dir.path);
  EXPECT_TRUE(ckpt.round.estimation_done);
  EXPECT_EQ(ckpt.lengths.size(), first.num_sets);

  gpusim::Device dev2(gpusim::make_benchmark_device(256));
  EimOptions resume_options;
  resume_options.resume = &ckpt;
  const EimResult resumed =
      run_eim(dev2, g, DiffusionModel::IndependentCascade, params, resume_options);
  expect_same_answer(first, resumed);
}

TEST(Checkpoint, DegradedRunResumesToTheSameDegradedResult) {
  // A run that degraded on device OOM must checkpoint what it committed and
  // resume to the byte-identical degraded answer — same best-effort seeds,
  // same shortfall — not silently upgrade or shift. The OOM is keyed on
  // request size (not ordinal), so it reproduces across the resume replay.
  TempDir dir("eim_ckpt_degraded");
  Graph g = Graph::from_edge_list(graph::barabasi_albert(600, 3, 0.3, 7));
  graph::assign_weights(g, DiffusionModel::IndependentCascade);
  imm::ImmParams params;
  params.k = 8;
  params.epsilon = 0.3;

  // Above the fixed allocations (graph replica + the 4-block queue pool),
  // below what full-theta R growth requests — the OOM lands in collection
  // growth, where Degrade applies.
  gpusim::FaultPlan plan;
  plan.alloc_oom_bytes_threshold = 24 << 10;

  gpusim::Device dev(gpusim::make_benchmark_device(256));
  dev.set_fault_plan(plan);
  EimOptions options;
  options.sampler_blocks = 4;
  options.oom_policy = OomPolicy::Degrade;
  options.checkpoint_dir = dir.path;
  const EimResult first =
      run_eim(dev, g, DiffusionModel::IndependentCascade, params, options);
  ASSERT_TRUE(first.degraded);
  ASSERT_EQ(first.seeds.size(), params.k);

  const CheckpointState ckpt = load_checkpoint(dir.path);
  gpusim::Device dev2(gpusim::make_benchmark_device(256));
  dev2.set_fault_plan(plan);
  EimOptions resume_options;
  resume_options.sampler_blocks = 4;
  resume_options.oom_policy = OomPolicy::Degrade;
  resume_options.resume = &ckpt;
  const EimResult resumed =
      run_eim(dev2, g, DiffusionModel::IndependentCascade, params, resume_options);

  EXPECT_TRUE(resumed.degraded);
  EXPECT_EQ(resumed.degrade_shortfall_bytes, first.degrade_shortfall_bytes);
  expect_same_answer(first, resumed);
}

TEST(Checkpoint, KillAtEveryKernelOrdinalResumesBitIdentical) {
  // THE tentpole property. For every launch ordinal o of the reference run:
  // run with checkpointing and a scripted process abort at o (the modeled
  // SIGKILL — no destructors of interest, state on disk only), then start a
  // fresh process (new device, new registry) resuming from the directory,
  // and require the bit-identical final answer.
  const Graph g = make_graph();
  const imm::ImmParams params = make_params();

  gpusim::Device ref_dev(gpusim::make_benchmark_device(256));
  const EimResult reference =
      run_eim(ref_dev, g, DiffusionModel::IndependentCascade, params);
  const std::uint64_t total_ordinals = ref_dev.kernel_launch_ordinal();
  ASSERT_GT(total_ordinals, 0u);

  for (std::uint64_t abort_at = 0; abort_at < total_ordinals; ++abort_at) {
    TempDir dir("eim_ckpt_sweep_" + std::to_string(abort_at));

    gpusim::Device doomed(gpusim::make_benchmark_device(256));
    gpusim::FaultPlan plan;
    plan.process_abort_kernel_ordinal = abort_at;
    doomed.set_fault_plan(plan);
    EimOptions options;
    options.checkpoint_dir = dir.path;
    try {
      const EimResult r =
          run_eim(doomed, g, DiffusionModel::IndependentCascade, params, options);
      ADD_FAILURE() << "abort at ordinal " << abort_at << " of " << total_ordinals
                    << " did not fire";
      expect_same_answer(reference, r);
      continue;
    } catch (const support::ProcessAbortError&) {
      // The process "died". Everything in memory is gone.
    }

    gpusim::Device fresh(gpusim::make_benchmark_device(256));
    EimOptions resume_options;
    CheckpointState ckpt;
    try {
      ckpt = load_checkpoint(dir.path);
      resume_options.resume = &ckpt;
    } catch (const support::IoError&) {
      // Killed before the first round boundary: no snapshot was ever
      // published (atomicity means no torn file either) — restart clean.
    }
    const EimResult resumed =
        run_eim(fresh, g, DiffusionModel::IndependentCascade, params, resume_options);
    expect_same_answer(reference, resumed);
  }
}

TEST(Checkpoint, MultiGpuResumeOntoDifferentDeviceCount) {
  // A checkpoint written by a 2-device run must resume on 1 and on 3
  // devices: the snapshot stores the collection in global sample-id order,
  // and resume redistributes ids modulo the *new* device count.
  const Graph g = make_graph();
  const imm::ImmParams params = make_params();

  DevicePool ref_pool(2);
  const MultiGpuResult reference =
      run_eim_multi(ref_pool.ptrs, g, DiffusionModel::IndependentCascade, params);

  // Interrupt a fresh 2-device checkpointed run partway through.
  TempDir dir("eim_ckpt_multi");
  {
    DevicePool doomed(2);
    gpusim::FaultPlan plan;
    plan.process_abort_kernel_ordinal = ref_pool.ptrs[0]->kernel_launch_ordinal() / 2;
    doomed.ptrs[0]->set_fault_plan(plan);
    EimOptions options;
    options.checkpoint_dir = dir.path;
    try {
      (void)run_eim_multi(doomed.ptrs, g, DiffusionModel::IndependentCascade, params,
                          options);
      // A late scripted ordinal may land after the final launch; the
      // completed checkpoint still exercises the resume path below.
    } catch (const support::ProcessAbortError&) {
    }
  }

  CheckpointState ckpt = load_checkpoint(dir.path);
  EXPECT_EQ(ckpt.num_devices, 2u);
  for (const std::uint32_t d : {1u, 3u}) {
    DevicePool pool(d);
    EimOptions options;
    options.resume = &ckpt;
    const MultiGpuResult resumed =
        run_eim_multi(pool.ptrs, g, DiffusionModel::IndependentCascade, params, options);
    expect_same_answer(reference, resumed);
    EXPECT_EQ(resumed.num_devices, d);
  }
}

TEST(Checkpoint, ResumeThenDeviceLossDoesNotDoubleCountSingletons) {
  // Regression: a device dying after resume respills its restored sets.
  // Those sets must be re-committed from the snapshot, not re-sampled —
  // re-sampling would recount singleton draws already included in the
  // restored total (and killing the device parking the restored count
  // would lose it outright).
  const Graph g = make_graph();
  const imm::ImmParams params = make_params();

  DevicePool ref_pool(3);
  const MultiGpuResult reference =
      run_eim_multi(ref_pool.ptrs, g, DiffusionModel::IndependentCascade, params);

  TempDir dir("eim_ckpt_loss_after_resume");
  {
    DevicePool doomed(3);
    gpusim::FaultPlan plan;
    plan.process_abort_kernel_ordinal = ref_pool.ptrs[0]->kernel_launch_ordinal() / 2;
    doomed.ptrs[0]->set_fault_plan(plan);
    EimOptions options;
    options.checkpoint_dir = dir.path;
    try {
      (void)run_eim_multi(doomed.ptrs, g, DiffusionModel::IndependentCascade, params,
                          options);
    } catch (const support::ProcessAbortError&) {
    }
  }

  CheckpointState ckpt = load_checkpoint(dir.path);
  // Kill the resumed primary (device 0, which holds restored state) and a
  // non-primary in separate runs; both must match the clean answer exactly,
  // singleton totals included.
  for (const std::uint32_t victim : {0u, 2u}) {
    DevicePool pool(3);
    gpusim::FaultPlan plan;
    plan.device_loss_kernel_ordinal = 1;
    pool.ptrs[victim]->set_fault_plan(plan);
    EimOptions options;
    options.resume = &ckpt;
    const MultiGpuResult resumed = run_eim_multi(
        pool.ptrs, g, DiffusionModel::IndependentCascade, params, options);
    expect_same_answer(reference, resumed);
    ASSERT_EQ(resumed.failed_devices.size(), 1u);
    EXPECT_EQ(resumed.failed_devices[0], victim);
  }
}

TEST(Checkpoint, SingleAndMultiGpuCheckpointsAreInterchangeable) {
  // Same global sample-id order on disk regardless of writer topology.
  const Graph g = make_graph();
  const imm::ImmParams params = make_params();

  TempDir single_dir("eim_ckpt_from_single");
  gpusim::Device dev(gpusim::make_benchmark_device(256));
  EimOptions options;
  options.checkpoint_dir = single_dir.path;
  const EimResult reference =
      run_eim(dev, g, DiffusionModel::IndependentCascade, params, options);

  CheckpointState ckpt = load_checkpoint(single_dir.path);
  DevicePool pool(2);
  EimOptions resume_options;
  resume_options.resume = &ckpt;
  const MultiGpuResult resumed =
      run_eim_multi(pool.ptrs, g, DiffusionModel::IndependentCascade, params,
                    resume_options);
  expect_same_answer(reference, resumed);
}

TEST(Checkpoint, ValidationNamesTheMismatchedField) {
  TempDir dir("eim_ckpt_validate");
  const Graph g = make_graph();
  const imm::ImmParams params = make_params();
  gpusim::Device dev(gpusim::make_benchmark_device(256));
  EimOptions options;
  options.checkpoint_dir = dir.path;
  (void)run_eim(dev, g, DiffusionModel::IndependentCascade, params, options);
  const CheckpointState ckpt = load_checkpoint(dir.path);

  const EimOptions plain;
  imm::ImmParams wrong_seed = params;
  wrong_seed.rng_seed += 1;
  try {
    validate_checkpoint(ckpt, g, DiffusionModel::IndependentCascade, wrong_seed, plain);
    FAIL() << "expected InvalidArgumentError";
  } catch (const support::InvalidArgumentError& e) {
    EXPECT_NE(std::string(e.what()).find("rng_seed"), std::string::npos);
  }

  imm::ImmParams wrong_k = params;
  wrong_k.k += 1;
  EXPECT_THROW(
      validate_checkpoint(ckpt, g, DiffusionModel::IndependentCascade, wrong_k, plain),
      support::InvalidArgumentError);
  EXPECT_THROW(
      validate_checkpoint(ckpt, g, DiffusionModel::LinearThreshold, params, plain),
      support::InvalidArgumentError);
  const Graph other = Graph::from_edge_list(graph::barabasi_albert(301, 3, 0.3, 7));
  EXPECT_THROW(
      validate_checkpoint(ckpt, other, DiffusionModel::IndependentCascade, params, plain),
      support::InvalidArgumentError);
  EimOptions raw;
  raw.log_encode = false;
  EXPECT_THROW(
      validate_checkpoint(ckpt, g, DiffusionModel::IndependentCascade, params, raw),
      support::InvalidArgumentError);
  // The unmodified identity passes.
  validate_checkpoint(ckpt, g, DiffusionModel::IndependentCascade, params, plain);
}

class CheckpointCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    const Graph g = make_graph();
    gpusim::Device dev(gpusim::make_benchmark_device(256));
    EimOptions options;
    options.checkpoint_dir = dir_.path;
    (void)run_eim(dev, g, DiffusionModel::IndependentCascade, make_params(), options);
  }

  void corrupt(const std::string& file, std::size_t offset, std::uint8_t xor_mask) {
    const std::string path = dir_.path + "/" + file;
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f) << path;
    f.seekg(static_cast<std::streamoff>(offset));
    char byte = 0;
    f.get(byte);
    f.seekp(static_cast<std::streamoff>(offset));
    f.put(static_cast<char>(static_cast<std::uint8_t>(byte) ^ xor_mask));
  }

  TempDir dir_{"eim_ckpt_corrupt"};
};

TEST_F(CheckpointCorruption, SnapshotBitFlipRejected) {
  const auto size = std::filesystem::file_size(dir_.path + "/snapshot.bin");
  // Flip a byte in the header, the table region, and deep in the payloads.
  for (const std::size_t offset :
       {std::size_t{3}, std::size_t{40}, static_cast<std::size_t>(size) - 5}) {
    SCOPED_TRACE(offset);
    corrupt("snapshot.bin", offset, 0x80);
    EXPECT_THROW((void)load_checkpoint(dir_.path), SnapshotCorruptError);
    corrupt("snapshot.bin", offset, 0x80);  // restore for the next flip
    EXPECT_NO_THROW((void)load_checkpoint(dir_.path));
  }
}

TEST_F(CheckpointCorruption, SnapshotTruncationRejected) {
  const std::string path = dir_.path + "/snapshot.bin";
  const auto size = std::filesystem::file_size(path);
  for (const double frac : {0.9, 0.3, 0.0}) {
    SCOPED_TRACE(frac);
    const auto keep = static_cast<std::uintmax_t>(static_cast<double>(size) * frac);
    std::filesystem::resize_file(path, keep);
    EXPECT_THROW((void)load_checkpoint(dir_.path), SnapshotCorruptError);
  }
}

TEST_F(CheckpointCorruption, ManifestDamageRejected) {
  const std::string path = dir_.path + "/manifest.json";
  // Truncated JSON.
  std::filesystem::resize_file(path, std::filesystem::file_size(path) / 2);
  EXPECT_THROW((void)load_checkpoint(dir_.path), SnapshotCorruptError);
  // Valid JSON, wrong schema.
  std::ofstream(path) << R"({"schema":"something.else.v9"})";
  EXPECT_THROW((void)load_checkpoint(dir_.path), SnapshotCorruptError);
  // Not JSON at all.
  std::ofstream(path) << "definitely not json";
  EXPECT_THROW((void)load_checkpoint(dir_.path), SnapshotCorruptError);
}

TEST_F(CheckpointCorruption, OutOfRangeElementRejectedDespiteValidChecksum) {
  // CRC guards bits, not semantics: hand-craft a state whose element id
  // exceeds num_vertices and ensure load refuses to hand it to the
  // collection (indexing counts_[element] would be UB).
  CheckpointState s = load_checkpoint(dir_.path);
  s.lengths = {1};
  s.elements = {s.num_vertices};  // one past the last valid vertex
  TempDir bad("eim_ckpt_bad_element");
  (void)save_checkpoint(bad.path, s);
  EXPECT_THROW((void)load_checkpoint(bad.path), SnapshotCorruptError);
}

TEST(Checkpoint, StaleTempFilesFromKilledWriteAreHarmless) {
  // A process killed mid-write leaves the previous published pair plus at
  // most an unrenamed `*.tmp.<pid>` staging file. Load must read only the
  // published files, and a later checkpointed run must overwrite cleanly.
  TempDir dir("eim_ckpt_stale_tmp");
  const Graph g = make_graph();
  const imm::ImmParams params = make_params();
  gpusim::Device dev(gpusim::make_benchmark_device(256));
  EimOptions options;
  options.checkpoint_dir = dir.path;
  const EimResult first =
      run_eim(dev, g, DiffusionModel::IndependentCascade, params, options);

  std::ofstream(support::atomic_write_temp_path(dir.path + "/snapshot.bin"))
      << "garbage from a killed writer";
  std::ofstream(support::atomic_write_temp_path(dir.path + "/manifest.json"))
      << "{\"torn\":";

  const CheckpointState ckpt = load_checkpoint(dir.path);
  EXPECT_EQ(ckpt.lengths.size(), first.num_sets);

  gpusim::Device dev2(gpusim::make_benchmark_device(256));
  EimOptions resume_options;
  resume_options.resume = &ckpt;
  resume_options.checkpoint_dir = dir.path;  // keeps writing over the debris
  const EimResult resumed =
      run_eim(dev2, g, DiffusionModel::IndependentCascade, params, resume_options);
  expect_same_answer(first, resumed);
  EXPECT_NO_THROW((void)load_checkpoint(dir.path));
}

TEST(Checkpoint, MetricsRecordWritesAndResume) {
  TempDir dir("eim_ckpt_metrics");
  const Graph g = make_graph();
  const imm::ImmParams params = make_params();

  support::metrics::MetricsRegistry reg;
  gpusim::Device dev(gpusim::make_benchmark_device(256));
  EimOptions options;
  options.checkpoint_dir = dir.path;
  options.metrics = &reg;
  (void)run_eim(dev, g, DiffusionModel::IndependentCascade, params, options);
  EXPECT_GT(reg.counter("checkpoint.writes").value(), 0u);
  EXPECT_GT(reg.counter("checkpoint.bytes_written").value(), 0u);
  EXPECT_EQ(reg.counter("checkpoint.resume_loaded").value(), 0u);

  const CheckpointState ckpt = load_checkpoint(dir.path);
  support::metrics::MetricsRegistry reg2;
  gpusim::Device dev2(gpusim::make_benchmark_device(256));
  EimOptions resume_options;
  resume_options.resume = &ckpt;
  resume_options.metrics = &reg2;
  (void)run_eim(dev2, g, DiffusionModel::IndependentCascade, params, resume_options);
  EXPECT_EQ(reg2.counter("checkpoint.resume_loaded").value(), 1u);
  // The restored registry carries the interrupted run's counters forward,
  // so cumulative accounting survives the crash: the estimation-round
  // selector calls all happened before the snapshot was written.
  EXPECT_GT(reg2.counter("selector.select_calls").value(), 0u);
}

}  // namespace
}  // namespace eim::eim_impl
