// Fast-draw sampling mode (--draw-mode skip): statistical regression tests
// pinning the geometric skip-ahead to the per-edge Bernoulli distribution
// and the alias tables to the exact prefix-scan distribution, plus the
// end-to-end guarantees the mode ships with (spread equivalence, multi-GPU
// bit-identity within the mode, checkpoint identity across modes).
//
// The chi-square / KS critical values used below are for alpha ~= 1e-3 with
// generous headroom: all draws come from fixed seeds, so each assertion is
// deterministic — the margin guards against an unlucky fixed sample, not
// against flaky reruns.
#include "eim/graph/draw_plan.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "eim/diffusion/forward.hpp"
#include "eim/eim/checkpoint.hpp"
#include "eim/eim/multi_gpu.hpp"
#include "eim/eim/pipeline.hpp"
#include "eim/graph/generators.hpp"
#include "eim/support/error.hpp"
#include "eim/support/metrics.hpp"
#include "eim/support/rng.hpp"
#include "eim/support/stats.hpp"

namespace eim::eim_impl {
namespace {

using graph::DiffusionModel;
using graph::DrawPlan;
using graph::Graph;
using support::RandomStream;

constexpr double kGrid = 16777216.0;  // 2^24, the next_float() draw grid

Graph make_graph(DiffusionModel model, graph::VertexId n = 400) {
  Graph g = Graph::from_edge_list(graph::barabasi_albert(n, 3, 0.3, 7));
  graph::assign_weights(g, model);
  return g;
}

imm::ImmParams make_params() {
  imm::ImmParams p;
  p.k = 5;
  p.epsilon = 0.3;
  return p;
}

EimOptions skip_options() {
  EimOptions o;
  o.draw_mode = DrawMode::Skip;
  return o;
}

struct TempDir {
  std::string path;
  explicit TempDir(const std::string& stem)
      : path(::testing::TempDir() + stem + "_" + std::to_string(::getpid())) {
    std::filesystem::remove_all(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

struct DevicePool {
  std::vector<std::unique_ptr<gpusim::Device>> owned;
  std::vector<gpusim::Device*> ptrs;
  explicit DevicePool(std::uint32_t n, std::uint64_t mb = 256) {
    for (std::uint32_t i = 0; i < n; ++i) {
      owned.push_back(std::make_unique<gpusim::Device>(gpusim::make_benchmark_device(mb)));
      ptrs.push_back(owned.back().get());
    }
  }
};

void expect_same_answer(const EimResult& a, const EimResult& b) {
  EXPECT_EQ(a.seeds, b.seeds);
  EXPECT_EQ(a.num_sets, b.num_sets);
  EXPECT_EQ(a.total_elements, b.total_elements);
  EXPECT_EQ(a.singletons_discarded, b.singletons_discarded);
  EXPECT_DOUBLE_EQ(a.lower_bound, b.lower_bound);
  EXPECT_DOUBLE_EQ(a.estimated_spread, b.estimated_spread);
}

/// A tiny star graph: in-edges (src -> center) for each listed weight, so
/// center's CSC slice is exactly `weights` in source order. Installs a
/// hand-built DrawPlan for `model` (assign_weights would overwrite the
/// weights we are pinning).
Graph make_star(const std::vector<float>& weights, DiffusionModel model) {
  const auto n = static_cast<graph::VertexId>(weights.size() + 1);
  graph::EdgeList edges(n);
  for (graph::VertexId s = 0; s + 1 < n; ++s) edges.add_edge(s, n - 1);
  edges.normalize();
  Graph g = Graph::from_edge_list(edges);
  auto& w = g.mutable_in_weights();
  const graph::EdgeId begin = g.in().offsets[n - 1];
  for (std::size_t j = 0; j < weights.size(); ++j) w[begin + j] = weights[j];
  g.sync_out_weights_from_in();
  g.set_draw_plan(std::make_shared<DrawPlan>(graph::build_draw_plan(g, model)));
  return g;
}

// ---------------------------------------------------------------------------
// Quantization: grid_success_probability vs the actual 24-bit draw grid.
// ---------------------------------------------------------------------------

TEST(DrawModeGrid, BruteForceCountOverTheFullGrid) {
  // next_float() yields exactly k * 2^-24 for k in [0, 2^24). Count the grid
  // points the strict per-edge test accepts and require the cached p_eff to
  // be that count over the grid size — the property that makes the geometric
  // jump distribution match the exact kernel draw-for-draw.
  const float w = 0.3f;
  std::uint64_t accepted = 0;
  for (std::uint32_t k = 0; k < (1u << 24); ++k) {
    if (static_cast<float>(k) * 0x1.0p-24f < w) ++accepted;
  }
  EXPECT_DOUBLE_EQ(graph::grid_success_probability(w),
                   static_cast<double>(accepted) / kGrid);
}

TEST(DrawModeGrid, BoundaryPointsAtEveryScale) {
  // For each weight, the grid point just below ceil(w * 2^24) must pass the
  // strict test and the one at it must fail — the two-sided check that pins
  // the ceil without another full sweep. Includes the weight-granularity
  // floor 2^-24 and a weight strictly between two grid points.
  for (const float w : {0x1.0p-24f, 1.5f * 0x1.0p-24f, 0x1.0p-23f, 0.001f, 0.05f,
                        0.3f, 0.999f, 0.9999999f}) {
    SCOPED_TRACE(w);
    const double p = graph::grid_success_probability(w);
    const auto count = static_cast<std::uint64_t>(p * kGrid + 0.5);
    ASSERT_GT(count, 0u);
    ASSERT_LE(count, 1u << 24);
    EXPECT_LT(static_cast<float>(count - 1) * 0x1.0p-24f, w);
    if (count < (1u << 24)) {
      EXPECT_GE(static_cast<float>(count) * 0x1.0p-24f, w);
    }
  }
  EXPECT_DOUBLE_EQ(graph::grid_success_probability(0x1.0p-24f), 0x1.0p-24);
  EXPECT_DOUBLE_EQ(graph::grid_success_probability(0.0f), 0.0);
  EXPECT_DOUBLE_EQ(graph::grid_success_probability(-0.5f), 0.0);
  EXPECT_DOUBLE_EQ(graph::grid_success_probability(1.0f), 1.0);
  EXPECT_DOUBLE_EQ(graph::grid_success_probability(2.0f), 1.0);
}

// ---------------------------------------------------------------------------
// Geometric skip-ahead vs per-edge Bernoulli.
// ---------------------------------------------------------------------------

TEST(DrawModeGeometric, ActivationCountsMatchBernoulliPerPosition) {
  // Sweep a 32-edge row N times with the skip recurrence and require the
  // per-position activation counts to pass a chi-square test against the
  // exact Bernoulli expectation N * p_eff — position-resolved, so an
  // off-by-one in the jump (activating j instead of j+1+s) fails loudly.
  // Also KS-compare the per-trial success-count samples against a per-edge
  // reference so the row-total distribution matches, not just the margins.
  constexpr int kEdges = 32;
  constexpr int kTrials = 4000;
  for (const float w : {0.3f, 0.05f}) {
    SCOPED_TRACE(w);
    const double p = graph::grid_success_probability(w);
    const double log1m = std::log1p(-p);

    std::vector<double> observed(kEdges, 0.0);
    std::vector<double> skip_totals;
    std::vector<double> exact_totals;
    for (int t = 0; t < kTrials; ++t) {
      RandomStream rng(9, static_cast<std::uint64_t>(t));
      double successes = 0.0;
      std::uint64_t j = support::geometric_skip(rng, log1m);
      while (j < kEdges) {
        observed[j] += 1.0;
        successes += 1.0;
        const std::uint64_t s = support::geometric_skip(rng, log1m);
        if (s >= static_cast<std::uint64_t>(kEdges) - 1 - j) break;
        j += 1 + s;
      }
      skip_totals.push_back(successes);

      RandomStream ref(17, static_cast<std::uint64_t>(t));
      double ref_successes = 0.0;
      for (int e = 0; e < kEdges; ++e) {
        if (ref.next_float() < w) ref_successes += 1.0;
      }
      exact_totals.push_back(ref_successes);
    }

    const std::vector<double> expected(kEdges, kTrials * p);
    // chi-square critical value for df = 32 at alpha = 1e-3 is 62.5.
    EXPECT_LT(support::chi_square_statistic(observed, expected), 70.0);
    // Two-sample KS at alpha = 1e-3 with n = m = 4000 rejects above 0.044.
    EXPECT_LT(support::ks_statistic(skip_totals, exact_totals), 0.06);
  }
}

TEST(DrawModeGeometric, GranularityFloorMeanSkipIsTwoToTheTwentyFour) {
  // The 2^-24 weight-granularity edge: the smallest representable success
  // probability must produce geometric jumps with mean (1-p)/p ~= 2^24 - 1.
  // A mis-quantized p (e.g. nextafter drift to 2^-25 or 2^-23) moves the
  // mean by 2x and fails the 10% window by a wide margin.
  const double p = graph::grid_success_probability(0x1.0p-24f);
  const double log1m = std::log1p(-p);
  RandomStream rng(33, 1);
  constexpr int kDraws = 3000;
  double sum = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const std::uint64_t s = support::geometric_skip(rng, log1m);
    ASSERT_NE(s, support::kGeometricNever);
    sum += static_cast<double>(s);
  }
  const double mean = sum / kDraws;
  const double expected_mean = (1.0 - p) / p;
  EXPECT_NEAR(mean, expected_mean, 0.10 * expected_mean);
}

// ---------------------------------------------------------------------------
// Alias tables vs the exact prefix scan.
// ---------------------------------------------------------------------------

TEST(DrawModeAlias, PickFrequenciesMatchPrefixScan) {
  // Star row with a zero-weight in-edge and total weight 0.5: pick counts
  // must match the weights, the zero-weight bucket must never be picked,
  // and draws landing in [W, 1) must fall into the no-one gap exactly as
  // the exact scan's tau beyond the last cumulative sum.
  const std::vector<float> weights = {0.3f, 0.0f, 0.15f, 0.05f};
  const Graph g = make_star(weights, DiffusionModel::LinearThreshold);
  const DrawPlan* plan = g.draw_plan();
  ASSERT_NE(plan, nullptr);
  ASSERT_TRUE(plan->has_lt());
  const graph::VertexId center = g.num_vertices() - 1;
  EXPECT_FLOAT_EQ(plan->lt_total[center], 0.5f);

  constexpr int kPicks = 300000;
  const std::size_t cells = weights.size() + 1;  // edges + the no-one gap
  std::vector<double> alias_counts(cells, 0.0);
  std::vector<double> scan_counts(cells, 0.0);
  RandomStream rng(5, 11);
  for (int i = 0; i < kPicks; ++i) {
    const float u = rng.next_float();

    const std::uint32_t pick = graph::alias_pick_lt(*plan, g, center, u);
    if (pick == graph::kNoAliasPick) {
      alias_counts[weights.size()] += 1.0;
    } else {
      ASSERT_LT(pick, weights.size());
      alias_counts[pick] += 1.0;
    }

    // The exact walk_lt scan on the same draw (float accumulation, strict <).
    float cum = 0.0f;
    std::size_t scan_pick = weights.size();
    for (std::size_t j = 0; j < weights.size(); ++j) {
      cum += weights[j];
      if (u < cum) {
        scan_pick = j;
        break;
      }
    }
    scan_counts[scan_pick] += 1.0;
  }

  // The fixed-zero cell is asserted exactly; chi_square_statistic skips it.
  EXPECT_EQ(alias_counts[1], 0.0);
  EXPECT_EQ(scan_counts[1], 0.0);

  std::vector<double> expected;
  for (const float w : weights) expected.push_back(kPicks * static_cast<double>(w));
  expected.push_back(kPicks * 0.5);  // no-one gap: 1 - W
  // 4 positive-expectation cells -> df = 3; critical value at 1e-3 is 16.3.
  EXPECT_LT(support::chi_square_statistic(alias_counts, expected), 25.0);
  EXPECT_LT(support::chi_square_statistic(scan_counts, expected), 25.0);
}

TEST(DrawModeAlias, DegenerateRows) {
  // All-zero row: every draw falls into the no-one gap.
  const Graph zero = make_star({0.0f, 0.0f, 0.0f}, DiffusionModel::LinearThreshold);
  const graph::VertexId zc = zero.num_vertices() - 1;
  RandomStream rng(7, 3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(graph::alias_pick_lt(*zero.draw_plan(), zero, zc, rng.next_float()),
              graph::kNoAliasPick);
  }
  // Full row (W = 1): no gap, every draw picks a positive-weight edge.
  const Graph full = make_star({0.25f, 0.5f, 0.25f}, DiffusionModel::LinearThreshold);
  const graph::VertexId fc = full.num_vertices() - 1;
  for (int i = 0; i < 1000; ++i) {
    const std::uint32_t pick =
        graph::alias_pick_lt(*full.draw_plan(), full, fc, rng.next_float());
    ASSERT_NE(pick, graph::kNoAliasPick);
    ASSERT_LT(pick, 3u);
  }
}

// ---------------------------------------------------------------------------
// IC classification.
// ---------------------------------------------------------------------------

TEST(DrawModePlan, ClassifiesEveryIcRowKind) {
  // One star per kind; the center vertex is the classified row.
  const auto kind_of = [](const std::vector<float>& ws) {
    const Graph g = make_star(ws, DiffusionModel::IndependentCascade);
    return g.draw_plan()->kind(g.num_vertices() - 1);
  };
  EXPECT_EQ(kind_of({0.3f, 0.3f, 0.3f}), DrawPlan::IcKind::Uniform);
  EXPECT_EQ(kind_of({1.0f, 1.0f}), DrawPlan::IcKind::Saturated);
  EXPECT_EQ(kind_of({0.0f, 0.0f}), DrawPlan::IcKind::Zero);
  EXPECT_EQ(kind_of({0.5f, 0.25f}), DrawPlan::IcKind::Mixed);

  // Leaf vertices have no in-edges at all.
  const Graph g = make_star({0.3f}, DiffusionModel::IndependentCascade);
  EXPECT_EQ(g.draw_plan()->kind(0), DrawPlan::IcKind::Empty);
  // The Uniform cache is exactly log1p(-p_eff) for the shared weight.
  const Graph u = make_star({0.3f, 0.3f}, DiffusionModel::IndependentCascade);
  EXPECT_DOUBLE_EQ(u.draw_plan()->ic_log1m[u.num_vertices() - 1],
                   std::log1p(-graph::grid_success_probability(0.3f)));
}

TEST(DrawModePlan, MutableWeightAccessInvalidatesThePlan) {
  Graph g = make_graph(DiffusionModel::IndependentCascade);
  ASSERT_NE(g.draw_plan(), nullptr);
  (void)g.mutable_in_weights();
  EXPECT_EQ(g.draw_plan(), nullptr);
  // A skip-mode run on a plan-less graph silently falls back to the exact
  // kernels and still completes.
  gpusim::Device dev(gpusim::make_benchmark_device(256));
  const EimResult r = run_eim(dev, g, DiffusionModel::IndependentCascade,
                              make_params(), skip_options());
  EXPECT_EQ(r.seeds.size(), make_params().k);
}

// ---------------------------------------------------------------------------
// End-to-end: spread equivalence, degenerate bit-identity, counters.
// ---------------------------------------------------------------------------

TEST(DrawModeEndToEnd, SaturatedWeightsGiveBitIdenticalSeedsAcrossModes) {
  // With every weight at 1.0 activation is deterministic, so Exact and Skip
  // consume different draw counts but must commit identical sets — the
  // strongest cross-mode check that exists without statistics.
  Graph g = Graph::from_edge_list(graph::barabasi_albert(300, 3, 0.3, 7));
  graph::WeightParams wp;
  wp.scheme = graph::WeightScheme::UniformConstant;
  wp.value = 1.0f;
  graph::assign_weights(g, DiffusionModel::IndependentCascade, wp);
  const imm::ImmParams params = make_params();

  gpusim::Device exact_dev(gpusim::make_benchmark_device(256));
  const EimResult exact =
      run_eim(exact_dev, g, DiffusionModel::IndependentCascade, params);
  gpusim::Device skip_dev(gpusim::make_benchmark_device(256));
  const EimResult skip = run_eim(skip_dev, g, DiffusionModel::IndependentCascade,
                                 params, skip_options());
  expect_same_answer(exact, skip);
}

TEST(DrawModeEndToEnd, SkipSpreadMatchesExactForBothModels) {
  for (const DiffusionModel model :
       {DiffusionModel::IndependentCascade, DiffusionModel::LinearThreshold}) {
    SCOPED_TRACE(graph::to_string(model));
    const Graph g = make_graph(model, 500);
    const imm::ImmParams params = make_params();

    gpusim::Device exact_dev(gpusim::make_benchmark_device(256));
    const EimResult exact = run_eim(exact_dev, g, model, params);

    support::metrics::MetricsRegistry reg;
    gpusim::Device skip_dev(gpusim::make_benchmark_device(256));
    EimOptions options = skip_options();
    options.metrics = &reg;
    const EimResult skip = run_eim(skip_dev, g, model, params, options);

    ASSERT_EQ(exact.seeds.size(), params.k);
    ASSERT_EQ(skip.seeds.size(), params.k);
    const double exact_spread =
        diffusion::estimate_spread(g, model, exact.seeds, 400, 11).mean;
    const double skip_spread =
        diffusion::estimate_spread(g, model, skip.seeds, 400, 11).mean;
    // Both modes sample the same distribution, so the chosen seed sets must
    // be interchangeable up to Monte Carlo noise — same tolerance the
    // bench_quality equivalence gate uses.
    EXPECT_NEAR(skip_spread, exact_spread, 0.05 * exact_spread);

    // The skip run exercised its fast path, visible through the counters.
    if (model == DiffusionModel::IndependentCascade) {
      EXPECT_GT(reg.counter("sampler.draws_skipped").value(), 0u);
    } else {
      EXPECT_GT(reg.counter("sampler.alias_picks").value(), 0u);
    }
  }
}

TEST(DrawModeEndToEnd, MultiGpuSkipMatchesSingleDeviceSkip) {
  // The per-global-id stream contract holds within the mode: a 3-device
  // skip run must produce the bit-identical answer of a single-device one.
  const Graph g = make_graph(DiffusionModel::IndependentCascade);
  const imm::ImmParams params = make_params();

  gpusim::Device single(gpusim::make_benchmark_device(256));
  const EimResult reference = run_eim(single, g, DiffusionModel::IndependentCascade,
                                      params, skip_options());

  DevicePool pool(3);
  const MultiGpuResult sharded = run_eim_multi(
      pool.ptrs, g, DiffusionModel::IndependentCascade, params, skip_options());
  expect_same_answer(reference, sharded);
}

// ---------------------------------------------------------------------------
// Checkpoint identity.
// ---------------------------------------------------------------------------

TEST(DrawModeCheckpoint, ResumeRejectsASilentModeSwitch) {
  TempDir dir("eim_drawmode_mismatch");
  const Graph g = make_graph(DiffusionModel::IndependentCascade);
  const imm::ImmParams params = make_params();

  gpusim::Device dev(gpusim::make_benchmark_device(256));
  EimOptions options = skip_options();
  options.checkpoint_dir = dir.path;
  (void)run_eim(dev, g, DiffusionModel::IndependentCascade, params, options);

  const CheckpointState ckpt = load_checkpoint(dir.path);
  EXPECT_EQ(ckpt.draw_mode, static_cast<std::uint8_t>(DrawMode::Skip));

  const EimOptions exact_options;  // DrawMode::Exact
  try {
    validate_checkpoint(ckpt, g, DiffusionModel::IndependentCascade, params,
                        exact_options);
    FAIL() << "expected InvalidArgumentError";
  } catch (const support::InvalidArgumentError& e) {
    EXPECT_NE(std::string(e.what()).find("draw_mode"), std::string::npos);
  }
  // The matching mode passes.
  validate_checkpoint(ckpt, g, DiffusionModel::IndependentCascade, params,
                      skip_options());

  // And the other direction: an exact checkpoint refuses a skip resume.
  TempDir exact_dir("eim_drawmode_mismatch_exact");
  gpusim::Device dev2(gpusim::make_benchmark_device(256));
  EimOptions exact_ckpt_options;
  exact_ckpt_options.checkpoint_dir = exact_dir.path;
  (void)run_eim(dev2, g, DiffusionModel::IndependentCascade, params,
                exact_ckpt_options);
  const CheckpointState exact_ckpt = load_checkpoint(exact_dir.path);
  EXPECT_EQ(exact_ckpt.draw_mode, static_cast<std::uint8_t>(DrawMode::Exact));
  EXPECT_THROW(validate_checkpoint(exact_ckpt, g, DiffusionModel::IndependentCascade,
                                   params, skip_options()),
               support::InvalidArgumentError);
}

TEST(DrawModeCheckpoint, SkipRunResumesBitIdentical) {
  const Graph g = make_graph(DiffusionModel::LinearThreshold);
  const imm::ImmParams params = make_params();

  gpusim::Device ref_dev(gpusim::make_benchmark_device(256));
  const EimResult reference = run_eim(ref_dev, g, DiffusionModel::LinearThreshold,
                                      params, skip_options());
  const std::uint64_t total_ordinals = ref_dev.kernel_launch_ordinal();
  ASSERT_GT(total_ordinals, 0u);

  TempDir dir("eim_drawmode_resume");
  gpusim::Device doomed(gpusim::make_benchmark_device(256));
  gpusim::FaultPlan plan;
  plan.process_abort_kernel_ordinal = total_ordinals / 2;
  doomed.set_fault_plan(plan);
  EimOptions options = skip_options();
  options.checkpoint_dir = dir.path;
  try {
    (void)run_eim(doomed, g, DiffusionModel::LinearThreshold, params, options);
    FAIL() << "scripted abort did not fire";
  } catch (const support::ProcessAbortError&) {
  }

  CheckpointState ckpt = load_checkpoint(dir.path);
  gpusim::Device fresh(gpusim::make_benchmark_device(256));
  EimOptions resume_options = skip_options();
  resume_options.resume = &ckpt;
  const EimResult resumed = run_eim(fresh, g, DiffusionModel::LinearThreshold,
                                    params, resume_options);
  expect_same_answer(reference, resumed);
}

TEST(DrawModeCheckpoint, OldManifestWithoutDrawModeDecodesAsExact) {
  // Manifests written before the field existed must keep loading and must
  // mean Exact — the only mode that existed when they were written.
  TempDir dir("eim_drawmode_old_manifest");
  const Graph g = make_graph(DiffusionModel::IndependentCascade);
  const imm::ImmParams params = make_params();
  gpusim::Device dev(gpusim::make_benchmark_device(256));
  EimOptions options;
  options.checkpoint_dir = dir.path;
  (void)run_eim(dev, g, DiffusionModel::IndependentCascade, params, options);

  const std::string manifest_path = dir.path + "/manifest.json";
  std::string manifest;
  {
    std::ifstream in(manifest_path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    manifest = buf.str();
  }
  const std::size_t key = manifest.find("\"draw_mode\"");
  ASSERT_NE(key, std::string::npos);
  const std::size_t comma = manifest.find(',', key);
  ASSERT_NE(comma, std::string::npos);
  manifest.erase(key, comma - key + 1);
  std::ofstream(manifest_path, std::ios::binary) << manifest;

  const CheckpointState ckpt = load_checkpoint(dir.path);
  EXPECT_EQ(ckpt.draw_mode, static_cast<std::uint8_t>(DrawMode::Exact));
  validate_checkpoint(ckpt, g, DiffusionModel::IndependentCascade, params,
                      EimOptions{});
}

}  // namespace
}  // namespace eim::eim_impl
