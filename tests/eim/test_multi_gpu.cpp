#include "eim/eim/multi_gpu.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "eim/eim/pipeline.hpp"
#include "eim/graph/generators.hpp"
#include "eim/graph/registry.hpp"

namespace eim::eim_impl {
namespace {

using graph::DiffusionModel;
using graph::Graph;

Graph make_graph(DiffusionModel model = DiffusionModel::IndependentCascade) {
  Graph g = Graph::from_edge_list(graph::barabasi_albert(600, 3, 0.3, 7));
  graph::assign_weights(g, model);
  return g;
}

imm::ImmParams make_params() {
  imm::ImmParams p;
  p.k = 8;
  p.epsilon = 0.3;
  return p;
}

struct DevicePool {
  std::vector<std::unique_ptr<gpusim::Device>> owned;
  std::vector<gpusim::Device*> ptrs;
  explicit DevicePool(std::uint32_t n, std::uint64_t mb = 256) {
    for (std::uint32_t i = 0; i < n; ++i) {
      owned.push_back(std::make_unique<gpusim::Device>(gpusim::make_benchmark_device(mb)));
      ptrs.push_back(owned.back().get());
    }
  }
};

TEST(MultiGpu, SingleDeviceMatchesRegularPipeline) {
  const Graph g = make_graph();
  const imm::ImmParams params = make_params();

  gpusim::Device solo(gpusim::make_benchmark_device(256));
  const EimResult single = run_eim(solo, g, DiffusionModel::IndependentCascade, params);

  DevicePool pool(1);
  const MultiGpuResult multi =
      run_eim_multi(pool.ptrs, g, DiffusionModel::IndependentCascade, params);

  EXPECT_EQ(multi.seeds, single.seeds);
  EXPECT_EQ(multi.num_sets, single.num_sets);
  EXPECT_EQ(multi.total_elements, single.total_elements);
}

class MultiGpuCounts : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(MultiGpuCounts, SeedsIdenticalAcrossDeviceCounts) {
  // The headline property of the sharding scheme: any device count yields
  // the bit-identical result, because global sample ids key the streams.
  const Graph g = make_graph();
  const imm::ImmParams params = make_params();

  DevicePool one(1);
  const auto reference =
      run_eim_multi(one.ptrs, g, DiffusionModel::IndependentCascade, params);

  DevicePool pool(GetParam());
  const auto sharded =
      run_eim_multi(pool.ptrs, g, DiffusionModel::IndependentCascade, params);
  EXPECT_EQ(sharded.seeds, reference.seeds);
  EXPECT_EQ(sharded.num_sets, reference.num_sets);
  EXPECT_EQ(sharded.total_elements, reference.total_elements);
  EXPECT_DOUBLE_EQ(sharded.lower_bound, reference.lower_bound);
  EXPECT_EQ(sharded.num_devices, GetParam());
}

INSTANTIATE_TEST_SUITE_P(DeviceCounts, MultiGpuCounts,
                         ::testing::Values(2u, 3u, 4u, 8u));

TEST(MultiGpu, MoreDevicesReduceSamplingTime) {
  const auto spec = *graph::find_dataset("WV");
  const Graph g = graph::build_dataset(spec, DiffusionModel::IndependentCascade);
  imm::ImmParams params;
  params.k = 20;
  params.epsilon = 0.1;  // enough theta for the split to matter

  DevicePool one(1, 512);
  DevicePool four(4, 512);
  const auto solo = run_eim_multi(one.ptrs, g, DiffusionModel::IndependentCascade, params);
  const auto quad = run_eim_multi(four.ptrs, g, DiffusionModel::IndependentCascade, params);
  EXPECT_EQ(solo.seeds, quad.seeds);
  EXPECT_LT(quad.kernel_seconds, solo.kernel_seconds);
  // Not free: communication shows up.
  EXPECT_GT(quad.communication_seconds, solo.communication_seconds);
}

TEST(MultiGpu, ShardsSplitMemoryFootprint) {
  const Graph g = make_graph();
  const imm::ImmParams params = make_params();
  DevicePool one(1);
  DevicePool four(4);
  const auto solo = run_eim_multi(one.ptrs, g, DiffusionModel::IndependentCascade, params);
  const auto quad = run_eim_multi(four.ptrs, g, DiffusionModel::IndependentCascade, params);
  // Each shard's peak is well under the solo peak (R splits four ways; the
  // graph replica and queue pool are the fixed floor).
  EXPECT_LT(quad.peak_device_bytes, solo.peak_device_bytes);
}

TEST(MultiGpu, WorksUnderLtWithElimination) {
  const Graph g = make_graph(DiffusionModel::LinearThreshold);
  imm::ImmParams params = make_params();
  DevicePool pool(3);
  EimOptions options;
  options.eliminate_sources = true;
  const auto r =
      run_eim_multi(pool.ptrs, g, DiffusionModel::LinearThreshold, params, options);
  EXPECT_EQ(r.seeds.size(), params.k);
  EXPECT_GT(r.num_sets, 0u);
}

TEST(MultiGpu, RejectsEmptyDeviceList) {
  const Graph g = make_graph();
  EXPECT_THROW(
      (void)run_eim_multi({}, g, DiffusionModel::IndependentCascade, make_params()),
      support::Error);
}

}  // namespace
}  // namespace eim::eim_impl
