#include "eim/eim/multi_gpu.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "eim/eim/pipeline.hpp"
#include "eim/graph/generators.hpp"
#include "eim/graph/registry.hpp"
#include "eim/support/error.hpp"
#include "eim/support/metrics.hpp"

namespace eim::eim_impl {
namespace {

using graph::DiffusionModel;
using graph::Graph;

Graph make_graph(DiffusionModel model = DiffusionModel::IndependentCascade) {
  Graph g = Graph::from_edge_list(graph::barabasi_albert(600, 3, 0.3, 7));
  graph::assign_weights(g, model);
  return g;
}

imm::ImmParams make_params() {
  imm::ImmParams p;
  p.k = 8;
  p.epsilon = 0.3;
  return p;
}

struct DevicePool {
  std::vector<std::unique_ptr<gpusim::Device>> owned;
  std::vector<gpusim::Device*> ptrs;
  explicit DevicePool(std::uint32_t n, std::uint64_t mb = 256) {
    for (std::uint32_t i = 0; i < n; ++i) {
      owned.push_back(std::make_unique<gpusim::Device>(gpusim::make_benchmark_device(mb)));
      ptrs.push_back(owned.back().get());
    }
  }
};

TEST(MultiGpu, SingleDeviceMatchesRegularPipeline) {
  const Graph g = make_graph();
  const imm::ImmParams params = make_params();

  gpusim::Device solo(gpusim::make_benchmark_device(256));
  const EimResult single = run_eim(solo, g, DiffusionModel::IndependentCascade, params);

  DevicePool pool(1);
  const MultiGpuResult multi =
      run_eim_multi(pool.ptrs, g, DiffusionModel::IndependentCascade, params);

  EXPECT_EQ(multi.seeds, single.seeds);
  EXPECT_EQ(multi.num_sets, single.num_sets);
  EXPECT_EQ(multi.total_elements, single.total_elements);
}

class MultiGpuCounts : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(MultiGpuCounts, SeedsIdenticalAcrossDeviceCounts) {
  // The headline property of the sharding scheme: any device count yields
  // the bit-identical result, because global sample ids key the streams.
  const Graph g = make_graph();
  const imm::ImmParams params = make_params();

  DevicePool one(1);
  const auto reference =
      run_eim_multi(one.ptrs, g, DiffusionModel::IndependentCascade, params);

  DevicePool pool(GetParam());
  const auto sharded =
      run_eim_multi(pool.ptrs, g, DiffusionModel::IndependentCascade, params);
  EXPECT_EQ(sharded.seeds, reference.seeds);
  EXPECT_EQ(sharded.num_sets, reference.num_sets);
  EXPECT_EQ(sharded.total_elements, reference.total_elements);
  EXPECT_DOUBLE_EQ(sharded.lower_bound, reference.lower_bound);
  EXPECT_EQ(sharded.num_devices, GetParam());
}

INSTANTIATE_TEST_SUITE_P(DeviceCounts, MultiGpuCounts,
                         ::testing::Values(2u, 3u, 4u, 8u));

TEST(MultiGpu, MoreDevicesReduceSamplingTime) {
  const auto spec = *graph::find_dataset("WV");
  const Graph g = graph::build_dataset(spec, DiffusionModel::IndependentCascade);
  imm::ImmParams params;
  params.k = 20;
  params.epsilon = 0.1;  // enough theta for the split to matter

  DevicePool one(1, 512);
  DevicePool four(4, 512);
  const auto solo = run_eim_multi(one.ptrs, g, DiffusionModel::IndependentCascade, params);
  const auto quad = run_eim_multi(four.ptrs, g, DiffusionModel::IndependentCascade, params);
  EXPECT_EQ(solo.seeds, quad.seeds);
  EXPECT_LT(quad.kernel_seconds, solo.kernel_seconds);
  // Not free: communication shows up.
  EXPECT_GT(quad.communication_seconds, solo.communication_seconds);
}

TEST(MultiGpu, ShardsSplitMemoryFootprint) {
  const Graph g = make_graph();
  const imm::ImmParams params = make_params();
  DevicePool one(1);
  DevicePool four(4);
  const auto solo = run_eim_multi(one.ptrs, g, DiffusionModel::IndependentCascade, params);
  const auto quad = run_eim_multi(four.ptrs, g, DiffusionModel::IndependentCascade, params);
  // Each shard's peak is well under the solo peak (R splits four ways; the
  // graph replica and queue pool are the fixed floor).
  EXPECT_LT(quad.peak_device_bytes, solo.peak_device_bytes);
}

TEST(MultiGpu, WorksUnderLtWithElimination) {
  const Graph g = make_graph(DiffusionModel::LinearThreshold);
  imm::ImmParams params = make_params();
  DevicePool pool(3);
  EimOptions options;
  options.eliminate_sources = true;
  const auto r =
      run_eim_multi(pool.ptrs, g, DiffusionModel::LinearThreshold, params, options);
  EXPECT_EQ(r.seeds.size(), params.k);
  EXPECT_GT(r.num_sets, 0u);
}

TEST(MultiGpu, RejectsEmptyDeviceList) {
  const Graph g = make_graph();
  EXPECT_THROW(
      (void)run_eim_multi({}, g, DiffusionModel::IndependentCascade, make_params()),
      support::Error);
}

TEST(MultiGpuFailover, DeviceLossMidSamplingKeepsSeedsBitIdentical) {
  // The headline resilience invariant (docs/RESILIENCE.md): killing a
  // device mid-sampling redistributes its shard to survivors, and because
  // random streams are keyed by sample index — not by device — the final
  // seed set is bit-identical to the fault-free run.
  const Graph g = make_graph();
  const imm::ImmParams params = make_params();

  DevicePool clean(4);
  const MultiGpuResult reference =
      run_eim_multi(clean.ptrs, g, DiffusionModel::IndependentCascade, params);

  DevicePool pool(4);
  gpusim::FaultPlan plan;
  plan.device_loss_kernel_ordinal = 2;  // dies on its third sampling wave
  pool.ptrs[2]->set_fault_plan(plan);
  support::metrics::MetricsRegistry registry;
  EimOptions options;
  options.metrics = &registry;
  const MultiGpuResult failed =
      run_eim_multi(pool.ptrs, g, DiffusionModel::IndependentCascade, params, options);

  EXPECT_EQ(failed.seeds, reference.seeds);
  EXPECT_EQ(failed.num_sets, reference.num_sets);
  EXPECT_EQ(failed.total_elements, reference.total_elements);
  EXPECT_DOUBLE_EQ(failed.lower_bound, reference.lower_bound);

  ASSERT_EQ(failed.failed_devices.size(), 1u);
  EXPECT_EQ(failed.failed_devices[0], 2u);
  EXPECT_GT(failed.failover_transfer_bytes, 0u);
  EXPECT_TRUE(pool.ptrs[2]->lost());
  EXPECT_EQ(registry.counter("multi.failover_events").value(), 1u);
  EXPECT_EQ(registry.counter("multi.failover_transfer_bytes").value(),
            failed.failover_transfer_bytes);
  EXPECT_EQ(registry.counter("fault.device_lost").value(), 1u);

  // The fault-free run reports no failover at all.
  EXPECT_TRUE(reference.failed_devices.empty());
  EXPECT_EQ(reference.failover_transfer_bytes, 0u);
  EXPECT_EQ(reference.failover_regenerated_sets, 0u);
}

TEST(MultiGpuFailover, PrimaryLossPromotesASurvivor) {
  const Graph g = make_graph();
  const imm::ImmParams params = make_params();

  DevicePool clean(3);
  const MultiGpuResult reference =
      run_eim_multi(clean.ptrs, g, DiffusionModel::IndependentCascade, params);

  DevicePool pool(3);
  gpusim::FaultPlan plan;
  plan.device_loss_kernel_ordinal = 1;
  pool.ptrs[0]->set_fault_plan(plan);  // kill the primary itself
  const MultiGpuResult failed =
      run_eim_multi(pool.ptrs, g, DiffusionModel::IndependentCascade, params);

  EXPECT_EQ(failed.seeds, reference.seeds);
  EXPECT_EQ(failed.num_sets, reference.num_sets);
  ASSERT_EQ(failed.failed_devices.size(), 1u);
  EXPECT_EQ(failed.failed_devices[0], 0u);
}

TEST(MultiGpuFailover, RetryExhaustionRetiresTheDevice) {
  // A device that keeps faulting transiently (beyond the retry budget) is
  // decommissioned exactly like a lost one; the run still completes with
  // identical seeds.
  const Graph g = make_graph();
  const imm::ImmParams params = make_params();

  DevicePool clean(2);
  const MultiGpuResult reference =
      run_eim_multi(clean.ptrs, g, DiffusionModel::IndependentCascade, params);

  DevicePool pool(2);
  gpusim::FaultPlan plan;
  plan.kernel_fault_ordinals = {1, 2, 3};  // consecutive: defeats 3 attempts
  pool.ptrs[1]->set_fault_plan(plan);
  const MultiGpuResult failed =
      run_eim_multi(pool.ptrs, g, DiffusionModel::IndependentCascade, params);

  EXPECT_EQ(failed.seeds, reference.seeds);
  ASSERT_EQ(failed.failed_devices.size(), 1u);
  EXPECT_EQ(failed.failed_devices[0], 1u);
  EXPECT_FALSE(pool.ptrs[1]->lost());  // retired, not dead: transient faults
}

TEST(MultiGpuFailover, DeviceLossAtOrdinalZeroKeepsSeeds) {
  // Edge regression: ordinal 0 kills the device on its very first wave,
  // before it commits anything — the respill is its whole batch.
  const Graph g = make_graph();
  const imm::ImmParams params = make_params();

  DevicePool clean(3);
  const MultiGpuResult reference =
      run_eim_multi(clean.ptrs, g, DiffusionModel::IndependentCascade, params);

  DevicePool pool(3);
  gpusim::FaultPlan plan;
  plan.device_loss_kernel_ordinal = 0;
  pool.ptrs[1]->set_fault_plan(plan);
  const MultiGpuResult failed =
      run_eim_multi(pool.ptrs, g, DiffusionModel::IndependentCascade, params);

  EXPECT_EQ(failed.seeds, reference.seeds);
  EXPECT_EQ(failed.num_sets, reference.num_sets);
  ASSERT_EQ(failed.failed_devices.size(), 1u);
  EXPECT_EQ(failed.failed_devices[0], 1u);
}

TEST(MultiGpuFailover, DeviceLossAtFinalWaveOrdinalFiresAndOneBeyondDoesNot) {
  // Edge regression: a clean run leaves the victim at kernel ordinal K. A
  // loss keyed at K-1 must still fail over (the last wave dies); keyed at
  // K the plan never fires and no failover may be reported.
  const Graph g = make_graph();
  const imm::ImmParams params = make_params();

  DevicePool clean(3);
  const MultiGpuResult reference =
      run_eim_multi(clean.ptrs, g, DiffusionModel::IndependentCascade, params);
  const std::uint64_t launches = clean.ptrs[1]->kernel_launch_ordinal();
  ASSERT_GT(launches, 0u);

  DevicePool at_last(3);
  gpusim::FaultPlan last_plan;
  last_plan.device_loss_kernel_ordinal = launches - 1;
  at_last.ptrs[1]->set_fault_plan(last_plan);
  const MultiGpuResult last =
      run_eim_multi(at_last.ptrs, g, DiffusionModel::IndependentCascade, params);
  EXPECT_EQ(last.seeds, reference.seeds);
  EXPECT_EQ(last.num_sets, reference.num_sets);
  ASSERT_EQ(last.failed_devices.size(), 1u);
  EXPECT_EQ(last.failed_devices[0], 1u);

  DevicePool beyond(3);
  gpusim::FaultPlan beyond_plan;
  beyond_plan.device_loss_kernel_ordinal = launches;
  beyond.ptrs[1]->set_fault_plan(beyond_plan);
  const MultiGpuResult never =
      run_eim_multi(beyond.ptrs, g, DiffusionModel::IndependentCascade, params);
  EXPECT_EQ(never.seeds, reference.seeds);
  EXPECT_TRUE(never.failed_devices.empty());
  EXPECT_FALSE(beyond.ptrs[1]->lost());
}

TEST(MultiGpuFailover, LosingEveryDeviceThrows) {
  const Graph g = make_graph();
  DevicePool pool(2);
  gpusim::FaultPlan plan;
  plan.device_loss_kernel_ordinal = 0;
  pool.ptrs[0]->set_fault_plan(plan);
  pool.ptrs[1]->set_fault_plan(plan);
  EXPECT_THROW((void)run_eim_multi(pool.ptrs, g, DiffusionModel::IndependentCascade,
                                   make_params()),
               support::Error);
}

}  // namespace
}  // namespace eim::eim_impl
