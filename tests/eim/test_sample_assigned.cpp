// Direct tests of the shard entry point: sample_assigned must reproduce,
// for arbitrary global-id subsets, exactly the sets the serial reference
// produces at those indices — the property multi-GPU sharding stands on.
#include <gtest/gtest.h>

#include "eim/eim/rrr_collection.hpp"
#include "eim/eim/sampler.hpp"
#include "eim/graph/generators.hpp"
#include "eim/imm/imm.hpp"
#include "eim/imm/rrr_store.hpp"

namespace eim::eim_impl {
namespace {

using graph::DiffusionModel;
using graph::Graph;
using graph::VertexId;

struct Fixture {
  Graph g;
  imm::ImmParams params;
  imm::RrrStore reference;

  Fixture() : g(Graph::from_edge_list(graph::barabasi_albert(300, 3, 0.3, 7))),
              reference(300) {
    graph::assign_weights(g, DiffusionModel::IndependentCascade);
    params.k = 3;
    (void)imm::sample_to_target(g, DiffusionModel::IndependentCascade, params,
                                reference, 400);
  }

  void expect_matches(const DeviceRrrCollection& col,
                      const std::vector<std::uint64_t>& globals) const {
    ASSERT_EQ(col.num_sets(), globals.size());
    for (std::uint64_t local = 0; local < globals.size(); ++local) {
      const auto expect = reference.set(globals[local]);
      ASSERT_EQ(col.set_length(local), expect.size()) << "local slot " << local;
      for (std::uint32_t j = 0; j < expect.size(); ++j) {
        ASSERT_EQ(col.element(local, j), expect[j]);
      }
    }
  }

  void run_into(gpusim::Device& device, DeviceRrrCollection& col,
                const std::vector<std::uint64_t>& globals) const {
    EimOptions options;
    options.eliminate_sources = false;
    options.sampler_blocks = 8;
    EimSampler sampler(device, g, DiffusionModel::IndependentCascade, params, options);
    sampler.sample_assigned(col, globals);
  }
};

TEST(SampleAssigned, EvenGlobalIdsMatchReference) {
  Fixture fx;
  std::vector<std::uint64_t> evens;
  for (std::uint64_t i = 0; i < 400; i += 2) evens.push_back(i);
  gpusim::Device device(gpusim::make_benchmark_device(256));
  DeviceRrrCollection col(device, fx.g.num_vertices(), true);
  fx.run_into(device, col, evens);
  fx.expect_matches(col, evens);
}

TEST(SampleAssigned, ArbitrarySubsetMatchesReference) {
  Fixture fx;
  const std::vector<std::uint64_t> ids{7, 13, 14, 55, 199, 200, 399};
  gpusim::Device device(gpusim::make_benchmark_device(256));
  DeviceRrrCollection col(device, fx.g.num_vertices(), true);
  fx.run_into(device, col, ids);
  fx.expect_matches(col, ids);
}

TEST(SampleAssigned, AppendsAfterExistingSets) {
  Fixture fx;
  gpusim::Device device(gpusim::make_benchmark_device(256));
  DeviceRrrCollection col(device, fx.g.num_vertices(), true);
  EimOptions options;
  options.eliminate_sources = false;
  options.sampler_blocks = 8;
  EimSampler sampler(device, fx.g, DiffusionModel::IndependentCascade, fx.params,
                     options);
  sampler.sample_assigned(col, std::vector<std::uint64_t>{0, 1});
  sampler.sample_assigned(col, std::vector<std::uint64_t>{2, 3});
  fx.expect_matches(col, {0, 1, 2, 3});
}

TEST(SampleAssigned, EmptyListIsNoop) {
  Fixture fx;
  gpusim::Device device(gpusim::make_benchmark_device(256));
  DeviceRrrCollection col(device, fx.g.num_vertices(), true);
  EimOptions options;
  options.sampler_blocks = 8;
  EimSampler sampler(device, fx.g, DiffusionModel::IndependentCascade, fx.params,
                     options);
  sampler.sample_assigned(col, {});
  EXPECT_EQ(col.num_sets(), 0u);
}

}  // namespace
}  // namespace eim::eim_impl
