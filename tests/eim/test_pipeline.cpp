#include "eim/eim/pipeline.hpp"

#include <gtest/gtest.h>

#include <set>

#include "eim/diffusion/forward.hpp"
#include "eim/graph/generators.hpp"
#include "eim/imm/imm.hpp"

namespace eim::eim_impl {
namespace {

using graph::DiffusionModel;
using graph::Graph;
using graph::VertexId;

Graph make_graph(DiffusionModel model = DiffusionModel::IndependentCascade,
                 VertexId n = 500) {
  Graph g = Graph::from_edge_list(graph::barabasi_albert(n, 3, 0.3, 7));
  graph::assign_weights(g, model);
  return g;
}

imm::ImmParams make_params(std::uint32_t k = 8) {
  imm::ImmParams p;
  p.k = k;
  p.epsilon = 0.3;
  return p;
}

EimOptions fast_options() {
  EimOptions o;
  o.sampler_blocks = 16;
  return o;
}

TEST(RunEim, EmptyGraphYieldsEmptyResult) {
  // Regression: sampling an empty graph drew source 0 from next_below(0)
  // and wrote stamp[0] of an empty array. The pipeline must short-circuit
  // to a zero-set, zero-seed result instead.
  gpusim::Device device(gpusim::make_benchmark_device(256));
  const Graph g = Graph::from_edge_list(graph::EdgeList(0));
  const EimResult r = run_eim(device, g, DiffusionModel::IndependentCascade,
                              make_params(), fast_options());
  EXPECT_TRUE(r.seeds.empty());
  EXPECT_EQ(r.num_sets, 0u);
  EXPECT_EQ(r.total_elements, 0u);
}

TEST(RunEim, ProducesKSeedsAndMetrics) {
  gpusim::Device device(gpusim::make_benchmark_device(256));
  const Graph g = make_graph();
  const EimResult r = run_eim(device, g, DiffusionModel::IndependentCascade,
                              make_params(), fast_options());
  EXPECT_EQ(r.seeds.size(), 8u);
  EXPECT_EQ(std::set<VertexId>(r.seeds.begin(), r.seeds.end()).size(), 8u);
  EXPECT_GT(r.num_sets, 0u);
  EXPECT_GT(r.device_seconds, 0.0);
  EXPECT_GT(r.kernel_seconds, 0.0);
  EXPECT_GT(r.transfer_seconds, 0.0);
  EXPECT_GT(r.peak_device_bytes, 0u);
  EXPECT_EQ(r.device_mallocs, 0u);
}

TEST(RunEim, LogEncodingShrinksReportedBytes) {
  const Graph g = make_graph();
  gpusim::Device device(gpusim::make_benchmark_device(256));

  EimOptions packed = fast_options();
  const EimResult with = run_eim(device, g, DiffusionModel::IndependentCascade,
                                 make_params(), packed);
  EimOptions raw = fast_options();
  raw.log_encode = false;
  const EimResult without = run_eim(device, g, DiffusionModel::IndependentCascade,
                                    make_params(), raw);

  EXPECT_LT(with.rrr_bytes, with.rrr_raw_bytes);
  EXPECT_LT(with.network_bytes, with.network_raw_bytes);
  EXPECT_EQ(without.rrr_bytes, without.rrr_raw_bytes);
  EXPECT_EQ(without.network_bytes, without.network_raw_bytes);
  // Identical algorithmic output either way.
  EXPECT_EQ(with.seeds, without.seeds);
  EXPECT_EQ(with.num_sets, without.num_sets);
}

TEST(RunEim, SeedsMatchSerialImmQuality) {
  // eIM with elimination off and the same seed must reproduce the serial
  // reference bit-for-bit (same R -> same greedy -> same seeds).
  const Graph g = make_graph();
  imm::ImmParams params = make_params();

  EimOptions opts = fast_options();
  opts.eliminate_sources = false;
  gpusim::Device device(gpusim::make_benchmark_device(256));
  const EimResult gpu = run_eim(device, g, DiffusionModel::IndependentCascade, params, opts);

  params.eliminate_sources = false;
  const imm::ImmResult serial =
      imm::run_imm_serial(g, DiffusionModel::IndependentCascade, params);

  EXPECT_EQ(gpu.seeds, serial.seeds);
  EXPECT_EQ(gpu.num_sets, serial.num_sets);
  EXPECT_EQ(gpu.total_elements, serial.total_elements);
  EXPECT_DOUBLE_EQ(gpu.lower_bound, serial.lower_bound);
}

TEST(RunEim, EliminationKeepsSeedQuality) {
  const Graph g = make_graph();
  gpusim::Device device(gpusim::make_benchmark_device(256));

  EimOptions with = fast_options();
  EimOptions without = fast_options();
  without.eliminate_sources = false;
  const EimResult a = run_eim(device, g, DiffusionModel::IndependentCascade,
                              make_params(), with);
  const EimResult b = run_eim(device, g, DiffusionModel::IndependentCascade,
                              make_params(), without);

  const auto spread_a = diffusion::estimate_spread(
      g, DiffusionModel::IndependentCascade, a.seeds, 400, 3);
  const auto spread_b = diffusion::estimate_spread(
      g, DiffusionModel::IndependentCascade, b.seeds, 400, 3);
  EXPECT_NEAR(spread_a.mean, spread_b.mean, 0.12 * spread_b.mean + 1.0);
}

TEST(RunEim, WorksUnderLt) {
  gpusim::Device device(gpusim::make_benchmark_device(256));
  const Graph g = make_graph(DiffusionModel::LinearThreshold);
  const EimResult r =
      run_eim(device, g, DiffusionModel::LinearThreshold, make_params(), fast_options());
  EXPECT_EQ(r.seeds.size(), 8u);
  EXPECT_GT(r.num_sets, 0u);
}

TEST(RunEim, OomOnTinyDevice) {
  gpusim::Device device(gpusim::make_benchmark_device(1));  // 1 MB
  const Graph g = make_graph(DiffusionModel::IndependentCascade, 2000);
  imm::ImmParams params = make_params();
  params.epsilon = 0.05;  // force a large theta
  EXPECT_THROW(
      (void)run_eim(device, g, DiffusionModel::IndependentCascade, params, fast_options()),
      support::DeviceOutOfMemoryError);
}

TEST(RunEim, TighterEpsilonCostsMoreModeledTime) {
  const Graph g = make_graph();
  gpusim::Device device(gpusim::make_benchmark_device(512));
  imm::ImmParams loose = make_params();
  loose.epsilon = 0.4;
  imm::ImmParams tight = make_params();
  tight.epsilon = 0.15;
  const EimResult a =
      run_eim(device, g, DiffusionModel::IndependentCascade, loose, fast_options());
  const EimResult b =
      run_eim(device, g, DiffusionModel::IndependentCascade, tight, fast_options());
  EXPECT_GT(b.num_sets, a.num_sets);
  EXPECT_GT(b.device_seconds, a.device_seconds);
}

TEST(RunEim, TimelineResetPerRun) {
  const Graph g = make_graph();
  gpusim::Device device(gpusim::make_benchmark_device(256));
  const EimResult a = run_eim(device, g, DiffusionModel::IndependentCascade,
                              make_params(), fast_options());
  const EimResult b = run_eim(device, g, DiffusionModel::IndependentCascade,
                              make_params(), fast_options());
  // Deterministic run on a reset device: identical modeled time.
  EXPECT_DOUBLE_EQ(a.device_seconds, b.device_seconds);
  EXPECT_EQ(a.seeds, b.seeds);
}

}  // namespace
}  // namespace eim::eim_impl
