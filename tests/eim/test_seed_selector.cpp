#include "eim/eim/seed_selector.hpp"

#include <gtest/gtest.h>

#include "eim/eim/sampler.hpp"
#include "eim/graph/generators.hpp"
#include "eim/imm/imm.hpp"
#include "eim/imm/rrr_store.hpp"
#include "eim/support/metrics.hpp"

namespace eim::eim_impl {
namespace {

using graph::DiffusionModel;
using graph::Graph;
using graph::VertexId;

struct Fixture {
  gpusim::Device device{gpusim::make_benchmark_device(256)};
  Graph g;
  DeviceRrrCollection collection;

  explicit Fixture(VertexId n = 400, std::uint64_t sets = 2000)
      : g(Graph::from_edge_list(graph::barabasi_albert(n, 3, 0.3, 7))),
        collection(device, n, true) {
    graph::assign_weights(g, DiffusionModel::IndependentCascade);
    imm::ImmParams params;
    params.k = 5;
    EimOptions options;
    options.sampler_blocks = 16;
    options.eliminate_sources = false;  // mirror the CPU reference store
    EimSampler sampler(device, g, DiffusionModel::IndependentCascade, params, options);
    sampler.sample_to(collection, sets);
  }
};

TEST(GpuSeedSelector, MatchesCpuGreedyExactly) {
  Fixture fx;
  // CPU reference over the same sample streams.
  imm::RrrStore store(fx.g.num_vertices());
  imm::ImmParams params;
  params.k = 5;
  (void)imm::sample_to_target(fx.g, DiffusionModel::IndependentCascade, params, store,
                              2000);

  GpuSeedSelector selector(fx.device, ScanStrategy::ThreadPerSet);
  const auto gpu_sel = selector.select(fx.collection, 10);
  const auto cpu_sel = imm::select_seeds_greedy(store, 10);
  EXPECT_EQ(gpu_sel.seeds, cpu_sel.seeds);
  EXPECT_EQ(gpu_sel.covered_sets, cpu_sel.covered_sets);
  EXPECT_DOUBLE_EQ(gpu_sel.coverage_fraction, cpu_sel.coverage_fraction);
}

TEST(GpuSeedSelector, WarpStrategySameAnswerDifferentCost) {
  Fixture fx;
  GpuSeedSelector thread_sel(fx.device, ScanStrategy::ThreadPerSet);
  GpuSeedSelector warp_sel(fx.device, ScanStrategy::WarpPerSet);
  const auto a = thread_sel.select(fx.collection, 8);
  const auto b = warp_sel.select(fx.collection, 8);
  EXPECT_EQ(a.seeds, b.seeds);  // strategy affects cost, never the answer
}

TEST(GpuSeedSelector, ChargesPerPickKernels) {
  Fixture fx;
  fx.device.timeline().reset();
  GpuSeedSelector selector(fx.device, ScanStrategy::ThreadPerSet);
  (void)selector.select(fx.collection, 4);
  // 4 argmax + up to 4 update kernels.
  std::size_t argmax = 0;
  std::size_t update = 0;
  for (const auto& seg : fx.device.timeline().segments()) {
    argmax += seg.label == "eim::argmax";
    update += seg.label == "eim::update_counts";
  }
  EXPECT_EQ(argmax, 4u);
  EXPECT_EQ(update, 4u);
}

TEST(GpuSeedSelector, SaturatedSelectionChargesAllKPicks) {
  // One vertex covers every set, so picks 2..k are zero-gain fillers. The
  // device still launches an argmax + update pair per pick; the filler path
  // must charge exactly like the unsaturated one (k pairs total), not bail
  // out after the first pick.
  gpusim::Device device(gpusim::make_benchmark_device(256));
  DeviceRrrCollection collection(device, 10, /*log_encode=*/true);
  collection.reserve(3, 16);
  const std::vector<VertexId> s0{0};
  const std::vector<VertexId> s2{0, 1};
  ASSERT_TRUE(collection.try_commit(0, s0));
  ASSERT_TRUE(collection.try_commit(1, s0));
  ASSERT_TRUE(collection.try_commit(2, s2));
  collection.set_num_sets(3);

  device.timeline().reset();
  support::metrics::MetricsRegistry registry;
  GpuSeedSelector selector(device, ScanStrategy::ThreadPerSet);
  selector.attach_metrics(&registry);
  const auto sel = selector.select(collection, 5);
  ASSERT_EQ(sel.seeds.size(), 5u);
  EXPECT_EQ(sel.seeds.front(), 0u);

  std::size_t argmax = 0;
  std::size_t update = 0;
  for (const auto& seg : device.timeline().segments()) {
    argmax += seg.label == "eim::argmax";
    update += seg.label == "eim::update_counts";
  }
  EXPECT_EQ(argmax, 5u);
  EXPECT_EQ(update, 5u);
  EXPECT_EQ(registry.counter("selector.argmax_kernels").value(), 5u);
  EXPECT_EQ(registry.counter("selector.update_kernels").value(), 5u);
  EXPECT_EQ(registry.counter("selector.fallback_picks").value(), 4u);
}

TEST(GpuSeedSelector, ThreadScanWinsAtLargeN) {
  // §3.5's scaling law: with N >> W_n, thread-per-set beats warp-per-set;
  // the crossover is what Fig. 3 plots.
  Fixture fx(300, 60'000);

  fx.device.timeline().reset();
  GpuSeedSelector thread_sel(fx.device, ScanStrategy::ThreadPerSet);
  (void)thread_sel.select(fx.collection, 3);
  const double thread_time = fx.device.timeline().kernel_seconds();

  fx.device.timeline().reset();
  GpuSeedSelector warp_sel(fx.device, ScanStrategy::WarpPerSet);
  (void)warp_sel.select(fx.collection, 3);
  const double warp_time = fx.device.timeline().kernel_seconds();

  EXPECT_LT(thread_time, warp_time);
}

TEST(GpuSeedSelector, WarpScanWinsAtSmallN) {
  Fixture fx(300, 300);  // far fewer sets than resident warps

  fx.device.timeline().reset();
  GpuSeedSelector thread_sel(fx.device, ScanStrategy::ThreadPerSet);
  (void)thread_sel.select(fx.collection, 3);
  const double thread_time = fx.device.timeline().kernel_seconds();

  fx.device.timeline().reset();
  GpuSeedSelector warp_sel(fx.device, ScanStrategy::WarpPerSet);
  (void)warp_sel.select(fx.collection, 3);
  const double warp_time = fx.device.timeline().kernel_seconds();

  EXPECT_LE(warp_time, thread_time);
}

// Property pin for the CELF lazy heap: against the linear-reference scan it
// must produce the identical seed sequence (same tie-breaks), identical
// coverage, and identical modeled device time — the heap is a host-side
// accelerator only; the modeled argmax/update kernel charges are shared.
TEST(GpuSeedSelector, LazyHeapMatchesLinearReferenceExactly) {
  for (const std::uint32_t n : {50u, 400u}) {
    for (const std::uint64_t sets : {60ull, 1500ull}) {
      Fixture fx(n, sets);
      // k large enough to drain into the zero-gain filler path on the small
      // configurations, exercising the heap's accurate-zero handoff.
      const std::uint32_t k = std::min(n / 2, 40u);

      fx.device.timeline().reset();
      GpuSeedSelector heap_sel(fx.device, ScanStrategy::ThreadPerSet);
      ASSERT_EQ(heap_sel.argmax_mode(), ArgMaxMode::kLazyHeap);  // the default
      const auto heap_res = heap_sel.select(fx.collection, k);
      const double heap_seconds = fx.device.timeline().kernel_seconds();

      fx.device.timeline().reset();
      GpuSeedSelector ref_sel(fx.device, ScanStrategy::ThreadPerSet);
      ref_sel.set_argmax_mode(ArgMaxMode::kLinearReference);
      const auto ref_res = ref_sel.select(fx.collection, k);
      const double ref_seconds = fx.device.timeline().kernel_seconds();

      EXPECT_EQ(heap_res.seeds, ref_res.seeds) << "n=" << n << " sets=" << sets;
      EXPECT_EQ(heap_res.covered_sets, ref_res.covered_sets);
      EXPECT_DOUBLE_EQ(heap_res.coverage_fraction, ref_res.coverage_fraction);
      EXPECT_EQ(heap_seconds, ref_seconds);  // bit-identical modeled charge
    }
  }
}

TEST(GpuSeedSelector, RepeatedSelectionIsStable) {
  Fixture fx;
  GpuSeedSelector selector(fx.device, ScanStrategy::ThreadPerSet);
  const auto a = selector.select(fx.collection, 6);
  const auto b = selector.select(fx.collection, 6);
  EXPECT_EQ(a.seeds, b.seeds);
}

TEST(GpuSeedSelector, RejectsBadK) {
  Fixture fx;
  GpuSeedSelector selector(fx.device, ScanStrategy::ThreadPerSet);
  EXPECT_THROW((void)selector.select(fx.collection, 0), support::Error);
}

}  // namespace
}  // namespace eim::eim_impl
