#include "eim/eim/sampler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "eim/graph/generators.hpp"
#include "eim/imm/imm.hpp"
#include "eim/imm/rrr_store.hpp"
#include "eim/support/error.hpp"
#include "eim/support/metrics.hpp"

namespace eim::eim_impl {
namespace {

using graph::DiffusionModel;
using graph::Graph;
using graph::VertexId;

Graph make_graph(DiffusionModel model, VertexId n = 400) {
  Graph g = Graph::from_edge_list(graph::barabasi_albert(n, 3, 0.3, 7));
  graph::assign_weights(g, model);
  return g;
}

imm::ImmParams make_params(bool eliminate = false) {
  imm::ImmParams p;
  p.k = 5;
  p.epsilon = 0.3;
  p.eliminate_sources = eliminate;
  return p;
}

EimOptions make_options(bool eliminate = false) {
  EimOptions o;
  o.eliminate_sources = eliminate;
  o.sampler_blocks = 16;  // small for tests
  return o;
}

TEST(EimSampler, ProducesTargetSets) {
  gpusim::Device device(gpusim::make_benchmark_device(128));
  const Graph g = make_graph(DiffusionModel::IndependentCascade);
  DeviceRrrCollection col(device, g.num_vertices(), true);
  EimSampler sampler(device, g, DiffusionModel::IndependentCascade, make_params(),
                     make_options());
  sampler.sample_to(col, 500);
  EXPECT_EQ(col.num_sets(), 500u);
  EXPECT_GT(col.total_elements(), 500u);  // BA graphs cascade beyond sources
}

TEST(EimSampler, SampleToIsIdempotent) {
  gpusim::Device device(gpusim::make_benchmark_device(128));
  const Graph g = make_graph(DiffusionModel::IndependentCascade);
  DeviceRrrCollection col(device, g.num_vertices(), true);
  EimSampler sampler(device, g, DiffusionModel::IndependentCascade, make_params(),
                     make_options());
  sampler.sample_to(col, 200);
  const auto elements = col.total_elements();
  sampler.sample_to(col, 200);
  sampler.sample_to(col, 100);
  EXPECT_EQ(col.num_sets(), 200u);
  EXPECT_EQ(col.total_elements(), elements);
}

// The central parity property: the simulated kernel must generate the exact
// multiset of RRR sets the serial reference generates, per sample index,
// for both models and both source-elimination settings.
struct ParityCase {
  DiffusionModel model;
  bool eliminate;
};

class SamplerParity : public ::testing::TestWithParam<ParityCase> {};

TEST_P(SamplerParity, MatchesSerialReferenceExactly) {
  const auto [model, eliminate] = GetParam();
  const Graph g = make_graph(model);
  const imm::ImmParams params = make_params(eliminate);

  // Serial reference.
  imm::RrrStore store(g.num_vertices());
  (void)imm::sample_to_target(g, model, params, store, 400);

  // Simulated kernel.
  gpusim::Device device(gpusim::make_benchmark_device(128));
  DeviceRrrCollection col(device, g.num_vertices(), true);
  EimSampler sampler(device, g, model, params, make_options(eliminate));
  sampler.sample_to(col, 400);

  ASSERT_EQ(col.num_sets(), store.num_sets());
  ASSERT_EQ(col.total_elements(), store.total_elements());
  for (std::uint64_t i = 0; i < store.num_sets(); ++i) {
    const auto expect = store.set(i);
    ASSERT_EQ(col.set_length(i), expect.size()) << "set " << i;
    for (std::uint32_t j = 0; j < expect.size(); ++j) {
      EXPECT_EQ(col.element(i, j), expect[j]) << "set " << i << " elem " << j;
    }
  }
  // Counts must agree too.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(col.counts()[v], store.count(v));
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndElimination, SamplerParity,
    ::testing::Values(ParityCase{DiffusionModel::IndependentCascade, false},
                      ParityCase{DiffusionModel::IndependentCascade, true},
                      ParityCase{DiffusionModel::LinearThreshold, false},
                      ParityCase{DiffusionModel::LinearThreshold, true}));

TEST(EimSampler, ZeroWeightEdgesNeverActivate) {
  // Regression for the `<=` comparison bug: all weights 0.0, so every RRR
  // set is the singleton {source} and total elements == committed sets.
  Graph g = Graph::from_edge_list(graph::complete_graph(16));
  graph::assign_weights(g, DiffusionModel::IndependentCascade);
  std::fill(g.mutable_in_weights().begin(), g.mutable_in_weights().end(), 0.0f);
  g.sync_out_weights_from_in();

  gpusim::Device device(gpusim::make_benchmark_device(128));
  DeviceRrrCollection col(device, g.num_vertices(), true);
  EimSampler sampler(device, g, DiffusionModel::IndependentCascade, make_params(),
                     make_options());
  sampler.sample_to(col, 2000);
  EXPECT_EQ(col.num_sets(), 2000u);
  EXPECT_EQ(col.total_elements(), col.num_sets());
}

TEST(EimSampler, ZeroWeightEdgeSurvivesAnExactZeroDraw) {
  // The sweep only trips the old `<=` bug on a draw of exactly 0.0
  // (probability 2^-24). Global sample 31329045 of rng_seed 0 picks source
  // 1 and then draws 0.0f (exhaustive scan over the RRRS streams); verify
  // that precondition so an RNG change fails loudly, then sample across it.
  constexpr std::uint64_t kZeroDrawSample = 31329045;
  support::RandomStream probe(
      0, support::derive_stream(imm::kSampleStreamTag, kZeroDrawSample, 0));
  ASSERT_EQ(probe.next_below(2), 1u) << "zero-draw sample stale";
  ASSERT_EQ(probe.next_float(), 0.0f) << "zero-draw sample stale";

  graph::EdgeList el(2);
  el.add_edge(0, 1);
  Graph g = Graph::from_edge_list(el);
  graph::assign_weights(g, DiffusionModel::IndependentCascade);
  g.mutable_in_weights()[0] = 0.0f;
  g.sync_out_weights_from_in();

  gpusim::Device device(gpusim::make_benchmark_device(128));
  DeviceRrrCollection col(device, g.num_vertices(), true);
  imm::ImmParams params = make_params();
  params.rng_seed = 0;
  EimSampler sampler(device, g, DiffusionModel::IndependentCascade, params,
                     make_options());
  sampler.sample_assigned(col, std::vector<std::uint64_t>{kZeroDrawSample});
  ASSERT_EQ(col.num_sets(), 1u);
  // With `<=` the zero draw would activate the 0->1 edge and the set would
  // be {0, 1}.
  ASSERT_EQ(col.set_length(0), 1u);
  EXPECT_EQ(col.element(0, 0), 1u);
}

TEST(EimSampler, EmptyGraphIsRejected) {
  // next_below(0) returns 0, so sampling an empty graph used to read
  // stamp[0] of an empty array; it must throw cleanly instead.
  const Graph g = Graph::from_edge_list(graph::EdgeList(0));
  gpusim::Device device(gpusim::make_benchmark_device(128));
  DeviceRrrCollection col(device, 0, true);
  EimSampler sampler(device, g, DiffusionModel::IndependentCascade, make_params(),
                     make_options());
  EXPECT_THROW(sampler.sample_to(col, 1), support::Error);
  EXPECT_THROW(
      sampler.sample_assigned(col, std::vector<std::uint64_t>{0}),
      support::Error);
  // The empty-list entry points stay no-ops.
  sampler.sample_assigned(col, {});
  EXPECT_EQ(col.num_sets(), 0u);
}

TEST(EimSampler, QueueDepthObservedOncePerCommittedSample) {
  // Force capacity-retried samples: every cascade covers all 256 vertices,
  // so the first wave's average-based reserve is far too small and most
  // samples re-run in later waves. The queue-depth histogram must still
  // count each *committed* sample exactly once (it used to be observed per
  // wave attempt, double-counting retries).
  Graph g = Graph::from_edge_list(graph::complete_graph(256));
  graph::assign_weights(g, DiffusionModel::IndependentCascade);
  std::fill(g.mutable_in_weights().begin(), g.mutable_in_weights().end(), 1.0f);
  g.sync_out_weights_from_in();

  gpusim::Device device(gpusim::make_benchmark_device(128));
  support::metrics::MetricsRegistry registry;
  DeviceRrrCollection col(device, g.num_vertices(), true);
  col.attach_metrics(&registry);
  EimOptions options = make_options();
  options.metrics = &registry;
  EimSampler sampler(device, g, DiffusionModel::IndependentCascade, make_params(),
                     options);
  constexpr std::uint64_t kSamples = 64;
  sampler.sample_to(col, kSamples);

  ASSERT_GT(registry.counter("sampler.waves").value(), 1u)
      << "test graph no longer forces capacity retries";
  ASSERT_GT(registry.counter("sampler.commit_retries").value(), 0u);
  const auto& depth = registry.histogram("sampler.queue_depth");
  EXPECT_EQ(depth.count(), kSamples);
  // Every set spans the whole graph, so the recorded depths do too.
  EXPECT_EQ(depth.sum(), kSamples * 256u);
}

TEST(EimSampler, EliminationRemovesSourcesAndCountsDiscards) {
  // Skewed R-MAT: plenty of zero-in-degree sources -> singleton discards.
  Graph g = Graph::from_edge_list(graph::rmat(
      {.scale = 9, .num_edges = 1500, .a = 0.7, .b = 0.15, .c = 0.1, .d = 0.05}, 5));
  graph::assign_weights(g, DiffusionModel::IndependentCascade);

  gpusim::Device device(gpusim::make_benchmark_device(128));
  DeviceRrrCollection col(device, g.num_vertices(), true);
  EimSampler sampler(device, g, DiffusionModel::IndependentCascade, make_params(true),
                     make_options(true));
  sampler.sample_to(col, 300);
  EXPECT_GT(sampler.singletons_discarded(), 0u);
}

TEST(EimSampler, ChargesKernelTime) {
  gpusim::Device device(gpusim::make_benchmark_device(128));
  const Graph g = make_graph(DiffusionModel::IndependentCascade);
  DeviceRrrCollection col(device, g.num_vertices(), true);
  EimSampler sampler(device, g, DiffusionModel::IndependentCascade, make_params(),
                     make_options());
  sampler.sample_to(col, 300);
  EXPECT_GT(device.timeline().kernel_seconds(), 0.0);
}

TEST(EimSampler, MoreSetsCostMoreModeledTime) {
  const Graph g = make_graph(DiffusionModel::IndependentCascade);
  auto run = [&](std::uint64_t sets) {
    gpusim::Device device(gpusim::make_benchmark_device(256));
    DeviceRrrCollection col(device, g.num_vertices(), true);
    EimSampler sampler(device, g, DiffusionModel::IndependentCascade, make_params(),
                       make_options());
    sampler.sample_to(col, sets);
    return device.timeline().kernel_seconds();
  };
  EXPECT_LT(run(200), run(4000));
}

TEST(EimSampler, LtSetsAreWalks) {
  const Graph g = make_graph(DiffusionModel::LinearThreshold);
  gpusim::Device device(gpusim::make_benchmark_device(128));
  DeviceRrrCollection col(device, g.num_vertices(), true);
  EimSampler sampler(device, g, DiffusionModel::LinearThreshold, make_params(),
                     make_options());
  sampler.sample_to(col, 400);
  // Walk sets on a 400-vertex BA graph stay small and duplicate-free.
  for (std::uint64_t i = 0; i < col.num_sets(); ++i) {
    std::vector<VertexId> set;
    for (std::uint32_t j = 0; j < col.set_length(i); ++j) set.push_back(col.element(i, j));
    EXPECT_TRUE(std::is_sorted(set.begin(), set.end()));
    EXPECT_EQ(std::adjacent_find(set.begin(), set.end()), set.end());
  }
}

TEST(EimSampler, AtomicAddLtVariantSameSetsHigherCost) {
  const Graph g = make_graph(DiffusionModel::LinearThreshold, 600);
  const imm::ImmParams params = make_params();

  auto run = [&](LtActivationMethod method) {
    gpusim::Device device(gpusim::make_benchmark_device(256));
    DeviceRrrCollection col(device, g.num_vertices(), true);
    EimOptions opts = make_options();
    opts.lt_activation = method;
    EimSampler sampler(device, g, DiffusionModel::LinearThreshold, params, opts);
    sampler.sample_to(col, 1000);
    std::uint64_t checksum = 0;
    for (std::uint64_t i = 0; i < col.num_sets(); ++i) {
      for (std::uint32_t j = 0; j < col.set_length(i); ++j) {
        checksum = checksum * 31 + col.element(i, j);
      }
    }
    return std::pair{checksum, device.timeline().kernel_seconds()};
  };

  const auto [scan_sum, scan_time] = run(LtActivationMethod::PrefixScan);
  const auto [atomic_sum, atomic_time] = run(LtActivationMethod::AtomicAdd);
  EXPECT_EQ(scan_sum, atomic_sum);      // identical sets
  EXPECT_GT(atomic_time, scan_time);    // §3.3: serialization costs more
}

}  // namespace
}  // namespace eim::eim_impl
