// OomPolicy::Degrade and transient-fault retry behavior of the single-device
// pipeline (docs/RESILIENCE.md).
#include <gtest/gtest.h>

#include "eim/eim/pipeline.hpp"
#include "eim/graph/generators.hpp"
#include "eim/graph/weights.hpp"
#include "eim/gpusim/device.hpp"
#include "eim/support/error.hpp"
#include "eim/support/metrics.hpp"

namespace eim::eim_impl {
namespace {

using graph::DiffusionModel;
using graph::Graph;

Graph make_graph() {
  Graph g = Graph::from_edge_list(graph::barabasi_albert(600, 3, 0.3, 7));
  graph::assign_weights(g, DiffusionModel::IndependentCascade);
  return g;
}

imm::ImmParams make_params() {
  imm::ImmParams p;
  p.k = 8;
  p.epsilon = 0.3;
  return p;
}

/// A device small enough that RRR-collection growth cannot complete, but
/// large enough for the fixed floor (graph replica + sampler pool).
gpusim::Device make_tiny_device() {
  gpusim::DeviceSpec spec = gpusim::make_benchmark_device(1);
  spec.global_memory_bytes = 160 << 10;  // 160 KB
  return gpusim::Device(spec);
}

EimOptions small_pool_options() {
  EimOptions options;
  options.sampler_blocks = 16;  // shrink the per-block queue pool
  return options;
}

TEST(Degrade, ThrowPolicyPropagatesTheOom) {
  const Graph g = make_graph();
  gpusim::Device device = make_tiny_device();
  EimOptions options = small_pool_options();
  options.oom_policy = OomPolicy::Throw;
  EXPECT_THROW(
      (void)run_eim(device, g, DiffusionModel::IndependentCascade, make_params(),
                    options),
      support::DeviceOutOfMemoryError);
}

TEST(Degrade, DegradePolicyReturnsBestEffortSeeds) {
  const Graph g = make_graph();
  gpusim::Device device = make_tiny_device();
  support::metrics::MetricsRegistry registry;
  EimOptions options = small_pool_options();
  options.oom_policy = OomPolicy::Degrade;
  options.metrics = &registry;

  const EimResult result =
      run_eim(device, g, DiffusionModel::IndependentCascade, make_params(), options);

  EXPECT_TRUE(result.degraded);
  EXPECT_GT(result.degrade_shortfall_bytes, 0u);
  // Best-effort, but still a full seed set over the sets that fit.
  EXPECT_EQ(result.seeds.size(), make_params().k);
  EXPECT_GT(result.num_sets, 0u);
  EXPECT_EQ(registry.counter("degrade.activations").value(), 1u);
  EXPECT_EQ(registry.gauge("degrade.shortfall_bytes").value(),
            result.degrade_shortfall_bytes);
}

TEST(Degrade, FaultFreeRunsReportNotDegraded) {
  const Graph g = make_graph();
  gpusim::Device device(gpusim::make_benchmark_device(256));
  const EimResult result =
      run_eim(device, g, DiffusionModel::IndependentCascade, make_params());
  EXPECT_FALSE(result.degraded);
  EXPECT_EQ(result.degrade_shortfall_bytes, 0u);
}

TEST(Degrade, ScriptedAllocOomAlsoDegrades) {
  // An injected OOM (fault plan, not genuine exhaustion) takes the same
  // degrade path: the run must not distinguish why memory "ran out".
  const Graph g = make_graph();
  gpusim::Device device(gpusim::make_benchmark_device(256));
  gpusim::FaultPlan plan;
  plan.alloc_oom_ordinals = {6};  // past staging, inside collection growth
  device.set_fault_plan(plan);

  EimOptions options;
  options.oom_policy = OomPolicy::Degrade;
  const EimResult result =
      run_eim(device, g, DiffusionModel::IndependentCascade, make_params(), options);
  EXPECT_TRUE(result.degraded);
  EXPECT_EQ(result.seeds.size(), make_params().k);
  EXPECT_EQ(device.fault_stats().alloc_ooms, 1u);
}

TEST(Resilience, TransientKernelFaultRetriesToIdenticalSeeds) {
  const Graph g = make_graph();
  const imm::ImmParams params = make_params();

  gpusim::Device clean(gpusim::make_benchmark_device(256));
  const EimResult reference =
      run_eim(clean, g, DiffusionModel::IndependentCascade, params);

  gpusim::Device faulty(gpusim::make_benchmark_device(256));
  gpusim::FaultPlan plan;
  plan.kernel_fault_ordinals = {0};  // first eim::sample wave fails once
  faulty.set_fault_plan(plan);
  support::metrics::MetricsRegistry registry;
  EimOptions options;
  options.metrics = &registry;
  const EimResult retried =
      run_eim(faulty, g, DiffusionModel::IndependentCascade, params, options);

  EXPECT_EQ(retried.seeds, reference.seeds);
  EXPECT_EQ(retried.num_sets, reference.num_sets);
  EXPECT_FALSE(retried.degraded);
  EXPECT_EQ(faulty.fault_stats().kernel_faults, 1u);
  EXPECT_EQ(registry.counter("retry.attempts").value(), 1u);
  EXPECT_EQ(registry.counter("fault.kernel_faults_injected").value(), 1u);
  // The recovery time is on the modeled ledger, not free.
  EXPECT_GT(faulty.timeline().backoff_seconds(), 0.0);
  EXPECT_GT(retried.device_seconds, reference.device_seconds);
}

TEST(Resilience, TransientTransferFaultRetriesToIdenticalSeeds) {
  const Graph g = make_graph();
  const imm::ImmParams params = make_params();

  gpusim::Device clean(gpusim::make_benchmark_device(256));
  const EimResult reference =
      run_eim(clean, g, DiffusionModel::IndependentCascade, params);

  gpusim::Device faulty(gpusim::make_benchmark_device(256));
  gpusim::FaultPlan plan;
  plan.transfer_fault_ordinals = {0};  // network CSC upload fails once
  faulty.set_fault_plan(plan);
  const EimResult retried =
      run_eim(faulty, g, DiffusionModel::IndependentCascade, params);

  EXPECT_EQ(retried.seeds, reference.seeds);
  EXPECT_EQ(faulty.fault_stats().transfer_faults, 1u);
}

TEST(Resilience, ExhaustedRetriesPropagateTheFault) {
  const Graph g = make_graph();
  gpusim::Device device(gpusim::make_benchmark_device(256));
  gpusim::FaultPlan plan;
  plan.kernel_fault_ordinals = {0, 1, 2};  // consecutive: defeats 3 attempts
  device.set_fault_plan(plan);
  EXPECT_THROW(
      (void)run_eim(device, g, DiffusionModel::IndependentCascade, make_params()),
      support::DeviceFaultError);
}

}  // namespace
}  // namespace eim::eim_impl
