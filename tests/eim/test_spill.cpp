// Memory-pressure resilience: the tiered RRR spill hierarchy (device →
// compressed host → disk) behind DeviceRrrCollection, its disk fault
// injection, and the CRC quarantine-and-resample recovery path
// (docs/RESILIENCE.md "Memory-pressure tiers").
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <vector>

#include "eim/eim/checkpoint.hpp"
#include "eim/eim/pipeline.hpp"
#include "eim/eim/tiered_store.hpp"
#include "eim/graph/generators.hpp"
#include "eim/graph/weights.hpp"
#include "eim/gpusim/device.hpp"
#include "eim/support/error.hpp"
#include "eim/support/metrics.hpp"

namespace eim::eim_impl {
namespace {

using graph::DiffusionModel;
using graph::Graph;
using graph::VertexId;

Graph make_graph() {
  Graph g = Graph::from_edge_list(graph::barabasi_albert(600, 3, 0.3, 7));
  graph::assign_weights(g, DiffusionModel::IndependentCascade);
  return g;
}

imm::ImmParams make_params() {
  imm::ImmParams p;
  p.k = 8;
  p.epsilon = 0.3;
  return p;
}

EimResult run_reference(const Graph& g) {
  gpusim::Device device(gpusim::make_benchmark_device(256));
  return run_eim(device, g, DiffusionModel::IndependentCascade, make_params());
}

/// Spill configuration that forces every tier into play: the device budget
/// is a quarter of the unconstrained R footprint, blocks are small so
/// several exist, and the 1-byte host budget pushes every block to disk.
SpillOptions tight_spill(const EimResult& reference, bool to_disk) {
  SpillOptions spill;
  spill.policy = SpillPolicy::Spill;
  spill.device_budget_bytes = reference.rrr_bytes / 4;
  spill.sets_per_block = 256;
  if (to_disk) spill.host_budget_bytes = 1;
  return spill;
}

EimResult run_spill(const Graph& g, const SpillOptions& spill,
                    const gpusim::FaultPlan& plan = {},
                    support::metrics::MetricsRegistry* metrics = nullptr) {
  gpusim::Device device(gpusim::make_benchmark_device(256));
  device.set_fault_plan(plan);
  EimOptions options;
  options.spill = spill;
  options.metrics = metrics;
  return run_eim(device, g, DiffusionModel::IndependentCascade, make_params(),
                 options);
}

TEST(Spill, BudgetedRunMatchesUnconstrainedSeedsBitIdentically) {
  const Graph g = make_graph();
  const EimResult reference = run_reference(g);

  support::metrics::MetricsRegistry registry;
  const EimResult spilled =
      run_spill(g, tight_spill(reference, /*to_disk=*/false), {}, &registry);

  EXPECT_EQ(spilled.seeds, reference.seeds);
  EXPECT_EQ(spilled.num_sets, reference.num_sets);
  EXPECT_EQ(spilled.estimated_spread, reference.estimated_spread);
  EXPECT_FALSE(spilled.degraded);
  EXPECT_EQ(spilled.degrade_shortfall_bytes, 0u);
  // Full theta under a quarter of the footprint means most sets left the
  // device, and the spill tax is on the modeled clock, not free.
  EXPECT_GT(spilled.spilled_sets, 0u);
  EXPECT_GT(spilled.spill_bytes_compressed, 0u);
  EXPECT_GT(spilled.device_seconds, reference.device_seconds);
  EXPECT_GT(registry.counter("spill.evictions").value(), 0u);
  EXPECT_GT(registry.counter("spill.evicted_sets").value(), 0u);
  EXPECT_GT(registry.counter("spill.fetches").value(), 0u);
  EXPECT_EQ(registry.gauge("spill.compressed_bytes").value(),
            spilled.spill_bytes_compressed);
}

TEST(Spill, HostBudgetPushesBlocksToDiskWithIdenticalSeeds) {
  const Graph g = make_graph();
  const EimResult reference = run_reference(g);

  support::metrics::MetricsRegistry registry;
  const EimResult spilled =
      run_spill(g, tight_spill(reference, /*to_disk=*/true), {}, &registry);

  EXPECT_EQ(spilled.seeds, reference.seeds);
  EXPECT_FALSE(spilled.degraded);
  EXPECT_GT(registry.counter("spill.disk_writes").value(), 0u);
  EXPECT_GT(registry.counter("spill.disk_reads").value(), 0u);
  EXPECT_GT(registry.gauge("spill.disk_bytes").value(), 0u);
}

TEST(Spill, HostAllocOomBouncesAdmissionsToDisk) {
  const Graph g = make_graph();
  const EimResult reference = run_reference(g);

  // Refuse the first eight T1 admissions: those blocks must reach disk
  // directly, and the run must not notice.
  gpusim::FaultPlan plan;
  plan.host_alloc_oom_ordinals = {0, 1, 2, 3, 4, 5, 6, 7};
  support::metrics::MetricsRegistry registry;
  const EimResult spilled =
      run_spill(g, tight_spill(reference, /*to_disk=*/false), plan, &registry);

  EXPECT_EQ(spilled.seeds, reference.seeds);
  EXPECT_FALSE(spilled.degraded);
  EXPECT_GT(registry.counter("spill.host_oom").value(), 0u);
  EXPECT_GT(registry.counter("spill.disk_writes").value(), 0u);
}

/// Count how many disk writes / reads a fault-free disk-tier run performs,
/// so the sweeps below can hit every ordinal.
void count_disk_io(const Graph& g, const EimResult& reference,
                   std::uint64_t& writes, std::uint64_t& reads) {
  support::metrics::MetricsRegistry registry;
  (void)run_spill(g, tight_spill(reference, /*to_disk=*/true), {}, &registry);
  writes = registry.counter("spill.disk_writes").value();
  reads = registry.counter("spill.disk_reads").value();
  ASSERT_GT(writes, 0u);
  ASSERT_GT(reads, 0u);
}

TEST(Spill, WriteFaultAtEveryOrdinalRetriesToIdenticalSeeds) {
  const Graph g = make_graph();
  const EimResult reference = run_reference(g);
  std::uint64_t writes = 0, reads = 0;
  count_disk_io(g, reference, writes, reads);

  for (std::uint64_t o = 0; o <= writes; ++o) {
    gpusim::FaultPlan plan;
    plan.spill_write_fault_ordinals = {o};
    support::metrics::MetricsRegistry registry;
    const EimResult spilled =
        run_spill(g, tight_spill(reference, /*to_disk=*/true), plan, &registry);
    EXPECT_EQ(spilled.seeds, reference.seeds) << "write fault at ordinal " << o;
    EXPECT_FALSE(spilled.degraded);
    // Ordinals advance per attempt, so the clean run's ordinal o may land
    // past the last write when o == writes; any earlier hit must retry.
    if (o < writes) {
      EXPECT_GT(registry.counter("spill.io_retries").value(), 0u)
          << "write fault at ordinal " << o;
    }
  }
}

TEST(Spill, ReadFaultAtEveryOrdinalRetriesToIdenticalSeeds) {
  const Graph g = make_graph();
  const EimResult reference = run_reference(g);
  std::uint64_t writes = 0, reads = 0;
  count_disk_io(g, reference, writes, reads);

  for (std::uint64_t o = 0; o <= reads; ++o) {
    gpusim::FaultPlan plan;
    plan.spill_read_fault_ordinals = {o};
    support::metrics::MetricsRegistry registry;
    const EimResult spilled =
        run_spill(g, tight_spill(reference, /*to_disk=*/true), plan, &registry);
    EXPECT_EQ(spilled.seeds, reference.seeds) << "read fault at ordinal " << o;
    EXPECT_FALSE(spilled.degraded);
    if (o < reads) {
      EXPECT_GT(registry.counter("spill.io_retries").value(), 0u)
          << "read fault at ordinal " << o;
    }
  }
}

TEST(Spill, ExhaustedWriteRetriesExitWithTheIoCode) {
  const Graph g = make_graph();
  const EimResult reference = run_reference(g);

  // Three consecutive ordinals defeat the default 3-attempt retry budget.
  gpusim::FaultPlan plan;
  plan.spill_write_fault_ordinals = {0, 1, 2};
  try {
    (void)run_spill(g, tight_spill(reference, /*to_disk=*/true), plan);
    FAIL() << "expected IoError";
  } catch (const support::IoError& e) {
    EXPECT_EQ(support::exit_code_for(e), support::kExitIo);
  }
}

TEST(Spill, ExhaustedReadRetriesExitWithTheIoCode) {
  const Graph g = make_graph();
  const EimResult reference = run_reference(g);

  gpusim::FaultPlan plan;
  plan.spill_read_fault_ordinals = {0, 1, 2};
  try {
    (void)run_spill(g, tight_spill(reference, /*to_disk=*/true), plan);
    FAIL() << "expected IoError";
  } catch (const support::IoError& e) {
    EXPECT_EQ(support::exit_code_for(e), support::kExitIo);
  }
}

TEST(Spill, CorruptBlockAtEveryReadOrdinalResamplesToIdenticalSeeds) {
  const Graph g = make_graph();
  const EimResult reference = run_reference(g);
  std::uint64_t writes = 0, reads = 0;
  count_disk_io(g, reference, writes, reads);

  for (std::uint64_t o = 0; o < reads; ++o) {
    gpusim::FaultPlan plan;
    plan.spill_corrupt_ordinals = {o};
    support::metrics::MetricsRegistry registry;
    const EimResult spilled =
        run_spill(g, tight_spill(reference, /*to_disk=*/true), plan, &registry);
    EXPECT_EQ(spilled.seeds, reference.seeds) << "corruption at ordinal " << o;
    EXPECT_FALSE(spilled.degraded);
    EXPECT_EQ(registry.counter("spill.corrupt_blocks").value(), 1u)
        << "corruption at ordinal " << o;
    EXPECT_GT(registry.counter("spill.resampled_sets").value(), 0u)
        << "corruption at ordinal " << o;
  }
}

TEST(Spill, SpillThenDegradeHandlesAnImpossibleBudget) {
  // A budget smaller than any single set: spilling cannot make forward
  // progress, and the policy decides — degrade, never truncate silently.
  const Graph g = make_graph();
  SpillOptions spill;
  spill.policy = SpillPolicy::SpillThenDegrade;
  spill.device_budget_bytes = 8;

  gpusim::Device device(gpusim::make_benchmark_device(256));
  EimOptions options;
  options.spill = spill;
  const EimResult result =
      run_eim(device, g, DiffusionModel::IndependentCascade, make_params(), options);
  EXPECT_TRUE(result.degraded);
  EXPECT_GT(result.degrade_shortfall_bytes, 0u);
  EXPECT_EQ(result.seeds.size(), make_params().k);
}

TEST(Spill, PlainSpillPolicyThrowsOnAnImpossibleBudget) {
  const Graph g = make_graph();
  SpillOptions spill;
  spill.policy = SpillPolicy::Spill;
  spill.device_budget_bytes = 8;

  gpusim::Device device(gpusim::make_benchmark_device(256));
  EimOptions options;
  options.spill = spill;
  EXPECT_THROW((void)run_eim(device, g, DiffusionModel::IndependentCascade,
                             make_params(), options),
               support::DeviceOutOfMemoryError);
}

TEST(Spill, GenuinePoolOomSpillsInsteadOfFailing) {
  // No byte budget: spill only engages when the modeled pool actually runs
  // out — the run that used to degrade or die now completes at full theta.
  const Graph g = make_graph();
  const EimResult reference = run_reference(g);

  // Large enough for the unspillable per-set metadata at full theta, small
  // enough that the R element array cannot fit — so the OOM lands in R
  // growth, the one place eviction can free memory.
  gpusim::DeviceSpec spec = gpusim::make_benchmark_device(1);
  spec.global_memory_bytes = 208 << 10;

  {
    gpusim::Device no_spill(spec);
    EimOptions options;
    options.sampler_blocks = 16;
    ASSERT_THROW((void)run_eim(no_spill, g, DiffusionModel::IndependentCascade,
                               make_params(), options),
                 support::DeviceOutOfMemoryError);
  }

  gpusim::Device device(spec);
  EimOptions options;
  options.sampler_blocks = 16;
  options.spill.policy = SpillPolicy::Spill;
  const EimResult spilled =
      run_eim(device, g, DiffusionModel::IndependentCascade, make_params(), options);

  EXPECT_EQ(spilled.seeds, reference.seeds);
  EXPECT_EQ(spilled.num_sets, reference.num_sets);
  EXPECT_FALSE(spilled.degraded);
  EXPECT_GT(spilled.spilled_sets, 0u);
}

TEST(Spill, CheckpointedSpillRunRestoresUnderTheSameBudget) {
  const Graph g = make_graph();
  const EimResult reference = run_reference(g);
  const std::string dir =
      ::testing::TempDir() + "spill_ckpt_" + std::to_string(::getpid());

  // Run to completion with checkpoints on: every round boundary exports the
  // collection, streaming spilled sets back up through the staging pool.
  {
    gpusim::Device device(gpusim::make_benchmark_device(256));
    EimOptions options;
    options.spill = tight_spill(reference, /*to_disk=*/true);
    options.checkpoint_dir = dir;
    const EimResult run =
        run_eim(device, g, DiffusionModel::IndependentCascade, make_params(), options);
    ASSERT_EQ(run.seeds, reference.seeds);
  }

  // Resume from the final snapshot under the same budget: restore must spill
  // the committed prefix downward instead of overflowing the clamp.
  {
    const CheckpointState state = load_checkpoint(dir);
    gpusim::Device device(gpusim::make_benchmark_device(256));
    EimOptions options;
    options.spill = tight_spill(reference, /*to_disk=*/true);
    options.resume = &state;
    const EimResult resumed =
        run_eim(device, g, DiffusionModel::IndependentCascade, make_params(), options);
    EXPECT_EQ(resumed.seeds, reference.seeds);
    EXPECT_FALSE(resumed.degraded);
  }
  std::filesystem::remove_all(dir);
}

// Direct store-level checks: bit rot on the disk tier itself.

TEST(TieredStore, DiskBitFlipWithoutHookIsFatal) {
  gpusim::Device device(gpusim::make_benchmark_device(64));
  TieredStoreOptions opts;
  opts.host_budget_bytes = 1;  // every block lands on disk
  opts.sets_per_block = 4;
  TieredRrrStore store(device, opts);

  const std::vector<std::uint64_t> ids = {0, 1};
  const std::vector<std::uint32_t> lens = {3, 2};
  const std::vector<VertexId> values = {1, 5, 9, 2, 4};
  store.spill(ids, lens, values, 64);
  ASSERT_GT(store.disk_bytes(), 0u);

  // Flip one byte in the only block file.
  std::string file;
  for (const auto& entry : std::filesystem::directory_iterator(store.dir())) {
    file = entry.path().string();
  }
  ASSERT_FALSE(file.empty());
  {
    std::fstream f(file, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(-1, std::ios::end);
    char last = 0;
    f.seekg(-1, std::ios::end);
    f.get(last);
    f.seekp(-1, std::ios::end);
    f.put(static_cast<char>(last ^ 0x40));
  }

  std::vector<VertexId> out(3);
  EXPECT_THROW(store.fetch(0, out), support::IoError);
  EXPECT_EQ(store.stats().corrupt_blocks, 0u);  // no hook: nothing quarantined
}

TEST(TieredStore, DiskBitFlipWithHookQuarantinesAndRecovers) {
  gpusim::Device device(gpusim::make_benchmark_device(64));
  TieredStoreOptions opts;
  opts.host_budget_bytes = 1;
  opts.sets_per_block = 4;
  TieredRrrStore store(device, opts);

  const std::vector<std::uint64_t> ids = {0, 1};
  const std::vector<std::uint32_t> lens = {3, 2};
  const std::vector<VertexId> values = {1, 5, 9, 2, 4};
  store.set_resample_hook([&](std::uint64_t id, std::vector<VertexId>& out) {
    // Deterministic regeneration stand-in: id 0 -> {1,5,9}, id 1 -> {2,4}.
    out = id == 0 ? std::vector<VertexId>{1, 5, 9} : std::vector<VertexId>{2, 4};
  });
  store.spill(ids, lens, values, 64);

  std::string file;
  for (const auto& entry : std::filesystem::directory_iterator(store.dir())) {
    file = entry.path().string();
  }
  ASSERT_FALSE(file.empty());
  {
    std::fstream f(file, std::ios::binary | std::ios::in | std::ios::out);
    char last = 0;
    f.seekg(-1, std::ios::end);
    f.get(last);
    f.seekp(-1, std::ios::end);
    f.put(static_cast<char>(last ^ 0x40));
  }

  std::vector<VertexId> a(3), b(2);
  store.fetch(0, a);
  store.fetch(1, b);
  EXPECT_EQ(a, (std::vector<VertexId>{1, 5, 9}));
  EXPECT_EQ(b, (std::vector<VertexId>{2, 4}));
  EXPECT_EQ(store.stats().corrupt_blocks, 1u);
  EXPECT_EQ(store.stats().resampled_sets, 2u);
}

}  // namespace
}  // namespace eim::eim_impl
